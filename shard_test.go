package qdcbir

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"qdcbir/internal/core"
	"qdcbir/internal/rstar"
	"qdcbir/internal/shard"
	"qdcbir/internal/vec"
)

var (
	shardSysOnce sync.Once
	shardSys     *System
)

// shardTestConfig is the fleet-test corpus: vector mode for speed, small
// enough to slice eight ways and still exercise multi-level trees.
func shardTestConfig() Config {
	cfg := SmallConfig()
	cfg.VectorMode = true
	cfg.Images = 600
	cfg.Categories = 12
	return cfg
}

func sharedShardSystem(t *testing.T) *System {
	t.Helper()
	shardSysOnce.Do(func() {
		s, err := Build(shardTestConfig())
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		shardSys = s
	})
	if shardSys == nil {
		t.Fatal("shard fixture build failed earlier")
	}
	return shardSys
}

// buildFleet slices sys n ways, round-trips every archive through its
// serialized form, and opens the serving replicas.
func buildFleet(t *testing.T, sys *System, n int) []*shard.Replica {
	t.Helper()
	archives, err := SliceShards(context.Background(), sys, n)
	if err != nil {
		t.Fatalf("SliceShards(%d): %v", n, err)
	}
	reps := make([]*shard.Replica, n)
	total := 0
	for i, a := range archives {
		var buf bytes.Buffer
		if err := a.Write(&buf); err != nil {
			t.Fatalf("shard %d write: %v", i, err)
		}
		rep, local, err := OpenShard(&buf)
		if err != nil {
			t.Fatalf("shard %d open: %v", i, err)
		}
		if local.Len() != a.Meta.LocalImages {
			t.Fatalf("shard %d embedded system holds %d rows, meta says %d", i, local.Len(), a.Meta.LocalImages)
		}
		if rep.Meta().CorpusSig != archives[0].Meta.CorpusSig {
			t.Fatalf("shard %d corpus signature diverges within one build", i)
		}
		total += a.Meta.LocalImages
		reps[i] = rep
	}
	if total != sys.Len() {
		t.Fatalf("fleet covers %d of %d images", total, sys.Len())
	}
	return reps
}

// fleetSearcher is the in-process equivalent of the router's scatter-gather
// client: every restricted search fans out to all replicas and merges.
type fleetSearcher []*shard.Replica

func (f fleetSearcher) SearchNode(ctx context.Context, nodeID uint64, q vec.Vector, weights []float64, k int) ([]shard.Neighbor, error) {
	lists := make([][]shard.Neighbor, len(f))
	for i, r := range f {
		ns, err := r.SearchNode(ctx, nodeID, q, weights, k)
		if err != nil {
			return nil, err
		}
		lists[i] = ns
	}
	return shard.MergeNeighbors(lists, k), nil
}

// relPointsOf mirrors the router's /v1/query planning: dedup in order, anchor
// each image at its storing leaf, carry its exact vector.
func relPointsOf(sys *System, ids []int) ([]int, []shard.RelPoint) {
	seen := make(map[int]bool, len(ids))
	var dedup []int
	var rel []shard.RelPoint
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		dedup = append(dedup, id)
		rel = append(rel, shard.RelPoint{
			ID:     id,
			NodeID: uint64(sys.RFS().LeafOf(rstar.ItemID(id)).ID()),
			Vec:    sys.Corpus().Vectors[id],
		})
	}
	return dedup, rel
}

// assertResultsEqual demands the distributed finalize is bit-identical to the
// single-node one: same groups, same anchor and search nodes, same image IDs,
// and exactly equal float64 scores.
func assertResultsEqual(t *testing.T, tag string, want *core.Result, got *shard.Result) {
	t.Helper()
	if len(want.Groups) != len(got.Groups) {
		t.Fatalf("%s: %d groups vs %d single-node", tag, len(got.Groups), len(want.Groups))
	}
	for gi, wg := range want.Groups {
		gg := got.Groups[gi]
		if uint64(wg.Node.ID()) != gg.NodeID {
			t.Fatalf("%s group %d: anchor node %d vs %d", tag, gi, gg.NodeID, uint64(wg.Node.ID()))
		}
		if uint64(wg.SearchNode.ID()) != gg.SearchNodeID {
			t.Fatalf("%s group %d: search node %d vs %d", tag, gi, gg.SearchNodeID, uint64(wg.SearchNode.ID()))
		}
		wq := make([]int, len(wg.QueryIDs))
		for i, id := range wg.QueryIDs {
			wq[i] = int(id)
		}
		if !reflect.DeepEqual(wq, gg.QueryIDs) {
			t.Fatalf("%s group %d: query ids %v vs %v", tag, gi, gg.QueryIDs, wq)
		}
		if wg.RankScore != gg.RankScore {
			t.Fatalf("%s group %d: rank score %v vs %v", tag, gi, gg.RankScore, wg.RankScore)
		}
		if len(wg.Images) != len(gg.Images) {
			t.Fatalf("%s group %d: %d images vs %d", tag, gi, len(gg.Images), len(wg.Images))
		}
		for ii, wi := range wg.Images {
			gim := gg.Images[ii]
			if int(wi.ID) != gim.ID || wi.Score != gim.Score {
				t.Fatalf("%s group %d image %d: (%d, %v) vs (%d, %v)",
					tag, gi, ii, gim.ID, gim.Score, int(wi.ID), wi.Score)
			}
		}
	}
}

// TestShardMergeEquivalence is the correctness anchor of the sharded tier:
// over 1, 2, 4, and 8 shards, both the initial k-NN round and the §3.3/§3.4
// finalize round merge to results byte-identical (IDs and distances) to the
// single-node engine — in the default float64 mode, the SQ8 quantized mode,
// and the float32 result mode.
func TestShardMergeEquivalence(t *testing.T) {
	modes := []struct {
		name   string
		mutate func(*Config)
	}{
		{"f64", nil},
		{"quantized", func(c *Config) { c.Quantized = true }},
		{"f32", func(c *Config) { c.Float32 = true }},
	}
	relevant := []int{3, 9, 9, 12, 200, 201, 430, 430, 77}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			cfg := shardTestConfig()
			if mode.mutate != nil {
				mode.mutate(&cfg)
			}
			sys, err := Build(cfg)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			eng := sys.Engine()
			ctx := context.Background()
			for _, n := range []int{1, 2, 4, 8} {
				fleet := fleetSearcher(buildFleet(t, sys, n))
				root := fleet[0].Topo().RootID()
				boundary := fleet[0].Meta().Boundary
				for _, k := range []int{10, 50} {
					// Initial retrieval: global k-NN.
					for _, ex := range []int{0, 37, 211} {
						want, err := sys.KNN(ex, k)
						if err != nil {
							t.Fatal(err)
						}
						got, err := fleet.SearchNode(ctx, root, sys.Corpus().Vectors[ex], nil, k)
						if err != nil {
							t.Fatalf("shards=%d scatter knn: %v", n, err)
						}
						if len(got) != len(want) {
							t.Fatalf("shards=%d k=%d ex=%d: %d results vs %d", n, k, ex, len(got), len(want))
						}
						for i := range want {
							if got[i].ID != want[i].ID || got[i].Dist != want[i].Score {
								t.Fatalf("shards=%d k=%d ex=%d rank %d: (%d, %v) vs (%d, %v)",
									n, k, ex, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Score)
							}
						}
					}

					// Post-feedback finalize round.
					ids := make([]rstar.ItemID, len(relevant))
					for i, id := range relevant {
						ids[i] = rstar.ItemID(id)
					}
					want, stats, err := eng.QueryByExamplesCtx(ctx, ids, k, nil, nil)
					if err != nil {
						t.Fatal(err)
					}
					_, rel := relPointsOf(sys, relevant)
					got, err := shard.FinalizeScatter(ctx, fleet[0].Topo(), fleet, rel, k, nil, boundary, 0)
					if err != nil {
						t.Fatalf("shards=%d finalize scatter: %v", n, err)
					}
					tag := mode.name + "/finalize"
					assertResultsEqual(t, tag, want, got)
					if stats.Expansions != got.Expansions {
						t.Fatalf("%s shards=%d: %d expansions vs %d", tag, n, got.Expansions, stats.Expansions)
					}
				}
			}
		})
	}
}

// TestShardMergeEquivalenceWeighted covers the weighted-distance finalize
// path (feature reweighting always runs the exact float64 kernels).
func TestShardMergeEquivalenceWeighted(t *testing.T) {
	sys := sharedShardSystem(t)
	dim := len(sys.Corpus().Vectors[0])
	weights := make([]float64, dim)
	for i := range weights {
		weights[i] = 1
	}
	weights[0], weights[3] = 2.5, 0.25
	ids := []rstar.ItemID{5, 41, 300, 301}
	want, _, err := sys.Engine().QueryByExamplesCtx(context.Background(), ids, 30, vec.Vector(weights), nil)
	if err != nil {
		t.Fatal(err)
	}
	fleet := fleetSearcher(buildFleet(t, sys, 4))
	_, rel := relPointsOf(sys, []int{5, 41, 300, 301})
	got, err := shard.FinalizeScatter(context.Background(), fleet[0].Topo(), fleet, rel, 30, weights, fleet[0].Meta().Boundary, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "weighted", want, got)
}

// TestShardSearchNodeBatchEquivalence pins the coalesced multi-query shard
// sweep to per-query SearchNode calls, bit for bit, in both slab precisions,
// across batch widths and subtree restrictions.
func TestShardSearchNodeBatchEquivalence(t *testing.T) {
	for _, mode := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"f64", nil},
		{"f32", func(c *Config) { c.Float32 = true }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := shardTestConfig()
			if mode.mutate != nil {
				mode.mutate(&cfg)
			}
			sys, err := Build(cfg)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			fleet := buildFleet(t, sys, 2)
			ctx := context.Background()
			rep := fleet[1]
			topo := rep.Topo()
			nodes := []uint64{topo.RootID()}
			if cs := topo.Children(topo.Root()); len(cs) > 0 {
				nodes = append(nodes, topo.Nodes[cs[0]].ID)
			}
			for _, nodeID := range nodes {
				for _, m := range []int{1, 2, 4, 5, 8} {
					qs := make([]vec.Vector, m)
					ks := make([]int, m)
					for j := range qs {
						qs[j] = sys.Corpus().Vectors[(j*97+13)%sys.Len()]
						ks[j] = []int{1, 7, 25, 400}[j%4]
					}
					got, err := rep.SearchNodeBatch(ctx, nodeID, qs, ks)
					if err != nil {
						t.Fatalf("m=%d batch: %v", m, err)
					}
					for j := range qs {
						want, err := rep.SearchNode(ctx, nodeID, qs[j], nil, ks[j])
						if err != nil {
							t.Fatalf("single: %v", err)
						}
						if len(got[j]) != len(want) {
							t.Fatalf("node %d m=%d q=%d: %d results vs %d", nodeID, m, j, len(got[j]), len(want))
						}
						for i := range want {
							if got[j][i].ID != want[i].ID || got[j][i].Dist != want[i].Dist {
								t.Fatalf("node %d m=%d q=%d rank %d: (%d, %v) vs (%d, %v)",
									nodeID, m, j, i, got[j][i].ID, got[j][i].Dist, want[i].ID, want[i].Dist)
							}
						}
					}
				}
			}
			// Shape and argument validation.
			if _, err := rep.SearchNodeBatch(ctx, topo.RootID(), make([]vec.Vector, 2), []int{5}); err == nil {
				t.Fatal("mismatched qs/ks accepted")
			}
			if _, err := rep.SearchNodeBatch(ctx, topo.RootID(), []vec.Vector{{1, 2}}, []int{5}); err == nil {
				t.Fatal("wrong-dim query accepted")
			}
			if _, err := rep.SearchNodeBatch(ctx, 1<<60, nil, nil); err == nil {
				t.Fatal("unknown node accepted")
			}
		})
	}
}

// TestShardArchiveRejectsGarbage guards the sniffing contract between the
// three on-disk formats.
func TestShardArchiveRejectsGarbage(t *testing.T) {
	if _, err := shard.ReadArchive(bytes.NewReader([]byte("not an archive"))); err == nil {
		t.Fatal("garbage accepted as shard archive")
	}
	if shard.IsArchiveHeader([]byte{0xD1, 'Q', 'D', 3}) {
		t.Fatal("versioned system archive header misdetected as shard archive")
	}
	sys := sharedShardSystem(t)
	if _, err := SliceShard(context.Background(), sys, 0, 0); err == nil {
		t.Fatal("shard count 0 accepted")
	}
	if _, err := SliceShard(context.Background(), sys, 4, 4); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
}

// TestSessionExportRestoreFinalizeParity pins the failover contract behind
// the router: a session exported mid-flight, JSON round-tripped, and restored
// on a fresh engine finalizes bit-identically to the original.
func TestSessionExportRestoreFinalizeParity(t *testing.T) {
	sys := sharedShardSystem(t)
	eng := sys.Engine()
	a := eng.NewSession(rand.New(rand.NewSource(7)))
	for round := 0; round < 3; round++ {
		cands := a.Candidates()
		if len(cands) == 0 {
			t.Fatal("no candidates")
		}
		var marks []rstar.ItemID
		for i, c := range cands {
			if i%3 == 0 {
				marks = append(marks, c.ID)
			}
		}
		if err := a.Feedback(marks); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	st := a.ExportState()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var st2 core.SessionState
	if err := json.Unmarshal(raw, &st2); err != nil {
		t.Fatal(err)
	}
	b, err := eng.RestoreSession(&st2, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatalf("RestoreSession: %v", err)
	}
	if got, want := b.Stats().FeedbackReads, a.Stats().FeedbackReads; got != want {
		t.Fatalf("restored session carries %d feedback reads, original %d", got, want)
	}
	resA, err := a.Finalize(25)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := b.Finalize(25)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resA.IDs(), resB.IDs()) {
		t.Fatalf("restored finalize IDs diverge:\n  orig %v\n  rest %v", resA.IDs(), resB.IDs())
	}
	fa, fb := resA.Flat(), resB.Flat()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("restored finalize score diverges at %d: %+v vs %+v", i, fb[i], fa[i])
		}
	}

	// Tampered states are rejected, not half-restored.
	bad := st2
	bad.Assign = map[int]uint64{0: 1 << 60}
	bad.Relevant = []int{0}
	if _, err := eng.RestoreSession(&bad, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("state with unknown node accepted")
	}
}

// TestShardSessionParity drives a topology-backed shard.Session and an
// engine-backed core.Session with the same seed through the same rounds and
// demands identical displays, identical decomposition state, identical
// exported state, and a distributed finalize identical to the single-node
// one.
func TestShardSessionParity(t *testing.T) {
	sys := sharedShardSystem(t)
	topo := shard.TopologyOf(sys.RFS(), sys.SubconceptOf)
	if err := topo.Index(); err != nil {
		t.Fatal(err)
	}
	dc := sys.Config().DisplayCount
	cs := sys.Engine().NewSession(rand.New(rand.NewSource(11)))
	ss := shard.NewSession(topo, rand.New(rand.NewSource(11)), dc)
	for round := 0; round < 3; round++ {
		cc := cs.Candidates()
		sc := ss.Candidates()
		ccIDs := make([]int, len(cc))
		for i, c := range cc {
			ccIDs[i] = int(c.ID)
		}
		if !reflect.DeepEqual(ccIDs, sc) {
			t.Fatalf("round %d displays diverge:\n  core  %v\n  shard %v", round, ccIDs, sc)
		}
		var coreMarks []rstar.ItemID
		var shardMarks []int
		for i, id := range ccIDs {
			if i%3 == 0 {
				coreMarks = append(coreMarks, rstar.ItemID(id))
				shardMarks = append(shardMarks, id)
			}
		}
		if err := cs.Feedback(coreMarks); err != nil {
			t.Fatal(err)
		}
		if err := ss.Feedback(shardMarks); err != nil {
			t.Fatal(err)
		}
		if len(cs.Frontier()) != ss.Subqueries() {
			t.Fatalf("round %d: %d subqueries vs core %d", round, ss.Subqueries(), len(cs.Frontier()))
		}
	}
	// Retraction keeps the two in lockstep too.
	drop := []int{int(cs.Relevant()[0])}
	cs.Retract([]rstar.ItemID{rstar.ItemID(drop[0])})
	ss.Retract(drop)

	stCore := cs.ExportState()
	stShard := ss.ExportState()
	rawCore, err := json.Marshal(stCore)
	if err != nil {
		t.Fatal(err)
	}
	rawShard, err := json.Marshal(stShard)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawCore, rawShard) {
		t.Fatalf("exported states diverge:\n  core  %s\n  shard %s", rawCore, rawShard)
	}

	// The router's finalize path over the exported shard state equals the
	// single-node session finalize.
	want, err := cs.Finalize(25)
	if err != nil {
		t.Fatal(err)
	}
	fleet := fleetSearcher(buildFleet(t, sys, 4))
	var rel []shard.RelPoint
	for _, id := range stShard.Relevant {
		node, ok := stShard.Assign[id]
		if !ok {
			continue
		}
		rel = append(rel, shard.RelPoint{ID: id, NodeID: node, Vec: sys.Corpus().Vectors[id]})
	}
	got, err := shard.FinalizeScatter(context.Background(), topo, fleet, rel, 25, stShard.Weights, fleet[0].Meta().Boundary, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "session", want, got)

	// A shard session restored from the exported state replays identically to
	// a second restore of the same state (stateless resume).
	r1, err := shard.RestoreSession(topo, stShard, rand.New(rand.NewSource(5)), dc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := shard.RestoreSession(topo, stShard, rand.New(rand.NewSource(5)), dc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Candidates(), r2.Candidates()) {
		t.Fatal("restored shard sessions diverge under one seed")
	}
}
