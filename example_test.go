package qdcbir_test

import (
	"fmt"
	"log"

	"qdcbir"
)

// Example demonstrates the minimal retrieval loop: build a system, mark a few
// representatives relevant, and finalize. Deterministic seeds make the
// example's behaviour stable.
func Example() {
	sys, err := qdcbir.Build(qdcbir.Config{
		Seed:       1,
		Categories: 10,
		Images:     400,
		VectorMode: true, // skip rendering for a fast example
	})
	if err != nil {
		log.Fatal(err)
	}

	sess := sys.NewSession(1)
	cands := sess.Candidates()
	// Mark the first two displayed representatives (a real user would pick
	// by looking at the images).
	if err := sess.Feedback([]int{cands[0].ID, cands[1].ID}); err != nil {
		log.Fatal(err)
	}
	res, err := sess.Finalize(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("groups:", len(res.Groups) > 0)
	fmt.Println("images:", len(res.IDs()))
	// Output:
	// groups: true
	// images: 4
}

// ExampleSystem_KNN contrasts plain single-neighborhood retrieval with the
// session-based query decomposition flow.
func ExampleSystem_KNN() {
	sys, err := qdcbir.Build(qdcbir.Config{
		Seed:       1,
		Categories: 10,
		Images:     400,
		VectorMode: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	neighbors, err := sys.KNN(0, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nearest is itself:", neighbors[0].ID == 0)
	fmt.Println("results:", len(neighbors))
	// Output:
	// nearest is itself: true
	// results: 3
}
