package qdcbir

import (
	"math/rand"
	"sync"
	"testing"

	"qdcbir/internal/dataset"
)

var (
	sysOnce sync.Once
	sysMem  *System
)

func smallSystem(t *testing.T) *System {
	t.Helper()
	sysOnce.Do(func() {
		s, err := Build(SmallConfig())
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		sysMem = s
	})
	if sysMem == nil {
		t.Fatal("system build failed earlier")
	}
	return sysMem
}

func TestBuildSmall(t *testing.T) {
	sys := smallSystem(t)
	if sys.Len() == 0 {
		t.Fatal("empty system")
	}
	if sys.TreeHeight() < 2 {
		t.Errorf("tree height %d", sys.TreeHeight())
	}
	if sys.RepresentativeCount() == 0 {
		t.Error("no representatives")
	}
	if got := len(sys.Queries()); got != 11 {
		t.Errorf("%d queries", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	d := DefaultConfig()
	if d.Images != 15000 || d.NodeCapacity != 100 || d.RepFraction != 0.05 || d.BoundaryThreshold != 0.4 {
		t.Errorf("DefaultConfig = %+v", d)
	}
	// Zero config fills to defaults.
	c := Config{}.withDefaults()
	if c.Images != 15000 || c.DisplayCount != 21 {
		t.Errorf("withDefaults = %+v", c)
	}
}

func TestKMeansHierarchyFacade(t *testing.T) {
	cfg := SmallConfig()
	cfg.VectorMode = true
	cfg.Images = 500
	cfg.Hierarchy = "kmeans"
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Len() == 0 || sys.RepresentativeCount() == 0 {
		t.Fatal("empty kmeans-hierarchy system")
	}
	// A full session works over the alternative backbone.
	sess := sys.NewSession(3)
	c := sess.Candidates()
	if len(c) == 0 {
		t.Fatal("no candidates")
	}
	if err := sess.Feedback([]int{c[0].ID}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Finalize(5); err != nil {
		t.Fatal(err)
	}
}

func TestVectorModeBuild(t *testing.T) {
	cfg := SmallConfig()
	cfg.VectorMode = true
	cfg.Images = 600
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Len() == 0 {
		t.Fatal("empty vector-mode system")
	}
	if _, err := sys.KNN(0, 5); err != nil {
		t.Fatal(err)
	}
}

func TestKNNConvenience(t *testing.T) {
	sys := smallSystem(t)
	got, err := sys.KNN(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("KNN returned %d", len(got))
	}
	if got[0].ID != 0 || got[0].Score != 0 {
		t.Errorf("nearest neighbour of image 0 is %+v, want itself", got[0])
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score < got[i-1].Score {
			t.Error("KNN results unordered")
		}
	}
	if _, err := sys.KNN(-1, 5); err == nil {
		t.Error("negative image accepted")
	}
	if _, err := sys.KNN(sys.Len(), 5); err == nil {
		t.Error("out-of-range image accepted")
	}
}

func TestFullSessionFlow(t *testing.T) {
	sys := smallSystem(t)
	q := sys.Queries()[2] // Bird: eagle, owl, sparrow
	rel := sys.GroundTruth(q)

	sess := sys.NewSession(7)
	targets := map[string]bool{}
	for _, tgt := range q.Targets {
		targets[tgt] = true
	}
	for round := 0; round < 3; round++ {
		var marks []int
		seen := map[int]bool{}
		for d := 0; d < 12 && len(marks) < 8; d++ {
			for _, c := range sess.Candidates() {
				if !seen[c.ID] && targets[c.Subconcept] && len(marks) < 8 {
					seen[c.ID] = true
					marks = append(marks, c.ID)
				}
			}
		}
		if err := sess.Feedback(marks); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if sess.Subqueries() == 0 {
		t.Fatal("no active subqueries")
	}
	if len(sess.Relevant()) == 0 {
		t.Fatal("no relevant marks recorded")
	}
	k := sys.GroundTruthSize(q)
	res, err := sess.Finalize(k)
	if err != nil {
		t.Fatal(err)
	}
	ids := res.IDs()
	if len(ids) != k {
		t.Fatalf("returned %d of k=%d", len(ids), k)
	}
	var hits int
	for _, id := range ids {
		if rel[id] {
			hits++
		}
	}
	if prec := float64(hits) / float64(len(ids)); prec < 0.4 {
		t.Errorf("precision %.2f too low", prec)
	}
	// Groups carry labels and ordered scores; Flat is globally sorted.
	for _, g := range res.Groups {
		if g.Label == "" {
			t.Error("group without label")
		}
		if len(g.QueryImages) == 0 {
			t.Error("group without query images")
		}
	}
	flat := res.Flat()
	for i := 1; i < len(flat); i++ {
		if flat[i].Score < flat[i-1].Score {
			t.Fatal("Flat unordered")
		}
	}
	st := sess.Stats()
	if st.Rounds != 3 || st.FeedbackReads == 0 || st.FinalReads == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSessionReplayDeterminism(t *testing.T) {
	sys := smallSystem(t)
	run := func() []int {
		sess := sys.NewSession(99)
		cands := sess.Candidates()
		var marks []int
		for _, c := range cands[:3] {
			marks = append(marks, c.ID)
		}
		if err := sess.Feedback(marks); err != nil {
			t.Fatal(err)
		}
		res, err := sess.Finalize(10)
		if err != nil {
			t.Fatal(err)
		}
		return res.IDs()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestRetractAndReQuery(t *testing.T) {
	sys := smallSystem(t)
	sess := sys.NewSession(55)
	cands := sess.Candidates()
	if len(cands) < 4 {
		t.Skip("too few candidates")
	}
	marks := []int{cands[0].ID, cands[1].ID, cands[2].ID}
	if err := sess.Feedback(marks); err != nil {
		t.Fatal(err)
	}
	sess.Retract(marks[:1])
	got := sess.Relevant()
	if len(got) != 2 {
		t.Fatalf("relevant after retract = %v", got)
	}
	for _, id := range got {
		if id == marks[0] {
			t.Error("retracted id still present")
		}
	}
	if _, err := sess.Finalize(10); err != nil {
		t.Fatal(err)
	}
}

func TestWeightFamily(t *testing.T) {
	sys := smallSystem(t)
	sess := sys.NewSession(66)
	if err := sess.WeightFamily(FamilyColor, 3); err != nil {
		t.Fatal(err)
	}
	if err := sess.WeightFamily(FamilyTexture, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := sess.WeightFamily(FamilyEdge, -1); err == nil {
		t.Error("negative multiplier accepted")
	}
	// A weighted session still completes the full flow.
	cands := sess.Candidates()
	if err := sess.Feedback([]int{cands[0].ID, cands[1].ID}); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Finalize(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs()) == 0 {
		t.Fatal("weighted session returned nothing")
	}
}

func TestKNNByImageAndRegion(t *testing.T) {
	sys := smallSystem(t)
	// Render a fresh example image resembling a corpus subconcept: use the
	// spec's own appearance so retrieval should surface that subconcept.
	spec := dataset.SmallSpec(SmallConfig().Seed, 25, 1200)
	app := spec.Categories[0].Subconcepts[0].Appearance
	key := dataset.Key(spec.Categories[0].Name, spec.Categories[0].Subconcepts[0].Name)
	im := dataset.Render(app, rand.New(rand.NewSource(99)))

	got, err := sys.KNNByImage(im, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("returned %d", len(got))
	}
	hits := 0
	for _, s := range got {
		if sys.SubconceptOf(s.ID) == key {
			hits++
		}
	}
	if hits < 5 {
		t.Errorf("external QBE found only %d/10 of subconcept %s", hits, key)
	}

	// Region query on the full frame behaves like the full-image query.
	rg, err := sys.KNNByRegion(im, 0, 0, im.W, im.H, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rg[0].ID != got[0].ID {
		t.Error("full-frame region differs from full image at rank 0")
	}
	// A sub-region still returns valid results.
	sub, err := sys.KNNByRegion(im, 8, 8, 40, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 5 {
		t.Errorf("region query returned %d", len(sub))
	}
	// Errors.
	if _, err := sys.KNNByRegion(im, 10, 10, 10, 40, 5); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := sys.KNNByImage(im, 0); err == nil {
		t.Error("k=0 accepted")
	}
	// Vector-mode systems reject image queries.
	vcfg := SmallConfig()
	vcfg.VectorMode = true
	vcfg.Images = 400
	vsys, err := Build(vcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vsys.KNNByImage(im, 5); err == nil {
		t.Error("vector-mode system accepted image query")
	}
}

func TestGroundTruthAccessors(t *testing.T) {
	sys := smallSystem(t)
	for _, q := range sys.Queries() {
		rel := sys.GroundTruth(q)
		if len(rel) != sys.GroundTruthSize(q) {
			t.Errorf("%s: set %d vs size %d", q.Name, len(rel), sys.GroundTruthSize(q))
		}
		for id := range rel {
			sub := sys.SubconceptOf(id)
			found := false
			for _, tgt := range q.Targets {
				if tgt == sub {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: image %d (%s) not a target", q.Name, id, sub)
			}
		}
	}
	if sys.SubconceptOf(-1) != "" || sys.CategoryOf(1<<30) != "" {
		t.Error("out-of-range lookups should be empty")
	}
}
