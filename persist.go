package qdcbir

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"qdcbir/internal/dataset"
	"qdcbir/internal/feature"
	"qdcbir/internal/img"
	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// archiveMagic prefixes version-1 archives. The first byte (0xD1) can never
// begin a gob stream — gob encodes the leading message length as a varint
// whose first byte is either a small count (0x00..0x7F) or a length-of-length
// marker (0xF8..0xFF) — so the magic unambiguously separates v1 archives from
// the header-less version-0 gob archives Load still accepts.
var archiveMagic = [4]byte{0xD1, 'Q', 'D', 0x01}

// archive is the version-0 gob wire format for a whole System, kept so
// archives written before the flat feature store still load. It stores every
// corpus vector twice (once in the RFS snapshot's point table, once inside
// the tree's leaf items) and the original colour channel a third time inside
// ChannelVectors.
type archive struct {
	Cfg            Config
	Infos          []dataset.Info
	RFS            *rfs.Snapshot
	ChannelVectors map[img.Channel][]vec.Vector
	NormMin        vec.Vector // extractor state (min-max normalizer)
	NormMax        vec.Vector
}

// archiveV1 is the current wire format: the corpus feature vectors travel
// once, as the flat store's backing array, and the RFS hierarchy travels
// point-free (leaf item IDs only). Channels holds the backing arrays of the
// derived colour channels; the original channel is the main Points array and
// is re-aliased on load rather than stored again.
type archiveV1 struct {
	Cfg         Config
	Infos       []dataset.Info
	Dim         int
	Points      []float64
	HasChannels bool
	Channels    map[img.Channel][]float64
	RFS         *rfs.TopologySnapshot
	NormMin     vec.Vector // extractor state (min-max normalizer)
	NormMax     vec.Vector
}

// Save persists the system to w in the version-1 format: a 4-byte magic
// header followed by the gob-encoded archiveV1. Ground truth, configuration,
// and the feature normalizer travel alongside the store backing and the
// point-free RFS topology, so a Load-ed system answers queries identically.
func (s *System) Save(w io.Writer) error {
	st := s.corpus.Store()
	a := archiveV1{
		Cfg:         s.cfg,
		Infos:       s.corpus.Infos,
		Dim:         st.Dim(),
		Points:      st.Backing(),
		HasChannels: s.corpus.ChannelVectors != nil,
		RFS:         s.rfs.TopologySnapshot(),
	}
	for ch, cst := range s.corpus.ChannelStores() {
		if ch == img.ChannelOriginal {
			continue // aliases the main store; re-aliased on load
		}
		if a.Channels == nil {
			a.Channels = make(map[img.Channel][]float64)
		}
		a.Channels[ch] = cst.Backing()
	}
	if s.corpus.Extractor != nil {
		min, max := s.corpus.Extractor.NormalizerBounds()
		a.NormMin, a.NormMax = min, max
	}
	if _, err := w.Write(archiveMagic[:]); err != nil {
		return fmt.Errorf("qdcbir: write header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(&a); err != nil {
		return fmt.Errorf("qdcbir: encode: %w", err)
	}
	return nil
}

// SaveFile persists the system to a file.
func (s *System) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reconstructs a system persisted by Save. Both the current version-1
// format and header-less version-0 gob archives are accepted; the format is
// detected from the first bytes of the stream.
func Load(r io.Reader) (*System, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(archiveMagic))
	if err == nil && bytes.Equal(head, archiveMagic[:]) {
		if _, err := br.Discard(len(archiveMagic)); err != nil {
			return nil, fmt.Errorf("qdcbir: read header: %w", err)
		}
		return loadV1(br)
	}
	return loadV0(br)
}

// loadV1 decodes the store-backed format: the corpus adopts the decoded
// backing array and the RFS structure is rebuilt over the corpus store's
// row views.
func loadV1(r io.Reader) (*System, error) {
	var a archiveV1
	if err := gob.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("qdcbir: decode: %w", err)
	}
	main, err := store.FromBacking(a.Dim, a.Points)
	if err != nil {
		return nil, fmt.Errorf("qdcbir: corpus store: %w", err)
	}
	vectors := main.Views()
	var channelVectors map[img.Channel][]vec.Vector
	if a.HasChannels {
		channelVectors = map[img.Channel][]vec.Vector{
			img.ChannelOriginal: vectors,
		}
		for ch, backing := range a.Channels {
			cst, err := store.FromBacking(a.Dim, backing)
			if err != nil {
				return nil, fmt.Errorf("qdcbir: channel %v store: %w", ch, err)
			}
			channelVectors[ch] = cst.Views()
		}
	}
	corpus, err := dataset.Reassemble(a.Infos, vectors, channelVectors)
	if err != nil {
		return nil, err
	}
	if a.NormMin != nil {
		corpus.Extractor = feature.NewExtractorFromBounds(a.NormMin, a.NormMax)
	}
	structure, err := rfs.FromTopologySnapshot(a.RFS, corpus.Store())
	if err != nil {
		return nil, err
	}
	return assembleLoaded(a.Cfg, corpus, structure)
}

// loadV0 decodes the legacy gob format. The duplicated original channel in
// old archives is discarded in favour of an alias when the corpus adopts its
// feature store, so version-0 archives load into exactly the deduplicated
// in-memory layout that version-1 archives produce.
func loadV0(r io.Reader) (*System, error) {
	var a archive
	if err := gob.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("qdcbir: decode: %w", err)
	}
	structure, err := rfs.FromSnapshot(a.RFS)
	if err != nil {
		return nil, err
	}
	corpus, err := dataset.Reassemble(a.Infos, vectorsOf(structure), a.ChannelVectors)
	if err != nil {
		return nil, err
	}
	if a.NormMin != nil {
		corpus.Extractor = feature.NewExtractorFromBounds(a.NormMin, a.NormMax)
	}
	return assembleLoaded(a.Cfg, corpus, structure)
}

// LoadFile reconstructs a system from a file written by SaveFile.
func LoadFile(path string) (*System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// vectorsOf extracts the dense vector table from a reconstructed structure.
func vectorsOf(s *rfs.Structure) []vec.Vector {
	out := make([]vec.Vector, s.Len())
	for i := range out {
		out[i] = s.Point(rstar.ItemID(i))
	}
	return out
}

// assembleLoaded wires a reconstructed structure without rebuilding it.
func assembleLoaded(cfg Config, corpus *dataset.Corpus, structure *rfs.Structure) (*System, error) {
	cfg = cfg.withDefaults()
	if err := structure.Validate(); err != nil {
		return nil, fmt.Errorf("qdcbir: rfs: %w", err)
	}
	if err := corpus.Validate(); err != nil {
		return nil, fmt.Errorf("qdcbir: corpus: %w", err)
	}
	engine := newEngine(cfg, structure)
	return &System{cfg: cfg, corpus: corpus, rfs: structure, engine: engine}, nil
}
