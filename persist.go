package qdcbir

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"qdcbir/internal/dataset"
	"qdcbir/internal/feature"
	"qdcbir/internal/img"
	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// Versioned archives open with a 4-byte header: the 3-byte family prefix
// 0xD1 'Q' 'D' followed by a version byte. The first byte (0xD1) can never
// begin a gob stream — gob encodes the leading message length as a varint
// whose first byte is either a small count (0x00..0x7F) or a length-of-length
// marker (0xF8..0xFF) — so the prefix unambiguously separates headered
// archives from the header-less version-0 gob archives Load still accepts.
var archivePrefix = [3]byte{0xD1, 'Q', 'D'}

// Archive versions this build reads (Save always writes the newest).
const (
	archiveVersionV1  = 1 // flat feature store, point-free RFS topology
	archiveVersionV2  = 2 // v1 plus the optional SQ8 quantizer sidecar
	archiveVersionV3  = 3 // v2 plus the store precision and a native float32 backing
	archiveVersionV4  = 4 // dynamic segmented archive (Dynamic.Save / LoadDynamic)
	archiveVersionMax = archiveVersionV3
)

// ArchiveVersionCurrent is the archive format version Save writes.
const ArchiveVersionCurrent = archiveVersionMax

// DynamicArchiveVersion is the archive format version Dynamic.Save writes.
// Dynamic archives share the 4-byte header family with static archives but
// are a distinct kind: LoadDynamic reads every version (wrapping static
// archives as a single sealed segment), while the static Load rejects
// version 4 with a pointer to LoadDynamic.
const DynamicArchiveVersion = archiveVersionV4

// ArchiveHeaderVersion inspects the first bytes of an archive stream: it
// returns (version, true) when head begins with the versioned-family 4-byte
// magic, and (0, false) otherwise — a false result means either a legacy
// header-less version-0 gob archive or a foreign format (such as a shard
// archive, which carries its own magic). Loaders use this to sniff the
// archive kind before committing to a decoder.
func ArchiveHeaderVersion(head []byte) (int, bool) {
	if len(head) < 4 || !bytes.Equal(head[:3], archivePrefix[:]) {
		return 0, false
	}
	return int(head[3]), true
}

// archiveHeader returns the 4-byte header of the given archive version.
func archiveHeader(version byte) []byte {
	return []byte{archivePrefix[0], archivePrefix[1], archivePrefix[2], version}
}

// archive is the version-0 gob wire format for a whole System, kept so
// archives written before the flat feature store still load. It stores every
// corpus vector twice (once in the RFS snapshot's point table, once inside
// the tree's leaf items) and the original colour channel a third time inside
// ChannelVectors.
type archive struct {
	Cfg            Config
	Infos          []dataset.Info
	RFS            *rfs.Snapshot
	ChannelVectors map[img.Channel][]vec.Vector
	NormMin        vec.Vector // extractor state (min-max normalizer)
	NormMax        vec.Vector
}

// archiveV1 is the version-1 wire format: the corpus feature vectors travel
// once, as the flat store's backing array, and the RFS hierarchy travels
// point-free (leaf item IDs only). Channels holds the backing arrays of the
// derived colour channels; the original channel is the main Points array and
// is re-aliased on load rather than stored again.
type archiveV1 struct {
	Cfg         Config
	Infos       []dataset.Info
	Dim         int
	Points      []float64
	HasChannels bool
	Channels    map[img.Channel][]float64
	RFS         *rfs.TopologySnapshot
	NormMin     vec.Vector // extractor state (min-max normalizer)
	NormMax     vec.Vector
}

// archiveV2 is the current wire format: every archiveV1 field (same names,
// same encodings — gob matches fields by name, so a v1 payload decodes into
// this struct with Quant left nil) plus the optional SQ8 quantizer of a
// Config.Quantized system, persisted so loads skip retraining.
type archiveV2 struct {
	Cfg         Config
	Infos       []dataset.Info
	Dim         int
	Points      []float64
	HasChannels bool
	Channels    map[img.Channel][]float64
	RFS         *rfs.TopologySnapshot
	NormMin     vec.Vector // extractor state (min-max normalizer)
	NormMax     vec.Vector
	Quant       *store.QuantParts // nil unless the system is quantized
}

// archiveV3 is the current wire format: every archiveV2 field (same names,
// same encodings) plus the corpus store's precision tag. A float32-precision
// store — an imported float32 embedding corpus — persists its rows once, in
// the native Points32 backing (half the bytes, no rounding), leaving Points
// nil; a float64 store persists Points exactly as version 2 did, leaving
// Points32 nil. Gob's field-by-name matching means v1 and v2 payloads decode
// into this struct with Precision empty, which reads as float64.
type archiveV3 struct {
	Cfg         Config
	Infos       []dataset.Info
	Dim         int
	Points      []float64
	HasChannels bool
	Channels    map[img.Channel][]float64
	RFS         *rfs.TopologySnapshot
	NormMin     vec.Vector // extractor state (min-max normalizer)
	NormMax     vec.Vector
	Quant       *store.QuantParts // nil unless the system is quantized
	Precision   string            // store precision ("f64", "f32"; "" = f64)
	Points32    []float32         // store backing of an "f32" archive; Points is nil
}

// archiveBody captures the system's persistent state in the version-1
// layout, which versions 2 and 3 extend field-for-field.
func (s *System) archiveBody() archiveV1 {
	st := s.corpus.Store()
	a := archiveV1{
		Cfg:         s.cfg,
		Infos:       s.corpus.Infos,
		Dim:         st.Dim(),
		Points:      st.Backing(),
		HasChannels: s.corpus.ChannelVectors != nil,
		RFS:         s.rfs.TopologySnapshot(),
	}
	for ch, cst := range s.corpus.ChannelStores() {
		if ch == img.ChannelOriginal {
			continue // aliases the main store; re-aliased on load
		}
		if a.Channels == nil {
			a.Channels = make(map[img.Channel][]float64)
		}
		a.Channels[ch] = cst.Backing()
	}
	if s.corpus.Extractor != nil {
		min, max := s.corpus.Extractor.NormalizerBounds()
		a.NormMin, a.NormMax = min, max
	}
	return a
}

// Save persists the system to w in the version-3 format: a 4-byte header
// followed by the gob-encoded archiveV3. Ground truth, configuration, the
// feature normalizer, the store precision, and (for quantized systems) the
// SQ8 quantizer travel alongside the store backing and the point-free RFS
// topology, so a Load-ed system answers queries identically. A system saved
// from an older archive upgrades to version 3 on the next Save.
func (s *System) Save(w io.Writer) error {
	body := s.archiveBody()
	st := s.corpus.Store()
	a := archiveV3{
		Cfg:         body.Cfg,
		Infos:       body.Infos,
		Dim:         body.Dim,
		Points:      body.Points,
		HasChannels: body.HasChannels,
		Channels:    body.Channels,
		RFS:         body.RFS,
		NormMin:     body.NormMin,
		NormMax:     body.NormMax,
		Precision:   st.Precision().String(),
	}
	if st.Precision() == store.Float32 {
		// Persist the native rows once; the float64 view is rebuilt by exact
		// widening on load.
		a.Points, a.Points32 = nil, st.Backing32()
	}
	if s.quant != nil {
		parts := s.quant.Parts()
		a.Quant = &parts
	}
	if _, err := w.Write(archiveHeader(archiveVersionV3)); err != nil {
		return fmt.Errorf("qdcbir: write header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(&a); err != nil {
		return fmt.Errorf("qdcbir: encode: %w", err)
	}
	return nil
}

// SaveFile persists the system to a file.
func (s *System) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reconstructs a system persisted by Save. Every archive version this
// build knows — the current version 3, versions 1 and 2, and the header-less
// version-0 gob format — is accepted; the version is detected from the first
// bytes of the stream. A headered archive of an unknown version is rejected
// with an error naming the on-disk version and the supported range.
func Load(r io.Reader) (*System, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if len(head) == 0 || head[0] != archivePrefix[0] {
		// Not the headered family: either a version-0 bare gob stream or
		// garbage, which gob rejects with its own decode error.
		return loadV0(br)
	}
	if len(head) < 4 {
		return nil, fmt.Errorf("qdcbir: truncated archive header: %d byte(s) of the 4-byte magic (%w)", len(head), err)
	}
	if !bytes.Equal(head[:3], archivePrefix[:]) {
		return nil, fmt.Errorf("qdcbir: corrupt archive header % x: want prefix % x", head, archivePrefix)
	}
	version := head[3]
	if version == archiveVersionV4 {
		return nil, fmt.Errorf("qdcbir: archive version %d is a dynamic segmented archive: load it with LoadDynamic", version)
	}
	if version < archiveVersionV1 || version > archiveVersionMax {
		return nil, fmt.Errorf("qdcbir: archive version %d unsupported: this build reads versions 0 through %d (version 0 archives are header-less)",
			version, archiveVersionMax)
	}
	if _, err := br.Discard(4); err != nil {
		return nil, fmt.Errorf("qdcbir: read header: %w", err)
	}
	// Versions 1 through 3 share a payload layout (each adds optional
	// fields, which gob leaves zero when absent), so one decoder serves all
	// three.
	return loadStoreBacked(br)
}

// loadStoreBacked decodes the store-backed formats (versions 1-3): the
// corpus adopts the decoded backing array — at the persisted precision for a
// version-3 archive — and the RFS structure is rebuilt over the corpus
// store's row views. A quantizer sidecar, when present, is validated and
// adopted so the loaded system scans quantized without retraining.
func loadStoreBacked(r io.Reader) (*System, error) {
	var a archiveV3
	if err := gob.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("qdcbir: decode: %w", err)
	}
	prec, err := store.ParsePrecision(a.Precision)
	if err != nil {
		return nil, fmt.Errorf("qdcbir: corpus store: %w", err)
	}
	var main *store.FeatureStore
	if prec == store.Float32 {
		if a.Points != nil {
			return nil, fmt.Errorf("qdcbir: corpus store: float32 archive carries %d float64 points", len(a.Points))
		}
		main, err = store.FromBacking32(a.Dim, a.Points32)
	} else {
		if a.Points32 != nil {
			return nil, fmt.Errorf("qdcbir: corpus store: float64 archive carries %d float32 points", len(a.Points32))
		}
		main, err = store.FromBacking(a.Dim, a.Points)
	}
	if err != nil {
		return nil, fmt.Errorf("qdcbir: corpus store: %w", err)
	}
	var corpus *dataset.Corpus
	if prec == store.Float32 {
		// Channels are an image-mode concept; float32 stores come from
		// imported vectors, so the store is adopted directly (keeping the
		// native backing) and there are no channels to rebuild.
		corpus, err = dataset.ReassembleStore(a.Infos, main)
	} else {
		vectors := main.Views()
		var channelVectors map[img.Channel][]vec.Vector
		if a.HasChannels {
			channelVectors = map[img.Channel][]vec.Vector{
				img.ChannelOriginal: vectors,
			}
			for ch, backing := range a.Channels {
				cst, err := store.FromBacking(a.Dim, backing)
				if err != nil {
					return nil, fmt.Errorf("qdcbir: channel %v store: %w", ch, err)
				}
				channelVectors[ch] = cst.Views()
			}
		}
		corpus, err = dataset.Reassemble(a.Infos, vectors, channelVectors)
	}
	if err != nil {
		return nil, err
	}
	if a.NormMin != nil {
		corpus.Extractor = feature.NewExtractorFromBounds(a.NormMin, a.NormMax)
	}
	structure, err := rfs.FromTopologySnapshot(a.RFS, corpus.Store())
	if err != nil {
		return nil, err
	}
	var qz *store.Quantized
	if a.Quant != nil {
		qz, err = store.FromParts(*a.Quant)
		if err != nil {
			return nil, fmt.Errorf("qdcbir: quantizer: %w", err)
		}
	}
	return assembleLoaded(a.Cfg, corpus, structure, qz)
}

// loadV0 decodes the legacy gob format. The duplicated original channel in
// old archives is discarded in favour of an alias when the corpus adopts its
// feature store, so version-0 archives load into exactly the deduplicated
// in-memory layout that version-1 archives produce.
func loadV0(r io.Reader) (*System, error) {
	var a archive
	if err := gob.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("qdcbir: decode: %w", err)
	}
	structure, err := rfs.FromSnapshot(a.RFS)
	if err != nil {
		return nil, err
	}
	corpus, err := dataset.Reassemble(a.Infos, vectorsOf(structure), a.ChannelVectors)
	if err != nil {
		return nil, err
	}
	if a.NormMin != nil {
		corpus.Extractor = feature.NewExtractorFromBounds(a.NormMin, a.NormMax)
	}
	return assembleLoaded(a.Cfg, corpus, structure, nil)
}

// LoadFile reconstructs a system from a file written by SaveFile.
func LoadFile(path string) (*System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// vectorsOf extracts the dense vector table from a reconstructed structure.
func vectorsOf(s *rfs.Structure) []vec.Vector {
	out := make([]vec.Vector, s.Len())
	for i := range out {
		out[i] = s.Point(rstar.ItemID(i))
	}
	return out
}

// assembleLoaded wires a reconstructed structure without rebuilding it. A
// non-nil qz is the archive's persisted quantizer; a quantized config with
// no persisted quantizer (a v0/v1 archive saved before quantization existed)
// retrains one from the corpus store, so either way the loaded system scans
// exactly like the one that was saved.
func assembleLoaded(cfg Config, corpus *dataset.Corpus, structure *rfs.Structure, qz *store.Quantized) (*System, error) {
	cfg = cfg.withDefaults()
	if err := structure.Validate(); err != nil {
		return nil, fmt.Errorf("qdcbir: rfs: %w", err)
	}
	if err := corpus.Validate(); err != nil {
		return nil, fmt.Errorf("qdcbir: corpus: %w", err)
	}
	quant := attachQuantizer(&cfg, corpus, structure, qz)
	if cfg.Float32 {
		corpus.Store().MaterializeFloat32()
	}
	engine := newEngine(cfg, structure)
	return &System{cfg: cfg, corpus: corpus, rfs: structure, engine: engine, quant: quant}, nil
}
