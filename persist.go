package qdcbir

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"qdcbir/internal/dataset"
	"qdcbir/internal/feature"
	"qdcbir/internal/img"
	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/vec"
)

// archive is the gob wire format for a whole System. Rendered images are not
// persisted (they are cheap to regenerate and only needed at build time);
// channel vectors are kept when present so a reloaded system can still run
// the MV baseline.
type archive struct {
	Cfg            Config
	Infos          []dataset.Info
	RFS            *rfs.Snapshot
	ChannelVectors map[img.Channel][]vec.Vector
	NormMin        vec.Vector // extractor state (min-max normalizer)
	NormMax        vec.Vector
}

// Save persists the system to w. The corpus vectors travel inside the RFS
// snapshot; ground truth, configuration, and the feature normalizer travel
// alongside, so a Load-ed system answers queries identically.
func (s *System) Save(w io.Writer) error {
	a := archive{
		Cfg:            s.cfg,
		Infos:          s.corpus.Infos,
		RFS:            s.rfs.Snapshot(),
		ChannelVectors: s.corpus.ChannelVectors,
	}
	if s.corpus.Extractor != nil {
		min, max := s.corpus.Extractor.NormalizerBounds()
		a.NormMin, a.NormMax = min, max
	}
	if err := gob.NewEncoder(w).Encode(&a); err != nil {
		return fmt.Errorf("qdcbir: encode: %w", err)
	}
	return nil
}

// SaveFile persists the system to a file.
func (s *System) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reconstructs a system persisted by Save.
func Load(r io.Reader) (*System, error) {
	var a archive
	if err := gob.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("qdcbir: decode: %w", err)
	}
	structure, err := rfs.FromSnapshot(a.RFS)
	if err != nil {
		return nil, err
	}
	corpus, err := dataset.Reassemble(a.Infos, vectorsOf(structure), a.ChannelVectors)
	if err != nil {
		return nil, err
	}
	if a.NormMin != nil {
		corpus.Extractor = feature.NewExtractorFromBounds(a.NormMin, a.NormMax)
	}
	sys, err := assembleLoaded(a.Cfg, corpus, structure)
	if err != nil {
		return nil, err
	}
	return sys, nil
}

// LoadFile reconstructs a system from a file written by SaveFile.
func LoadFile(path string) (*System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// vectorsOf extracts the dense vector table from a reconstructed structure.
func vectorsOf(s *rfs.Structure) []vec.Vector {
	out := make([]vec.Vector, s.Len())
	for i := range out {
		out[i] = s.Point(rstar.ItemID(i))
	}
	return out
}

// assembleLoaded wires a reconstructed structure without rebuilding it.
func assembleLoaded(cfg Config, corpus *dataset.Corpus, structure *rfs.Structure) (*System, error) {
	cfg = cfg.withDefaults()
	if err := structure.Validate(); err != nil {
		return nil, fmt.Errorf("qdcbir: rfs: %w", err)
	}
	if err := corpus.Validate(); err != nil {
		return nil, fmt.Errorf("qdcbir: corpus: %w", err)
	}
	engine := newEngine(cfg, structure)
	return &System{cfg: cfg, corpus: corpus, rfs: structure, engine: engine}, nil
}
