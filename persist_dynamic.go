package qdcbir

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"qdcbir/internal/obs"
	"qdcbir/internal/rfs"
	"qdcbir/internal/seg"
	"qdcbir/internal/store"
)

// archiveSegV4 is one sealed segment on the wire: the ascending global IDs,
// the store backing at its native precision (Points for a float64 store,
// Points32 for a float32-precision store — never both), the point-free tree
// topology, and tombstoned global IDs. The SQ8 quantizer is NOT persisted:
// training is deterministic from the segment's rows, so the loader retrains
// it — and even a hypothetically different quantizer could not change
// results, because the SQ8 path reranks exactly.
type archiveSegV4 struct {
	IDs        []int
	Points     []float64
	Points32   []float32
	RFS        *rfs.TopologySnapshot
	Tombstoned []int
}

// archiveV4 is the dynamic-system wire format: the engine knobs, the sealed
// segments, the memtable image (base ID, row-major float64 rows including
// tombstoned slots, tombstoned slot indices), the ID allocator and epoch,
// and the label table. Written by Dynamic.Save behind the versioned 4-byte
// header with version 4; read only by LoadDynamic (the static Load rejects
// it with a pointer here).
type archiveV4 struct {
	Dim                int
	SealThreshold      int
	MaxSegments        int
	Seed               int64
	NodeCapacity       int
	RepFraction        float64
	BoundaryThreshold  float64
	Quantized          bool
	RerankFactor       int
	Float32            bool
	DisableAutoCompact bool

	Epoch  uint64
	NextID int
	Segs   []archiveSegV4

	MemBaseID int
	MemRows   []float64
	MemTombs  []int

	Labels map[int]string
}

// Save persists the dynamic system in the version-4 format. The snapshot
// pinned at entry is what travels: concurrent writers are never blocked, and
// rows inserted after the pin simply miss this archive (the persisted NextID
// is taken after the pin, so their IDs are not reused on the restored side
// either).
func (d *Dynamic) Save(w io.Writer) error {
	snap := d.db.Acquire()
	defer snap.Release()
	cfg := d.cfg
	a := archiveV4{
		Dim:                cfg.Dim,
		SealThreshold:      cfg.SealThreshold,
		MaxSegments:        cfg.MaxSegments,
		Seed:               cfg.Seed,
		NodeCapacity:       cfg.NodeCapacity,
		RepFraction:        cfg.RepFraction,
		BoundaryThreshold:  cfg.BoundaryThreshold,
		Quantized:          cfg.Quantized,
		RerankFactor:       cfg.RerankFactor,
		Float32:            cfg.Float32,
		DisableAutoCompact: cfg.DisableAutoCompact,
		Epoch:              snap.Epoch(),
		NextID:             d.db.Stats().NextID,
		Labels:             d.labelsCopy(),
	}
	for _, in := range snap.SealedInputs() {
		as := archiveSegV4{
			IDs:        in.IDs,
			RFS:        in.Structure.TopologySnapshot(),
			Tombstoned: in.Tombstoned,
		}
		if in.Store.Precision() == store.Float32 {
			as.Points32 = in.Store.Backing32()
		} else {
			as.Points = in.Store.Backing()
		}
		a.Segs = append(a.Segs, as)
	}
	mem := snap.MemInput()
	a.MemBaseID, a.MemRows, a.MemTombs = mem.BaseID, mem.Rows, mem.Tombstoned

	if _, err := w.Write(archiveHeader(archiveVersionV4)); err != nil {
		return fmt.Errorf("qdcbir: write header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(&a); err != nil {
		return fmt.Errorf("qdcbir: encode: %w", err)
	}
	return nil
}

// SaveFile persists the dynamic system to a file.
func (d *Dynamic) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadDynamic reconstructs a dynamic system from any archive this build
// knows: a version-4 dynamic archive restores segments, memtable,
// tombstones, epoch, and labels; a static archive (versions 0 through 3)
// loads through the monolithic path and is adopted as a single sealed
// segment via OpenDynamic. observer may be nil; when set it receives the
// restored engine's ingest metrics.
func LoadDynamic(r io.Reader, observer *obs.Observer) (*Dynamic, error) {
	br := bufio.NewReader(r)
	head, _ := br.Peek(4)
	if len(head) == 4 && bytes.Equal(head[:3], archivePrefix[:]) && head[3] == archiveVersionV4 {
		if _, err := br.Discard(4); err != nil {
			return nil, fmt.Errorf("qdcbir: read header: %w", err)
		}
		return loadDynamicV4(br, observer)
	}
	sys, err := Load(br)
	if err != nil {
		return nil, err
	}
	return OpenDynamic(sys, DynamicConfig{Observer: observer})
}

// LoadDynamicFile reconstructs a dynamic system from a file.
func LoadDynamicFile(path string, observer *obs.Observer) (*Dynamic, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDynamic(f, observer)
}

// loadDynamicV4 decodes a version-4 payload: each segment's store adopts its
// backing at the persisted precision, the tree is rebuilt point-free from
// the topology snapshot, and (for quantized configs) the SQ8 quantizer is
// retrained per segment — deterministic, and harmless to results either way
// since the SQ8 path reranks exactly. The engine then reassembles through
// seg.Restore, which re-applies float32 materialization and tombstones.
func loadDynamicV4(r io.Reader, observer *obs.Observer) (*Dynamic, error) {
	var a archiveV4
	if err := gob.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("qdcbir: decode: %w", err)
	}
	cfg := DynamicConfig{
		Dim:                a.Dim,
		SealThreshold:      a.SealThreshold,
		MaxSegments:        a.MaxSegments,
		Seed:               a.Seed,
		NodeCapacity:       a.NodeCapacity,
		RepFraction:        a.RepFraction,
		BoundaryThreshold:  a.BoundaryThreshold,
		Quantized:          a.Quantized,
		RerankFactor:       a.RerankFactor,
		Float32:            a.Float32,
		DisableAutoCompact: a.DisableAutoCompact,
		Observer:           observer,
	}
	sealed := make([]seg.SealedInput, 0, len(a.Segs))
	for si, as := range a.Segs {
		var st *store.FeatureStore
		var err error
		if as.Points32 != nil {
			if as.Points != nil {
				return nil, fmt.Errorf("qdcbir: segment %d carries both float64 and float32 points", si)
			}
			st, err = store.FromBacking32(a.Dim, as.Points32)
		} else {
			st, err = store.FromBacking(a.Dim, as.Points)
		}
		if err != nil {
			return nil, fmt.Errorf("qdcbir: segment %d store: %w", si, err)
		}
		structure, err := rfs.FromTopologySnapshot(as.RFS, st)
		if err != nil {
			return nil, fmt.Errorf("qdcbir: segment %d: %w", si, err)
		}
		in := seg.SealedInput{IDs: as.IDs, Store: st, Structure: structure, Tombstoned: as.Tombstoned}
		if a.Quantized {
			if qz, qerr := store.Quantize(st); qerr == nil && structure.AdoptQuantized(qz) == nil {
				in.Quantized = true
			}
		}
		sealed = append(sealed, in)
	}
	db, err := seg.Restore(cfg.segConfig(), sealed, seg.MemInput{
		BaseID:     a.MemBaseID,
		Rows:       a.MemRows,
		Tombstoned: a.MemTombs,
	}, a.NextID, a.Epoch)
	if err != nil {
		return nil, err
	}
	labels := a.Labels
	if labels == nil {
		labels = make(map[int]string)
	}
	return &Dynamic{cfg: dynamicConfigFrom(db.Config(), observer), db: db, labels: labels}, nil
}
