package qdcbir

// This file regenerates every table and figure of the paper's evaluation as
// Go benchmarks, one per artifact (DESIGN.md §4 maps each to its experiment):
//
//	BenchmarkTable1Quality      Table 1  — per-query precision & GTIR, MV vs QD
//	BenchmarkTable2Rounds       Table 2  — per-round quality
//	BenchmarkFig1PCA            Figure 1 — PCA cluster scattering
//	BenchmarkFig4to9Qualitative Figures 4–9 — qualitative top-k retrievals
//	BenchmarkFig10Query         Figure 10 — overall query time vs DB size
//	BenchmarkFig11Iteration     Figure 11 — feedback-iteration time vs DB size
//	BenchmarkSec522GlobalKNN    §5.2.2 contrast — per-round global k-NN cost
//
// plus component microbenchmarks for the substrates. Benchmarks run at quick
// scale so `go test -bench=.` completes in minutes; `cmd/qdbench -scale
// paper` reproduces the full-scale numbers recorded in EXPERIMENTS.md.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"qdcbir/internal/baseline"
	"qdcbir/internal/dataset"
	"qdcbir/internal/experiments"
	"qdcbir/internal/feature"
	"qdcbir/internal/img"
	"qdcbir/internal/obs"
	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/user"
	"qdcbir/internal/vec"
)

var (
	benchOnce sync.Once
	benchSys  *experiments.System

	vecOnce sync.Once
	vecSys  map[int]*experiments.System
)

func benchSystem(b *testing.B) *experiments.System {
	b.Helper()
	benchOnce.Do(func() { benchSys = experiments.BuildSystem(experiments.QuickConfig()) })
	return benchSys
}

func vectorSystems(b *testing.B) map[int]*experiments.System {
	b.Helper()
	vecOnce.Do(func() {
		vecSys = make(map[int]*experiments.System)
		for _, size := range []int{1000, 4000, 16000} {
			vecSys[size] = experiments.BuildVectorSystem(experiments.QuickConfig(), size)
		}
	})
	return vecSys
}

// BenchmarkTable1Quality regenerates Table 1: the full quality study (11
// queries x simulated users, QD vs MV) on the quick corpus.
func BenchmarkTable1Quality(b *testing.B) {
	sys := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := experiments.RunQuality(sys)
		if rep.AvgQDG < 0.5 {
			b.Fatalf("quality collapsed: %v", rep.AvgQDG)
		}
	}
}

// BenchmarkTable2Rounds regenerates Table 2: the same sessions viewed
// per-round (the runner produces both tables; the benchmark guards the
// per-round series).
func BenchmarkTable2Rounds(b *testing.B) {
	sys := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := experiments.RunQuality(sys)
		if len(rep.Rounds) != 3 {
			b.Fatal("missing rounds")
		}
	}
}

// BenchmarkFig1PCA regenerates Figure 1: PCA projection of the corpus and
// cluster-separation statistics for the multi-view category.
func BenchmarkFig1PCA(b *testing.B) {
	sys := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := experiments.RunFig1(sys, "car")
		if len(rep.Subconcepts) == 0 {
			b.Fatal("no clusters")
		}
	}
}

// BenchmarkFig4to9Qualitative regenerates Figures 4-9: the three computer
// queries' top-k retrievals under MV and QD.
func BenchmarkFig4to9Qualitative(b *testing.B) {
	sys := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := experiments.RunQualitative(sys)
		if len(rep.Cases) != 3 {
			b.Fatal("missing cases")
		}
	}
}

// qdSessionOnce runs one full QD query (browse, 2 feedback rounds, finalize)
// against the system — the unit of Figure 10.
func qdSessionOnce(sys *experiments.System, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	subs := sys.Corpus.Subconcepts()
	target := subs[rng.Intn(len(subs))]
	sim := user.New([]string{target}, sys.Corpus.SubconceptOf, rng)
	sess := sys.Engine.NewSession(rng)
	for round := 0; round < 2; round++ {
		var shown []int
		for d := 0; d < 10; d++ {
			for _, c := range sess.Candidates() {
				shown = append(shown, int(c.ID))
			}
		}
		sim.MaxPerRound = 6
		var marks []rstar.ItemID
		for _, id := range sim.SelectDiverse(shown) {
			marks = append(marks, rstar.ItemID(id))
		}
		if err := sess.Feedback(marks); err != nil {
			return err
		}
	}
	if len(sess.Relevant()) == 0 {
		return nil // unlucky browse; still a full-cost session
	}
	_, err := sess.Finalize(50)
	return err
}

// BenchmarkFig10Query regenerates Figure 10's series: overall query
// processing time per database size.
func BenchmarkFig10Query(b *testing.B) {
	for size, sys := range vectorSystems(b) {
		sys := sys
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := qdSessionOnce(sys, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11Iteration regenerates Figure 11's series: the cost of a
// single feedback iteration (one browse + descent round) per database size.
func BenchmarkFig11Iteration(b *testing.B) {
	for size, sys := range vectorSystems(b) {
		sys := sys
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			subs := sys.Corpus.Subconcepts()
			target := subs[0]
			sim := user.New([]string{target}, sys.Corpus.SubconceptOf, rng)
			sess := sys.Engine.NewSession(rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var shown []int
				for d := 0; d < 10; d++ {
					for _, c := range sess.Candidates() {
						shown = append(shown, int(c.ID))
					}
				}
				sim.MaxPerRound = 6
				var marks []rstar.ItemID
				for _, id := range sim.SelectDiverse(shown) {
					marks = append(marks, rstar.ItemID(id))
				}
				if err := sess.Feedback(marks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSec522GlobalKNN prices one round of traditional relevance feedback
// (a global k-NN through the index with QPM refinement) for the §5.2.2 /
// §1.2 comparison against BenchmarkFig11Iteration.
func BenchmarkSec522GlobalKNN(b *testing.B) {
	for size, sys := range vectorSystems(b) {
		sys := sys
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			tk := baseline.NewTreeKNN(sys.RFS.Tree(), sys.Corpus.Store(), 0, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids := tk.Search(50)
				tk.Feedback(ids[:5])
			}
		})
	}
}

// BenchmarkConcurrentSessions measures query throughput with many parallel
// sessions over one shared read-only RFS structure — the "very large user
// community" scalability claim of §6.
func BenchmarkConcurrentSessions(b *testing.B) {
	sys := vectorSystems(b)[4000]
	var ctr int64
	b.RunParallel(func(pb *testing.PB) {
		seed := atomic.AddInt64(&ctr, 1)
		i := int64(0)
		for pb.Next() {
			i++
			if err := qdSessionOnce(sys, seed*100000+i); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Component microbenchmarks ----

// BenchmarkFeatureExtract prices one 37-d extraction (the corpus builder's
// inner loop).
func BenchmarkFeatureExtract(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	im := img.New(dataset.RenderSize, dataset.RenderSize)
	im.FillVGradient(img.RGB{R: 200, G: 60, B: 40}, img.RGB{R: 20, G: 80, B: 220})
	im.FillEllipse(24, 24, 10, 8, img.RGB{R: 240, G: 240, B: 10})
	im.Speckle(rng, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := feature.Extract(im); len(v) != feature.Dim {
			b.Fatal("bad extraction")
		}
	}
}

// BenchmarkRStarKNN prices a global 10-NN through the index at 16k points.
func BenchmarkRStarKNN(b *testing.B) {
	sys := vectorSystems(b)[16000]
	q := sys.Corpus.Vectors[0]
	tree := sys.RFS.Tree()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ns := tree.KNN(q, 10, nil); len(ns) != 10 {
			b.Fatal("bad kNN")
		}
	}
}

// BenchmarkRStarInsert prices incremental R* insertion (with forced
// reinsertion and splits) in the 37-d production configuration.
func BenchmarkRStarInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]vec.Vector, b.N)
	for i := range pts {
		p := make(vec.Vector, 37)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	tree := rstar.New(37, rstar.Config{MaxFill: 100})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Insert(rstar.ItemID(i), pts[i])
	}
}

// BenchmarkRFSBuild prices the whole RFS construction (bulk load + two-stage
// representative selection) at 4k vectors.
func BenchmarkRFSBuild(b *testing.B) {
	sys := vectorSystems(b)[4000]
	points := sys.Corpus.Vectors
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := rfs.Build(points, rfs.BuildConfig{Seed: int64(i)})
		if s.RepCount() == 0 {
			b.Fatal("no reps")
		}
	}
}

// BenchmarkMVSearch prices one Multiple-Viewpoints retrieval (4 viewpoints,
// linear scans) at 16k vectors — the per-round cost of the paper's
// comparison baseline.
func BenchmarkMVSearch(b *testing.B) {
	sys := vectorSystems(b)[16000]
	mv := baseline.NewMVSubspaces(sys.Corpus.Store(), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ids := mv.Search(50); len(ids) != 50 {
			b.Fatal("bad MV search")
		}
	}
}

// BenchmarkParallelBuild compares the serial and the one-worker-per-CPU
// build pipeline end to end: corpus rendering + 37-d extraction, STR bulk
// load, and k-means representative selection. Output is byte-identical
// across the two (TestParallelBuildDeterminism); only wall-clock differs.
func BenchmarkParallelBuild(b *testing.B) {
	for _, bc := range []struct {
		name string
		p    int
	}{{"serial", 1}, {"maxprocs", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := parTestConfig(bc.p)
			for i := 0; i < b.N; i++ {
				if _, err := Build(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSystemKNNObserver prices the Observer hook on the hottest read
// path. "none" is the default nil hook — the search runs exactly the
// uninstrumented code (no accounter, no clocks, no atomics) plus one
// nil-check, so it benchmarks the zero-cost-when-nil contract against the
// pre-instrumentation baseline. "live" shows what full telemetry costs: a
// per-call disk.Counter threaded through every node access, two clock reads,
// and a histogram observation.
func BenchmarkSystemKNNObserver(b *testing.B) {
	sys, err := Build(parTestConfig(0))
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		sys  *System
	}{
		{"none", sys},
		{"live", sys.WithObserver(obs.New(obs.NewRegistry()))},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bc.sys.KNN(i%bc.sys.Len(), 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelFinalize compares serial vs pooled execution of the final
// localized k-NN subqueries: one QueryByExamples call over example images
// drawn from several subconcepts (several independent subqueries to fan out).
func BenchmarkParallelFinalize(b *testing.B) {
	for _, bc := range []struct {
		name string
		p    int
	}{{"serial", 1}, {"maxprocs", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			sys, err := Build(parTestConfig(bc.p))
			if err != nil {
				b.Fatal(err)
			}
			var relevant []rstar.ItemID
			for i, key := range sys.Corpus().Subconcepts() {
				if i >= 4 {
					break
				}
				for _, id := range sys.Corpus().SubconceptIDs(key)[:3] {
					relevant = append(relevant, rstar.ItemID(id))
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sys.engine.QueryByExamples(relevant, 60, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
