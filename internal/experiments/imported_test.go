package experiments

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"qdcbir/internal/dataset"
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// importedCorpus builds a labeled float32 corpus the way the import path
// does: clustered embedding rows adopted through a float32-precision store
// and dataset.ReassembleStore, with per-cluster subconcept ground truth.
func importedCorpus(t *testing.T, clusters, perCluster, dim int) *dataset.Corpus {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	n := clusters * perCluster
	data := make([]float32, 0, n*dim)
	infos := make([]dataset.Info, 0, n)
	id := 0
	for c := 0; c < clusters; c++ {
		center := make(vec.Vector, dim)
		for j := range center {
			center[j] = rng.Float64() * 10
		}
		key := dataset.Key("imported", string(rune('a'+c)))
		for i := 0; i < perCluster; i++ {
			for j := 0; j < dim; j++ {
				data = append(data, float32(center[j]+rng.NormFloat64()*0.05))
			}
			infos = append(infos, dataset.Info{ID: id, Category: "imported", Subconcept: key})
			id++
		}
	}
	st, err := store.FromBacking32(dim, data)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := dataset.ReassembleStore(infos, st)
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

func TestCorpusQueries(t *testing.T) {
	corpus := importedCorpus(t, 6, 20, 8)
	qs := CorpusQueries(corpus, 2, 0)
	if len(qs) != 6 {
		t.Fatalf("%d queries, want 6", len(qs))
	}
	for i := 1; i < len(qs); i++ {
		if qs[i].Name <= qs[i-1].Name {
			t.Fatal("queries not in deterministic sorted order")
		}
	}
	if capped := CorpusQueries(corpus, 2, 3); len(capped) != 3 {
		t.Fatalf("cap ignored: %d queries", len(capped))
	}
	// A min-membership above the cluster size filters everything out.
	if none := CorpusQueries(corpus, 21, 0); len(none) != 0 {
		t.Fatalf("minMembers filter kept %d queries", len(none))
	}
}

// TestRunQDvsRocchioImported drives the full imported-embedding evaluation:
// float32 store → corpus system → corpus-derived queries → QD and Rocchio
// head to head. Both techniques must produce meaningful retrieval on the
// well-separated clusters.
func TestRunQDvsRocchioImported(t *testing.T) {
	corpus := importedCorpus(t, 5, 24, 12)
	cfg := Config{
		Seed: 1, Users: 2, Rounds: 2,
		MaxFill: 16, TargetFill: 14, RepFraction: 0.2,
	}
	sys := BuildCorpusSystem(cfg, corpus)
	qs := CorpusQueries(corpus, 2, 4)
	rep := RunQDvsRocchio(sys, qs)
	if rep.Queries != 4 {
		t.Fatalf("evaluated %d queries, want 4", rep.Queries)
	}
	if len(rep.Techniques) != 2 {
		t.Fatalf("%d techniques", len(rep.Techniques))
	}
	for _, tq := range rep.Techniques {
		if tq.Precision <= 0.3 {
			t.Errorf("%s precision %.2f suspiciously low on separated clusters", tq.Name, tq.Precision)
		}
	}
	if len(rep.PerQuery) != 4 {
		t.Errorf("per-query rows for %d queries", len(rep.PerQuery))
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	if !strings.Contains(buf.String(), "QD vs Rocchio") {
		t.Error("renderer missing header")
	}
}
