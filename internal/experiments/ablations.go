package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"qdcbir/internal/core"
	"qdcbir/internal/dataset"
	"qdcbir/internal/disk"
	"qdcbir/internal/metrics"
	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
)

// ThresholdPoint is one boundary-threshold setting's outcome (§3.3 ablation).
type ThresholdPoint struct {
	Threshold  float64
	Precision  float64
	GTIR       float64
	Expansions float64 // mean boundary expansions per query
	FinalReads float64 // mean final-kNN node reads per query
}

// RepFractionPoint is one representative-fraction setting's outcome (§4
// "5% of the images are designated as representative images" ablation).
type RepFractionPoint struct {
	Fraction  float64
	RepCount  int
	Precision float64
	GTIR      float64
	BuildTime time.Duration
}

// CapacityPoint is one node-capacity setting's outcome (§5.1 "maximum of 100
// and minimum of 70 images each, resulting in a RFS structure that is 3
// levels deep" ablation).
type CapacityPoint struct {
	MaxFill   int
	Height    int
	Leaves    int
	Precision float64
	GTIR      float64
}

// BuildModePoint compares RFS construction strategies: STR bulk loading (the
// default) versus incremental R* insertion (an alternative the R*-tree
// supports; the paper does not specify which its prototype used).
type BuildModePoint struct {
	Mode      string
	BuildTime time.Duration
	Height    int
	Precision float64
	GTIR      float64
}

// CachePoint measures a shared server buffer pool's effect on the final
// localized k-NN I/O (the §5.2.2 cost): hit rate across a stream of queries
// at one LRU capacity.
type CachePoint struct {
	Capacity int
	HitRate  float64
	Reads    float64 // mean cold reads per query
}

// AblationReport bundles the design-choice sweeps.
type AblationReport struct {
	Cfg        Config
	Thresholds []ThresholdPoint
	Fractions  []RepFractionPoint
	Capacities []CapacityPoint
	BuildModes []BuildModePoint
	Caches     []CachePoint
}

// RunAblations sweeps the three design parameters the paper fixes empirically
// (threshold 0.4, representatives 5%, capacity 100) and measures retrieval
// quality on the Table-1 queries at each setting.
func RunAblations(cfg Config) *AblationReport {
	cfg = cfg.withDefaults()
	rep := &AblationReport{Cfg: cfg}
	spec := dataset.SmallSpec(cfg.Seed, cfg.Categories, cfg.TotalImages)
	corpus := dataset.Build(spec, dataset.Options{Seed: cfg.Seed + 1, WithChannels: false})

	baseRFS := rfs.Build(corpus.Vectors, rfs.BuildConfig{
		RepFraction: cfg.RepFraction,
		Tree:        rstar.Config{MaxFill: cfg.MaxFill},
		TargetFill:  cfg.TargetFill,
		Seed:        cfg.Seed + 2,
	})

	// --- Boundary threshold sweep (shared structure, varying engine) ---
	for _, th := range []float64{0.1, 0.2, 0.4, 0.6, 0.9} {
		sys := &System{
			Cfg:    cfg,
			Corpus: corpus,
			RFS:    baseRFS,
			Engine: core.NewEngine(baseRFS, core.Config{BoundaryThreshold: th}),
		}
		p, g, exp, reads := qualityAt(sys)
		rep.Thresholds = append(rep.Thresholds, ThresholdPoint{
			Threshold: th, Precision: p, GTIR: g, Expansions: exp, FinalReads: reads,
		})
	}

	// --- Representative fraction sweep ---
	for _, frac := range []float64{0.01, 0.03, 0.05, 0.10} {
		start := time.Now()
		structure := rfs.Build(corpus.Vectors, rfs.BuildConfig{
			RepFraction: frac,
			Tree:        rstar.Config{MaxFill: cfg.MaxFill},
			TargetFill:  cfg.TargetFill,
			Seed:        cfg.Seed + 2,
		})
		built := time.Since(start)
		sys := &System{
			Cfg:    cfg,
			Corpus: corpus,
			RFS:    structure,
			Engine: core.NewEngine(structure, core.Config{BoundaryThreshold: cfg.Threshold}),
		}
		p, g, _, _ := qualityAt(sys)
		rep.Fractions = append(rep.Fractions, RepFractionPoint{
			Fraction: frac, RepCount: structure.RepCount(), Precision: p, GTIR: g, BuildTime: built,
		})
	}

	// --- Node capacity sweep ---
	for _, maxFill := range capacitySweep(cfg) {
		structure := rfs.Build(corpus.Vectors, rfs.BuildConfig{
			RepFraction: cfg.RepFraction,
			Tree:        rstar.Config{MaxFill: maxFill},
			TargetFill:  maxFill * 93 / 100,
			Seed:        cfg.Seed + 2,
		})
		leaves := 0
		structure.Tree().Walk(func(n *rstar.Node, level int) {
			if level == 0 {
				leaves++
			}
		})
		sys := &System{
			Cfg:    cfg,
			Corpus: corpus,
			RFS:    structure,
			Engine: core.NewEngine(structure, core.Config{BoundaryThreshold: cfg.Threshold}),
		}
		p, g, _, _ := qualityAt(sys)
		rep.Capacities = append(rep.Capacities, CapacityPoint{
			MaxFill: maxFill, Height: structure.Tree().Height(), Leaves: leaves,
			Precision: p, GTIR: g,
		})
	}

	// --- Build mode: STR bulk load vs incremental R* insertion ---
	for _, mode := range []struct {
		name      string
		hierarchy string
	}{{"bulk (STR)", "str"}, {"incremental (R*)", "insert"}, {"kmeans tree", "kmeans"}} {
		start := time.Now()
		structure := rfs.Build(corpus.Vectors, rfs.BuildConfig{
			RepFraction: cfg.RepFraction,
			Tree:        rstar.Config{MaxFill: cfg.MaxFill},
			TargetFill:  cfg.TargetFill,
			Hierarchy:   mode.hierarchy,
			Seed:        cfg.Seed + 2,
		})
		built := time.Since(start)
		sys := &System{
			Cfg:    cfg,
			Corpus: corpus,
			RFS:    structure,
			Engine: core.NewEngine(structure, core.Config{BoundaryThreshold: cfg.Threshold}),
		}
		p, g, _, _ := qualityAt(sys)
		rep.BuildModes = append(rep.BuildModes, BuildModePoint{
			Mode: mode.name, BuildTime: built, Height: structure.Tree().Height(),
			Precision: p, GTIR: g,
		})
	}

	// --- Shared buffer pool for the final localized k-NN (§5.2.2) ---
	baseSys := &System{
		Cfg:    cfg,
		Corpus: corpus,
		RFS:    baseRFS,
		Engine: core.NewEngine(baseRFS, core.Config{BoundaryThreshold: cfg.Threshold}),
	}
	queries := cacheWorkload(baseSys, 50)
	for _, capacity := range []int{0, 16, 64, 256} {
		cache := disk.NewLRUCache(capacity)
		for _, q := range queries {
			_, _, _ = baseSys.Engine.QueryByExamples(q, 30, nil, cache)
		}
		rep.Caches = append(rep.Caches, CachePoint{
			Capacity: capacity,
			HitRate:  cache.HitRate(),
			Reads:    float64(cache.Reads()) / float64(len(queries)),
		})
	}
	return rep
}

// cacheWorkload samples example-image sets for the buffer-pool sweep: each
// query is a handful of images from one random subconcept.
func cacheWorkload(sys *System, n int) [][]rstar.ItemID {
	rng := rand.New(rand.NewSource(sys.Cfg.Seed + 77))
	subs := sys.Corpus.Subconcepts()
	var out [][]rstar.ItemID
	for i := 0; i < n; i++ {
		ids := sys.Corpus.SubconceptIDs(subs[rng.Intn(len(subs))])
		if len(ids) == 0 {
			continue
		}
		var q []rstar.ItemID
		for j := 0; j < 3 && j < len(ids); j++ {
			q = append(q, rstar.ItemID(ids[rng.Intn(len(ids))]))
		}
		out = append(out, q)
	}
	return out
}

// capacitySweep picks node capacities appropriate for the corpus scale.
func capacitySweep(cfg Config) []int {
	if cfg.TotalImages <= 2000 {
		return []int{12, 24, 48}
	}
	return []int{50, 100, 200}
}

// qualityAt runs the Table-1 queries once per user at the system's settings
// and returns mean precision, GTIR, expansions, and final reads.
func qualityAt(sys *System) (precision, gtirAvg, expansions, finalReads float64) {
	cfg := sys.Cfg
	var ps, gs, exps, reads []float64
	for _, q := range dataset.PaperQueries() {
		rel := sys.Corpus.RelevantSet(q)
		if len(rel) == 0 {
			continue
		}
		for u := 0; u < cfg.Users; u++ {
			seed := cfg.Seed*999 + int64(u)*31 + int64(len(q.Name))
			res := runQDSession(sys, q, rand.New(rand.NewSource(seed)))
			if res.err != nil {
				continue
			}
			ids := res.result.IDs()
			ps = append(ps, metrics.Precision(ids, rel))
			gs = append(gs, gtir(sys.Corpus, q, ids))
			exps = append(exps, float64(res.stats.Expansions))
			reads = append(reads, float64(res.stats.FinalReads))
		}
	}
	return metrics.Mean(ps), metrics.Mean(gs), metrics.Mean(exps), metrics.Mean(reads)
}

// WriteText renders all three sweeps.
func (r *AblationReport) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Ablation 1. Boundary expansion threshold (§3.3; paper fixes 0.4)")
	fmt.Fprintf(w, "%10s | %9s %6s | %11s | %11s\n", "threshold", "precision", "GTIR", "expansions", "final reads")
	fmt.Fprintln(w, strings.Repeat("-", 60))
	for _, p := range r.Thresholds {
		fmt.Fprintf(w, "%10.2f | %9.2f %6.2f | %11.2f | %11.1f\n",
			p.Threshold, p.Precision, p.GTIR, p.Expansions, p.FinalReads)
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Ablation 2. Representative fraction (§4; paper designates 5%)")
	fmt.Fprintf(w, "%9s | %8s | %9s %6s | %10s\n", "fraction", "reps", "precision", "GTIR", "build")
	fmt.Fprintln(w, strings.Repeat("-", 56))
	for _, p := range r.Fractions {
		fmt.Fprintf(w, "%9.2f | %8d | %9.2f %6.2f | %10s\n",
			p.Fraction, p.RepCount, p.Precision, p.GTIR, round(p.BuildTime))
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Ablation 3. Node capacity (§5.1; paper: max 100 -> 3-level tree)")
	fmt.Fprintf(w, "%8s | %6s | %7s | %9s %6s\n", "maxFill", "height", "leaves", "precision", "GTIR")
	fmt.Fprintln(w, strings.Repeat("-", 48))
	for _, p := range r.Capacities {
		fmt.Fprintf(w, "%8d | %6d | %7d | %9.2f %6.2f\n",
			p.MaxFill, p.Height, p.Leaves, p.Precision, p.GTIR)
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Ablation 4. RFS hierarchy: STR bulk load vs incremental R* vs k-means tree")
	fmt.Fprintf(w, "%18s | %10s | %6s | %9s %6s\n", "mode", "build", "height", "precision", "GTIR")
	fmt.Fprintln(w, strings.Repeat("-", 58))
	for _, p := range r.BuildModes {
		fmt.Fprintf(w, "%18s | %10s | %6d | %9.2f %6.2f\n",
			p.Mode, round(p.BuildTime), p.Height, p.Precision, p.GTIR)
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Ablation 5. Server buffer pool for localized k-NN (§5.2.2 I/O)")
	fmt.Fprintf(w, "%9s | %8s | %14s\n", "capacity", "hit rate", "cold reads/qry")
	fmt.Fprintln(w, strings.Repeat("-", 40))
	for _, p := range r.Caches {
		fmt.Fprintf(w, "%9d | %7.0f%% | %14.1f\n", p.Capacity, p.HitRate*100, p.Reads)
	}
}
