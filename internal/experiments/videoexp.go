package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"qdcbir/internal/dataset"
	"qdcbir/internal/img"
	"qdcbir/internal/rstar"
	"qdcbir/internal/video"
)

// VideoSigmaPoint is one segmentation-threshold setting's outcome against
// ground-truth cut positions.
type VideoSigmaPoint struct {
	Sigma     float64
	Precision float64 // detected cuts that are true cuts
	Recall    float64 // true cuts that were detected
	Shots     int     // total shots produced across the test clips
}

// VideoReport covers the §6 video extension: segmentation quality across
// thresholds plus retrieval quality over the resulting shot library.
type VideoReport struct {
	Clips     int
	TrueCuts  int
	Sigmas    []VideoSigmaPoint
	LibShots  int
	Retrieval float64 // fraction of retrieved shots sharing the example's scene
}

// RunVideo builds synthetic multi-shot clips with known cut positions,
// sweeps the segmenter threshold, then builds a shot library at the default
// threshold and measures scene-retrieval accuracy.
func RunVideo(cfg Config, clips, shotsPerClip, framesPerShot int) (*VideoReport, error) {
	cfg = cfg.withDefaults()
	if clips <= 0 {
		clips = 12
	}
	if shotsPerClip <= 0 {
		shotsPerClip = 3
	}
	if framesPerShot <= 0 {
		framesPerShot = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))

	// Recurring scenes: each clip cuts between shotsPerClip of them, so every
	// scene appears in several clips.
	spec := dataset.SmallSpec(cfg.Seed+12, 20, 80)
	var scenes []dataset.Appearance
	for _, cat := range spec.Categories {
		for _, sub := range cat.Subconcepts {
			scenes = append(scenes, sub.Appearance)
		}
	}
	if len(scenes) < shotsPerClip {
		return nil, fmt.Errorf("experiments: only %d scenes for %d shots per clip", len(scenes), shotsPerClip)
	}

	type clipTruth struct {
		clip   video.Clip
		cuts   map[int]bool // frame indices where a new shot starts
		sceneN []int        // scene index per shot
	}
	var data []clipTruth
	for c := 0; c < clips; c++ {
		ct := clipTruth{cuts: make(map[int]bool)}
		var frames []*img.Image
		for s := 0; s < shotsPerClip; s++ {
			scene := (c + s*2) % len(scenes)
			ct.sceneN = append(ct.sceneN, scene)
			if s > 0 {
				ct.cuts[len(frames)] = true
			}
			for f := 0; f < framesPerShot; f++ {
				frames = append(frames, dataset.Render(scenes[scene], rng))
			}
		}
		ct.clip = video.Clip{ID: c, Frames: frames}
		data = append(data, ct)
	}
	rep := &VideoReport{Clips: clips, TrueCuts: clips * (shotsPerClip - 1)}

	// --- Sigma sweep ---
	for _, sigma := range []float64{1, 2, 3, 4, 6} {
		seg := video.Segmenter{Sigma: sigma}
		var tp, fp, totalShots int
		for _, ct := range data {
			shots, _, err := seg.Segment(ct.clip)
			if err != nil {
				return nil, err
			}
			totalShots += len(shots)
			for _, sh := range shots[1:] { // each shot start after the first is a detected cut
				if ct.cuts[sh.Start] {
					tp++
				} else {
					fp++
				}
			}
		}
		pt := VideoSigmaPoint{Sigma: sigma, Shots: totalShots}
		if tp+fp > 0 {
			pt.Precision = float64(tp) / float64(tp+fp)
		}
		if rep.TrueCuts > 0 {
			pt.Recall = float64(tp) / float64(rep.TrueCuts)
		}
		rep.Sigmas = append(rep.Sigmas, pt)
	}

	// --- Retrieval over the default-threshold library ---
	var vclips []video.Clip
	for _, ct := range data {
		vclips = append(vclips, ct.clip)
	}
	lib, err := video.BuildLibrary(vclips, video.LibraryConfig{})
	if err != nil {
		return nil, err
	}
	rep.LibShots = lib.Shots()

	// For each of a few example shots, retrieve the top 2 shots (each scene
	// recurs in only a couple of clips, so a small k keeps the ceiling at
	// 1.0) and measure how many share the example's scene.
	sceneOf := func(sh video.Shot) int {
		ct := data[sh.Clip]
		idx := sh.Start / framesPerShot
		if idx >= len(ct.sceneN) {
			idx = len(ct.sceneN) - 1
		}
		return ct.sceneN[idx]
	}
	var good, total float64
	for ex := 0; ex < lib.Shots(); ex += 5 {
		example, err := lib.Shot(rstar.ItemID(ex))
		if err != nil {
			continue
		}
		got, err := lib.SearchByShots([]rstar.ItemID{rstar.ItemID(ex)}, 2)
		if err != nil {
			continue
		}
		for _, sh := range got {
			total++
			if sceneOf(sh) == sceneOf(example) {
				good++
			}
		}
	}
	if total > 0 {
		rep.Retrieval = good / total
	}
	return rep, nil
}

// WriteText renders the video experiment.
func (r *VideoReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Video extension (§6): shot segmentation and retrieval (%d clips, %d true cuts)\n",
		r.Clips, r.TrueCuts)
	fmt.Fprintf(w, "%6s | %9s | %7s | %6s\n", "sigma", "precision", "recall", "shots")
	fmt.Fprintln(w, strings.Repeat("-", 40))
	for _, p := range r.Sigmas {
		fmt.Fprintf(w, "%6.1f | %9.2f | %7.2f | %6d\n", p.Sigma, p.Precision, p.Recall, p.Shots)
	}
	fmt.Fprintf(w, "library: %d shots; same-scene retrieval accuracy %.2f\n", r.LibShots, r.Retrieval)
}
