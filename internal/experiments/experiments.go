// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) plus the ablations DESIGN.md calls out. Each experiment is
// a pure function from a Config to a typed report with a text renderer;
// cmd/qdbench and the repository-level benchmarks are thin wrappers around
// these runners.
//
// Experiment index (see DESIGN.md §4 for the full mapping):
//
//	RunQuality      → Table 1 and Table 2 (precision & GTIR, MV vs QD)
//	RunFig1         → Figure 1 (PCA projection of a scattered category)
//	RunQualitative  → Figures 4–9 (top-k listings for the computer queries)
//	RunEfficiency   → Figures 10 and 11 (+ §5.2.2 I/O accounting)
//	RunAblations    → threshold / representative-fraction / node-capacity /
//	                  feedback-cost ablations
package experiments

import (
	"fmt"
	"math/rand"

	"qdcbir/internal/core"
	"qdcbir/internal/dataset"
	"qdcbir/internal/obs"
	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/user"
)

// Config scales an experiment run. Zero values are filled by the per-runner
// defaults; the Quick* constructors produce small configurations suitable for
// unit tests and smoke runs, the Paper* constructors reproduce §5 scale.
type Config struct {
	Seed int64

	// Corpus scale (image mode).
	Categories  int
	TotalImages int

	// Simulated-user parameters.
	Users          int     // sessions per query (paper: 20 students)
	Rounds         int     // feedback rounds (paper: 3)
	MarksPerRound  int     // labeling budget per round
	BrowsePerRound int     // random displays a user browses per round (§4 "Random")
	NoiseRate      float64 // user judgment error rate

	// Engine parameters.
	Threshold   float64 // boundary expansion threshold (paper: 0.4)
	RepFraction float64 // representative fraction (paper: 0.05)
	MaxFill     int     // node capacity (paper: 100)
	TargetFill  int     // STR fill (paper band 70–100 → default 93)

	// Parallelism bounds the build and finalize worker pools (<= 0 uses one
	// worker per CPU); every reported number is identical at every setting.
	Parallelism int
	// Observer, when non-nil, collects metrics and traces from every engine
	// the run constructs (cmd/qdbench -stats exposes the snapshot).
	Observer *obs.Observer

	// Quantized runs every global and localized k-NN through the SQ8
	// two-phase scan (results are bit-identical to the exact path, so all
	// reported accuracy numbers are unchanged; wall-clock and the rerank
	// counters move). RerankFactor tunes the candidate multiplier (<= 0 =
	// default).
	Quantized    bool
	RerankFactor int
}

func (c Config) withDefaults() Config {
	if c.Categories <= 0 {
		c.Categories = 150
	}
	if c.TotalImages <= 0 {
		c.TotalImages = 15000
	}
	if c.Users <= 0 {
		c.Users = 20
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.MarksPerRound <= 0 {
		c.MarksPerRound = 8
	}
	if c.BrowsePerRound <= 0 {
		c.BrowsePerRound = 15
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.4
	}
	if c.RepFraction <= 0 {
		c.RepFraction = 0.05
	}
	if c.MaxFill <= 0 {
		c.MaxFill = 100
	}
	if c.TargetFill <= 0 {
		c.TargetFill = 93
	}
	return c
}

// PaperConfig reproduces the paper's experimental scale: 15,000 images,
// ~150 categories, 20 users, 3 feedback rounds, threshold 0.4, 5%
// representatives, node capacity 100. The browse budget is raised to match
// the pool: the root holds ~750 representatives (5% of 15k), so paging
// through them at 21 per display takes ~36 displays — the paper's users
// "repeated [random displays] with additional rounds" until satisfied.
func PaperConfig() Config {
	c := Config{Seed: 1, BrowsePerRound: 40}
	return c.withDefaults()
}

// QuickConfig is a scaled-down configuration (~1,200 images, 25 categories,
// 4 users) that exercises every code path in seconds; unit tests and smoke
// runs use it. RepFraction is raised so reps-per-leaf (~4) matches the
// paper's geometry (100-image leaves at 5% give ~5 reps per leaf); keeping
// 5% here would leave one rep per 20-image leaf and make small subconcepts
// unfindable.
func QuickConfig() Config {
	c := Config{
		Seed:        1,
		Categories:  25,
		TotalImages: 1200,
		Users:       4,
		MaxFill:     24,
		TargetFill:  20,
		RepFraction: 0.2,
	}
	return c.withDefaults()
}

// System bundles a built corpus with its RFS structure and QD engine —
// everything the runners need.
type System struct {
	Cfg    Config
	Corpus *dataset.Corpus
	RFS    *rfs.Structure
	Engine *core.Engine
}

// BuildSystem constructs the corpus (image mode; channel vectors included so
// the MV baseline can run) and the RFS structure on top.
func BuildSystem(cfg Config) *System {
	cfg = cfg.withDefaults()
	spec := dataset.SmallSpec(cfg.Seed, cfg.Categories, cfg.TotalImages)
	corpus := dataset.Build(spec, dataset.Options{
		Seed:         cfg.Seed + 1,
		WithChannels: true,
		Parallelism:  cfg.Parallelism,
	})
	return assemble(cfg, corpus)
}

// BuildVectorSystem constructs a vector-mode system of the given size for
// scalability sweeps.
func BuildVectorSystem(cfg Config, size int) *System {
	cfg = cfg.withDefaults()
	categories := cfg.Categories
	spec := dataset.SmallSpec(cfg.Seed, categories, size)
	corpus := dataset.BuildVectors(spec, 37, 0.02, cfg.Seed+1)
	return assemble(cfg, corpus)
}

func assemble(cfg Config, corpus *dataset.Corpus) *System {
	structure := rfs.Build(corpus.Vectors, rfs.BuildConfig{
		RepFraction: cfg.RepFraction,
		Tree:        rstar.Config{MaxFill: cfg.MaxFill},
		TargetFill:  cfg.TargetFill,
		Seed:        cfg.Seed + 2,
		Parallelism: cfg.Parallelism,
	})
	engine := core.NewEngine(structure, core.Config{
		BoundaryThreshold: cfg.Threshold,
		Parallelism:       cfg.Parallelism,
		Observer:          cfg.Observer,
		Quantized:         cfg.Quantized,
		RerankFactor:      cfg.RerankFactor,
	})
	return &System{Cfg: cfg, Corpus: corpus, RFS: structure, Engine: engine}
}

// qdSessionResult captures one simulated QD session.
type qdSessionResult struct {
	roundGTIR []float64 // GTIR of the marked relevant set after each round
	result    *core.Result
	stats     core.Stats
	err       error
}

// runQDSession drives one simulated user through the full QD protocol:
// each round the user browses up to BrowsePerRound random displays, marks
// relevant representatives within the round budget, and the session descends;
// after the last round the query finalizes with k = |ground truth|.
func runQDSession(sys *System, q dataset.Query, rng *rand.Rand) qdSessionResult {
	cfg := sys.Cfg
	sim := user.New(q.Targets, sys.Corpus.SubconceptOf, rng)
	sim.NoiseRate = cfg.NoiseRate
	sess := sys.Engine.NewSession(rng)
	var out qdSessionResult

	for round := 0; round < cfg.Rounds; round++ {
		// Browse the round's display budget first (the GUI's "Random"
		// re-shuffles), then mark with the per-round labeling budget spread
		// across the distinct relevant types noticed (§3.2's walkthrough).
		var shown []int
		seenShown := make(map[int]bool)
		for d := 0; d < cfg.BrowsePerRound; d++ {
			for _, c := range sess.Candidates() {
				if !seenShown[int(c.ID)] {
					seenShown[int(c.ID)] = true
					shown = append(shown, int(c.ID))
				}
			}
		}
		sim.MaxPerRound = cfg.MarksPerRound
		var marks []rstar.ItemID
		for _, id := range sim.SelectDiverse(shown) {
			marks = append(marks, rstar.ItemID(id))
		}
		if err := sess.Feedback(marks); err != nil {
			out.err = err
			return out
		}
		relIDs := make([]int, len(sess.Relevant()))
		for i, id := range sess.Relevant() {
			relIDs[i] = int(id)
		}
		out.roundGTIR = append(out.roundGTIR, gtir(sys.Corpus, q, relIDs))
	}

	k := sys.Corpus.GroundTruthSize(q)
	res, err := sess.Finalize(k)
	if err != nil {
		out.err = fmt.Errorf("finalize %q: %w", q.Name, err)
		return out
	}
	out.result = res
	out.stats = sess.Stats()
	return out
}

// gtir computes the ground-truth inclusion ratio of a retrieval for a query.
func gtir(c *dataset.Corpus, q dataset.Query, ids []int) float64 {
	return metricsGTIR(ids, q.Targets, c.SubconceptOf)
}
