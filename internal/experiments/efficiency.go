package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"qdcbir/internal/baseline"
	"qdcbir/internal/dataset"
	"qdcbir/internal/disk"
	"qdcbir/internal/rstar"
	"qdcbir/internal/user"
)

// SizePoint is one database-size measurement for Figures 10 and 11.
type SizePoint struct {
	Size int

	// Figure 10: mean overall query processing time (initial display + all
	// feedback rounds + final localized k-NN) per simulated query.
	OverallTime time.Duration
	// Figure 11: mean single-iteration (one feedback round) processing time.
	IterationTime time.Duration

	// §5.2.2 I/O accounting, mean per query.
	FeedbackReads float64 // node reads during feedback processing
	FinalReads    float64 // node reads during localized k-NN

	// Comparison: mean per-round cost of traditional relevance feedback (one
	// global k-NN through the index per round, QPM-refined).
	GlobalKNNRoundTime  time.Duration
	GlobalKNNRoundReads float64

	BuildTime time.Duration // RFS construction cost at this size
	TreeNodes int           // pages in the tree
}

// EfficiencyReport aggregates the scalability sweep.
type EfficiencyReport struct {
	Cfg     Config
	Queries int
	Points  []SizePoint
}

// RunEfficiency reproduces Figures 10 and 11: vector-mode corpora of the
// given sizes, `queries` randomly generated simulated queries each, with the
// paper's protocol of two feedback rounds plus initial query processing and
// the final localized k-NN computation (§5.2.2). It also prices traditional
// global-k-NN feedback on the same corpora for the §1.2 comparison.
func RunEfficiency(cfg Config, sizes []int, queries int) *EfficiencyReport {
	cfg = cfg.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{5000, 10000, 15000}
	}
	if queries <= 0 {
		queries = 100
	}
	rep := &EfficiencyReport{Cfg: cfg, Queries: queries}

	for _, size := range sizes {
		var pt SizePoint
		pt.Size = size

		buildStart := time.Now()
		sys := BuildVectorSystem(cfg, size)
		pt.BuildTime = time.Since(buildStart)
		pt.TreeNodes = sys.RFS.Tree().NodeCount()

		subs := sys.Corpus.Subconcepts()
		rng := rand.New(rand.NewSource(cfg.Seed * int64(size+1)))

		var overall, iteration time.Duration
		var iterations int
		var fbReads, finReads, gReads uint64
		var gTime time.Duration
		var gRounds int
		completed := 0

		for qi := 0; qi < queries; qi++ {
			// Random initial query: a random subconcept is the intent.
			q := dataset.Query{Name: "sim", Targets: []string{subs[rng.Intn(len(subs))]}}
			sim := user.New(q.Targets, sys.Corpus.SubconceptOf, rng)

			sessStart := time.Now()
			sess := sys.Engine.NewSession(rng)
			ok := true
			for round := 0; round < 2; round++ { // paper: two feedback rounds
				iterStart := time.Now()
				var marks []rstar.ItemID
				for d := 0; d < cfg.BrowsePerRound && len(marks) < cfg.MarksPerRound; d++ {
					cands := sess.Candidates()
					ids := make([]int, len(cands))
					for i, c := range cands {
						ids[i] = int(c.ID)
					}
					sim.MaxPerRound = cfg.MarksPerRound - len(marks)
					for _, id := range sim.Select(ids) {
						marks = append(marks, rstar.ItemID(id))
					}
				}
				if err := sess.Feedback(marks); err != nil {
					ok = false
					break
				}
				iteration += time.Since(iterStart)
				iterations++
			}
			if !ok || len(sess.Relevant()) == 0 {
				continue
			}
			if _, err := sess.Finalize(50); err != nil {
				continue
			}
			overall += time.Since(sessStart)
			st := sess.Stats()
			fbReads += st.FeedbackReads
			finReads += st.FinalReads
			completed++

			// Traditional relevance feedback on the same intent: one global
			// k-NN through the index per round.
			var acc disk.Counter
			tk := baseline.NewTreeKNN(sys.RFS.Tree(), sys.Corpus.Store(),
				sys.Corpus.SubconceptIDs(q.Targets[0])[0], &acc)
			gsim := user.New(q.Targets, sys.Corpus.SubconceptOf, rng)
			for round := 0; round < 2; round++ {
				rs := time.Now()
				ids := tk.Search(50)
				gTime += time.Since(rs)
				gRounds++
				gsim.MaxPerRound = cfg.MarksPerRound
				tk.Feedback(gsim.Select(ids))
			}
			gReads += acc.Reads()
		}

		if completed > 0 {
			pt.OverallTime = overall / time.Duration(completed)
			pt.FeedbackReads = float64(fbReads) / float64(completed)
			pt.FinalReads = float64(finReads) / float64(completed)
		}
		if iterations > 0 {
			pt.IterationTime = iteration / time.Duration(iterations)
		}
		if gRounds > 0 {
			pt.GlobalKNNRoundTime = gTime / time.Duration(gRounds)
			pt.GlobalKNNRoundReads = float64(gReads) / float64(gRounds)
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep
}

// WriteFig10 renders the overall-time series.
func (r *EfficiencyReport) WriteFig10(w io.Writer) {
	fmt.Fprintf(w, "Figure 10. Overall query processing time vs database size (%d simulated queries/size)\n", r.Queries)
	fmt.Fprintf(w, "%10s | %14s | %12s\n", "DB size", "overall/query", "build time")
	fmt.Fprintln(w, strings.Repeat("-", 44))
	for _, p := range r.Points {
		fmt.Fprintf(w, "%10d | %14s | %12s\n", p.Size, round(p.OverallTime), round(p.BuildTime))
	}
	fmt.Fprintln(w, "(paper: time grows linearly with database size)")
}

// WriteFig11 renders the per-iteration series plus the global-kNN contrast.
func (r *EfficiencyReport) WriteFig11(w io.Writer) {
	fmt.Fprintf(w, "Figure 11. Average iteration (feedback round) time vs database size\n")
	fmt.Fprintf(w, "%10s | %14s | %22s | %8s\n", "DB size", "QD iteration", "global-kNN round (trad.)", "speedup")
	fmt.Fprintln(w, strings.Repeat("-", 66))
	for _, p := range r.Points {
		speed := "-"
		if p.IterationTime > 0 {
			speed = fmt.Sprintf("%.1fx", float64(p.GlobalKNNRoundTime)/float64(p.IterationTime))
		}
		fmt.Fprintf(w, "%10d | %14s | %22s | %8s\n",
			p.Size, round(p.IterationTime), round(p.GlobalKNNRoundTime), speed)
	}
	fmt.Fprintln(w, "(paper: iteration time grows linearly and stays a tiny fraction of overall time)")
}

// WriteIO renders the §5.2.2 I/O accounting.
func (r *EfficiencyReport) WriteIO(w io.Writer) {
	fmt.Fprintln(w, "I/O accounting (§5.2.2): mean simulated node reads per query")
	fmt.Fprintf(w, "%10s | %10s | %14s | %14s | %16s\n",
		"DB size", "tree pages", "QD feedback", "QD final kNN", "global kNN/round")
	fmt.Fprintln(w, strings.Repeat("-", 76))
	for _, p := range r.Points {
		fmt.Fprintf(w, "%10d | %10d | %14.1f | %14.1f | %16.1f\n",
			p.Size, p.TreeNodes, p.FeedbackReads, p.FinalReads, p.GlobalKNNRoundReads)
	}
	fmt.Fprintln(w, "(paper: feedback touches ~1 node per marked representative; localized kNN usually 1 node)")
}

func round(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
