package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"qdcbir/internal/baseline"
	"qdcbir/internal/dataset"
	"qdcbir/internal/metrics"
	"qdcbir/internal/user"
)

// metricsGTIR aliases metrics.GTIR for internal callers.
func metricsGTIR(ids []int, targets []string, subOf func(int) string) float64 {
	return metrics.GTIR(ids, targets, subOf)
}

// QueryQuality is the Table-1 row for one query.
type QueryQuality struct {
	Query       string
	Subconcepts int
	MVPrecision float64
	MVGTIR      float64
	QDPrecision float64
	QDGTIR      float64
}

// RoundQuality is the Table-2 row for one feedback round, averaged over all
// queries and users. QD has no precision before its final round because no
// k-NN computation happens until then (§5.2.1); QDPrecisionValid marks the
// rounds where the number is meaningful.
type RoundQuality struct {
	Round            int
	MVPrecision      float64
	MVGTIR           float64
	QDPrecision      float64
	QDPrecisionValid bool
	QDGTIR           float64
}

// QualityReport aggregates the retrieval-effectiveness experiment: Table 1
// (per-query) and Table 2 (per-round), reproduced from the same sessions.
type QualityReport struct {
	Cfg     Config
	PerQry  []QueryQuality
	Rounds  []RoundQuality
	AvgMVP  float64
	AvgMVG  float64
	AvgQDP  float64
	AvgQDG  float64
	Dropped int // sessions that failed (no relevant found while browsing)
}

// RunQuality executes the §5.2.1 study: for each of the 11 Table-1 queries,
// Users simulated sessions run both the QD protocol and the MV baseline on
// the same corpus, measuring precision (= recall, since retrieval size equals
// ground truth size) and GTIR.
func RunQuality(sys *System) *QualityReport {
	cfg := sys.Cfg
	rep := &QualityReport{Cfg: cfg}
	queries := dataset.PaperQueries()

	type roundAcc struct {
		mvP, mvG, qdP, qdG []float64
	}
	roundAccs := make([]roundAcc, cfg.Rounds)

	for _, q := range queries {
		rel := sys.Corpus.RelevantSet(q)
		k := sys.Corpus.GroundTruthSize(q)
		if k == 0 {
			continue
		}
		row := QueryQuality{Query: q.Name, Subconcepts: len(q.Targets)}
		var mvP, mvG, qdP, qdG []float64

		for u := 0; u < cfg.Users; u++ {
			seed := cfg.Seed*1000 + int64(u)*17 + int64(len(q.Name))

			// --- QD session ---
			qres := runQDSession(sys, q, rand.New(rand.NewSource(seed)))
			if qres.err != nil {
				rep.Dropped++
			} else {
				ids := qres.result.IDs()
				p := metrics.Precision(ids, rel)
				g := gtir(sys.Corpus, q, ids)
				qdP = append(qdP, p)
				qdG = append(qdG, g)
				for r := 0; r < cfg.Rounds && r < len(qres.roundGTIR); r++ {
					if r == cfg.Rounds-1 {
						// Final round: quality of the finalized retrieval.
						roundAccs[r].qdP = append(roundAccs[r].qdP, p)
						roundAccs[r].qdG = append(roundAccs[r].qdG, g)
					} else {
						roundAccs[r].qdG = append(roundAccs[r].qdG, qres.roundGTIR[r])
					}
				}
			}

			// --- MV session on the same corpus and intent ---
			sim := simFor(sys, q, seed+1)
			initial := pickInitialImage(sys.Corpus, q, rand.New(rand.NewSource(seed+2)))
			mv, err := baseline.NewMVChannels(sys.Corpus.ChannelStores(), initial)
			if err != nil {
				// Vector-mode corpus: fall back to subspace viewpoints.
				mv = baseline.NewMVSubspaces(sys.Corpus.Store(), initial)
			}
			var lastIDs []int
			for r := 0; r < cfg.Rounds; r++ {
				lastIDs = mv.Search(k)
				roundAccs[r].mvP = append(roundAccs[r].mvP, metrics.Precision(lastIDs, rel))
				roundAccs[r].mvG = append(roundAccs[r].mvG, gtir(sys.Corpus, q, lastIDs))
				if r < cfg.Rounds-1 {
					sim.MaxPerRound = cfg.MarksPerRound
					mv.Feedback(sim.Select(lastIDs))
				}
			}
			mvP = append(mvP, metrics.Precision(lastIDs, rel))
			mvG = append(mvG, gtir(sys.Corpus, q, lastIDs))
		}

		row.MVPrecision = metrics.Mean(mvP)
		row.MVGTIR = metrics.Mean(mvG)
		row.QDPrecision = metrics.Mean(qdP)
		row.QDGTIR = metrics.Mean(qdG)
		rep.PerQry = append(rep.PerQry, row)
	}

	for r := 0; r < cfg.Rounds; r++ {
		rq := RoundQuality{
			Round:       r + 1,
			MVPrecision: metrics.Mean(roundAccs[r].mvP),
			MVGTIR:      metrics.Mean(roundAccs[r].mvG),
			QDGTIR:      metrics.Mean(roundAccs[r].qdG),
		}
		if r == cfg.Rounds-1 {
			rq.QDPrecision = metrics.Mean(roundAccs[r].qdP)
			rq.QDPrecisionValid = true
		}
		rep.Rounds = append(rep.Rounds, rq)
	}

	var mp, mg, qp, qg []float64
	for _, row := range rep.PerQry {
		mp = append(mp, row.MVPrecision)
		mg = append(mg, row.MVGTIR)
		qp = append(qp, row.QDPrecision)
		qg = append(qg, row.QDGTIR)
	}
	rep.AvgMVP, rep.AvgMVG = metrics.Mean(mp), metrics.Mean(mg)
	rep.AvgQDP, rep.AvgQDG = metrics.Mean(qp), metrics.Mean(qg)
	return rep
}

func simFor(sys *System, q dataset.Query, seed int64) *user.Simulator {
	s := user.New(q.Targets, sys.Corpus.SubconceptOf, rand.New(rand.NewSource(seed)))
	s.NoiseRate = sys.Cfg.NoiseRate
	return s
}

// pickInitialImage selects the MV baseline's query-by-example image: a random
// member of a random target subconcept, mirroring a user who begins with one
// example of what they want.
func pickInitialImage(c *dataset.Corpus, q dataset.Query, rng *rand.Rand) int {
	// Deterministic order over targets with non-empty membership.
	var pools [][]int
	for _, t := range q.Targets {
		if ids := c.SubconceptIDs(t); len(ids) > 0 {
			pools = append(pools, ids)
		}
	}
	if len(pools) == 0 {
		return 0
	}
	pool := pools[rng.Intn(len(pools))]
	return pool[rng.Intn(len(pool))]
}

// WriteTable1 renders the per-query comparison in the layout of Table 1.
func (r *QualityReport) WriteTable1(w io.Writer) {
	fmt.Fprintf(w, "Table 1. Per-query precision and GTIR, MV vs QD (%d users, %d images)\n",
		r.Cfg.Users, r.Cfg.TotalImages)
	fmt.Fprintf(w, "%-24s %5s | %9s %6s | %9s %6s\n", "Query", "#sub", "MV prec", "GTIR", "QD prec", "GTIR")
	fmt.Fprintln(w, strings.Repeat("-", 72))
	for _, row := range r.PerQry {
		fmt.Fprintf(w, "%-24s %5d | %9.2f %6.2f | %9.2f %6.2f\n",
			row.Query, row.Subconcepts, row.MVPrecision, row.MVGTIR, row.QDPrecision, row.QDGTIR)
	}
	fmt.Fprintln(w, strings.Repeat("-", 72))
	fmt.Fprintf(w, "%-24s %5s | %9.2f %6.2f | %9.2f %6.2f\n",
		"Average", "", r.AvgMVP, r.AvgMVG, r.AvgQDP, r.AvgQDG)
	fmt.Fprintf(w, "(paper:  Average            |      0.32   0.56 |      0.70   1.00)\n")
	if r.Dropped > 0 {
		fmt.Fprintf(w, "note: %d QD sessions found no relevant representatives while browsing and were dropped\n", r.Dropped)
	}
}

// WriteTable2 renders the per-round comparison in the layout of Table 2.
func (r *QualityReport) WriteTable2(w io.Writer) {
	fmt.Fprintf(w, "Table 2. Quality per feedback round (averaged over %d queries x %d users)\n",
		len(r.PerQry), r.Cfg.Users)
	fmt.Fprintf(w, "%5s | %9s %6s | %9s %6s\n", "Round", "MV prec", "GTIR", "QD prec", "GTIR")
	fmt.Fprintln(w, strings.Repeat("-", 48))
	for _, rq := range r.Rounds {
		qdp := "   n/a"
		if rq.QDPrecisionValid {
			qdp = fmt.Sprintf("%6.2f", rq.QDPrecision)
		}
		fmt.Fprintf(w, "%5d | %9.2f %6.2f | %9s %6.2f\n", rq.Round, rq.MVPrecision, rq.MVGTIR, qdp, rq.QDGTIR)
	}
	fmt.Fprintln(w, strings.Repeat("-", 48))
	fmt.Fprintln(w, "(paper: round 1 MV 0.10/0.51, QD n/a/0.695; round 2 MV 0.30/0.56, QD n/a/0.907;")
	fmt.Fprintln(w, "        round 3 MV 0.32/0.56, QD 0.70/1.00)")
}

// SortedByName orders the per-query rows alphabetically (stable reporting).
func (r *QualityReport) SortedByName() []QueryQuality {
	out := append([]QueryQuality(nil), r.PerQry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Query < out[j].Query })
	return out
}
