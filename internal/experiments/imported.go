package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"qdcbir/internal/baseline"
	"qdcbir/internal/dataset"
	"qdcbir/internal/metrics"
)

// BuildCorpusSystem wraps an already-assembled corpus — typically one
// reconstructed from imported embeddings via dataset.ReassembleStore — with
// a fresh RFS structure and QD engine, so every runner in this package works
// on external vector sets exactly as on the synthetic generator's output.
func BuildCorpusSystem(cfg Config, corpus *dataset.Corpus) *System {
	return assemble(cfg.withDefaults(), corpus)
}

// CorpusQueries derives evaluation queries from a corpus's own ground truth:
// one single-target query per subconcept holding at least minMembers images
// (<= 0 uses 2 — a one-image subconcept has nothing to retrieve beyond the
// example), in deterministic sorted order, capped at max queries (<= 0 keeps
// all). This is how imported labeled embedding sets — which don't come with
// the paper's Table-1 query list — get an evaluation workload.
func CorpusQueries(c *dataset.Corpus, minMembers, max int) []dataset.Query {
	if minMembers <= 0 {
		minMembers = 2
	}
	keys := c.Subconcepts()
	sort.Strings(keys)
	var out []dataset.Query
	for _, key := range keys {
		if len(c.SubconceptIDs(key)) < minMembers {
			continue
		}
		out = append(out, dataset.Query{Name: key, Targets: []string{key}})
		if max > 0 && len(out) == max {
			break
		}
	}
	return out
}

// ImportedReport compares QD against the Rocchio query-point-movement
// baseline over corpus-derived queries — the head-to-head the import path
// exists for: multi-neighborhood relevance feedback versus the classic
// single-point update on externally supplied embedding geometry.
type ImportedReport struct {
	Cfg        Config
	Queries    int
	Techniques []TechniqueQuality
	PerQuery   map[string][]TechniqueQuality // query name -> per-technique rows
}

// RunQDvsRocchio evaluates QD and Rocchio on the given queries under the
// shared protocol (same simulated users, same retrieval sizes, Rounds
// feedback rounds each). Queries usually come from CorpusQueries; the
// Table-1 list works too.
func RunQDvsRocchio(sys *System, queries []dataset.Query) *ImportedReport {
	cfg := sys.Cfg
	rep := &ImportedReport{Cfg: cfg, PerQuery: make(map[string][]TechniqueQuality)}
	names := []string{"QD", "Rocchio"}
	totals := make(map[string]*acc, len(names))
	for _, n := range names {
		totals[n] = &acc{}
	}

	for _, q := range queries {
		rel := sys.Corpus.RelevantSet(q)
		k := sys.Corpus.GroundTruthSize(q)
		if k == 0 {
			continue
		}
		rep.Queries++
		perQ := make(map[string]*acc, len(names))
		for _, n := range names {
			perQ[n] = &acc{}
		}

		for u := 0; u < cfg.Users; u++ {
			seed := cfg.Seed*4321 + int64(u)*13 + int64(len(q.Name))

			qres := runQDSession(sys, q, rand.New(rand.NewSource(seed)))
			if qres.err == nil {
				record(perQ["QD"], totals["QD"], qres.result.IDs(), rel, q, sys)
			}

			initial := pickInitialImage(sys.Corpus, q, rand.New(rand.NewSource(seed+2)))
			r := baseline.NewRocchio(sys.Corpus.Store(), initial)
			sim := simFor(sys, q, seed+4)
			var ids []int
			for round := 0; round < cfg.Rounds; round++ {
				ids = r.Search(k)
				if round < cfg.Rounds-1 {
					sim.MaxPerRound = cfg.MarksPerRound
					r.Feedback(sim.Select(ids))
				}
			}
			record(perQ["Rocchio"], totals["Rocchio"], ids, rel, q, sys)
		}
		var rows []TechniqueQuality
		for _, n := range names {
			rows = append(rows, TechniqueQuality{
				Name:      n,
				Precision: metrics.Mean(perQ[n].p),
				GTIR:      metrics.Mean(perQ[n].g),
			})
		}
		rep.PerQuery[q.Name] = rows
	}
	for _, n := range names {
		rep.Techniques = append(rep.Techniques, TechniqueQuality{
			Name:      n,
			Precision: metrics.Mean(totals[n].p),
			GTIR:      metrics.Mean(totals[n].g),
		})
	}
	return rep
}

// WriteText renders the comparison.
func (r *ImportedReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "QD vs Rocchio on %d corpus-derived queries (%d users, %d rounds)\n",
		r.Queries, r.Cfg.Users, r.Cfg.Rounds)
	fmt.Fprintf(w, "%-10s | %9s | %6s\n", "technique", "precision", "GTIR")
	fmt.Fprintln(w, strings.Repeat("-", 34))
	for _, t := range r.Techniques {
		fmt.Fprintf(w, "%-10s | %9.2f | %6.2f\n", t.Name, t.Precision, t.GTIR)
	}
}
