package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"qdcbir/internal/baseline"
	"qdcbir/internal/dataset"
	"qdcbir/internal/metrics"
)

// TechniqueQuality is one technique's average quality over the Table-1
// queries.
type TechniqueQuality struct {
	Name      string
	Precision float64
	GTIR      float64
}

// ExtendedReport compares QD against every baseline the paper surveys (§2),
// not just MV — an extension of Table 1 enabled by having all the comparison
// techniques implemented.
type ExtendedReport struct {
	Cfg        Config
	Techniques []TechniqueQuality
	PerQuery   map[string][]TechniqueQuality // query name -> per-technique rows
}

// RunExtended evaluates QD, MV, QPM, Rocchio, MPQ, Qcluster, and plain kNN
// on the Table-1 queries under the same protocol (same corpus, same
// simulated users, same retrieval sizes).
func RunExtended(sys *System) *ExtendedReport {
	cfg := sys.Cfg
	rep := &ExtendedReport{Cfg: cfg, PerQuery: make(map[string][]TechniqueQuality)}
	queries := dataset.PaperQueries()

	names := []string{"QD", "MV", "QPM", "Rocchio", "MPQ", "Qcluster", "kNN"}
	totals := make(map[string]*acc, len(names))
	for _, n := range names {
		totals[n] = &acc{}
	}

	for _, q := range queries {
		rel := sys.Corpus.RelevantSet(q)
		k := sys.Corpus.GroundTruthSize(q)
		if k == 0 {
			continue
		}
		perQ := make(map[string]*acc, len(names))
		for _, n := range names {
			perQ[n] = &acc{}
		}

		for u := 0; u < cfg.Users; u++ {
			seed := cfg.Seed*4321 + int64(u)*13 + int64(len(q.Name))

			// QD session.
			qres := runQDSession(sys, q, rand.New(rand.NewSource(seed)))
			if qres.err == nil {
				ids := qres.result.IDs()
				record(perQ["QD"], totals["QD"], ids, rel, q, sys)
			}

			// Baselines share one QBE starting image and user model.
			initial := pickInitialImage(sys.Corpus, q, rand.New(rand.NewSource(seed+2)))
			var mv baseline.FeedbackRetriever
			if m, err := baseline.NewMVChannels(sys.Corpus.ChannelStores(), initial); err == nil {
				mv = m
			} else {
				mv = baseline.NewMVSubspaces(sys.Corpus.Store(), initial)
			}
			retrievers := map[string]baseline.FeedbackRetriever{
				"MV":       mv,
				"QPM":      baseline.NewQPM(sys.Corpus.Store(), initial),
				"Rocchio":  baseline.NewRocchio(sys.Corpus.Store(), initial),
				"MPQ":      baseline.NewMPQ(sys.Corpus.Store(), initial, 5, rand.New(rand.NewSource(seed+3))),
				"Qcluster": baseline.NewQcluster(sys.Corpus.Store(), initial, 5, rand.New(rand.NewSource(seed+3))),
				"kNN":      baseline.NewPlainKNN(sys.Corpus.Store(), initial),
			}
			for name, r := range retrievers {
				sim := simFor(sys, q, seed+4)
				var ids []int
				for round := 0; round < cfg.Rounds; round++ {
					ids = r.Search(k)
					if round < cfg.Rounds-1 {
						sim.MaxPerRound = cfg.MarksPerRound
						r.Feedback(sim.Select(ids))
					}
				}
				record(perQ[name], totals[name], ids, rel, q, sys)
			}
		}
		var rows []TechniqueQuality
		for _, n := range names {
			rows = append(rows, TechniqueQuality{
				Name:      n,
				Precision: metrics.Mean(perQ[n].p),
				GTIR:      metrics.Mean(perQ[n].g),
			})
		}
		rep.PerQuery[q.Name] = rows
	}
	for _, n := range names {
		rep.Techniques = append(rep.Techniques, TechniqueQuality{
			Name:      n,
			Precision: metrics.Mean(totals[n].p),
			GTIR:      metrics.Mean(totals[n].g),
		})
	}
	return rep
}

// acc accumulates per-session precision and GTIR samples.
type acc struct{ p, g []float64 }

func record(local, total *acc, ids []int, rel map[int]bool, q dataset.Query, sys *System) {
	p := metrics.Precision(ids, rel)
	g := gtir(sys.Corpus, q, ids)
	local.p = append(local.p, p)
	local.g = append(local.g, g)
	total.p = append(total.p, p)
	total.g = append(total.g, g)
}

// WriteText renders the technique comparison.
func (r *ExtendedReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Extended comparison: all §2 techniques on the Table-1 queries (%d users)\n", r.Cfg.Users)
	fmt.Fprintf(w, "%-10s | %9s | %6s\n", "technique", "precision", "GTIR")
	fmt.Fprintln(w, strings.Repeat("-", 34))
	for _, t := range r.Techniques {
		fmt.Fprintf(w, "%-10s | %9.2f | %6.2f\n", t.Name, t.Precision, t.GTIR)
	}
	fmt.Fprintln(w, "(QD is the only technique whose result set spans multiple distant clusters;")
	fmt.Fprintln(w, " the single-contour baselines converge on one neighborhood each.)")
}
