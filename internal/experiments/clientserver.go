package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"qdcbir/internal/rstar"
	"qdcbir/internal/server"
	"qdcbir/internal/user"
)

// ClientServerReport quantifies the §4 deployment claim: the one-time client
// payload is a small fraction of the database, client-local feedback costs
// the server nothing, and each query costs the server a single localized
// request.
type ClientServerReport struct {
	Cfg Config

	Images        int
	PayloadReps   int
	PayloadBytes  int // JSON-encoded payload size (what a client downloads once)
	DatabaseBytes int // JSON size of all corpus vectors (what shipping the DB would cost)

	Sessions        int
	ThinRequests    float64 // mean HTTP requests per thin-client session
	SmartRequests   float64 // mean HTTP requests per client-side session (excluding the one-time payload)
	MeanServerReads float64 // mean server node reads per smart-client query
}

// RunClientServer builds a system, measures the payload, and simulates both
// deployment modes' per-session server traffic.
func RunClientServer(cfg Config, sessions int) (*ClientServerReport, error) {
	cfg = cfg.withDefaults()
	if sessions <= 0 {
		sessions = 20
	}
	sys := BuildSystem(cfg)
	rep := &ClientServerReport{Cfg: cfg, Images: sys.Corpus.Len(), Sessions: sessions}

	// Payload vs database size (JSON, the wire format).
	eng := sys.Engine
	payload, err := server.BuildPayload(eng, sys.Corpus.SubconceptOf)
	if err != nil {
		return nil, err
	}
	pj, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	rep.PayloadReps = payload.RepCount()
	rep.PayloadBytes = len(pj)
	dj, err := json.Marshal(sys.Corpus.Vectors)
	if err != nil {
		return nil, err
	}
	rep.DatabaseBytes = len(dj)

	// Thin client: every display, feedback round, and finalize is a server
	// request. Smart client: only the final query is.
	subs := sys.Corpus.Subconcepts()
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	var thinTotal, smartTotal, reads float64
	completed := 0
	for i := 0; i < sessions; i++ {
		target := subs[rng.Intn(len(subs))]
		sim := user.New([]string{target}, sys.Corpus.SubconceptOf, rng)
		sess := eng.NewSession(rng)
		thin := 1.0 // session creation
		ok := true
		for round := 0; round < cfg.Rounds; round++ {
			var shown []int
			for d := 0; d < cfg.BrowsePerRound; d++ {
				thin++ // each display fetch is a request for a thin client
				for _, c := range sess.Candidates() {
					shown = append(shown, int(c.ID))
				}
			}
			sim.MaxPerRound = cfg.MarksPerRound
			var marks []rstar.ItemID
			for _, id := range sim.SelectDiverse(shown) {
				marks = append(marks, rstar.ItemID(id))
			}
			thin++ // feedback POST
			if err := sess.Feedback(marks); err != nil {
				ok = false
				break
			}
		}
		if !ok || len(sess.Relevant()) == 0 {
			continue
		}
		thin++ // finalize POST
		if _, err := sess.Finalize(30); err != nil {
			continue
		}
		// The smart client performs the same work locally; its only request
		// is the stateless query.
		_, stats, err := eng.QueryByExamples(sess.Relevant(), 30, nil, nil)
		if err != nil {
			continue
		}
		thinTotal += thin
		smartTotal++
		reads += float64(stats.FinalReads)
		completed++
	}
	if completed > 0 {
		rep.ThinRequests = thinTotal / float64(completed)
		rep.SmartRequests = smartTotal / float64(completed)
		rep.MeanServerReads = reads / float64(completed)
	}
	rep.Sessions = completed
	return rep, nil
}

// WriteText renders the deployment comparison.
func (r *ClientServerReport) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Client/server deployment (§4): payload and per-session server traffic")
	fmt.Fprintln(w, strings.Repeat("-", 68))
	fmt.Fprintf(w, "database: %d images (%.1f MB as vectors over the wire)\n",
		r.Images, float64(r.DatabaseBytes)/(1<<20))
	fmt.Fprintf(w, "client payload: %d representatives, %.1f KB (%.1f%% of the database bytes)\n",
		r.PayloadReps, float64(r.PayloadBytes)/(1<<10),
		100*float64(r.PayloadBytes)/float64(r.DatabaseBytes))
	fmt.Fprintf(w, "mean server requests per session (%d sessions):\n", r.Sessions)
	fmt.Fprintf(w, "  thin client (server-hosted feedback): %.1f\n", r.ThinRequests)
	fmt.Fprintf(w, "  smart client (local feedback):        %.1f (plus the one-time payload)\n", r.SmartRequests)
	fmt.Fprintf(w, "mean server node reads per smart-client query: %.1f\n", r.MeanServerReads)
	fmt.Fprintln(w, "(paper: feedback \"may run in the user computer ... highly scalable\")")
}
