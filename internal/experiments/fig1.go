package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"qdcbir/internal/dataset"
	"qdcbir/internal/kmeans"
	"qdcbir/internal/pca"
	"qdcbir/internal/vec"
)

// Fig1Report reproduces the Figure-1 demonstration: one semantic category
// whose subconcepts form distinct, well-separated clusters after projecting
// the 37-d feature space onto 3 principal components — with irrelevant images
// scattered in between.
type Fig1Report struct {
	Category    string
	Subconcepts []string
	// ClusterCenters are the 3-d projected centroids per subconcept.
	ClusterCenters []vec.Vector
	// Separation is min inter-centroid distance / max mean intra-cluster
	// spread; > 1 means the clusters are visually distinct as in Figure 1.
	Separation float64
	// KMeansPurity is the purity of an unsupervised k-means with k =
	// #subconcepts over the projected category points — how recoverable the
	// clusters are without labels.
	KMeansPurity float64
	// Explained is the variance fraction captured by the 3 components.
	Explained float64
}

// RunFig1 projects the given category (default "car", the paper's sedan
// example) to 3-d and measures cluster structure.
func RunFig1(sys *System, category string) *Fig1Report {
	if category == "" {
		category = "car"
	}
	corpus := sys.Corpus
	ids := corpus.CategoryIDs(category)
	if len(ids) == 0 {
		return &Fig1Report{Category: category}
	}
	// Fit PCA on the whole corpus (the paper projects the database and then
	// looks at one category's images in the projection).
	p := pca.Fit(corpus.Vectors, 3)
	var explained float64
	for _, e := range p.ExplainedVariance() {
		explained += e
	}

	// Group the category's projected points by subconcept.
	bySub := map[string][]vec.Vector{}
	var subOrder []string
	var pts []vec.Vector
	var labels []string
	for _, id := range ids {
		proj := p.Project(corpus.Vectors[id])
		sub := corpus.SubconceptOf(id)
		if _, ok := bySub[sub]; !ok {
			subOrder = append(subOrder, sub)
		}
		bySub[sub] = append(bySub[sub], proj)
		pts = append(pts, proj)
		labels = append(labels, sub)
	}

	rep := &Fig1Report{Category: category, Subconcepts: subOrder, Explained: explained}
	var centers []vec.Vector
	var maxIntra float64
	for _, sub := range subOrder {
		vs := bySub[sub]
		c := vec.Centroid(vs)
		centers = append(centers, c)
		var intra float64
		for _, v := range vs {
			intra += vec.L2(v, c)
		}
		intra /= float64(len(vs))
		if intra > maxIntra {
			maxIntra = intra
		}
	}
	rep.ClusterCenters = centers
	minInter := -1.0
	for i := 0; i < len(centers); i++ {
		for j := i + 1; j < len(centers); j++ {
			d := vec.L2(centers[i], centers[j])
			if minInter < 0 || d < minInter {
				minInter = d
			}
		}
	}
	if maxIntra > 0 && minInter > 0 {
		rep.Separation = minInter / maxIntra
	}

	// Unsupervised recoverability.
	if len(subOrder) >= 2 {
		r := kmeans.Cluster(pts, len(subOrder), kmeans.Config{MaxIter: 100}, rand.New(rand.NewSource(sys.Cfg.Seed)))
		var pure int
		for c := 0; c < r.K; c++ {
			counts := map[string]int{}
			for _, m := range r.Members(c) {
				counts[labels[m]]++
			}
			best := 0
			for _, n := range counts {
				if n > best {
					best = n
				}
			}
			pure += best
		}
		rep.KMeansPurity = float64(pure) / float64(len(pts))
	}
	return rep
}

// WriteText renders the report.
func (r *Fig1Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Figure 1. PCA projection (37-d -> 3-d) of category %q\n", r.Category)
	fmt.Fprintln(w, strings.Repeat("-", 64))
	if len(r.Subconcepts) == 0 {
		fmt.Fprintln(w, "category not present in corpus")
		return
	}
	fmt.Fprintf(w, "subconcept clusters found: %d\n", len(r.Subconcepts))
	for i, s := range r.Subconcepts {
		fmt.Fprintf(w, "  %-28s centroid (%.2f, %.2f, %.2f)\n",
			s, r.ClusterCenters[i][0], r.ClusterCenters[i][1], r.ClusterCenters[i][2])
	}
	fmt.Fprintf(w, "separation (min inter-centroid / max intra spread): %.2f  (>1 = visually distinct)\n", r.Separation)
	fmt.Fprintf(w, "unsupervised k-means purity in 3-d projection:      %.2f\n", r.KMeansPurity)
	fmt.Fprintf(w, "variance explained by 3 components:                 %.0f%%\n", r.Explained*100)
	fmt.Fprintln(w, "(paper: four distinct \"white sedan\" view clusters, distractors scattered between)")
}

// Queries returns the Table-1 queries, re-exported so cmd/qdbench need not
// import the dataset package directly.
func Queries() []dataset.Query { return dataset.PaperQueries() }
