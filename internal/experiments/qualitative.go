package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"qdcbir/internal/baseline"
	"qdcbir/internal/dataset"
	"qdcbir/internal/metrics"
)

// Retrieval is one technique's top-k listing for one query.
type Retrieval struct {
	Technique string
	Labels    []string // subconcept of each returned image, rank order
	Covered   []string // distinct target subconcepts present
	Precision float64
}

// QualitativeCase reproduces one of the paper's Figures 4–9: the top-k images
// of MV and QD for a query, reported as ground-truth labels (our corpus has
// no JPEGs to print; the label sequence is what the figures demonstrate —
// which neighborhoods each technique reached).
type QualitativeCase struct {
	Query dataset.Query
	K     int
	MV    Retrieval
	QD    Retrieval
}

// QualitativeReport covers the three computer queries at the paper's ks.
type QualitativeReport struct {
	Cases []QualitativeCase
}

// RunQualitative reproduces Figures 4–9: "Laptop" (top 8, Figs 4/5),
// "Personal computer" (top 16, Figs 6/7), and "Computer" (top 24, Figs 8/9),
// for MV and QD.
func RunQualitative(sys *System) *QualitativeReport {
	specs := []struct {
		name string
		k    int
	}{
		{"Laptop", 8},
		{"Personal computer", 16},
		{"Computer", 24},
	}
	byName := map[string]dataset.Query{}
	for _, q := range dataset.PaperQueries() {
		byName[q.Name] = q
	}
	rep := &QualitativeReport{}
	for i, spec := range specs {
		q := byName[spec.name]
		seed := sys.Cfg.Seed*100 + int64(i)
		c := QualitativeCase{Query: q, K: spec.k}
		rel := sys.Corpus.RelevantSet(q)

		// --- QD ---
		qres := runQDSession(sys, q, rand.New(rand.NewSource(seed)))
		if qres.err == nil {
			flat := qres.result.Flat()
			ids := make([]int, 0, spec.k)
			for _, im := range flat {
				if len(ids) == spec.k {
					break
				}
				ids = append(ids, int(im.ID))
			}
			c.QD = describeRetrieval("QD", sys, q, ids, rel)
		} else {
			c.QD = Retrieval{Technique: "QD"}
		}

		// --- MV ---
		sim := simFor(sys, q, seed+1)
		initial := pickInitialImage(sys.Corpus, q, rand.New(rand.NewSource(seed+2)))
		mv, err := baseline.NewMVChannels(sys.Corpus.ChannelStores(), initial)
		if err != nil {
			mv = baseline.NewMVSubspaces(sys.Corpus.Store(), initial)
		}
		var ids []int
		for r := 0; r < sys.Cfg.Rounds; r++ {
			ids = mv.Search(spec.k)
			if r < sys.Cfg.Rounds-1 {
				sim.MaxPerRound = sys.Cfg.MarksPerRound
				mv.Feedback(sim.Select(ids))
			}
		}
		c.MV = describeRetrieval("MV", sys, q, ids, rel)
		rep.Cases = append(rep.Cases, c)
	}
	return rep
}

func describeRetrieval(tech string, sys *System, q dataset.Query, ids []int, rel map[int]bool) Retrieval {
	r := Retrieval{Technique: tech}
	for _, id := range ids {
		r.Labels = append(r.Labels, sys.Corpus.SubconceptOf(id))
	}
	r.Covered = metrics.CoveredSubconcepts(ids, q.Targets, sys.Corpus.SubconceptOf)
	r.Precision = metrics.Precision(ids, rel)
	return r
}

// WriteText renders the listings in the spirit of Figures 4–9.
func (r *QualitativeReport) WriteText(w io.Writer) {
	figs := map[string]string{
		"Laptop":            "Figs 4/5 (top 8, \"portable computer\")",
		"Personal computer": "Figs 6/7 (top 16)",
		"Computer":          "Figs 8/9 (top 24)",
	}
	for _, c := range r.Cases {
		fmt.Fprintf(w, "%s — query %q, k=%d\n", figs[c.Query.Name], c.Query.Name, c.K)
		fmt.Fprintln(w, strings.Repeat("-", 72))
		for _, ret := range []Retrieval{c.MV, c.QD} {
			fmt.Fprintf(w, "%-3s precision %.2f, covers %d/%d target subconcepts: %s\n",
				ret.Technique, ret.Precision, len(ret.Covered), len(c.Query.Targets),
				strings.Join(ret.Covered, ", "))
			fmt.Fprintf(w, "    ranked labels: %s\n", strings.Join(shorten(ret.Labels), " "))
		}
		fmt.Fprintln(w, "(paper: MV covers a single neighborhood; QD covers every relevant subconcept)")
		fmt.Fprintln(w)
	}
}

// shorten compacts labels for listings: target-style labels keep their
// subconcept, filler distractors keep their category, unknowns become "?".
func shorten(labels []string) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		idx := strings.IndexByte(l, '/')
		switch {
		case l == "":
			out[i] = "?"
		case strings.HasPrefix(l, "filler-") && idx >= 0:
			out[i] = l[:idx]
		case idx >= 0:
			out[i] = l[idx+1:]
		default:
			out[i] = l
		}
	}
	return out
}
