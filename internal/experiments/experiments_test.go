package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// The quick system is expensive enough (corpus render + 4-channel extraction
// + RFS build) to share across tests.
var (
	quickOnce sync.Once
	quickSys  *System
)

func quick(t *testing.T) *System {
	t.Helper()
	quickOnce.Do(func() { quickSys = BuildSystem(QuickConfig()) })
	if quickSys == nil {
		t.Fatal("quick system failed to build")
	}
	return quickSys
}

func TestQuickConfigDefaults(t *testing.T) {
	c := QuickConfig()
	if c.Rounds != 3 || c.Threshold != 0.4 || c.RepFraction != 0.2 {
		t.Errorf("quick config defaults wrong: %+v", c)
	}
	p := PaperConfig()
	if p.TotalImages != 15000 || p.Categories != 150 || p.Users != 20 {
		t.Errorf("paper config wrong: %+v", p)
	}
}

func TestBuildSystemWiring(t *testing.T) {
	sys := quick(t)
	if sys.Corpus.Len() == 0 {
		t.Fatal("empty corpus")
	}
	if sys.RFS.Len() != sys.Corpus.Len() {
		t.Errorf("RFS %d vs corpus %d", sys.RFS.Len(), sys.Corpus.Len())
	}
	if err := sys.RFS.Validate(); err != nil {
		t.Fatalf("RFS: %v", err)
	}
	if sys.Corpus.ChannelVectors == nil {
		t.Error("channel vectors missing; MV baseline needs them")
	}
}

// The headline reproduction at quick scale: QD beats MV on both precision and
// GTIR, and QD's GTIR is near-perfect (Table 1's shape).
func TestQualityShapeMatchesTable1(t *testing.T) {
	sys := quick(t)
	rep := RunQuality(sys)
	if len(rep.PerQry) != 11 {
		t.Fatalf("%d query rows, want 11", len(rep.PerQry))
	}
	if rep.AvgQDP <= rep.AvgMVP {
		t.Errorf("QD precision %.2f not above MV %.2f", rep.AvgQDP, rep.AvgMVP)
	}
	if rep.AvgQDG <= rep.AvgMVG {
		t.Errorf("QD GTIR %.2f not above MV %.2f", rep.AvgQDG, rep.AvgMVG)
	}
	if rep.AvgQDG < 0.9 {
		t.Errorf("QD average GTIR %.2f, paper reports 1.0 — multi-neighborhood coverage failing", rep.AvgQDG)
	}
	if rep.AvgQDP < 0.5 {
		t.Errorf("QD average precision %.2f too low (paper: 0.70)", rep.AvgQDP)
	}
	// Per-query: QD GTIR >= MV GTIR everywhere (Table 1 has QD GTIR = 1 on
	// every row).
	for _, row := range rep.PerQry {
		if row.QDGTIR+1e-9 < row.MVGTIR {
			t.Errorf("query %q: QD GTIR %.2f below MV %.2f", row.Query, row.QDGTIR, row.MVGTIR)
		}
	}
}

// Table 2's shape: QD GTIR is non-decreasing across rounds and reaches its
// final-round value; MV plateaus after round 2.
func TestRoundShapeMatchesTable2(t *testing.T) {
	sys := quick(t)
	rep := RunQuality(sys)
	if len(rep.Rounds) != 3 {
		t.Fatalf("%d rounds", len(rep.Rounds))
	}
	for i := 1; i < len(rep.Rounds); i++ {
		if rep.Rounds[i].QDGTIR+0.05 < rep.Rounds[i-1].QDGTIR {
			t.Errorf("QD GTIR fell between rounds %d and %d: %.2f -> %.2f",
				i, i+1, rep.Rounds[i-1].QDGTIR, rep.Rounds[i].QDGTIR)
		}
	}
	if !rep.Rounds[2].QDPrecisionValid || rep.Rounds[0].QDPrecisionValid {
		t.Error("QD precision validity flags wrong: only the final round runs k-NN")
	}
	// MV's plateau: round-3 GTIR gains over round 2 are marginal.
	if gain := rep.Rounds[2].MVGTIR - rep.Rounds[1].MVGTIR; gain > 0.15 {
		t.Errorf("MV GTIR still improving strongly in round 3 (+%.2f); paper shows a plateau", gain)
	}
	var buf bytes.Buffer
	rep.WriteTable1(&buf)
	rep.WriteTable2(&buf)
	out := buf.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Table 2") {
		t.Error("table renderers missing headers")
	}
	if !strings.Contains(out, "Average") {
		t.Error("Table 1 missing average row")
	}
}

func TestFig1ClusterScattering(t *testing.T) {
	sys := quick(t)
	rep := RunFig1(sys, "car")
	if len(rep.Subconcepts) != 3 {
		t.Fatalf("car category has %d subconcepts in projection, want 3", len(rep.Subconcepts))
	}
	if rep.Separation <= 1 {
		t.Errorf("separation %.2f <= 1: projected clusters not distinct (Figure 1 shape lost)", rep.Separation)
	}
	if rep.KMeansPurity < 0.8 {
		t.Errorf("projected k-means purity %.2f < 0.8", rep.KMeansPurity)
	}
	if rep.Explained <= 0 || rep.Explained > 1 {
		t.Errorf("explained variance %.2f out of range", rep.Explained)
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Error("renderer missing header")
	}
	// Unknown category degrades gracefully.
	empty := RunFig1(sys, "no-such-category")
	if len(empty.Subconcepts) != 0 {
		t.Error("unknown category produced clusters")
	}
	buf.Reset()
	empty.WriteText(&buf)
	if !strings.Contains(buf.String(), "not present") {
		t.Error("unknown-category renderer wrong")
	}
}

func TestQualitativeFigures(t *testing.T) {
	sys := quick(t)
	rep := RunQualitative(sys)
	if len(rep.Cases) != 3 {
		t.Fatalf("%d cases, want 3 (Figs 4-9)", len(rep.Cases))
	}
	for _, c := range rep.Cases {
		if len(c.QD.Labels) == 0 {
			t.Errorf("%s: QD returned nothing", c.Query.Name)
			continue
		}
		if len(c.QD.Labels) > c.K {
			t.Errorf("%s: QD returned %d > k=%d", c.Query.Name, len(c.QD.Labels), c.K)
		}
		// The figures' point: QD covers at least as many target subconcepts.
		if len(c.QD.Covered) < len(c.MV.Covered) {
			t.Errorf("%s: QD covers %d subconcepts, MV %d", c.Query.Name, len(c.QD.Covered), len(c.MV.Covered))
		}
	}
	// The broadest query ("Computer", 4 subconcepts): QD should cover most.
	last := rep.Cases[2]
	if len(last.QD.Covered) < 3 {
		t.Errorf("Computer: QD covered only %d of %d subconcepts", len(last.QD.Covered), len(last.Query.Targets))
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	if !strings.Contains(buf.String(), "Figs 8/9") {
		t.Error("renderer missing figure labels")
	}
}

func TestEfficiencySweep(t *testing.T) {
	cfg := QuickConfig()
	rep := RunEfficiency(cfg, []int{500, 1000, 2000}, 10)
	if len(rep.Points) != 3 {
		t.Fatalf("%d size points", len(rep.Points))
	}
	for i, p := range rep.Points {
		if p.OverallTime <= 0 {
			t.Errorf("size %d: zero overall time", p.Size)
		}
		if p.IterationTime <= 0 {
			t.Errorf("size %d: zero iteration time", p.Size)
		}
		if p.IterationTime >= p.OverallTime {
			t.Errorf("size %d: iteration %v not below overall %v", p.Size, p.IterationTime, p.OverallTime)
		}
		if p.FeedbackReads <= 0 || p.FinalReads <= 0 {
			t.Errorf("size %d: missing I/O accounting (%v, %v)", p.Size, p.FeedbackReads, p.FinalReads)
		}
		// §5.2.2: QD feedback touches a tiny fraction of the tree's pages
		// while the traditional global k-NN touches far more per round.
		if p.GlobalKNNRoundReads <= p.FinalReads/10 {
			t.Errorf("size %d: global kNN reads %.1f suspiciously below QD final %.1f",
				p.Size, p.GlobalKNNRoundReads, p.FinalReads)
		}
		if i > 0 && p.TreeNodes <= rep.Points[i-1].TreeNodes {
			t.Errorf("tree did not grow with corpus: %d -> %d", rep.Points[i-1].TreeNodes, p.TreeNodes)
		}
	}
	var buf bytes.Buffer
	rep.WriteFig10(&buf)
	rep.WriteFig11(&buf)
	rep.WriteIO(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 10", "Figure 11", "I/O accounting"} {
		if !strings.Contains(out, want) {
			t.Errorf("renderer missing %q", want)
		}
	}
}

func TestAblations(t *testing.T) {
	cfg := QuickConfig()
	cfg.Users = 2 // ablations sweep many settings; keep the quick run fast
	rep := RunAblations(cfg)
	if len(rep.Thresholds) != 5 || len(rep.Fractions) != 4 || len(rep.Capacities) != 3 {
		t.Fatalf("sweep sizes: %d/%d/%d", len(rep.Thresholds), len(rep.Fractions), len(rep.Capacities))
	}
	// Lower thresholds expand more.
	if rep.Thresholds[0].Expansions < rep.Thresholds[len(rep.Thresholds)-1].Expansions {
		t.Errorf("threshold 0.1 expands less (%.2f) than 0.9 (%.2f)",
			rep.Thresholds[0].Expansions, rep.Thresholds[len(rep.Thresholds)-1].Expansions)
	}
	// More representatives cost more build time and never hurt rep count.
	for i := 1; i < len(rep.Fractions); i++ {
		if rep.Fractions[i].RepCount < rep.Fractions[i-1].RepCount {
			t.Errorf("rep count fell with fraction: %d -> %d",
				rep.Fractions[i-1].RepCount, rep.Fractions[i].RepCount)
		}
	}
	// Bigger nodes give shorter trees.
	for i := 1; i < len(rep.Capacities); i++ {
		if rep.Capacities[i].Height > rep.Capacities[i-1].Height {
			t.Errorf("height grew with capacity: %d -> %d",
				rep.Capacities[i-1].Height, rep.Capacities[i].Height)
		}
	}
	// All build modes work; bulk is not slower than incremental.
	if len(rep.BuildModes) != 3 {
		t.Fatalf("build modes = %d", len(rep.BuildModes))
	}
	if rep.BuildModes[0].BuildTime > rep.BuildModes[1].BuildTime {
		t.Errorf("bulk load (%v) slower than incremental (%v)",
			rep.BuildModes[0].BuildTime, rep.BuildModes[1].BuildTime)
	}
	for _, bm := range rep.BuildModes {
		if bm.GTIR == 0 {
			t.Errorf("%s: zero GTIR", bm.Mode)
		}
	}
	// A bigger buffer pool never lowers the hit rate.
	for i := 1; i < len(rep.Caches); i++ {
		if rep.Caches[i].HitRate+1e-9 < rep.Caches[i-1].HitRate {
			t.Errorf("hit rate fell with capacity: %v -> %v",
				rep.Caches[i-1].HitRate, rep.Caches[i].HitRate)
		}
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	if !strings.Contains(buf.String(), "Ablation 3") {
		t.Error("renderer missing sections")
	}
}

func TestExtendedComparison(t *testing.T) {
	sys := quick(t)
	// Two users keep the 6-technique x 11-query sweep fast.
	small := *sys
	small.Cfg.Users = 2
	rep := RunExtended(&small)
	if len(rep.Techniques) != 7 {
		t.Fatalf("%d techniques", len(rep.Techniques))
	}
	byName := map[string]TechniqueQuality{}
	for _, tq := range rep.Techniques {
		byName[tq.Name] = tq
	}
	qd := byName["QD"]
	for name, tq := range byName {
		if name == "QD" {
			continue
		}
		if qd.GTIR <= tq.GTIR {
			t.Errorf("QD GTIR %.2f not above %s %.2f", qd.GTIR, name, tq.GTIR)
		}
	}
	if len(rep.PerQuery) != 11 {
		t.Errorf("per-query rows for %d queries", len(rep.PerQuery))
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	if !strings.Contains(buf.String(), "Extended comparison") {
		t.Error("renderer missing header")
	}
}

func TestClientServerReport(t *testing.T) {
	cfg := QuickConfig()
	rep, err := RunClientServer(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PayloadBytes <= 0 || rep.DatabaseBytes <= 0 {
		t.Fatal("sizes not measured")
	}
	if rep.PayloadBytes >= rep.DatabaseBytes {
		t.Errorf("payload %d not smaller than database %d", rep.PayloadBytes, rep.DatabaseBytes)
	}
	if rep.Sessions == 0 {
		t.Fatal("no sessions completed")
	}
	// Thin clients make many requests per session; smart clients exactly one.
	if rep.SmartRequests != 1 {
		t.Errorf("smart client requests = %v, want 1", rep.SmartRequests)
	}
	if rep.ThinRequests < 10 {
		t.Errorf("thin client requests = %v, expected dozens", rep.ThinRequests)
	}
	if rep.MeanServerReads <= 0 {
		t.Error("no server reads measured")
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	if !strings.Contains(buf.String(), "Client/server deployment") {
		t.Error("renderer missing header")
	}
}

func TestVideoExperiment(t *testing.T) {
	cfg := QuickConfig()
	rep, err := RunVideo(cfg, 8, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrueCuts != 8 {
		t.Errorf("true cuts = %d", rep.TrueCuts)
	}
	if len(rep.Sigmas) != 5 {
		t.Fatalf("%d sigma points", len(rep.Sigmas))
	}
	// Low sigma over-segments (more shots); high sigma under-segments.
	if rep.Sigmas[0].Shots < rep.Sigmas[len(rep.Sigmas)-1].Shots {
		t.Errorf("shot count did not fall with sigma: %d -> %d",
			rep.Sigmas[0].Shots, rep.Sigmas[len(rep.Sigmas)-1].Shots)
	}
	// At the default sigma (3), segmentation is precise; recall depends on
	// how visually distinct the sampled scene pairs happen to be.
	def := rep.Sigmas[2]
	if def.Precision < 0.8 {
		t.Errorf("sigma=3 precision %.2f below 0.8", def.Precision)
	}
	if def.Recall < 0.6 {
		t.Errorf("sigma=3 recall %.2f below 0.6", def.Recall)
	}
	// Somewhere in the sweep, most true cuts are recoverable.
	bestRecall := 0.0
	for _, p := range rep.Sigmas {
		if p.Recall > bestRecall {
			bestRecall = p.Recall
		}
	}
	if bestRecall < 0.75 {
		t.Errorf("best recall across sweep %.2f below 0.75", bestRecall)
	}
	if rep.LibShots == 0 {
		t.Fatal("no library shots")
	}
	if rep.Retrieval < 0.6 {
		t.Errorf("same-scene retrieval accuracy %.2f", rep.Retrieval)
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	if !strings.Contains(buf.String(), "Video extension") {
		t.Error("renderer missing header")
	}
}

func TestQueriesReexport(t *testing.T) {
	if len(Queries()) != 11 {
		t.Error("Queries() should list the 11 Table-1 queries")
	}
}
