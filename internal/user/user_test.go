package user

import (
	"math/rand"
	"testing"
)

func subOf(m map[int]string) func(int) string {
	return func(id int) string { return m[id] }
}

func TestSelectMarksOnlyRelevant(t *testing.T) {
	labels := map[int]string{1: "a", 2: "b", 3: "a", 4: "c"}
	s := New([]string{"a"}, subOf(labels), rand.New(rand.NewSource(1)))
	got := s.Select([]int{1, 2, 3, 4})
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Select = %v", got)
	}
	if !s.IsRelevant(1) || s.IsRelevant(2) {
		t.Error("IsRelevant wrong")
	}
}

func TestSelectBudget(t *testing.T) {
	labels := map[int]string{}
	var shown []int
	for i := 0; i < 50; i++ {
		labels[i] = "a"
		shown = append(shown, i)
	}
	s := New([]string{"a"}, subOf(labels), rand.New(rand.NewSource(2)))
	s.MaxPerRound = 5
	if got := s.Select(shown); len(got) != 5 {
		t.Fatalf("budget not enforced: %d marks", len(got))
	}
	if s.Marked() != 5 {
		t.Errorf("Marked = %d", s.Marked())
	}
}

func TestSelectNoRemark(t *testing.T) {
	labels := map[int]string{1: "a", 2: "a"}
	s := New([]string{"a"}, subOf(labels), rand.New(rand.NewSource(3)))
	first := s.Select([]int{1, 2})
	if len(first) != 2 {
		t.Fatalf("first = %v", first)
	}
	second := s.Select([]int{1, 2})
	if len(second) != 0 {
		t.Fatalf("re-marked: %v", second)
	}
	s.Reset()
	third := s.Select([]int{1, 2})
	if len(third) != 2 {
		t.Fatalf("Reset did not forget: %v", third)
	}
}

func TestNoise(t *testing.T) {
	labels := map[int]string{}
	var relevant, irrelevant []int
	for i := 0; i < 500; i++ {
		if i%2 == 0 {
			labels[i] = "a"
			relevant = append(relevant, i)
		} else {
			labels[i] = "b"
			irrelevant = append(irrelevant, i)
		}
	}
	s := New([]string{"a"}, subOf(labels), rand.New(rand.NewSource(4)))
	s.MaxPerRound = 1000
	s.NoiseRate = 0.2
	marks := s.Select(append(append([]int{}, relevant...), irrelevant...))
	var wrong int
	for _, id := range marks {
		if labels[id] != "a" {
			wrong++
		}
	}
	if wrong == 0 {
		t.Error("noise produced no wrong marks in 500 judgments")
	}
	// Roughly 20% of the 250 irrelevant should be wrongly marked.
	if wrong < 20 || wrong > 90 {
		t.Errorf("wrong marks = %d, want near 50", wrong)
	}
	// Zero-noise simulator never errs.
	s2 := New([]string{"a"}, subOf(labels), rand.New(rand.NewSource(5)))
	s2.MaxPerRound = 1000
	for _, id := range s2.Select(irrelevant) {
		t.Errorf("noise-free user marked irrelevant %d", id)
	}
}

func TestSelectDiverseSpreadsBudget(t *testing.T) {
	labels := map[int]string{}
	var shown []int
	// 10 images of subconcept a, then 2 of b, then 2 of c — a greedy marker
	// with budget 4 would take four a's and miss b and c entirely.
	for i := 0; i < 10; i++ {
		labels[i] = "a"
		shown = append(shown, i)
	}
	for i := 10; i < 12; i++ {
		labels[i] = "b"
		shown = append(shown, i)
	}
	for i := 12; i < 14; i++ {
		labels[i] = "c"
		shown = append(shown, i)
	}
	s := New([]string{"a", "b", "c"}, subOf(labels), rand.New(rand.NewSource(7)))
	s.MaxPerRound = 4
	got := s.SelectDiverse(shown)
	if len(got) != 4 {
		t.Fatalf("marked %d, want 4", len(got))
	}
	subs := map[string]int{}
	for _, id := range got {
		subs[labels[id]]++
	}
	if subs["a"] == 0 || subs["b"] == 0 || subs["c"] == 0 {
		t.Errorf("budget not spread across types: %v", subs)
	}
}

func TestSelectDiverseSkipsIrrelevantAndSeen(t *testing.T) {
	labels := map[int]string{1: "a", 2: "z", 3: "a"}
	s := New([]string{"a"}, subOf(labels), rand.New(rand.NewSource(8)))
	got := s.SelectDiverse([]int{1, 2, 3})
	if len(got) != 2 {
		t.Fatalf("marked %v", got)
	}
	for _, id := range got {
		if labels[id] != "a" {
			t.Errorf("marked irrelevant %d", id)
		}
	}
	// No re-marking.
	if again := s.SelectDiverse([]int{1, 2, 3}); len(again) != 0 {
		t.Errorf("re-marked %v", again)
	}
}

func TestEmptyDisplay(t *testing.T) {
	s := New([]string{"a"}, subOf(nil), rand.New(rand.NewSource(6)))
	if got := s.Select(nil); len(got) != 0 {
		t.Errorf("Select(nil) = %v", got)
	}
}
