// Package user simulates the relevance-feedback users of the paper's study
// (§5.2: "we asked 20 students to test the systems by searching for the
// relevant images in the database").
//
// A Simulator is a ground-truth oracle with human-shaped limits: it only
// judges images actually displayed to it, marks at most a per-round budget,
// and optionally makes mistakes at a configurable noise rate (standing in for
// the inter-user disagreement a panel of students exhibits).
package user

import (
	"math/rand"
)

// Simulator is one simulated user pursuing a fixed query intent.
type Simulator struct {
	rng     *rand.Rand
	targets map[string]bool
	subOf   func(int) string

	// MaxPerRound caps how many images the user marks per feedback round
	// (people do not exhaustively label; default 8).
	MaxPerRound int
	// NoiseRate is the probability of a judgment error: a relevant image
	// overlooked, or an irrelevant one marked. Default 0.
	NoiseRate float64

	seen map[int]bool
}

// New returns a simulator whose intent is the given target subconcepts.
// subOf maps an image ID to its subconcept key.
func New(targets []string, subOf func(int) string, rng *rand.Rand) *Simulator {
	t := make(map[string]bool, len(targets))
	for _, s := range targets {
		t[s] = true
	}
	return &Simulator{
		rng:         rng,
		targets:     t,
		subOf:       subOf,
		MaxPerRound: 8,
		seen:        make(map[int]bool),
	}
}

// IsRelevant reports the user's true (noise-free) judgment of an image.
func (s *Simulator) IsRelevant(id int) bool { return s.targets[s.subOf(id)] }

// Select returns the images the user marks relevant among the displayed ones,
// respecting the per-round budget and noise rate. Images the user has already
// marked in this session are not re-marked.
func (s *Simulator) Select(displayed []int) []int {
	var marked []int
	for _, id := range displayed {
		if len(marked) >= s.MaxPerRound {
			break
		}
		if s.seen[id] {
			continue
		}
		relevant := s.IsRelevant(id)
		if s.NoiseRate > 0 && s.rng.Float64() < s.NoiseRate {
			relevant = !relevant
		}
		if relevant {
			s.seen[id] = true
			marked = append(marked, id)
		}
	}
	return marked
}

// SelectDiverse marks relevant images like Select but spreads the budget
// across distinct subconcepts round-robin, the way the paper's users pick one
// example of each relevant *type* they notice (the Figure-2 walkthrough marks
// a steamed car AND an antique car AND modern cars, not eight of one kind).
// Judgment noise applies per image as in Select.
func (s *Simulator) SelectDiverse(displayed []int) []int {
	groups := make(map[string][]int)
	var order []string
	for _, id := range displayed {
		if s.seen[id] {
			continue
		}
		relevant := s.IsRelevant(id)
		if s.NoiseRate > 0 && s.rng.Float64() < s.NoiseRate {
			relevant = !relevant
		}
		if !relevant {
			continue
		}
		sub := s.subOf(id)
		if _, ok := groups[sub]; !ok {
			order = append(order, sub)
		}
		groups[sub] = append(groups[sub], id)
	}
	var marked []int
	for len(marked) < s.MaxPerRound {
		progressed := false
		for _, sub := range order {
			g := groups[sub]
			if len(g) == 0 {
				continue
			}
			id := g[0]
			groups[sub] = g[1:]
			if s.seen[id] {
				continue
			}
			s.seen[id] = true
			marked = append(marked, id)
			progressed = true
			if len(marked) >= s.MaxPerRound {
				break
			}
		}
		if !progressed {
			break
		}
	}
	return marked
}

// Marked returns how many images the user has marked so far.
func (s *Simulator) Marked() int { return len(s.seen) }

// Reset forgets the session's marks (a new query with the same intent).
func (s *Simulator) Reset() { s.seen = make(map[int]bool) }
