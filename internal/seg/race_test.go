package seg

// Satellite stress test for the snapshot isolation contract, meant to run
// under `go test -race`: concurrent queries during sustained insert/delete
// traffic with background compaction enabled. Every query must observe a
// consistent epoch — its snapshot's live set never changes mid-query, all
// returned IDs are live in that snapshot — and sampled snapshots must
// answer queries bit-identically to a from-scratch single-segment rebuild
// of that epoch's live set.

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestConcurrentQueriesDuringIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		dim      = 6
		writers  = 1 // the DB serializes writers; one goroutine drives churn
		readers  = 4
		totalOps = 1200
	)
	db, err := New(Config{Dim: dim, SealThreshold: 32, MaxSegments: 2, Seed: 11, NodeCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Seed corpus so readers have something from the first instant.
	seedRng := rand.New(rand.NewSource(1))
	var liveMu sync.Mutex
	live := make(map[int]bool)
	for i := 0; i < 100; i++ {
		id, err := db.Insert(randVec(seedRng, dim))
		if err != nil {
			t.Fatal(err)
		}
		live[id] = true
	}

	ctx := context.Background()
	var wrote atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, readers+writers)

	wg.Add(1)
	go func() { // writer: sustained inserts and deletes
		defer wg.Done()
		defer stop.Store(true)
		rng := rand.New(rand.NewSource(2))
		for op := 0; op < totalOps; op++ {
			if rng.Intn(4) == 0 {
				liveMu.Lock()
				var victim = -1
				for id := range live {
					victim = id
					break
				}
				if victim >= 0 {
					delete(live, victim)
				}
				liveMu.Unlock()
				if victim >= 0 {
					if err := db.Delete(victim); err != nil {
						errc <- err
						return
					}
				}
			} else {
				id, err := db.Insert(randVec(rng, dim))
				if err != nil {
					errc <- err
					return
				}
				liveMu.Lock()
				live[id] = true
				liveMu.Unlock()
			}
			wrote.Add(1)
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				snap := db.Acquire()
				epoch := snap.Epoch()
				liveIDs := snap.LiveIDs(nil)
				if len(liveIDs) != snap.Live() {
					errc <- errInconsistent{epoch, "live count vs LiveIDs"}
					snap.Release()
					return
				}
				isLive := make(map[int]bool, len(liveIDs))
				for _, id := range liveIDs {
					isLive[id] = true
				}
				q := randVec(rng, dim)
				ns, err := snap.KNNCtx(ctx, q, 15)
				if err != nil {
					errc <- err
					snap.Release()
					return
				}
				want := 15
				if len(liveIDs) < want {
					want = len(liveIDs)
				}
				if len(ns) != want {
					errc <- errInconsistent{epoch, "result count"}
					snap.Release()
					return
				}
				for i, n := range ns {
					if !isLive[n.ID] {
						errc <- errInconsistent{epoch, "dead id in results"}
						snap.Release()
						return
					}
					if i > 0 && (ns[i-1].Dist > n.Dist || (ns[i-1].Dist == n.Dist && ns[i-1].ID >= n.ID)) {
						errc <- errInconsistent{epoch, "result order"}
						snap.Release()
						return
					}
				}
				// The snapshot must still be on the same epoch (immutability).
				if snap.Epoch() != epoch {
					errc <- errInconsistent{epoch, "epoch moved"}
					snap.Release()
					return
				}
				snap.Release()
			}
		}(int64(100 + r))
	}

	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if db.Stats().Compactions == 0 {
		t.Fatal("compaction never ran during the stress window")
	}

	// Sampled-epoch equivalence: pin the final state and compare against a
	// fresh single-segment rebuild of exactly that live set.
	snap := db.Acquire()
	defer snap.Release()
	ref := rebuildRef(t, db.cfg, snap)
	refSnap := ref.Acquire()
	defer refSnap.Release()
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 10; i++ {
		q := randVec(rng, dim)
		got, err := snap.KNNCtx(ctx, q, 25)
		if err != nil {
			t.Fatal(err)
		}
		want, err := refSnap.KNNCtx(ctx, q, 25)
		if err != nil {
			t.Fatal(err)
		}
		sameNeighbors(t, "stress-final", got, want)
	}
}

type errInconsistent struct {
	epoch uint64
	what  string
}

func (e errInconsistent) Error() string {
	return "inconsistent snapshot at epoch " + itoa(e.epoch) + ": " + e.what
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestSnapshotPinnedDuringCompaction pins a snapshot, compacts underneath
// it, and verifies the pinned view still answers from the pre-compaction
// segment set while the current view has moved on.
func TestSnapshotPinnedDuringCompaction(t *testing.T) {
	db, err := New(Config{Dim: 3, SealThreshold: 10, DisableAutoCompact: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 45; i++ {
		if _, err := db.Insert(randVec(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}
	pin := db.Acquire()
	defer pin.Release()
	segsBefore := pin.Segments()
	if segsBefore < 2 {
		t.Fatalf("want multiple segments, got %d", segsBefore)
	}
	q := randVec(rng, 3)
	before, err := pin.KNNCtx(context.Background(), q, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Delete a row AFTER pinning, then compact: the compactor must carry the
	// delete into the merged segment while the pin still sees the old world.
	if err := db.Delete(before[0].ID); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	after, err := pin.KNNCtx(context.Background(), q, 12)
	if err != nil {
		t.Fatal(err)
	}
	sameNeighbors(t, "pinned-during-compaction", after, before)
	if pin.Segments() != segsBefore {
		t.Fatal("pinned snapshot's segment set changed")
	}

	now := db.Acquire()
	defer now.Release()
	if now.Segments() != 1 {
		t.Fatalf("current snapshot has %d segments after compaction", now.Segments())
	}
	cur, err := now.KNNCtx(context.Background(), q, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range cur {
		if n.ID == before[0].ID {
			t.Fatal("delete during compaction was lost in the merged segment")
		}
	}
}
