package seg

import (
	"context"
	"fmt"
	"math"
	"sort"

	"qdcbir/internal/par"
	"qdcbir/internal/rstar"
	"qdcbir/internal/shard"
	"qdcbir/internal/vec"
)

// Neighbor is a global-ID scored result; the alias makes the merge
// arithmetic literally the serving tier's (shard.MergeNeighbors).
type Neighbor = shard.Neighbor

// KNNCtx returns the k nearest live images to q across the whole snapshot:
// every sealed segment (searched with its mode-appropriate kernel —
// exact f64, SQ8 two-phase exact-rerank, or f32 scan) plus the memtable
// (always an exact scan), merged by (distance, global ID).
//
// Bit-exactness: each per-segment list carries distances identical to what
// a monolithic build computes for the same rows (position-independent
// per-row kernels; SQ8 reranks exactly, so per-segment quantizer training
// differences never reach the output), per-segment local order equals
// global-ID order, and tombstone filtering with a k+nTomb over-request
// keeps at least min(live, k) results per segment. The merged list is
// therefore bit-identical to a single-segment rebuild of the live set.
func (s *Snapshot) KNNCtx(ctx context.Context, q vec.Vector, k int) ([]Neighbor, error) {
	return s.knn(ctx, q, nil, k)
}

// KNNWeightedCtx is KNNCtx under a per-dimension weighted metric
// (relevance-feedback re-weighting). Weighted scans are always exact
// float64 in every mode, as in the monolithic engine.
func (s *Snapshot) KNNWeightedCtx(ctx context.Context, q, weights vec.Vector, k int) ([]Neighbor, error) {
	if weights != nil && len(weights) != s.db.cfg.Dim {
		return nil, fmt.Errorf("seg: weights dim %d, want %d", len(weights), s.db.cfg.Dim)
	}
	return s.knn(ctx, q, weights, k)
}

func (s *Snapshot) knn(ctx context.Context, q, weights vec.Vector, k int) ([]Neighbor, error) {
	if len(q) != s.db.cfg.Dim {
		return nil, fmt.Errorf("seg: query dim %d, want %d", len(q), s.db.cfg.Dim)
	}
	if k <= 0 || s.live == 0 {
		return nil, nil
	}
	lists := make([][]Neighbor, len(s.segs)+1)
	err := par.Do(ctx, len(s.segs)+1, s.db.cfg.Parallelism, func(i int) error {
		if i == len(s.segs) {
			lists[i] = s.scanMem(q, weights, k)
			return nil
		}
		ns, err := s.searchSegment(ctx, s.segs[i], q, weights, k)
		if err != nil {
			return err
		}
		lists[i] = ns
		return nil
	})
	if err != nil {
		return nil, err
	}
	return shard.MergeNeighbors(lists, k), nil
}

// searchSegment returns up to k live neighbors from one sealed segment,
// global IDs attached. It over-requests by the segment's tombstone count
// (capped at the segment size) so that filtering can never surface fewer
// than min(live, k) results.
func (s *Snapshot) searchSegment(ctx context.Context, sv segView, q, weights vec.Vector, k int) ([]Neighbor, error) {
	kk := k + sv.nTomb
	if kk > sv.seg.len() {
		kk = sv.seg.len()
	}
	tree := sv.seg.rfs.Tree()
	var ns []rstar.Neighbor
	var err error
	switch {
	case weights != nil:
		ns, err = tree.KNNWeightedFromStatsCtx(ctx, tree.Root(), q, weights, kk, nil, nil)
	case s.db.cfg.Float32:
		ns, err = tree.KNNF32FromStatsCtx(ctx, tree.Root(), q, kk, nil, nil)
	case s.db.cfg.Quantized && sv.seg.quantized:
		ns, err = tree.KNNQuantFromStatsCtx(ctx, tree.Root(), q, kk, s.db.cfg.RerankFactor, nil, nil)
	default:
		ns, err = tree.KNNFromStatsCtx(ctx, tree.Root(), q, kk, nil, nil)
	}
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, 0, len(ns))
	for _, n := range ns {
		if sv.tomb.Get(int(n.ID)) {
			continue
		}
		out = append(out, Neighbor{ID: sv.seg.ids[int(n.ID)], Dist: n.Dist})
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// scanMem exact-scans the memtable prefix. In float32 mode it scores on
// the insert-time narrowed rows with the same kernel the sealed f32 path
// uses (vec.SqL232), so a row's distance is bit-identical before and
// after sealing.
func (s *Snapshot) scanMem(q, weights vec.Vector, k int) []Neighbor {
	if s.mem.live() == 0 {
		return nil
	}
	var q32 []float32
	if weights == nil && s.db.cfg.Float32 {
		q32 = vec.Narrow32(q, nil)
	}
	out := make([]Neighbor, 0, s.mem.live())
	for slot := 0; slot < s.mem.rows; slot++ {
		if s.mem.tomb.Get(slot) {
			continue
		}
		var d float64
		switch {
		case weights != nil:
			d = math.Sqrt(vec.WeightedSqL2(q, s.mem.row(slot), weights))
		case s.db.cfg.Float32:
			d = math.Sqrt(float64(vec.SqL232(q32, s.mem.row32(slot))))
		default:
			d = math.Sqrt(vec.SqL2(q, s.mem.row(slot)))
		}
		out = append(out, Neighbor{ID: s.mem.baseID + slot, Dist: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
