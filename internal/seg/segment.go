package seg

import (
	"context"
	"fmt"
	"sort"

	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/store"
)

// segment is one immutable sealed unit: a feature store, an R*-tree over
// it, and the ascending list of global IDs its local rows map to. Once
// built a segment is never mutated — deletes are tombstones held in the
// snapshot, and compaction replaces segments wholesale.
//
// Local row i holds the vector of global ID ids[i], and ids is strictly
// ascending. That invariant is what makes cross-segment merge tie-breaks
// exact: within a segment, ascending local ID order IS ascending global ID
// order, so the per-segment k-NN's (distance, local ID) ordering maps to
// (distance, global ID) without re-sorting equal-distance runs.
type segment struct {
	ids []int
	st  *store.FeatureStore
	rfs *rfs.Structure
	// quantized records whether SQ8 training succeeded for this segment;
	// per-segment fallback to exact scan is invisible in results because the
	// SQ8 path reranks exactly.
	quantized bool
}

func (g *segment) len() int { return len(g.ids) }

// localOf returns the local slot of global ID id, or -1.
func (g *segment) localOf(id int) int {
	i := sort.SearchInts(g.ids, id)
	if i < len(g.ids) && g.ids[i] == id {
		return i
	}
	return -1
}

// buildSegment seals the given rows (global IDs ascending, row-major f64
// backing in the same order) into an immutable segment. The build mirrors
// the monolithic assemble/attachQuantizer path knob for knob — RepFraction,
// MaxFill = NodeCapacity, TargetFill = NodeCapacity·93/100, tree seed
// cfg.Seed+2 — so a single sealed segment of the whole corpus is the same
// structure a from-scratch build would produce.
func buildSegment(ctx context.Context, cfg Config, ids []int, backing []float64) (*segment, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("seg: empty segment")
	}
	if len(backing) != len(ids)*cfg.Dim {
		return nil, fmt.Errorf("seg: backing holds %d values for %d rows of dim %d", len(backing), len(ids), cfg.Dim)
	}
	st, err := store.FromBacking(cfg.Dim, backing)
	if err != nil {
		return nil, fmt.Errorf("seg: %w", err)
	}
	structure, err := rfs.BuildStoreCtx(ctx, st, rfs.BuildConfig{
		RepFraction: cfg.RepFraction,
		Tree:        rstar.Config{MaxFill: cfg.NodeCapacity},
		TargetFill:  cfg.NodeCapacity * 93 / 100,
		Seed:        cfg.Seed + 2,
		Parallelism: cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	g := &segment{ids: ids, st: st, rfs: structure}
	if cfg.Quantized {
		// Train per-segment; on failure fall back to exact scan for this
		// segment only, mirroring the monolithic attachQuantizer behaviour.
		if qz, qerr := store.Quantize(st); qerr == nil {
			if structure.AdoptQuantized(qz) == nil {
				g.quantized = true
			}
		}
	}
	if cfg.Float32 {
		st.MaterializeFloat32()
		structure.EnableFloat32Scan()
	}
	return g, nil
}
