package seg

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"qdcbir/internal/rstar"
	"qdcbir/internal/vec"
)

// ErrFinalized is returned when a session is used after Finalize.
var ErrFinalized = errors.New("seg: session already finalized")

// segNode addresses one subquery anchor: a node inside one sealed
// segment's tree.
type segNode struct {
	seg  int
	node *rstar.Node
}

// Candidate is one displayed representative.
type Candidate struct {
	ID int // global image ID
}

// Session is a snapshot-pinned interactive feedback session: the browsing
// frontier, the relevant-image panel, and every query run against the
// snapshot acquired at NewSession — concurrent inserts, deletes, seals,
// and compactions are invisible for the session's whole life. Call
// Release when done (Finalize does not release; a finalized session can
// still be inspected).
//
// The frontier is per-segment: each sealed segment contributes its own
// R*-tree descent, exactly as the monolithic session descends its single
// tree. Memtable rows are not browsable — they become visible to the
// feedback loop once sealed — but corpus-wide subqueries (Finalize) always
// see them.
type Session struct {
	snap *Snapshot
	rng  *rand.Rand

	frontier  []segNode
	relSet    map[int]bool
	relevant  []int
	assign    map[int]segNode
	displayed map[int]segNode
	cursors   map[segCursorKey]*displayCursor
	weights   vec.Vector
	rounds    int
	finalized bool
	released  bool
}

type segCursorKey struct {
	seg    int
	nodeID uint64
}

type displayCursor struct {
	order []rstar.ItemID
	pos   int
}

// NewSession pins the current snapshot and starts a feedback session
// browsing every sealed segment's root.
func (db *DB) NewSession(rng *rand.Rand) *Session {
	snap := db.Acquire()
	s := &Session{
		snap:      snap,
		rng:       rng,
		relSet:    make(map[int]bool),
		displayed: make(map[int]segNode),
	}
	for i, sv := range snap.segs {
		if root := sv.seg.rfs.Root(); root != nil {
			s.frontier = append(s.frontier, segNode{seg: i, node: root})
		}
	}
	return s
}

// Snapshot returns the session's pinned snapshot.
func (s *Session) Snapshot() *Snapshot { return s.snap }

// Relevant returns the marked panel (shared; do not modify).
func (s *Session) Relevant() []int { return s.relevant }

// Rounds returns the number of feedback rounds processed.
func (s *Session) Rounds() int { return s.rounds }

// Subqueries returns the current frontier size — the number of localized
// (segment, node) neighborhoods the next display draws from.
func (s *Session) Subqueries() int { return len(s.frontier) }

// Release drops the snapshot pin. Idempotent.
func (s *Session) Release() {
	if !s.released {
		s.released = true
		s.snap.Release()
	}
}

// SetFeatureWeights installs the §6 per-dimension weighting used by
// Finalize; nil restores plain Euclidean scoring.
func (s *Session) SetFeatureWeights(w vec.Vector) error {
	if w == nil {
		s.weights = nil
		return nil
	}
	if len(w) != s.snap.db.cfg.Dim {
		return fmt.Errorf("seg: weight dim %d != corpus dim %d", len(w), s.snap.db.cfg.Dim)
	}
	for i, x := range w {
		if x < 0 {
			return fmt.Errorf("seg: negative weight at dim %d", i)
		}
	}
	s.weights = w.Clone()
	return nil
}

// Candidates draws up to limit representatives across the frontier,
// sampling each (segment, node) pool proportionally to its live
// representative count — the multi-segment analogue of the monolithic
// proportional browse. Tombstoned images never appear.
func (s *Session) Candidates(limit int) []Candidate {
	if limit <= 0 || s.finalized {
		return nil
	}
	type pool struct {
		sn   segNode
		reps []rstar.ItemID // local IDs, tombstones filtered
	}
	var pools []pool
	total := 0
	for _, sn := range s.frontier {
		sv := s.snap.segs[sn.seg]
		raw := sv.seg.rfs.Reps(sn.node, nil)
		var reps []rstar.ItemID
		for _, id := range raw {
			if !sv.tomb.Get(int(id)) {
				reps = append(reps, id)
			}
		}
		if len(reps) == 0 {
			continue
		}
		pools = append(pools, pool{sn: sn, reps: reps})
		total += len(reps)
	}
	if total == 0 {
		return nil
	}
	var out []Candidate
	record := func(sn segNode, local rstar.ItemID) {
		gid := s.snap.segs[sn.seg].seg.ids[int(local)]
		out = append(out, Candidate{ID: gid})
		s.displayed[gid] = sn
	}
	if total <= limit {
		for _, p := range pools {
			for _, id := range p.reps {
				record(p.sn, id)
			}
		}
		return out
	}
	remaining := limit
	for i, p := range pools {
		share := int(math.Round(float64(limit) * float64(len(p.reps)) / float64(total)))
		if share < 1 {
			share = 1
		}
		if i == len(pools)-1 {
			share = remaining
		}
		if share > len(p.reps) {
			share = len(p.reps)
		}
		if share > remaining {
			share = remaining
		}
		for _, id := range s.take(p.sn, p.reps, share) {
			record(p.sn, id)
		}
		remaining -= share
		if remaining <= 0 {
			break
		}
	}
	return out
}

// take pages through one pool's representatives in a shuffled order
// without repetition, reshuffling once exhausted (see the monolithic
// displayCursor).
func (s *Session) take(sn segNode, reps []rstar.ItemID, n int) []rstar.ItemID {
	if s.cursors == nil {
		s.cursors = make(map[segCursorKey]*displayCursor)
	}
	key := segCursorKey{seg: sn.seg, nodeID: uint64(sn.node.ID())}
	cur, ok := s.cursors[key]
	if !ok || len(cur.order) != len(reps) {
		cur = &displayCursor{order: append([]rstar.ItemID(nil), reps...)}
		s.rng.Shuffle(len(cur.order), func(i, j int) { cur.order[i], cur.order[j] = cur.order[j], cur.order[i] })
		s.cursors[key] = cur
	}
	out := make([]rstar.ItemID, 0, n)
	for len(out) < n {
		if cur.pos >= len(cur.order) {
			s.rng.Shuffle(len(cur.order), func(i, j int) { cur.order[i], cur.order[j] = cur.order[j], cur.order[i] })
			cur.pos = 0
		}
		out = append(out, cur.order[cur.pos])
		cur.pos++
		if len(out) >= len(cur.order) {
			break
		}
	}
	return out
}

// Feedback processes one round of relevance feedback. Marked images must
// have been displayed; each one's subquery descends one level toward its
// leaf within its own segment's tree (§3.2), and the frontier becomes the
// distinct (segment, subcluster) set currently assigned.
func (s *Session) Feedback(marked []int) error {
	if s.finalized {
		return ErrFinalized
	}
	if s.assign == nil {
		s.assign = make(map[int]segNode)
	}
	s.rounds++
	for _, gid := range marked {
		sn, ok := s.displayed[gid]
		if !ok {
			return fmt.Errorf("seg: image %d was not displayed", gid)
		}
		if !s.relSet[gid] {
			s.relSet[gid] = true
			s.relevant = append(s.relevant, gid)
		}
		sv := s.snap.segs[sn.seg]
		local := rstar.ItemID(sv.seg.localOf(gid))
		child := sv.seg.rfs.ChildContaining(sn.node, local)
		if child == nil {
			child = sn.node
		}
		if cur, ok := s.assign[gid]; !ok || (sn.seg == cur.seg && sv.seg.rfs.SubtreeSize(child) < sv.seg.rfs.SubtreeSize(cur.node)) {
			s.assign[gid] = segNode{seg: sn.seg, node: child}
		}
	}
	for _, gid := range s.relevant {
		sn := s.assign[gid]
		if sn.node == nil || sn.node.IsLeaf() {
			continue
		}
		sv := s.snap.segs[sn.seg]
		local := rstar.ItemID(sv.seg.localOf(gid))
		if child := sv.seg.rfs.ChildContaining(sn.node, local); child != nil {
			s.assign[gid] = segNode{seg: sn.seg, node: child}
		}
	}
	s.rebuildFrontier()
	return nil
}

func (s *Session) rebuildFrontier() {
	if len(s.assign) == 0 {
		s.frontier = s.frontier[:0]
		for i, sv := range s.snap.segs {
			if root := sv.seg.rfs.Root(); root != nil {
				s.frontier = append(s.frontier, segNode{seg: i, node: root})
			}
		}
		return
	}
	type key struct {
		seg    int
		nodeID uint64
	}
	next := make(map[key]segNode, len(s.assign))
	for _, sn := range s.assign {
		next[key{sn.seg, uint64(sn.node.ID())}] = sn
	}
	s.frontier = s.frontier[:0]
	for _, sn := range next {
		s.frontier = append(s.frontier, sn)
	}
	sort.Slice(s.frontier, func(i, j int) bool {
		if s.frontier[i].seg != s.frontier[j].seg {
			return s.frontier[i].seg < s.frontier[j].seg
		}
		return s.frontier[i].node.ID() < s.frontier[j].node.ID()
	})
}

// SessionState is the wire-portable slice of a dynamic session: everything
// Finalize needs (the relevant panel and feature weights) plus the round
// count. Snapshot pins and per-segment frontier nodes are process-local —
// segment identity changes under sealing and compaction — so a restored
// session re-pins the restoring process's CURRENT snapshot and resumes
// browsing from the segment roots; the finalize answer is preserved exactly
// because FinalizeCtx derives everything from the panel and weights.
type SessionState struct {
	Relevant []int     `json:"relevant,omitempty"`
	Weights  []float64 `json:"weights,omitempty"`
	Rounds   int       `json:"rounds"`
}

// ExportState snapshots the session for transport. The session remains
// usable; the state shares nothing with it.
func (s *Session) ExportState() *SessionState {
	st := &SessionState{
		Relevant: append([]int(nil), s.relevant...),
		Rounds:   s.rounds,
	}
	if s.weights != nil {
		st.Weights = append([]float64(nil), s.weights...)
	}
	return st
}

// RestoreSession resumes an exported session over the current snapshot.
// Every relevant image must be live in that snapshot (an image inserted
// after the export is fine; a tombstoned one is not).
func (db *DB) RestoreSession(st *SessionState, rng *rand.Rand) (*Session, error) {
	s := db.NewSession(rng)
	if st.Weights != nil {
		if err := s.SetFeatureWeights(vec.Vector(st.Weights)); err != nil {
			s.Release()
			return nil, err
		}
	}
	for _, gid := range st.Relevant {
		if _, ok := s.snap.VectorOf(gid); !ok {
			s.Release()
			return nil, fmt.Errorf("seg: relevant image %d is not live in the current snapshot", gid)
		}
		if !s.relSet[gid] {
			s.relSet[gid] = true
			s.relevant = append(s.relevant, gid)
		}
	}
	s.rounds = st.Rounds
	return s, nil
}

// FinalizeCtx runs the final corpus-wide decomposition round over the
// pinned snapshot (QueryByExamplesCtx) with the session's panel and
// weights. The session stops accepting feedback afterwards but stays
// pinned until Release.
func (s *Session) FinalizeCtx(ctx context.Context, k int) (*Result, error) {
	if s.finalized {
		return nil, ErrFinalized
	}
	if len(s.relevant) == 0 {
		return nil, errors.New("seg: no relevant images marked")
	}
	res, err := s.snap.QueryByExamplesCtx(ctx, s.relevant, k, s.weights)
	if err != nil {
		return nil, err
	}
	s.finalized = true
	return res, nil
}
