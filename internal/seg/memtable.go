package seg

import (
	"qdcbir/internal/bitset"
	"qdcbir/internal/vec"
)

// memtable is the mutable tail of the corpus: rows land here on Insert and
// stay until sealed into an immutable segment. It is owned by the DB writer
// lock; readers never touch it directly — they see a memView captured at
// snapshot-publish time.
//
// Global IDs in the memtable are consecutive: row at slot i has global ID
// baseID+i, because IDs are allocated monotonically and every seal starts a
// fresh memtable. That keeps the reader-side mapping arithmetic-only.
//
// Race-freedom without copying: Insert appends to data (and data32 in
// float32 mode) and only then publishes a new snapshot whose memView holds
// the NEW slice headers and row count. A reader working from an older
// memView sees the old headers and the old row count, and never indexes
// past rows*dim, so even when append grows in place the writer only writes
// beyond every published reader's range. When append reallocates, old
// readers keep the old array entirely. Either way reader and writer memory
// never overlap, which `go test -race` verifies in race_test.go.
type memtable struct {
	dim    int
	f32    bool
	baseID int
	rows   int
	data   []float64 // rows*dim, row-major
	data32 []float32 // narrowed copy, only in float32 mode
	tomb   *bitset.Set
	nTomb  int
}

func newMemtable(dim int, f32 bool, baseID int) *memtable {
	return &memtable{dim: dim, f32: f32, baseID: baseID}
}

// add appends v (copying it) and returns the new row's global ID. In
// float32 mode the row is also narrowed immediately, so a memtable scan
// uses exactly the float32 values a sealed segment's MaterializeFloat32
// would produce for the same row.
func (m *memtable) add(v vec.Vector) int {
	m.data = append(m.data, v...)
	if m.f32 {
		m.data32 = append(m.data32, vec.Narrow32(v, nil)...)
	}
	id := m.baseID + m.rows
	m.rows++
	return id
}

// view captures the memtable's current published state: slice headers and
// the row count, plus the tombstone set (copy-on-write — deletes clone it).
func (m *memtable) view() memView {
	return memView{
		dim:    m.dim,
		baseID: m.baseID,
		rows:   m.rows,
		data:   m.data,
		data32: m.data32,
		tomb:   m.tomb,
		nTomb:  m.nTomb,
	}
}

// memView is the reader-side, immutable capture of a memtable prefix.
type memView struct {
	dim    int
	baseID int
	rows   int
	data   []float64
	data32 []float32
	tomb   *bitset.Set
	nTomb  int
}

// live reports the number of non-tombstoned rows in the view.
func (v memView) live() int { return v.rows - v.nTomb }

// row returns the float64 vector of slot i. The returned slice aliases the
// memtable backing; callers must not mutate it.
func (v memView) row(i int) vec.Vector {
	return vec.Vector(v.data[i*v.dim : (i+1)*v.dim])
}

// row32 returns the narrowed vector of slot i (float32 mode only).
func (v memView) row32(i int) []float32 {
	return v.data32[i*v.dim : (i+1)*v.dim]
}
