package seg

import (
	"sync/atomic"

	"qdcbir/internal/bitset"
	"qdcbir/internal/vec"
)

// segView is one sealed segment as a snapshot sees it: the immutable
// segment plus the tombstone set that was current when the snapshot was
// published. Tombstone sets are copy-on-write (deletes clone, set one bit,
// and publish), so a pinned segView never changes underneath a reader.
type segView struct {
	seg   *segment
	tomb  *bitset.Set
	nTomb int
}

func (sv segView) liveLen() int { return sv.seg.len() - sv.nTomb }

// Snapshot is a consistent, immutable view of the corpus at one epoch:
// the sealed segment set, per-segment tombstones, and a memtable prefix.
// Queries pin a snapshot with DB.Acquire and work against it for as long
// as they like — concurrent inserts, deletes, seals, and compactions
// publish NEW snapshots and never mutate a pinned one. Release the pin
// when done; sessions (session.go) hold one for their whole feedback loop.
type Snapshot struct {
	epoch uint64
	segs  []segView
	mem   memView
	live  int

	refs atomic.Int64
	db   *DB
}

// Epoch identifies this snapshot's position in the publish order. Strictly
// increasing: every published write (insert, delete, seal, compaction)
// bumps it by one.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Live is the number of non-tombstoned images visible in this snapshot.
func (s *Snapshot) Live() int { return s.live }

// Segments reports the sealed-segment count (excludes the memtable).
func (s *Snapshot) Segments() int { return len(s.segs) }

// MemRows reports the memtable rows visible to this snapshot, including
// tombstoned ones.
func (s *Snapshot) MemRows() int { return s.mem.rows }

// Tombstones reports tombstoned rows still physically present.
func (s *Snapshot) Tombstones() int {
	n := s.mem.nTomb
	for _, sv := range s.segs {
		n += sv.nTomb
	}
	return n
}

// Release drops the pin. The snapshot must not be used afterwards.
func (s *Snapshot) Release() { s.release() }

func (s *Snapshot) release() {
	if s.refs.Add(-1) == 0 && s.db != nil {
		s.db.metrics.SnapshotDelta(-1)
	}
}

// deleted reports whether global ID id is tombstoned in this snapshot.
// IDs never allocated (or beyond the snapshot's memtable prefix) read as
// not present rather than deleted; use VectorOf for existence.
func (s *Snapshot) isTombstoned(id int) bool {
	if id >= s.mem.baseID {
		return s.mem.tomb.Get(id - s.mem.baseID)
	}
	for _, sv := range s.segs {
		if local := sv.seg.localOf(id); local >= 0 {
			return sv.tomb.Get(local)
		}
	}
	return false
}

// VectorOf returns the float64 feature vector of a live image, or
// (nil, false) if the ID is unknown or tombstoned in this snapshot. The
// returned slice aliases engine memory; callers must not mutate it.
func (s *Snapshot) VectorOf(id int) (vec.Vector, bool) {
	if id >= s.mem.baseID {
		slot := id - s.mem.baseID
		if slot >= s.mem.rows || s.mem.tomb.Get(slot) {
			return nil, false
		}
		return s.mem.row(slot), true
	}
	for _, sv := range s.segs {
		if local := sv.seg.localOf(id); local >= 0 {
			if sv.tomb.Get(local) {
				return nil, false
			}
			return sv.seg.st.At(local), true
		}
	}
	return nil, false
}

// LiveIDs appends the snapshot's live global IDs to dst, ascending.
// Segments hold disjoint, ordered ID ranges below the memtable's baseID,
// so a single pass is already sorted.
func (s *Snapshot) LiveIDs(dst []int) []int {
	for _, sv := range s.segs {
		for local, id := range sv.seg.ids {
			if !sv.tomb.Get(local) {
				dst = append(dst, id)
			}
		}
	}
	for slot := 0; slot < s.mem.rows; slot++ {
		if !s.mem.tomb.Get(slot) {
			dst = append(dst, s.mem.baseID+slot)
		}
	}
	return dst
}
