package seg

import (
	"context"
	"math/rand"
	"testing"

	"qdcbir/internal/vec"
)

// The segment-merge equivalence suite: a query over (sealed segments +
// memtable − tombstones) must return results bit-identical — exact float64
// equality, no tolerance — to the same query against a from-scratch
// single-segment build of the live set, in every scan mode.

func testConfig(mode string) Config {
	cfg := Config{
		Dim:                8,
		SealThreshold:      40,
		MaxSegments:        3,
		Seed:               7,
		NodeCapacity:       8,
		DisableAutoCompact: true,
	}
	switch mode {
	case "sq8":
		cfg.Quantized = true
	case "f32":
		cfg.Float32 = true
	}
	return cfg
}

func randVec(rng *rand.Rand, dim int) vec.Vector {
	v := make(vec.Vector, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// populate inserts n vectors (with some exact duplicates to stress
// distance ties) and deletes roughly one in five, hitting sealed segments
// and the memtable alike. Returns the inserted vectors by global ID.
func populate(t *testing.T, db *DB, rng *rand.Rand, n int) map[int]vec.Vector {
	t.Helper()
	byID := make(map[int]vec.Vector, n)
	var all []vec.Vector
	for i := 0; i < n; i++ {
		var v vec.Vector
		if len(all) > 0 && rng.Intn(10) == 0 {
			v = all[rng.Intn(len(all))].Clone() // duplicate row: exact tie
		} else {
			v = randVec(rng, db.cfg.Dim)
		}
		id, err := db.Insert(v)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		byID[id] = v
		all = append(all, v)
	}
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids[:n/5] {
		if err := db.Delete(id); err != nil {
			t.Fatalf("delete %d: %v", id, err)
		}
		delete(byID, id)
	}
	return byID
}

// rebuildRef builds the reference: one sealed segment holding exactly the
// snapshot's live rows under the same global IDs, plus an empty memtable.
func rebuildRef(t *testing.T, cfg Config, snap *Snapshot) *DB {
	t.Helper()
	liveIDs := snap.LiveIDs(nil)
	if len(liveIDs) == 0 {
		t.Fatal("empty live set")
	}
	backing := make([]float64, 0, len(liveIDs)*cfg.Dim)
	for _, id := range liveIDs {
		v, ok := snap.VectorOf(id)
		if !ok {
			t.Fatalf("live id %d has no vector", id)
		}
		backing = append(backing, v...)
	}
	g, err := buildSegment(context.Background(), cfg.withDefaults(), liveIDs, backing)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	nextID := liveIDs[len(liveIDs)-1] + 1
	ref, err := Restore(cfg, []SealedInput{{
		IDs: g.ids, Store: g.st, Structure: g.rfs, Quantized: g.quantized,
	}}, MemInput{BaseID: nextID}, nextID, 0)
	if err != nil {
		t.Fatalf("restore rebuilt segment: %v", err)
	}
	return ref
}

func sameNeighbors(t *testing.T, label string, got, want []Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d neighbors, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
			t.Fatalf("%s: neighbor %d: got (%d, %v), want (%d, %v)",
				label, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}

func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("%s: got %d groups, want %d", label, len(got.Groups), len(want.Groups))
	}
	for gi := range got.Groups {
		g, w := got.Groups[gi], want.Groups[gi]
		if g.RankScore != w.RankScore {
			t.Fatalf("%s: group %d rank score %v != %v", label, gi, g.RankScore, w.RankScore)
		}
		if len(g.QueryIDs) != len(w.QueryIDs) || len(g.Images) != len(w.Images) {
			t.Fatalf("%s: group %d shape mismatch", label, gi)
		}
		for i := range g.QueryIDs {
			if g.QueryIDs[i] != w.QueryIDs[i] {
				t.Fatalf("%s: group %d query id %d: %d != %d", label, gi, i, g.QueryIDs[i], w.QueryIDs[i])
			}
		}
		for i := range g.Images {
			if g.Images[i] != w.Images[i] {
				t.Fatalf("%s: group %d image %d: %+v != %+v", label, gi, i, g.Images[i], w.Images[i])
			}
		}
	}
}

func checkEquivalence(t *testing.T, mode string, db *DB, byID map[int]vec.Vector, rng *rand.Rand) {
	t.Helper()
	ctx := context.Background()
	snap := db.Acquire()
	defer snap.Release()
	ref := rebuildRef(t, db.cfg, snap)
	refSnap := ref.Acquire()
	defer refSnap.Release()

	if snap.Live() != refSnap.Live() {
		t.Fatalf("live mismatch: %d vs %d", snap.Live(), refSnap.Live())
	}

	var queries []vec.Vector
	for i := 0; i < 6; i++ {
		queries = append(queries, randVec(rng, db.cfg.Dim))
	}
	for id, v := range byID { // a few corpus rows: distance-zero and tie stress
		queries = append(queries, v.Clone())
		_ = id
		if len(queries) >= 10 {
			break
		}
	}
	weights := make(vec.Vector, db.cfg.Dim)
	for i := range weights {
		w := rng.Float64() * 2
		weights[i] = w
	}

	for qi, q := range queries {
		for _, k := range []int{1, 10, 50, snap.Live() + 5} {
			got, err := snap.KNNCtx(ctx, q, k)
			if err != nil {
				t.Fatalf("knn: %v", err)
			}
			want, err := refSnap.KNNCtx(ctx, q, k)
			if err != nil {
				t.Fatalf("ref knn: %v", err)
			}
			sameNeighbors(t, mode+"/knn", got, want)
			if k <= snap.Live() && len(got) != k {
				t.Fatalf("knn returned %d of %d requested with %d live", len(got), k, snap.Live())
			}
			if qi == 0 { // weighted mode once per k
				gotW, err := snap.KNNWeightedCtx(ctx, q, weights, k)
				if err != nil {
					t.Fatalf("weighted knn: %v", err)
				}
				wantW, err := refSnap.KNNWeightedCtx(ctx, q, weights, k)
				if err != nil {
					t.Fatalf("ref weighted knn: %v", err)
				}
				sameNeighbors(t, mode+"/knn-weighted", gotW, wantW)
			}
		}
	}

	// Finalize equivalence: example panels of several sizes.
	live := snap.LiveIDs(nil)
	for _, nEx := range []int{1, 3, 8, 17} {
		rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
		examples := append([]int(nil), live[:nEx]...)
		got, err := snap.QueryByExamplesCtx(ctx, examples, 21, nil)
		if err != nil {
			t.Fatalf("finalize: %v", err)
		}
		want, err := refSnap.QueryByExamplesCtx(ctx, examples, 21, nil)
		if err != nil {
			t.Fatalf("ref finalize: %v", err)
		}
		sameResult(t, mode+"/finalize", got, want)

		gotW, err := snap.QueryByExamplesCtx(ctx, examples, 21, weights)
		if err != nil {
			t.Fatalf("weighted finalize: %v", err)
		}
		wantW, err := refSnap.QueryByExamplesCtx(ctx, examples, 21, weights)
		if err != nil {
			t.Fatalf("ref weighted finalize: %v", err)
		}
		sameResult(t, mode+"/finalize-weighted", gotW, wantW)
	}
}

func TestSegmentMergeEquivalence(t *testing.T) {
	for _, mode := range []string{"f64", "sq8", "f32"} {
		t.Run(mode, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			db, err := New(testConfig(mode))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			byID := populate(t, db, rng, 300)
			st := db.Stats()
			if st.Segments < 2 {
				t.Fatalf("want multiple sealed segments, got %d", st.Segments)
			}
			if st.MemRows == 0 {
				t.Fatal("want a non-empty memtable")
			}
			if st.Tombstones == 0 {
				t.Fatal("want tombstones present")
			}
			checkEquivalence(t, mode, db, byID, rng)

			// Compaction must not change any answer: same live set, same
			// results, segments collapsed to one.
			if err := db.Compact(context.Background()); err != nil {
				t.Fatalf("compact: %v", err)
			}
			if got := db.Stats().Segments; got != 1 {
				t.Fatalf("after compact: %d segments, want 1", got)
			}
			checkEquivalence(t, mode+"/compacted", db, byID, rng)
		})
	}
}
