package seg

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qdcbir/internal/bitset"
	"qdcbir/internal/obs"
	"qdcbir/internal/rfs"
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// ErrClosed is returned by writes after Close.
var ErrClosed = errors.New("seg: db closed")

// ErrUnknownImage is returned by Delete for IDs that are unallocated or
// already tombstoned.
var ErrUnknownImage = errors.New("seg: unknown or deleted image")

// DB is the segmented epoch/snapshot engine. One writer at a time (guarded
// internally); any number of concurrent readers via Acquire. See the
// package comment for the architecture.
type DB struct {
	cfg     Config
	metrics *obs.SegMetrics

	// mu serializes writers (Insert/Delete/seal/compaction-publish). Readers
	// never take it: they load cur.
	mu     sync.Mutex
	mt     *memtable
	nextID int
	closed bool

	cur atomic.Pointer[Snapshot]

	compacting  atomic.Bool
	wg          sync.WaitGroup
	seals       atomic.Uint64
	compactions atomic.Uint64
}

// New creates an empty DB.
func New(cfg Config) (*DB, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("seg: invalid dimension %d", cfg.Dim)
	}
	cfg = cfg.withDefaults()
	db := &DB{cfg: cfg}
	if cfg.Observer != nil {
		db.metrics = obs.NewSegMetrics(cfg.Observer.Registry(), cfg.Observer.Windows())
	}
	db.mt = newMemtable(cfg.Dim, cfg.Float32, 0)
	db.publishLocked(nil, 0)
	return db, nil
}

// SealedInput is one pre-built segment handed to Restore: the ascending
// global IDs of its rows, the backing store and structure (built with the
// same knobs buildSegment uses), and any tombstoned global IDs.
type SealedInput struct {
	IDs        []int
	Store      *store.FeatureStore
	Structure  *rfs.Structure
	Quantized  bool
	Tombstoned []int
}

// MemInput is the memtable image for Restore: the base global ID, the
// row-major float64 rows (including physically-present tombstoned rows, so
// slot arithmetic is preserved exactly), and tombstoned slot indices.
type MemInput struct {
	BaseID     int
	Rows       []float64
	Tombstoned []int
}

// Restore reassembles a DB from previously sealed parts — the load path
// for dynamic archives and the adoption path for wrapping a monolithic
// build as a single sealed segment. Segment ID ranges must be disjoint,
// ascending across the input order, and below mem.BaseID.
func Restore(cfg Config, sealed []SealedInput, mem MemInput, nextID int, epoch uint64) (*DB, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("seg: invalid dimension %d", cfg.Dim)
	}
	cfg = cfg.withDefaults()
	db := &DB{cfg: cfg}
	if cfg.Observer != nil {
		db.metrics = obs.NewSegMetrics(cfg.Observer.Registry(), cfg.Observer.Windows())
	}

	segs := make([]segView, 0, len(sealed))
	maxID := -1
	for si, in := range sealed {
		if len(in.IDs) == 0 || in.Store == nil || in.Structure == nil {
			return nil, fmt.Errorf("seg: restore segment %d is incomplete", si)
		}
		if in.Store.Len() != len(in.IDs) {
			return nil, fmt.Errorf("seg: restore segment %d has %d rows for %d ids", si, in.Store.Len(), len(in.IDs))
		}
		if !sort.IntsAreSorted(in.IDs) || in.IDs[0] <= maxID {
			return nil, fmt.Errorf("seg: restore segment %d ids out of order", si)
		}
		maxID = in.IDs[len(in.IDs)-1]
		g := &segment{ids: in.IDs, st: in.Store, rfs: in.Structure, quantized: in.Quantized}
		if cfg.Float32 {
			in.Store.MaterializeFloat32()
			in.Structure.EnableFloat32Scan()
		}
		sv := segView{seg: g}
		for _, id := range in.Tombstoned {
			local := g.localOf(id)
			if local < 0 {
				return nil, fmt.Errorf("seg: restore segment %d tombstone %d not in segment", si, id)
			}
			if sv.tomb == nil {
				sv.tomb = bitset.New(g.len())
			}
			if sv.tomb.Set(local) {
				sv.nTomb++
			}
		}
		segs = append(segs, sv)
	}

	if mem.BaseID <= maxID {
		return nil, fmt.Errorf("seg: memtable base %d overlaps sealed ids (max %d)", mem.BaseID, maxID)
	}
	if len(mem.Rows)%cfg.Dim != 0 {
		return nil, fmt.Errorf("seg: memtable backing not a multiple of dim %d", cfg.Dim)
	}
	db.mt = newMemtable(cfg.Dim, cfg.Float32, mem.BaseID)
	for off := 0; off < len(mem.Rows); off += cfg.Dim {
		db.mt.add(vec.Vector(mem.Rows[off : off+cfg.Dim]))
	}
	for _, slot := range mem.Tombstoned {
		if slot < 0 || slot >= db.mt.rows {
			return nil, fmt.Errorf("seg: memtable tombstone slot %d out of range", slot)
		}
		if db.mt.tomb == nil {
			db.mt.tomb = bitset.New(db.mt.rows)
		}
		if db.mt.tomb.Set(slot) {
			db.mt.nTomb++
		}
	}

	if min := mem.BaseID + db.mt.rows; nextID < min {
		nextID = min
	}
	db.nextID = nextID
	db.publishLocked(segs, epoch)
	return db, nil
}

// Config returns the resolved configuration.
func (db *DB) Config() Config { return db.cfg }

// Stats is a point-in-time summary for /v1/buildinfo and tooling.
type Stats struct {
	Epoch       uint64
	Segments    int
	MemRows     int
	Tombstones  int
	Live        int
	NextID      int
	Seals       uint64
	Compactions uint64
}

// Stats reports the current snapshot's shape plus lifetime counters.
func (db *DB) Stats() Stats {
	s := db.Acquire()
	defer s.Release()
	db.mu.Lock()
	next := db.nextID
	db.mu.Unlock()
	return Stats{
		Epoch:       s.epoch,
		Segments:    len(s.segs),
		MemRows:     s.mem.rows,
		Tombstones:  s.Tombstones(),
		Live:        s.live,
		NextID:      next,
		Seals:       db.seals.Load(),
		Compactions: db.compactions.Load(),
	}
}

// Acquire pins the current snapshot. The retry loop closes the race where
// a snapshot is swapped out between the load and the refcount increment:
// the pin only counts if the snapshot is still current after taking it
// (the DB itself holds a reference to the current snapshot, so a snapshot
// observed current cannot have been fully released).
func (db *DB) Acquire() *Snapshot {
	for {
		s := db.cur.Load()
		s.refs.Add(1)
		if db.cur.Load() == s {
			return s
		}
		s.release()
	}
}

// publishLocked installs a new current snapshot built from the given
// segment views (sharing the writer's memtable view) and releases the
// previous one. Callers hold db.mu, except the constructors.
func (db *DB) publishLocked(segs []segView, epoch uint64) {
	next := &Snapshot{epoch: epoch, segs: segs, mem: db.mt.view(), db: db}
	for _, sv := range segs {
		next.live += sv.liveLen()
	}
	next.live += next.mem.live()
	next.refs.Store(1) // the DB's own reference
	old := db.cur.Load()
	db.cur.Store(next)
	db.metrics.SnapshotDelta(1)
	if old != nil {
		old.release()
	}
	db.metrics.State(next.epoch, len(next.segs), next.mem.rows, next.Tombstones(), next.live)
}

// Insert adds one image and returns its global ID. If the memtable reaches
// the seal threshold the inserting goroutine seals it synchronously —
// writers pay for sealing; pinned readers are untouched.
func (db *DB) Insert(v vec.Vector) (int, error) {
	if len(v) != db.cfg.Dim {
		return 0, fmt.Errorf("seg: vector dim %d, want %d", len(v), db.cfg.Dim)
	}
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("seg: vector has non-finite component")
		}
	}
	start := time.Now()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	id := db.mt.add(v)
	db.nextID = id + 1
	cur := db.cur.Load()
	if db.mt.rows-db.mt.nTomb >= db.cfg.SealThreshold {
		if err := db.sealLocked(); err != nil {
			return 0, err
		}
	} else {
		db.publishLocked(cur.segs, cur.epoch+1)
	}
	db.metrics.InsertDone(time.Since(start).Nanoseconds())
	db.maybeCompactLocked()
	return id, nil
}

// Delete tombstones one image. The row stays physically present until the
// memtable seals or a compaction rewrites its segment; queries filter it
// immediately from the next epoch on.
func (db *DB) Delete(id int) error {
	start := time.Now()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	cur := db.cur.Load()
	if id >= db.mt.baseID {
		slot := id - db.mt.baseID
		if slot >= db.mt.rows || db.mt.tomb.Get(slot) {
			return fmt.Errorf("%w: %d", ErrUnknownImage, id)
		}
		t := db.mt.tomb.Clone()
		t.Set(slot)
		db.mt.tomb = t
		db.mt.nTomb++
		db.publishLocked(cur.segs, cur.epoch+1)
		db.metrics.DeleteDone(time.Since(start).Nanoseconds())
		return nil
	}
	for i, sv := range cur.segs {
		local := sv.seg.localOf(id)
		if local < 0 {
			continue
		}
		if sv.tomb.Get(local) {
			return fmt.Errorf("%w: %d", ErrUnknownImage, id)
		}
		segs := make([]segView, len(cur.segs))
		copy(segs, cur.segs)
		t := sv.tomb.Clone()
		t.Set(local)
		segs[i] = segView{seg: sv.seg, tomb: t, nTomb: sv.nTomb + 1}
		db.publishLocked(segs, cur.epoch+1)
		db.metrics.DeleteDone(time.Since(start).Nanoseconds())
		db.maybeCompactLocked()
		return nil
	}
	return fmt.Errorf("%w: %d", ErrUnknownImage, id)
}

// sealLocked freezes the memtable's live rows into a new immutable segment
// and starts a fresh memtable. Tombstoned memtable rows are dropped here —
// sealing is the first garbage-collection point.
func (db *DB) sealLocked() error {
	start := time.Now()
	live := db.mt.rows - db.mt.nTomb
	if live == 0 {
		// Nothing to seal; just drop the tombstoned rows.
		db.mt = newMemtable(db.cfg.Dim, db.cfg.Float32, db.nextID)
		cur := db.cur.Load()
		db.publishLocked(cur.segs, cur.epoch+1)
		return nil
	}
	ids := make([]int, 0, live)
	backing := make([]float64, 0, live*db.cfg.Dim)
	for slot := 0; slot < db.mt.rows; slot++ {
		if db.mt.tomb.Get(slot) {
			continue
		}
		ids = append(ids, db.mt.baseID+slot)
		backing = append(backing, db.mt.data[slot*db.cfg.Dim:(slot+1)*db.cfg.Dim]...)
	}
	g, err := buildSegment(context.Background(), db.cfg, ids, backing)
	if err != nil {
		return err
	}
	cur := db.cur.Load()
	segs := make([]segView, len(cur.segs), len(cur.segs)+1)
	copy(segs, cur.segs)
	segs = append(segs, segView{seg: g})
	db.mt = newMemtable(db.cfg.Dim, db.cfg.Float32, db.nextID)
	db.publishLocked(segs, cur.epoch+1)
	db.seals.Add(1)
	db.metrics.SealDone(time.Since(start).Nanoseconds())
	return nil
}

// maybeCompactLocked kicks the background compactor when the segment count
// exceeds policy. At most one compaction runs at a time.
func (db *DB) maybeCompactLocked() {
	if db.cfg.DisableAutoCompact || db.closed {
		return
	}
	if len(db.cur.Load().segs) <= db.cfg.MaxSegments {
		return
	}
	if !db.compacting.CompareAndSwap(false, true) {
		return
	}
	db.wg.Add(1)
	go func() {
		defer db.wg.Done()
		defer db.compacting.Store(false)
		_ = db.compact(context.Background())
	}()
}

// Compact merges every currently sealed segment into one, dropping
// tombstoned rows and retraining the quantizer, off the query path.
// Writes proceed concurrently: the merge works from a pinned snapshot, and
// at publish time any delete that landed in an input segment during the
// merge is re-applied to the merged segment as a tombstone. Segments
// sealed during the merge are untouched. No-op if a background compaction
// is already running.
func (db *DB) Compact(ctx context.Context) error {
	if !db.compacting.CompareAndSwap(false, true) {
		return nil
	}
	defer db.compacting.Store(false)
	return db.compact(ctx)
}

func (db *DB) compact(ctx context.Context) error {
	start := time.Now()
	pin := db.Acquire()
	defer pin.Release()
	if len(pin.segs) == 0 {
		return nil
	}
	if len(pin.segs) == 1 && pin.segs[0].nTomb == 0 {
		return nil // already fully compacted
	}

	inputs := make(map[*segment]bool, len(pin.segs))
	var ids []int
	var backing []float64
	for _, sv := range pin.segs {
		inputs[sv.seg] = true
		for local, id := range sv.seg.ids {
			if sv.tomb.Get(local) {
				continue
			}
			ids = append(ids, id)
			backing = append(backing, sv.seg.st.At(local)...)
		}
	}

	var merged *segment
	if len(ids) > 0 {
		var err error
		merged, err = buildSegment(ctx, db.cfg, ids, backing)
		if err != nil {
			return err
		}
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	cur := db.cur.Load()
	var segs []segView
	if merged != nil {
		mv := segView{seg: merged}
		// Re-apply deletes that arrived in input segments while we merged:
		// any tombstone in the CURRENT view of an input segment that refers
		// to a row we copied (it was live at pin time) maps into the merged
		// segment.
		for _, sv := range cur.segs {
			if !inputs[sv.seg] || sv.nTomb == 0 {
				continue
			}
			for _, local := range sv.tomb.AppendIndices(nil) {
				ml := merged.localOf(sv.seg.ids[local])
				if ml < 0 {
					continue // was already tombstoned at pin time and dropped
				}
				if mv.tomb == nil {
					mv.tomb = bitset.New(merged.len())
				}
				if mv.tomb.Set(ml) {
					mv.nTomb++
				}
			}
		}
		segs = append(segs, mv)
	}
	for _, sv := range cur.segs {
		if !inputs[sv.seg] {
			segs = append(segs, sv)
		}
	}
	db.publishLocked(segs, cur.epoch+1)
	db.compactions.Add(1)
	db.metrics.CompactDone(time.Since(start).Nanoseconds())
	return nil
}

// Close rejects further writes and waits for any background compaction.
// Pinned snapshots (and Acquire) remain valid for readers draining out.
func (db *DB) Close() {
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	db.wg.Wait()
}
