// Package seg implements the segmented epoch/snapshot engine for online
// ingest: an LSM-flavored arrangement of immutable sealed segments (each a
// self-contained feature store + R*-tree, optionally SQ8-quantized) plus a
// small mutable memtable that is always scanned exactly. Queries pin a
// Snapshot — an epoch-stamped, reference-counted view of the segment set,
// the memtable prefix, and per-segment tombstones — so writes never stall
// reads and reads never observe a half-applied write.
//
// The engine's core promise is bit-exactness: a k-NN query over (sealed
// segments + memtable − tombstones) returns results bit-identical to the
// same query against a from-scratch single-segment build of the live set.
// This holds because every distance is computed by the same
// position-independent per-row kernels the monolithic engine uses
// (vec.SqL2 and friends — see the kernel contracts in internal/vec), the
// SQ8 path reranks candidates with exact arithmetic before any result
// leaves a segment, and cross-segment merge orders by (distance, global ID)
// exactly as shard.MergeNeighbors does for the scatter-gather tier.
//
// Feedback-driven retrieval (the paper's query decomposition) is served by
// a segmentation-invariant variant: instead of anchoring subqueries to tree
// nodes (whose shapes differ between a segmented corpus and a monolithic
// rebuild), Snapshot.QueryByExamplesCtx clusters the example vectors
// themselves and runs each cluster's multipoint subquery corpus-wide,
// reusing the single-node proportional-allocation and merge arithmetic
// (core.ProportionalAlloc). See finalize.go.
//
// Lifecycle: Insert appends to the memtable; when the memtable reaches
// Config.SealThreshold rows the inserting writer seals it into a new
// immutable segment (building the tree synchronously — writers pay for
// sealing, readers never do). When the segment count exceeds
// Config.MaxSegments a background compactor merges the two oldest
// segments, dropping tombstoned rows and retraining the quantizer, and
// publishes the merged segment without blocking concurrent writes: deletes
// that land in an input segment during the merge are re-applied to the
// merged segment as tombstones at publish time.
package seg

import (
	"qdcbir/internal/obs"
)

// Config mirrors the monolithic engine's build knobs (qdcbir.Config) plus
// the segmentation policy. The zero value is usable after withDefaults.
type Config struct {
	// Dim is the feature dimensionality; required, fixed for the DB's life.
	Dim int

	// SealThreshold is the memtable row count that triggers sealing into an
	// immutable segment. Default 256.
	SealThreshold int

	// MaxSegments is the sealed-segment count above which background
	// compaction is triggered. Default 4.
	MaxSegments int

	// Float32 selects the float32 scan mode for sealed segments (memtable
	// rows are narrowed at insert, matching MaterializeFloat32's narrowing).
	Float32 bool

	// Quantized enables SQ8 two-phase scan in sealed segments. Falls back
	// silently to exact scan per segment if training fails, exactly like the
	// monolithic attachQuantizer path; correctness is unaffected because the
	// rerank phase is exact.
	Quantized bool

	// RerankFactor is the SQ8 candidate over-fetch multiplier. Default 3.
	RerankFactor int

	// BoundaryThreshold is the §3.3 search-area expansion threshold used by
	// snapshot-pinned feedback sessions. Default 0.4.
	BoundaryThreshold float64

	// Seed drives deterministic tree builds and finalize clustering.
	Seed int64

	// RepFraction is the per-node representative sampling fraction for
	// sealed-segment trees. Default 0.05.
	RepFraction float64

	// NodeCapacity is the R*-tree node fan-out for sealed segments.
	// Default 32 (segments are small; the monolithic default of 100 would
	// leave freshly sealed segments a single leaf).
	NodeCapacity int

	// Parallelism bounds per-query fan-out across segments and per-build
	// worker counts. Default GOMAXPROCS (resolved by the par package).
	Parallelism int

	// DisableAutoCompact turns off the background compactor; Compact can
	// still be called explicitly. Used by tests and by bulk loads that
	// compact once at the end.
	DisableAutoCompact bool

	// Observer, when non-nil, receives ingest/compaction metrics through
	// its Registry (obs.SegMetrics).
	Observer *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.SealThreshold <= 0 {
		c.SealThreshold = 256
	}
	if c.MaxSegments <= 0 {
		c.MaxSegments = 4
	}
	if c.RerankFactor <= 0 {
		c.RerankFactor = 3
	}
	if c.BoundaryThreshold <= 0 {
		c.BoundaryThreshold = 0.4
	}
	if c.RepFraction <= 0 {
		c.RepFraction = 0.05
	}
	if c.NodeCapacity <= 0 {
		c.NodeCapacity = 32
	}
	return c
}
