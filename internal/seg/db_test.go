package seg

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"qdcbir/internal/vec"
)

func TestInsertDeleteSemantics(t *testing.T) {
	db, err := New(Config{Dim: 4, SealThreshold: 10, DisableAutoCompact: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Insert(vec.Vector{1, 2}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := db.Insert(vec.Vector{1, 2, 3, math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := db.Insert(vec.Vector{1, 2, 3, math.Inf(1)}); err == nil {
		t.Fatal("Inf accepted")
	}

	var ids []int
	for i := 0; i < 25; i++ {
		id, err := db.Insert(vec.Vector{float64(i), 0, 0, 0})
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("id %d, want %d", id, i)
		}
		ids = append(ids, id)
	}
	st := db.Stats()
	if st.Segments != 2 || st.MemRows != 5 || st.Live != 25 || st.Seals != 2 {
		t.Fatalf("unexpected stats %+v", st)
	}

	// Delete one sealed row and one memtable row.
	if err := db.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(22); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(3); !errors.Is(err, ErrUnknownImage) {
		t.Fatalf("double delete: %v", err)
	}
	if err := db.Delete(99); !errors.Is(err, ErrUnknownImage) {
		t.Fatalf("unknown delete: %v", err)
	}
	st = db.Stats()
	if st.Live != 23 || st.Tombstones != 2 {
		t.Fatalf("after deletes: %+v", st)
	}

	snap := db.Acquire()
	defer snap.Release()
	if _, ok := snap.VectorOf(3); ok {
		t.Fatal("deleted sealed row still visible")
	}
	if _, ok := snap.VectorOf(22); ok {
		t.Fatal("deleted memtable row still visible")
	}
	if v, ok := snap.VectorOf(7); !ok || v[0] != 7 {
		t.Fatalf("VectorOf(7) = %v, %v", v, ok)
	}
	live := snap.LiveIDs(nil)
	if len(live) != 23 || !sort.IntsAreSorted(live) {
		t.Fatalf("LiveIDs: %v", live)
	}
	for _, id := range live {
		if id == 3 || id == 22 {
			t.Fatalf("tombstoned id %d in live set", id)
		}
	}
	_ = ids
}

func TestEpochsAdvanceAndSnapshotsAreStable(t *testing.T) {
	db, err := New(Config{Dim: 2, SealThreshold: 4, DisableAutoCompact: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var epochs []uint64
	for i := 0; i < 6; i++ {
		if _, err := db.Insert(vec.Vector{float64(i), 1}); err != nil {
			t.Fatal(err)
		}
		probe := db.Acquire()
		epochs = append(epochs, probe.Epoch())
		probe.Release()
	}
	for i := 1; i < len(epochs); i++ {
		if epochs[i] <= epochs[i-1] {
			t.Fatalf("epoch not strictly increasing: %v", epochs)
		}
	}

	// A pinned snapshot must not observe later writes.
	pin := db.Acquire()
	liveBefore := pin.Live()
	epochBefore := pin.Epoch()
	for i := 0; i < 10; i++ {
		if _, err := db.Insert(vec.Vector{9, 9}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete(0); err != nil {
		t.Fatal(err)
	}
	if pin.Live() != liveBefore || pin.Epoch() != epochBefore {
		t.Fatal("pinned snapshot changed under writes")
	}
	if _, ok := pin.VectorOf(0); !ok {
		t.Fatal("pinned snapshot lost a row deleted after the pin")
	}
	pin.Release()

	now := db.Acquire()
	defer now.Release()
	if _, ok := now.VectorOf(0); ok {
		t.Fatal("current snapshot still shows deleted row")
	}
}

func TestCompactMergesAndDropsTombstones(t *testing.T) {
	db, err := New(Config{Dim: 3, SealThreshold: 8, DisableAutoCompact: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		if _, err := db.Insert(randVec(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []int{1, 9, 17, 33} {
		if err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	before := db.Stats()
	if before.Segments < 2 {
		t.Fatalf("want multiple segments, got %d", before.Segments)
	}
	if err := db.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	after := db.Stats()
	if after.Segments != 1 {
		t.Fatalf("segments after compact: %d", after.Segments)
	}
	if after.Live != before.Live {
		t.Fatalf("live changed: %d -> %d", before.Live, after.Live)
	}
	// Sealed-segment tombstones are gone; only memtable tombstones may remain.
	snap := db.Acquire()
	defer snap.Release()
	segTombs := 0
	for _, sv := range snap.segs {
		segTombs += sv.nTomb
	}
	if segTombs != 0 {
		t.Fatalf("compacted segment retains %d tombstones", segTombs)
	}
	if after.Compactions != 1 {
		t.Fatalf("compactions counter: %d", after.Compactions)
	}
}

func TestAutoCompactKeepsSegmentCountBounded(t *testing.T) {
	db, err := New(Config{Dim: 2, SealThreshold: 5, MaxSegments: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		if _, err := db.Insert(randVec(rng, 2)); err != nil {
			t.Fatal(err)
		}
	}
	db.Close() // waits for any in-flight compaction
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatal("auto-compaction never ran")
	}
	if st.Live != 200 {
		t.Fatalf("live %d, want 200", st.Live)
	}
}

func TestClosedDBRejectsWrites(t *testing.T) {
	db, err := New(Config{Dim: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert(vec.Vector{1, 2}); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := db.Insert(vec.Vector{1, 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("insert after close: %v", err)
	}
	if err := db.Delete(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("delete after close: %v", err)
	}
	// Readers may still drain.
	snap := db.Acquire()
	if snap.Live() != 1 {
		t.Fatalf("live after close: %d", snap.Live())
	}
	snap.Release()
}

func TestRestoreValidation(t *testing.T) {
	cfg := Config{Dim: 2, Seed: 1}
	if _, err := Restore(cfg, nil, MemInput{Rows: []float64{1}}, 0, 0); err == nil {
		t.Fatal("ragged memtable backing accepted")
	}
	if _, err := Restore(cfg, nil, MemInput{Rows: []float64{1, 2}, Tombstoned: []int{5}}, 0, 0); err == nil {
		t.Fatal("out-of-range memtable tombstone accepted")
	}
	if _, err := Restore(cfg, []SealedInput{{}}, MemInput{}, 0, 0); err == nil {
		t.Fatal("incomplete segment accepted")
	}

	// Round-trip: a populated DB's state restores to identical query results.
	db, err := New(Config{Dim: 2, SealThreshold: 6, DisableAutoCompact: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		if _, err := db.Insert(randVec(rng, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete(2); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(19); err != nil {
		t.Fatal(err)
	}
	snap := db.Acquire()
	defer snap.Release()
	var sealed []SealedInput
	for _, sv := range snap.segs {
		var tombs []int
		for _, local := range sv.tomb.AppendIndices(nil) {
			tombs = append(tombs, sv.seg.ids[local])
		}
		sealed = append(sealed, SealedInput{
			IDs: sv.seg.ids, Store: sv.seg.st, Structure: sv.seg.rfs,
			Quantized: sv.seg.quantized, Tombstoned: tombs,
		})
	}
	memTombs := snap.mem.tomb.AppendIndices(nil)
	memRows := append([]float64(nil), snap.mem.data[:snap.mem.rows*2]...)
	re, err := Restore(db.cfg, sealed, MemInput{BaseID: snap.mem.baseID, Rows: memRows, Tombstoned: memTombs}, db.nextID, snap.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	reSnap := re.Acquire()
	defer reSnap.Release()
	if reSnap.Live() != snap.Live() || reSnap.Epoch() != snap.Epoch() {
		t.Fatalf("restore shape: live %d/%d epoch %d/%d", reSnap.Live(), snap.Live(), reSnap.Epoch(), snap.Epoch())
	}
	q := randVec(rng, 2)
	a, err := snap.KNNCtx(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := reSnap.KNNCtx(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameNeighbors(t, "restore", b, a)
}

func TestSessionFeedbackLoop(t *testing.T) {
	db, err := New(Config{Dim: 4, SealThreshold: 30, DisableAutoCompact: true, Seed: 6, NodeCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 150; i++ {
		if _, err := db.Insert(randVec(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete(5); err != nil {
		t.Fatal(err)
	}

	s := db.NewSession(rand.New(rand.NewSource(1)))
	defer s.Release()
	cands := s.Candidates(21)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		if c.ID == 5 {
			t.Fatal("tombstoned image displayed")
		}
	}
	marked := []int{cands[0].ID, cands[len(cands)-1].ID}
	if err := s.Feedback(marked); err != nil {
		t.Fatal(err)
	}
	if err := s.Feedback([]int{999999}); err == nil {
		t.Fatal("undisplayed image accepted")
	}
	// More rounds localize further; then finalize.
	for round := 0; round < 3; round++ {
		cs := s.Candidates(21)
		if len(cs) == 0 {
			break
		}
		if err := s.Feedback([]int{cs[0].ID}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.FinalizeCtx(context.Background(), 21)
	if err != nil {
		t.Fatal(err)
	}
	ids := res.IDs()
	if len(ids) != 21 {
		t.Fatalf("finalize returned %d ids", len(ids))
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate result %d", id)
		}
		seen[id] = true
		if id == 5 {
			t.Fatal("tombstoned image in results")
		}
	}
	if _, err := s.FinalizeCtx(context.Background(), 21); !errors.Is(err, ErrFinalized) {
		t.Fatalf("second finalize: %v", err)
	}
	if err := s.Feedback(marked); !errors.Is(err, ErrFinalized) {
		t.Fatalf("feedback after finalize: %v", err)
	}
}
