package seg

// Persistence export: a Snapshot dumps exactly the inputs Restore consumes,
// so save/load is Restore(SealedInputs(), MemInput(), ...) — symmetric by
// construction. The exported stores and structures are the live ones
// (segments are immutable, so sharing is safe); the memtable rows are
// copied, since the writer keeps appending to its backing.

// SealedInputs returns one SealedInput per sealed segment, tombstones
// expressed as global IDs.
func (s *Snapshot) SealedInputs() []SealedInput {
	out := make([]SealedInput, len(s.segs))
	for i, sv := range s.segs {
		var tombs []int
		for _, local := range sv.tomb.AppendIndices(nil) {
			tombs = append(tombs, sv.seg.ids[local])
		}
		out[i] = SealedInput{
			IDs:        sv.seg.ids,
			Store:      sv.seg.st,
			Structure:  sv.seg.rfs,
			Quantized:  sv.seg.quantized,
			Tombstoned: tombs,
		}
	}
	return out
}

// MemInput returns the snapshot's memtable image: base ID, a copy of the
// row-major float64 rows (tombstoned rows included, preserving slot
// arithmetic), and the tombstoned slots.
func (s *Snapshot) MemInput() MemInput {
	return MemInput{
		BaseID:     s.mem.baseID,
		Rows:       append([]float64(nil), s.mem.data[:s.mem.rows*s.mem.dim]...),
		Tombstoned: s.mem.tomb.AppendIndices(nil),
	}
}
