package seg

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"qdcbir/internal/core"
	"qdcbir/internal/kmeans"
	"qdcbir/internal/par"
	"qdcbir/internal/vec"
)

// ScoredImage is one finalize result with its distance score.
type ScoredImage struct {
	ID    int
	Score float64
}

// Group is one localized subquery's results in the query-side
// decomposition: the example images that formed the cluster and the images
// its multipoint subquery claimed.
type Group struct {
	QueryIDs  []int
	Images    []ScoredImage
	RankScore float64
}

// Result is a finalize outcome: groups ordered ascending by rank score,
// matching the monolithic core.Result ordering.
type Result struct {
	Groups []Group
}

// IDs returns the result image IDs in group order.
func (r *Result) IDs() []int {
	var out []int
	for _, g := range r.Groups {
		for _, im := range g.Images {
			out = append(out, im.ID)
		}
	}
	return out
}

// QueryByExamplesCtx runs the final localized multipoint k-NN round
// (§3.3/§3.4) against the snapshot using QUERY-SIDE decomposition: the
// example vectors themselves are clustered (k-means, deterministic seed
// from the DB config) into ceil(sqrt(n)) groups, and each group's centroid
// subquery runs corpus-wide over the snapshot. The per-group allocation,
// the alloc+k over-request, the serial first-claim merge, the top-up loop,
// and the stable rank-score ordering are transcribed from the monolithic
// finalize (core.ProportionalAlloc is literally shared).
//
// Unlike the tree-anchored monolithic finalize, this decomposition never
// references tree nodes — so its output is invariant to how the corpus is
// segmented: the same live set produces bit-identical groups whether it
// sits in one sealed segment, five segments plus a memtable, or a
// from-scratch rebuild. (Example images are identified by global ID; under
// the order-preserving ID relabeling of a rebuild the clustering sees the
// same vectors in the same order with the same seed.)
func (s *Snapshot) QueryByExamplesCtx(ctx context.Context, examples []int, k int, weights vec.Vector) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("seg: invalid k=%d", k)
	}
	if weights != nil && len(weights) != s.db.cfg.Dim {
		return nil, fmt.Errorf("seg: weights dim %d, want %d", len(weights), s.db.cfg.Dim)
	}
	// Dedup, resolve vectors, and sort ascending by global ID: the sorted
	// order is the canonical clustering input order, invariant under
	// segmentation and under the rebuild relabeling.
	seenEx := make(map[int]bool, len(examples))
	var ids []int
	for _, id := range examples {
		if seenEx[id] {
			continue
		}
		seenEx[id] = true
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, errors.New("seg: no example images")
	}
	sort.Ints(ids)
	pts := make([]vec.Vector, len(ids))
	for i, id := range ids {
		v, ok := s.VectorOf(id)
		if !ok {
			return nil, fmt.Errorf("seg: example image %d is unknown or deleted", id)
		}
		pts[i] = v
	}

	// Decompose: ceil(sqrt(n)) clusters, capped by n and by k (the
	// monolithic path likewise truncates the group list to k).
	kGroups := int(math.Ceil(math.Sqrt(float64(len(pts)))))
	if kGroups > len(pts) {
		kGroups = len(pts)
	}
	if kGroups > k {
		kGroups = k
	}
	rng := rand.New(rand.NewSource(s.db.cfg.Seed + 5))
	cl := kmeans.Cluster(pts, kGroups, kmeans.Config{}, rng)

	type sub struct {
		ids      []int // member global IDs, ascending
		centroid vec.Vector
	}
	subs := make([]*sub, cl.K)
	for c := 0; c < cl.K; c++ {
		subs[c] = &sub{}
	}
	for i, c := range cl.Assign {
		subs[c].ids = append(subs[c].ids, ids[i])
	}
	// Drop empty clusters defensively (kmeans reseeds, but stay robust),
	// then order groups by (size desc, smallest member ID asc) — the
	// analogue of the monolithic (count desc, node ID asc) order.
	kept := subs[:0]
	for _, g := range subs {
		if len(g.ids) > 0 {
			kept = append(kept, g)
		}
	}
	subs = kept
	for _, g := range subs {
		qpts := make([]vec.Vector, len(g.ids))
		for i, id := range g.ids {
			v, _ := s.VectorOf(id)
			qpts[i] = v
		}
		g.centroid = vec.Centroid(qpts)
	}
	sort.Slice(subs, func(i, j int) bool {
		if len(subs[i].ids) != len(subs[j].ids) {
			return len(subs[i].ids) > len(subs[j].ids)
		}
		return subs[i].ids[0] < subs[j].ids[0]
	})
	if len(subs) > k {
		subs = subs[:k]
	}

	// Proportional allocation (§3.4). Every subquery is corpus-wide, so
	// each group's capacity is the snapshot's live count.
	counts := make([]int, len(subs))
	caps := make([]int, len(subs))
	for i, g := range subs {
		counts[i] = len(g.ids)
		caps[i] = s.live
	}
	allocs := core.ProportionalAlloc(k, counts, caps)

	// Scatter the subqueries at alloc+k, then merge serially in group order
	// with first-claim dedup.
	lists := make([][]Neighbor, len(subs))
	err := par.Do(ctx, len(subs), s.db.cfg.Parallelism, func(i int) error {
		ns, err := s.knn(ctx, subs[i].centroid, weights, allocs[i]+k)
		if err != nil {
			return err
		}
		lists[i] = ns
		return nil
	})
	if err != nil {
		return nil, err
	}

	seen := make(map[int]bool, k)
	groups := make([]*Group, len(subs))
	for i, g := range subs {
		out := &Group{QueryIDs: g.ids}
		for _, n := range lists[i] {
			if len(out.Images) >= allocs[i] {
				break
			}
			if seen[n.ID] {
				continue
			}
			seen[n.ID] = true
			out.Images = append(out.Images, ScoredImage{ID: n.ID, Score: n.Dist})
			out.RankScore += n.Dist
		}
		groups[i] = out
	}
	for deficit := k - len(seen); deficit > 0; {
		progressed := false
		for i, g := range subs {
			if deficit <= 0 {
				break
			}
			out := groups[i]
			if len(out.Images) >= caps[i] {
				continue
			}
			want := len(out.Images) + deficit + len(seen)
			more, err := s.knn(ctx, g.centroid, weights, want)
			if err != nil {
				return nil, err
			}
			for _, n := range more {
				if deficit <= 0 {
					break
				}
				if seen[n.ID] {
					continue
				}
				seen[n.ID] = true
				out.Images = append(out.Images, ScoredImage{ID: n.ID, Score: n.Dist})
				out.RankScore += n.Dist
				deficit--
				progressed = true
			}
		}
		if !progressed {
			break // fewer than k live images exist
		}
	}

	res := &Result{Groups: make([]Group, len(groups))}
	for i, g := range groups {
		res.Groups[i] = *g
	}
	sort.SliceStable(res.Groups, func(i, j int) bool { return res.Groups[i].RankScore < res.Groups[j].RankScore })
	return res, nil
}
