package rfs

import (
	"context"
	"math/rand"
	"testing"

	"qdcbir/internal/rstar"
	"qdcbir/internal/vec"
)

func TestInsertRefreshQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := clusteredCorpus(rng, 6, 40, 4)
	s := buildTest(t, pts, testCfg)
	before := s.Len()

	// Insert a new tight blob far from everything.
	center := vec.Vector{500, 500, 500, 500}
	var newIDs []rstar.ItemID
	for i := 0; i < 30; i++ {
		p := center.Clone()
		for j := range p {
			p[j] += rng.NormFloat64()
		}
		newIDs = append(newIDs, s.Insert(p))
	}
	if !s.Stale() {
		t.Fatal("structure not marked stale after inserts")
	}
	if err := s.Validate(); err == nil {
		t.Fatal("stale structure validated")
	}
	s.Refresh()
	if s.Stale() {
		t.Fatal("still stale after Refresh")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate after refresh: %v", err)
	}
	if s.Len() != before+30 || s.Live() != before+30 {
		t.Fatalf("Len=%d Live=%d want %d", s.Len(), s.Live(), before+30)
	}
	// New IDs are dense continuations.
	for i, id := range newIDs {
		if int(id) != before+i {
			t.Fatalf("id %d assigned %d", i, id)
		}
		if s.LeafOf(id) == nil {
			t.Fatalf("inserted %d has no leaf", id)
		}
	}
	// The new blob is represented: at least one of its members is a rep.
	found := false
	for _, id := range s.AllReps() {
		if int(id) >= before {
			found = true
			break
		}
	}
	if !found {
		t.Error("new blob has no representative after Refresh")
	}
	// And the new blob is searchable.
	ns := s.Tree().KNN(center, 5, nil)
	for _, n := range ns {
		if int(n.ID) < before {
			t.Errorf("kNN near new blob returned old image %d", n.ID)
		}
	}
}

func TestDeleteRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := clusteredCorpus(rng, 5, 40, 3)
	s := buildTest(t, pts, testCfg)
	n := s.Len()

	// Capture the victim's vector first: Delete zeroes the point slot (which
	// aliases the Build input) so the backing memory can be reclaimed.
	q0 := pts[0].Clone()
	if !s.Delete(0) {
		t.Fatal("Delete(0) failed")
	}
	if s.Point(0) != nil {
		t.Fatal("deleted point slot not zeroed")
	}
	if s.Delete(0) {
		t.Fatal("double delete succeeded")
	}
	if !s.Deleted(0) {
		t.Fatal("Deleted(0) false")
	}
	if s.Delete(rstar.ItemID(n + 5)) {
		t.Fatal("deleting unknown id succeeded")
	}
	if s.Live() != n-1 {
		t.Fatalf("Live = %d", s.Live())
	}
	s.Refresh()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The deleted image is no longer a representative anywhere.
	for _, id := range s.AllReps() {
		if id == 0 {
			t.Error("deleted image still a representative")
		}
	}
	// And no longer retrievable.
	for _, nb := range s.Tree().KNN(q0, 3, nil) {
		if nb.ID == 0 {
			t.Error("deleted image retrieved")
		}
	}
	// IDs are tombstoned, not reused.
	id := s.Insert(vec.Vector{9, 9, 9})
	if int(id) != n {
		t.Errorf("insert after delete assigned %d, want %d", id, n)
	}
}

func TestRefreshContextCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := clusteredCorpus(rng, 5, 40, 3)
	s := buildTest(t, pts, testCfg)
	s.Insert(vec.Vector{1, 2, 3})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.RefreshContext(ctx); err == nil {
		t.Fatal("cancelled RefreshContext returned nil error")
	}
	if !s.Stale() {
		t.Fatal("structure no longer stale after failed refresh")
	}
	if err := s.Validate(); err == nil {
		t.Fatal("stale structure validated after failed refresh")
	}
	// A completed refresh recovers.
	if err := s.RefreshContext(context.Background()); err != nil {
		t.Fatalf("RefreshContext: %v", err)
	}
	if s.Stale() {
		t.Fatal("still stale after successful refresh")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDimMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := buildTest(t, clusteredCorpus(rng, 4, 30, 3), testCfg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Insert(vec.Vector{1, 2})
}

func TestMutationBatchThenSession(t *testing.T) {
	// End-to-end: mutate, refresh, and verify the tree invariants plus
	// representative integrity survive a churn workload.
	rng := rand.New(rand.NewSource(4))
	pts := clusteredCorpus(rng, 6, 40, 4)
	s := buildTest(t, pts, testCfg)
	for round := 0; round < 3; round++ {
		for i := 0; i < 20; i++ {
			p := make(vec.Vector, 4)
			for j := range p {
				p[j] = rng.Float64() * 100
			}
			s.Insert(p)
		}
		for i := 0; i < 10; i++ {
			s.Delete(rstar.ItemID(rng.Intn(s.Len())))
		}
		s.Refresh()
		if err := s.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if s.RepCount() == 0 {
		t.Fatal("no representatives after churn")
	}
}
