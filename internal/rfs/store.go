package rfs

import (
	"context"
	"fmt"

	"qdcbir/internal/disk"
	"qdcbir/internal/rstar"
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// This file is the flat-feature-store integration: structures built over a
// store.FeatureStore index zero-copy row views (no per-vector duplication in
// the Structure), and the point-free TopologySnapshot persists the hierarchy
// without repeating vector data the archive already carries in the store's
// backing array — halving what the old Snapshot wrote, which stored every
// point twice (once in Points, once inside the tree's leaf items).

// BuildStore constructs the RFS structure over a feature store. Image IDs
// are the store rows. The structure's point table aliases the store's
// backing array; the tree copies the values into its own leaf-block slab.
func BuildStore(st *store.FeatureStore, cfg BuildConfig) *Structure {
	s, err := BuildStoreCtx(context.Background(), st, cfg)
	if err != nil {
		panic(fmt.Sprintf("rfs: build: %v", err)) // unreachable: ctx never cancels
	}
	return s
}

// BuildStoreCtx is BuildStore with cancellation, mirroring BuildCtx.
func BuildStoreCtx(ctx context.Context, st *store.FeatureStore, cfg BuildConfig) (*Structure, error) {
	return BuildCtx(ctx, st.Views(), cfg)
}

// TopologySnapshot is the point-free serializable form of a Structure: the
// tree topology (leaf item IDs only) plus the representative lists in tree
// pre-order. Vectors live outside, in the feature store the caller
// serializes alongside.
type TopologySnapshot struct {
	Cfg          BuildConfig
	Tree         *rstar.Topology
	RepsPreorder [][]rstar.ItemID
}

// TopologySnapshot captures the structure without point payloads.
func (s *Structure) TopologySnapshot() *TopologySnapshot {
	snap := &TopologySnapshot{
		Cfg:  s.cfg,
		Tree: s.tree.Topology(),
	}
	s.tree.Walk(func(n *rstar.Node, _ int) {
		reps := append([]rstar.ItemID(nil), s.reps[n.ID()]...)
		snap.RepsPreorder = append(snap.RepsPreorder, reps)
	})
	return snap
}

// FromTopologySnapshot reconstructs a Structure from a point-free snapshot
// and the corpus feature store. The resulting structure is identical to what
// FromSnapshot produces from the equivalent full snapshot: page IDs are
// reassigned in the same pre-order and the representative walk is the same.
func FromTopologySnapshot(snap *TopologySnapshot, st *store.FeatureStore) (*Structure, error) {
	if snap == nil || snap.Tree == nil {
		return nil, fmt.Errorf("rfs: nil topology snapshot")
	}
	tree, err := rstar.FromTopology(snap.Tree, func(id rstar.ItemID) vec.Vector {
		if id < 0 || int(id) >= st.Len() {
			return nil // wrong dimension → FromTopology reports the bad ID
		}
		return st.At(int(id))
	})
	if err != nil {
		return nil, err
	}
	s := &Structure{
		cfg:    snap.Cfg.withDefaults(),
		tree:   tree,
		points: st.Views(),
	}
	s.index()
	if err := s.attachReps(snap.RepsPreorder); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// attachReps installs pre-order representative lists onto the indexed tree.
func (s *Structure) attachReps(repsPreorder [][]rstar.ItemID) error {
	s.reps = make(map[disk.PageID][]rstar.ItemID)
	s.repIsSet = make(map[rstar.ItemID]bool)
	i := 0
	var walkErr error
	s.tree.Walk(func(n *rstar.Node, _ int) {
		if walkErr != nil {
			return
		}
		if i >= len(repsPreorder) {
			walkErr = fmt.Errorf("rfs: snapshot has %d rep lists for more nodes", len(repsPreorder))
			return
		}
		s.reps[n.ID()] = repsPreorder[i]
		if n.IsLeaf() {
			for _, id := range repsPreorder[i] {
				if !s.repIsSet[id] {
					s.repIsSet[id] = true
					s.allReps = append(s.allReps, id)
				}
			}
		}
		i++
	})
	if walkErr != nil {
		return walkErr
	}
	if i != len(repsPreorder) {
		return fmt.Errorf("rfs: snapshot has %d rep lists for %d nodes", len(repsPreorder), i)
	}
	return nil
}
