package rfs

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"qdcbir/internal/disk"
	"qdcbir/internal/rstar"
	"qdcbir/internal/vec"
)

// testCfg uses small nodes so modest corpora produce multi-level trees.
var testCfg = BuildConfig{
	Tree:       rstar.Config{MaxFill: 16, MinFill: 6},
	TargetFill: 14,
	Seed:       1,
}

// clusteredCorpus builds nBlobs Gaussian blobs of blobSize points each.
func clusteredCorpus(rng *rand.Rand, nBlobs, blobSize, dim int) []vec.Vector {
	var pts []vec.Vector
	for b := 0; b < nBlobs; b++ {
		center := make(vec.Vector, dim)
		for j := range center {
			center[j] = rng.Float64() * 100
		}
		for i := 0; i < blobSize; i++ {
			p := center.Clone()
			for j := range p {
				p[j] += rng.NormFloat64()
			}
			pts = append(pts, p)
		}
	}
	return pts
}

func buildTest(t *testing.T, pts []vec.Vector, cfg BuildConfig) *Structure {
	t.Helper()
	s := Build(pts, cfg)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return s
}

func TestBuildBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := clusteredCorpus(rng, 10, 40, 5)
	s := buildTest(t, pts, testCfg)
	if s.Len() != 400 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Tree().Height() < 2 {
		t.Errorf("tree height %d, expected multi-level", s.Tree().Height())
	}
	// Distinct representatives about 5% of the corpus.
	frac := float64(s.RepCount()) / float64(s.Len())
	if frac < 0.03 || frac > 0.15 {
		t.Errorf("rep fraction %.3f outside sane band around 0.05", frac)
	}
}

func TestBuildEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(nil, testCfg)
}

func TestEveryNodeHasReps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := buildTest(t, clusteredCorpus(rng, 8, 30, 4), testCfg)
	s.Tree().Walk(func(n *rstar.Node, _ int) {
		reps := s.Reps(n, nil)
		if len(reps) == 0 {
			t.Errorf("node %d has no representatives", n.ID())
		}
		for _, id := range reps {
			if !s.Contains(n, id) {
				t.Errorf("node %d rep %d not in subtree", n.ID(), id)
			}
		}
	})
}

func TestUpperLevelsHaveMoreReps(t *testing.T) {
	// §3.1: "clusters in the upper levels of the RFS structure have more
	// representative images than those in the lower levels".
	rng := rand.New(rand.NewSource(3))
	s := buildTest(t, clusteredCorpus(rng, 12, 50, 4), testCfg)
	sums := map[int][]int{}
	s.Tree().Walk(func(n *rstar.Node, level int) {
		sums[level] = append(sums[level], len(s.Reps(n, nil)))
	})
	mean := func(xs []int) float64 {
		var t float64
		for _, x := range xs {
			t += float64(x)
		}
		return t / float64(len(xs))
	}
	top := s.Tree().Height() - 1
	if top == 0 {
		t.Skip("single-level tree")
	}
	if mean(sums[top]) <= mean(sums[0]) {
		t.Errorf("root level mean reps %.1f not above leaf level %.1f", mean(sums[top]), mean(sums[0]))
	}
}

func TestInternalRepsComeFromChildReps(t *testing.T) {
	// The bottom-up rule: an internal node's representative must also be a
	// representative of the child subtree it came from.
	rng := rand.New(rand.NewSource(4))
	s := buildTest(t, clusteredCorpus(rng, 8, 40, 4), testCfg)
	s.Tree().Walk(func(n *rstar.Node, _ int) {
		if n.IsLeaf() {
			return
		}
		for _, id := range s.Reps(n, nil) {
			child := s.ChildContaining(n, id)
			if child == nil {
				t.Fatalf("node %d rep %d has no containing child", n.ID(), id)
			}
			found := false
			for _, cid := range s.Reps(child, nil) {
				if cid == id {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("node %d rep %d not a rep of its child %d", n.ID(), id, child.ID())
			}
		}
	})
}

func TestChildContaining(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := buildTest(t, clusteredCorpus(rng, 6, 40, 3), testCfg)
	root := s.Root()
	if root.IsLeaf() {
		t.Skip("tree too small")
	}
	// Every image maps through ChildContaining consistently with LeafOf.
	for id := 0; id < s.Len(); id += 17 {
		item := rstar.ItemID(id)
		child := s.ChildContaining(root, item)
		if child == nil {
			t.Fatalf("image %d not under root", id)
		}
		if !s.Contains(child, item) {
			t.Errorf("ChildContaining(%d) returned subtree without it", id)
		}
	}
	// A leaf has no children.
	leaf := s.LeafOf(0)
	if got := s.ChildContaining(leaf, 0); got != nil {
		t.Error("ChildContaining on leaf should be nil")
	}
}

func TestBoundaryRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := buildTest(t, clusteredCorpus(rng, 6, 40, 3), testCfg)
	leaf := s.LeafOf(0)
	r := leaf.Rect()
	// Centre has ratio 0; a far point has a large ratio.
	if got := s.BoundaryRatio(leaf, r.Center()); got != 0 {
		t.Errorf("centre ratio = %v", got)
	}
	far := r.Center()
	far[0] += r.Diagonal() * 3
	if got := s.BoundaryRatio(leaf, far); got < 1 {
		t.Errorf("far ratio = %v", got)
	}
	// A corner point of the MBR has ratio 0.5 exactly.
	if got := s.BoundaryRatio(leaf, r.Min); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("corner ratio = %v, want 0.5", got)
	}
}

func TestExpandForQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := buildTest(t, clusteredCorpus(rng, 10, 40, 3), testCfg)
	leaf := s.LeafOf(0)
	if leaf.Parent() == nil {
		t.Skip("single-node tree")
	}
	// A query at the node centre never expands.
	center := leaf.Rect().Center()
	if got := s.ExpandForQuery(leaf, []vec.Vector{center}, 0.4); got != leaf {
		t.Error("centred query expanded")
	}
	// A query far outside expands at least one level.
	far := center.Clone()
	far[0] += leaf.Rect().Diagonal() * 2
	got := s.ExpandForQuery(leaf, []vec.Vector{far}, 0.4)
	if got == leaf {
		t.Error("boundary query did not expand")
	}
	// Threshold 0 with an off-centre point expands to the root.
	off := center.Clone()
	off[0] += 1e-3
	if got := s.ExpandForQuery(leaf, []vec.Vector{off}, 0); got != s.Root() {
		t.Error("zero threshold should expand to root")
	}
	// Expansion never escapes the root.
	if got := s.ExpandForQuery(s.Root(), []vec.Vector{far}, 0.4); got != s.Root() {
		t.Error("expansion escaped root")
	}
}

func TestRandomReps(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := buildTest(t, clusteredCorpus(rng, 10, 40, 3), testCfg)
	root := s.Root()
	all := s.Reps(root, nil)
	got := s.RandomReps(root, 5, rng, nil)
	if len(got) != 5 && len(got) != len(all) {
		t.Fatalf("RandomReps returned %d", len(got))
	}
	seen := map[rstar.ItemID]bool{}
	valid := map[rstar.ItemID]bool{}
	for _, id := range all {
		valid[id] = true
	}
	for _, id := range got {
		if seen[id] {
			t.Error("duplicate in RandomReps")
		}
		seen[id] = true
		if !valid[id] {
			t.Errorf("RandomReps returned non-representative %d", id)
		}
	}
	// Request exceeding the pool returns the whole pool.
	everything := s.RandomReps(root, len(all)+100, rng, nil)
	if len(everything) != len(all) {
		t.Errorf("oversized request returned %d of %d", len(everything), len(all))
	}
}

func TestRepsIOAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := buildTest(t, clusteredCorpus(rng, 8, 40, 3), testCfg)
	var acc disk.Counter
	s.Reps(s.Root(), &acc)
	s.Reps(s.LeafOf(0), &acc)
	if acc.Reads() != 2 {
		t.Errorf("reads = %d, want 2 (one per node touched)", acc.Reads())
	}
	// §5.2.2: multiple reps from the same cluster share one node access —
	// with an LRU cache the second read of the same node is a hit.
	cache := disk.NewLRUCache(8)
	s.Reps(s.Root(), cache)
	s.Reps(s.Root(), cache)
	if cache.Reads() != 1 || cache.Accesses() != 2 {
		t.Errorf("cached reads=%d accesses=%d", cache.Reads(), cache.Accesses())
	}
}

func TestRepsRepresentClusters(t *testing.T) {
	// With clearly separated blobs and enough representatives, every blob
	// should contribute at least one root-level representative — the property
	// that makes the initial random display usable (§3.2).
	rng := rand.New(rand.NewSource(10))
	nBlobs, blobSize := 8, 50
	pts := clusteredCorpus(rng, nBlobs, blobSize, 4)
	s := buildTest(t, pts, testCfg)
	rootReps := s.Reps(s.Root(), nil)
	blobsHit := map[int]bool{}
	for _, id := range rootReps {
		blobsHit[int(id)/blobSize] = true
	}
	if len(blobsHit) < nBlobs-1 { // allow one unlucky blob
		t.Errorf("root reps cover only %d of %d blobs", len(blobsHit), nBlobs)
	}
}

func TestKMeansHierarchyBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	pts := clusteredCorpus(rng, 8, 40, 4)
	cfg := testCfg
	cfg.Hierarchy = "kmeans"
	s := buildTest(t, pts, cfg)
	if s.Len() != 320 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Tree().Height() < 2 {
		t.Errorf("height %d", s.Tree().Height())
	}
	if s.RepCount() == 0 {
		t.Fatal("no representatives")
	}
	// The engine-facing API behaves identically over this backbone.
	got := s.Tree().KNN(pts[0], 3, nil)
	if len(got) != 3 || got[0].ID != 0 {
		t.Fatalf("kNN over kmeans hierarchy: %+v", got)
	}
}

func TestUnknownHierarchyPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	pts := clusteredCorpus(rng, 2, 20, 3)
	cfg := testCfg
	cfg.Hierarchy = "quadtree"
	defer func() {
		if recover() == nil {
			t.Fatal("unknown hierarchy accepted")
		}
	}()
	Build(pts, cfg)
}

func TestIncrementalBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := clusteredCorpus(rng, 6, 30, 3)
	cfg := testCfg
	cfg.Incremental = true
	s := buildTest(t, pts, cfg)
	if s.Len() != 180 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.RepCount() == 0 {
		t.Fatal("no representatives")
	}
}

func TestSubtreeSize(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := buildTest(t, clusteredCorpus(rng, 6, 40, 3), testCfg)
	if got := s.SubtreeSize(s.Root()); got != s.Len() {
		t.Errorf("root subtree size %d != %d", got, s.Len())
	}
	var leafTotal int
	s.Tree().Walk(func(n *rstar.Node, level int) {
		if level == 0 {
			leafTotal += s.SubtreeSize(n)
		}
	})
	if leafTotal != s.Len() {
		t.Errorf("leaf subtree sizes sum to %d", leafTotal)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := clusteredCorpus(rng, 6, 40, 4)
	s := buildTest(t, pts, testCfg)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != s.Len() || loaded.RepCount() != s.RepCount() {
		t.Fatalf("loaded len=%d reps=%d, want %d/%d", loaded.Len(), loaded.RepCount(), s.Len(), s.RepCount())
	}
	if loaded.Tree().Height() != s.Tree().Height() {
		t.Errorf("height %d != %d", loaded.Tree().Height(), s.Tree().Height())
	}
	// Same structure ⇒ same root representative set.
	orig := map[rstar.ItemID]bool{}
	for _, id := range s.Reps(s.Root(), nil) {
		orig[id] = true
	}
	for _, id := range loaded.Reps(loaded.Root(), nil) {
		if !orig[id] {
			t.Errorf("loaded root rep %d not in original", id)
		}
	}
	// Same k-NN behaviour.
	q := pts[3]
	a := s.Tree().KNN(q, 5, nil)
	b := loaded.Tree().KNN(q, 5, nil)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("kNN differs after reload at rank %d", i)
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
	if _, err := FromSnapshot(nil); err == nil {
		t.Fatal("FromSnapshot accepted nil")
	}
}

func TestBuildDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pts := clusteredCorpus(rng, 6, 30, 3)
	a := Build(pts, testCfg)
	b := Build(pts, testCfg)
	ra := a.Reps(a.Root(), nil)
	rb := b.Reps(b.Root(), nil)
	if len(ra) != len(rb) {
		t.Fatalf("rep counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("rep %d differs: %d vs %d", i, ra[i], rb[i])
		}
	}
}
