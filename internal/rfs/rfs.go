// Package rfs implements the paper's Relevance Feedback Support structure
// (§3.1): an R*-tree hierarchy over the image feature vectors whose every
// node is augmented with representative images, selected bottom-up with
// unsupervised k-means.
//
//   - At each leaf, the stored images are clustered into subclusters and the
//     image nearest each subcluster centre becomes a representative.
//   - At each internal node, the representatives of all children are
//     aggregated, clustered again, and the images nearest the new centres
//     become that node's representatives.
//
// Representative counts are proportional to cluster size; the distinct
// representative set is about RepFraction (default 5%) of the database, which
// is all the information relevance-feedback processing needs — the basis of
// the paper's client-side-feedback scalability argument (§4, §6).
package rfs

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"qdcbir/internal/bitset"
	"qdcbir/internal/disk"
	"qdcbir/internal/kmeans"
	"qdcbir/internal/kmtree"
	"qdcbir/internal/par"
	"qdcbir/internal/rstar"
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// BuildConfig controls Structure construction.
type BuildConfig struct {
	// RepFraction is the fraction of each cluster selected as
	// representatives. The paper designates 5% of the database (§4).
	// Default 0.05.
	RepFraction float64
	// Tree carries the R*-tree fill factors. The default MaxFill of 100
	// matches the paper's node capacity.
	Tree rstar.Config
	// TargetFill is the STR bulk-load fill (default 93, which lands leaf
	// occupancy in the paper's 70–100 band). Ignored when Incremental.
	TargetFill int
	// Incremental builds the tree by one-at-a-time R* insertion instead of
	// bulk loading (an ablation; slower, slightly different clustering).
	// Equivalent to Hierarchy "insert".
	Incremental bool
	// Hierarchy selects the clustering backbone: "str" (default, STR
	// bulk-loaded R*-tree), "insert" (incremental R* insertion), or "kmeans"
	// (balanced hierarchical k-means — the paper notes the RFS structure
	// works over any hierarchical clustering, §3.1).
	Hierarchy string
	// Seed drives the k-means representative selection. Each node derives
	// its own generator from (Seed, node page ID), so selection is
	// reproducible and independent of the order nodes are processed in.
	Seed int64
	// KMeansIter bounds the Lloyd iterations per node. Default 25.
	KMeansIter int
	// Parallelism bounds the worker count of the build's parallel phases
	// (STR tiling sorts, per-node k-means representative selection). <= 0
	// uses one worker per CPU. The built structure is byte-identical at
	// every setting.
	Parallelism int
}

func (c BuildConfig) withDefaults() BuildConfig {
	if c.RepFraction <= 0 || c.RepFraction > 1 {
		c.RepFraction = 0.05
	}
	if c.TargetFill <= 0 {
		c.TargetFill = 93
	}
	if c.KMeansIter <= 0 {
		c.KMeansIter = 25
	}
	return c
}

// Structure is the built RFS structure.
//
// Concurrency invariant: once Build (or FromSnapshot/Refresh) returns, every
// read path — Reps, RandomReps' accounting aside, Point, LeafOf,
// SubtreeSize, ChildContaining, Contains, BoundaryRatio, ExpandForQuery,
// Tree and its searches — is safe for unsynchronized concurrent use: reads
// touch only immutable maps and slices. Mutations (Insert, Delete, Refresh)
// require external exclusion against both readers and other writers, exactly
// like the underlying rstar.Tree.
type Structure struct {
	cfg    BuildConfig
	tree   *rstar.Tree
	points []vec.Vector // indexed by ItemID (dense: IDs are 0..n-1)

	reps     map[disk.PageID][]rstar.ItemID
	leafOf   map[rstar.ItemID]*rstar.Node
	subSize  map[disk.PageID]int
	nodeByID map[disk.PageID]*rstar.Node
	allReps  []rstar.ItemID // distinct representative IDs (leaf level)
	repIsSet map[rstar.ItemID]bool

	// dynamic-maintenance state (see dynamic.go)
	stale   bool
	deleted *bitset.Set
}

// Build constructs the RFS structure over the corpus vectors. Image IDs are
// the vector indices. It panics on an empty corpus.
func Build(points []vec.Vector, cfg BuildConfig) *Structure {
	s, err := BuildCtx(context.Background(), points, cfg)
	if err != nil {
		panic(fmt.Sprintf("rfs: build: %v", err)) // unreachable: ctx never cancels
	}
	return s
}

// BuildCtx is Build with cancellation. The tree construction's sort phases
// and the per-node k-means representative selection run on
// cfg.Parallelism workers; the result is byte-identical at every worker
// count because each node's generator is derived from (Seed, page ID) rather
// than from a shared sequential stream.
func BuildCtx(ctx context.Context, points []vec.Vector, cfg BuildConfig) (*Structure, error) {
	if len(points) == 0 {
		panic("rfs: empty corpus")
	}
	cfg = cfg.withDefaults()
	dim := len(points[0])

	hierarchy := cfg.Hierarchy
	if hierarchy == "" {
		if cfg.Incremental {
			hierarchy = "insert"
		} else {
			hierarchy = "str"
		}
	}
	var tree *rstar.Tree
	switch hierarchy {
	case "insert":
		tree = rstar.New(dim, cfg.Tree)
		for i, p := range points {
			if i%1024 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			tree.Insert(rstar.ItemID(i), p)
		}
	case "kmeans":
		fanout := cfg.Tree.MaxFill
		if fanout <= 0 {
			fanout = 100
		}
		snap := kmtree.Build(points, kmtree.Config{
			LeafCap:    cfg.TargetFill,
			Fanout:     fanout,
			Seed:       cfg.Seed,
			KMeansIter: cfg.KMeansIter,
		})
		var err error
		tree, err = rstar.FromSnapshot(snap)
		if err != nil {
			panic(fmt.Sprintf("rfs: kmeans hierarchy: %v", err))
		}
	case "str":
		items := make([]rstar.Item, len(points))
		for i, p := range points {
			items[i] = rstar.Item{ID: rstar.ItemID(i), Point: p}
		}
		var err error
		tree, err = rstar.BulkLoadCtx(ctx, dim, cfg.Tree, items, cfg.TargetFill, cfg.Parallelism)
		if err != nil {
			return nil, err
		}
	default:
		panic(fmt.Sprintf("rfs: unknown hierarchy %q", hierarchy))
	}
	s := &Structure{
		cfg:    cfg,
		tree:   tree,
		points: points,
	}
	s.index()
	if err := s.selectRepresentatives(ctx); err != nil {
		return nil, err
	}
	return s, nil
}

// index builds the item→leaf map, per-node subtree sizes, and the page-ID
// node index (session restores resolve persisted node IDs through it).
func (s *Structure) index() {
	s.leafOf = make(map[rstar.ItemID]*rstar.Node, len(s.points))
	s.subSize = make(map[disk.PageID]int)
	s.nodeByID = make(map[disk.PageID]*rstar.Node)
	var walk func(n *rstar.Node) int
	walk = func(n *rstar.Node) int {
		s.nodeByID[n.ID()] = n
		size := 0
		if n.IsLeaf() {
			for _, it := range n.Items() {
				s.leafOf[it.ID] = n
			}
			size = len(n.Items())
		} else {
			for _, c := range n.Children() {
				size += walk(c)
			}
		}
		s.subSize[n.ID()] = size
		return size
	}
	walk(s.tree.Root())
}

// nodeSeed derives one node's k-means generator seed from the build seed
// and the node's page ID via a splitmix64-style mix, decorrelating nodes
// while keeping selection independent of processing order — the property
// that lets serial and parallel builds produce identical representatives.
func nodeSeed(seed int64, id disk.PageID) int64 {
	z := uint64(seed) ^ (0x9e3779b97f4a7c15 * (uint64(id) + 1))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// selectRepresentatives performs the paper's bottom-up two-stage selection.
// Nodes of one level have no data dependencies on each other (a node's pool
// is its own items or its children's already-chosen representatives), so
// each level is clustered on cfg.Parallelism workers, leaves first. Results
// are committed serially in tree order, keeping allReps deterministic.
func (s *Structure) selectRepresentatives(ctx context.Context) error {
	s.reps = make(map[disk.PageID][]rstar.ItemID)
	s.repIsSet = make(map[rstar.ItemID]bool)

	// Group nodes by level (leaves = 0), preserving depth-first order within
	// each level.
	height := s.tree.Height()
	levels := make([][]*rstar.Node, height)
	s.tree.Walk(func(n *rstar.Node, level int) {
		levels[level] = append(levels[level], n)
	})

	for _, nodes := range levels {
		chosen := make([][]rstar.ItemID, len(nodes))
		err := par.Do(ctx, len(nodes), s.cfg.Parallelism, func(i int) error {
			n := nodes[i]
			var pool []rstar.ItemID
			if n.IsLeaf() {
				for _, it := range n.Items() {
					pool = append(pool, it.ID)
				}
			} else {
				for _, c := range n.Children() {
					pool = append(pool, s.reps[c.ID()]...)
				}
			}
			if len(pool) == 0 {
				return nil
			}
			k := s.repTarget(n, len(pool))
			rng := rand.New(rand.NewSource(nodeSeed(s.cfg.Seed, n.ID())))
			chosen[i] = s.clusterSelect(pool, k, rng)
			return nil
		})
		if err != nil {
			return err
		}
		for i, n := range nodes {
			if chosen[i] == nil {
				continue
			}
			s.reps[n.ID()] = chosen[i]
			if n.IsLeaf() {
				for _, id := range chosen[i] {
					if !s.repIsSet[id] {
						s.repIsSet[id] = true
						s.allReps = append(s.allReps, id)
					}
				}
			}
		}
	}
	return nil
}

// repTarget returns how many representatives node n keeps, proportional to
// its subtree size and clamped to the available pool.
func (s *Structure) repTarget(n *rstar.Node, poolSize int) int {
	k := int(math.Ceil(s.cfg.RepFraction * float64(s.subSize[n.ID()])))
	if k < 1 {
		k = 1
	}
	if k > poolSize {
		k = poolSize
	}
	return k
}

// clusterSelect k-means-clusters the pooled images and returns the image
// nearest each cluster centre ("one or more images nearest its center are
// selected as the representative images", §3.1).
func (s *Structure) clusterSelect(pool []rstar.ItemID, k int, rng *rand.Rand) []rstar.ItemID {
	if k >= len(pool) {
		out := make([]rstar.ItemID, len(pool))
		copy(out, pool)
		return out
	}
	// Near-degenerate case (k within 10% of the pool): clustering would make
	// almost every point its own centroid at quadratic cost, and any
	// subsampling risks dropping the only representative of a small
	// subconcept — which would make that subconcept permanently unfindable
	// during browsing. Keep the whole pool instead; the overshoot is at most
	// ~11% and matches the paper's observation that the root's candidate pool
	// is "much larger than" one display (§4). Upper RFS levels, whose rep
	// target is within rounding of the sum of their children's, always hit
	// this path.
	if 10*k >= 9*len(pool) {
		out := make([]rstar.ItemID, len(pool))
		copy(out, pool)
		return out
	}
	pts := make([]vec.Vector, len(pool))
	for i, id := range pool {
		pts[i] = s.points[id]
	}
	r := kmeans.Cluster(pts, k, kmeans.Config{MaxIter: s.cfg.KMeansIter}, rng)
	idxs := kmeans.NearestToCentroids(pts, r)
	out := make([]rstar.ItemID, 0, len(idxs))
	seen := make(map[rstar.ItemID]bool, len(idxs))
	for _, i := range idxs {
		if id := pool[i]; !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// Tree exposes the underlying R*-tree.
func (s *Structure) Tree() *rstar.Tree { return s.tree }

// EnableQuantizedScan trains and installs the SQ8 quantized-scan path on the
// structure's tree (see rstar.SetQuantizedScoring). Like structure
// construction, it requires exclusion against concurrent searches.
func (s *Structure) EnableQuantizedScan() error { return s.tree.SetQuantizedScoring(true) }

// AdoptQuantized installs a persisted store-ordered quantizer on the tree
// (archive restores use this to skip retraining; see rstar.AdoptQuantized).
func (s *Structure) AdoptQuantized(q *store.Quantized) error { return s.tree.AdoptQuantized(q) }

// EnableFloat32Scan activates the tree's float32 sweep path (see
// rstar.SetFloat32Scoring): the leaf slab narrows to a float32 mirror once,
// and unweighted searches routed through KNNF32* run at float32 precision.
func (s *Structure) EnableFloat32Scan() { s.tree.SetFloat32Scoring(true) }

// Root returns the hierarchy root.
func (s *Structure) Root() *rstar.Node { return s.tree.Root() }

// Len returns the corpus size.
func (s *Structure) Len() int { return len(s.points) }

// Point returns the feature vector of an image (shared; do not modify).
func (s *Structure) Point(id rstar.ItemID) vec.Vector { return s.points[int(id)] }

// Reps returns the representative images of a node (shared; do not modify).
// Reading a node's representative list models one page access and is reported
// to acc (pass nil to skip accounting) — this is the I/O the paper counts for
// relevance feedback processing (§5.2.2).
func (s *Structure) Reps(n *rstar.Node, acc disk.Accounter) []rstar.ItemID {
	if acc != nil {
		acc.Access(n.ID())
	}
	return s.reps[n.ID()]
}

// RepCount returns the number of distinct representative images.
func (s *Structure) RepCount() int { return len(s.allReps) }

// AllReps returns the distinct representative IDs (shared; do not modify).
func (s *Structure) AllReps() []rstar.ItemID { return s.allReps }

// IsRep reports whether an image is a representative anywhere in the
// hierarchy.
func (s *Structure) IsRep(id rstar.ItemID) bool { return s.repIsSet[id] }

// LeafOf returns the leaf node storing the image.
func (s *Structure) LeafOf(id rstar.ItemID) *rstar.Node { return s.leafOf[id] }

// NodeByID resolves a node page ID anywhere in the hierarchy, or nil for an
// unknown ID. Session restores use this to rebind persisted assignments.
func (s *Structure) NodeByID(id disk.PageID) *rstar.Node { return s.nodeByID[id] }

// SubtreeSize returns the number of images stored under n.
func (s *Structure) SubtreeSize(n *rstar.Node) int { return s.subSize[n.ID()] }

// ChildContaining returns the child of n whose subtree stores the image, or
// nil when n is a leaf or the image is not under n. The query decomposition
// descent uses this to map a marked representative to the subcluster it came
// from (§3.2).
func (s *Structure) ChildContaining(n *rstar.Node, id rstar.ItemID) *rstar.Node {
	if n.IsLeaf() {
		return nil
	}
	leaf := s.leafOf[id]
	if leaf == nil {
		return nil
	}
	// Walk up from the leaf until the parent is n.
	for cur := leaf; cur != nil; cur = cur.Parent() {
		if cur.Parent() == n {
			return cur
		}
	}
	return nil
}

// Contains reports whether the image is stored in n's subtree.
func (s *Structure) Contains(n *rstar.Node, id rstar.ItemID) bool {
	for cur := s.leafOf[id]; cur != nil; cur = cur.Parent() {
		if cur == n {
			return true
		}
	}
	return false
}

// BoundaryRatio returns the paper's §3.3 boundary statistic for a point in a
// node: the distance from the node centre divided by the node diagonal. A
// zero-diagonal (single-point) node yields 0 when the point coincides with
// the centre and +Inf otherwise.
func (s *Structure) BoundaryRatio(n *rstar.Node, p vec.Vector) float64 {
	r := n.Rect()
	d := r.Diagonal()
	dist := vec.L2(p, r.Center())
	if d == 0 {
		if dist == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return dist / d
}

// ExpandForQuery implements the §3.3 search-area expansion: starting from the
// node, while any query point's boundary ratio exceeds the threshold, move to
// the parent; repeat at each level. The paper's empirical threshold is 0.4
// for the 15,000-image corpus.
func (s *Structure) ExpandForQuery(n *rstar.Node, queryPoints []vec.Vector, threshold float64) *rstar.Node {
	cur := n
	for cur.Parent() != nil {
		nearBoundary := false
		for _, q := range queryPoints {
			if s.BoundaryRatio(cur, q) > threshold {
				nearBoundary = true
				break
			}
		}
		if !nearBoundary {
			break
		}
		cur = cur.Parent()
	}
	return cur
}

// RandomReps returns up to n representatives of the node drawn without
// replacement — the GUI's "Random" browse function (§4). Accounting works as
// in Reps.
func (s *Structure) RandomReps(node *rstar.Node, n int, rng *rand.Rand, acc disk.Accounter) []rstar.ItemID {
	all := s.Reps(node, acc)
	if n >= len(all) {
		out := make([]rstar.ItemID, len(all))
		copy(out, all)
		return out
	}
	perm := rng.Perm(len(all))
	out := make([]rstar.ItemID, n)
	for i := 0; i < n; i++ {
		out[i] = all[perm[i]]
	}
	return out
}

// Validate checks RFS invariants beyond the underlying tree's: every node has
// at least one representative, every representative of a node is stored in
// that node's subtree, and leaf representatives are leaf members.
func (s *Structure) Validate() error {
	if s.stale {
		return fmt.Errorf("rfs: structure is stale after mutations; call Refresh")
	}
	if err := s.tree.CheckInvariants(); err != nil {
		return fmt.Errorf("rfs: tree: %w", err)
	}
	var check func(n *rstar.Node) error
	check = func(n *rstar.Node) error {
		reps := s.reps[n.ID()]
		if s.subSize[n.ID()] > 0 && len(reps) == 0 {
			return fmt.Errorf("rfs: node %d has no representatives", n.ID())
		}
		for _, id := range reps {
			if !s.Contains(n, id) {
				return fmt.Errorf("rfs: node %d representative %d outside subtree", n.ID(), id)
			}
		}
		for _, c := range n.Children() {
			if err := check(c); err != nil {
				return err
			}
		}
		return nil
	}
	return check(s.tree.Root())
}
