package rfs

import (
	"context"
	"fmt"

	"qdcbir/internal/rstar"
	"qdcbir/internal/vec"
)

// Dynamic maintenance. The paper builds its RFS structure once over a static
// Corel corpus; a production deployment also ingests new images and retires
// old ones. Insert and Delete mutate the underlying R*-tree immediately but
// leave the representative assignments stale (splits and forced reinsertion
// can relocate many images across leaves, so precise incremental rep
// maintenance would be both fragile and no cheaper than re-selection).
// Refresh re-indexes and re-selects representatives; callers batch mutations
// and refresh once. Query entry points reject a stale structure via Validate.

// Insert adds a new image to the structure and returns its assigned ID. The
// structure is stale until Refresh is called.
func (s *Structure) Insert(p vec.Vector) rstar.ItemID {
	if len(p) != s.tree.Dim() {
		panic(fmt.Sprintf("rfs: insert dim %d into %d-d structure", len(p), s.tree.Dim()))
	}
	id := rstar.ItemID(len(s.points))
	s.points = append(s.points, p.Clone())
	s.tree.Insert(id, p)
	s.stale = true
	return id
}

// Delete removes an image. Its ID is tombstoned (never reused); the
// structure is stale until Refresh is called. It returns false for unknown
// or already-deleted IDs.
func (s *Structure) Delete(id rstar.ItemID) bool {
	if int(id) < 0 || int(id) >= len(s.points) || s.deleted[id] {
		return false
	}
	if !s.tree.Delete(id, s.points[id]) {
		return false
	}
	if s.deleted == nil {
		s.deleted = make(map[rstar.ItemID]bool)
	}
	s.deleted[id] = true
	s.stale = true
	return true
}

// Deleted reports whether an ID has been removed.
func (s *Structure) Deleted(id rstar.ItemID) bool { return s.deleted[id] }

// Stale reports whether mutations have invalidated the representative
// assignments; a stale structure must be Refreshed before querying.
func (s *Structure) Stale() bool { return s.stale }

// Refresh re-indexes the hierarchy and re-selects representatives after a
// batch of Insert/Delete calls. Cost is comparable to the representative-
// selection phase of Build (the tree itself is not rebuilt); selection runs
// on cfg.Parallelism workers like Build's.
func (s *Structure) Refresh() {
	s.index()
	s.allReps = nil
	// Background context: a refresh is short and must leave the structure
	// consistent, so it is not cancellable.
	if err := s.selectRepresentatives(context.Background()); err != nil {
		panic(fmt.Sprintf("rfs: refresh: %v", err)) // unreachable: ctx never cancels
	}
	s.stale = false
}

// Live returns the number of non-deleted images.
func (s *Structure) Live() int { return s.tree.Len() }
