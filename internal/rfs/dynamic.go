package rfs

import (
	"context"
	"fmt"

	"qdcbir/internal/bitset"
	"qdcbir/internal/rstar"
	"qdcbir/internal/vec"
)

// Dynamic maintenance. The paper builds its RFS structure once over a static
// Corel corpus; a production deployment also ingests new images and retires
// old ones. Insert and Delete mutate the underlying R*-tree immediately but
// leave the representative assignments stale (splits and forced reinsertion
// can relocate many images across leaves, so precise incremental rep
// maintenance would be both fragile and no cheaper than re-selection).
// RefreshContext re-indexes and re-selects representatives; callers batch
// mutations and refresh once. Query entry points reject a stale structure via
// Validate.
//
// This in-place path stops the world for the refresh, so it suits batch
// maintenance windows; the segmented engine in internal/seg builds on
// immutable structures instead and serves reads during writes.

// Insert adds a new image to the structure and returns its assigned ID. The
// structure is stale until RefreshContext is called.
func (s *Structure) Insert(p vec.Vector) rstar.ItemID {
	if len(p) != s.tree.Dim() {
		panic(fmt.Sprintf("rfs: insert dim %d into %d-d structure", len(p), s.tree.Dim()))
	}
	id := rstar.ItemID(len(s.points))
	s.points = append(s.points, p.Clone())
	s.tree.Insert(id, p)
	s.stale = true
	return id
}

// Delete removes an image. Its ID is tombstoned (never reused) and its point
// slot is zeroed so the vector's backing memory can be reclaimed; the
// structure is stale until RefreshContext is called. It returns false for
// unknown or already-deleted IDs.
func (s *Structure) Delete(id rstar.ItemID) bool {
	if int(id) < 0 || int(id) >= len(s.points) || s.deleted.Get(int(id)) {
		return false
	}
	if !s.tree.Delete(id, s.points[id]) {
		return false
	}
	if s.deleted == nil {
		s.deleted = bitset.New(len(s.points))
	}
	s.deleted.Set(int(id))
	s.points[id] = nil
	s.stale = true
	return true
}

// Deleted reports whether an ID has been removed.
func (s *Structure) Deleted(id rstar.ItemID) bool { return s.deleted.Get(int(id)) }

// Stale reports whether mutations have invalidated the representative
// assignments; a stale structure must be refreshed before querying.
func (s *Structure) Stale() bool { return s.stale }

// RefreshContext re-indexes the hierarchy and re-selects representatives
// after a batch of Insert/Delete calls. Cost is comparable to the
// representative-selection phase of Build (the tree itself is not rebuilt);
// selection runs on cfg.Parallelism workers like Build's. A cancelled context
// aborts mid-selection and returns the context's error with the structure
// still stale (part of the hierarchy may carry fresh representative lists,
// part the old ones, so queries stay rejected until a refresh completes).
func (s *Structure) RefreshContext(ctx context.Context) error {
	s.index()
	s.allReps = nil
	if err := s.selectRepresentatives(ctx); err != nil {
		return err
	}
	s.stale = false
	return nil
}

// Refresh is RefreshContext with a background context, which cannot cancel —
// the only error path — so the refresh always completes.
func (s *Structure) Refresh() {
	_ = s.RefreshContext(context.Background())
}

// Live returns the number of non-deleted images.
func (s *Structure) Live() int { return s.tree.Len() }
