package rfs

import (
	"encoding/gob"
	"fmt"
	"io"

	"qdcbir/internal/rstar"
	"qdcbir/internal/vec"
)

// Snapshot is the serializable form of a Structure. Representative lists are
// stored in tree pre-order, which FromSnapshot re-walks identically, so node
// page-ID reassignment on load is harmless.
type Snapshot struct {
	Cfg    BuildConfig
	Tree   *rstar.TreeSnapshot
	Points []vec.Vector
	// RepsPreorder holds each node's representative list in depth-first
	// pre-order of the tree.
	RepsPreorder [][]rstar.ItemID
}

// Snapshot captures the structure for persistence.
func (s *Structure) Snapshot() *Snapshot {
	snap := &Snapshot{
		Cfg:    s.cfg,
		Tree:   s.tree.Snapshot(),
		Points: s.points,
	}
	s.tree.Walk(func(n *rstar.Node, _ int) {
		reps := append([]rstar.ItemID(nil), s.reps[n.ID()]...)
		snap.RepsPreorder = append(snap.RepsPreorder, reps)
	})
	return snap
}

// FromSnapshot reconstructs a Structure.
func FromSnapshot(snap *Snapshot) (*Structure, error) {
	if snap == nil || snap.Tree == nil {
		return nil, fmt.Errorf("rfs: nil snapshot")
	}
	tree, err := rstar.FromSnapshot(snap.Tree)
	if err != nil {
		return nil, err
	}
	s := &Structure{
		cfg:    snap.Cfg.withDefaults(),
		tree:   tree,
		points: snap.Points,
	}
	s.index()
	if err := s.attachReps(snap.RepsPreorder); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Save gob-encodes the structure to w.
func (s *Structure) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(s.Snapshot())
}

// Load gob-decodes a structure from r.
func Load(r io.Reader) (*Structure, error) {
	var snap Snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("rfs: decode: %w", err)
	}
	return FromSnapshot(&snap)
}
