package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	"qdcbir/internal/core"
	"qdcbir/internal/obs"
	"qdcbir/internal/par"
	"qdcbir/internal/server"
	"qdcbir/internal/shard"
	"qdcbir/internal/vec"
)

// ---- scatter primitives ----

// scatterSearcher satisfies shard.Searcher over HTTP: one leg per shard,
// merged with shard.MergeNeighbors. Each per-shard list is that shard's
// exact local top-k ascending by (distance, ID), so the merged prefix is
// bit-identical to a single-node search (see internal/shard).
type scatterSearcher struct{ rt *Router }

func (s scatterSearcher) SearchNode(ctx context.Context, nodeID uint64, q vec.Vector, weights []float64, k int) ([]shard.Neighbor, error) {
	rt := s.rt
	rt.scatters.Inc()
	st := stitchFrom(ctx)
	fanOff := st.Since()
	fanStart := time.Now()
	lists := make([][]shard.Neighbor, len(rt.shards))
	legNS := make([]int64, len(rt.shards))
	err := par.Do(ctx, len(rt.shards), rt.parallelism, func(i int) error {
		legStart := time.Now()
		var resp server.ShardSearchResponse
		req := server.ShardSearchRequest{NodeID: nodeID, Query: q, Weights: weights, K: k}
		if err := rt.doShard(ctx, i, http.MethodPost, "/v1/shard/search", req, &resp); err != nil {
			return err
		}
		ns := make([]shard.Neighbor, len(resp.Neighbors))
		for j, n := range resp.Neighbors {
			ns[j] = shard.Neighbor{ID: n.ID, Dist: n.Dist}
		}
		lists[i] = ns
		legNS[i] = time.Since(legStart).Nanoseconds()
		return nil
	})
	fanDur := time.Since(fanStart)
	rt.fanoutHist.Observe(fanDur.Seconds())
	rt.obs.Windows().Observe("router:fanout", fanDur.Seconds())
	st.Span("fan-out", fanOff, fanDur.Nanoseconds(), map[string]any{
		"node": nodeID, "k": k, "shards": len(rt.shards),
	})
	// Straggler wait: once the fastest shard answered, the merge is blocked
	// on the slowest — that gap is what replication or hedging would buy back.
	var fastest, slowest int64 = -1, -1
	for _, ns := range legNS {
		if ns == 0 {
			continue // leg failed or never ran
		}
		if fastest < 0 || ns < fastest {
			fastest = ns
		}
		if ns > slowest {
			slowest = ns
		}
	}
	if fastest >= 0 && slowest > fastest {
		wait := float64(slowest-fastest) / 1e9
		rt.stragglerHist.Observe(wait)
		rt.obs.Windows().Observe("router:straggler_wait", wait)
	}
	if err != nil {
		return nil, err
	}
	mergeOff := st.Since()
	mergeStart := time.Now()
	merged := shard.MergeNeighbors(lists, k)
	mergeDur := time.Since(mergeStart)
	rt.mergeHist.Observe(mergeDur.Seconds())
	rt.obs.Windows().Observe("router:merge", mergeDur.Seconds())
	st.Span("merge", mergeOff, mergeDur.Nanoseconds(), map[string]any{
		"lists": len(lists), "k": k,
	})
	return merged, nil
}

// fetchPoints resolves image IDs to their exact vectors, full-tree leaves,
// and labels, asking only each image's owning shard (ownership is the
// consistent hash, so the router can compute it locally).
func (rt *Router) fetchPoints(ctx context.Context, ids []int) (map[int]server.ShardPointJSON, error) {
	byShard := make(map[int][]int)
	for _, id := range ids {
		owner := shard.Assign(id, len(rt.shards))
		byShard[owner] = append(byShard[owner], id)
	}
	shardsList := make([]int, 0, len(byShard))
	for sh := range byShard {
		shardsList = append(shardsList, sh)
	}
	sort.Ints(shardsList)
	st := stitchFrom(ctx)
	off := st.Since()
	fetchStart := time.Now()
	results := make([]server.ShardPointsResponse, len(shardsList))
	err := par.Do(ctx, len(shardsList), rt.parallelism, func(i int) error {
		sh := shardsList[i]
		return rt.doShard(ctx, sh, http.MethodPost, "/v1/shard/points",
			server.ShardPointsRequest{IDs: byShard[sh]}, &results[i])
	})
	st.Span("fetch-points", off, time.Since(fetchStart).Nanoseconds(), map[string]any{
		"ids": len(ids), "shards": len(shardsList),
	})
	if err != nil {
		return nil, err
	}
	out := make(map[int]server.ShardPointJSON, len(ids))
	for _, resp := range results {
		for _, p := range resp.Points {
			out[p.ID] = p
		}
	}
	return out, nil
}

// ---- HTTP front ----

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/knn", rt.handleKNN)
	mux.HandleFunc("/v1/query", rt.handleQuery)
	mux.HandleFunc("/v1/sessions", rt.handleSessions)
	mux.HandleFunc("/v1/sessions/", rt.handleSessionOp)
	mux.HandleFunc("/v1/stats", rt.handleStats)
	mux.HandleFunc("/v1/buildinfo", rt.handleBuildInfo)
	mux.HandleFunc("/v1/latency", rt.handleLatency)
	mux.HandleFunc("/v1/traces", rt.handleTraces)
	mux.HandleFunc("/v1/slow", rt.handleSlow)
	mux.HandleFunc("/v1/fleet/latency", rt.handleFleetLatency)
	mux.HandleFunc("/v1/fleet/stats", rt.handleFleetStats)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt.reqs.Inc()
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = "rt-" + strconv.FormatUint(rt.reqSeq.Add(1), 10)
		}
		w.Header().Set("X-Request-Id", reqID)
		endpoint := r.URL.Path
		if strings.HasPrefix(endpoint, "/v1/sessions/") {
			endpoint = "/v1/sessions/{id}"
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		// Routed retrieval requests get a cross-process trace: the stitch
		// rides the context, collecting router-side spans from the scatter
		// primitives and shard child spans from the transport.
		var st *obs.Stitch
		if kind := traceKind(r); kind != "" {
			st = obs.NewStitch(rt.stitchSeq.Add(1), reqID, kind, len(rt.shards))
			r = r.WithContext(withStitch(r.Context(), st))
		}
		start := time.Now()
		mux.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		rt.obs.Windows().Observe("endpoint:"+endpoint, elapsed.Seconds())
		if sw.status >= 400 {
			rt.errs.Inc()
		}
		var traceID uint64
		var legs []obs.ShardLeg
		if st != nil {
			var ferr error
			if sw.status >= 400 {
				ferr = fmt.Errorf("HTTP %d", sw.status)
			}
			legs = st.ShardBreakdown()
			stitched := st.Finish(ferr)
			rt.stitches.Add(stitched)
			traceID = stitched.ID
		}
		if slowWorthy(endpoint) {
			rt.slow.Record(obs.SlowQuery{
				RequestID:  reqID,
				Endpoint:   endpoint,
				Status:     sw.status,
				Start:      start,
				DurationNS: elapsed.Nanoseconds(),
				TraceID:    traceID,
				Shards:     legs,
			})
		}
	})
}

type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), Code: code})
}

// writeBackendError maps a downstream failure onto the router's response:
// structured backend errors pass through status, code, and message (with
// Retry-After preserved on deadline expiry); anything else — connection
// failures after exhausting every replica — is a 502.
func writeBackendError(w http.ResponseWriter, err error) {
	var be *backendError
	if errors.As(err, &be) {
		if be.Code == server.ErrCodeDeadline {
			w.Header().Set("Retry-After", "1")
		}
		writeErr(w, be.Status, be.Code, "%s", be.Message)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, server.ErrCodeDeadline, "router deadline exceeded: %v", err)
		return
	}
	if errors.Is(err, context.Canceled) {
		writeErr(w, http.StatusServiceUnavailable, server.ErrCodeCancelled, "request cancelled: %v", err)
		return
	}
	writeErr(w, http.StatusBadGateway, "shard_unavailable", "%v", err)
}

// ---- stateless retrieval ----

// KNNRequest asks for the k nearest images to a raw query point.
type KNNRequest struct {
	Query []float64 `json:"query"`
	K     int       `json:"k"`
}

// KNNResponse lists the fleet-wide top-k ascending by (distance, ID).
type KNNResponse struct {
	Neighbors []server.NeighborJSON `json:"neighbors"`
}

func (rt *Router) handleKNN(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "", "POST only")
		return
	}
	var req KNNRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "", "bad request: %v", err)
		return
	}
	if req.K <= 0 {
		writeErr(w, http.StatusBadRequest, "", "invalid k=%d", req.K)
		return
	}
	if len(req.Query) != rt.meta.Dim {
		writeErr(w, http.StatusBadRequest, "", "query dim %d != corpus dim %d", len(req.Query), rt.meta.Dim)
		return
	}
	// Identical concurrent requests share one scatter (see singleflight.go).
	ns, _, err := rt.knnSingleFlight(r.Context(), knnKey(req.Query, req.K), func() ([]shard.Neighbor, error) {
		return scatterSearcher{rt}.SearchNode(r.Context(), rt.topo.RootID(), vec.Vector(req.Query), nil, req.K)
	})
	if err != nil {
		writeBackendError(w, err)
		return
	}
	resp := KNNResponse{Neighbors: make([]server.NeighborJSON, len(ns))}
	for i, n := range ns {
		resp.Neighbors[i] = server.NeighborJSON{ID: n.ID, Dist: n.Dist}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleQuery is the stateless client-side-mode query, scattered across the
// fleet. It mirrors the single-node /v1/query contract: relevant images are
// deduplicated in order, each anchors at its storing leaf, and the finalize
// round runs the same allocation arithmetic — the response ranking is
// bit-identical to the single-node server's.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "", "POST only")
		return
	}
	var req server.QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "", "bad request: %v", err)
		return
	}
	if req.K <= 0 {
		writeErr(w, http.StatusBadRequest, "", "router: invalid k=%d", req.K)
		return
	}
	if len(req.Relevant) == 0 {
		writeErr(w, http.StatusBadRequest, "", "router: no example images given")
		return
	}
	if req.Weights != nil {
		if len(req.Weights) != rt.meta.Dim {
			writeErr(w, http.StatusBadRequest, "", "router: weight dim %d != corpus dim %d", len(req.Weights), rt.meta.Dim)
			return
		}
		for i, wt := range req.Weights {
			if wt < 0 {
				writeErr(w, http.StatusBadRequest, "", "router: negative weight at dim %d", i)
				return
			}
		}
	}
	var ids []int
	seen := make(map[int]bool, len(req.Relevant))
	for _, id := range req.Relevant {
		if id < 0 || id >= rt.meta.Images {
			writeErr(w, http.StatusBadRequest, "", "router: unknown image %d", id)
			return
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		ids = append(ids, id)
	}
	points, err := rt.fetchPoints(r.Context(), ids)
	if err != nil {
		writeBackendError(w, err)
		return
	}
	rel := make([]shard.RelPoint, 0, len(ids))
	for _, id := range ids {
		p, ok := points[id]
		if !ok {
			writeErr(w, http.StatusBadRequest, "", "router: unknown image %d", id)
			return
		}
		rel = append(rel, shard.RelPoint{ID: id, NodeID: p.Leaf, Vec: p.Vec})
	}
	st := stitchFrom(r.Context())
	off := st.Since()
	fsStart := time.Now()
	res, err := shard.FinalizeScatter(r.Context(), rt.topo, scatterSearcher{rt}, rel, req.K, req.Weights, rt.meta.Boundary, rt.parallelism)
	st.Span("finalize-scatter", off, time.Since(fsStart).Nanoseconds(), map[string]any{
		"k": req.K, "relevant": len(rel),
	})
	if err != nil {
		writeBackendError(w, err)
		return
	}
	rt.writeResult(w, r.Context(), res, 0)
}

// writeResult converts a distributed finalize into the single-node
// /v1/query response shape, fetching labels for the result images.
func (rt *Router) writeResult(w http.ResponseWriter, ctx context.Context, res *shard.Result, feedbackReads uint64) {
	labels := map[int]server.ShardPointJSON{}
	if ids := res.IDs(); len(ids) > 0 {
		if got, err := rt.fetchPoints(ctx, ids); err == nil {
			labels = got // labels are cosmetic; a fetch failure degrades to empty
		}
	}
	out := server.QueryResponse{Stats: server.StatsJSON{
		FeedbackReads: feedbackReads,
		Expansions:    res.Expansions,
	}}
	for _, g := range res.Groups {
		gj := server.GroupJSON{RankScore: g.RankScore, Expanded: g.Expanded(), QueryImages: g.QueryIDs}
		for _, im := range g.Images {
			gj.Images = append(gj.Images, server.ScoredJSON{ID: im.ID, Score: im.Score, Label: labels[im.ID].Label})
		}
		out.Groups = append(out.Groups, gj)
	}
	writeJSON(w, http.StatusOK, out)
}

// ---- hosted sessions ----

// Session handles are composite: s<shard>-<replica>-<inner>, pinning the
// hosting replica. The router is stateless — any router instance (or a
// restarted one) routes the handle to the same host.
func composeSessionID(shardIdx, repIdx int, inner string) string {
	return fmt.Sprintf("s%d-%d-%s", shardIdx, repIdx, inner)
}

func (rt *Router) parseSessionID(id string) (*replica, string, error) {
	if !strings.HasPrefix(id, "s") {
		return nil, "", fmt.Errorf("malformed session id %q", id)
	}
	parts := strings.SplitN(id[1:], "-", 3)
	if len(parts) != 3 {
		return nil, "", fmt.Errorf("malformed session id %q", id)
	}
	sh, err1 := strconv.Atoi(parts[0])
	ri, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || sh < 0 || sh >= len(rt.shards) || ri < 0 || ri >= len(rt.shards[sh]) {
		return nil, "", fmt.Errorf("malformed session id %q", id)
	}
	return rt.shards[sh][ri], parts[2], nil
}

// handleSessions places a new feedback session on a replica, spreading
// sessions across the fleet round-robin and skipping dead replicas.
func (rt *Router) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "", "POST only")
		return
	}
	var body json.RawMessage
	if r.ContentLength > 0 {
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, "", "bad request: %v", err)
			return
		}
	}
	rt.placeSession(w, r, "/v1/sessions", body)
}

// placeSession POSTs the body to some live replica's path and rewraps the
// returned session id into a composite handle.
func (rt *Router) placeSession(w http.ResponseWriter, r *http.Request, path string, body interface{}) {
	n := len(rt.all)
	start := int(rt.sessSeq.Add(1)) % n
	var lastErr error
	for attempt := 0; attempt < n; attempt++ {
		rep := rt.all[(start+attempt)%n]
		if !rep.alive.Load() && attempt < n-1 {
			continue
		}
		var resp server.SessionResponse
		_, err := rt.call(r.Context(), rep, http.MethodPost, path, body, &resp)
		if err == nil {
			repIdx := 0
			for i, cand := range rt.shards[rep.shard] {
				if cand == rep {
					repIdx = i
					break
				}
			}
			writeJSON(w, http.StatusOK, server.SessionResponse{SessionID: composeSessionID(rep.shard, repIdx, resp.SessionID)})
			return
		}
		var be *backendError
		if errors.As(err, &be) && !be.retryable() {
			writeBackendError(w, err)
			return
		}
		if r.Context().Err() != nil {
			writeBackendError(w, err)
			return
		}
		rep.alive.Store(false)
		lastErr = err
	}
	writeBackendError(w, fmt.Errorf("router: no replica accepted the session: %w", lastErr))
}

// handleSessionOp proxies session operations to the hosting replica and
// runs distributed finalizes.
func (rt *Router) handleSessionOp(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	if rest == "import" {
		// Re-hosting an exported session: any replica can hold it.
		var body json.RawMessage
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, "", "bad request: %v", err)
			return
		}
		rt.placeSession(w, r, "/v1/sessions/import", body)
		return
	}
	parts := strings.SplitN(rest, "/", 2)
	rep, inner, err := rt.parseSessionID(parts[0])
	if err != nil {
		writeErr(w, http.StatusNotFound, "", "%v", err)
		return
	}
	op := ""
	if len(parts) == 2 {
		op = parts[1]
	}
	if op == "finalize" && r.Method == http.MethodPost {
		rt.finalizeSession(w, r, rep, inner)
		return
	}
	// Plain proxy: candidates, feedback, retract, export, delete. The
	// session state lives on rep, so there is no failover — if the host is
	// gone the session is lost, and the client's recourse is re-importing
	// the state it exported (410, code "session_lost").
	var body json.RawMessage
	if r.Body != nil && (r.Method == http.MethodPost || r.Method == http.MethodPut) {
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, "", "bad request: %v", err)
			return
		}
	}
	path := "/v1/sessions/" + inner
	if op != "" {
		path += "/" + op
	}
	var in interface{}
	if body != nil {
		in = body
	}
	var out json.RawMessage
	if _, err := rt.call(r.Context(), rep, r.Method, path, in, &out); err != nil {
		var be *backendError
		if errors.As(err, &be) {
			if be.Status == http.StatusNotFound && op == "" {
				writeBackendError(w, err)
				return
			}
			writeBackendError(w, err)
			return
		}
		if r.Context().Err() != nil {
			writeBackendError(w, err)
			return
		}
		rep.alive.Store(false)
		writeErr(w, http.StatusGone, "session_lost",
			"session host s%d unreachable (%v); re-import the session from an exported state", rep.shard, err)
		return
	}
	// Rewrap any session_id the downstream response carries (export).
	if op == "export" {
		var exp server.SessionExport
		if json.Unmarshal(out, &exp) == nil {
			repIdx := 0
			for i, cand := range rt.shards[rep.shard] {
				if cand == rep {
					repIdx = i
					break
				}
			}
			exp.SessionID = composeSessionID(rep.shard, repIdx, exp.SessionID)
			writeJSON(w, http.StatusOK, exp)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
}

// finalizeSession runs the distributed finalize: export the session state
// from its host, gather the panel's vectors from their owning shards,
// scatter the localized k-NN subqueries fleet-wide, and merge — the §3.3/3.4
// arithmetic runs here, bit-identical to a single-node Finalize over the
// same panel. The hosted session is released afterwards, like the
// single-node finalize path.
func (rt *Router) finalizeSession(w http.ResponseWriter, r *http.Request, rep *replica, inner string) {
	var req struct {
		K int `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "", "bad request: %v", err)
		return
	}
	var exp server.SessionExport
	if _, err := rt.call(r.Context(), rep, http.MethodGet, "/v1/sessions/"+inner+"/export", nil, &exp); err != nil {
		var be *backendError
		if errors.As(err, &be) {
			writeBackendError(w, err)
			return
		}
		if r.Context().Err() != nil {
			writeBackendError(w, err)
			return
		}
		rep.alive.Store(false)
		writeErr(w, http.StatusGone, "session_lost",
			"session host s%d unreachable (%v); re-import the session from an exported state", rep.shard, err)
		return
	}
	st := exp.State
	if st == nil {
		writeErr(w, http.StatusBadGateway, "", "session host returned no state")
		return
	}
	res, err := rt.finalizeState(r.Context(), st, req.K)
	if err != nil {
		writeBackendError(w, err)
		return
	}
	// The single-node finalize releases the session; mirror that.
	_, _ = rt.call(r.Context(), rep, http.MethodDelete, "/v1/sessions/"+inner, nil, nil)
	rt.writeResult(w, r.Context(), res, st.FeedbackReads)
}

// finalizeState scatters a finalize over an exported session state.
func (rt *Router) finalizeState(ctx context.Context, st *core.SessionState, k int) (*shard.Result, error) {
	var ids []int
	for _, id := range st.Relevant {
		if _, ok := st.Assign[id]; ok {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil, &backendError{Status: http.StatusBadRequest, Message: "no relevant image lies under the current frontier"}
	}
	points, err := rt.fetchPoints(ctx, ids)
	if err != nil {
		return nil, err
	}
	rel := make([]shard.RelPoint, 0, len(ids))
	for _, id := range ids {
		p, ok := points[id]
		if !ok {
			return nil, &backendError{Status: http.StatusBadRequest, Message: fmt.Sprintf("unknown image %d in session state", id)}
		}
		rel = append(rel, shard.RelPoint{ID: id, NodeID: st.Assign[id], Vec: p.Vec})
	}
	stitch := stitchFrom(ctx)
	off := stitch.Since()
	fsStart := time.Now()
	res, err := shard.FinalizeScatter(ctx, rt.topo, scatterSearcher{rt}, rel, k, st.Weights, rt.meta.Boundary, rt.parallelism)
	stitch.Span("finalize-scatter", off, time.Since(fsStart).Nanoseconds(), map[string]any{
		"k": k, "relevant": len(rel),
	})
	return res, err
}

// ---- operations endpoints ----

// ReplicaStatus is one backend's health and traffic.
type ReplicaStatus struct {
	URL      string `json:"url"`
	Alive    bool   `json:"alive"`
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
}

// ShardStatus groups replica status by shard.
type ShardStatus struct {
	Shard    int             `json:"shard"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// StatsResponse is the router's /v1/stats body.
type StatsResponse struct {
	Shards    []ShardStatus `json:"shards"`
	Requests  uint64        `json:"requests"`
	Errors    uint64        `json:"errors"`
	Scatters  uint64        `json:"scatters"`
	Failovers uint64        `json:"failovers"`
	Metrics   obs.Snapshot  `json:"metrics"`
}

func (rt *Router) shardStatus() []ShardStatus {
	out := make([]ShardStatus, len(rt.shards))
	for i, reps := range rt.shards {
		ss := ShardStatus{Shard: i}
		for _, rep := range reps {
			ss.Replicas = append(ss.Replicas, ReplicaStatus{
				URL:      rep.url,
				Alive:    rep.alive.Load(),
				Requests: rep.reqs.Load(),
				Errors:   rep.errs.Load(),
			})
		}
		out[i] = ss
	}
	return out
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "", "GET only")
		return
	}
	snap := rt.obs.Registry().Snapshot()
	writeJSON(w, http.StatusOK, StatsResponse{
		Shards:    rt.shardStatus(),
		Requests:  snap.Counters["qd_router_requests_total"],
		Errors:    snap.Counters["qd_router_errors_total"],
		Scatters:  snap.Counters["qd_router_scatters_total"],
		Failovers: snap.Counters["qd_router_failovers_total"],
		Metrics:   snap,
	})
}

// BuildInfoResponse identifies the router and the fleet it fronts.
type BuildInfoResponse struct {
	GoVersion      string `json:"go_version"`
	Shards         int    `json:"shards"`
	Replicas       int    `json:"replicas"`
	Images         int    `json:"images"`
	Precision      string `json:"precision"`
	ArchiveVersion int    `json:"archive_version"`
	Quantized      bool   `json:"quantized,omitempty"`
	CorpusSig      string `json:"corpus_sig"`
}

func (rt *Router) handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "", "GET only")
		return
	}
	out := BuildInfoResponse{
		Shards:         len(rt.shards),
		Replicas:       len(rt.all),
		Images:         rt.meta.Images,
		Precision:      rt.meta.Precision,
		ArchiveVersion: rt.meta.ArchiveVersion,
		Quantized:      rt.meta.Quantized,
		CorpusSig:      fmt.Sprintf("%016x", rt.meta.CorpusSig),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		out.GoVersion = bi.GoVersion
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz reports fleet health: "ok" while every shard has at least
// one live replica, "degraded" (503) otherwise — a shard with no replicas
// cannot answer its slice, so scatter results would be wrong, not partial.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "", "GET only")
		return
	}
	status := "ok"
	code := http.StatusOK
	for _, reps := range rt.shards {
		live := 0
		for _, rep := range reps {
			if rep.alive.Load() {
				live++
			}
		}
		if live == 0 {
			status = "degraded"
			code = http.StatusServiceUnavailable
			break
		}
	}
	writeJSON(w, code, struct {
		Status string        `json:"status"`
		Shards []ShardStatus `json:"shards"`
	}{status, rt.shardStatus()})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "", "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = rt.obs.Registry().WritePrometheus(w)
}
