package router

// Integration tests for the fleet observability tier: cross-process trace
// stitching over a real routed query, the Perfetto export shape, fleet-merged
// latency digests against direct per-replica observation, and the slow-query
// exemplar log.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"qdcbir"
	"qdcbir/internal/obs"
	"qdcbir/internal/server"
)

// start4ShardFleet slices the fixture corpus four ways and serves it behind a
// router — the satellite's golden-trace topology.
func start4ShardFleet(t *testing.T) (*Router, string) {
	t.Helper()
	f := fixture(t)
	archives, err := qdcbir.SliceShards(context.Background(), f.sys, 4)
	if err != nil {
		t.Fatalf("SliceShards: %v", err)
	}
	cfgs := make([]ReplicaConfig, len(archives))
	for i, a := range archives {
		var buf bytes.Buffer
		if err := a.Write(&buf); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		cfgs[i] = ReplicaConfig{Shard: i, URL: startReplica(t, buf.Bytes()).URL}
	}
	rt, rts := startRouter(t, cfgs)
	return rt, rts.URL
}

// TestRoutedQueryStitchedTrace is the tentpole acceptance test: one routed
// query over four shards yields one stitched trace — router-side spans
// (fetch-points, fan-out, merge, finalize-scatter) on the router track and
// each shard's child spans on that shard's track, all under the request id
// the client saw.
func TestRoutedQueryStitchedTrace(t *testing.T) {
	_, url := start4ShardFleet(t)

	raw, err := json.Marshal(server.QueryRequest{Relevant: []int{3, 9, 200, 430}, K: 20})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	reqID := resp.Header.Get("X-Request-Id")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: HTTP %d", resp.StatusCode)
	}
	if reqID == "" {
		t.Fatal("router issued no X-Request-Id")
	}

	var traces TracesResponse
	mustJSON(t, http.MethodGet, url+"/v1/traces?limit=1", nil, &traces)
	if len(traces.Traces) != 1 {
		t.Fatalf("retained traces: %d, want 1", len(traces.Traces))
	}
	tr := traces.Traces[0]
	if tr.RequestID != reqID {
		t.Fatalf("trace request id %q != client's %q", tr.RequestID, reqID)
	}
	if tr.Kind != "query" || tr.Shards != 4 || tr.Error != "" {
		t.Fatalf("trace header: %+v", tr)
	}

	routerSpans := map[string]bool{}
	shardTracks := map[int]struct{ rpc, child bool }{}
	for _, sp := range tr.Spans {
		if sp.OffsetNS < 0 || sp.DurationNS < 0 || sp.OffsetNS+sp.DurationNS > tr.DurationNS {
			t.Fatalf("span escapes the trace window: %+v (trace %dns)", sp, tr.DurationNS)
		}
		if sp.Track == 0 {
			routerSpans[sp.Name] = true
			continue
		}
		entry := shardTracks[sp.Track]
		if _, isRPC := sp.Args["shard"]; isRPC {
			entry.rpc = true
		} else {
			entry.child = true
		}
		shardTracks[sp.Track] = entry
	}
	for _, name := range []string{"fetch-points", "fan-out", "merge", "finalize-scatter"} {
		if !routerSpans[name] {
			t.Fatalf("router track missing %q span; have %v", name, routerSpans)
		}
	}
	// Every shard participated in the finalize fan-out: its track carries both
	// the RPC span and at least one shard-reported child span.
	for track := 1; track <= 4; track++ {
		entry := shardTracks[track]
		if !entry.rpc || !entry.child {
			t.Fatalf("track %d (shard %d): rpc=%v child=%v; all tracks %v",
				track, track-1, entry.rpc, entry.child, shardTracks)
		}
	}

	// The Perfetto export of the same trace: per-track thread names, all spans
	// inside the root, timestamps at or after the trace base.
	status, body := request(t, http.MethodGet, url+"/v1/traces?format=perfetto&limit=1", nil)
	if status != http.StatusOK {
		t.Fatalf("perfetto export: HTTP %d", status)
	}
	var f obs.TraceEventFile
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatalf("perfetto export not valid trace-event JSON: %v", err)
	}
	threadNames := map[uint64]string{}
	var root *obs.TraceEvent
	var spans []obs.TraceEvent
	for i := range f.TraceEvents {
		ev := f.TraceEvents[i]
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			threadNames[ev.TID] = ev.Args["name"].(string)
		case ev.Ph == "X":
			if strings.HasPrefix(ev.Name, "routed ") {
				root = &f.TraceEvents[i]
			}
			spans = append(spans, ev)
		}
	}
	if root == nil {
		t.Fatal("perfetto export has no root span")
	}
	if root.Args["request_id"] != reqID {
		t.Fatalf("root request_id %v != %q", root.Args["request_id"], reqID)
	}
	want := map[uint64]string{0: "router", 1: "shard 0", 2: "shard 1", 3: "shard 2", 4: "shard 3"}
	for tid, name := range want {
		if threadNames[tid] != name {
			t.Fatalf("track %d named %q, want %q (all: %v)", tid, threadNames[tid], name, threadNames)
		}
	}
	for _, sp := range spans {
		if sp.TS < root.TS || sp.TS+sp.Dur > root.TS+root.Dur {
			t.Fatalf("exported span escapes the root: %+v (root %v+%v)", sp, root.TS, root.Dur)
		}
	}
}

// TestStitchedTracePartialShardFailure kills one shard entirely mid-fleet:
// the routed query fails, and the retained trace is partial — error recorded,
// RPC attempts present — rather than absent.
func TestStitchedTracePartialShardFailure(t *testing.T) {
	f := fixture(t)
	doomed := startReplica(t, f.blobs[1])
	cfgs := []ReplicaConfig{
		{Shard: 0, URL: startReplica(t, f.blobs[0]).URL},
		{Shard: 1, URL: doomed.URL},
		{Shard: 2, URL: startReplica(t, f.blobs[2]).URL},
	}
	_, rts := startRouter(t, cfgs)

	doomed.Close() // shard 1 has no surviving replica

	status, _ := request(t, http.MethodPost, rts.URL+"/v1/knn",
		KNNRequest{Query: f.sys.Corpus().Vectors[5], K: 10})
	if status == http.StatusOK {
		t.Fatal("scatter over a dead shard must fail")
	}
	var traces TracesResponse
	mustJSON(t, http.MethodGet, rts.URL+"/v1/traces?limit=1", nil, &traces)
	if len(traces.Traces) != 1 {
		t.Fatalf("failed query left no trace: %+v", traces.Traces)
	}
	tr := traces.Traces[0]
	if tr.Error == "" {
		t.Fatal("partial trace must record the failure")
	}
	sawRPC := false
	for _, sp := range tr.Spans {
		if _, ok := sp.Args["shard"]; ok {
			sawRPC = true
		}
	}
	if !sawRPC {
		t.Fatal("partial trace retained no RPC attempts")
	}
	// The export stays loadable.
	status, body := request(t, http.MethodGet, rts.URL+"/v1/traces?format=perfetto", nil)
	if status != http.StatusOK {
		t.Fatalf("perfetto export: HTTP %d", status)
	}
	var file obs.TraceEventFile
	if err := json.Unmarshal(body, &file); err != nil {
		t.Fatalf("partial-trace export invalid: %v", err)
	}
}

// TestFleetLatencyMatchesDirectObservation drives traffic through a 3-shard
// fleet and checks the router's fleet-merged digests equal what merging the
// replicas' own /v1/latency?detail=1 reports yields — the acceptance bar for
// the mergeable-digest tier.
func TestFleetLatencyMatchesDirectObservation(t *testing.T) {
	f := fixture(t)
	cfgs := []ReplicaConfig{
		{Shard: 0, URL: startReplica(t, f.blobs[0]).URL},
		{Shard: 1, URL: startReplica(t, f.blobs[1]).URL},
		{Shard: 2, URL: startReplica(t, f.blobs[2]).URL},
	}
	_, rts := startRouter(t, cfgs)

	const queries = 5
	for i := 0; i < queries; i++ {
		var out KNNResponse
		mustJSON(t, http.MethodPost, rts.URL+"/v1/knn",
			KNNRequest{Query: f.sys.Corpus().Vectors[i], K: 10}, &out)
	}

	// Direct observation: scrape each replica ourselves and merge.
	var details []obs.DigestDetail
	for _, rc := range cfgs {
		var lat server.LatencyResponse
		mustJSON(t, http.MethodGet, rc.URL+"/v1/latency?detail=1", nil, &lat)
		if len(lat.Detail) == 0 {
			t.Fatalf("replica %s returned no detail", rc.URL)
		}
		details = append(details, lat.Detail)
	}
	merged, err := obs.MergeDetails(details...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	want := merged.StatsReport()["endpoint:/v1/shard/search"]["1m"]
	if want.Count != uint64(queries*len(cfgs)) {
		t.Fatalf("direct merge: %d shard searches, want %d", want.Count, queries*len(cfgs))
	}

	var fleet FleetLatencyResponse
	mustJSON(t, http.MethodGet, rts.URL+"/v1/fleet/latency?refresh=1", nil, &fleet)
	if fleet.Replicas != len(cfgs) || len(fleet.Errors) != 0 {
		t.Fatalf("fleet scrape: %d replicas, errors %v", fleet.Replicas, fleet.Errors)
	}
	got := fleet.Fleet["endpoint:/v1/shard/search"]["1m"]
	if got != want {
		t.Fatalf("fleet quantiles diverge from direct observation:\n  fleet  %+v\n  direct %+v", got, want)
	}
	// Per-shard sections: each shard saw exactly its share.
	if len(fleet.Shards) != len(cfgs) {
		t.Fatalf("per-shard sections: %d, want %d", len(fleet.Shards), len(cfgs))
	}
	for _, sl := range fleet.Shards {
		st := sl.Digests["endpoint:/v1/shard/search"]["1m"]
		if st.Count != uint64(queries) {
			t.Fatalf("shard %d: %d searches, want %d", sl.Shard, st.Count, queries)
		}
		if st.P99 <= 0 {
			t.Fatalf("shard %d: empty p99: %+v", sl.Shard, st)
		}
	}

	// Fleet counters aggregate across replicas.
	var stats FleetStatsResponse
	mustJSON(t, http.MethodGet, rts.URL+"/v1/fleet/stats", nil, &stats)
	if stats.Counters["qd_http_requests_total"] < uint64(queries*len(cfgs)) {
		t.Fatalf("fleet request counter too small: %d", stats.Counters["qd_http_requests_total"])
	}
	if len(stats.Shards) != len(cfgs) {
		t.Fatalf("fleet stats shard view: %+v", stats.Shards)
	}
}

// TestSlowLogAndOverheadMetrics checks the exemplar log on both tiers and the
// router's overhead telemetry: /v1/slow entries carry shard breakdowns and
// trace references, and the fan-out/merge histograms reach /metrics and
// /v1/latency.
func TestSlowLogAndOverheadMetrics(t *testing.T) {
	f := fixture(t)
	cfgs := []ReplicaConfig{
		{Shard: 0, URL: startReplica(t, f.blobs[0]).URL},
		{Shard: 1, URL: startReplica(t, f.blobs[1]).URL},
		{Shard: 2, URL: startReplica(t, f.blobs[2]).URL},
	}
	_, rts := startRouter(t, cfgs)

	for i := 0; i < 3; i++ {
		var out KNNResponse
		mustJSON(t, http.MethodPost, rts.URL+"/v1/knn",
			KNNRequest{Query: f.sys.Corpus().Vectors[i], K: 5}, &out)
	}

	var slow SlowResponse
	mustJSON(t, http.MethodGet, rts.URL+"/v1/slow", nil, &slow)
	if len(slow.Slowest) != 3 {
		t.Fatalf("router slow log: %d entries, want 3", len(slow.Slowest))
	}
	for i, q := range slow.Slowest {
		if q.Endpoint != "/v1/knn" || q.RequestID == "" || q.DurationNS <= 0 {
			t.Fatalf("slow entry %d: %+v", i, q)
		}
		if q.TraceID == 0 {
			t.Fatalf("slow entry %d has no trace reference: %+v", i, q)
		}
		if len(q.Shards) != len(cfgs) {
			t.Fatalf("slow entry %d shard breakdown: %+v", i, q.Shards)
		}
		if i > 0 && q.DurationNS > slow.Slowest[i-1].DurationNS {
			t.Fatalf("slow log not sorted slowest-first: %+v", slow.Slowest)
		}
	}

	// A replica keeps its own exemplars.
	var repSlow struct {
		Slowest []obs.SlowQuery `json:"slowest"`
	}
	mustJSON(t, http.MethodGet, cfgs[0].URL+"/v1/slow", nil, &repSlow)
	found := false
	for _, q := range repSlow.Slowest {
		if q.Endpoint == "/v1/shard/search" {
			found = true
		}
	}
	if !found {
		t.Fatalf("replica slow log missing shard searches: %+v", repSlow.Slowest)
	}

	// Overhead histograms reach Prometheus text and the windowed digests.
	status, body := request(t, http.MethodGet, rts.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", status)
	}
	text := string(body)
	for _, family := range []string{
		"qd_router_fanout_seconds", "qd_router_merge_seconds", "qd_router_straggler_wait_seconds",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("/metrics missing %s", family)
		}
	}
	var lat LatencyResponse
	mustJSON(t, http.MethodGet, rts.URL+"/v1/latency", nil, &lat)
	for _, digest := range []string{"router:fanout", "router:merge", "endpoint:/v1/knn"} {
		st, ok := lat.Digests[digest]["1m"]
		if !ok || st.Count == 0 {
			t.Fatalf("router latency digest %q empty: %+v", digest, lat.Digests[digest])
		}
	}
}
