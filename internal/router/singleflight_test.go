package router

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qdcbir/internal/shard"
)

func sfRouter(t *testing.T) *Router {
	t.Helper()
	rt, err := New(Config{Replicas: []ReplicaConfig{{Shard: 0, URL: "http://unused"}}})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestKNNSingleFlightDedup pins the dedup contract at the unit level: while a
// leader's scatter is in flight, identical-key callers never run their own fn,
// share the leader's exact result, and bump the singleflight counter; a
// different key runs independently.
func TestKNNSingleFlightDedup(t *testing.T) {
	rt := sfRouter(t)
	key := knnKey([]float64{1.5, -2.25, 0}, 10)
	want := []shard.Neighbor{{ID: 7, Dist: 0.5}, {ID: 3, Dist: 1.25}}

	block := make(chan struct{})
	var calls atomic.Int32
	leaderDone := make(chan struct{})
	var leaderNS []shard.Neighbor
	var leaderShared bool
	go func() {
		defer close(leaderDone)
		leaderNS, leaderShared, _ = rt.knnSingleFlight(context.Background(), key, func() ([]shard.Neighbor, error) {
			calls.Add(1)
			<-block
			return want, nil
		})
	}()
	// Wait until the leader has registered its flight.
	for {
		rt.sfMu.Lock()
		_, ok := rt.sf[key]
		rt.sfMu.Unlock()
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}

	const followers = 3
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ns, shared, err := rt.knnSingleFlight(context.Background(), key, func() ([]shard.Neighbor, error) {
				t.Error("follower executed its own scatter")
				return nil, nil
			})
			if err != nil || !shared || !reflect.DeepEqual(ns, want) {
				t.Errorf("follower: ns=%v shared=%v err=%v", ns, shared, err)
			}
		}()
	}
	// Followers must be waiting before the leader finishes; give them a beat.
	time.Sleep(20 * time.Millisecond)

	// A different key is its own flight, even while the first is blocked.
	other, shared, err := rt.knnSingleFlight(context.Background(), knnKey([]float64{1.5, -2.25, 0}, 11), func() ([]shard.Neighbor, error) {
		return []shard.Neighbor{{ID: 1, Dist: 2}}, nil
	})
	if err != nil || shared || len(other) != 1 {
		t.Fatalf("distinct key: ns=%v shared=%v err=%v", other, shared, err)
	}

	close(block)
	<-leaderDone
	wg.Wait()
	if leaderShared || !reflect.DeepEqual(leaderNS, want) {
		t.Fatalf("leader: ns=%v shared=%v", leaderNS, leaderShared)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("scatter ran %d times, want 1", n)
	}
	if n := rt.obs.Registry().Snapshot().Counters["qd_router_singleflight_total"]; n != followers {
		t.Fatalf("singleflight_total = %d, want %d", n, followers)
	}
	rt.sfMu.Lock()
	if len(rt.sf) != 0 {
		t.Fatalf("flight table not drained: %d entries", len(rt.sf))
	}
	rt.sfMu.Unlock()
}

// TestKNNSingleFlightFollowerDeadline: a joined caller whose own context dies
// stops waiting with its ctx error while the flight keeps running for the
// leader.
func TestKNNSingleFlightFollowerDeadline(t *testing.T) {
	rt := sfRouter(t)
	key := knnKey([]float64{4}, 5)
	block := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := rt.knnSingleFlight(context.Background(), key, func() ([]shard.Neighbor, error) {
			<-block
			return []shard.Neighbor{{ID: 9, Dist: 1}}, nil
		})
		leaderDone <- err
	}()
	for {
		rt.sfMu.Lock()
		_, ok := rt.sf[key]
		rt.sfMu.Unlock()
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, shared, err := rt.knnSingleFlight(ctx, key, func() ([]shard.Neighbor, error) {
		t.Error("follower executed its own scatter")
		return nil, nil
	})
	if !shared || err != context.DeadlineExceeded {
		t.Fatalf("expired follower: shared=%v err=%v", shared, err)
	}
	close(block)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
}

// TestRouterKNNSingleFlightIntegration drives a herd of identical concurrent
// /v1/knn requests through a fleet whose shard-0 replica answers searches
// slowly (guaranteeing the requests overlap) and demands (a) every response is
// bit-identical to the single-node reference, and (b) the router fanned out
// fewer times than it answered, with the joins visible on the counter.
func TestRouterKNNSingleFlightIntegration(t *testing.T) {
	f := fixture(t)
	// Shard 0 sits behind a delaying proxy so every scatter takes >= slowdown;
	// concurrent identical requests therefore join the first one's flight.
	const slowdown = 150 * time.Millisecond
	target, err := url.Parse(startReplica(t, f.blobs[0]).URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(target)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/shard/search" {
			time.Sleep(slowdown)
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(slow.Close)
	cfgs := []ReplicaConfig{
		{Shard: 0, URL: slow.URL},
		{Shard: 1, URL: startReplica(t, f.blobs[1]).URL},
		{Shard: 2, URL: startReplica(t, f.blobs[2]).URL},
	}
	rt, rts := startRouter(t, cfgs)

	const k, herd = 10, 6
	want, err := f.sys.KNN(42, k)
	if err != nil {
		t.Fatal(err)
	}
	req := KNNRequest{Query: f.sys.Corpus().Vectors[42], K: k}

	scattersBefore := rt.obs.Registry().Snapshot().Counters["qd_router_scatters_total"]
	got := make([]KNNResponse, herd)
	var wg sync.WaitGroup
	for j := 0; j < herd; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			mustJSON(t, http.MethodPost, rts.URL+"/v1/knn", req, &got[j])
		}(j)
	}
	wg.Wait()
	for j := 0; j < herd; j++ {
		if len(got[j].Neighbors) != len(want) {
			t.Fatalf("herd %d: %d neighbors, want %d", j, len(got[j].Neighbors), len(want))
		}
		for i, n := range got[j].Neighbors {
			if n.ID != want[i].ID || n.Dist != want[i].Score {
				t.Fatalf("herd %d rank %d: (%d, %v) vs single-node (%d, %v)",
					j, i, n.ID, n.Dist, want[i].ID, want[i].Score)
			}
		}
	}
	snap := rt.obs.Registry().Snapshot()
	scatters := snap.Counters["qd_router_scatters_total"] - scattersBefore
	joins := snap.Counters["qd_router_singleflight_total"]
	if scatters >= herd {
		t.Errorf("scatters = %d for %d identical requests, want < %d", scatters, herd, herd)
	}
	if joins < 1 {
		t.Errorf("singleflight_total = %d, want >= 1", joins)
	}
	if scatters+joins < herd {
		t.Errorf("scatters (%d) + joins (%d) < herd (%d)", scatters, joins, herd)
	}
}
