package router

// Cross-process trace plumbing on the router side. The HTTP front opens one
// obs.Stitch per routed retrieval request and threads it through the request
// context; the scatter primitives record router-side spans (fan-out, merge,
// finalize-scatter) and the transport records one RPC span per backend call,
// folding in the shard's reported child spans (see internal/obs/stitch.go for
// the clock-skew argument). Completed traces land in a bounded ring served by
// /v1/traces — as JSON, or as a Perfetto/Chrome trace-event file with
// ?format=perfetto.

import (
	"context"
	"net/http"
	"strconv"
	"strings"

	"qdcbir/internal/obs"
)

// stitchCtxKey carries the in-flight *obs.Stitch through a request context.
type stitchCtxKey struct{}

// withStitch attaches an in-flight cross-process trace to the context.
func withStitch(ctx context.Context, st *obs.Stitch) context.Context {
	return context.WithValue(ctx, stitchCtxKey{}, st)
}

// stitchFrom returns the context's in-flight trace, or nil (every *obs.Stitch
// method no-ops on nil, so callers never branch).
func stitchFrom(ctx context.Context) *obs.Stitch {
	st, _ := ctx.Value(stitchCtxKey{}).(*obs.Stitch)
	return st
}

// traceKind maps a routed endpoint to its stitched-trace kind; "" means the
// request is not traced (proxies and operational endpoints fan out at most
// once, so a stitched trace would add nothing over the access log).
func traceKind(r *http.Request) string {
	if r.Method != http.MethodPost {
		return ""
	}
	switch {
	case r.URL.Path == "/v1/knn":
		return "knn"
	case r.URL.Path == "/v1/query":
		return "query"
	case strings.HasPrefix(r.URL.Path, "/v1/sessions/") && strings.HasSuffix(r.URL.Path, "/finalize"):
		return "finalize"
	}
	return ""
}

// TracesResponse is the router's JSON /v1/traces body.
type TracesResponse struct {
	Traces []*obs.Stitched `json:"traces"`
}

// handleTraces serves the retained stitched traces: newest first as JSON, or
// a Perfetto-loadable trace-event file with ?format=perfetto. ?limit=N bounds
// the count.
func (rt *Router) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "", "GET only")
		return
	}
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "", "bad limit %q", raw)
			return
		}
		limit = n
	}
	traces := rt.stitches.Snapshot(limit)
	if r.URL.Query().Get("format") == "perfetto" {
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WritePerfettoStitched(w, traces)
		return
	}
	if traces == nil {
		traces = []*obs.Stitched{}
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: traces})
}

// SlowResponse is the router's /v1/slow body.
type SlowResponse struct {
	Slowest []obs.SlowQuery `json:"slowest"`
}

// handleSlow serves the slow-query exemplar log: the slowest routed requests,
// each with its per-shard time breakdown and stitched-trace reference.
func (rt *Router) handleSlow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "", "GET only")
		return
	}
	slowest := rt.slow.Slowest()
	if slowest == nil {
		slowest = []obs.SlowQuery{}
	}
	writeJSON(w, http.StatusOK, SlowResponse{Slowest: slowest})
}

// LatencyResponse is the router's /v1/latency body: the router's own
// sliding-window digests (per endpoint, per shard, and the router-overhead
// phases). Fleet-merged replica digests live at /v1/fleet/latency.
type LatencyResponse struct {
	Windows []string          `json:"windows"`
	Digests obs.LatencyReport `json:"digests"`
	Detail  obs.DigestDetail  `json:"detail,omitempty"`
}

// handleLatency serves the router's own sliding-window latency digests.
func (rt *Router) handleLatency(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "", "GET only")
		return
	}
	labels := make([]string, len(obs.DefaultWindows))
	for i, win := range obs.DefaultWindows {
		labels[i] = obs.WindowLabel(win)
	}
	resp := LatencyResponse{
		Windows: labels,
		Digests: rt.obs.Windows().Report(nil),
	}
	if r.URL.Query().Get("detail") == "1" {
		resp.Detail = rt.obs.Windows().ReportDetail(nil)
	}
	writeJSON(w, http.StatusOK, resp)
}

// slowWorthy selects the endpoints the router's slow log tracks: routed
// retrieval and session work, not monitoring scrapes.
func slowWorthy(endpoint string) bool {
	switch endpoint {
	case "/healthz", "/metrics",
		"/v1/stats", "/v1/buildinfo", "/v1/latency",
		"/v1/traces", "/v1/slow", "/v1/fleet/latency", "/v1/fleet/stats":
		return false
	}
	return true
}
