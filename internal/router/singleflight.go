package router

// Router-side single-flight for the stateless /v1/knn endpoint: identical
// concurrent requests (same query bits, same k) collapse into one scatter.
// A thundering herd of clients refreshing the same popular query then costs
// the fleet one fan-out instead of N — and since the merged ranking is a
// pure function of (query, k) over an immutable shard archive, every joined
// caller's response is byte-identical to the one it would have computed
// itself.

import (
	"context"
	"encoding/binary"
	"errors"
	"math"

	"qdcbir/internal/shard"
)

// sfCall is one in-flight deduplicated KNN scatter. done closes after ns/err
// are written; both are immutable afterwards, so joined callers may share
// the neighbor slice without copying (handlers only read it).
type sfCall struct {
	done chan struct{}
	ns   []shard.Neighbor
	err  error
}

// knnKey serializes (query, k) into a map key. Exact float bits: two
// requests dedupe only when every dimension is bit-identical, which is
// precisely the condition under which their scatters would merge to the
// same ranking.
func knnKey(q []float64, k int) string {
	b := make([]byte, 8*(len(q)+1))
	binary.LittleEndian.PutUint64(b, uint64(k))
	for i, v := range q {
		binary.LittleEndian.PutUint64(b[8*(i+1):], math.Float64bits(v))
	}
	return string(b)
}

// knnSingleFlight runs fn once per key: the first caller (the leader)
// executes the scatter on its own context, concurrent callers with the same
// key wait for it and share the result. shared reports whether this caller
// joined an existing flight rather than fanning out itself.
//
// Two context subtleties: a joined caller whose own deadline expires stops
// waiting and returns its ctx error (the flight keeps running for the
// others), and a joined caller that outlives a leader killed by the
// *leader's* deadline or cancellation retries as the new leader instead of
// inheriting a failure that says nothing about its own time budget.
func (rt *Router) knnSingleFlight(ctx context.Context, key string, fn func() ([]shard.Neighbor, error)) (ns []shard.Neighbor, shared bool, err error) {
	for {
		rt.sfMu.Lock()
		if c, ok := rt.sf[key]; ok {
			rt.sfMu.Unlock()
			rt.singleflight.Inc()
			shared = true
			select {
			case <-ctx.Done():
				return nil, true, ctx.Err()
			case <-c.done:
			}
			if c.err != nil && ctx.Err() == nil &&
				(errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded)) {
				continue // leader died of its own deadline; take over
			}
			return c.ns, true, c.err
		}
		c := &sfCall{done: make(chan struct{})}
		rt.sf[key] = c
		rt.sfMu.Unlock()
		c.ns, c.err = fn()
		rt.sfMu.Lock()
		delete(rt.sf, key)
		rt.sfMu.Unlock()
		close(c.done)
		return c.ns, shared, c.err
	}
}
