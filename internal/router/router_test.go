package router

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"qdcbir"
	"qdcbir/internal/server"
	"qdcbir/internal/shard"
)

// The integration fixture: one vector-mode corpus sliced three ways, with the
// serialized shard blobs cached so each test can open as many independent
// replica processes (session state and all) as it needs. The unsharded system
// doubles as the bit-exactness reference.
var (
	fixOnce sync.Once
	fix     *fleetFix
)

type fleetFix struct {
	sys   *qdcbir.System
	blobs [][]byte // serialized shard archives, index = shard
	err   error
}

func fixture(t *testing.T) *fleetFix {
	t.Helper()
	fixOnce.Do(func() {
		fix = &fleetFix{}
		cfg := qdcbir.SmallConfig()
		cfg.VectorMode = true
		cfg.Images = 600
		cfg.Categories = 12
		sys, err := qdcbir.Build(cfg)
		if err != nil {
			fix.err = err
			return
		}
		fix.sys = sys
		archives, err := qdcbir.SliceShards(context.Background(), sys, 3)
		if err != nil {
			fix.err = err
			return
		}
		for _, a := range archives {
			var buf bytes.Buffer
			if err := a.Write(&buf); err != nil {
				fix.err = err
				return
			}
			fix.blobs = append(fix.blobs, buf.Bytes())
		}
	})
	if fix.err != nil {
		t.Fatalf("fixture: %v", fix.err)
	}
	return fix
}

// startReplica opens one serving process over a serialized shard blob — the
// same assembly qdserve performs on a shard archive.
func startReplica(t *testing.T, blob []byte) *httptest.Server {
	t.Helper()
	rep, sys, err := qdcbir.OpenShard(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("OpenShard: %v", err)
	}
	srv := server.New(sys.Engine(), rep.Labeler())
	srv.SetShard(rep)
	m := rep.Meta()
	srv.SetArchiveInfo(m.ArchiveVersion, m.Precision, m.Quantized)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// startRef serves the unsharded system — the reference every routed result
// must match bit for bit.
func startRef(t *testing.T, f *fleetFix) *httptest.Server {
	t.Helper()
	srv := server.New(f.sys.Engine(), f.sys.SubconceptOf)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// startRouter verifies the fleet and serves the router front.
func startRouter(t *testing.T, cfgs []ReplicaConfig) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(Config{Replicas: cfgs})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := rt.VerifyFleet(context.Background()); err != nil {
		t.Fatalf("VerifyFleet: %v", err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

// request issues one JSON request and returns (status, raw body).
func request(t *testing.T, method, url string, in interface{}) (int, []byte) {
	t.Helper()
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// mustJSON demands a 200 and decodes the body.
func mustJSON(t *testing.T, method, url string, in, out interface{}) {
	t.Helper()
	status, raw := request(t, method, url, in)
	if status != http.StatusOK {
		t.Fatalf("%s %s: HTTP %d: %s", method, url, status, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, raw, err)
		}
	}
}

// zeroFinalReads clears the one stat that legitimately differs between the
// routed and single-node finalize: the router runs the final k-NN round on
// the shards, so its own FinalReads counter is not meaningful.
func zeroFinalReads(q *server.QueryResponse) {
	q.Stats.FinalReads = 0
}

// TestRouterKNNAndQueryMatchSingleNode pins the acceptance bar for the
// stateless endpoints: the routed initial k-NN and the routed one-shot query
// return exactly the single-node IDs, distances, groups, and scores.
func TestRouterKNNAndQueryMatchSingleNode(t *testing.T) {
	f := fixture(t)
	cfgs := []ReplicaConfig{
		{Shard: 0, URL: ""}, {Shard: 1, URL: ""}, {Shard: 2, URL: ""},
	}
	for i := range cfgs {
		cfgs[i].URL = startReplica(t, f.blobs[i]).URL
	}
	_, rts := startRouter(t, cfgs)
	ref := startRef(t, f)

	for _, k := range []int{10, 50} {
		for _, ex := range []int{0, 37, 211} {
			want, err := f.sys.KNN(ex, k)
			if err != nil {
				t.Fatal(err)
			}
			var got KNNResponse
			mustJSON(t, http.MethodPost, rts.URL+"/v1/knn",
				KNNRequest{Query: f.sys.Corpus().Vectors[ex], K: k}, &got)
			if len(got.Neighbors) != len(want) {
				t.Fatalf("k=%d ex=%d: %d neighbors vs %d", k, ex, len(got.Neighbors), len(want))
			}
			for i, n := range got.Neighbors {
				if n.ID != want[i].ID || n.Dist != want[i].Score {
					t.Fatalf("k=%d ex=%d rank %d: (%d, %v) vs single-node (%d, %v)",
						k, ex, i, n.ID, n.Dist, want[i].ID, want[i].Score)
				}
			}
		}

		q := server.QueryRequest{Relevant: []int{3, 9, 12, 200, 201, 430, 77}, K: k}
		var viaRouter, viaRef server.QueryResponse
		mustJSON(t, http.MethodPost, rts.URL+"/v1/query", q, &viaRouter)
		mustJSON(t, http.MethodPost, ref.URL+"/v1/query", q, &viaRef)
		zeroFinalReads(&viaRouter)
		zeroFinalReads(&viaRef)
		if !reflect.DeepEqual(viaRouter, viaRef) {
			t.Fatalf("k=%d routed query diverges:\n  router %+v\n  single %+v", k, viaRouter, viaRef)
		}
	}
}

// TestRouterSessionFlowMatchesSingleNode drives a full multi-round feedback
// session through the router — create, candidates, feedback, finalize — and
// demands every display and the final ranking equal the single-node session
// under the same seed.
func TestRouterSessionFlowMatchesSingleNode(t *testing.T) {
	f := fixture(t)
	cfgs := []ReplicaConfig{
		{Shard: 0, URL: startReplica(t, f.blobs[0]).URL},
		{Shard: 1, URL: startReplica(t, f.blobs[1]).URL},
		{Shard: 2, URL: startReplica(t, f.blobs[2]).URL},
	}
	_, rts := startRouter(t, cfgs)
	ref := startRef(t, f)

	seedBody := map[string]int64{"seed": 11}
	var rsid, ssid server.SessionResponse
	mustJSON(t, http.MethodPost, rts.URL+"/v1/sessions", seedBody, &ssid)
	mustJSON(t, http.MethodPost, ref.URL+"/v1/sessions", seedBody, &rsid)
	if !strings.HasPrefix(ssid.SessionID, "s") {
		t.Fatalf("router issued non-composite session id %q", ssid.SessionID)
	}

	type candList struct {
		Candidates []server.CandidateJSON `json:"candidates"`
	}
	for round := 0; round < 3; round++ {
		var sc, rc candList
		mustJSON(t, http.MethodGet, rts.URL+"/v1/sessions/"+ssid.SessionID+"/candidates", nil, &sc)
		mustJSON(t, http.MethodGet, ref.URL+"/v1/sessions/"+rsid.SessionID+"/candidates", nil, &rc)
		if !reflect.DeepEqual(sc, rc) {
			t.Fatalf("round %d displays diverge:\n  router %+v\n  single %+v", round, sc, rc)
		}
		var marks []int
		for i, c := range sc.Candidates {
			if i%3 == 0 {
				marks = append(marks, c.ID)
			}
		}
		fb := server.FeedbackRequest{Relevant: marks}
		var sf, rf server.FeedbackResponse
		mustJSON(t, http.MethodPost, rts.URL+"/v1/sessions/"+ssid.SessionID+"/feedback", fb, &sf)
		mustJSON(t, http.MethodPost, ref.URL+"/v1/sessions/"+rsid.SessionID+"/feedback", fb, &rf)
		if sf != rf {
			t.Fatalf("round %d feedback diverges: router %+v single %+v", round, sf, rf)
		}
	}

	kReq := map[string]int{"k": 25}
	var sres, rres server.QueryResponse
	mustJSON(t, http.MethodPost, rts.URL+"/v1/sessions/"+ssid.SessionID+"/finalize", kReq, &sres)
	mustJSON(t, http.MethodPost, ref.URL+"/v1/sessions/"+rsid.SessionID+"/finalize", kReq, &rres)
	zeroFinalReads(&sres)
	zeroFinalReads(&rres)
	if !reflect.DeepEqual(sres, rres) {
		t.Fatalf("routed finalize diverges:\n  router %+v\n  single %+v", sres, rres)
	}

	// Finalize released the hosted session on its replica.
	if status, _ := request(t, http.MethodGet, rts.URL+"/v1/sessions/"+ssid.SessionID+"/candidates", nil); status != http.StatusNotFound {
		t.Fatalf("finalized session still reachable: HTTP %d", status)
	}
}

// TestRouterFailoverAndSessionRecovery kills the replica hosting a mid-flight
// session: reads that can fail over (k-NN) stay bit-identical, the lost
// session reports the structured 410, and re-importing the exported state
// through the router resumes it with a finalize identical to a restore on the
// unsharded reference server.
func TestRouterFailoverAndSessionRecovery(t *testing.T) {
	f := fixture(t)
	// Two replicas on shard 0 so the shard survives losing one.
	s0a := startReplica(t, f.blobs[0])
	s0b := startReplica(t, f.blobs[0])
	cfgs := []ReplicaConfig{
		{Shard: 0, URL: s0a.URL},
		{Shard: 0, URL: s0b.URL},
		{Shard: 1, URL: startReplica(t, f.blobs[1]).URL},
		{Shard: 2, URL: startReplica(t, f.blobs[2]).URL},
	}
	_, rts := startRouter(t, cfgs)
	ref := startRef(t, f)

	// Place a session on the doomed replica (placement round-robins, so a few
	// tries suffice; surplus sessions are deleted).
	var sid string
	for try := 0; try < 8 && sid == ""; try++ {
		var resp server.SessionResponse
		mustJSON(t, http.MethodPost, rts.URL+"/v1/sessions", map[string]int64{"seed": 23}, &resp)
		if strings.HasPrefix(resp.SessionID, "s0-0-") {
			sid = resp.SessionID
		} else {
			mustJSON(t, http.MethodDelete, rts.URL+"/v1/sessions/"+resp.SessionID, nil, nil)
		}
	}
	if sid == "" {
		t.Fatal("round-robin placement never landed on shard 0 replica 0")
	}

	type candList struct {
		Candidates []server.CandidateJSON `json:"candidates"`
	}
	for round := 0; round < 2; round++ {
		var cl candList
		mustJSON(t, http.MethodGet, rts.URL+"/v1/sessions/"+sid+"/candidates", nil, &cl)
		var marks []int
		for i, c := range cl.Candidates {
			if i%3 == 0 {
				marks = append(marks, c.ID)
			}
		}
		mustJSON(t, http.MethodPost, rts.URL+"/v1/sessions/"+sid+"/feedback",
			server.FeedbackRequest{Relevant: marks}, nil)
	}

	// Snapshot the session, then compute the reference finalize by restoring
	// the same state on the unsharded server.
	var exported server.SessionExport
	mustJSON(t, http.MethodGet, rts.URL+"/v1/sessions/"+sid+"/export", nil, &exported)
	if exported.State == nil {
		t.Fatal("export returned no state")
	}
	var refSid server.SessionResponse
	mustJSON(t, http.MethodPost, ref.URL+"/v1/sessions/import", exported, &refSid)
	var want server.QueryResponse
	mustJSON(t, http.MethodPost, ref.URL+"/v1/sessions/"+refSid.SessionID+"/finalize", map[string]int{"k": 10}, &want)

	s0a.Close() // the host goes down mid-session

	// The session is gone — structured 410 so clients know to re-import.
	status, raw := request(t, http.MethodGet, rts.URL+"/v1/sessions/"+sid+"/candidates", nil)
	if status != http.StatusGone {
		t.Fatalf("lost session: HTTP %d (%s), want 410", status, raw)
	}
	var eb errorBody
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Code != "session_lost" {
		t.Fatalf("lost session body %s, want code session_lost", raw)
	}

	// Stateless reads fail over to the surviving shard-0 replica, still
	// bit-identical.
	knnWant, err := f.sys.KNN(37, 10)
	if err != nil {
		t.Fatal(err)
	}
	var knnGot KNNResponse
	mustJSON(t, http.MethodPost, rts.URL+"/v1/knn",
		KNNRequest{Query: f.sys.Corpus().Vectors[37], K: 10}, &knnGot)
	for i, n := range knnGot.Neighbors {
		if n.ID != knnWant[i].ID || n.Dist != knnWant[i].Score {
			t.Fatalf("failover knn rank %d: (%d, %v) vs (%d, %v)", i, n.ID, n.Dist, knnWant[i].ID, knnWant[i].Score)
		}
	}

	// Re-import the exported state through the router and finalize: identical
	// to the unsharded restore.
	var resumed server.SessionResponse
	mustJSON(t, http.MethodPost, rts.URL+"/v1/sessions/import", exported, &resumed)
	var got server.QueryResponse
	mustJSON(t, http.MethodPost, rts.URL+"/v1/sessions/"+resumed.SessionID+"/finalize", map[string]int{"k": 10}, &got)
	zeroFinalReads(&got)
	zeroFinalReads(&want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed finalize diverges:\n  router %+v\n  single %+v", got, want)
	}
}

// TestReplicaRefusesLocalFinalize pins the replica-side guard: a shard server
// cannot finalize a hosted session by itself (it holds one slice of the
// corpus) and says so with the structured 409.
func TestReplicaRefusesLocalFinalize(t *testing.T) {
	f := fixture(t)
	rep := startReplica(t, f.blobs[1])
	var sid server.SessionResponse
	mustJSON(t, http.MethodPost, rep.URL+"/v1/sessions", map[string]int64{"seed": 3}, &sid)
	status, raw := request(t, http.MethodPost, rep.URL+"/v1/sessions/"+sid.SessionID+"/finalize", map[string]int{"k": 10})
	if status != http.StatusConflict {
		t.Fatalf("local finalize: HTTP %d (%s), want 409", status, raw)
	}
	var eb errorBody
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Code != server.ErrCodeShardFinalize {
		t.Fatalf("local finalize body %s, want code %s", raw, server.ErrCodeShardFinalize)
	}
}

// TestReplicaBuildInfoExposesShard covers the fleet-introspection satellite:
// a shard replica's /v1/buildinfo carries the archive format version, the
// scan precision tag, and its shard coordinates.
func TestReplicaBuildInfoExposesShard(t *testing.T) {
	f := fixture(t)
	rep := startReplica(t, f.blobs[2])
	var bi server.BuildInfoResponse
	mustJSON(t, http.MethodGet, rep.URL+"/v1/buildinfo", nil, &bi)
	if bi.ArchiveVersion < 1 {
		t.Fatalf("buildinfo archive_version %d, want >= 1", bi.ArchiveVersion)
	}
	if bi.Precision != "f64" {
		t.Fatalf("buildinfo precision %q, want f64", bi.Precision)
	}
	if bi.ShardIndex == nil || *bi.ShardIndex != 2 || bi.ShardCount != 3 {
		t.Fatalf("buildinfo shard coordinates %v/%d, want 2/3", bi.ShardIndex, bi.ShardCount)
	}
}

// TestVerifyFleetRefusesMixedPrecision builds a doctored fleet whose replicas
// disagree on the scan precision and demands VerifyFleet rejects it — merging
// float32 and float64 distance lists would produce a ranking no single-node
// build emits.
func TestVerifyFleetRefusesMixedPrecision(t *testing.T) {
	stub := func(idx int, prec string) *httptest.Server {
		mux := http.NewServeMux()
		meta := shard.Meta{
			ShardIndex: idx, ShardCount: 2, Images: 10, LocalImages: 5, Dim: 2,
			Precision: prec, ArchiveVersion: 3, CorpusSig: 42,
		}
		mux.HandleFunc("/v1/shard/meta", func(w http.ResponseWriter, r *http.Request) {
			_ = json.NewEncoder(w).Encode(meta)
		})
		mux.HandleFunc("/v1/buildinfo", func(w http.ResponseWriter, r *http.Request) {
			_ = json.NewEncoder(w).Encode(map[string]interface{}{
				"archive_version": 3, "precision": prec, "quantized": false,
				"shard_index": idx, "shard_count": 2,
			})
		})
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		return ts
	}
	rt, err := New(Config{Replicas: []ReplicaConfig{
		{Shard: 0, URL: stub(0, "f64").URL},
		{Shard: 1, URL: stub(1, "f32").URL},
	}})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.VerifyFleet(context.Background())
	if err == nil || !strings.Contains(err.Error(), "mixed-precision") {
		t.Fatalf("VerifyFleet = %v, want mixed-precision refusal", err)
	}
}
