// Package router implements qdrouter's scatter-gather serving tier: a
// stateless HTTP front over a fleet of shard replicas (qdserve processes
// each loading one shard archive, see internal/shard).
//
// The router owns no corpus data. At startup it verifies the fleet — every
// shard index covered, one corpus signature, one archive version, one scan
// precision (mixed-precision fleets are refused outright: float32 and
// float64 sweeps produce different distance bits, so their merged rankings
// would match neither a pure fleet nor the single-node engine) — and caches
// the shared full-corpus topology from one replica. After that every query
// is a fan-out: k-NN and finalize legs scatter to one replica per shard,
// per-shard top-k lists merge by (distance, ID) into exactly the ranking the
// single-node engine would emit (see internal/shard for the argument), and
// feedback sessions live on whichever replica the router placed them,
// resumable anywhere via the exported session state.
//
// Failure handling distinguishes overload from crash: a structured 503 with
// code "deadline_exceeded" (see internal/server.ErrCodeDeadline) fails over
// to the next replica of the same shard without marking the slow one dead,
// while a connection error marks the replica dead until the health loop
// (GET /healthz) revives it.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qdcbir/internal/obs"
	"qdcbir/internal/shard"
)

// ReplicaConfig names one backend: which shard it serves and where.
type ReplicaConfig struct {
	Shard int    `json:"shard"`
	URL   string `json:"url"`
}

// Config configures a Router.
type Config struct {
	Replicas []ReplicaConfig
	// Client issues all backend requests (default: http.Client with no
	// timeout; per-attempt timeouts come from RequestTimeout).
	Client *http.Client
	// RequestTimeout bounds each backend attempt (default 10s).
	RequestTimeout time.Duration
	// HealthInterval paces the background health loop (default 2s).
	HealthInterval time.Duration
	// Parallelism bounds concurrent shard legs per scatter (default: number
	// of shards).
	Parallelism int
	// ScrapeInterval paces the fleet telemetry scrape loop feeding
	// /v1/fleet/latency and /v1/fleet/stats (default 5s; negative disables
	// the loop, leaving those endpoints to scrape synchronously on demand).
	ScrapeInterval time.Duration
	// Logger receives one line per fleet event (nil disables logging).
	Logger *slog.Logger
}

// replica is one backend endpoint and its health/traffic state.
type replica struct {
	shard int
	url   string
	alive atomic.Bool
	reqs  atomic.Uint64
	errs  atomic.Uint64
}

// Router is the scatter-gather front. Construct with New, verify the fleet
// with VerifyFleet, then serve Handler().
type Router struct {
	client      *http.Client
	timeout     time.Duration
	healthEvery time.Duration
	parallelism int
	log         *slog.Logger

	shards [][]*replica // indexed by shard
	all    []*replica

	topo *shard.Topology
	meta shard.Meta // canonical fleet metadata (shard-0 copy, index cleared)

	obs          *obs.Observer
	reqs         *obs.Counter
	errs         *obs.Counter
	scatters     *obs.Counter
	failover     *obs.Counter
	singleflight *obs.Counter
	sheds        *obs.Counter
	// Per-shard request/error counters, indexed by shard.
	shardReqs []*obs.Counter
	shardErrs []*obs.Counter
	// Router-local overhead histograms: what the router itself adds on top of
	// shard time — dispatching the fan-out, merging the per-shard lists, and
	// waiting for the slowest shard after the fastest answered.
	fanoutHist    *obs.Histogram
	mergeHist     *obs.Histogram
	stragglerHist *obs.Histogram

	// stitches retains completed cross-process traces (router spans + shard
	// child spans under one request id); slow retains the slowest routed
	// requests as exemplars referencing them.
	stitches  *obs.StitchRing
	slow      *obs.SlowLog
	stitchSeq atomic.Uint64

	// Fleet telemetry scrape state (see fleet.go).
	scrapeEvery time.Duration
	fleetMu     sync.Mutex
	fleet       *fleetView

	// Single-flight table for identical concurrent KNN requests (see
	// singleflight.go).
	sfMu sync.Mutex
	sf   map[string]*sfCall

	rr      []atomic.Uint64 // per-shard round-robin cursor
	sessSeq atomic.Uint64   // spreads new sessions across shards
	reqSeq  atomic.Uint64
}

// New builds a router over the configured fleet. It validates only the
// config shape; call VerifyFleet before serving to validate the fleet
// itself.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("router: no replicas configured")
	}
	nShards := 0
	for _, rc := range cfg.Replicas {
		if rc.Shard < 0 {
			return nil, fmt.Errorf("router: negative shard index %d", rc.Shard)
		}
		if rc.URL == "" {
			return nil, fmt.Errorf("router: shard %d replica with empty URL", rc.Shard)
		}
		if rc.Shard+1 > nShards {
			nShards = rc.Shard + 1
		}
	}
	rt := &Router{
		client:      cfg.Client,
		timeout:     cfg.RequestTimeout,
		healthEvery: cfg.HealthInterval,
		parallelism: cfg.Parallelism,
		scrapeEvery: cfg.ScrapeInterval,
		log:         cfg.Logger,
		shards:      make([][]*replica, nShards),
		rr:          make([]atomic.Uint64, nShards),
		stitches:    obs.NewStitchRing(0),
		slow:        obs.NewSlowLog(0),
		sf:          make(map[string]*sfCall),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	if rt.timeout <= 0 {
		rt.timeout = 10 * time.Second
	}
	if rt.healthEvery <= 0 {
		rt.healthEvery = 2 * time.Second
	}
	if rt.scrapeEvery == 0 {
		rt.scrapeEvery = 5 * time.Second
	}
	if rt.parallelism <= 0 {
		rt.parallelism = nShards
	}
	for _, rc := range cfg.Replicas {
		rep := &replica{shard: rc.Shard, url: strings.TrimRight(rc.URL, "/")}
		rep.alive.Store(true) // optimistic until the first health pass
		rt.shards[rc.Shard] = append(rt.shards[rc.Shard], rep)
		rt.all = append(rt.all, rep)
	}
	for i, reps := range rt.shards {
		if len(reps) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas (shard count inferred as %d)", i, nShards)
		}
	}
	rt.obs = obs.New(obs.NewRegistry())
	reg := rt.obs.Registry()
	rt.reqs = reg.Counter("qd_router_requests_total", "Requests served by the router.")
	rt.errs = reg.Counter("qd_router_errors_total", "Router responses with status >= 400.")
	rt.scatters = reg.Counter("qd_router_scatters_total", "Scatter-gather fan-outs executed.")
	rt.failover = reg.Counter("qd_router_failovers_total", "Per-shard retries on another replica.")
	rt.singleflight = reg.Counter("qd_router_singleflight_total",
		"KNN requests answered by joining an identical in-flight scatter instead of fanning out again.")
	rt.sheds = reg.Counter("qd_router_sheds_total",
		"Shard 503 replies (admission sheds or deadline expiries) observed during fan-out.")
	rt.fanoutHist = reg.Histogram("qd_router_fanout_seconds",
		"Wall time of one scatter fan-out: dispatch to last shard list received.", nil)
	rt.mergeHist = reg.Histogram("qd_router_merge_seconds",
		"Wall time merging per-shard top-k lists into the fleet ranking.", nil)
	rt.stragglerHist = reg.Histogram("qd_router_straggler_wait_seconds",
		"Per fan-out: slowest shard leg minus fastest — time spent waiting on the straggler.", nil)
	rt.shardReqs = make([]*obs.Counter, nShards)
	rt.shardErrs = make([]*obs.Counter, nShards)
	for i := range rt.shards {
		rt.shardReqs[i] = reg.Counter(
			fmt.Sprintf("qd_router_shard%d_requests_total", i),
			fmt.Sprintf("Backend requests sent to shard %d.", i))
		rt.shardErrs[i] = reg.Counter(
			fmt.Sprintf("qd_router_shard%d_errors_total", i),
			fmt.Sprintf("Backend errors from shard %d.", i))
	}
	return rt, nil
}

// Shards returns the number of shards the fleet serves.
func (rt *Router) Shards() int { return len(rt.shards) }

// Meta returns the fleet's canonical shard metadata (valid after
// VerifyFleet; ShardIndex is meaningless at fleet scope and set to -1).
func (rt *Router) Meta() shard.Meta { return rt.meta }

// Topology returns the shared full-corpus topology (valid after VerifyFleet).
func (rt *Router) Topology() *shard.Topology { return rt.topo }

// Observer exposes the router's telemetry sink.
func (rt *Router) Observer() *obs.Observer { return rt.obs }

// ---- fleet verification ----

// buildInfoBody is the subset of qdserve's /v1/buildinfo the router checks.
type buildInfoBody struct {
	ArchiveVersion int    `json:"archive_version"`
	Precision      string `json:"precision"`
	Quantized      bool   `json:"quantized"`
	ShardIndex     *int   `json:"shard_index"`
	ShardCount     int    `json:"shard_count"`
}

// VerifyFleet contacts every replica and refuses to serve unless the fleet
// is coherent: every replica is a shard server, shard counts agree with the
// config, every shard index is covered by the replicas claiming it, and the
// corpus signature, archive version, and scan precision are uniform. A
// mixed-precision fleet is rejected here — merging float32 and float64
// distance lists would produce a ranking no single-node build emits.
func (rt *Router) VerifyFleet(ctx context.Context) error {
	var ref shard.Meta
	haveRef := false
	for _, rep := range rt.all {
		var meta shard.Meta
		if _, err := rt.call(ctx, rep, http.MethodGet, "/v1/shard/meta", nil, &meta); err != nil {
			return fmt.Errorf("router: replica %s: shard meta: %w", rep.url, err)
		}
		var bi buildInfoBody
		if _, err := rt.call(ctx, rep, http.MethodGet, "/v1/buildinfo", nil, &bi); err != nil {
			return fmt.Errorf("router: replica %s: buildinfo: %w", rep.url, err)
		}
		if meta.ShardCount != len(rt.shards) {
			return fmt.Errorf("router: replica %s serves a %d-shard corpus, config has %d shards", rep.url, meta.ShardCount, len(rt.shards))
		}
		if meta.ShardIndex != rep.shard {
			return fmt.Errorf("router: replica %s serves shard %d, configured as shard %d", rep.url, meta.ShardIndex, rep.shard)
		}
		if bi.Precision != "" && bi.Precision != meta.Precision {
			return fmt.Errorf("router: replica %s reports precision %q in buildinfo but %q in shard meta", rep.url, bi.Precision, meta.Precision)
		}
		if !haveRef {
			ref, haveRef = meta, true
			continue
		}
		if meta.CorpusSig != ref.CorpusSig {
			return fmt.Errorf("router: replica %s corpus signature %016x != fleet %016x (mixed builds)", rep.url, meta.CorpusSig, ref.CorpusSig)
		}
		if meta.Precision != ref.Precision {
			return fmt.Errorf("router: mixed-precision fleet refused: replica %s runs %q, fleet runs %q", rep.url, meta.Precision, ref.Precision)
		}
		if meta.ArchiveVersion != ref.ArchiveVersion {
			return fmt.Errorf("router: replica %s archive version %d != fleet %d", rep.url, meta.ArchiveVersion, ref.ArchiveVersion)
		}
		if meta.Quantized != ref.Quantized {
			return fmt.Errorf("router: replica %s quantization mode differs from fleet", rep.url)
		}
	}
	var topo shard.Topology
	if _, err := rt.call(ctx, rt.shards[0][0], http.MethodGet, "/v1/shard/topology", nil, &topo); err != nil {
		return fmt.Errorf("router: fetch topology: %w", err)
	}
	if err := topo.Index(); err != nil {
		return fmt.Errorf("router: fleet topology: %w", err)
	}
	ref.ShardIndex = -1
	ref.LocalImages = 0
	rt.meta = ref
	rt.topo = &topo
	if rt.log != nil {
		rt.log.Info("fleet verified",
			slog.Int("shards", len(rt.shards)),
			slog.Int("replicas", len(rt.all)),
			slog.Int("images", ref.Images),
			slog.String("precision", ref.Precision),
			slog.Int("archive_version", ref.ArchiveVersion),
			slog.String("corpus_sig", fmt.Sprintf("%016x", ref.CorpusSig)),
		)
	}
	return nil
}

// Start launches the background loops — health probing and fleet telemetry
// scraping; both stop when ctx is done.
func (rt *Router) Start(ctx context.Context) {
	go func() {
		t := time.NewTicker(rt.healthEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				rt.CheckHealth(ctx)
			}
		}
	}()
	if rt.scrapeEvery > 0 {
		go func() {
			t := time.NewTicker(rt.scrapeEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					rt.refreshFleet(ctx)
				}
			}
		}()
	}
}

// CheckHealth probes every replica's /healthz once and updates liveness.
func (rt *Router) CheckHealth(ctx context.Context) {
	for _, rep := range rt.all {
		cctx, cancel := context.WithTimeout(ctx, rt.timeout)
		var body struct {
			Status string `json:"status"`
		}
		_, err := rt.call(cctx, rep, http.MethodGet, "/healthz", nil, &body)
		cancel()
		ok := err == nil && body.Status == "ok"
		if was := rep.alive.Swap(ok); was != ok && rt.log != nil {
			rt.log.Info("replica health changed",
				slog.Int("shard", rep.shard), slog.String("url", rep.url), slog.Bool("alive", ok))
		}
	}
}

// ---- backend calls ----

// backendError is a structured downstream failure.
type backendError struct {
	Status  int
	Code    string
	Message string
	URL     string
}

func (e *backendError) Error() string {
	return fmt.Sprintf("%s: HTTP %d (%s): %s", e.URL, e.Status, e.Code, e.Message)
}

// retryable reports whether another replica of the same shard may succeed
// where this one failed: overload (deadline expiry) and drains fail over;
// bad requests do not.
func (e *backendError) retryable() bool {
	return e.Status == http.StatusServiceUnavailable || e.Status >= 500
}

// call issues one request to one replica. A nil in sends no body; a non-nil
// out decodes the 2xx response. Non-2xx responses decode the uniform error
// body into a *backendError. The remaining ctx deadline is propagated
// downstream via X-Qd-Deadline-Ms so a replica gives up (with the
// structured 503) rather than holding a doomed scatter leg open.
func (rt *Router) call(ctx context.Context, rep *replica, method, path string, in, out interface{}) (int, error) {
	cctx, cancel := context.WithTimeout(ctx, rt.timeout)
	defer cancel()
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(cctx, method, rep.url+path, body)
	if err != nil {
		return 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if dl, ok := cctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set("X-Qd-Deadline-Ms", strconv.FormatInt(ms, 10))
	}
	// Cross-process tracing: a stitch on the context stamps the trace header
	// (the shard's opt-in to record and return its spans) and receives this
	// RPC as a span on the shard's track. st may be nil; every stitch method
	// no-ops then.
	st := stitchFrom(ctx)
	rpcName := method + " " + path
	if st != nil {
		req.Header.Set(obs.TraceHeader, st.RequestID())
		if q := strings.IndexByte(rpcName, '?'); q >= 0 {
			rpcName = rpcName[:q]
		}
	}
	rpcOff := st.Since()
	rep.reqs.Add(1)
	if rep.shard >= 0 && rep.shard < len(rt.shardReqs) {
		rt.shardReqs[rep.shard].Inc()
	}
	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		rep.errs.Add(1)
		if rep.shard >= 0 && rep.shard < len(rt.shardErrs) {
			rt.shardErrs[rep.shard].Inc()
		}
		st.RPC(rep.shard, rpcName, rpcOff, st.Since()-rpcOff, nil)
		return 0, err
	}
	defer resp.Body.Close()
	rt.obs.Windows().Observe("shard:"+strconv.Itoa(rep.shard), time.Since(start).Seconds())
	if resp.StatusCode >= 400 {
		rep.errs.Add(1)
		if rep.shard >= 0 && rep.shard < len(rt.shardErrs) {
			rt.shardErrs[rep.shard].Inc()
		}
		var eb struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
		st.RPC(rep.shard, rpcName, rpcOff, st.Since()-rpcOff, nil)
		return resp.StatusCode, &backendError{Status: resp.StatusCode, Code: eb.Code, Message: eb.Error, URL: rep.url + path}
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			rep.errs.Add(1)
			st.RPC(rep.shard, rpcName, rpcOff, st.Since()-rpcOff, nil)
			return resp.StatusCode, fmt.Errorf("%s: decode: %w", rep.url+path, err)
		}
	}
	// The RPC span covers send through decode; a traced response carries the
	// shard's child spans, re-based into this window by the stitch.
	var remote *obs.RemoteTrace
	if traced, ok := out.(obs.RemoteTraced); ok {
		remote = traced.TraceData()
	}
	st.RPC(rep.shard, rpcName, rpcOff, st.Since()-rpcOff, remote)
	return resp.StatusCode, nil
}

// pick returns the shard's replicas in round-robin failover order.
func (rt *Router) pick(shardIdx int) []*replica {
	reps := rt.shards[shardIdx]
	start := int(rt.rr[shardIdx].Add(1)) % len(reps)
	out := make([]*replica, 0, len(reps))
	for i := 0; i < len(reps); i++ {
		out = append(out, reps[(start+i)%len(reps)])
	}
	return out
}

// doShard issues a request to the shard, failing over across replicas.
// Dead replicas are tried last; a connection error marks a replica dead, a
// retryable HTTP error (deadline expiry, drain, 5xx) moves on without
// changing liveness — the replica is overloaded, not gone. Non-retryable
// errors (bad request, unknown node) return immediately: every replica of
// the shard would answer the same.
func (rt *Router) doShard(ctx context.Context, shardIdx int, method, path string, in, out interface{}) error {
	ordered := rt.pick(shardIdx)
	alive := make([]*replica, 0, len(ordered))
	dead := make([]*replica, 0, len(ordered))
	for _, rep := range ordered {
		if rep.alive.Load() {
			alive = append(alive, rep)
		} else {
			dead = append(dead, rep)
		}
	}
	var lastErr error
	for i, rep := range append(alive, dead...) {
		if i > 0 {
			rt.failover.Inc()
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		_, err := rt.call(ctx, rep, method, path, in, out)
		if err == nil {
			rep.alive.Store(true)
			return nil
		}
		var be *backendError
		if errors.As(err, &be) {
			if be.Status == http.StatusServiceUnavailable {
				rt.sheds.Inc()
			}
			if !be.retryable() {
				return err
			}
			lastErr = err
			continue // overloaded or draining; liveness unchanged
		}
		if ctx.Err() != nil {
			// Our own deadline or the client's cancellation, not the
			// replica's fault.
			return err
		}
		rep.alive.Store(false)
		if rt.log != nil {
			rt.log.Warn("replica unreachable",
				slog.Int("shard", rep.shard), slog.String("url", rep.url), slog.String("error", err.Error()))
		}
		lastErr = err
	}
	return fmt.Errorf("router: shard %d unavailable: %w", shardIdx, lastErr)
}
