package router

// Fleet-wide telemetry aggregation. Each replica serves its own
// sliding-window latency digests (/v1/latency) and cumulative metrics
// (/v1/stats); the router periodically scrapes them and *merges* the digests
// — bucket-wise histogram addition, which is exact — rather than averaging
// quantiles, which is statistically meaningless. The result is one place
// answering "what is the fleet's /v1/query p99 over the last minute, and
// which shard drags it": /v1/fleet/latency and /v1/fleet/stats.

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"time"

	"qdcbir/internal/obs"
	"qdcbir/internal/server"
)

// fleetView is one completed scrape pass over the fleet.
type fleetView struct {
	at       time.Time
	replicas int      // replicas scraped successfully
	errors   []string // per-replica scrape failures, at most one line each

	detail   obs.DigestDetail         // merged across every scraped replica
	byShard  map[int]obs.DigestDetail // merged per shard
	counters map[string]uint64        // summed across replicas
	gauges   map[string]int64         // summed across replicas
}

// refreshFleet runs one scrape pass and publishes the view (also the
// synchronous fallback when a fleet endpoint is hit before the loop's first
// tick). Partial scrapes publish what they got: a dead replica must not blind
// the operator to the live ones.
func (rt *Router) refreshFleet(ctx context.Context) *fleetView {
	view := &fleetView{
		at:       time.Now(),
		detail:   obs.DigestDetail{},
		byShard:  make(map[int]obs.DigestDetail),
		counters: make(map[string]uint64),
		gauges:   make(map[string]int64),
	}
	for _, rep := range rt.all {
		var lat server.LatencyResponse
		if _, err := rt.call(ctx, rep, http.MethodGet, "/v1/latency?detail=1", nil, &lat); err != nil {
			view.errors = append(view.errors, fmt.Sprintf("%s: latency: %v", rep.url, err))
			continue
		}
		var stats server.StatsResponse
		if _, err := rt.call(ctx, rep, http.MethodGet, "/v1/stats", nil, &stats); err != nil {
			view.errors = append(view.errors, fmt.Sprintf("%s: stats: %v", rep.url, err))
			continue
		}
		merged, err := obs.MergeDetails(view.detail, lat.Detail)
		if err != nil {
			view.errors = append(view.errors, fmt.Sprintf("%s: merge: %v", rep.url, err))
			continue
		}
		view.detail = merged
		shardMerged, err := obs.MergeDetails(view.byShard[rep.shard], lat.Detail)
		if err != nil {
			view.errors = append(view.errors, fmt.Sprintf("%s: merge shard %d: %v", rep.url, rep.shard, err))
			continue
		}
		view.byShard[rep.shard] = shardMerged
		for name, v := range stats.Metrics.Counters {
			view.counters[name] += v
		}
		for name, v := range stats.Metrics.Gauges {
			view.gauges[name] += v
		}
		view.replicas++
	}
	rt.fleetMu.Lock()
	rt.fleet = view
	rt.fleetMu.Unlock()
	return view
}

// currentFleet returns the latest scrape, running one synchronously when none
// has completed yet (first request before the loop ticks, or loop disabled).
func (rt *Router) currentFleet(ctx context.Context) *fleetView {
	rt.fleetMu.Lock()
	view := rt.fleet
	rt.fleetMu.Unlock()
	if view != nil {
		return view
	}
	return rt.refreshFleet(ctx)
}

// ShardLatency is one shard's merged digests (all its replicas combined).
type ShardLatency struct {
	Shard   int               `json:"shard"`
	Digests obs.LatencyReport `json:"digests"`
}

// FleetLatencyResponse is the /v1/fleet/latency body: quantile summaries of
// the fleet-merged replica digests, overall and per shard.
type FleetLatencyResponse struct {
	ScrapedAt time.Time         `json:"scraped_at"`
	Replicas  int               `json:"replicas"`
	Errors    []string          `json:"errors,omitempty"`
	Windows   []string          `json:"windows"`
	Fleet     obs.LatencyReport `json:"fleet"`
	Shards    []ShardLatency    `json:"shards"`
}

// handleFleetLatency serves the fleet-merged latency digests. ?refresh=1
// forces a synchronous scrape instead of the cached loop result.
func (rt *Router) handleFleetLatency(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "", "GET only")
		return
	}
	var view *fleetView
	if r.URL.Query().Get("refresh") == "1" {
		view = rt.refreshFleet(r.Context())
	} else {
		view = rt.currentFleet(r.Context())
	}
	labels := make([]string, len(obs.DefaultWindows))
	for i, win := range obs.DefaultWindows {
		labels[i] = obs.WindowLabel(win)
	}
	resp := FleetLatencyResponse{
		ScrapedAt: view.at,
		Replicas:  view.replicas,
		Errors:    view.errors,
		Windows:   labels,
		Fleet:     view.detail.StatsReport(),
		Shards:    make([]ShardLatency, 0, len(view.byShard)),
	}
	shards := make([]int, 0, len(view.byShard))
	for sh := range view.byShard {
		shards = append(shards, sh)
	}
	sort.Ints(shards)
	for _, sh := range shards {
		resp.Shards = append(resp.Shards, ShardLatency{Shard: sh, Digests: view.byShard[sh].StatsReport()})
	}
	writeJSON(w, http.StatusOK, resp)
}

// FleetStatsResponse is the /v1/fleet/stats body: replica counters and gauges
// summed fleet-wide, plus the router's own liveness/traffic view per shard.
type FleetStatsResponse struct {
	ScrapedAt time.Time         `json:"scraped_at"`
	Replicas  int               `json:"replicas"`
	Errors    []string          `json:"errors,omitempty"`
	Counters  map[string]uint64 `json:"counters"`
	Gauges    map[string]int64  `json:"gauges"`
	Shards    []ShardStatus     `json:"shards"`
}

// handleFleetStats serves the fleet-aggregated counters. ?refresh=1 forces a
// synchronous scrape.
func (rt *Router) handleFleetStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "", "GET only")
		return
	}
	var view *fleetView
	if r.URL.Query().Get("refresh") == "1" {
		view = rt.refreshFleet(r.Context())
	} else {
		view = rt.currentFleet(r.Context())
	}
	writeJSON(w, http.StatusOK, FleetStatsResponse{
		ScrapedAt: view.at,
		Replicas:  view.replicas,
		Errors:    view.errors,
		Counters:  view.counters,
		Gauges:    view.gauges,
		Shards:    rt.shardStatus(),
	})
}
