// Package dataset builds the synthetic stand-in for the paper's 15,000-image
// Corel corpus (§5.1). Each of roughly 150 categories is split into one or
// more subconcepts; every subconcept has a distinct procedural appearance
// (palette, shapes, texture), so after feature extraction one semantic
// category occupies several well-separated clusters in the 37-d feature
// space — exactly the geometry that motivates query decomposition.
//
// The package offers two corpus modes:
//
//   - Build renders real raster images per subconcept and runs the full
//     feature pipeline (used for the quality experiments, Tables 1-2 and
//     Figs 4-9).
//   - BuildVectors synthesizes feature vectors directly from a Gaussian
//     mixture (used for the Fig 10/11 scalability sweeps, where rendering
//     50,000 images would only measure the renderer).
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"qdcbir/internal/img"
)

// ShapeKind selects the foreground geometry of an appearance.
type ShapeKind int

// The shape vocabulary of the procedural renderer.
const (
	ShapeNone ShapeKind = iota
	ShapeRect
	ShapeEllipse
	ShapeTriangle
	ShapeLines
	numShapeKinds
)

// Appearance parameterizes how one subconcept renders. Two subconcepts with
// different appearances land in different feature-space clusters; renders of
// the same appearance differ only by jitter and stay close together.
type Appearance struct {
	Base1, Base2   img.RGB // background gradient endpoints
	Shape          ShapeKind
	ShapeColor     img.RGB
	ShapeCount     int
	StripePeriod   float64 // 0 disables stripes
	StripeAngle    float64
	StripeColor    img.RGB
	StripeStrength float64
	CheckerCell    int // 0 disables checkering
	CheckerColor   img.RGB
	NoiseSigma     float64 // per-render pixel noise
	ColorJitter    float64 // per-render palette jitter (8-bit units)
	GeomJitter     float64 // per-render shape position/size jitter (fraction)
}

// SubconceptSpec is one visually-coherent subset of a category.
type SubconceptSpec struct {
	Name       string
	Count      int
	Appearance Appearance
}

// CategorySpec is one semantic category ("car", "bird", ...).
type CategorySpec struct {
	Name        string
	Subconcepts []SubconceptSpec
}

// Query is one evaluation query: a semantic concept whose ground truth is the
// union of the listed subconcepts (keys are "category/subconcept").
type Query struct {
	Name    string
	Targets []string
}

// Key returns the canonical "category/subconcept" key.
func Key(category, subconcept string) string { return category + "/" + subconcept }

// randomAppearance draws a well-spread appearance. Subconcept appearances are
// sampled from wide parameter ranges so distinct subconcepts are very likely
// to separate in feature space.
func randomAppearance(rng *rand.Rand) Appearance {
	hue := rng.Float64() * 360
	base1 := hsvToRGB(hue, 0.4+rng.Float64()*0.6, 0.35+rng.Float64()*0.6)
	base2 := hsvToRGB(math.Mod(hue+20+rng.Float64()*60, 360), 0.3+rng.Float64()*0.6, 0.3+rng.Float64()*0.6)
	a := Appearance{
		Base1:       base1,
		Base2:       base2,
		Shape:       ShapeKind(rng.Intn(int(numShapeKinds))),
		ShapeColor:  hsvToRGB(math.Mod(hue+120+rng.Float64()*120, 360), 0.5+rng.Float64()*0.5, 0.4+rng.Float64()*0.6),
		ShapeCount:  1 + rng.Intn(4),
		NoiseSigma:  3 + rng.Float64()*5,
		ColorJitter: 8 + rng.Float64()*10,
		GeomJitter:  0.05 + rng.Float64()*0.1,
	}
	switch rng.Intn(3) {
	case 0: // striped texture
		a.StripePeriod = 3 + rng.Float64()*12
		a.StripeAngle = rng.Float64() * math.Pi
		a.StripeColor = hsvToRGB(rng.Float64()*360, 0.3+rng.Float64()*0.5, 0.5+rng.Float64()*0.5)
		a.StripeStrength = 0.25 + rng.Float64()*0.5
	case 1: // checkered texture
		a.CheckerCell = 2 + rng.Intn(8)
		a.CheckerColor = hsvToRGB(rng.Float64()*360, 0.3+rng.Float64()*0.5, 0.4+rng.Float64()*0.5)
	}
	return a
}

// hsvToRGB converts an HSV triple (H in degrees) to an 8-bit RGB pixel.
func hsvToRGB(h, s, v float64) img.RGB {
	h = math.Mod(h, 360)
	if h < 0 {
		h += 360
	}
	c := v * s
	x := c * (1 - math.Abs(math.Mod(h/60, 2)-1))
	m := v - c
	var r, g, b float64
	switch {
	case h < 60:
		r, g, b = c, x, 0
	case h < 120:
		r, g, b = x, c, 0
	case h < 180:
		r, g, b = 0, c, x
	case h < 240:
		r, g, b = 0, x, c
	case h < 300:
		r, g, b = x, 0, c
	default:
		r, g, b = c, 0, x
	}
	return img.RGB{
		R: img.Clamp8((r + m) * 255),
		G: img.Clamp8((g + m) * 255),
		B: img.Clamp8((b + m) * 255),
	}
}

// queryCategoryLayout names the Table-1 categories and their subconcepts.
var queryCategoryLayout = []struct {
	category    string
	subconcepts []string
}{
	{"person", []string{"hair-model", "fitness", "kongfu"}},
	{"airplane", []string{"single", "multiple"}},
	{"bird", []string{"eagle", "owl", "sparrow"}},
	{"car", []string{"modern-sedan", "antique-car", "steamed-car"}},
	{"horse", []string{"polo", "wild-horse", "race"}},
	{"mountain", []string{"snow", "with-water"}},
	{"rose", []string{"yellow", "red"}},
	{"watersports", []string{"surfing", "sailing"}},
	{"computer", []string{"server", "desktop", "laptop-clear", "laptop-complex"}},
}

// PaperQueries returns the 11 evaluation queries of Table 1. The three
// computer queries share the computer category at decreasing generality,
// matching the paper's general-vs-specific design.
func PaperQueries() []Query {
	q := []Query{
		{Name: "A person", Targets: keys("person", "hair-model", "fitness", "kongfu")},
		{Name: "Airplane", Targets: keys("airplane", "single", "multiple")},
		{Name: "Bird", Targets: keys("bird", "eagle", "owl", "sparrow")},
		{Name: "Car", Targets: keys("car", "modern-sedan", "antique-car", "steamed-car")},
		{Name: "Horse", Targets: keys("horse", "polo", "wild-horse", "race")},
		{Name: "Mountain view", Targets: keys("mountain", "snow", "with-water")},
		{Name: "Rose", Targets: keys("rose", "yellow", "red")},
		{Name: "Water Sports", Targets: keys("watersports", "surfing", "sailing")},
		{Name: "Computer", Targets: keys("computer", "server", "desktop", "laptop-clear", "laptop-complex")},
		{Name: "Personal computer", Targets: keys("computer", "desktop", "laptop-clear", "laptop-complex")},
		{Name: "Laptop", Targets: keys("computer", "laptop-clear", "laptop-complex")},
	}
	return q
}

func keys(category string, subs ...string) []string {
	out := make([]string, len(subs))
	for i, s := range subs {
		out[i] = Key(category, s)
	}
	return out
}

// Spec describes a whole corpus layout.
type Spec struct {
	Categories []CategorySpec
	// Seed drives appearance sampling so a Spec is fully reproducible.
	Seed int64
}

// PaperSpec returns the full-scale layout: the 9 Table-1 categories plus
// filler categories, ~150 categories and ~15,000 images total, ~100 images
// per category as in §5.1.
func PaperSpec(seed int64) Spec { return buildSpec(seed, 150, 15000) }

// SmallSpec returns a reduced layout for tests and examples: the same query
// categories but fewer fillers and fewer images per subconcept.
func SmallSpec(seed int64, categories, totalImages int) Spec {
	return buildSpec(seed, categories, totalImages)
}

func buildSpec(seed int64, categories, totalImages int) Spec {
	if categories < len(queryCategoryLayout) {
		categories = len(queryCategoryLayout)
	}
	if totalImages < categories {
		totalImages = categories
	}
	rng := rand.New(rand.NewSource(seed))
	perCategory := totalImages / categories

	var specs []CategorySpec
	for _, qc := range queryCategoryLayout {
		cs := CategorySpec{Name: qc.category}
		per := perCategory / len(qc.subconcepts)
		if per < 1 {
			per = 1
		}
		for _, sub := range qc.subconcepts {
			cs.Subconcepts = append(cs.Subconcepts, SubconceptSpec{
				Name:       sub,
				Count:      per,
				Appearance: randomAppearance(rng),
			})
		}
		specs = append(specs, cs)
	}
	// Filler categories: 1-2 subconcepts each, random appearances. They play
	// the role of the Corel categories unrelated to any test query — the
	// "irrelevant images scattered in-between the clusters" of Figure 1.
	for i := len(queryCategoryLayout); i < categories; i++ {
		nSub := 1 + rng.Intn(2)
		cs := CategorySpec{Name: fmt.Sprintf("filler-%03d", i)}
		per := perCategory / nSub
		if per < 1 {
			per = 1
		}
		for s := 0; s < nSub; s++ {
			cs.Subconcepts = append(cs.Subconcepts, SubconceptSpec{
				Name:       fmt.Sprintf("variant-%d", s),
				Count:      per,
				Appearance: randomAppearance(rng),
			})
		}
		specs = append(specs, cs)
	}
	return Spec{Categories: specs, Seed: seed}
}

// TotalImages returns the number of images the spec will generate.
func (s Spec) TotalImages() int {
	var n int
	for _, c := range s.Categories {
		for _, sub := range c.Subconcepts {
			n += sub.Count
		}
	}
	return n
}
