package dataset

import (
	"math"
	"math/rand"

	"qdcbir/internal/img"
)

// RenderSize is the side length of generated corpus images. 48x48 keeps full
// 15,000-image builds fast while leaving three Haar decomposition levels and
// meaningful edge statistics.
const RenderSize = 48

// Render draws one instance of the appearance. Each call jitters palette,
// geometry, and pixel noise, so repeated renders of the same appearance form
// a tight cluster (not a single point) in feature space.
func Render(a Appearance, rng *rand.Rand) *img.Image {
	im := img.New(RenderSize, RenderSize)
	b1 := img.Jitter(rng, a.Base1, a.ColorJitter)
	b2 := img.Jitter(rng, a.Base2, a.ColorJitter)
	im.FillVGradient(b1, b2)

	if a.StripePeriod > 0 {
		period := a.StripePeriod * (1 + (rng.Float64()*2-1)*a.GeomJitter)
		angle := a.StripeAngle + (rng.Float64()*2-1)*0.1
		im.Stripes(img.Jitter(rng, a.StripeColor, a.ColorJitter), period, angle, a.StripeStrength)
	}
	if a.CheckerCell > 0 {
		im.Checker(img.Jitter(rng, a.CheckerColor, a.ColorJitter), a.CheckerCell, 0.6)
	}

	sc := img.Jitter(rng, a.ShapeColor, a.ColorJitter)
	for s := 0; s < a.ShapeCount; s++ {
		drawShape(im, a, sc, rng, s)
	}

	im.Speckle(rng, a.NoiseSigma)
	return im
}

// drawShape places the s-th foreground shape. Shape slots have fixed anchor
// positions (plus jitter) so multi-shape appearances are structurally stable
// across renders.
func drawShape(im *img.Image, a Appearance, color img.RGB, rng *rand.Rand, slot int) {
	w, h := float64(im.W), float64(im.H)
	// Anchors walk a diagonal so up to 4 shapes never fully coincide.
	ax := w * (0.25 + 0.18*float64(slot%3))
	ay := h * (0.3 + 0.15*float64(slot%4))
	jx := (rng.Float64()*2 - 1) * a.GeomJitter * w
	jy := (rng.Float64()*2 - 1) * a.GeomJitter * h
	cx, cy := ax+jx, ay+jy
	size := (0.12 + 0.08*float64(slot%2)) * w * (1 + (rng.Float64()*2-1)*a.GeomJitter)

	switch a.Shape {
	case ShapeNone:
	case ShapeRect:
		im.FillRect(int(cx-size), int(cy-size*0.7), int(cx+size), int(cy+size*0.7), color)
	case ShapeEllipse:
		im.FillEllipse(cx, cy, size, size*0.75, color)
	case ShapeTriangle:
		im.FillTriangle(cx, cy-size, cx-size, cy+size, cx+size, cy+size, color)
	case ShapeLines:
		for l := 0; l < 3; l++ {
			angle := float64(l)*math.Pi/3 + rng.Float64()*0.15
			dx := math.Cos(angle) * size
			dy := math.Sin(angle) * size
			im.DrawLine(int(cx-dx), int(cy-dy), int(cx+dx), int(cy+dy), color)
		}
	}
}
