package dataset

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"qdcbir/internal/feature"
	"qdcbir/internal/img"
	"qdcbir/internal/par"
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// Info is the ground-truth record of one corpus image. Category and
// Subconcept play the role of the paper's expert-assigned Corel labels.
type Info struct {
	ID         int
	Category   string
	Subconcept string // canonical "category/subconcept" key
}

// Corpus is a built image database: normalized 37-d feature vectors plus
// ground truth, and optionally the rendered images and per-channel vectors
// for the Multiple Viewpoints baseline.
type Corpus struct {
	Infos   []Info
	Vectors []vec.Vector // normalized features, indexed by image ID

	// ChannelVectors holds, per MV colour channel, the normalized features
	// of the whole corpus viewed through that channel. Nil unless the corpus
	// was built with Options.WithChannels (image mode only).
	ChannelVectors map[img.Channel][]vec.Vector

	// Images holds the rendered rasters when Options.KeepImages is set.
	Images []*img.Image

	// Extractor normalizes future raw extractions against this corpus.
	Extractor *feature.Extractor

	// store holds the corpus vectors in one contiguous backing array;
	// Vectors aliases its rows as zero-copy views (see adoptStores). One
	// more store exists per non-original MV channel; the original channel
	// shares the main store, which is also what dedupes it out of archives.
	store         *store.FeatureStore
	channelStores map[img.Channel]*store.FeatureStore

	bySubconcept map[string][]int
	byCategory   map[string][]int
}

// adoptStores moves the corpus vector tables into flat feature stores and
// rebinds the public slices to zero-copy views of the contiguous backing.
// Every Build/Reassemble path ends here, so downstream consumers (RFS build,
// baselines, persistence) can always scan contiguous memory. Rebinding also
// restores the original-channel alias: even if ChannelVectors arrived with a
// separately materialized original table (version-0 archives persisted the
// duplicate), it leaves pointing at the main store.
func (c *Corpus) adoptStores() {
	c.store = store.FromVectors(c.Vectors)
	c.Vectors = c.store.Views()
	if c.ChannelVectors == nil {
		return
	}
	c.channelStores = make(map[img.Channel]*store.FeatureStore, len(c.ChannelVectors))
	for ch, vs := range c.ChannelVectors {
		if ch == img.ChannelOriginal {
			continue
		}
		st := store.FromVectors(vs)
		c.channelStores[ch] = st
		c.ChannelVectors[ch] = st.Views()
	}
	if _, ok := c.ChannelVectors[img.ChannelOriginal]; ok {
		c.channelStores[img.ChannelOriginal] = c.store
		c.ChannelVectors[img.ChannelOriginal] = c.Vectors
	}
}

// Store returns the corpus's flat feature store (the main 37-d features, or
// the raw vectors in vector mode), indexed by image ID.
func (c *Corpus) Store() *store.FeatureStore { return c.store }

// ChannelStore returns the flat feature store of one MV channel, or nil if
// the corpus was built without channels. The original channel returns the
// main store.
func (c *Corpus) ChannelStore(ch img.Channel) *store.FeatureStore { return c.channelStores[ch] }

// ChannelStores returns the per-channel store table (nil without channels).
// The map must not be modified.
func (c *Corpus) ChannelStores() map[img.Channel]*store.FeatureStore { return c.channelStores }

// Options configures Build.
type Options struct {
	// Seed drives per-image render jitter.
	Seed int64
	// KeepImages retains rendered rasters on the corpus (memory for a full
	// 15k corpus: ~100 MB; off by default).
	KeepImages bool
	// WithChannels also extracts features under the three non-original MV
	// channels, quadrupling extraction work. Required by the image-mode MV
	// baseline.
	WithChannels bool
	// Parallelism bounds the feature-extraction worker count (<= 0 uses one
	// worker per CPU). Rendering stays serial because it consumes the
	// build's random stream, so the corpus is byte-identical at every
	// worker count.
	Parallelism int
}

// Build renders the spec and extracts normalized features for every image.
func Build(spec Spec, opts Options) *Corpus {
	c, err := BuildCtx(context.Background(), spec, opts)
	if err != nil {
		panic(fmt.Sprintf("dataset: build: %v", err)) // unreachable: ctx never cancels
	}
	return c
}

// BuildCtx is Build with cancellation. The expensive half of the corpus
// build — 37-d feature extraction per image (×4 with channels) — runs on
// opts.Parallelism workers fed by a serial rendering producer, so the
// per-image random jitter stream is consumed in exactly the serial order and
// the resulting corpus is byte-identical at every worker count.
func BuildCtx(ctx context.Context, spec Spec, opts Options) (*Corpus, error) {
	total := spec.TotalImages()
	if total == 0 {
		panic("dataset: spec generates no images")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	c := &Corpus{
		bySubconcept: make(map[string][]int),
		byCategory:   make(map[string][]int),
	}
	raws := make([]vec.Vector, total)
	channelRaws := make(map[img.Channel][]vec.Vector)
	if opts.WithChannels {
		for _, ch := range img.AllChannels[1:] {
			channelRaws[ch] = make([]vec.Vector, total)
		}
	}
	if opts.KeepImages {
		c.Images = make([]*img.Image, total)
	}

	// Extraction workers drain a bounded queue so at most ~2 images per
	// worker are in flight; results land in index-addressed slots.
	p := par.N(opts.Parallelism)
	type job struct {
		idx int
		im  *img.Image
	}
	jobs := make(chan job, 2*p)
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				raws[j.idx] = feature.Extract(j.im)
				if opts.WithChannels {
					for _, ch := range img.AllChannels[1:] {
						channelRaws[ch][j.idx] = feature.ExtractChannel(j.im, ch)
					}
				}
				if opts.KeepImages {
					c.Images[j.idx] = j.im
				}
			}
		}()
	}

	id := 0
render:
	for _, cat := range spec.Categories {
		for _, sub := range cat.Subconcepts {
			key := Key(cat.Name, sub.Name)
			for i := 0; i < sub.Count; i++ {
				if ctx.Err() != nil {
					break render
				}
				im := Render(sub.Appearance, rng)
				c.Infos = append(c.Infos, Info{ID: id, Category: cat.Name, Subconcept: key})
				c.bySubconcept[key] = append(c.bySubconcept[key], id)
				c.byCategory[cat.Name] = append(c.byCategory[cat.Name], id)
				jobs <- job{idx: id, im: im}
				id++
			}
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	c.Extractor = feature.NewExtractor(raws)
	c.Vectors = make([]vec.Vector, len(raws))
	if err := par.Do(ctx, len(raws), opts.Parallelism, func(i int) error {
		c.Vectors[i] = c.Extractor.Normalize(raws[i])
		return nil
	}); err != nil {
		return nil, err
	}
	if opts.WithChannels {
		c.ChannelVectors = map[img.Channel][]vec.Vector{img.ChannelOriginal: c.Vectors}
		for _, ch := range img.AllChannels[1:] {
			// Each channel gets its own normalizer: a viewpoint is a full
			// feature representation of the database (French & Jin).
			ex := feature.NewExtractor(channelRaws[ch])
			vs := make([]vec.Vector, total)
			if err := par.Do(ctx, total, opts.Parallelism, func(i int) error {
				vs[i] = ex.Normalize(channelRaws[ch][i])
				return nil
			}); err != nil {
				return nil, err
			}
			c.ChannelVectors[ch] = vs
		}
	}
	c.adoptStores()
	return c, nil
}

// BuildVectors synthesizes a vector-mode corpus: each subconcept is a
// Gaussian blob in the unit hypercube of the given dimensionality. Ground
// truth bookkeeping is identical to image mode, so every engine and baseline
// runs unchanged; only the feature pipeline is bypassed. Used by the
// Fig 10/11 database-size sweeps.
func BuildVectors(spec Spec, dim int, spread float64, seed int64) *Corpus {
	if dim <= 0 {
		panic(fmt.Sprintf("dataset: invalid dim %d", dim))
	}
	if spread <= 0 {
		spread = 0.02
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Corpus{
		bySubconcept: make(map[string][]int),
		byCategory:   make(map[string][]int),
	}
	id := 0
	for _, cat := range spec.Categories {
		for _, sub := range cat.Subconcepts {
			key := Key(cat.Name, sub.Name)
			center := make(vec.Vector, dim)
			for j := range center {
				center[j] = rng.Float64()
			}
			for i := 0; i < sub.Count; i++ {
				p := center.Clone()
				for j := range p {
					p[j] += rng.NormFloat64() * spread
				}
				c.Vectors = append(c.Vectors, p)
				c.Infos = append(c.Infos, Info{ID: id, Category: cat.Name, Subconcept: key})
				c.bySubconcept[key] = append(c.bySubconcept[key], id)
				c.byCategory[cat.Name] = append(c.byCategory[cat.Name], id)
				id++
			}
		}
	}
	if len(c.Vectors) == 0 {
		panic("dataset: spec generates no images")
	}
	c.adoptStores()
	return c
}

// Reassemble reconstructs a corpus from persisted parts: ground-truth infos,
// the vector table (usually recovered from an RFS snapshot), and optional
// per-channel vectors. It validates the result before returning.
func Reassemble(infos []Info, vectors []vec.Vector, channels map[img.Channel][]vec.Vector) (*Corpus, error) {
	c := &Corpus{
		Infos:          infos,
		Vectors:        vectors,
		ChannelVectors: channels,
		bySubconcept:   make(map[string][]int),
		byCategory:     make(map[string][]int),
	}
	for _, info := range infos {
		c.bySubconcept[info.Subconcept] = append(c.bySubconcept[info.Subconcept], info.ID)
		c.byCategory[info.Category] = append(c.byCategory[info.Category], info.ID)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c.adoptStores()
	return c, nil
}

// ReassembleStore is Reassemble for a corpus whose vectors already live in a
// flat feature store — an imported embedding batch or a decoded archive. The
// store is adopted as-is, preserving its precision tag and any native
// float32 backing, instead of being copied through FromVectors; the caller
// must not mutate it afterwards. Channel vectors (an image-mode concept)
// don't apply to adopted stores.
func ReassembleStore(infos []Info, st *store.FeatureStore) (*Corpus, error) {
	c := &Corpus{
		Infos:        infos,
		Vectors:      st.Views(),
		bySubconcept: make(map[string][]int),
		byCategory:   make(map[string][]int),
	}
	for _, info := range infos {
		c.bySubconcept[info.Subconcept] = append(c.bySubconcept[info.Subconcept], info.ID)
		c.byCategory[info.Category] = append(c.byCategory[info.Category], info.ID)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c.store = st
	return c, nil
}

// Len returns the number of images in the corpus.
func (c *Corpus) Len() int { return len(c.Infos) }

// SubconceptOf returns the subconcept key of an image, or "" for an unknown
// ID.
func (c *Corpus) SubconceptOf(id int) string {
	if id < 0 || id >= len(c.Infos) {
		return ""
	}
	return c.Infos[id].Subconcept
}

// CategoryOf returns the category of an image, or "" for an unknown ID.
func (c *Corpus) CategoryOf(id int) string {
	if id < 0 || id >= len(c.Infos) {
		return ""
	}
	return c.Infos[id].Category
}

// SubconceptIDs returns the image IDs of one subconcept (shared slice; do not
// modify).
func (c *Corpus) SubconceptIDs(key string) []int { return c.bySubconcept[key] }

// CategoryIDs returns the image IDs of one category (shared slice; do not
// modify).
func (c *Corpus) CategoryIDs(name string) []int { return c.byCategory[name] }

// Subconcepts returns all subconcept keys present in the corpus.
func (c *Corpus) Subconcepts() []string {
	out := make([]string, 0, len(c.bySubconcept))
	for k := range c.bySubconcept {
		out = append(out, k)
	}
	return out
}

// Categories returns all category names present in the corpus.
func (c *Corpus) Categories() []string {
	out := make([]string, 0, len(c.byCategory))
	for k := range c.byCategory {
		out = append(out, k)
	}
	return out
}

// RelevantSet returns the ground-truth image set of a query: the union of its
// target subconcepts.
func (c *Corpus) RelevantSet(q Query) map[int]bool {
	rel := make(map[int]bool)
	for _, t := range q.Targets {
		for _, id := range c.bySubconcept[t] {
			rel[id] = true
		}
	}
	return rel
}

// GroundTruthSize returns |RelevantSet(q)|. The paper retrieves exactly this
// many images per query, which makes precision equal recall.
func (c *Corpus) GroundTruthSize(q Query) int {
	n := 0
	for _, t := range q.Targets {
		n += len(c.bySubconcept[t])
	}
	return n
}

// Validate checks internal consistency (index maps vs infos, vector count,
// contiguous IDs) and returns the first problem found.
func (c *Corpus) Validate() error {
	if len(c.Vectors) != len(c.Infos) {
		return fmt.Errorf("dataset: %d vectors for %d infos", len(c.Vectors), len(c.Infos))
	}
	for i, info := range c.Infos {
		if info.ID != i {
			return fmt.Errorf("dataset: info %d has ID %d", i, info.ID)
		}
		found := false
		for _, id := range c.bySubconcept[info.Subconcept] {
			if id == i {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("dataset: image %d missing from subconcept index %q", i, info.Subconcept)
		}
	}
	var indexed int
	for _, ids := range c.bySubconcept {
		indexed += len(ids)
	}
	if indexed != len(c.Infos) {
		return fmt.Errorf("dataset: subconcept index holds %d entries for %d images", indexed, len(c.Infos))
	}
	return nil
}
