package dataset

import (
	"math/rand"
	"strings"
	"testing"

	"qdcbir/internal/feature"
	"qdcbir/internal/img"
	"qdcbir/internal/kmeans"
	"qdcbir/internal/vec"
)

func TestPaperQueriesShape(t *testing.T) {
	qs := PaperQueries()
	if len(qs) != 11 {
		t.Fatalf("%d queries, Table 1 lists 11", len(qs))
	}
	for _, q := range qs {
		if len(q.Targets) < 2 {
			t.Errorf("query %q has %d targets; every Table-1 query has ≥2 subconcepts", q.Name, len(q.Targets))
		}
		for _, tgt := range q.Targets {
			if !strings.Contains(tgt, "/") {
				t.Errorf("target %q not in category/subconcept form", tgt)
			}
		}
	}
	// The three computer queries are nested general → specific.
	byName := map[string]Query{}
	for _, q := range qs {
		byName[q.Name] = q
	}
	comp := byName["Computer"].Targets
	pc := byName["Personal computer"].Targets
	lap := byName["Laptop"].Targets
	if !(len(comp) > len(pc) && len(pc) > len(lap)) {
		t.Errorf("computer query nesting broken: %d/%d/%d", len(comp), len(pc), len(lap))
	}
	set := func(ts []string) map[string]bool {
		m := map[string]bool{}
		for _, s := range ts {
			m[s] = true
		}
		return m
	}
	compSet, pcSet := set(comp), set(pc)
	for _, s := range lap {
		if !pcSet[s] || !compSet[s] {
			t.Errorf("laptop target %q not nested in broader queries", s)
		}
	}
}

func TestPaperSpecScale(t *testing.T) {
	s := PaperSpec(1)
	if got := len(s.Categories); got < 140 || got > 160 {
		t.Errorf("%d categories, paper uses ~150", got)
	}
	total := s.TotalImages()
	if total < 13000 || total > 16000 {
		t.Errorf("%d total images, paper uses 15,000", total)
	}
}

func TestSpecDeterminism(t *testing.T) {
	a := SmallSpec(7, 20, 400)
	b := SmallSpec(7, 20, 400)
	if len(a.Categories) != len(b.Categories) {
		t.Fatal("category counts differ")
	}
	for i := range a.Categories {
		if a.Categories[i].Name != b.Categories[i].Name {
			t.Fatalf("category %d name differs", i)
		}
		for j := range a.Categories[i].Subconcepts {
			sa, sb := a.Categories[i].Subconcepts[j], b.Categories[i].Subconcepts[j]
			if sa.Appearance != sb.Appearance {
				t.Fatalf("appearance for %s/%s differs across same-seed specs",
					a.Categories[i].Name, sa.Name)
			}
		}
	}
	c := SmallSpec(8, 20, 400)
	different := false
	for i := range a.Categories {
		for j := range a.Categories[i].Subconcepts {
			// Filler categories may have differing subconcept counts across
			// seeds, which itself proves seed sensitivity.
			if j >= len(c.Categories[i].Subconcepts) {
				different = true
				continue
			}
			if a.Categories[i].Subconcepts[j].Appearance != c.Categories[i].Subconcepts[j].Appearance {
				different = true
			}
		}
	}
	if !different {
		t.Error("different seeds produced identical appearances")
	}
}

func TestSmallSpecClamps(t *testing.T) {
	s := SmallSpec(1, 2, 1) // below minimums
	if len(s.Categories) < 9 {
		t.Errorf("categories clamped to %d, need at least the 9 query categories", len(s.Categories))
	}
	if s.TotalImages() < len(s.Categories) {
		t.Errorf("total %d below one per category", s.TotalImages())
	}
}

func TestRenderDeterministicPerSeed(t *testing.T) {
	a := randomAppearance(rand.New(rand.NewSource(3)))
	im1 := Render(a, rand.New(rand.NewSource(9)))
	im2 := Render(a, rand.New(rand.NewSource(9)))
	for i := range im1.Pix {
		if im1.Pix[i] != im2.Pix[i] {
			t.Fatal("same-seed renders differ")
		}
	}
	im3 := Render(a, rand.New(rand.NewSource(10)))
	same := true
	for i := range im1.Pix {
		if im1.Pix[i] != im3.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different-seed renders identical (no jitter)")
	}
}

func TestHSVToRGBRoundTrip(t *testing.T) {
	cases := []struct {
		h, s, v float64
		want    img.RGB
	}{
		{0, 1, 1, img.RGB{R: 255, G: 0, B: 0}},
		{120, 1, 1, img.RGB{R: 0, G: 255, B: 0}},
		{240, 1, 1, img.RGB{R: 0, G: 0, B: 255}},
		{0, 0, 1, img.RGB{R: 255, G: 255, B: 255}},
		{0, 0, 0, img.RGB{R: 0, G: 0, B: 0}},
	}
	for _, c := range cases {
		if got := hsvToRGB(c.h, c.s, c.v); got != c.want {
			t.Errorf("hsvToRGB(%v,%v,%v) = %v want %v", c.h, c.s, c.v, got, c.want)
		}
	}
	// Negative hue wraps.
	if got := hsvToRGB(-360, 1, 1); got != (img.RGB{R: 255, G: 0, B: 0}) {
		t.Errorf("wrapped hue = %v", got)
	}
}

func buildSmall(t *testing.T, opts Options) *Corpus {
	t.Helper()
	spec := SmallSpec(5, 12, 360)
	c := Build(spec, opts)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return c
}

func TestBuildBasics(t *testing.T) {
	c := buildSmall(t, Options{Seed: 1})
	if c.Len() == 0 {
		t.Fatal("empty corpus")
	}
	if len(c.Vectors) != c.Len() {
		t.Fatalf("%d vectors for %d images", len(c.Vectors), c.Len())
	}
	for i, v := range c.Vectors {
		if len(v) != feature.Dim {
			t.Fatalf("vector %d has dim %d", i, len(v))
		}
	}
	if c.Images != nil {
		t.Error("images kept without KeepImages")
	}
	if c.ChannelVectors != nil {
		t.Error("channel vectors built without WithChannels")
	}
	// Ground-truth accessors agree.
	for _, info := range c.Infos[:20] {
		if c.SubconceptOf(info.ID) != info.Subconcept {
			t.Errorf("SubconceptOf(%d) = %q", info.ID, c.SubconceptOf(info.ID))
		}
		if c.CategoryOf(info.ID) != info.Category {
			t.Errorf("CategoryOf(%d) = %q", info.ID, c.CategoryOf(info.ID))
		}
	}
	if c.SubconceptOf(-1) != "" || c.SubconceptOf(c.Len()) != "" {
		t.Error("out-of-range lookups should return empty")
	}
}

func TestBuildKeepImagesAndChannels(t *testing.T) {
	c := buildSmall(t, Options{Seed: 2, KeepImages: true, WithChannels: true})
	if len(c.Images) != c.Len() {
		t.Fatalf("%d images kept for %d entries", len(c.Images), c.Len())
	}
	if len(c.ChannelVectors) != 4 {
		t.Fatalf("%d channels", len(c.ChannelVectors))
	}
	for ch, vs := range c.ChannelVectors {
		if len(vs) != c.Len() {
			t.Errorf("channel %v has %d vectors", ch, len(vs))
		}
	}
	// Original channel aliases the main vectors.
	if &c.ChannelVectors[img.ChannelOriginal][0][0] != &c.Vectors[0][0] {
		t.Error("original channel should reuse main vectors")
	}
	// Non-original channels are genuinely different representations.
	d := vec.L2(c.ChannelVectors[img.ChannelNegative][0], c.Vectors[0])
	if d == 0 {
		t.Error("negative-channel vector identical to original")
	}
}

// Central geometry property: images of one subconcept cluster tightly, while
// different subconcepts of the same category form separated clusters.
func TestSubconceptClusterGeometry(t *testing.T) {
	c := buildSmall(t, Options{Seed: 3})
	birds := []string{Key("bird", "eagle"), Key("bird", "owl"), Key("bird", "sparrow")}
	centroids := make(map[string]vec.Vector)
	var interOK, checks int
	for _, key := range birds {
		ids := c.SubconceptIDs(key)
		if len(ids) < 5 {
			t.Fatalf("subconcept %s has only %d images", key, len(ids))
		}
		var vs []vec.Vector
		for _, id := range ids {
			vs = append(vs, c.Vectors[id])
		}
		centroids[key] = vec.Centroid(vs)
		// Mean intra-cluster distance.
		var intra float64
		for _, v := range vs {
			intra += vec.L2(v, centroids[key])
		}
		intra /= float64(len(vs))
		// Compare against the distance to the other bird subconcepts.
		for _, other := range birds {
			if other == key || centroids[other] == nil {
				continue
			}
			checks++
			if vec.L2(centroids[key], centroids[other]) > 2*intra {
				interOK++
			}
		}
	}
	if checks > 0 && interOK < checks {
		t.Errorf("only %d/%d subconcept pairs separated by >2x intra spread", interOK, checks)
	}
}

// k-means on one category's images should recover the subconcept partition —
// the Figure-1 phenomenon that drives the whole paper.
func TestKMeansRecoversSubconcepts(t *testing.T) {
	c := buildSmall(t, Options{Seed: 4})
	ids := c.CategoryIDs("car")
	var pts []vec.Vector
	var labels []string
	for _, id := range ids {
		pts = append(pts, c.Vectors[id])
		labels = append(labels, c.SubconceptOf(id))
	}
	distinct := map[string]bool{}
	for _, l := range labels {
		distinct[l] = true
	}
	r := kmeans.Cluster(pts, len(distinct), kmeans.Config{MaxIter: 100}, rand.New(rand.NewSource(5)))
	// Purity: each cluster is dominated by a single subconcept.
	var pure, total int
	for cl := 0; cl < r.K; cl++ {
		counts := map[string]int{}
		members := r.Members(cl)
		for _, m := range members {
			counts[labels[m]]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		pure += best
		total += len(members)
	}
	if total == 0 {
		t.Fatal("no car images")
	}
	if purity := float64(pure) / float64(total); purity < 0.85 {
		t.Errorf("cluster purity %.2f < 0.85 — subconcepts not separable", purity)
	}
}

func TestRelevantSetAndGroundTruthSize(t *testing.T) {
	c := buildSmall(t, Options{Seed: 6})
	q := Query{Name: "Bird", Targets: []string{Key("bird", "eagle"), Key("bird", "owl"), Key("bird", "sparrow")}}
	rel := c.RelevantSet(q)
	if len(rel) != c.GroundTruthSize(q) {
		t.Errorf("RelevantSet %d != GroundTruthSize %d", len(rel), c.GroundTruthSize(q))
	}
	for id := range rel {
		if c.CategoryOf(id) != "bird" {
			t.Errorf("relevant image %d is %q", id, c.CategoryOf(id))
		}
	}
	// All bird subconcept IDs are included.
	for _, tgt := range q.Targets {
		for _, id := range c.SubconceptIDs(tgt) {
			if !rel[id] {
				t.Errorf("id %d of %s missing from relevant set", id, tgt)
			}
		}
	}
}

func TestBuildVectors(t *testing.T) {
	spec := SmallSpec(7, 15, 600)
	c := BuildVectors(spec, 37, 0.02, 11)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.Len() != spec.TotalImages() {
		t.Fatalf("Len %d != spec total %d", c.Len(), spec.TotalImages())
	}
	for _, v := range c.Vectors {
		if len(v) != 37 {
			t.Fatalf("vector dim %d", len(v))
		}
	}
	// Blob geometry: a subconcept's points hug their centroid.
	for _, key := range c.Subconcepts()[:3] {
		ids := c.SubconceptIDs(key)
		var vs []vec.Vector
		for _, id := range ids {
			vs = append(vs, c.Vectors[id])
		}
		if len(vs) < 2 {
			continue
		}
		ctr := vec.Centroid(vs)
		for _, v := range vs {
			if vec.L2(v, ctr) > 1.0 {
				t.Errorf("subconcept %s point %v far from centroid", key, vec.L2(v, ctr))
			}
		}
	}
}

func TestBuildVectorsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim<=0")
		}
	}()
	BuildVectors(SmallSpec(1, 10, 100), 0, 0.02, 1)
}

func TestSubconceptsListComplete(t *testing.T) {
	c := buildSmall(t, Options{Seed: 8})
	subs := c.Subconcepts()
	seen := map[string]bool{}
	for _, s := range subs {
		seen[s] = true
	}
	for _, info := range c.Infos {
		if !seen[info.Subconcept] {
			t.Fatalf("subconcept %q missing from listing", info.Subconcept)
		}
	}
}
