package kmeans

import (
	"math"
	"math/rand"
	"testing"

	"qdcbir/internal/vec"
)

// blob generates n points around center with the given spread.
func blob(rng *rand.Rand, center vec.Vector, n int, spread float64) []vec.Vector {
	out := make([]vec.Vector, n)
	for i := range out {
		p := center.Clone()
		for j := range p {
			p[j] += rng.NormFloat64() * spread
		}
		out[i] = p
	}
	return out
}

func TestClusterSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := []vec.Vector{{0, 0}, {10, 10}, {-10, 10}}
	var pts []vec.Vector
	for _, c := range centers {
		pts = append(pts, blob(rng, c, 30, 0.5)...)
	}
	r := Cluster(pts, 3, Config{}, rng)
	if r.K != 3 {
		t.Fatalf("K = %d", r.K)
	}
	// Every blob must be pure: all 30 members share one label.
	for b := 0; b < 3; b++ {
		label := r.Assign[b*30]
		for i := b * 30; i < (b+1)*30; i++ {
			if r.Assign[i] != label {
				t.Fatalf("blob %d split: point %d has label %d, expected %d", b, i, r.Assign[i], label)
			}
		}
	}
	// Each centroid lies near one of the true centers.
	for _, ctr := range r.Centroids {
		_, d := vec.NearestIndex(ctr, centers, vec.L2)
		if d > 0.5 {
			t.Errorf("centroid %v far from every true center (d=%v)", ctr, d)
		}
	}
}

func TestClusterInvalidInputsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"k=0":   func() { Cluster([]vec.Vector{{1}}, 0, Config{}, rand.New(rand.NewSource(1))) },
		"empty": func() { Cluster(nil, 2, Config{}, rand.New(rand.NewSource(1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestClusterKGreaterThanN(t *testing.T) {
	pts := []vec.Vector{{1, 1}, {2, 2}}
	r := Cluster(pts, 5, Config{}, rand.New(rand.NewSource(2)))
	if r.K != 2 {
		t.Fatalf("K = %d, want one cluster per point", r.K)
	}
	for i := range pts {
		if r.Assign[i] != i {
			t.Errorf("Assign[%d] = %d", i, r.Assign[i])
		}
		if !r.Centroids[i].Equal(pts[i]) {
			t.Errorf("Centroid[%d] = %v", i, r.Centroids[i])
		}
	}
	// Centroids must be copies, not aliases.
	r.Centroids[0][0] = 99
	if pts[0][0] == 99 {
		t.Error("centroid aliases input point")
	}
}

func TestClusterSinglePoint(t *testing.T) {
	r := Cluster([]vec.Vector{{3, 4}}, 1, Config{}, rand.New(rand.NewSource(3)))
	if r.K != 1 || !r.Centroids[0].Equal(vec.Vector{3, 4}) || r.Inertia != 0 {
		t.Fatalf("bad single-point result: %+v", r)
	}
}

func TestClusterIdenticalPoints(t *testing.T) {
	pts := make([]vec.Vector, 20)
	for i := range pts {
		pts[i] = vec.Vector{5, 5}
	}
	r := Cluster(pts, 3, Config{}, rand.New(rand.NewSource(4)))
	if r.Inertia != 0 {
		t.Errorf("inertia = %v on identical points", r.Inertia)
	}
	for _, c := range r.Centroids {
		if !c.Equal(vec.Vector{5, 5}) {
			t.Errorf("centroid drifted: %v", c)
		}
	}
}

func TestAssignmentsAreNearestCentroid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := blob(rng, vec.Vector{0, 0, 0}, 100, 3)
	r := Cluster(pts, 4, Config{}, rng)
	for i, p := range pts {
		want, _ := vec.NearestIndex(p, r.Centroids, vec.SqL2)
		got := r.Assign[i]
		// Ties can legitimately differ; accept equal distance.
		if got != want && vec.SqL2(p, r.Centroids[got]) > vec.SqL2(p, r.Centroids[want])+1e-12 {
			t.Errorf("point %d assigned to %d but %d is closer", i, got, want)
		}
	}
}

func TestCentroidsAreClusterMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := blob(rng, vec.Vector{1, 2}, 60, 2)
	r := Cluster(pts, 3, Config{MaxIter: 100}, rng)
	for c := 0; c < r.K; c++ {
		members := r.Members(c)
		if len(members) == 0 {
			continue
		}
		var mv []vec.Vector
		for _, i := range members {
			mv = append(mv, pts[i])
		}
		mean := vec.Centroid(mv)
		if vec.L2(mean, r.Centroids[c]) > 1e-6 {
			t.Errorf("centroid %d = %v, member mean = %v", c, r.Centroids[c], mean)
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pts []vec.Vector
	for i := 0; i < 4; i++ {
		pts = append(pts, blob(rng, vec.Vector{float64(i * 8), 0}, 25, 0.7)...)
	}
	var prev = math.Inf(1)
	for _, k := range []int{1, 2, 4} {
		r := Cluster(pts, k, Config{MaxIter: 100}, rand.New(rand.NewSource(8)))
		if r.Inertia > prev+1e-9 {
			t.Errorf("inertia increased at k=%d: %v > %v", k, r.Inertia, prev)
		}
		prev = r.Inertia
	}
}

func TestDeterminismWithSameSeed(t *testing.T) {
	rng1 := rand.New(rand.NewSource(9))
	rng2 := rand.New(rand.NewSource(9))
	pts := blob(rand.New(rand.NewSource(10)), vec.Vector{0, 0}, 50, 5)
	r1 := Cluster(pts, 4, Config{}, rng1)
	r2 := Cluster(pts, 4, Config{}, rng2)
	for i := range r1.Assign {
		if r1.Assign[i] != r2.Assign[i] {
			t.Fatalf("nondeterministic assignment at %d", i)
		}
	}
}

func TestSizesAndMembersConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := blob(rng, vec.Vector{0, 0}, 40, 4)
	r := Cluster(pts, 5, Config{}, rng)
	sizes := r.Sizes()
	var total int
	for c, s := range sizes {
		if got := len(r.Members(c)); got != s {
			t.Errorf("cluster %d: Sizes=%d Members=%d", c, s, got)
		}
		total += s
	}
	if total != len(pts) {
		t.Errorf("sizes sum to %d, want %d", total, len(pts))
	}
}

func TestNearestToCentroids(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	centers := []vec.Vector{{0, 0}, {20, 20}}
	pts := append(blob(rng, centers[0], 20, 1), blob(rng, centers[1], 20, 1)...)
	r := Cluster(pts, 2, Config{}, rng)
	reps := NearestToCentroids(pts, r)
	if len(reps) != 2 {
		t.Fatalf("got %d representatives", len(reps))
	}
	for _, rep := range reps {
		c := r.Assign[rep]
		for i, p := range pts {
			if r.Assign[i] == c && vec.SqL2(p, r.Centroids[c]) < vec.SqL2(pts[rep], r.Centroids[c])-1e-12 {
				t.Errorf("point %d closer to centroid %d than chosen rep %d", i, c, rep)
			}
		}
	}
}

func TestEmptyClusterReseeding(t *testing.T) {
	// Duplicated points plus one outlier make empty clusters likely; the run
	// must still terminate with valid assignments.
	pts := make([]vec.Vector, 0, 21)
	for i := 0; i < 20; i++ {
		pts = append(pts, vec.Vector{0, 0})
	}
	pts = append(pts, vec.Vector{100, 100})
	r := Cluster(pts, 3, Config{MaxIter: 30}, rand.New(rand.NewSource(13)))
	for i, a := range r.Assign {
		if a < 0 || a >= r.K {
			t.Fatalf("invalid assignment %d for point %d", a, i)
		}
	}
	// The outlier should sit alone near its own centroid.
	out := r.Assign[20]
	if vec.L2(r.Centroids[out], vec.Vector{100, 100}) > 1e-6 {
		t.Errorf("outlier centroid = %v", r.Centroids[out])
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxIter != 50 || c.Tol != 1e-6 {
		t.Errorf("defaults = %+v", c)
	}
	c = Config{MaxIter: 7, Tol: 0.5}.withDefaults()
	if c.MaxIter != 7 || c.Tol != 0.5 {
		t.Errorf("explicit config overridden: %+v", c)
	}
}

// Property: Lloyd iterations never increase inertia (checked by running with
// increasing MaxIter on the same seed).
func TestInertiaMonotoneInIterations(t *testing.T) {
	pts := blob(rand.New(rand.NewSource(14)), vec.Vector{0, 0, 0, 0}, 120, 6)
	prev := math.Inf(1)
	for _, iters := range []int{1, 2, 5, 20} {
		r := Cluster(pts, 6, Config{MaxIter: iters, Tol: 1e-300}, rand.New(rand.NewSource(15)))
		if r.Inertia > prev+1e-6 {
			t.Errorf("inertia increased at MaxIter=%d: %v > %v", iters, r.Inertia, prev)
		}
		prev = r.Inertia
	}
}
