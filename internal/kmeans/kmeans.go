// Package kmeans implements unsupervised k-means clustering with k-means++
// seeding, Lloyd iterations, and empty-cluster reseeding.
//
// The paper uses "an unsupervised k-mean clustering algorithm" (§3.1) twice:
// to split each RFS leaf into subclusters before representative selection,
// and again at every internal node over the aggregated child representatives.
// The MARS-style multipoint-query baseline also clusters the relevant images
// from user feedback. Both callers inject a *rand.Rand so results are
// reproducible.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"qdcbir/internal/vec"
)

// Config controls a clustering run. The zero value is completed with sane
// defaults by Cluster.
type Config struct {
	// MaxIter bounds the Lloyd iterations. Default 50.
	MaxIter int
	// Tol stops iteration early when no centroid moves more than Tol
	// (Euclidean). Default 1e-6.
	Tol float64
}

func (c Config) withDefaults() Config {
	if c.MaxIter <= 0 {
		c.MaxIter = 50
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	return c
}

// Result is the output of a clustering run.
type Result struct {
	K         int          // actual number of clusters produced (≤ requested k)
	Centroids []vec.Vector // len K
	Assign    []int        // Assign[i] is the cluster of points[i], in [0, K)
	Inertia   float64      // sum of squared distances to assigned centroids
	Iters     int          // Lloyd iterations performed
}

// Members returns the indices of the points assigned to cluster c.
func (r *Result) Members(c int) []int {
	var m []int
	for i, a := range r.Assign {
		if a == c {
			m = append(m, i)
		}
	}
	return m
}

// Sizes returns the number of points in each cluster.
func (r *Result) Sizes() []int {
	s := make([]int, r.K)
	for _, a := range r.Assign {
		s[a]++
	}
	return s
}

// Cluster partitions points into at most k clusters. If k >= len(points) each
// point becomes its own cluster. It panics on k < 1 or an empty point set.
func Cluster(points []vec.Vector, k int, cfg Config, rng *rand.Rand) *Result {
	if k < 1 {
		panic(fmt.Sprintf("kmeans: invalid k=%d", k))
	}
	if len(points) == 0 {
		panic("kmeans: empty point set")
	}
	cfg = cfg.withDefaults()

	if k >= len(points) {
		// Degenerate case: every point is its own centroid.
		r := &Result{K: len(points), Assign: make([]int, len(points))}
		for i, p := range points {
			r.Centroids = append(r.Centroids, p.Clone())
			r.Assign[i] = i
		}
		return r
	}

	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	counts := make([]int, k)

	var iters int
	for iters = 1; iters <= cfg.MaxIter; iters++ {
		// Assignment step.
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centroids {
				if d := vec.SqL2(p, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
		}
		// Update step.
		dim := len(points[0])
		sums := make([]vec.Vector, k)
		for c := range sums {
			sums[c] = make(vec.Vector, dim)
			counts[c] = 0
		}
		for i, p := range points {
			sums[assign[i]].AddInPlace(p)
			counts[assign[i]]++
		}
		var maxMove float64
		for c := range centroids {
			if counts[c] == 0 {
				// Empty cluster: reseed at the point farthest from its
				// current centroid to break the degeneracy.
				centroids[c] = farthestPoint(points, centroids, assign).Clone()
				maxMove = math.Inf(1)
				continue
			}
			sums[c].ScaleInPlace(1 / float64(counts[c]))
			move := vec.L2(centroids[c], sums[c])
			if move > maxMove {
				maxMove = move
			}
			centroids[c] = sums[c]
		}
		if maxMove <= cfg.Tol {
			break
		}
	}
	if iters > cfg.MaxIter {
		iters = cfg.MaxIter
	}

	var inertia float64
	for i, p := range points {
		inertia += vec.SqL2(p, centroids[assign[i]])
	}
	return &Result{K: k, Centroids: centroids, Assign: assign, Inertia: inertia, Iters: iters}
}

// seedPlusPlus performs k-means++ initialization: the first centroid is
// uniform-random, subsequent centroids are drawn with probability
// proportional to squared distance from the nearest chosen centroid.
func seedPlusPlus(points []vec.Vector, k int, rng *rand.Rand) []vec.Vector {
	centroids := make([]vec.Vector, 0, k)
	centroids = append(centroids, points[rng.Intn(len(points))].Clone())
	d2 := make([]float64, len(points))
	for i, p := range points {
		d2[i] = vec.SqL2(p, centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next int
		if total == 0 {
			// All remaining points coincide with a centroid; pick uniformly.
			next = rng.Intn(len(points))
		} else {
			target := rng.Float64() * total
			var acc float64
			for i, d := range d2 {
				acc += d
				if acc >= target {
					next = i
					break
				}
			}
		}
		c := points[next].Clone()
		centroids = append(centroids, c)
		for i, p := range points {
			if d := vec.SqL2(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// farthestPoint returns the point with the largest distance to its assigned
// centroid; used to reseed empty clusters.
func farthestPoint(points []vec.Vector, centroids []vec.Vector, assign []int) vec.Vector {
	best, bestD := 0, -1.0
	for i, p := range points {
		if d := vec.SqL2(p, centroids[assign[i]]); d > bestD {
			best, bestD = i, d
		}
	}
	return points[best]
}

// NearestToCentroids returns, for each centroid, the index of the member
// point closest to it (the paper's representative-image rule: "the images
// nearest these k-mean-cluster centers are selected as the representative
// images"). Clusters with no members yield no entry.
func NearestToCentroids(points []vec.Vector, r *Result) []int {
	best := make([]int, r.K)
	bestD := make([]float64, r.K)
	for c := range best {
		best[c] = -1
		bestD[c] = math.Inf(1)
	}
	for i, p := range points {
		c := r.Assign[i]
		if d := vec.SqL2(p, r.Centroids[c]); d < bestD[c] {
			best[c], bestD[c] = i, d
		}
	}
	out := best[:0]
	for _, i := range best {
		if i >= 0 {
			out = append(out, i)
		}
	}
	return out
}
