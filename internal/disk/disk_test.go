package disk

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Reads() != 0 || c.Accesses() != 0 {
		t.Fatal("zero value not zeroed")
	}
	for i := 0; i < 5; i++ {
		if hit := c.Access(PageID(i % 2)); hit {
			t.Error("Counter reported a cache hit")
		}
	}
	if c.Reads() != 5 || c.Accesses() != 5 {
		t.Errorf("reads=%d accesses=%d", c.Reads(), c.Accesses())
	}
	c.Reset()
	if c.Reads() != 0 {
		t.Error("Reset failed")
	}
}

func TestLRUCacheHitsAndMisses(t *testing.T) {
	c := NewLRUCache(2)
	if hit := c.Access(1); hit {
		t.Error("first access hit")
	}
	if hit := c.Access(1); !hit {
		t.Error("second access missed")
	}
	c.Access(2) // miss, cache = {1,2}
	c.Access(3) // miss, evicts 1, cache = {2,3}
	if hit := c.Access(1); hit {
		t.Error("evicted page still cached")
	}
	if c.Reads() != 4 {
		t.Errorf("reads = %d, want 4", c.Reads())
	}
	if c.Accesses() != 5 {
		t.Errorf("accesses = %d, want 5", c.Accesses())
	}
	if got := c.HitRate(); got != 0.2 {
		t.Errorf("hit rate = %v, want 0.2", got)
	}
}

func TestLRUEvictionOrderIsRecency(t *testing.T) {
	c := NewLRUCache(2)
	c.Access(1)
	c.Access(2)
	c.Access(1) // 1 becomes most recent; 2 is LRU
	c.Access(3) // must evict 2, not 1
	if hit := c.Access(1); !hit {
		t.Error("recently used page evicted")
	}
	if hit := c.Access(2); hit {
		t.Error("LRU page not evicted")
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := NewLRUCache(0)
	for i := 0; i < 3; i++ {
		if hit := c.Access(7); hit {
			t.Error("zero-capacity cache hit")
		}
	}
	if c.Reads() != 3 {
		t.Errorf("reads = %d", c.Reads())
	}
	// Negative capacity clamps to zero rather than panicking.
	n := NewLRUCache(-5)
	if hit := n.Access(1); hit {
		t.Error("negative-capacity cache hit")
	}
}

func TestLRUReset(t *testing.T) {
	c := NewLRUCache(4)
	c.Access(1)
	c.Access(2)
	c.Reset()
	if c.Reads() != 0 || c.Accesses() != 0 {
		t.Error("counters survived Reset")
	}
	if hit := c.Access(1); hit {
		t.Error("cache contents survived Reset")
	}
}

func TestLRUHitRateEmptyIsZero(t *testing.T) {
	if NewLRUCache(2).HitRate() != 0 {
		t.Error("empty hit rate nonzero")
	}
}

func TestNop(t *testing.T) {
	var n Nop
	if !n.Access(1) {
		t.Error("Nop.Access should report hit")
	}
	if n.Reads() != 0 || n.Accesses() != 0 {
		t.Error("Nop counted something")
	}
	n.Reset() // must not panic
}

func TestAccounterInterfaceSatisfaction(t *testing.T) {
	var _ Accounter = (*Counter)(nil)
	var _ Accounter = (*LRUCache)(nil)
	var _ Accounter = Nop{}
}

func TestLRULargeWorkloadConsistency(t *testing.T) {
	c := NewLRUCache(16)
	// Cyclic access over 32 pages with capacity 16: every access misses.
	for round := 0; round < 4; round++ {
		for p := 0; p < 32; p++ {
			c.Access(PageID(p))
		}
	}
	if c.Reads() != c.Accesses() {
		t.Errorf("cyclic thrash should never hit: reads=%d accesses=%d", c.Reads(), c.Accesses())
	}
	// Hot loop over 8 pages fits: only the first touch of each page misses.
	c.Reset()
	for round := 0; round < 10; round++ {
		for p := 0; p < 8; p++ {
			c.Access(PageID(p))
		}
	}
	if c.Reads() != 8 {
		t.Errorf("hot loop reads = %d, want 8", c.Reads())
	}
}

func TestRecorderReplay(t *testing.T) {
	var r Recorder
	for _, p := range []PageID{1, 2, 1, 3} {
		if r.Access(p) {
			t.Error("recorder must report misses")
		}
	}
	if r.Reads() != 4 || r.Accesses() != 4 {
		t.Errorf("reads=%d accesses=%d", r.Reads(), r.Accesses())
	}
	// Replaying into an LRU cache must be equivalent to accessing it directly.
	direct := NewLRUCache(8)
	for _, p := range []PageID{1, 2, 1, 3} {
		direct.Access(p)
	}
	replayed := NewLRUCache(8)
	r.Replay(replayed)
	if direct.Reads() != replayed.Reads() || direct.Accesses() != replayed.Accesses() {
		t.Errorf("replay diverged: direct %d/%d, replayed %d/%d",
			direct.Reads(), direct.Accesses(), replayed.Reads(), replayed.Accesses())
	}
	r.Replay(nil) // must not panic
	r.Reset()
	if r.Reads() != 0 || len(r.Trace()) != 0 {
		t.Error("reset did not clear the trace")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Access(PageID(i))
			}
		}()
	}
	wg.Wait()
	if c.Reads() != workers*each {
		t.Errorf("reads = %d, want %d", c.Reads(), workers*each)
	}
}
