package disk

import "testing"

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Reads() != 0 || c.Accesses() != 0 {
		t.Fatal("zero value not zeroed")
	}
	for i := 0; i < 5; i++ {
		if hit := c.Access(PageID(i % 2)); hit {
			t.Error("Counter reported a cache hit")
		}
	}
	if c.Reads() != 5 || c.Accesses() != 5 {
		t.Errorf("reads=%d accesses=%d", c.Reads(), c.Accesses())
	}
	c.Reset()
	if c.Reads() != 0 {
		t.Error("Reset failed")
	}
}

func TestLRUCacheHitsAndMisses(t *testing.T) {
	c := NewLRUCache(2)
	if hit := c.Access(1); hit {
		t.Error("first access hit")
	}
	if hit := c.Access(1); !hit {
		t.Error("second access missed")
	}
	c.Access(2) // miss, cache = {1,2}
	c.Access(3) // miss, evicts 1, cache = {2,3}
	if hit := c.Access(1); hit {
		t.Error("evicted page still cached")
	}
	if c.Reads() != 4 {
		t.Errorf("reads = %d, want 4", c.Reads())
	}
	if c.Accesses() != 5 {
		t.Errorf("accesses = %d, want 5", c.Accesses())
	}
	if got := c.HitRate(); got != 0.2 {
		t.Errorf("hit rate = %v, want 0.2", got)
	}
}

func TestLRUEvictionOrderIsRecency(t *testing.T) {
	c := NewLRUCache(2)
	c.Access(1)
	c.Access(2)
	c.Access(1) // 1 becomes most recent; 2 is LRU
	c.Access(3) // must evict 2, not 1
	if hit := c.Access(1); !hit {
		t.Error("recently used page evicted")
	}
	if hit := c.Access(2); hit {
		t.Error("LRU page not evicted")
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := NewLRUCache(0)
	for i := 0; i < 3; i++ {
		if hit := c.Access(7); hit {
			t.Error("zero-capacity cache hit")
		}
	}
	if c.Reads() != 3 {
		t.Errorf("reads = %d", c.Reads())
	}
	// Negative capacity clamps to zero rather than panicking.
	n := NewLRUCache(-5)
	if hit := n.Access(1); hit {
		t.Error("negative-capacity cache hit")
	}
}

func TestLRUReset(t *testing.T) {
	c := NewLRUCache(4)
	c.Access(1)
	c.Access(2)
	c.Reset()
	if c.Reads() != 0 || c.Accesses() != 0 {
		t.Error("counters survived Reset")
	}
	if hit := c.Access(1); hit {
		t.Error("cache contents survived Reset")
	}
}

func TestLRUHitRateEmptyIsZero(t *testing.T) {
	if NewLRUCache(2).HitRate() != 0 {
		t.Error("empty hit rate nonzero")
	}
}

func TestNop(t *testing.T) {
	var n Nop
	if !n.Access(1) {
		t.Error("Nop.Access should report hit")
	}
	if n.Reads() != 0 || n.Accesses() != 0 {
		t.Error("Nop counted something")
	}
	n.Reset() // must not panic
}

func TestAccounterInterfaceSatisfaction(t *testing.T) {
	var _ Accounter = (*Counter)(nil)
	var _ Accounter = (*LRUCache)(nil)
	var _ Accounter = Nop{}
}

func TestLRULargeWorkloadConsistency(t *testing.T) {
	c := NewLRUCache(16)
	// Cyclic access over 32 pages with capacity 16: every access misses.
	for round := 0; round < 4; round++ {
		for p := 0; p < 32; p++ {
			c.Access(PageID(p))
		}
	}
	if c.Reads() != c.Accesses() {
		t.Errorf("cyclic thrash should never hit: reads=%d accesses=%d", c.Reads(), c.Accesses())
	}
	// Hot loop over 8 pages fits: only the first touch of each page misses.
	c.Reset()
	for round := 0; round < 10; round++ {
		for p := 0; p < 8; p++ {
			c.Access(PageID(p))
		}
	}
	if c.Reads() != 8 {
		t.Errorf("hot loop reads = %d, want 8", c.Reads())
	}
}
