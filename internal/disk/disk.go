// Package disk simulates the paged storage layer underneath the RFS
// structure so the system can reproduce the paper's I/O-cost analysis
// (§5.2.2: relevance feedback touches one tree node per marked representative;
// each localized k-NN usually costs a single node access).
//
// Tree nodes register as pages; every traversal that "reads" a node reports
// it through an Accounter. The default Counter tallies raw accesses; the LRU
// cache variant models a buffer pool, so experiments can report both cold and
// warm I/O counts.
package disk

import "container/list"

// PageID identifies one page (one tree node) in the simulated store.
type PageID uint64

// Accounter observes page reads. Implementations must be cheap: the R*-tree
// calls Access on every node it touches.
type Accounter interface {
	// Access records a read of the given page and reports whether it was
	// served from cache (true) or required a simulated disk read (false).
	Access(PageID) bool
	// Reads returns the cumulative number of simulated disk reads.
	Reads() uint64
	// Accesses returns the cumulative number of page accesses (hits+misses).
	Accesses() uint64
	// Reset zeroes all counters (and any cache state).
	Reset()
}

// Counter is the cache-less Accounter: every access is a disk read.
// The zero value is ready to use.
type Counter struct {
	reads uint64
}

// Access records one disk read.
func (c *Counter) Access(PageID) bool {
	c.reads++
	return false
}

// Reads returns the number of recorded reads.
func (c *Counter) Reads() uint64 { return c.reads }

// Accesses equals Reads for the cache-less counter.
func (c *Counter) Accesses() uint64 { return c.reads }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.reads = 0 }

// LRUCache is an Accounter backed by an LRU page cache of fixed capacity.
type LRUCache struct {
	capacity int
	order    *list.List // front = most recently used; values are PageID
	index    map[PageID]*list.Element
	reads    uint64
	accesses uint64
}

// NewLRUCache returns an LRU-backed accounter holding up to capacity pages.
// A capacity of 0 degenerates to the cache-less Counter behaviour.
func NewLRUCache(capacity int) *LRUCache {
	if capacity < 0 {
		capacity = 0
	}
	return &LRUCache{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[PageID]*list.Element, capacity),
	}
}

// Access looks the page up in the cache, faulting it in on a miss and
// evicting the least recently used page if the cache is full.
func (c *LRUCache) Access(p PageID) bool {
	c.accesses++
	if el, ok := c.index[p]; ok {
		c.order.MoveToFront(el)
		return true
	}
	c.reads++
	if c.capacity == 0 {
		return false
	}
	if c.order.Len() >= c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.index, back.Value.(PageID))
	}
	c.index[p] = c.order.PushFront(p)
	return false
}

// Reads returns the number of cache misses (simulated disk reads).
func (c *LRUCache) Reads() uint64 { return c.reads }

// Accesses returns hits plus misses.
func (c *LRUCache) Accesses() uint64 { return c.accesses }

// HitRate returns the fraction of accesses served from cache, or 0 when no
// accesses have occurred.
func (c *LRUCache) HitRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.accesses-c.reads) / float64(c.accesses)
}

// Reset clears counters and evicts every cached page.
func (c *LRUCache) Reset() {
	c.reads, c.accesses = 0, 0
	c.order.Init()
	c.index = make(map[PageID]*list.Element, c.capacity)
}

// Nop is an Accounter that records nothing; used where I/O accounting is
// irrelevant (e.g. unit tests of unrelated behaviour).
type Nop struct{}

// Access does nothing and reports a cache hit so callers never count it.
func (Nop) Access(PageID) bool { return true }

// Reads always returns 0.
func (Nop) Reads() uint64 { return 0 }

// Accesses always returns 0.
func (Nop) Accesses() uint64 { return 0 }

// Reset does nothing.
func (Nop) Reset() {}
