// Package disk simulates the paged storage layer underneath the RFS
// structure so the system can reproduce the paper's I/O-cost analysis
// (§5.2.2: relevance feedback touches one tree node per marked representative;
// each localized k-NN usually costs a single node access).
//
// Tree nodes register as pages; every traversal that "reads" a node reports
// it through an Accounter. The default Counter tallies raw accesses; the LRU
// cache variant models a buffer pool, so experiments can report both cold and
// warm I/O counts.
//
// Concurrency: Counter (atomic) and Nop are safe for concurrent use, so
// independent goroutines may share one while traversing the read-only tree.
// LRUCache is NOT goroutine-safe — its hit/miss ratio is inherently
// order-dependent, so sharing it across goroutines would make the simulated
// I/O counts nondeterministic even with locking. Parallel phases instead give
// each goroutine a private Recorder and Replay the traces into the real
// accounter in a deterministic order afterwards; counts then match the
// serial execution exactly.
package disk

import (
	"container/list"
	"sync/atomic"
)

// PageID identifies one page (one tree node) in the simulated store.
type PageID uint64

// Accounter observes page reads. Implementations must be cheap: the R*-tree
// calls Access on every node it touches.
type Accounter interface {
	// Access records a read of the given page and reports whether it was
	// served from cache (true) or required a simulated disk read (false).
	Access(PageID) bool
	// Reads returns the cumulative number of simulated disk reads.
	Reads() uint64
	// Accesses returns the cumulative number of page accesses (hits+misses).
	Accesses() uint64
	// Reset zeroes all counters (and any cache state).
	Reset()
}

// Counter is the cache-less Accounter: every access is a disk read. The
// zero value is ready to use. Counting is atomic, so one Counter may be
// shared by any number of goroutines; the total is exact regardless of
// interleaving.
type Counter struct {
	reads atomic.Uint64
}

// Access records one disk read.
func (c *Counter) Access(PageID) bool {
	c.reads.Add(1)
	return false
}

// Reads returns the number of recorded reads.
func (c *Counter) Reads() uint64 { return c.reads.Load() }

// Accesses equals Reads for the cache-less counter.
func (c *Counter) Accesses() uint64 { return c.reads.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.reads.Store(0) }

// LRUCache is an Accounter backed by an LRU page cache of fixed capacity.
type LRUCache struct {
	capacity int
	order    *list.List // front = most recently used; values are PageID
	index    map[PageID]*list.Element
	reads    uint64
	accesses uint64
}

// NewLRUCache returns an LRU-backed accounter holding up to capacity pages.
// A capacity of 0 degenerates to the cache-less Counter behaviour.
func NewLRUCache(capacity int) *LRUCache {
	if capacity < 0 {
		capacity = 0
	}
	return &LRUCache{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[PageID]*list.Element, capacity),
	}
}

// Access looks the page up in the cache, faulting it in on a miss and
// evicting the least recently used page if the cache is full.
func (c *LRUCache) Access(p PageID) bool {
	c.accesses++
	if el, ok := c.index[p]; ok {
		c.order.MoveToFront(el)
		return true
	}
	c.reads++
	if c.capacity == 0 {
		return false
	}
	if c.order.Len() >= c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.index, back.Value.(PageID))
	}
	c.index[p] = c.order.PushFront(p)
	return false
}

// Reads returns the number of cache misses (simulated disk reads).
func (c *LRUCache) Reads() uint64 { return c.reads }

// Accesses returns hits plus misses.
func (c *LRUCache) Accesses() uint64 { return c.accesses }

// HitRate returns the fraction of accesses served from cache, or 0 when no
// accesses have occurred.
func (c *LRUCache) HitRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.accesses-c.reads) / float64(c.accesses)
}

// Reset clears counters and evicts every cached page.
func (c *LRUCache) Reset() {
	c.reads, c.accesses = 0, 0
	c.order.Init()
	c.index = make(map[PageID]*list.Element, c.capacity)
}

// Recorder is an Accounter that captures the ordered page-access trace of
// one goroutine's traversal so it can later be replayed into a stateful
// accounter (e.g. an LRUCache) in a deterministic order. This is how the
// parallel localized-subquery phase keeps §5.2.2 I/O counts byte-identical
// to the serial execution: each subquery records privately, then the traces
// are replayed in the fixed subquery order. The zero value is ready to use;
// a Recorder must not itself be shared across goroutines.
type Recorder struct {
	trace []PageID
}

// Access appends the page to the trace. The access is reported as a miss so
// pruning behaviour in traversals matches the cache-less counter.
func (r *Recorder) Access(p PageID) bool {
	r.trace = append(r.trace, p)
	return false
}

// Reads returns the number of recorded accesses.
func (r *Recorder) Reads() uint64 { return uint64(len(r.trace)) }

// Accesses equals Reads for a recorder.
func (r *Recorder) Accesses() uint64 { return uint64(len(r.trace)) }

// Reset discards the trace.
func (r *Recorder) Reset() { r.trace = r.trace[:0] }

// Replay feeds the recorded trace, in order, into acc. A nil acc is a no-op.
func (r *Recorder) Replay(acc Accounter) {
	if acc == nil {
		return
	}
	for _, p := range r.trace {
		acc.Access(p)
	}
}

// Trace returns the recorded page sequence (shared; do not modify).
func (r *Recorder) Trace() []PageID { return r.trace }

// Nop is an Accounter that records nothing; used where I/O accounting is
// irrelevant (e.g. unit tests of unrelated behaviour).
type Nop struct{}

// Access does nothing and reports a cache hit so callers never count it.
func (Nop) Access(PageID) bool { return true }

// Reads always returns 0.
func (Nop) Reads() uint64 { return 0 }

// Accesses always returns 0.
func (Nop) Accesses() uint64 { return 0 }

// Reset does nothing.
func (Nop) Reset() {}
