package rstar

import (
	"math"
	"math/rand"
	"testing"

	"qdcbir/internal/vec"
)

func r2(minX, minY, maxX, maxY float64) Rect {
	return NewRect(vec.Vector{minX, minY}, vec.Vector{maxX, maxY})
}

func TestNewRectValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted rect did not panic")
		}
	}()
	NewRect(vec.Vector{1, 0}, vec.Vector{0, 1})
}

func TestNewRectDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch did not panic")
		}
	}()
	NewRect(vec.Vector{0}, vec.Vector{1, 2})
}

func TestPointRectIndependence(t *testing.T) {
	p := vec.Vector{1, 2}
	r := PointRect(p)
	p[0] = 99
	if r.Min[0] != 1 || r.Max[0] != 1 {
		t.Error("PointRect aliases input")
	}
	if r.Area() != 0 || r.Margin() != 0 {
		t.Errorf("point rect area=%v margin=%v", r.Area(), r.Margin())
	}
}

func TestContains(t *testing.T) {
	r := r2(0, 0, 10, 10)
	cases := []struct {
		p    vec.Vector
		want bool
	}{
		{vec.Vector{5, 5}, true},
		{vec.Vector{0, 0}, true},   // boundary inclusive
		{vec.Vector{10, 10}, true}, // boundary inclusive
		{vec.Vector{-0.1, 5}, false},
		{vec.Vector{5, 10.1}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v", c.p, got)
		}
	}
}

func TestContainsRectAndIntersects(t *testing.T) {
	outer := r2(0, 0, 10, 10)
	inner := r2(2, 2, 8, 8)
	overlapping := r2(5, 5, 15, 15)
	disjoint := r2(20, 20, 30, 30)
	touching := r2(10, 0, 20, 10)

	if !outer.ContainsRect(inner) {
		t.Error("inner not contained")
	}
	if outer.ContainsRect(overlapping) {
		t.Error("overlapping reported contained")
	}
	if !outer.Intersects(overlapping) {
		t.Error("overlapping not intersecting")
	}
	if outer.Intersects(disjoint) {
		t.Error("disjoint intersecting")
	}
	if !outer.Intersects(touching) {
		t.Error("edge-touching rects must intersect")
	}
}

func TestUnionAreaMargin(t *testing.T) {
	a := r2(0, 0, 2, 2)
	b := r2(3, 3, 5, 7)
	u := a.Union(b)
	if !u.Min.Equal(vec.Vector{0, 0}) || !u.Max.Equal(vec.Vector{5, 7}) {
		t.Errorf("Union = %v", u)
	}
	if a.Area() != 4 {
		t.Errorf("Area = %v", a.Area())
	}
	if b.Margin() != 6 {
		t.Errorf("Margin = %v", b.Margin())
	}
	if got := a.Enlargement(b); got != 35-4 {
		t.Errorf("Enlargement = %v", got)
	}
	// Union must not mutate its receivers.
	if a.Max[0] != 2 || b.Min[1] != 3 {
		t.Error("Union mutated input")
	}
}

func TestOverlapArea(t *testing.T) {
	a := r2(0, 0, 4, 4)
	cases := []struct {
		b    Rect
		want float64
	}{
		{r2(2, 2, 6, 6), 4},
		{r2(5, 5, 6, 6), 0},
		{r2(4, 0, 8, 4), 0}, // touching edges have zero volume
		{r2(1, 1, 3, 3), 4},
		{a, 16},
	}
	for _, c := range cases {
		if got := a.OverlapArea(c.b); got != c.want {
			t.Errorf("OverlapArea(%v) = %v want %v", c.b, got, c.want)
		}
	}
}

func TestCenterDiagonal(t *testing.T) {
	r := r2(0, 0, 6, 8)
	if !r.Center().Equal(vec.Vector{3, 4}) {
		t.Errorf("Center = %v", r.Center())
	}
	if r.Diagonal() != 10 {
		t.Errorf("Diagonal = %v", r.Diagonal())
	}
}

func TestMinDistSq(t *testing.T) {
	r := r2(0, 0, 10, 10)
	cases := []struct {
		p    vec.Vector
		want float64
	}{
		{vec.Vector{5, 5}, 0},       // inside
		{vec.Vector{0, 0}, 0},       // corner
		{vec.Vector{13, 14}, 25},    // outside corner
		{vec.Vector{-3, 5}, 9},      // outside one axis
		{vec.Vector{5, -4}, 16},     // outside other axis
		{vec.Vector{12, -2}, 4 + 4}, // both axes
	}
	for _, c := range cases {
		if got := r.MinDistSq(c.p); got != c.want {
			t.Errorf("MinDistSq(%v) = %v want %v", c.p, got, c.want)
		}
	}
}

// Property: MINDIST lower-bounds the distance to every point inside the rect.
func TestMinDistLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 300; iter++ {
		min := vec.Vector{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		max := min.Clone()
		for i := range max {
			max[i] += rng.Float64() * 5
		}
		r := NewRect(min, max)
		q := vec.Vector{rng.NormFloat64() * 10, rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		// Random point inside the rect.
		inside := make(vec.Vector, 3)
		for i := range inside {
			inside[i] = min[i] + rng.Float64()*(max[i]-min[i])
		}
		if bound := r.MinDistSq(q); bound > vec.SqL2(q, inside)+1e-9 {
			t.Fatalf("MINDIST %v exceeds actual %v", bound, vec.SqL2(q, inside))
		}
	}
}

// Property: union contains both operands; overlap is symmetric and bounded.
func TestRectAlgebraProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	randRect := func() Rect {
		min := vec.Vector{rng.NormFloat64(), rng.NormFloat64()}
		max := min.Clone()
		for i := range max {
			max[i] += rng.Float64() * 3
		}
		return NewRect(min, max)
	}
	for iter := 0; iter < 300; iter++ {
		a, b := randRect(), randRect()
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			t.Fatalf("union %v does not contain operands %v %v", u, a, b)
		}
		if o1, o2 := a.OverlapArea(b), b.OverlapArea(a); math.Abs(o1-o2) > 1e-12 {
			t.Fatalf("overlap asymmetric: %v vs %v", o1, o2)
		}
		if o := a.OverlapArea(b); o > a.Area()+1e-12 || o > b.Area()+1e-12 {
			t.Fatalf("overlap %v exceeds operand area", o)
		}
		if a.Enlargement(b) < -1e-12 {
			t.Fatal("negative enlargement")
		}
	}
}
