package rstar

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"qdcbir/internal/vec"
)

// f32Reference computes the float32-mode answer for a subtree by brute force:
// narrow the query and every subtree point to float32, score with the
// canonical float32 kernel, sort ascending (Dist, ID).
func f32Reference(tr *Tree, n *Node, q vec.Vector, k int) []Neighbor {
	q32 := vec.Narrow32(q, nil)
	var items []Item
	items = itemsInSubtree(n, items)
	out := make([]Neighbor, 0, len(items))
	for _, it := range items {
		p32 := vec.Narrow32(it.Point, nil)
		d := vec.SqL232(q32, p32)
		out = append(out, Neighbor{ID: it.ID, Point: it.Point, Dist: math.Sqrt(float64(d))})
	}
	// Selection sort on (Dist, ID) — small inputs, clarity over speed.
	for i := 0; i < len(out); i++ {
		min := i
		for j := i + 1; j < len(out); j++ {
			if neighborLess(out[j], out[min]) {
				min = j
			}
		}
		out[i], out[min] = out[min], out[i]
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TestKNNF32MatchesBruteForce: the slab sweep must return exactly the
// float32-mode brute-force answer (same IDs, same float64 distance bits, same
// order) for whole-tree and subtree-restricted searches. Distance ties at the
// k boundary are resolved identically because both sides order by (Dist, ID)
// and the selector's strict-< admission retains the smallest pairs.
func TestKNNF32MatchesBruteForce(t *testing.T) {
	cases := []struct {
		seed  int64
		n     int
		dim   int
		scale float64
	}{
		{seed: 1, n: 60, dim: 2, scale: 1},
		{seed: 2, n: 400, dim: 8, scale: 10},
		{seed: 3, n: 600, dim: 37, scale: 100},
		{seed: 4, n: 300, dim: 12, scale: 0.01},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(tc.seed))
		pts := randPoints(rng, tc.n, tc.dim, tc.scale)
		tr := BulkLoad(tc.dim, smallCfg, bulkItems(pts), 8)
		tr.SetFloat32Scoring(true)
		if !tr.Float32Scoring() {
			t.Fatalf("seed %d: float32 scoring did not enable", tc.seed)
		}
		roots := []*Node{tr.Root()}
		if !tr.Root().IsLeaf() {
			roots = append(roots, tr.Root().Children()...)
		}
		for qi := 0; qi < 15; qi++ {
			q := pts[rng.Intn(len(pts))].Clone()
			if qi%2 == 1 {
				for j := range q {
					q[j] += rng.NormFloat64() * tc.scale * 0.1
				}
			}
			for _, root := range roots {
				for _, k := range []int{1, 5, root.Len() + 3} {
					var st SearchStats
					got, err := tr.KNNF32FromStatsCtx(context.Background(), root, q, k, nil, &st)
					if err != nil {
						t.Fatalf("seed %d: %v", tc.seed, err)
					}
					want := f32Reference(tr, root, q, k)
					if len(got) != len(want) {
						t.Fatalf("seed %d root %d k %d: got %d results, want %d",
							tc.seed, root.ID(), k, len(got), len(want))
					}
					for i := range got {
						if got[i].ID != want[i].ID ||
							math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
							t.Fatalf("seed %d root %d k %d rank %d: got (%d, %v), want (%d, %v)",
								tc.seed, root.ID(), k, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
						}
					}
					if st.ItemsScored == 0 {
						t.Fatalf("seed %d: no ItemsScored accounted", tc.seed)
					}
				}
			}
		}
	}
}

// TestKNNF32DelegatesWhenDisabled: without float32 scoring the entry point
// must answer through the exact float64 search.
func TestKNNF32DelegatesWhenDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randPoints(rng, 150, 6, 1)
	tr := BulkLoad(6, smallCfg, bulkItems(pts), 8)
	q := pts[3]
	got := tr.KNNF32(q, 10, nil)
	want := tr.KNN(q, 10, nil)
	if len(got) != len(want) {
		t.Fatalf("delegate returned %d, exact %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
			t.Fatalf("rank %d: delegate (%d, %v) != exact (%d, %v)",
				i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}

// TestFloat32SurvivesQuantToggle: the shared slab-ordered ID table must stay
// valid when the quantized path is enabled and disabled around an active
// float32 path, and vice versa.
func TestFloat32SurvivesQuantToggle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randPoints(rng, 200, 5, 1)
	tr := BulkLoad(5, smallCfg, bulkItems(pts), 8)
	tr.SetFloat32Scoring(true)
	if err := tr.SetQuantizedScoring(true); err != nil {
		t.Fatal(err)
	}
	q := pts[7]
	before := tr.KNNF32(q, 9, nil)
	if err := tr.SetQuantizedScoring(false); err != nil {
		t.Fatal(err)
	}
	if !tr.Float32Scoring() {
		t.Fatal("disabling quantized scoring dropped float32 scoring")
	}
	after := tr.KNNF32(q, 9, nil)
	for i := range before {
		if before[i].ID != after[i].ID || before[i].Dist != after[i].Dist {
			t.Fatalf("rank %d changed across quant toggle", i)
		}
	}
	// Now drop float32 with quantized still off: the ID table must release
	// and a fresh enable must rebuild it correctly.
	tr.SetFloat32Scoring(false)
	if tr.qids != nil {
		t.Fatal("ID table retained with both sweep paths off")
	}
	tr.SetFloat32Scoring(true)
	again := tr.KNNF32(q, 9, nil)
	for i := range before {
		if before[i].ID != again[i].ID || before[i].Dist != again[i].Dist {
			t.Fatalf("rank %d changed across re-enable", i)
		}
	}
}

// TestFloat32InvalidatedByMutation: a structural insert must clear the
// float32 mirror (stale slab rows would silently mis-score), falling back to
// the exact path.
func TestFloat32InvalidatedByMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := randPoints(rng, 120, 4, 1)
	tr := BulkLoad(4, smallCfg, bulkItems(pts), 8)
	tr.SetFloat32Scoring(true)
	p := randPoints(rng, 1, 4, 1)[0]
	tr.Insert(ItemID(len(pts)), p)
	if tr.Float32Scoring() {
		t.Fatal("float32 scoring survived a structural mutation")
	}
	ns := tr.KNNF32(p, 5, nil)
	if len(ns) != 5 || ns[0].ID != ItemID(len(pts)) {
		t.Fatalf("post-mutation delegate missed the inserted point: %v", ns)
	}
}
