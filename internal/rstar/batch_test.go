package rstar

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"qdcbir/internal/disk"
	"qdcbir/internal/vec"
)

// The batch search contract is per-query bit-identity with the single-query
// paths: same Neighbors (IDs, float64 distance bits, points), same
// SearchStats deltas, same Accounter traces — for every scan mode, every M,
// mixed per-query ks, whole-tree and subtree-restricted.

func batchQueries(rng *rand.Rand, pts []vec.Vector, m, dim int, scale float64) []vec.Vector {
	qs := make([]vec.Vector, m)
	for i := range qs {
		switch i % 3 {
		case 0:
			qs[i] = pts[rng.Intn(len(pts))]
		case 1:
			qs[i] = pts[rng.Intn(len(pts))].Clone()
			for j := range qs[i] {
				qs[i][j] += rng.NormFloat64() * scale * 0.1
			}
		default:
			qs[i] = make(vec.Vector, dim)
			for j := range qs[i] {
				qs[i][j] = rng.NormFloat64() * scale
			}
		}
	}
	return qs
}

func sameNeighbors(t *testing.T, label string, got, want []Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d batch results, %d single", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID ||
			math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
			t.Fatalf("%s: result %d diverges: batch {%d %v} single {%d %v}",
				label, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
		if !got[i].Point.Equal(want[i].Point) {
			t.Fatalf("%s: result %d point diverges", label, i)
		}
	}
}

func sameStats(t *testing.T, label string, got, want SearchStats) {
	t.Helper()
	if got.HeapPops != want.HeapPops || got.NodesRead != want.NodesRead ||
		got.ItemsScored != want.ItemsScored || got.CodesScanned != want.CodesScanned ||
		got.Reranked != want.Reranked || got.RerankFallbacks != want.RerankFallbacks {
		t.Fatalf("%s: stats diverge: batch %+v single %+v", label, got, want)
	}
}

func sameTrace(t *testing.T, label string, got, want *disk.Recorder) {
	t.Helper()
	g, w := got.Trace(), want.Trace()
	if len(g) != len(w) {
		t.Fatalf("%s: trace length %d batch, %d single", label, len(g), len(w))
	}
	for i := range w {
		if g[i] != w[i] {
			t.Fatalf("%s: trace[%d] = %d batch, %d single", label, i, g[i], w[i])
		}
	}
}

// TestKNNBatchMatchesSingle pins the exact-f64 batch descent to M independent
// KNNFromStatsCtx calls across tree shapes, batch widths, and mixed ks.
func TestKNNBatchMatchesSingle(t *testing.T) {
	for _, tc := range []struct {
		seed  int64
		n     int
		dim   int
		scale float64
	}{
		{seed: 21, n: 80, dim: 3, scale: 1},
		{seed: 22, n: 600, dim: 8, scale: 10},
		{seed: 23, n: 1200, dim: 37, scale: 100},
	} {
		rng := rand.New(rand.NewSource(tc.seed))
		pts := randPoints(rng, tc.n, tc.dim, tc.scale)
		tr := BulkLoad(tc.dim, smallCfg, bulkItems(pts), 8)
		tr.SetBlockScoring(true)
		roots := []*Node{tr.Root()}
		if !tr.Root().IsLeaf() {
			roots = append(roots, tr.Root().Children()[0])
		}
		for _, root := range roots {
			for _, m := range []int{1, 2, 3, 4, 5, 8} {
				qs := batchQueries(rng, pts, m, tc.dim, tc.scale)
				ks := make([]int, m)
				for i := range ks {
					ks[i] = []int{1, 5, 10, 0, root.Len() + 2}[i%5]
				}
				accs := make([]disk.Accounter, m)
				sts := make([]*SearchStats, m)
				recs := make([]*disk.Recorder, m)
				for i := range accs {
					recs[i] = &disk.Recorder{}
					accs[i] = recs[i]
					sts[i] = &SearchStats{}
				}
				got, err := tr.KNNBatchFromStatsCtx(context.Background(), root, qs, ks, accs, sts)
				if err != nil {
					t.Fatalf("seed %d m %d: batch: %v", tc.seed, m, err)
				}
				for i := range qs {
					rec := &disk.Recorder{}
					var st SearchStats
					want, err := tr.KNNFromStatsCtx(context.Background(), root, qs[i], ks[i], rec, &st)
					if err != nil {
						t.Fatalf("single: %v", err)
					}
					label := "f64"
					sameNeighbors(t, label, got[i], want)
					sameStats(t, label, *sts[i], st)
					sameTrace(t, label, recs[i], rec)
				}
			}
		}
	}
}

// TestKNNF32BatchMatchesSingle pins the f32 shared-sweep batch to M
// independent KNNF32FromStatsCtx calls.
func TestKNNF32BatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n, dim, scale = 900, 37, 50.0
	pts := randPoints(rng, n, dim, scale)
	tr := BulkLoad(dim, smallCfg, bulkItems(pts), 8)
	tr.SetFloat32Scoring(true)
	roots := []*Node{tr.Root()}
	if !tr.Root().IsLeaf() {
		roots = append(roots, tr.Root().Children()[0])
	}
	for _, root := range roots {
		for _, m := range []int{1, 2, 4, 5, 8} {
			qs := batchQueries(rng, pts, m, dim, scale)
			ks := make([]int, m)
			for i := range ks {
				ks[i] = []int{1, 7, 20, 0}[i%4]
			}
			accs := make([]disk.Accounter, m)
			sts := make([]*SearchStats, m)
			recs := make([]*disk.Recorder, m)
			for i := range accs {
				recs[i] = &disk.Recorder{}
				accs[i] = recs[i]
				sts[i] = &SearchStats{}
			}
			got, err := tr.KNNF32BatchFromStatsCtx(context.Background(), root, qs, ks, accs, sts)
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
			for i := range qs {
				rec := &disk.Recorder{}
				var st SearchStats
				want, err := tr.KNNF32FromStatsCtx(context.Background(), root, qs[i], ks[i], rec, &st)
				if err != nil {
					t.Fatalf("single: %v", err)
				}
				sameNeighbors(t, "f32", got[i], want)
				sameStats(t, "f32", *sts[i], st)
				sameTrace(t, "f32", recs[i], rec)
			}
		}
	}
}

// TestKNNQuantBatchMatchesSingle pins the SQ8 shared-scan batch (including
// per-query certificate checks and widening fallbacks) to M independent
// KNNQuantFromStatsCtx calls.
func TestKNNQuantBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const n, dim, scale = 900, 16, 10.0
	pts := randPoints(rng, n, dim, scale)
	tr := BulkLoad(dim, smallCfg, bulkItems(pts), 8)
	if err := tr.SetQuantizedScoring(true); err != nil {
		t.Fatalf("enable quantized: %v", err)
	}
	roots := []*Node{tr.Root()}
	if !tr.Root().IsLeaf() {
		roots = append(roots, tr.Root().Children()[0])
	}
	for _, root := range roots {
		for _, m := range []int{1, 2, 4, 5, 8} {
			qs := batchQueries(rng, pts, m, dim, scale)
			// Include a NaN query to exercise the per-query exact fallback.
			if m >= 4 {
				qs[3] = qs[3].Clone()
				qs[3][0] = math.NaN()
			}
			ks := make([]int, m)
			for i := range ks {
				ks[i] = []int{1, 5, 12, 0}[i%4]
			}
			accs := make([]disk.Accounter, m)
			sts := make([]*SearchStats, m)
			recs := make([]*disk.Recorder, m)
			for i := range accs {
				recs[i] = &disk.Recorder{}
				accs[i] = recs[i]
				sts[i] = &SearchStats{}
			}
			got, err := tr.KNNQuantBatchFromStatsCtx(context.Background(), root, qs, ks, 0, accs, sts)
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
			for i := range qs {
				rec := &disk.Recorder{}
				var st SearchStats
				want, err := tr.KNNQuantFromStatsCtx(context.Background(), root, qs[i], ks[i], 0, rec, &st)
				if err != nil {
					t.Fatalf("single: %v", err)
				}
				sameNeighbors(t, "sq8", got[i], want)
				sameStats(t, "sq8", *sts[i], st)
				sameTrace(t, "sq8", recs[i], rec)
			}
		}
	}
}

// TestKNNBatchUnpackedBlocks: without packed blocks the batch descent takes
// the per-item scoring branch and must still match single-query exactly.
func TestKNNBatchUnpackedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const n, dim, scale = 300, 5, 10.0
	pts := randPoints(rng, n, dim, scale)
	tr := BulkLoad(dim, smallCfg, bulkItems(pts), 8)
	tr.SetBlockScoring(false)
	qs := batchQueries(rng, pts, 4, dim, scale)
	ks := []int{3, 9, 1, 15}
	got, err := tr.KNNBatchFromStatsCtx(context.Background(), tr.Root(), qs, ks, nil, nil)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i := range qs {
		want, err := tr.KNNFromStatsCtx(context.Background(), tr.Root(), qs[i], ks[i], nil, nil)
		if err != nil {
			t.Fatalf("single: %v", err)
		}
		sameNeighbors(t, "unpacked", got[i], want)
	}
}

// TestKNNBatchCancellation: a cancelled context aborts the batch with the
// context's error.
func TestKNNBatchCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts := randPoints(rng, 500, 8, 10)
	tr := BulkLoad(8, smallCfg, bulkItems(pts), 8)
	tr.SetBlockScoring(true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs := batchQueries(rng, pts, 4, 8, 10)
	if _, err := tr.KNNBatchFromStatsCtx(ctx, tr.Root(), qs, []int{5, 5, 5, 5}, nil, nil); err != context.Canceled {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}
