package rstar

import (
	"math/rand"
	"sort"
	"testing"

	"qdcbir/internal/vec"
)

// smallCfg keeps nodes tiny so tests exercise splits and reinsertion with few
// points.
var smallCfg = Config{MaxFill: 8, MinFill: 3}

func randPoints(rng *rand.Rand, n, dim int, scale float64) []vec.Vector {
	pts := make([]vec.Vector, n)
	for i := range pts {
		p := make(vec.Vector, dim)
		for j := range p {
			p[j] = rng.NormFloat64() * scale
		}
		pts[i] = p
	}
	return pts
}

func buildTree(t *testing.T, pts []vec.Vector, cfg Config) *Tree {
	t.Helper()
	tr := New(len(pts[0]), cfg)
	for i, p := range pts {
		tr.Insert(ItemID(i), p)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after build: %v", err)
	}
	return tr
}

func TestEmptyTree(t *testing.T) {
	tr := New(3, smallCfg)
	if tr.Len() != 0 || tr.Height() != 1 || tr.NodeCount() != 1 {
		t.Fatalf("empty tree: len=%d h=%d nodes=%d", tr.Len(), tr.Height(), tr.NodeCount())
	}
	if got := tr.KNN(vec.Vector{0, 0, 0}, 5, nil); len(got) != 0 {
		t.Errorf("KNN on empty tree returned %d", len(got))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("empty tree invariants: %v", err)
	}
}

func TestInsertFewNoSplit(t *testing.T) {
	tr := New(2, smallCfg)
	tr.Insert(1, vec.Vector{1, 1})
	tr.Insert(2, vec.Vector{2, 2})
	if tr.Height() != 1 || tr.Len() != 2 {
		t.Fatalf("h=%d len=%d", tr.Height(), tr.Len())
	}
	r := tr.Root().Rect()
	if !r.Min.Equal(vec.Vector{1, 1}) || !r.Max.Equal(vec.Vector{2, 2}) {
		t.Errorf("root rect = %v", r)
	}
}

func TestInsertDimMismatchPanics(t *testing.T) {
	tr := New(2, smallCfg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Insert(1, vec.Vector{1, 2, 3})
}

func TestInsertClonesPoint(t *testing.T) {
	tr := New(2, smallCfg)
	p := vec.Vector{1, 1}
	tr.Insert(1, p)
	p[0] = 99
	got := tr.KNN(vec.Vector{1, 1}, 1, nil)
	if got[0].Point[0] != 1 {
		t.Error("tree stores caller's slice")
	}
}

func TestGrowthAndInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPoints(rng, 500, 4, 10)
	tr := buildTree(t, pts, smallCfg)
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 3 {
		t.Errorf("height %d suspiciously small for 500 pts with MaxFill 8", tr.Height())
	}
}

func TestKNNMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPoints(rng, 400, 5, 10)
	tr := buildTree(t, pts, smallCfg)
	for trial := 0; trial < 25; trial++ {
		q := randPoints(rng, 1, 5, 10)[0]
		k := 1 + rng.Intn(20)
		got := tr.KNN(q, k, nil)
		want := linearKNN(pts, q, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			// Compare distances (IDs may differ on exact ties).
			if !almostEq(got[i].Dist, want[i], 1e-9) {
				t.Fatalf("trial %d rank %d: dist %v want %v", trial, i, got[i].Dist, want[i])
			}
		}
	}
}

func linearKNN(pts []vec.Vector, q vec.Vector, k int) []float64 {
	ds := make([]float64, len(pts))
	for i, p := range pts {
		ds[i] = vec.L2(q, p)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func almostEq(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestKNNOrderedAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 200, 3, 5)
	tr := buildTree(t, pts, smallCfg)
	q := vec.Vector{0, 0, 0}
	a := tr.KNN(q, 15, nil)
	for i := 1; i < len(a); i++ {
		if a[i].Dist < a[i-1].Dist {
			t.Fatalf("results not ordered at %d", i)
		}
	}
	b := tr.KNN(q, 15, nil)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("nondeterministic result at %d", i)
		}
	}
}

func TestKNNKLargerThanTree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randPoints(rng, 10, 2, 3)
	tr := buildTree(t, pts, smallCfg)
	got := tr.KNN(vec.Vector{0, 0}, 50, nil)
	if len(got) != 10 {
		t.Fatalf("got %d, want all 10", len(got))
	}
	if got := tr.KNN(vec.Vector{0, 0}, 0, nil); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
}

func TestKNNFromSubtree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Two distant blobs force separate subtrees.
	var pts []vec.Vector
	for i := 0; i < 100; i++ {
		pts = append(pts, vec.Vector{rng.NormFloat64(), rng.NormFloat64()})
	}
	for i := 0; i < 100; i++ {
		pts = append(pts, vec.Vector{100 + rng.NormFloat64(), 100 + rng.NormFloat64()})
	}
	tr := buildTree(t, pts, smallCfg)
	// Find a subtree clearly on the far blob.
	var far *Node
	for _, c := range tr.Root().Children() {
		if c.Rect().Min[0] > 50 {
			far = c
			break
		}
	}
	if far == nil {
		t.Skip("split did not separate blobs at root level")
	}
	// Query near the origin but search only the far subtree: every result
	// must come from the far blob.
	got := tr.KNNFrom(far, vec.Vector{0, 0}, 5, nil)
	if len(got) == 0 {
		t.Fatal("no results from subtree")
	}
	for _, n := range got {
		if n.Point[0] < 50 {
			t.Errorf("subtree search escaped: %v", n.Point)
		}
	}
}

func TestKNNWeightedMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randPoints(rng, 300, 4, 8)
	tr := buildTree(t, pts, smallCfg)
	w := vec.Vector{4, 0.25, 1, 2}
	for trial := 0; trial < 10; trial++ {
		q := randPoints(rng, 1, 4, 8)[0]
		got := tr.KNNWeighted(q, w, 10, nil)
		// Linear reference under the weighted metric.
		ds := make([]float64, len(pts))
		for i, p := range pts {
			ds[i] = vec.WeightedSqL2(q, p, w)
		}
		sort.Float64s(ds)
		for i := range got {
			if !almostEq(got[i].Dist*got[i].Dist, ds[i], 1e-6) {
				t.Fatalf("trial %d rank %d: %v want %v", trial, i, got[i].Dist*got[i].Dist, ds[i])
			}
		}
	}
}

func TestRangeSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randPoints(rng, 300, 3, 10)
	tr := buildTree(t, pts, smallCfg)
	r := NewRect(vec.Vector{-5, -5, -5}, vec.Vector{5, 5, 5})
	got := tr.Search(r, nil)
	want := 0
	for _, p := range pts {
		if r.Contains(p) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("range returned %d, want %d", len(got), want)
	}
	for _, it := range got {
		if !r.Contains(it.Point) {
			t.Errorf("item %d outside range", it.ID)
		}
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randPoints(rng, 200, 3, 10)
	tr := buildTree(t, pts, smallCfg)
	// Delete half the points in random order.
	perm := rng.Perm(len(pts))
	for _, i := range perm[:100] {
		if !tr.Delete(ItemID(i), pts[i]) {
			t.Fatalf("Delete(%d) = false", i)
		}
		// Invariants are expensive; spot-check periodically.
		if i%17 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("invariants after delete %d: %v", i, err)
			}
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d after deletions", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("final invariants: %v", err)
	}
	// Deleted points are gone; remaining points are findable.
	deleted := make(map[int]bool)
	for _, i := range perm[:100] {
		deleted[i] = true
	}
	for i, p := range pts {
		found := false
		for _, n := range tr.KNN(p, 1, nil) {
			if n.ID == ItemID(i) && n.Dist == 0 {
				found = true
			}
		}
		if deleted[i] && found {
			t.Errorf("deleted item %d still present", i)
		}
		if !deleted[i] && !found {
			t.Errorf("surviving item %d not found", i)
		}
	}
	// Deleting a missing item returns false.
	if tr.Delete(9999, vec.Vector{0, 0, 0}) {
		t.Error("Delete of absent item returned true")
	}
}

func TestDeleteAll(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randPoints(rng, 60, 2, 5)
	tr := buildTree(t, pts, smallCfg)
	for i, p := range pts {
		if !tr.Delete(ItemID(i), p) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() != 1 {
		t.Errorf("height = %d after deleting all", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("invariants on emptied tree: %v", err)
	}
	// Tree remains usable.
	tr.Insert(1, vec.Vector{1, 1})
	if got := tr.KNN(vec.Vector{1, 1}, 1, nil); len(got) != 1 || got[0].ID != 1 {
		t.Error("tree unusable after emptying")
	}
}

func TestWalkVisitsAllLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := randPoints(rng, 300, 3, 10)
	tr := buildTree(t, pts, smallCfg)
	levels := make(map[int]int)
	nodes := 0
	tr.Walk(func(n *Node, level int) {
		nodes++
		levels[level]++
		if n.IsLeaf() != (level == 0) {
			t.Errorf("node %d: leaf=%v at level %d", n.ID(), n.IsLeaf(), level)
		}
	})
	if nodes != tr.NodeCount() {
		t.Errorf("Walk visited %d nodes, NodeCount %d", nodes, tr.NodeCount())
	}
	if levels[tr.Height()-1] != 1 {
		t.Errorf("expected exactly one root at level %d: %v", tr.Height()-1, levels)
	}
}

func TestLeafOf(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randPoints(rng, 150, 3, 10)
	tr := buildTree(t, pts, smallCfg)
	for i := 0; i < 20; i++ {
		leaf := tr.LeafOf(ItemID(i), pts[i])
		if leaf == nil {
			t.Fatalf("LeafOf(%d) = nil", i)
		}
		found := false
		for _, it := range leaf.Items() {
			if it.ID == ItemID(i) {
				found = true
			}
		}
		if !found {
			t.Errorf("leaf of %d does not contain it", i)
		}
	}
	if tr.LeafOf(9999, vec.Vector{0, 0, 0}) != nil {
		t.Error("LeafOf absent item non-nil")
	}
}

func TestClusteredDataSeparatesIntoNodes(t *testing.T) {
	// Inserting two well-separated clusters should produce subtrees whose
	// MBRs do not overlap — the property the RFS structure relies on to act
	// as a hierarchical clustering.
	rng := rand.New(rand.NewSource(12))
	tr := New(2, smallCfg)
	id := 0
	for _, cx := range []float64{0, 1000} {
		for i := 0; i < 60; i++ {
			tr.Insert(ItemID(id), vec.Vector{cx + rng.NormFloat64(), rng.NormFloat64()})
			id++
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	kids := tr.Root().Children()
	if len(kids) < 2 {
		t.Skip("root has a single child")
	}
	// Count root children pairs that overlap.
	overlaps := 0
	for i := 0; i < len(kids); i++ {
		for j := i + 1; j < len(kids); j++ {
			if kids[i].Rect().OverlapArea(kids[j].Rect()) > 0 {
				overlaps++
			}
		}
	}
	if overlaps > len(kids) {
		t.Errorf("%d overlapping root-child pairs among %d children", overlaps, len(kids))
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MinFill > (MaxFill+1)/2 did not panic")
		}
	}()
	New(2, Config{MaxFill: 10, MinFill: 8})
}

func TestNewInvalidDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, Config{})
}

func TestDuplicatePointsSupported(t *testing.T) {
	tr := New(2, smallCfg)
	for i := 0; i < 50; i++ {
		tr.Insert(ItemID(i), vec.Vector{1, 1})
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants with duplicates: %v", err)
	}
	got := tr.KNN(vec.Vector{1, 1}, 50, nil)
	if len(got) != 50 {
		t.Fatalf("got %d of 50 duplicates", len(got))
	}
	for _, n := range got {
		if n.Dist != 0 {
			t.Errorf("duplicate at distance %v", n.Dist)
		}
	}
}

func TestConcurrentReads(t *testing.T) {
	// The server shares one tree across sessions; all read paths must be
	// safe under concurrency (verified with -race in CI runs).
	rng := rand.New(rand.NewSource(99))
	pts := randPoints(rng, 800, 5, 10)
	tr := buildTree(t, pts, smallCfg)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			local := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				q := make(vec.Vector, 5)
				for j := range q {
					q[j] = local.NormFloat64() * 10
				}
				if got := tr.KNN(q, 5, nil); len(got) != 5 {
					t.Errorf("worker %d: got %d", w, len(got))
					return
				}
				tr.Search(NewRect(vec.Vector{-1, -1, -1, -1, -1}, vec.Vector{1, 1, 1, 1, 1}), nil)
				tr.Walk(func(*Node, int) {})
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

func TestHighDimensional37(t *testing.T) {
	// The production configuration: 37 dimensions, paper fill factors.
	rng := rand.New(rand.NewSource(13))
	pts := randPoints(rng, 2000, 37, 1)
	tr := New(37, Config{MaxFill: 100, MinFill: 40})
	for i, p := range pts {
		tr.Insert(ItemID(i), p)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("37-d invariants: %v", err)
	}
	q := randPoints(rng, 1, 37, 1)[0]
	got := tr.KNN(q, 10, nil)
	want := linearKNN(pts, q, 10)
	for i := range got {
		if !almostEq(got[i].Dist, want[i], 1e-9) {
			t.Fatalf("37-d rank %d: %v want %v", i, got[i].Dist, want[i])
		}
	}
}
