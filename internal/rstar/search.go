package rstar

import (
	"context"
	"math"
	"sync"

	"qdcbir/internal/disk"
	"qdcbir/internal/vec"
)

// ctxCheckInterval is how many priority-queue pops a search performs between
// context polls. Checking every pop would put an interface call in the
// hottest loop of the system; every 64 pops bounds cancellation latency to a
// few microseconds while keeping the fast path branch-cheap.
const ctxCheckInterval = 64

// Neighbor is one k-NN result.
type Neighbor struct {
	ID    ItemID
	Point vec.Vector
	Dist  float64 // Euclidean distance to the query
}

// SearchStats accumulates the effort counters of one or more k-NN searches:
// priority-queue pops, tree nodes expanded, and item distance computations.
// The search keeps its own local counters and folds them in once on
// successful completion, so passing stats costs nothing inside the hot loop;
// a nil *SearchStats disables accumulation entirely. A SearchStats must not
// be shared by concurrent searches.
type SearchStats struct {
	HeapPops    uint64 // best-first queue pops (nodes + item candidates)
	NodesRead   uint64 // tree nodes expanded (== accounter accesses)
	ItemsScored uint64 // exact item distances computed

	// Quantized-scan effort (KNNQuantFromStatsCtx only; zero on exact
	// searches). A fallback is one search whose candidate set failed the
	// rerank guarantee at the requested factor and had to widen (or, for a
	// NaN query, delegate to the exact path outright).
	CodesScanned    uint64 // SQ8 code distances computed
	Reranked        uint64 // candidates re-scored with the exact kernels
	RerankFallbacks uint64 // searches that widened past rerankFactor*k

	// Timed, when set by the caller before the search, makes the quantized
	// path record per-phase wall time below; unset it costs nothing.
	Timed    bool
	ScanNS   int64 // time in quantized sweeps
	RerankNS int64 // time in exact reranks
}

// accumulate folds one search's local counters in; nil-safe.
func (s *SearchStats) accumulate(pops, nodes, items uint64) {
	if s == nil {
		return
	}
	s.HeapPops += pops
	s.NodesRead += nodes
	s.ItemsScored += items
}

// pqEntry is either a node (to expand) or an item (a candidate result) in the
// best-first search queue, keyed by its lower-bound squared distance.
type pqEntry struct {
	distSq float64
	node   *Node // nil for item entries
	item   Item
}

// searchPQ is a binary min-heap of pqEntry ordered by distSq. It reproduces
// container/heap's sift algorithms exactly — push is append+up(n-1), pop
// swaps the root with the last element, sifts down over n-1, and removes the
// tail — with the same strict < comparator the previous heap.Interface
// implementation used. Identical swap sequences mean identical array layouts
// and therefore an identical pop order among equal-distance entries, which
// keeps retrieval output byte-for-byte stable; the rewrite only removes the
// interface{} boxing that allocated on every push.
type searchPQ []pqEntry

func (p *searchPQ) push(e pqEntry) {
	*p = append(*p, e)
	h := *p
	j := len(h) - 1
	for {
		i := (j - 1) / 2
		if i == j || !(h[j].distSq < h[i].distSq) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (p *searchPQ) pop() pqEntry {
	h := *p
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].distSq < h[j1].distSq {
			j = j2
		}
		if !(h[j].distSq < h[i].distSq) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	e := h[n]
	*p = h[:n]
	return e
}

// searchScratch holds the per-search working memory — the priority queue and
// the batch-kernel output buffer — pooled across searches so a steady-state
// query allocates nothing inside the hot loop (the returned results slice is
// the one allocation per search).
type searchScratch struct {
	pq    searchPQ
	dists []float64
}

var scratchPool = sync.Pool{New: func() interface{} { return new(searchScratch) }}

// leafDists returns the buffer for one leaf's batch distances.
func (sc *searchScratch) leafDists(n int) []float64 {
	if cap(sc.dists) < n {
		sc.dists = make([]float64, n)
	}
	return sc.dists[:n]
}

// KNN returns the k nearest items to q in the whole tree, ordered by
// ascending distance (ties broken by ItemID for determinism). Every node
// visited is reported to acc. A nil acc disables accounting.
func (t *Tree) KNN(q vec.Vector, k int, acc disk.Accounter) []Neighbor {
	return t.KNNFrom(t.root, q, k, acc)
}

// KNNCtx is KNN with cooperative cancellation: when ctx is done the search
// stops and ctx.Err() is returned.
func (t *Tree) KNNCtx(ctx context.Context, q vec.Vector, k int, acc disk.Accounter) ([]Neighbor, error) {
	return t.KNNFromCtx(ctx, t.root, q, k, acc)
}

// KNNFrom restricts the k-NN search to the subtree rooted at n. The query
// decomposition engine uses this for the localized multipoint k-NN
// computations of §3.3: each final subquery searches only its own subcluster
// (or, after boundary expansion, an ancestor's subtree).
func (t *Tree) KNNFrom(n *Node, q vec.Vector, k int, acc disk.Accounter) []Neighbor {
	ns, _ := t.KNNFromCtx(context.Background(), n, q, k, acc)
	return ns
}

// KNNFromCtx is KNNFrom with cooperative cancellation.
func (t *Tree) KNNFromCtx(ctx context.Context, n *Node, q vec.Vector, k int, acc disk.Accounter) ([]Neighbor, error) {
	return t.KNNFromStatsCtx(ctx, n, q, k, acc, nil)
}

// KNNFromStatsCtx is KNNFromCtx with optional effort accounting: on
// successful completion the search's queue pops, node expansions, and item
// scorings are folded into st (nil st skips accumulation).
func (t *Tree) KNNFromStatsCtx(ctx context.Context, n *Node, q vec.Vector, k int, acc disk.Accounter, st *SearchStats) ([]Neighbor, error) {
	if k <= 0 || n == nil || n.Len() == 0 {
		return nil, ctx.Err()
	}
	if acc == nil {
		acc = disk.Nop{}
	}
	sc := scratchPool.Get().(*searchScratch)
	defer scratchPool.Put(sc)
	var pops, nodes, items uint64
	sc.pq = append(sc.pq[:0], pqEntry{distSq: n.rect.MinDistSq(q), node: n})
	results := make([]Neighbor, 0, k)
	var ties []Neighbor
	kthSq := math.Inf(1)
	for steps := 0; len(sc.pq) > 0; steps++ {
		if steps%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		e := sc.pq.pop()
		pops++
		if len(results) == k && e.distSq > kthSq {
			break
		}
		if e.node == nil {
			// Item candidate: its distance is exact, and because the queue is
			// ordered it arrives in ascending order. Once k results are held,
			// candidates matching the kth distance exactly are kept aside so
			// the boundary tie resolves by ID, not by heap pop order.
			if len(results) < k {
				results = append(results, Neighbor{
					ID: e.item.ID, Point: e.item.Point, Dist: math.Sqrt(e.distSq),
				})
				if len(results) == k {
					kthSq = e.distSq
				}
			} else if e.distSq == kthSq {
				ties = append(ties, Neighbor{
					ID: e.item.ID, Point: e.item.Point, Dist: math.Sqrt(e.distSq),
				})
			}
			continue
		}
		acc.Access(e.node.id)
		nodes++
		if e.node.leaf {
			items += uint64(len(e.node.items))
			if t.blocksOK && e.node.block != nil {
				// One batch kernel call scores the whole leaf off its
				// contiguous block; the kernel preserves the scalar
				// accumulation order, so each distSq is bit-identical to the
				// per-item SqL2 below.
				d := sc.leafDists(len(e.node.items))
				vec.SquaredDistsTo(q, e.node.block, d)
				for i, it := range e.node.items {
					sc.pq.push(pqEntry{distSq: d[i], item: it})
				}
			} else {
				for _, it := range e.node.items {
					sc.pq.push(pqEntry{distSq: vec.SqL2(q, it.Point), item: it})
				}
			}
			continue
		}
		for _, c := range e.node.children {
			sc.pq.push(pqEntry{distSq: c.rect.MinDistSq(q), node: c})
		}
	}
	results = resolveBoundaryTies(results, ties, k)
	st.accumulate(pops, nodes, items)
	return results, nil
}

// KNNWeighted is KNN under a diagonal-weighted Euclidean metric (the Query
// Point Movement baseline re-weights dimensions each round). Pruning uses a
// weighted MINDIST bound, which remains a valid lower bound for non-negative
// weights.
func (t *Tree) KNNWeighted(q, weights vec.Vector, k int, acc disk.Accounter) []Neighbor {
	return t.KNNWeightedFrom(t.root, q, weights, k, acc)
}

// KNNWeightedFrom restricts a weighted k-NN search to the subtree rooted at
// n. The query decomposition engine uses this when the user assigns
// importance weights to feature families (the paper's §6 extension).
func (t *Tree) KNNWeightedFrom(n *Node, q, weights vec.Vector, k int, acc disk.Accounter) []Neighbor {
	ns, _ := t.KNNWeightedFromCtx(context.Background(), n, q, weights, k, acc)
	return ns
}

// KNNWeightedFromCtx is KNNWeightedFrom with cooperative cancellation.
func (t *Tree) KNNWeightedFromCtx(ctx context.Context, n *Node, q, weights vec.Vector, k int, acc disk.Accounter) ([]Neighbor, error) {
	return t.KNNWeightedFromStatsCtx(ctx, n, q, weights, k, acc, nil)
}

// KNNWeightedFromStatsCtx is KNNWeightedFromCtx with optional effort
// accounting, as in KNNFromStatsCtx.
func (t *Tree) KNNWeightedFromStatsCtx(ctx context.Context, n *Node, q, weights vec.Vector, k int, acc disk.Accounter, st *SearchStats) ([]Neighbor, error) {
	if k <= 0 || n == nil || n.Len() == 0 {
		return nil, ctx.Err()
	}
	if acc == nil {
		acc = disk.Nop{}
	}
	minDistSqW := func(r Rect) float64 {
		var s float64
		for i := range q {
			var d float64
			if q[i] < r.Min[i] {
				d = r.Min[i] - q[i]
			} else if q[i] > r.Max[i] {
				d = q[i] - r.Max[i]
			}
			s += weights[i] * d * d
		}
		return s
	}
	sc := scratchPool.Get().(*searchScratch)
	defer scratchPool.Put(sc)
	var pops, nodes, items uint64
	sc.pq = append(sc.pq[:0], pqEntry{distSq: minDistSqW(n.rect), node: n})
	results := make([]Neighbor, 0, k)
	var ties []Neighbor
	kthSq := math.Inf(1)
	for steps := 0; len(sc.pq) > 0; steps++ {
		if steps%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		e := sc.pq.pop()
		pops++
		if len(results) == k && e.distSq > kthSq {
			break
		}
		if e.node == nil {
			if len(results) < k {
				results = append(results, Neighbor{
					ID: e.item.ID, Point: e.item.Point, Dist: math.Sqrt(e.distSq),
				})
				if len(results) == k {
					kthSq = e.distSq
				}
			} else if e.distSq == kthSq {
				ties = append(ties, Neighbor{
					ID: e.item.ID, Point: e.item.Point, Dist: math.Sqrt(e.distSq),
				})
			}
			continue
		}
		acc.Access(e.node.id)
		nodes++
		if e.node.leaf {
			items += uint64(len(e.node.items))
			if t.blocksOK && e.node.block != nil {
				d := sc.leafDists(len(e.node.items))
				vec.WeightedSquaredDistsTo(q, weights, e.node.block, d)
				for i, it := range e.node.items {
					sc.pq.push(pqEntry{distSq: d[i], item: it})
				}
			} else {
				for _, it := range e.node.items {
					sc.pq.push(pqEntry{distSq: vec.WeightedSqL2(q, it.Point, weights), item: it})
				}
			}
			continue
		}
		for _, c := range e.node.children {
			sc.pq.push(pqEntry{distSq: minDistSqW(c.rect), node: c})
		}
	}
	results = resolveBoundaryTies(results, ties, k)
	st.accumulate(pops, nodes, items)
	return results, nil
}

// resolveBoundaryTies enforces the documented (Dist, ID) selection at the
// k boundary: candidates that matched the kth distance exactly but arrived
// after the result list filled compete with the retained entries by ID
// rather than by the queue's arbitrary pop order among equals. Without this
// the SAME live set indexed under two different tree shapes (one segment
// vs. many, or before vs. after a compaction) could return different
// members of a tied pair — the segmented engine's bit-exactness contract
// forbids that. Tie-free searches take the len(ties)==0 path, identical to
// the historical behaviour.
func resolveBoundaryTies(results, ties []Neighbor, k int) []Neighbor {
	if len(ties) == 0 {
		stabilize(results)
		return results
	}
	results = append(results, ties...)
	stabilize(results)
	return results[:k]
}

// stabilize enforces a deterministic order on equal-distance neighbours:
// ascending (Dist, ID). IDs are unique within a tree, so the order is total
// and this stable insertion sort yields the same permutation the previous
// sort.SliceStable call did — without allocating a closure. The input
// arrives nearly sorted (candidates pop in ascending distance order), so the
// pass is effectively linear.
func stabilize(ns []Neighbor) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && neighborLess(ns[j], ns[j-1]); j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

func neighborLess(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// Search returns all items whose points fall inside r, in no particular
// order. Visited nodes are reported to acc.
func (t *Tree) Search(r Rect, acc disk.Accounter) []Item {
	if acc == nil {
		acc = disk.Nop{}
	}
	var out []Item
	var walk func(n *Node)
	walk = func(n *Node) {
		acc.Access(n.id)
		if n.leaf {
			for _, it := range n.items {
				if r.Contains(it.Point) {
					out = append(out, it)
				}
			}
			return
		}
		for _, c := range n.children {
			if r.Intersects(c.rect) {
				walk(c)
			}
		}
	}
	walk(t.root)
	return out
}

// Walk visits every node in depth-first pre-order, calling fn with each node
// and its level (leaves are level 0). Package rfs uses this to attach
// representatives.
func (t *Tree) Walk(fn func(n *Node, level int)) {
	leafLevel := t.height - 1
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fn(n, leafLevel-depth)
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
}

// LeafOf returns the leaf whose stored item has the given ID and point, or
// nil if absent. The RFS structure maps representative images back to their
// clusters with this.
func (t *Tree) LeafOf(id ItemID, p vec.Vector) *Node { return t.findLeaf(t.root, id, p) }
