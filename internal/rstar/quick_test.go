package rstar

import (
	"math"
	"testing"
	"testing/quick"

	"qdcbir/internal/vec"
)

// rectFrom builds a valid rect from two arbitrary corner arrays.
func rectFrom(a, b [3]float64) (Rect, bool) {
	min := make(vec.Vector, 3)
	max := make(vec.Vector, 3)
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) || math.IsInf(a[i], 0) || math.IsInf(b[i], 0) {
			return Rect{}, false
		}
		min[i] = math.Min(a[i], b[i])
		max[i] = math.Max(a[i], b[i])
	}
	return Rect{Min: min, Max: max}, true
}

func TestQuickUnionCommutativeAndAbsorbing(t *testing.T) {
	f := func(a1, a2, b1, b2 [3]float64) bool {
		ra, ok1 := rectFrom(a1, a2)
		rb, ok2 := rectFrom(b1, b2)
		if !ok1 || !ok2 {
			return true
		}
		u1 := ra.Union(rb)
		u2 := rb.Union(ra)
		if !u1.Min.Equal(u2.Min) || !u1.Max.Equal(u2.Max) {
			return false
		}
		// Union with self is identity; union contains both.
		self := ra.Union(ra)
		if !self.Min.Equal(ra.Min) || !self.Max.Equal(ra.Max) {
			return false
		}
		return u1.ContainsRect(ra) && u1.ContainsRect(rb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickContainsImpliesZeroMinDist(t *testing.T) {
	f := func(a1, a2 [3]float64, p [3]float64) bool {
		r, ok := rectFrom(a1, a2)
		if !ok {
			return true
		}
		for _, x := range p {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		pt := vec.Vector(p[:])
		if r.Contains(pt) {
			return r.MinDistSq(pt) == 0
		}
		return r.MinDistSq(pt) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectsSymmetricAndOverlapConsistent(t *testing.T) {
	f := func(a1, a2, b1, b2 [2]float64) bool {
		ra, ok1 := rectFrom3(a1, a2)
		rb, ok2 := rectFrom3(b1, b2)
		if !ok1 || !ok2 {
			return true
		}
		if ra.Intersects(rb) != rb.Intersects(ra) {
			return false
		}
		// Positive overlap volume implies intersection.
		if ra.OverlapArea(rb) > 0 && !ra.Intersects(rb) {
			return false
		}
		// Disjoint rects have zero overlap.
		if !ra.Intersects(rb) && ra.OverlapArea(rb) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func rectFrom3(a, b [2]float64) (Rect, bool) {
	min := make(vec.Vector, 2)
	max := make(vec.Vector, 2)
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) || math.IsInf(a[i], 0) || math.IsInf(b[i], 0) {
			return Rect{}, false
		}
		min[i] = math.Min(a[i], b[i])
		max[i] = math.Max(a[i], b[i])
	}
	return Rect{Min: min, Max: max}, true
}

// Insertion then immediate self-query must always find the inserted point —
// across arbitrary (finite) coordinates.
func TestQuickInsertThenFind(t *testing.T) {
	tr := New(3, Config{MaxFill: 8, MinFill: 3})
	next := ItemID(0)
	f := func(p [3]float64) bool {
		for _, x := range p {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		id := next
		next++
		pt := vec.Vector(p[:])
		tr.Insert(id, pt)
		got := tr.KNN(pt, 1, nil)
		if len(got) != 1 || got[0].Dist != 0 {
			return false
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
