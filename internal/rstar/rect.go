// Package rstar implements an in-memory R*-tree (Beckmann et al., SIGMOD
// 1990) over d-dimensional points: ChooseSubtree with minimum overlap
// enlargement, the R* split (axis by margin sum, index by overlap), forced
// reinsertion, best-first k-NN search, range search, deletion with tree
// condensation, and STR bulk loading.
//
// The paper builds its Relevance Feedback Support structure as "a
// hierarchical clustering technique, similar to the R*-tree" (§3.1); package
// rfs layers representative images on top of the nodes exposed here. Node
// accesses are reported to a disk.Accounter so experiments can count
// simulated I/O.
package rstar

import (
	"fmt"
	"math"

	"qdcbir/internal/vec"
)

// Rect is an axis-aligned d-dimensional rectangle (MBR).
type Rect struct {
	Min, Max vec.Vector
}

// PointRect returns the degenerate rectangle covering exactly p. The returned
// rect shares no storage with p.
func PointRect(p vec.Vector) Rect {
	return Rect{Min: p.Clone(), Max: p.Clone()}
}

// NewRect validates and returns a rectangle. It panics if dimensions mismatch
// or any min exceeds the corresponding max.
func NewRect(min, max vec.Vector) Rect {
	if len(min) != len(max) {
		panic(fmt.Sprintf("rstar: rect dim mismatch %d vs %d", len(min), len(max)))
	}
	for i := range min {
		if min[i] > max[i] {
			panic(fmt.Sprintf("rstar: rect min[%d]=%v > max[%d]=%v", i, min[i], i, max[i]))
		}
	}
	return Rect{Min: min, Max: max}
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Min) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect { return Rect{Min: r.Min.Clone(), Max: r.Max.Clone()} }

// Contains reports whether point p lies inside r (inclusive).
func (r Rect) Contains(p vec.Vector) bool {
	for i := range p {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether o lies entirely inside r.
func (r Rect) ContainsRect(o Rect) bool {
	for i := range r.Min {
		if o.Min[i] < r.Min[i] || o.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and o share any point.
func (r Rect) Intersects(o Rect) bool {
	for i := range r.Min {
		if r.Min[i] > o.Max[i] || o.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Union returns the smallest rectangle covering both r and o.
func (r Rect) Union(o Rect) Rect {
	u := Rect{Min: r.Min.Clone(), Max: r.Max.Clone()}
	for i := range u.Min {
		if o.Min[i] < u.Min[i] {
			u.Min[i] = o.Min[i]
		}
		if o.Max[i] > u.Max[i] {
			u.Max[i] = o.Max[i]
		}
	}
	return u
}

// Area returns the d-dimensional volume of r.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// Margin returns the sum of edge lengths of r (the R* split criterion).
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Min {
		m += r.Max[i] - r.Min[i]
	}
	return m
}

// OverlapArea returns the volume of the intersection of r and o, or 0 when
// they are disjoint.
func (r Rect) OverlapArea(o Rect) float64 {
	v := 1.0
	for i := range r.Min {
		lo := math.Max(r.Min[i], o.Min[i])
		hi := math.Min(r.Max[i], o.Max[i])
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// Enlargement returns the area increase required for r to cover o.
func (r Rect) Enlargement(o Rect) float64 {
	return r.Union(o).Area() - r.Area()
}

// Center returns the centre point of r.
func (r Rect) Center() vec.Vector {
	c := make(vec.Vector, len(r.Min))
	for i := range c {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}

// Diagonal returns the Euclidean length of r's main diagonal. The RFS
// boundary test (§3.3) divides a point's distance from the node centre by
// this value.
func (r Rect) Diagonal() float64 {
	var s float64
	for i := range r.Min {
		d := r.Max[i] - r.Min[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// MinDistSq returns the squared Euclidean distance from p to the nearest
// point of r (0 if p is inside). This is the MINDIST bound that drives
// best-first k-NN pruning.
func (r Rect) MinDistSq(p vec.Vector) float64 {
	var s float64
	for i := range p {
		var d float64
		if p[i] < r.Min[i] {
			d = r.Min[i] - p[i]
		} else if p[i] > r.Max[i] {
			d = p[i] - r.Max[i]
		}
		s += d * d
	}
	return s
}

// centerDistSq returns the squared distance between the centers of r and o;
// used by forced reinsertion to order entries.
func (r Rect) centerDistSq(o Rect) float64 {
	var s float64
	for i := range r.Min {
		d := (r.Min[i]+r.Max[i])/2 - (o.Min[i]+o.Max[i])/2
		s += d * d
	}
	return s
}
