package rstar

import (
	"context"
	"fmt"
	"math"
	"sort"

	"qdcbir/internal/par"
	"qdcbir/internal/vec"
)

// BulkLoad builds a tree over the given items using Sort-Tile-Recursive (STR)
// packing. Leaves are filled to targetFill entries (clamped to the configured
// occupancy band), which is how the system realises the paper's "maximum of
// 100 and minimum of 70 images each" node occupancy: with targetFill in
// [85, 100] a 15,000-image corpus packs into a 3-level tree exactly as in §4.
//
// STR tiles the points recursively: sort by the first tiling dimension, cut
// into vertical slabs, recurse within each slab on the next dimension, and
// chunk the final runs into leaves. Because the feature space has 37
// dimensions but only on the order of 100-200 leaves, tiling uses only as
// many dimensions as needed (ceil over the slab arithmetic).
func BulkLoad(dim int, cfg Config, items []Item, targetFill int) *Tree {
	t, err := BulkLoadCtx(context.Background(), dim, cfg, items, targetFill, 0)
	if err != nil {
		panic(fmt.Sprintf("rstar: bulk load: %v", err)) // unreachable: ctx never cancels
	}
	return t
}

// BulkLoadCtx is BulkLoad with cancellation and a parallelism knob
// (parallelism <= 0 uses one worker per CPU). The sort phases of the STR
// tiling — where nearly all the build time goes — run concurrently across
// slabs; node creation stays serial so page IDs, and therefore the whole
// tree, are byte-identical at every worker count.
func BulkLoadCtx(ctx context.Context, dim int, cfg Config, items []Item, targetFill, parallelism int) (*Tree, error) {
	cfg = cfg.withDefaults()
	t := &Tree{dim: dim, cfg: cfg, height: 1, fromBulk: true}
	if targetFill <= 0 || targetFill > cfg.MaxFill {
		targetFill = cfg.MaxFill
	}
	if targetFill < cfg.MinFill {
		targetFill = cfg.MinFill
	}
	if len(items) == 0 {
		t.root = t.newNode(true)
		return t, nil
	}
	for _, it := range items {
		if len(it.Point) != dim {
			panic(fmt.Sprintf("rstar: bulk item dim %d into %d-d tree", len(it.Point), dim))
		}
	}

	// The working copy shares the callers' point slices read-only; packBlocks
	// below copies every point into the tree-owned slab, so the finished tree
	// retains no caller memory and callers may reuse their slices.
	own := make([]Item, len(items))
	copy(own, items)

	chunks, err := tileItems(ctx, own, dim, targetFill, 0, par.N(parallelism))
	if err != nil {
		return nil, err
	}
	leaves := make([]*Node, 0, len(chunks))
	for _, chunk := range chunks {
		leaf := t.newNode(true)
		leaf.items = append([]Item(nil), chunk...)
		leaf.rect = nodeMBR(leaf)
		leaves = append(leaves, leaf)
	}
	level := leaves
	for len(level) > 1 {
		level = packInternal(t, level, targetFill)
		t.height++
	}
	t.root = level[0]
	t.size = len(items)
	t.packBlocks()
	return t, nil
}

// tileItems recursively tiles items into leaf-sized runs of at most
// targetFill entries, returning them in tiling order. Sorting mutates the
// items slice in place; recursive calls operate on disjoint subslices, so
// slabs sort concurrently without synchronization and the resulting
// partition is identical to the serial one.
func tileItems(ctx context.Context, items []Item, dim, targetFill, axis, p int) ([][]Item, error) {
	n := len(items)
	if n <= targetFill {
		return [][]Item{items}, nil
	}
	pages := int(math.Ceil(float64(n) / float64(targetFill)))
	// Number of slabs along this axis: ceil(sqrt(pages)) keeps tiles roughly
	// square in the projected plane, the classic STR choice.
	slabs := int(math.Ceil(math.Sqrt(float64(pages))))
	if slabs < 1 {
		slabs = 1
	}
	sort.SliceStable(items, func(i, j int) bool {
		return items[i].Point[axis] < items[j].Point[axis]
	})
	perSlab := int(math.Ceil(float64(n) / float64(slabs)))
	type span struct{ lo, hi int }
	var spans []span
	for lo := 0; lo < n; lo += perSlab {
		hi := lo + perSlab
		if hi > n {
			hi = n
		}
		spans = append(spans, span{lo, hi})
	}
	nextAxis := (axis + 1) % dim
	// Split the worker budget across slabs so the total stays bounded at
	// every recursion depth.
	subP := p / len(spans)
	if subP < 1 {
		subP = 1
	}
	results := make([][][]Item, len(spans))
	err := par.Do(ctx, len(spans), p, func(i int) error {
		slab := items[spans[i].lo:spans[i].hi]
		if slabs == 1 || len(slab) <= targetFill {
			// Chunk directly to avoid infinite recursion on tiny slabs.
			var chunks [][]Item
			for s := 0; s < len(slab); s += targetFill {
				e := s + targetFill
				if e > len(slab) {
					e = len(slab)
				}
				chunks = append(chunks, slab[s:e])
			}
			results[i] = chunks
			return nil
		}
		sub, err := tileItems(ctx, slab, dim, targetFill, nextAxis, subP)
		results[i] = sub
		return err
	})
	if err != nil {
		return nil, err
	}
	var out [][]Item
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

// packInternal groups consecutive nodes (already spatially coherent from STR
// ordering) into parents of about targetFill children.
func packInternal(t *Tree, nodes []*Node, targetFill int) []*Node {
	var parents []*Node
	for lo := 0; lo < len(nodes); lo += targetFill {
		hi := lo + targetFill
		if hi > len(nodes) {
			hi = len(nodes)
		}
		p := t.newNode(false)
		p.children = append([]*Node(nil), nodes[lo:hi]...)
		for _, c := range p.children {
			c.parent = p
		}
		p.rect = nodeMBR(p)
		parents = append(parents, p)
	}
	// Avoid a root with a single child unless it is the final root.
	if len(parents) >= 2 {
		last := parents[len(parents)-1]
		if len(last.children) == 1 && len(parents[len(parents)-2].children) > 2 {
			prev := parents[len(parents)-2]
			moved := prev.children[len(prev.children)-1]
			prev.children = prev.children[:len(prev.children)-1]
			moved.parent = last
			last.children = append([]*Node{moved}, last.children...)
			prev.rect = nodeMBR(prev)
			last.rect = nodeMBR(last)
		}
	}
	return parents
}

// ItemsOf returns all items stored in the tree, in depth-first leaf order.
func (t *Tree) ItemsOf() []Item {
	return itemsInSubtree(t.root, make([]Item, 0, t.size))
}

// Points returns a map from ItemID to its stored point. Useful for building
// lookup tables after a bulk load.
func (t *Tree) Points() map[ItemID]vec.Vector {
	m := make(map[ItemID]vec.Vector, t.size)
	for _, it := range t.ItemsOf() {
		m[it.ID] = it.Point
	}
	return m
}
