package rstar

import (
	"fmt"
	"math"
	"sort"

	"qdcbir/internal/disk"
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// ItemID identifies one indexed point (one image in the CBIR corpus).
type ItemID int

// Item is a leaf entry: an identified point.
type Item struct {
	ID    ItemID
	Point vec.Vector
}

// Node is one page of the tree. Nodes are exported read-only: package rfs
// walks them to hang representative images off every cluster, and the query
// decomposition engine descends them during feedback processing. Mutation is
// exclusively through Tree methods.
type Node struct {
	id       disk.PageID
	leaf     bool
	rect     Rect
	parent   *Node
	children []*Node // populated iff !leaf
	items    []Item  // populated iff leaf
	// block is the leaf's contiguous dimension-strided copy of its item
	// points, a subrange of the tree-owned slab built by packBlocks. Valid
	// only while Tree.blocksOK holds; k-NN scores a whole leaf with one
	// batch kernel call through it.
	block []float64
	// qlo and qhi delimit the subtree's slab rows [qlo, qhi): leaves are
	// packed in depth-first order, so every subtree owns one contiguous row
	// range and the quantized scan of a subtree is a single linear sweep.
	// Valid only while Tree.quantOK holds (set by packQuantized).
	qlo, qhi int
}

// ID returns the node's simulated page ID.
func (n *Node) ID() disk.PageID { return n.id }

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.leaf }

// Rect returns the node's minimum bounding rectangle.
func (n *Node) Rect() Rect { return n.rect }

// Parent returns the node's parent, or nil for the root.
func (n *Node) Parent() *Node { return n.parent }

// Children returns the internal node's children (nil for leaves). The slice
// must not be modified.
func (n *Node) Children() []*Node { return n.children }

// Items returns the leaf's entries (nil for internal nodes). The slice must
// not be modified.
func (n *Node) Items() []Item { return n.items }

// Len returns the entry count (children or items).
func (n *Node) Len() int {
	if n.leaf {
		return len(n.items)
	}
	return len(n.children)
}

// Config sets the tree's fill factors. The paper's prototype targets nodes
// with "a maximum of 100 and minimum of 70 images each" (§4); that occupancy
// band is achieved by STR bulk loading (see BulkLoad), while incremental
// insertion uses a standard R* minimum fill (40% of maximum) since a split of
// MaxFill+1 entries cannot give both halves 70 entries.
type Config struct {
	// MaxFill bounds the entries per node. Default 100.
	MaxFill int
	// MinFill is the minimum entries per non-root node and the R* split
	// minimum; it must satisfy 2*MinFill <= MaxFill+1. Default 40% of
	// MaxFill.
	MinFill int
	// ReinsertFrac is the fraction of entries removed on the first overflow
	// per level per insertion (the R* forced-reinsert "p" parameter).
	// Default 0.3.
	ReinsertFrac float64
}

func (c Config) withDefaults() Config {
	if c.MaxFill <= 0 {
		c.MaxFill = 100
	}
	if c.MinFill <= 0 {
		c.MinFill = c.MaxFill * 2 / 5
		if c.MinFill < 1 {
			c.MinFill = 1
		}
	}
	if 2*c.MinFill > c.MaxFill+1 {
		panic(fmt.Sprintf("rstar: MinFill %d too large for MaxFill %d (need 2*MinFill <= MaxFill+1)",
			c.MinFill, c.MaxFill))
	}
	if c.ReinsertFrac <= 0 || c.ReinsertFrac >= 1 {
		c.ReinsertFrac = 0.3
	}
	return c
}

// Tree is an R*-tree over d-dimensional points.
//
// Concurrency invariant: once construction (New+Insert, BulkLoad, or
// FromSnapshot) completes, every read path — Node accessors, KNN*, Search,
// Walk, LeafOf, Height, Len, NodeCount — is safe for unsynchronized use from
// any number of goroutines, because reads never mutate tree state (no
// internal caches, no rebalancing on read). Mutations (Insert, Delete)
// require external exclusion against both readers and other writers. The
// shared Accounter passed to a search must itself be goroutine-safe if the
// searches run concurrently (disk.Counter and disk.Nop are; disk.LRUCache is
// not — see package disk).
type Tree struct {
	dim    int
	cfg    Config
	root   *Node
	size   int
	height int
	nextID disk.PageID
	// fromBulk marks trees built by BulkLoad; STR packing may leave one
	// under-filled node per level, which CheckInvariants then tolerates.
	fromBulk bool
	// blocksOK reports that every leaf's block mirrors its items. Bulk load
	// and snapshot restore establish it; Insert and Delete clear it globally,
	// because splits and forced reinsertion move items across leaves and
	// reorder them in place, breaking the row correspondence. Searches fall
	// back to per-item scoring while it is false.
	blocksOK bool
	// slab is the flat point storage behind the leaf blocks (depth-first leaf
	// order), retained so the quantized scan path can train codes over it and
	// re-rank candidates against the exact rows. Valid while blocksOK holds.
	slab []float64

	// Quantized-scan state (see quant.go): the SQ8 codes mirroring slab
	// row-for-row, the slab-ordered item IDs, and the trained quantizer.
	// Valid while quantOK holds; any structural mutation clears all of it.
	quantOK bool
	qcodes  []uint8
	qids    []ItemID
	quant   *store.Quantized

	// Float32-scan state (see f32.go): the float32 mirror of the slab,
	// narrowed once at enable time. It shares qids and the node qlo/qhi
	// ranges with the quantized path (either flag keeps them alive); valid
	// while f32OK holds, cleared by any structural mutation.
	f32OK bool
	fslab []float32
}

// New returns an empty tree for points of the given dimensionality.
func New(dim int, cfg Config) *Tree {
	if dim <= 0 {
		panic(fmt.Sprintf("rstar: invalid dimension %d", dim))
	}
	cfg = cfg.withDefaults()
	if cfg.MinFill >= cfg.MaxFill {
		panic(fmt.Sprintf("rstar: MinFill %d >= MaxFill %d", cfg.MinFill, cfg.MaxFill))
	}
	t := &Tree{dim: dim, cfg: cfg, height: 1}
	t.root = t.newNode(true)
	return t
}

// itemsInSubtree appends every item under n to dst and returns it.
func itemsInSubtree(n *Node, dst []Item) []Item {
	if n.leaf {
		return append(dst, n.items...)
	}
	for _, c := range n.children {
		dst = itemsInSubtree(c, dst)
	}
	return dst
}

func (t *Tree) newNode(leaf bool) *Node {
	t.nextID++
	return &Node{id: t.nextID, leaf: leaf}
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Len returns the number of indexed items.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a tree that is a single leaf).
func (t *Tree) Height() int { return t.height }

// Dim returns the point dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Config returns the tree's fill configuration.
func (t *Tree) Config() Config { return t.cfg }

// NodeCount returns the total number of nodes (pages) in the tree.
func (t *Tree) NodeCount() int {
	var count func(*Node) int
	count = func(n *Node) int {
		c := 1
		for _, ch := range n.children {
			c += count(ch)
		}
		return c
	}
	return count(t.root)
}

// Insert adds an item to the tree. The point is cloned; callers may reuse the
// slice. It panics on a dimension mismatch.
func (t *Tree) Insert(id ItemID, p vec.Vector) {
	if len(p) != t.dim {
		panic(fmt.Sprintf("rstar: insert dim %d into %d-d tree", len(p), t.dim))
	}
	t.invalidateBlocks()
	item := Item{ID: id, Point: p.Clone()}
	// reinserted tracks which levels already used forced reinsertion during
	// this insertion (R* OverflowTreatment is invoked at most once per level).
	reinserted := make(map[int]bool)
	t.insertItem(item, reinserted)
	t.size++
}

// insertItem places item into a leaf and resolves overflows.
func (t *Tree) insertItem(item Item, reinserted map[int]bool) {
	leaf := t.chooseLeaf(t.root, PointRect(item.Point))
	leaf.items = append(leaf.items, item)
	t.adjustRectUp(leaf, PointRect(item.Point))
	if len(leaf.items) > t.cfg.MaxFill {
		t.overflow(leaf, reinserted)
	}
}

// chooseLeaf implements R* ChooseSubtree for point data: at the level above
// the leaves pick the child needing least overlap enlargement (ties broken by
// least area enlargement, then least area); higher up pick least area
// enlargement (ties by least area).
func (t *Tree) chooseLeaf(n *Node, r Rect) *Node {
	for !n.leaf {
		childrenAreLeaves := n.children[0].leaf
		var best *Node
		bestOverlap, bestEnlarge, bestArea := math.Inf(1), math.Inf(1), math.Inf(1)
		for _, ch := range n.children {
			enlarge := ch.rect.Enlargement(r)
			area := ch.rect.Area()
			if childrenAreLeaves {
				overlap := overlapEnlargement(n.children, ch, r)
				if overlap < bestOverlap ||
					(overlap == bestOverlap && enlarge < bestEnlarge) ||
					(overlap == bestOverlap && enlarge == bestEnlarge && area < bestArea) {
					best, bestOverlap, bestEnlarge, bestArea = ch, overlap, enlarge, area
				}
			} else {
				if enlarge < bestEnlarge || (enlarge == bestEnlarge && area < bestArea) {
					best, bestEnlarge, bestArea = ch, enlarge, area
				}
			}
		}
		if best == nil {
			// Astronomic coordinates can overflow areas to +Inf, making every
			// enlargement NaN and every comparison false. Degrade to the
			// first child rather than crash; the tree stays valid, only the
			// split quality suffers at those magnitudes.
			best = n.children[0]
		}
		n = best
	}
	return n
}

// overlapEnlargement returns how much the overlap between candidate and its
// siblings grows if candidate's rect is enlarged to cover r.
func overlapEnlargement(siblings []*Node, candidate *Node, r Rect) float64 {
	enlarged := candidate.rect.Union(r)
	var before, after float64
	for _, s := range siblings {
		if s == candidate {
			continue
		}
		before += candidate.rect.OverlapArea(s.rect)
		after += enlarged.OverlapArea(s.rect)
	}
	return after - before
}

// level returns the node's level, counting leaves as 0.
func (t *Tree) level(n *Node) int {
	l := 0
	for !n.leaf {
		n = n.children[0]
		l++
	}
	return l
}

// overflow applies R* OverflowTreatment to an overfull node: forced
// reinsertion the first time a level overflows during one insertion, a split
// otherwise.
func (t *Tree) overflow(n *Node, reinserted map[int]bool) {
	lvl := t.level(n)
	if n != t.root && !reinserted[lvl] {
		reinserted[lvl] = true
		t.reinsert(n, reinserted)
		return
	}
	t.split(n, reinserted)
}

// reinsert removes the ReinsertFrac entries whose centers are farthest from
// the node's center and reinserts them ("far reinsert"), tightening the node.
func (t *Tree) reinsert(n *Node, reinserted map[int]bool) {
	p := int(math.Ceil(t.cfg.ReinsertFrac * float64(n.Len())))
	if p < 1 {
		p = 1
	}
	if n.leaf {
		sort.SliceStable(n.items, func(i, j int) bool {
			return n.rect.centerDistSq(PointRect(n.items[i].Point)) <
				n.rect.centerDistSq(PointRect(n.items[j].Point))
		})
		cut := len(n.items) - p
		removed := make([]Item, p)
		copy(removed, n.items[cut:])
		n.items = n.items[:cut]
		t.recomputeRectUp(n)
		for _, it := range removed {
			t.insertItem(it, reinserted)
		}
		return
	}
	sort.SliceStable(n.children, func(i, j int) bool {
		return n.rect.centerDistSq(n.children[i].rect) < n.rect.centerDistSq(n.children[j].rect)
	})
	cut := len(n.children) - p
	removed := make([]*Node, p)
	copy(removed, n.children[cut:])
	n.children = n.children[:cut]
	t.recomputeRectUp(n)
	lvl := t.level(n)
	for _, ch := range removed {
		t.insertSubtree(ch, lvl-1, reinserted)
	}
}

// insertSubtree reinserts an orphaned subtree whose root belongs at the given
// level (leaves = level 0).
func (t *Tree) insertSubtree(sub *Node, targetLevel int, reinserted map[int]bool) {
	n := t.root
	for t.level(n) > targetLevel+1 {
		var best *Node
		bestEnlarge, bestArea := math.Inf(1), math.Inf(1)
		for _, ch := range n.children {
			enlarge := ch.rect.Enlargement(sub.rect)
			area := ch.rect.Area()
			if enlarge < bestEnlarge || (enlarge == bestEnlarge && area < bestArea) {
				best, bestEnlarge, bestArea = ch, enlarge, area
			}
		}
		if best == nil {
			best = n.children[0] // NaN-degenerate geometry; see chooseLeaf
		}
		n = best
	}
	sub.parent = n
	n.children = append(n.children, sub)
	t.adjustRectUp(n, sub.rect)
	if len(n.children) > t.cfg.MaxFill {
		t.overflow(n, reinserted)
	}
}

// split divides an overfull node using the R* topological split and
// propagates the new sibling upward.
func (t *Tree) split(n *Node, reinserted map[int]bool) {
	var sibling *Node
	if n.leaf {
		left, right := splitEntries(n.items, t.cfg.MinFill,
			func(it Item) Rect { return PointRect(it.Point) })
		sibling = t.newNode(true)
		n.items, sibling.items = left, right
	} else {
		left, right := splitEntries(n.children, t.cfg.MinFill,
			func(c *Node) Rect { return c.rect })
		sibling = t.newNode(false)
		n.children, sibling.children = left, right
		for _, c := range sibling.children {
			c.parent = sibling
		}
	}
	n.rect = nodeMBR(n)
	sibling.rect = nodeMBR(sibling)

	if n == t.root {
		newRoot := t.newNode(false)
		newRoot.children = []*Node{n, sibling}
		n.parent, sibling.parent = newRoot, newRoot
		newRoot.rect = nodeMBR(newRoot)
		t.root = newRoot
		t.height++
		return
	}
	parent := n.parent
	sibling.parent = parent
	parent.children = append(parent.children, sibling)
	t.recomputeRectUp(parent)
	if len(parent.children) > t.cfg.MaxFill {
		t.overflow(parent, reinserted)
	}
}

// splitEntries implements ChooseSplitAxis + ChooseSplitIndex over a generic
// entry slice. It returns the two groups.
func splitEntries[E any](entries []E, minFill int, rectOf func(E) Rect) (left, right []E) {
	dim := rectOf(entries[0]).Dim()
	m := len(entries)
	// distCount is the number of candidate distributions per sort order.
	distCount := m - 2*minFill + 1
	if distCount < 1 {
		distCount = 1
	}

	type order struct {
		byMin bool
		axis  int
	}
	bestAxis, bestMargin := -1, math.Inf(1)
	var bestOrder order
	// ChooseSplitAxis: for each axis, sort by lower then by upper value and
	// sum the margins of all distributions; pick the axis (and sort order)
	// with the minimal margin sum.
	idx := make([]int, m)
	sorted := make([]E, m)
	for axis := 0; axis < dim; axis++ {
		for _, byMin := range []bool{true, false} {
			for i := range idx {
				idx[i] = i
			}
			sort.SliceStable(idx, func(a, b int) bool {
				ra, rb := rectOf(entries[idx[a]]), rectOf(entries[idx[b]])
				if byMin {
					return ra.Min[axis] < rb.Min[axis]
				}
				return ra.Max[axis] < rb.Max[axis]
			})
			for i, j := range idx {
				sorted[i] = entries[j]
			}
			var marginSum float64
			for d := 0; d < distCount; d++ {
				k := minFill + d
				marginSum += groupMBR(sorted[:k], rectOf).Margin() +
					groupMBR(sorted[k:], rectOf).Margin()
			}
			if marginSum < bestMargin {
				bestMargin = marginSum
				bestAxis = axis
				bestOrder = order{byMin: byMin, axis: axis}
			}
		}
	}
	_ = bestAxis

	// ChooseSplitIndex: along the chosen axis/order pick the distribution
	// with minimal overlap (ties: minimal combined area).
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := rectOf(entries[idx[a]]), rectOf(entries[idx[b]])
		if bestOrder.byMin {
			return ra.Min[bestOrder.axis] < rb.Min[bestOrder.axis]
		}
		return ra.Max[bestOrder.axis] < rb.Max[bestOrder.axis]
	})
	for i, j := range idx {
		sorted[i] = entries[j]
	}
	bestSplit, bestOverlap, bestArea := minFill, math.Inf(1), math.Inf(1)
	for d := 0; d < distCount; d++ {
		k := minFill + d
		r1 := groupMBR(sorted[:k], rectOf)
		r2 := groupMBR(sorted[k:], rectOf)
		overlap := r1.OverlapArea(r2)
		area := r1.Area() + r2.Area()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestSplit, bestOverlap, bestArea = k, overlap, area
		}
	}
	left = make([]E, bestSplit)
	right = make([]E, m-bestSplit)
	copy(left, sorted[:bestSplit])
	copy(right, sorted[bestSplit:])
	return left, right
}

func groupMBR[E any](entries []E, rectOf func(E) Rect) Rect {
	r := rectOf(entries[0]).Clone()
	for _, e := range entries[1:] {
		r = r.Union(rectOf(e))
	}
	return r
}

// nodeMBR recomputes a node's MBR from its entries.
func nodeMBR(n *Node) Rect {
	if n.leaf {
		if len(n.items) == 0 {
			return n.rect
		}
		r := PointRect(n.items[0].Point)
		for _, it := range n.items[1:] {
			r = r.Union(PointRect(it.Point))
		}
		return r
	}
	if len(n.children) == 0 {
		return n.rect
	}
	r := n.children[0].rect.Clone()
	for _, c := range n.children[1:] {
		r = r.Union(c.rect)
	}
	return r
}

// adjustRectUp grows every ancestor MBR to cover r. It is cheaper than a full
// recompute and sufficient after pure growth.
func (t *Tree) adjustRectUp(n *Node, r Rect) {
	for cur := n; cur != nil; cur = cur.parent {
		if len(cur.rect.Min) == 0 {
			cur.rect = r.Clone()
			continue
		}
		cur.rect = cur.rect.Union(r)
	}
}

// recomputeRectUp recomputes MBRs exactly from n up to the root; required
// after shrinking operations (reinsertion removal, splits, deletion).
func (t *Tree) recomputeRectUp(n *Node) {
	for cur := n; cur != nil; cur = cur.parent {
		cur.rect = nodeMBR(cur)
	}
}

// Delete removes the item with the given ID located at point p. It returns
// false if no such item exists. Underfull nodes are dissolved and their
// entries reinserted (condense-tree).
func (t *Tree) Delete(id ItemID, p vec.Vector) bool {
	leaf := t.findLeaf(t.root, id, p)
	if leaf == nil {
		return false
	}
	t.invalidateBlocks()
	for i, it := range leaf.items {
		if it.ID == id && it.Point.Equal(p) {
			leaf.items = append(leaf.items[:i], leaf.items[i+1:]...)
			break
		}
	}
	t.size--
	t.condense(leaf)
	return true
}

func (t *Tree) findLeaf(n *Node, id ItemID, p vec.Vector) *Node {
	if !n.rect.Contains(p) && n.Len() > 0 {
		return nil
	}
	if n.leaf {
		for _, it := range n.items {
			if it.ID == id && it.Point.Equal(p) {
				return n
			}
		}
		return nil
	}
	for _, c := range n.children {
		if c.rect.Contains(p) {
			if leaf := t.findLeaf(c, id, p); leaf != nil {
				return leaf
			}
		}
	}
	return nil
}

// condense walks from a shrunken leaf to the root, dissolving underfull
// nodes and reinserting their items. Orphaned subtrees are flattened to items
// rather than grafted at their original level: deletions are rare in this
// system (the corpus is built once), so the simpler strategy that can never
// violate height balance is preferred over level-preserving grafts.
func (t *Tree) condense(n *Node) {
	var orphanItems []Item
	for cur := n; cur != t.root; {
		parent := cur.parent
		if cur.Len() < t.cfg.MinFill {
			for i, c := range parent.children {
				if c == cur {
					parent.children = append(parent.children[:i], parent.children[i+1:]...)
					break
				}
			}
			orphanItems = itemsInSubtree(cur, orphanItems)
		} else {
			cur.rect = nodeMBR(cur)
		}
		cur = parent
	}
	t.recomputeRectUp(t.root)

	// Shrink the root if it lost all but one child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.root.parent = nil
		t.height--
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = t.newNode(true)
		t.height = 1
	}

	reinserted := make(map[int]bool)
	for _, it := range orphanItems {
		t.insertItem(it, reinserted)
	}
}
