package rstar

import "fmt"

// CheckInvariants validates the structural invariants of the tree and returns
// the first violation found, or nil. Tests and the RFS builder call this
// after construction; it is O(n) and not intended for hot paths.
//
// Invariants checked:
//  1. Every leaf is at the same depth (height balance).
//  2. Every node except the root holds between MinFill and MaxFill entries
//     (the root may hold fewer; bulk-loaded trees may pack the last node of a
//     level lighter, which is tolerated down to 1).
//  3. Every node's rect is exactly the MBR of its entries.
//  4. Parent pointers are consistent.
//  5. The recorded size matches the number of stored items and no ItemID
//     appears twice.
func (t *Tree) CheckInvariants() error {
	leafDepth := -1
	seen := make(map[ItemID]bool, t.size)
	var walk func(n *Node, depth int, isRoot bool, bulkTolerant bool) error
	walk = func(n *Node, depth int, isRoot bool, bulkTolerant bool) error {
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("leaf %d at depth %d, expected %d", n.id, depth, leafDepth)
			}
		}
		if !isRoot {
			lo := 1 // bulk loading may leave one light node per level
			if !bulkTolerant {
				lo = t.cfg.MinFill
			}
			if n.Len() < lo || n.Len() > t.cfg.MaxFill {
				return fmt.Errorf("node %d has %d entries outside [%d,%d]", n.id, n.Len(), lo, t.cfg.MaxFill)
			}
		} else if n.Len() > t.cfg.MaxFill {
			return fmt.Errorf("root has %d entries > MaxFill %d", n.Len(), t.cfg.MaxFill)
		}
		want := nodeMBR(n)
		if n.Len() > 0 && (!n.rect.Min.Equal(want.Min) || !n.rect.Max.Equal(want.Max)) {
			return fmt.Errorf("node %d rect %v/%v != MBR of entries %v/%v",
				n.id, n.rect.Min, n.rect.Max, want.Min, want.Max)
		}
		if n.leaf {
			for _, it := range n.items {
				if seen[it.ID] {
					return fmt.Errorf("duplicate item %d", it.ID)
				}
				seen[it.ID] = true
				if len(it.Point) != t.dim {
					return fmt.Errorf("item %d has dim %d, tree dim %d", it.ID, len(it.Point), t.dim)
				}
			}
			return nil
		}
		for _, c := range n.children {
			if c.parent != n {
				return fmt.Errorf("child %d of node %d has wrong parent", c.id, n.id)
			}
			if err := walk(c, depth+1, false, bulkTolerant); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, true, t.bulkLoaded()); err != nil {
		return err
	}
	if len(seen) != t.size {
		return fmt.Errorf("size %d but %d items stored", t.size, len(seen))
	}
	if leafDepth >= 0 && leafDepth != t.height-1 {
		return fmt.Errorf("height %d but leaves at depth %d", t.height, leafDepth)
	}
	return nil
}

// bulkLoaded reports whether the tree tolerates light nodes: STR packing can
// leave the trailing node of a level under MinFill, and that slack persists
// across later mutations.
func (t *Tree) bulkLoaded() bool { return t.fromBulk }
