package rstar

import (
	"math/rand"
	"testing"

	"qdcbir/internal/disk"
	"qdcbir/internal/vec"
)

func bulkItems(pts []vec.Vector) []Item {
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = Item{ID: ItemID(i), Point: p}
	}
	return items
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := BulkLoad(3, smallCfg, nil, 0)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("len=%d h=%d", tr.Len(), tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadSingleLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPoints(rng, 5, 2, 3)
	tr := BulkLoad(2, smallCfg, bulkItems(pts), 8)
	if tr.Height() != 1 || tr.Len() != 5 {
		t.Fatalf("h=%d len=%d", tr.Height(), tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadInvariantsAndCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{50, 500, 3000} {
		pts := randPoints(rng, n, 6, 10)
		tr := BulkLoad(6, smallCfg, bulkItems(pts), 8)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// All IDs present exactly once.
		seen := make(map[ItemID]bool)
		for _, it := range tr.ItemsOf() {
			if seen[it.ID] {
				t.Fatalf("n=%d: duplicate %d", n, it.ID)
			}
			seen[it.ID] = true
		}
		if len(seen) != n {
			t.Fatalf("n=%d: only %d items reachable", n, len(seen))
		}
	}
}

func TestBulkLoadKNNCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 1000, 5, 10)
	tr := BulkLoad(5, smallCfg, bulkItems(pts), 8)
	for trial := 0; trial < 15; trial++ {
		q := randPoints(rng, 1, 5, 10)[0]
		got := tr.KNN(q, 12, nil)
		want := linearKNN(pts, q, 12)
		for i := range got {
			if !almostEq(got[i].Dist, want[i], 1e-9) {
				t.Fatalf("trial %d rank %d: %v want %v", trial, i, got[i].Dist, want[i])
			}
		}
	}
}

func TestBulkLoadDoesNotAliasInput(t *testing.T) {
	pts := []vec.Vector{{1, 1}, {2, 2}}
	items := bulkItems(pts)
	tr := BulkLoad(2, smallCfg, items, 8)
	pts[0][0] = 99
	got := tr.KNN(vec.Vector{1, 1}, 1, nil)
	if got[0].Point[0] != 1 {
		t.Error("bulk load aliases caller's points")
	}
}

func TestBulkLoadPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale bulk load in -short mode")
	}
	// 15,000 items, node capacity 70-100 (fill ~93): the paper reports a
	// 3-level tree at this configuration.
	rng := rand.New(rand.NewSource(4))
	pts := randPoints(rng, 15000, 37, 1)
	tr := BulkLoad(37, Config{MaxFill: 100, MinFill: 40}, bulkItems(pts), 93)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 3 {
		t.Errorf("height = %d, paper reports 3 levels at 15k images", tr.Height())
	}
	// Leaf occupancy stays in the paper's 70-100 band for nearly all leaves.
	var leaves, inBand int
	tr.Walk(func(n *Node, level int) {
		if level == 0 {
			leaves++
			if n.Len() >= 70 && n.Len() <= 100 {
				inBand++
			}
		}
	})
	if frac := float64(inBand) / float64(leaves); frac < 0.9 {
		t.Errorf("only %.0f%% of %d leaves in 70-100 band", frac*100, leaves)
	}
}

func TestBulkThenInsertAndDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPoints(rng, 400, 4, 10)
	tr := BulkLoad(4, smallCfg, bulkItems(pts), 8)
	// Mutations on a bulk-loaded tree keep it consistent.
	extra := randPoints(rng, 100, 4, 10)
	for i, p := range extra {
		tr.Insert(ItemID(1000+i), p)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("after inserts: %v", err)
	}
	for i := 0; i < 50; i++ {
		if !tr.Delete(ItemID(i), pts[i]) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("after deletes: %v", err)
	}
	if tr.Len() != 450 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestPointsLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randPoints(rng, 100, 3, 5)
	tr := BulkLoad(3, smallCfg, bulkItems(pts), 8)
	m := tr.Points()
	if len(m) != 100 {
		t.Fatalf("Points has %d entries", len(m))
	}
	for i, p := range pts {
		if !m[ItemID(i)].Equal(p) {
			t.Fatalf("Points[%d] = %v want %v", i, m[ItemID(i)], p)
		}
	}
}

func TestIOAccountingDuringSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randPoints(rng, 2000, 4, 10)
	tr := BulkLoad(4, smallCfg, bulkItems(pts), 8)
	var acc disk.Counter
	tr.KNN(vec.Vector{0, 0, 0, 0}, 5, &acc)
	if acc.Reads() == 0 {
		t.Fatal("no I/O recorded")
	}
	if acc.Reads() > uint64(tr.NodeCount()) {
		t.Errorf("reads %d exceed node count %d", acc.Reads(), tr.NodeCount())
	}
	// A localized subtree search must touch far fewer pages than the full
	// tree has — this is the efficiency claim behind §5.2.2.
	var sub disk.Counter
	leaf := tr.Root().Children()[0]
	tr.KNNFrom(leaf, vec.Vector{0, 0, 0, 0}, 5, &sub)
	if sub.Reads() >= uint64(tr.NodeCount())/2 {
		t.Errorf("subtree search read %d of %d pages", sub.Reads(), tr.NodeCount())
	}
	// Range search accounting also works.
	var racc disk.Counter
	tr.Search(NewRect(vec.Vector{-1, -1, -1, -1}, vec.Vector{1, 1, 1, 1}), &racc)
	if racc.Reads() == 0 {
		t.Error("range search recorded no I/O")
	}
}
