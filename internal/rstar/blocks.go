package rstar

// This file maintains the tree-owned flat point slab: one contiguous,
// dimension-strided []float64 holding every indexed point in depth-first
// leaf order. Each leaf's items alias their rows (zero-copy vec.Vector
// views), and the leaf's block field exposes its row range so k-NN can score
// a whole leaf with one vec.SquaredDistsTo call. The slab also collapses the
// tree's point storage from one heap allocation per item to one per tree.

// packBlocks (re)builds the slab from the current leaves. Item points are
// copied into the slab and the items re-aimed at their rows, so whatever
// memory the points previously referenced is released and callers' input
// slices are never retained.
func (t *Tree) packBlocks() {
	if t.size == 0 {
		t.blocksOK = false
		t.slab = nil
		return
	}
	slab := make([]float64, t.size*t.dim)
	off := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.leaf {
			start := off
			for i := range n.items {
				row := slab[off : off+t.dim : off+t.dim]
				copy(row, n.items[i].Point)
				n.items[i].Point = row
				off += t.dim
			}
			n.block = slab[start:off:off]
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	t.slab = slab
	t.blocksOK = true
}

// invalidateBlocks drops the leaf-block acceleration before a structural
// mutation. Item points keep aliasing the old slab (values stay valid; the
// slab is only garbage once every item has migrated elsewhere), but the
// per-leaf row correspondence is gone, so searches revert to per-item
// scoring.
func (t *Tree) invalidateBlocks() {
	// The quantized codes and the float32 mirror track the slab row-for-row,
	// so they die with it; those searches then report not-ready and callers
	// fall back to the exact path until the scoring modes are re-enabled.
	t.invalidateQuantized()
	t.invalidateFloat32()
	if !t.blocksOK {
		return
	}
	t.blocksOK = false
	t.slab = nil
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.leaf {
			n.block = nil
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
}

// BlocksPacked reports whether the leaf-block acceleration is active
// (exported for tests and diagnostics).
func (t *Tree) BlocksPacked() bool { return t.blocksOK }

// SetBlockScoring toggles the leaf-block batch kernels at runtime. Disabling
// reverts every search to per-item scalar scoring; re-enabling repacks the
// slab. Results, SearchStats, and Accounter traffic are identical either way —
// the agreement tests rely on this switch to compare the two paths.
func (t *Tree) SetBlockScoring(enabled bool) {
	if enabled {
		if !t.blocksOK {
			t.packBlocks()
		}
		return
	}
	t.invalidateBlocks()
}
