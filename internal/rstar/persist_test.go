package rstar

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"qdcbir/internal/vec"
)

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPoints(rng, 300, 4, 10)
	orig := buildTree(t, pts, smallCfg)

	snap := orig.Snapshot()
	loaded, err := FromSnapshot(snap)
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	if loaded.Len() != orig.Len() || loaded.Height() != orig.Height() || loaded.Dim() != orig.Dim() {
		t.Fatalf("shape mismatch: len %d/%d h %d/%d",
			loaded.Len(), orig.Len(), loaded.Height(), orig.Height())
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// Identical k-NN behaviour.
	for trial := 0; trial < 10; trial++ {
		q := randPoints(rng, 1, 4, 10)[0]
		a := orig.KNN(q, 7, nil)
		b := loaded.KNN(q, 7, nil)
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
				t.Fatalf("kNN differs at rank %d", i)
			}
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	tr := New(2, smallCfg)
	p := vec.Vector{1, 2}
	tr.Insert(1, p)
	snap := tr.Snapshot()
	// Mutating the live tree must not corrupt the snapshot.
	tr.Delete(1, p)
	tr.Insert(2, vec.Vector{9, 9})
	loaded, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.KNN(vec.Vector{1, 2}, 1, nil)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("snapshot corrupted by later mutation: %+v", got)
	}
}

func TestSnapshotGobEncodes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPoints(rng, 120, 3, 5)
	tr := BulkLoad(3, smallCfg, bulkItems(pts), 8)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tr.Snapshot()); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var snap TreeSnapshot
	if err := gob.NewDecoder(&buf).Decode(&snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	loaded, err := FromSnapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 120 {
		t.Fatalf("len = %d", loaded.Len())
	}
}

func TestFromSnapshotRejectsMalformed(t *testing.T) {
	cases := map[string]*TreeSnapshot{
		"nil":      nil,
		"nil root": {Dim: 2},
		"bad dim":  {Dim: 0, Root: &NodeSnapshot{Leaf: true}},
		"leaf with children": {Dim: 2, Root: &NodeSnapshot{
			Leaf:     true,
			Children: []*NodeSnapshot{{Leaf: true}},
		}},
		"internal with items": {Dim: 2, Root: &NodeSnapshot{
			Items:    []Item{{ID: 1, Point: vec.Vector{1, 2}}},
			Children: []*NodeSnapshot{{Leaf: true}},
		}},
		"internal no children": {Dim: 2, Root: &NodeSnapshot{}},
		"item dim mismatch": {Dim: 3, Root: &NodeSnapshot{
			Leaf:  true,
			Items: []Item{{ID: 1, Point: vec.Vector{1, 2}}},
		}},
	}
	for name, snap := range cases {
		if _, err := FromSnapshot(snap); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSnapshotLoadDeterministicIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 200, 3, 5)
	tr := buildTree(t, pts, smallCfg)
	snap := tr.Snapshot()
	a, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	var idsA, idsB []uint64
	a.Walk(func(n *Node, _ int) { idsA = append(idsA, uint64(n.ID())) })
	b.Walk(func(n *Node, _ int) { idsB = append(idsB, uint64(n.ID())) })
	if len(idsA) != len(idsB) {
		t.Fatal("node counts differ")
	}
	for i := range idsA {
		if idsA[i] != idsB[i] {
			t.Fatalf("page IDs differ at %d: %d vs %d", i, idsA[i], idsB[i])
		}
	}
}
