package rstar

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"qdcbir/internal/vec"
)

func randomItems(n, dim int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		p := make(vec.Vector, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		items[i] = Item{ID: ItemID(i), Point: p}
	}
	return items
}

// treeShape flattens the tree into a comparable form: per-node page ID, leaf
// flag, and entry IDs in stored order.
func treeShape(t *Tree) [][]int64 {
	var shape [][]int64
	t.Walk(func(n *Node, level int) {
		row := []int64{int64(n.ID()), int64(level)}
		if n.IsLeaf() {
			for _, it := range n.Items() {
				row = append(row, int64(it.ID))
			}
		} else {
			for _, c := range n.Children() {
				row = append(row, int64(c.ID()))
			}
		}
		shape = append(shape, row)
	})
	return shape
}

// TestBulkLoadParallelismInvariant: STR bulk loading must produce the exact
// same tree — page IDs, node membership, item order — at every worker count.
func TestBulkLoadParallelismInvariant(t *testing.T) {
	items := randomItems(3000, 6, 42)
	base := BulkLoad(6, Config{MaxFill: 24}, items, 20)
	baseShape := treeShape(base)
	for _, p := range []int{1, 2, 8} {
		tr, err := BulkLoadCtx(context.Background(), 6, Config{MaxFill: 24}, items, 20, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		shape := treeShape(tr)
		if len(shape) != len(baseShape) {
			t.Fatalf("p=%d: %d nodes vs %d", p, len(shape), len(baseShape))
		}
		for i := range shape {
			if len(shape[i]) != len(baseShape[i]) {
				t.Fatalf("p=%d: node %d row mismatch", p, i)
			}
			for j := range shape[i] {
				if shape[i][j] != baseShape[i][j] {
					t.Fatalf("p=%d: node %d field %d: %d vs %d",
						p, i, j, shape[i][j], baseShape[i][j])
				}
			}
		}
	}
}

func TestBulkLoadCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BulkLoadCtx(ctx, 4, Config{MaxFill: 10}, randomItems(500, 4, 7), 8, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestKNNCtxCancelled(t *testing.T) {
	items := randomItems(2000, 5, 9)
	tr := BulkLoad(5, Config{MaxFill: 16}, items, 14)
	q := items[0].Point

	ns, err := tr.KNNCtx(context.Background(), q, 10, nil)
	if err != nil || len(ns) != 10 {
		t.Fatalf("live context: %d results, err=%v", len(ns), err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.KNNCtx(ctx, q, 10, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	w := make(vec.Vector, 5)
	for i := range w {
		w[i] = 1
	}
	if _, err := tr.KNNWeightedFromCtx(ctx, tr.Root(), q, w, 10, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("weighted err = %v, want context.Canceled", err)
	}
}
