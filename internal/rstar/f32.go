package rstar

// This file wires the float32 precision mode into the tree as a slab sweep:
// SetFloat32Scoring narrows the float64 leaf slab to a float32 mirror ONCE,
// and KNNF32FromStatsCtx answers a subtree-restricted k-NN with one linear
// sweep of the mirror's rows through the float32 batch kernel
// (vec.SquaredDistsTo32) feeding a bounded vec.TopK32 — the query itself is
// narrowed once per search, so the hot loop never converts per-row.
//
// Unlike the SQ8 two-phase path (quant.go), which reranks against the float64
// rows and certifies bit-equality with the exact search, float32 is a
// DISTINCT documented result mode: distances are computed entirely in
// float32 (then widened through one float64 sqrt for the Neighbor contract),
// so rankings can differ from the float64 path wherever float32 rounding
// collapses or reorders close distances. What the mode does guarantee is
// platform determinism: the batch kernel's accumulation order is canonical
// (see vec/kernel32.go), bit-identical between the portable loop and the
// AVX2 implementation, and the sweep always uses the batch kernel — never a
// capped scalar variant — so results are identical with and without
// acceleration, across architectures, and under the noasm build tag.

import (
	"context"
	"math"
	"sort"
	"sync"

	"qdcbir/internal/disk"
	"qdcbir/internal/vec"
)

// f32CtxInterval is how many slab rows the float32 sweep scores between
// context polls (same batching role as quantCtxInterval).
const f32CtxInterval = 1024

// SetFloat32Scoring toggles the float32 sweep path. Enabling packs the leaf
// blocks if needed, builds the slab-ordered ID table shared with the
// quantized path, and narrows the slab to a float32 mirror (one rounding per
// component — exact when the indexed points came from float32 data, since
// float32→float64→float32 round-trips bit-for-bit). Disabling drops the
// mirror; KNNF32* then delegates to the exact float64 search. Enabling an
// empty tree is a no-op. Like all mutations, the toggle requires external
// exclusion against readers.
func (t *Tree) SetFloat32Scoring(enabled bool) {
	if !enabled {
		t.invalidateFloat32()
		return
	}
	if t.f32OK || t.size == 0 {
		return
	}
	if !t.blocksOK {
		t.packBlocks()
	}
	t.setQuantRanges()
	t.fslab = vec.Narrow32(t.slab, nil)
	t.f32OK = true
}

// Float32Scoring reports whether the float32 sweep path is active.
func (t *Tree) Float32Scoring() bool { return t.f32OK }

// invalidateFloat32 drops the float32-scan state. Node qlo/qhi values go
// stale rather than being rewalked; f32OK guards every use of them.
func (t *Tree) invalidateFloat32() {
	t.f32OK = false
	t.fslab = nil
	t.dropRangesIfUnused()
}

// f32Scratch is the pooled working memory of one float32 search: the
// narrowed query, the chunk distance buffer, the selector, and the
// candidate log (every row that was at or below the admission threshold
// when scored — a superset of the final top-k that includes all boundary
// ties).
type f32Scratch struct {
	q32   []float32
	dists []float32
	sel   vec.TopK32
	cands []vec.Entry32
}

var f32ScratchPool = sync.Pool{New: func() interface{} { return new(f32Scratch) }}

func (sc *f32Scratch) distBuf(n int) []float32 {
	if cap(sc.dists) < n {
		sc.dists = make([]float32, n)
	}
	return sc.dists[:n]
}

// KNNF32 returns the k nearest items to q under float32 distances, sweeping
// the whole tree. When float32 scoring is not active it delegates to the
// exact float64 search.
func (t *Tree) KNNF32(q vec.Vector, k int, acc disk.Accounter) []Neighbor {
	ns, _ := t.KNNF32FromStatsCtx(context.Background(), t.root, q, k, acc, nil)
	return ns
}

// KNNF32FromStatsCtx runs the float32 k-NN restricted to the subtree rooted
// at n: the query narrows to float32 once, the subtree's contiguous mirror
// rows [qlo, qhi) sweep through the float32 batch kernel in chunks, and a
// bounded selector keeps the k smallest (distance, row) pairs. Results are
// the float32 mode's deterministic answer (see the file comment) ordered
// ascending (Dist, ID); equal-float32-distance candidates at the k boundary
// resolve by ItemID, matching the exact search's documented tie rule — the
// sweep logs every row scored at or below the admission threshold, then
// selects the k smallest under (distance, ItemID), so the winners do not
// depend on slab layout (and therefore not on how the corpus was
// segmented).
// Leaf pages in the swept range are reported to acc once; scored rows land in
// st.ItemsScored. Searches over trees without float32 scoring delegate to
// the exact float64 path.
func (t *Tree) KNNF32FromStatsCtx(ctx context.Context, n *Node, q vec.Vector, k int, acc disk.Accounter, st *SearchStats) ([]Neighbor, error) {
	if k <= 0 || n == nil || n.Len() == 0 {
		return nil, ctx.Err()
	}
	if !t.f32OK {
		return t.KNNFromStatsCtx(ctx, n, q, k, acc, st)
	}
	if acc == nil {
		acc = disk.Nop{}
	}
	sc := f32ScratchPool.Get().(*f32Scratch)
	defer f32ScratchPool.Put(sc)
	sc.q32 = vec.Narrow32(q, sc.q32)

	lo, hi := n.qlo, n.qhi
	rows := hi - lo
	if k > rows {
		k = rows
	}
	// The sweep reads every leaf's mirror rows, so each leaf page in the
	// range is charged exactly once — same accounting as the quantized path.
	var nodes uint64
	var chargeLeaves func(nd *Node)
	chargeLeaves = func(nd *Node) {
		if nd.leaf {
			acc.Access(nd.id)
			nodes++
			return
		}
		for _, c := range nd.children {
			chargeLeaves(c)
		}
	}
	chargeLeaves(n)

	dim := t.dim
	sel := &sc.sel
	sel.Reset(k)
	// The selector only maintains the admission threshold (the exact kth
	// smallest distance, whichever rows the heap happens to retain); the
	// candidate log keeps every row scored at or below the threshold current
	// at its time. The threshold never increases, so the log is a superset
	// of both the true top-k and every row tying the final kth distance.
	sc.cands = sc.cands[:0]
	for base := lo; base < hi; base += f32CtxInterval {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		end := base + f32CtxInterval
		if end > hi {
			end = hi
		}
		dists := sc.distBuf(end - base)
		vec.SquaredDistsTo32(sc.q32, t.fslab[base*dim:end*dim], dists)
		thr := sel.Threshold()
		for i, d := range dists {
			if d < thr {
				sel.Add(d, base+i)
				thr = sel.Threshold()
				sc.cands = append(sc.cands, vec.Entry32{Dist: d, ID: base + i})
			} else if d == thr {
				sc.cands = append(sc.cands, vec.Entry32{Dist: d, ID: base + i})
			}
		}
	}
	// Keep rows at or below the final threshold, order them by
	// (distance, ItemID), and take the k smallest.
	final := sel.Threshold()
	kept := sc.cands[:0]
	for _, c := range sc.cands {
		if c.Dist <= final {
			kept = append(kept, c)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Dist != kept[j].Dist {
			return kept[i].Dist < kept[j].Dist
		}
		return t.qids[kept[i].ID] < t.qids[kept[j].ID]
	})
	if len(kept) > k {
		kept = kept[:k]
	}
	out := make([]Neighbor, len(kept))
	for i, e := range kept {
		rowF := t.slab[e.ID*dim : e.ID*dim+dim : e.ID*dim+dim]
		out[i] = Neighbor{ID: t.qids[e.ID], Point: rowF, Dist: math.Sqrt(float64(e.Dist))}
	}
	if st != nil {
		st.NodesRead += nodes
		st.ItemsScored += uint64(rows)
	}
	return out, nil
}
