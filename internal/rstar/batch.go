package rstar

// This file answers M k-NN searches over the SAME subtree in one call, with
// the leaf work routed through the multi-query kernels (vec.*Multi): when
// several of the M descents want the same leaf's rows, the block is loaded
// once and scored for all of them. The batch paths exist purely for
// throughput — every query's OWN operation sequence (queue pushes and pops,
// accounter accesses, effort counters, tie resolution) is exactly the
// single-query path's, and the multi kernels are bit-identical per query to
// the single-query kernels, so each returned result list, each SearchStats
// delta, and each Accounter trace is bit-for-bit what the corresponding
// single-query call would have produced. Callers therefore batch or not
// purely on load, never on semantics.
//
// Shapes per scan mode:
//
//   - Exact f64 (KNNBatchFromStatsCtx): M independent best-first descents run
//     as coroutines in lockstep. Each advances through its private priority
//     queue exactly as KNNFromStatsCtx does and SUSPENDS when it pops a leaf
//     with a packed block; the driver then groups co-resident suspensions by
//     leaf and dispatches one multi-kernel call per group.
//   - f32 (KNNF32BatchFromStatsCtx): the subtree is one contiguous mirror
//     range shared by every query, so all M queries ride each chunk of the
//     single linear sweep through vec.SquaredDistsToMulti32, feeding M
//     independent selectors and candidate logs.
//   - SQ8 (KNNQuantBatchFromStatsCtx): phase 1 (the code sweep) is shared
//     like f32; phase 2 (exact rerank + certificate) and any widening
//     retries are per query, replicating quant.go's loop verbatim.

import (
	"context"
	"math"
	"sort"
	"time"

	"qdcbir/internal/disk"
	"qdcbir/internal/vec"
)

// accAt returns query j's accounter (Nop when the slice or entry is nil).
func accAt(accs []disk.Accounter, j int) disk.Accounter {
	if j < len(accs) && accs[j] != nil {
		return accs[j]
	}
	return disk.Nop{}
}

// stAt returns query j's stats sink, nil when absent.
func stAt(sts []*SearchStats, j int) *SearchStats {
	if j < len(sts) {
		return sts[j]
	}
	return nil
}

// batchQuery is one query's private descent state inside
// KNNBatchFromStatsCtx. It mirrors KNNFromStatsCtx's locals exactly; pending
// marks a popped leaf whose block scoring is deferred to a coalesced
// multi-kernel dispatch.
type batchQuery struct {
	q       vec.Vector
	k       int
	acc     disk.Accounter
	pq      searchPQ
	results []Neighbor
	ties    []Neighbor
	kthSq   float64
	steps   int
	pops    uint64
	nodes   uint64
	items   uint64
	pending *Node // leaf popped but not yet scored; nil while running
	done    bool
	started bool
}

// advance runs one query's best-first loop until it completes, or until it
// pops a block-backed leaf — at which point the leaf is recorded in pending
// (access and effort already charged, exactly where the single-query path
// charges them) and control returns to the driver for coalesced scoring.
// Every operation and its order matches KNNFromStatsCtx line for line.
func (t *Tree) advance(ctx context.Context, s *batchQuery) error {
	for len(s.pq) > 0 {
		if s.steps%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		e := s.pq.pop()
		s.steps++
		s.pops++
		if len(s.results) == s.k && e.distSq > s.kthSq {
			s.done = true
			return nil
		}
		if e.node == nil {
			if len(s.results) < s.k {
				s.results = append(s.results, Neighbor{
					ID: e.item.ID, Point: e.item.Point, Dist: math.Sqrt(e.distSq),
				})
				if len(s.results) == s.k {
					s.kthSq = e.distSq
				}
			} else if e.distSq == s.kthSq {
				s.ties = append(s.ties, Neighbor{
					ID: e.item.ID, Point: e.item.Point, Dist: math.Sqrt(e.distSq),
				})
			}
			continue
		}
		s.acc.Access(e.node.id)
		s.nodes++
		if e.node.leaf {
			s.items += uint64(len(e.node.items))
			if t.blocksOK && e.node.block != nil {
				s.pending = e.node
				return nil
			}
			for _, it := range e.node.items {
				s.pq.push(pqEntry{distSq: vec.SqL2(s.q, it.Point), item: it})
			}
			continue
		}
		for _, c := range e.node.children {
			s.pq.push(pqEntry{distSq: c.rect.MinDistSq(s.q), node: c})
		}
	}
	s.done = true
	return nil
}

// KNNBatchFromStatsCtx answers len(qs) exact k-NN searches restricted to the
// subtree rooted at n, coalescing co-resident leaf sweeps into multi-query
// kernel dispatches. out[j], accs[j]'s trace, and sts[j]'s deltas are
// bit-identical to KNNFromStatsCtx(ctx, n, qs[j], ks[j], accs[j], sts[j]).
// accs and sts may be nil (or hold nil entries) to disable accounting for
// all or individual queries; ks[j] <= 0 yields a nil result for query j.
func (t *Tree) KNNBatchFromStatsCtx(ctx context.Context, n *Node, qs []vec.Vector, ks []int, accs []disk.Accounter, sts []*SearchStats) ([][]Neighbor, error) {
	out := make([][]Neighbor, len(qs))
	if n == nil || n.Len() == 0 || len(qs) == 0 {
		return out, ctx.Err()
	}
	states := make([]batchQuery, len(qs))
	running := 0
	for j, q := range qs {
		if ks[j] <= 0 {
			continue
		}
		s := &states[j]
		s.q, s.k, s.acc = q, ks[j], accAt(accs, j)
		s.kthSq = math.Inf(1)
		s.pq = append(s.pq, pqEntry{distSq: n.rect.MinDistSq(q), node: n})
		s.results = make([]Neighbor, 0, s.k)
		s.started = true
		running++
	}
	dim := t.dim
	var suspended []int
	var qbuf []float64
	var obuf []float64
	for running > 0 {
		suspended = suspended[:0]
		for j := range states {
			s := &states[j]
			if !s.started || s.done {
				continue
			}
			if s.pending == nil {
				if err := t.advance(ctx, s); err != nil {
					return nil, err
				}
			}
			if s.done {
				running--
				continue
			}
			if s.pending != nil {
				suspended = append(suspended, j)
			}
		}
		if len(suspended) == 0 {
			continue // some queries just completed; loop re-checks running
		}
		// Group co-resident suspensions by leaf and score each group with one
		// pass over the leaf's block.
		for len(suspended) > 0 {
			leaf := states[suspended[0]].pending
			var group []int
			for _, j := range suspended {
				if states[j].pending == leaf {
					group = append(group, j)
				}
			}
			rows := len(leaf.items)
			if len(group) == 1 {
				// Lone visitor: the plain batch kernel, exactly the
				// single-query path.
				s := &states[group[0]]
				if cap(obuf) < rows {
					obuf = make([]float64, rows)
				}
				d := obuf[:rows]
				vec.SquaredDistsTo(s.q, leaf.block, d)
				for i, it := range leaf.items {
					s.pq.push(pqEntry{distSq: d[i], item: it})
				}
				s.pending = nil
			} else {
				g := len(group)
				if cap(qbuf) < g*dim {
					qbuf = make([]float64, g*dim)
				}
				for gi, j := range group {
					copy(qbuf[gi*dim:(gi+1)*dim], states[j].q)
				}
				if cap(obuf) < g*rows {
					obuf = make([]float64, g*rows)
				}
				vec.SquaredDistsToMulti(qbuf[:g*dim], g, leaf.block, obuf[:g*rows])
				for gi, j := range group {
					s := &states[j]
					col := obuf[gi*rows : (gi+1)*rows]
					for i, it := range leaf.items {
						s.pq.push(pqEntry{distSq: col[i], item: it})
					}
					s.pending = nil
				}
			}
			// Compact the remaining suspensions (preserving order) and
			// continue with the next distinct leaf.
			rest := suspended[:0]
			for _, j := range suspended {
				if states[j].pending != nil {
					rest = append(rest, j)
				}
			}
			suspended = rest
		}
	}
	for j := range states {
		s := &states[j]
		if !s.started {
			continue
		}
		out[j] = resolveBoundaryTies(s.results, s.ties, s.k)
		stAt(sts, j).accumulate(s.pops, s.nodes, s.items)
	}
	return out, ctx.Err()
}

// collectLeafPages gathers the subtree's leaf page IDs in the DFS order the
// single-query slab sweeps charge them, so a batch can replay the identical
// access sequence into each query's accounter.
func collectLeafPages(n *Node, ids []disk.PageID) []disk.PageID {
	if n.leaf {
		return append(ids, n.id)
	}
	for _, c := range n.children {
		ids = collectLeafPages(c, ids)
	}
	return ids
}

// KNNF32BatchFromStatsCtx answers len(qs) float32 k-NN searches restricted to
// the subtree rooted at n with ONE linear sweep of the subtree's mirror rows:
// every chunk is scored for all queries by the multi-query kernel, feeding
// per-query selectors. out[j], accs[j], and sts[j] are bit-identical to
// KNNF32FromStatsCtx per query. Trees without float32 scoring delegate to the
// exact batch.
func (t *Tree) KNNF32BatchFromStatsCtx(ctx context.Context, n *Node, qs []vec.Vector, ks []int, accs []disk.Accounter, sts []*SearchStats) ([][]Neighbor, error) {
	out := make([][]Neighbor, len(qs))
	if n == nil || n.Len() == 0 || len(qs) == 0 {
		return out, ctx.Err()
	}
	if !t.f32OK {
		return t.KNNBatchFromStatsCtx(ctx, n, qs, ks, accs, sts)
	}
	lo, hi := n.qlo, n.qhi
	rows := hi - lo
	dim := t.dim

	// Active queries (k > 0), their narrowed vectors packed for the multi
	// kernel, and their clamped ks.
	var act []int
	for j := range qs {
		if ks[j] > 0 {
			act = append(act, j)
		}
	}
	if len(act) == 0 {
		return out, ctx.Err()
	}
	ma := len(act)
	q32 := make([]float32, ma*dim)
	kk := make([]int, ma)
	for a, j := range act {
		vec.Narrow32(qs[j], q32[a*dim:(a+1)*dim:(a+1)*dim])
		kk[a] = ks[j]
		if kk[a] > rows {
			kk[a] = rows
		}
	}

	// Each query charges every leaf page in the range exactly once, in the
	// same DFS order the single-query sweep does.
	leaves := collectLeafPages(n, nil)
	for _, j := range act {
		acc := accAt(accs, j)
		for _, id := range leaves {
			acc.Access(id)
		}
	}

	sels := make([]vec.TopK32, ma)
	cands := make([][]vec.Entry32, ma)
	for a := range sels {
		sels[a].Reset(kk[a])
	}
	dists := make([]float32, 0, ma*f32CtxInterval)
	for base := lo; base < hi; base += f32CtxInterval {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		end := base + f32CtxInterval
		if end > hi {
			end = hi
		}
		cr := end - base
		if cap(dists) < ma*cr {
			dists = make([]float32, ma*cr)
		}
		db := dists[:ma*cr]
		vec.SquaredDistsToMulti32(q32, ma, t.fslab[base*dim:end*dim], db)
		for a := range act {
			sel := &sels[a]
			col := db[a*cr : (a+1)*cr]
			thr := sel.Threshold()
			for i, d := range col {
				if d < thr {
					sel.Add(d, base+i)
					thr = sel.Threshold()
					cands[a] = append(cands[a], vec.Entry32{Dist: d, ID: base + i})
				} else if d == thr {
					cands[a] = append(cands[a], vec.Entry32{Dist: d, ID: base + i})
				}
			}
		}
	}
	for a, j := range act {
		final := sels[a].Threshold()
		kept := cands[a][:0]
		for _, c := range cands[a] {
			if c.Dist <= final {
				kept = append(kept, c)
			}
		}
		sort.Slice(kept, func(x, y int) bool {
			if kept[x].Dist != kept[y].Dist {
				return kept[x].Dist < kept[y].Dist
			}
			return t.qids[kept[x].ID] < t.qids[kept[y].ID]
		})
		if len(kept) > kk[a] {
			kept = kept[:kk[a]]
		}
		res := make([]Neighbor, len(kept))
		for i, e := range kept {
			rowF := t.slab[e.ID*dim : e.ID*dim+dim : e.ID*dim+dim]
			res[i] = Neighbor{ID: t.qids[e.ID], Point: rowF, Dist: math.Sqrt(float64(e.Dist))}
		}
		out[j] = res
		if st := stAt(sts, j); st != nil {
			st.NodesRead += uint64(len(leaves))
			st.ItemsScored += uint64(rows)
		}
	}
	return out, ctx.Err()
}

// KNNQuantBatchFromStatsCtx answers len(qs) two-phase quantized k-NN searches
// restricted to the subtree rooted at n. Phase 1 — the SQ8 code sweep — runs
// once for all queries through the multi-query kernel; phase 2 (exact rerank,
// exactness certificate) and any widening retries replicate quant.go's
// per-query loop, so out[j], accs[j], and sts[j] are bit-identical to
// KNNQuantFromStatsCtx per query (the quantized path never returns an
// approximate answer, batched or not). Trees without quantized scoring
// delegate to the exact batch; NaN queries fall back per query.
func (t *Tree) KNNQuantBatchFromStatsCtx(ctx context.Context, n *Node, qs []vec.Vector, ks []int, rerankFactor int, accs []disk.Accounter, sts []*SearchStats) ([][]Neighbor, error) {
	out := make([][]Neighbor, len(qs))
	if n == nil || n.Len() == 0 || len(qs) == 0 {
		return out, ctx.Err()
	}
	if !t.quantOK || !t.quant.Clean() {
		return t.KNNBatchFromStatsCtx(ctx, n, qs, ks, accs, sts)
	}
	if rerankFactor <= 0 {
		rerankFactor = DefaultRerankFactor
	}
	lo, hi := n.qlo, n.qhi
	rows := hi - lo
	dim := t.dim
	codes := t.qcodes

	// Encode every active query; a NaN decode error defeats the rerank bound,
	// so those queries delegate to the exact single-query path up front —
	// before any leaf charging — exactly as KNNQuantFromStatsCtx does.
	var act []int
	qcodesAll := make([]uint8, 0, len(qs)*dim)
	var qErrs []float64
	for j := range qs {
		if ks[j] <= 0 {
			continue
		}
		qc, qErr := t.quant.EncodeQuery(qs[j], nil)
		if math.IsNaN(qErr) {
			st := stAt(sts, j)
			if st != nil {
				st.RerankFallbacks++
			}
			ns, err := t.KNNFromStatsCtx(ctx, n, qs[j], ks[j], accAt(accs, j), st)
			if err != nil {
				return nil, err
			}
			out[j] = ns
			continue
		}
		act = append(act, j)
		qcodesAll = append(qcodesAll, qc...)
		qErrs = append(qErrs, qErr)
	}
	if len(act) == 0 {
		return out, ctx.Err()
	}
	ma := len(act)

	leaves := collectLeafPages(n, nil)
	for _, j := range act {
		acc := accAt(accs, j)
		for _, id := range leaves {
			acc.Access(id)
		}
	}

	// Per-query selector sizes: m = k*rerankFactor clamped to the range, with
	// the same overflow guard as the single-query path.
	kk := make([]int, ma)
	ms := make([]int, ma)
	sels := make([]vec.QuantTopK, ma)
	for a, j := range act {
		k := ks[j]
		if k > rows {
			k = rows
		}
		kk[a] = k
		m := k * rerankFactor
		if m > rows || m < k {
			m = rows
		}
		ms[a] = m
		sels[a].Reset(m)
	}

	// Phase 1, shared: one chunked sweep of the code rows scores every query
	// via the multi kernel. Admission per query replicates the accelerated
	// single-query branch; capped and full distances admit the same rows, so
	// the retained sets and thresholds match the single-query path whichever
	// branch it took.
	anyTimed := false
	for _, j := range act {
		if st := stAt(sts, j); st != nil && st.Timed {
			anyTimed = true
		}
	}
	var t0 time.Time
	if anyTimed {
		t0 = time.Now()
	}
	dists := make([]int32, 0, ma*quantCtxInterval)
	for base := lo; base < hi; base += quantCtxInterval {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		end := base + quantCtxInterval
		if end > hi {
			end = hi
		}
		cr := end - base
		if cap(dists) < ma*cr {
			dists = make([]int32, ma*cr)
		}
		db := dists[:ma*cr]
		vec.Uint8SquaredDistsToMulti(qcodesAll, ma, codes[base*dim:end*dim], db)
		for a := range act {
			sel := &sels[a]
			col := db[a*cr : (a+1)*cr]
			thr := sel.Threshold()
			for i, d := range col {
				if d < thr {
					sel.Add(d, base+i)
					thr = sel.Threshold()
				}
			}
		}
	}
	var sharedScanNS int64
	if anyTimed {
		sharedScanNS = time.Since(t0).Nanoseconds()
	}

	// Phase 2 and widening, per query: quant.go's loop with the first scan
	// already done.
	var ids []int
	var candBuf []Neighbor
	var rescan []int32
	for a, j := range act {
		q := qs[j]
		qc := qcodesAll[a*dim : (a+1)*dim]
		qErr := qErrs[a]
		k, m := kk[a], ms[a]
		sel := &sels[a]
		st := stAt(sts, j)
		timed := st != nil && st.Timed
		threshold := sel.Threshold()
		var fellBack bool
		codesScanned := uint64(rows)
		var reranked uint64
		scanNS := sharedScanNS
		var rerankNS int64
		var results []Neighbor
		for {
			if timed {
				t0 = time.Now()
			}
			ids = sel.AppendIDs(ids[:0])
			if cap(candBuf) < len(ids) {
				candBuf = make([]Neighbor, len(ids))
			}
			cands := candBuf[:len(ids)]
			for i, r := range ids {
				rowF := t.slab[r*dim : r*dim+dim : r*dim+dim]
				cands[i] = Neighbor{ID: t.qids[r], Point: rowF, Dist: math.Sqrt(vec.SqL2(q, rowF))}
			}
			reranked += uint64(len(cands))
			sort.Slice(cands, func(x, y int) bool { return neighborLess(cands[x], cands[y]) })
			if len(cands) > k {
				cands = cands[:k]
			}
			if timed {
				rerankNS += time.Since(t0).Nanoseconds()
			}
			if m >= rows {
				results = cands
				break
			}
			dk := cands[len(cands)-1].Dist
			lower := t.quant.DecodedDist(threshold) - qErr - t.quant.DBErr()
			if dk*(1+quantSafety) < lower*(1-quantSafety) {
				results = cands
				break
			}
			fellBack = true
			if m > rows/2 {
				m = rows
			} else {
				m *= 2
			}
			// Widened rescan, exactly the single-query phase 1.
			if timed {
				t0 = time.Now()
			}
			sel.Reset(m)
			if vec.HasAcceleratedUint8Batch() {
				for base := lo; base < hi; base += quantCtxInterval {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					end := base + quantCtxInterval
					if end > hi {
						end = hi
					}
					if cap(rescan) < end-base {
						rescan = make([]int32, quantCtxInterval)
					}
					d := rescan[:end-base]
					vec.Uint8SquaredDistsTo(qc, codes[base*dim:end*dim], d)
					thr := sel.Threshold()
					for i, dd := range d {
						if dd < thr {
							sel.Add(dd, base+i)
							thr = sel.Threshold()
						}
					}
				}
			} else {
				for r := lo; r < hi; r++ {
					if (r-lo)%quantCtxInterval == 0 {
						if err := ctx.Err(); err != nil {
							return nil, err
						}
					}
					row := codes[r*dim : r*dim+dim : r*dim+dim]
					d := vec.Uint8SquaredDistCapped(qc, row, sel.Threshold())
					sel.Add(d, r)
				}
			}
			codesScanned += uint64(rows)
			threshold = sel.Threshold()
			if timed {
				scanNS += time.Since(t0).Nanoseconds()
			}
		}
		res := make([]Neighbor, len(results))
		copy(res, results)
		out[j] = res
		if st != nil {
			st.NodesRead += uint64(len(leaves))
			st.ItemsScored += reranked
			st.CodesScanned += codesScanned
			st.Reranked += reranked
			st.ScanNS += scanNS
			st.RerankNS += rerankNS
			if fellBack {
				st.RerankFallbacks++
			}
		}
	}
	return out, ctx.Err()
}
