package rstar

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"qdcbir/internal/disk"
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// TestKNNQuantMatchesExact is the tentpole property test: on synthetic
// corpora of varying shape, the two-phase quantized search returns the exact
// search's top-k bit-for-bit — same IDs, same float64 distance bits, same
// order — at the default rerank factor, for whole-tree and subtree-restricted
// searches alike.
func TestKNNQuantMatchesExact(t *testing.T) {
	cases := []struct {
		seed  int64
		n     int
		dim   int
		scale float64
	}{
		{seed: 1, n: 60, dim: 2, scale: 1},
		{seed: 2, n: 400, dim: 8, scale: 10},
		{seed: 3, n: 1000, dim: 37, scale: 100},
		{seed: 4, n: 200, dim: 5, scale: 0.01},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(tc.seed))
		pts := randPoints(rng, tc.n, tc.dim, tc.scale)
		tr := BulkLoad(tc.dim, smallCfg, bulkItems(pts), 8)
		if err := tr.SetQuantizedScoring(true); err != nil {
			t.Fatalf("seed %d: enable quantized: %v", tc.seed, err)
		}
		roots := []*Node{tr.Root()}
		if !tr.Root().IsLeaf() {
			roots = append(roots, tr.Root().Children()...)
		}
		for qi := 0; qi < 25; qi++ {
			var q vec.Vector
			switch qi % 3 {
			case 0: // a corpus point
				q = pts[rng.Intn(len(pts))]
			case 1: // a perturbed corpus point
				q = pts[rng.Intn(len(pts))].Clone()
				for j := range q {
					q[j] += rng.NormFloat64() * tc.scale * 0.1
				}
			default: // far outside the training range
				q = make(vec.Vector, tc.dim)
				for j := range q {
					q[j] = rng.NormFloat64() * tc.scale * 10
				}
			}
			for _, root := range roots {
				for _, k := range []int{1, 5, root.Len() + 3} {
					exact, err := tr.KNNFromStatsCtx(context.Background(), root, q, k, nil, nil)
					if err != nil {
						t.Fatalf("exact: %v", err)
					}
					var st SearchStats
					quant, err := tr.KNNQuantFromStatsCtx(context.Background(), root, q, k, 0, nil, &st)
					if err != nil {
						t.Fatalf("quant: %v", err)
					}
					if len(quant) != len(exact) {
						t.Fatalf("seed %d q%d k=%d: %d quantized results, %d exact",
							tc.seed, qi, k, len(quant), len(exact))
					}
					for i := range exact {
						if quant[i].ID != exact[i].ID ||
							math.Float64bits(quant[i].Dist) != math.Float64bits(exact[i].Dist) {
							t.Fatalf("seed %d q%d k=%d: result %d diverges: quant {%d %v} exact {%d %v}",
								tc.seed, qi, k, i, quant[i].ID, quant[i].Dist, exact[i].ID, exact[i].Dist)
						}
						if !quant[i].Point.Equal(exact[i].Point) {
							t.Fatalf("seed %d q%d k=%d: result %d point diverges", tc.seed, qi, k, i)
						}
					}
				}
			}
		}
	}
}

// TestKNNQuantDelegatesWhenInactive: without SetQuantizedScoring the quant
// entry points must silently produce the exact search's answer.
func TestKNNQuantDelegatesWhenInactive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randPoints(rng, 120, 4, 1)
	tr := BulkLoad(4, smallCfg, bulkItems(pts), 8)
	if tr.QuantizedScoring() {
		t.Fatal("quantized scoring active before enable")
	}
	q := randPoints(rng, 1, 4, 1)[0]
	exact := tr.KNN(q, 7, nil)
	quant := tr.KNNQuant(q, 7, nil)
	for i := range exact {
		if quant[i].ID != exact[i].ID || quant[i].Dist != exact[i].Dist {
			t.Fatalf("result %d diverges without quantized scoring", i)
		}
	}
}

// TestKNNQuantUncleanCorpusFallsBack: a corpus containing non-finite
// components trains an unclean quantizer (DBErr = +Inf); every quantized
// search must route to the exact path and still agree with it.
func TestKNNQuantUncleanCorpusFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := randPoints(rng, 80, 3, 1)
	pts[17][1] = math.Inf(1)
	pts[42][0] = math.NaN()
	tr := BulkLoad(3, smallCfg, bulkItems(pts), 8)
	if err := tr.SetQuantizedScoring(true); err != nil {
		t.Fatalf("enable: %v", err)
	}
	q := vec.Vector{0.1, -0.2, 0.3}
	exact, _ := tr.KNNFromStatsCtx(context.Background(), tr.Root(), q, 5, nil, nil)
	var st SearchStats
	quant, err := tr.KNNQuantFromStatsCtx(context.Background(), tr.Root(), q, 5, 0, nil, &st)
	if err != nil {
		t.Fatalf("quant: %v", err)
	}
	if st.CodesScanned != 0 {
		t.Errorf("unclean corpus scanned %d codes; want exact-path delegation", st.CodesScanned)
	}
	if len(quant) != len(exact) {
		t.Fatalf("sizes diverge: %d vs %d", len(quant), len(exact))
	}
	for i := range exact {
		if quant[i].ID != exact[i].ID {
			t.Fatalf("result %d diverges on unclean corpus", i)
		}
	}
}

// TestKNNQuantRerankFallback engineers a corpus where code distances carry no
// information — one dimension spans a huge range (setting delta) while the
// query only discriminates along a tiny-range dimension — so the guarantee
// must fail at the default factor, the search must widen, and the result must
// STILL equal the exact search.
func TestKNNQuantRerankFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 64
	pts := make([]vec.Vector, n)
	for i := range pts {
		// dim0 alternates over a 1000-wide range; dim1 is where the true
		// nearest neighbours hide, far below the quantizer step (~3.9).
		pts[i] = vec.Vector{float64(i%2) * 1000, rng.Float64() * 1e-3}
	}
	tr := BulkLoad(2, smallCfg, bulkItems(pts), 8)
	if err := tr.SetQuantizedScoring(true); err != nil {
		t.Fatalf("enable: %v", err)
	}
	q := vec.Vector{0, 5e-4}
	exact, _ := tr.KNNFromStatsCtx(context.Background(), tr.Root(), q, 4, nil, nil)
	var st SearchStats
	quant, err := tr.KNNQuantFromStatsCtx(context.Background(), tr.Root(), q, 4, 0, nil, &st)
	if err != nil {
		t.Fatalf("quant: %v", err)
	}
	if st.RerankFallbacks == 0 {
		t.Error("expected a rerank fallback on a code-degenerate corpus")
	}
	for i := range exact {
		if quant[i].ID != exact[i].ID ||
			math.Float64bits(quant[i].Dist) != math.Float64bits(exact[i].Dist) {
			t.Fatalf("result %d diverges after fallback: quant {%d %v} exact {%d %v}",
				i, quant[i].ID, quant[i].Dist, exact[i].ID, exact[i].Dist)
		}
	}
}

// TestQuantInvalidationOnMutation: Insert and Delete must drop the quantized
// state (the codes mirror the slab, which they invalidate), searches must
// keep answering exactly, and re-enabling must restore the fast path.
func TestQuantInvalidationOnMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pts := randPoints(rng, 100, 3, 1)
	tr := BulkLoad(3, smallCfg, bulkItems(pts), 8)
	if err := tr.SetQuantizedScoring(true); err != nil {
		t.Fatalf("enable: %v", err)
	}
	extra := vec.Vector{9, 9, 9}
	tr.Insert(ItemID(100), extra)
	if tr.QuantizedScoring() {
		t.Fatal("quantized state survived Insert")
	}
	q := vec.Vector{0.5, 0.5, 0.5}
	exact := tr.KNN(q, 6, nil)
	quant := tr.KNNQuant(q, 6, nil)
	for i := range exact {
		if quant[i].ID != exact[i].ID {
			t.Fatalf("post-Insert result %d diverges", i)
		}
	}
	if err := tr.SetQuantizedScoring(true); err != nil {
		t.Fatalf("re-enable: %v", err)
	}
	if !tr.QuantizedScoring() {
		t.Fatal("re-enable did not restore quantized scoring")
	}
	if !tr.Delete(ItemID(100), extra) {
		t.Fatal("delete failed")
	}
	if tr.QuantizedScoring() {
		t.Fatal("quantized state survived Delete")
	}
}

// TestAdoptQuantizedMatchesRetrained: adopting a store-ordered quantizer must
// produce the same search behaviour as training over the tree's own slab —
// the codes are a deterministic function of each point.
func TestAdoptQuantizedMatchesRetrained(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pts := randPoints(rng, 300, 6, 5)
	flat := make([]float64, 0, len(pts)*6)
	for _, p := range pts {
		flat = append(flat, p...)
	}
	qz, err := store.QuantizeBacking(6, flat)
	if err != nil {
		t.Fatalf("quantize: %v", err)
	}

	trained := BulkLoad(6, smallCfg, bulkItems(pts), 8)
	if err := trained.SetQuantizedScoring(true); err != nil {
		t.Fatalf("train: %v", err)
	}
	adopted := BulkLoad(6, smallCfg, bulkItems(pts), 8)
	if err := adopted.AdoptQuantized(qz); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	for qi := 0; qi < 10; qi++ {
		q := randPoints(rng, 1, 6, 5)[0]
		a := trained.KNNQuant(q, 9, &disk.Counter{})
		b := adopted.KNNQuant(q, 9, &disk.Counter{})
		if len(a) != len(b) {
			t.Fatalf("q%d: sizes diverge", qi)
		}
		for i := range a {
			if a[i].ID != b[i].ID || math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
				t.Fatalf("q%d result %d: trained {%d %v} adopted {%d %v}",
					qi, i, a[i].ID, a[i].Dist, b[i].ID, b[i].Dist)
			}
		}
	}

	// Dimension mismatch and out-of-range IDs must be rejected.
	if err := adopted.AdoptQuantized(nil); err == nil {
		t.Error("adopt nil quantizer succeeded")
	}
	wrongDim, _ := store.QuantizeBacking(3, flat[:300])
	if err := adopted.AdoptQuantized(wrongDim); err == nil {
		t.Error("adopt wrong-dim quantizer succeeded")
	}
	short, _ := store.QuantizeBacking(6, flat[:6*10])
	if err := adopted.AdoptQuantized(short); err == nil {
		t.Error("adopt short quantizer succeeded")
	}
}

// TestQuantSubtreeRanges: after packing, every node's [qlo, qhi) must cover
// exactly its subtree's items, and the slab-ordered ID table must agree with
// the leaf blocks.
func TestQuantSubtreeRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	pts := randPoints(rng, 500, 4, 1)
	tr := BulkLoad(4, smallCfg, bulkItems(pts), 8)
	if err := tr.SetQuantizedScoring(true); err != nil {
		t.Fatalf("enable: %v", err)
	}
	tr.Walk(func(n *Node, level int) {
		want := len(itemsInSubtree(n, nil))
		if n.qhi-n.qlo != want {
			t.Errorf("node %d: range [%d,%d) holds %d rows, subtree has %d items",
				n.ID(), n.qlo, n.qhi, n.qhi-n.qlo, want)
		}
		if n.IsLeaf() {
			for i, it := range n.Items() {
				if tr.qids[n.qlo+i] != it.ID {
					t.Errorf("node %d row %d: qids %d, item %d", n.ID(), n.qlo+i, tr.qids[n.qlo+i], it.ID)
				}
			}
		}
	})
}

// TestKNNQuantCancellation: a cancelled context must abort the sweep.
func TestKNNQuantCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := randPoints(rng, 200, 3, 1)
	tr := BulkLoad(3, smallCfg, bulkItems(pts), 8)
	if err := tr.SetQuantizedScoring(true); err != nil {
		t.Fatalf("enable: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.KNNQuantFromStatsCtx(ctx, tr.Root(), pts[0], 5, 0, nil, nil); err == nil {
		t.Fatal("cancelled search returned no error")
	}
}
