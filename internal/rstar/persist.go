package rstar

import (
	"fmt"

	"qdcbir/internal/vec"
)

// NodeSnapshot is the serializable form of one tree node. All fields are
// exported for encoding/gob.
type NodeSnapshot struct {
	Leaf     bool
	Items    []Item
	Children []*NodeSnapshot
}

// TreeSnapshot is the serializable form of a whole tree.
type TreeSnapshot struct {
	Dim      int
	Cfg      Config
	FromBulk bool
	Root     *NodeSnapshot
}

// Snapshot captures the tree's structure for persistence. Points are cloned,
// so later tree mutations do not corrupt the snapshot.
func (t *Tree) Snapshot() *TreeSnapshot {
	var snap func(n *Node) *NodeSnapshot
	snap = func(n *Node) *NodeSnapshot {
		s := &NodeSnapshot{Leaf: n.leaf}
		if n.leaf {
			s.Items = make([]Item, len(n.items))
			for i, it := range n.items {
				s.Items[i] = Item{ID: it.ID, Point: it.Point.Clone()}
			}
			return s
		}
		for _, c := range n.children {
			s.Children = append(s.Children, snap(c))
		}
		return s
	}
	return &TreeSnapshot{Dim: t.dim, Cfg: t.cfg, FromBulk: t.fromBulk, Root: snap(t.root)}
}

// FromSnapshot reconstructs a tree. Node page IDs are reassigned in pre-order,
// so two loads of the same snapshot produce identical IDs; MBRs, sizes, and
// heights are recomputed from the entries. It returns an error on a malformed
// snapshot.
func FromSnapshot(s *TreeSnapshot) (*Tree, error) {
	if s == nil || s.Root == nil {
		return nil, fmt.Errorf("rstar: nil snapshot")
	}
	if s.Dim <= 0 {
		return nil, fmt.Errorf("rstar: snapshot dim %d", s.Dim)
	}
	t := &Tree{dim: s.Dim, cfg: s.Cfg.withDefaults(), fromBulk: s.FromBulk}

	maxDepth := 0
	var build func(sn *NodeSnapshot, parent *Node, depth int) (*Node, error)
	build = func(sn *NodeSnapshot, parent *Node, depth int) (*Node, error) {
		n := t.newNode(sn.Leaf)
		n.parent = parent
		if depth > maxDepth {
			maxDepth = depth
		}
		if sn.Leaf {
			if len(sn.Children) != 0 {
				return nil, fmt.Errorf("rstar: leaf snapshot with children")
			}
			n.items = make([]Item, len(sn.Items))
			for i, it := range sn.Items {
				if len(it.Point) != t.dim {
					return nil, fmt.Errorf("rstar: item %d dim %d != %d", it.ID, len(it.Point), t.dim)
				}
				n.items[i] = Item{ID: it.ID, Point: it.Point.Clone()}
				t.size++
			}
		} else {
			if len(sn.Items) != 0 {
				return nil, fmt.Errorf("rstar: internal snapshot with items")
			}
			if len(sn.Children) == 0 {
				return nil, fmt.Errorf("rstar: internal snapshot with no children")
			}
			for _, cs := range sn.Children {
				c, err := build(cs, n, depth+1)
				if err != nil {
					return nil, err
				}
				n.children = append(n.children, c)
			}
		}
		n.rect = nodeMBR(n)
		return n, nil
	}
	root, err := build(s.Root, nil, 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	t.height = maxDepth + 1
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("rstar: snapshot violates invariants: %w", err)
	}
	t.packBlocks()
	return t, nil
}

// TopologyNode is the point-free serializable form of one node: leaves carry
// item IDs only. Together with an external point source (the flat feature
// store) it reconstructs the tree without duplicating any vector data in the
// archive.
type TopologyNode struct {
	Leaf     bool
	IDs      []ItemID
	Children []*TopologyNode
}

// Topology is the point-free serializable form of a whole tree.
type Topology struct {
	Dim      int
	Cfg      Config
	FromBulk bool
	Root     *TopologyNode
}

// Topology captures the tree's structure without point payloads.
func (t *Tree) Topology() *Topology {
	var snap func(n *Node) *TopologyNode
	snap = func(n *Node) *TopologyNode {
		s := &TopologyNode{Leaf: n.leaf}
		if n.leaf {
			s.IDs = make([]ItemID, len(n.items))
			for i, it := range n.items {
				s.IDs[i] = it.ID
			}
			return s
		}
		for _, c := range n.children {
			s.Children = append(s.Children, snap(c))
		}
		return s
	}
	return &Topology{Dim: t.dim, Cfg: t.cfg, FromBulk: t.fromBulk, Root: snap(t.root)}
}

// FromTopology reconstructs a tree from a point-free topology, resolving
// each item ID through pointOf (typically store.FeatureStore.At). Like
// FromSnapshot it reassigns page IDs in pre-order and recomputes MBRs, sizes,
// and heights, so a topology restore of a tree is byte-identical to a
// snapshot restore of the same tree. Points are copied into the tree-owned
// slab by block packing, so the tree retains no pointOf memory.
func FromTopology(topo *Topology, pointOf func(ItemID) vec.Vector) (*Tree, error) {
	if topo == nil || topo.Root == nil {
		return nil, fmt.Errorf("rstar: nil topology")
	}
	if topo.Dim <= 0 {
		return nil, fmt.Errorf("rstar: topology dim %d", topo.Dim)
	}
	t := &Tree{dim: topo.Dim, cfg: topo.Cfg.withDefaults(), fromBulk: topo.FromBulk}

	maxDepth := 0
	var build func(sn *TopologyNode, parent *Node, depth int) (*Node, error)
	build = func(sn *TopologyNode, parent *Node, depth int) (*Node, error) {
		n := t.newNode(sn.Leaf)
		n.parent = parent
		if depth > maxDepth {
			maxDepth = depth
		}
		if sn.Leaf {
			if len(sn.Children) != 0 {
				return nil, fmt.Errorf("rstar: leaf topology with children")
			}
			n.items = make([]Item, len(sn.IDs))
			for i, id := range sn.IDs {
				p := pointOf(id)
				if len(p) != t.dim {
					return nil, fmt.Errorf("rstar: item %d dim %d != %d", id, len(p), t.dim)
				}
				n.items[i] = Item{ID: id, Point: p}
				t.size++
			}
		} else {
			if len(sn.IDs) != 0 {
				return nil, fmt.Errorf("rstar: internal topology with items")
			}
			if len(sn.Children) == 0 {
				return nil, fmt.Errorf("rstar: internal topology with no children")
			}
			for _, cs := range sn.Children {
				c, err := build(cs, n, depth+1)
				if err != nil {
					return nil, err
				}
				n.children = append(n.children, c)
			}
		}
		n.rect = nodeMBR(n)
		return n, nil
	}
	root, err := build(topo.Root, nil, 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	t.height = maxDepth + 1
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("rstar: topology violates invariants: %w", err)
	}
	t.packBlocks()
	return t, nil
}
