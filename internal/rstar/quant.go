package rstar

// This file wires the SQ8 compressed representation (store.Quantized, the
// int32 kernels in internal/vec) into the tree as a two-phase k-NN:
//
//  1. Scan. Because packBlocks lays leaves out in depth-first order, every
//     subtree owns one contiguous slab row range [qlo, qhi). The quantized
//     codes mirror the slab row-for-row, so a subtree-restricted search is a
//     single linear sweep of uint8 code rows feeding a bounded
//     vec.QuantTopK of size rerankFactor*k, with partial-distance early
//     exit against its threshold.
//  2. Rerank. The retained candidates are re-scored with the exact float
//     kernels against their slab rows and sorted ascending (Dist, ItemID) —
//     the same values and ordering the exact search produces.
//
// Exactness guarantee. Let delta be the quantizer step, qErr the query's
// measured decode error, dbErr = (delta/2)*sqrt(dim) the per-point bound, and
// T the selector's final threshold. QuantTopK admission thresholds only
// decrease, so every row NOT retained had code distance >= T, i.e. decoded
// distance >= delta*sqrt(T). By the triangle inequality its true distance to
// the query is at least
//
//	lower = delta*sqrt(T) - qErr - dbErr
//
// If the k-th reranked exact distance d_k satisfies d_k < lower (with a small
// relative safety margin absorbing float rounding), no excluded row can enter
// the top-k and the reranked result equals the exact search's bit-for-bit.
// When the check fails the search widens the candidate set (doubling
// rerankFactor*k) and ultimately reranks every row in the range — trivially
// exact — so the quantized path NEVER returns an approximate answer; failures
// only cost time and are counted as RerankFallbacks.
//
// Unclean corpora (NaN/±Inf components) have dbErr = +Inf and are routed to
// the exact search up front; a NaN query defeats the bound the same way and
// falls back likewise.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"qdcbir/internal/disk"
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// DefaultRerankFactor is the candidate multiplier used when a caller passes
// rerankFactor <= 0: the quantized scan retains DefaultRerankFactor*k rows
// for exact reranking. See DESIGN.md §11 for the tuning argument.
const DefaultRerankFactor = 4

// quantCtxInterval is how many code rows the quantized sweep scores between
// context polls (the rows are far cheaper than heap pops, so the interval is
// correspondingly larger than ctxCheckInterval).
const quantCtxInterval = 1024

// quantSafety is the relative margin applied to the exactness comparison so
// float rounding in sqrt/delta arithmetic can never certify a candidate set
// the real-number inequality would reject.
const quantSafety = 1e-9

// setQuantRanges assigns every node's slab row range [qlo, qhi) and builds
// the slab-ordered item ID table. Leaves are walked in the same depth-first
// order packBlocks used, so row r of the slab belongs to item qids[r].
// Requires blocksOK.
func (t *Tree) setQuantRanges() {
	t.qids = make([]ItemID, 0, t.size)
	var walk func(n *Node)
	walk = func(n *Node) {
		n.qlo = len(t.qids)
		if n.leaf {
			for _, it := range n.items {
				t.qids = append(t.qids, it.ID)
			}
		} else {
			for _, c := range n.children {
				walk(c)
			}
		}
		n.qhi = len(t.qids)
	}
	walk(t.root)
}

// SetQuantizedScoring toggles the SQ8 two-phase scan. Enabling packs the leaf
// blocks if needed and trains a quantizer over the tree's own slab (the slab
// is a permutation of the indexed points, and min/max training is
// order-independent, so the parameters are identical to training over the
// points in any other order). Disabling drops the codes; KNNQuant* then
// delegates to the exact search. Enabling an empty tree is a no-op. Like all
// mutations, the toggle requires external exclusion against readers.
func (t *Tree) SetQuantizedScoring(enabled bool) error {
	if !enabled {
		t.invalidateQuantized()
		return nil
	}
	if t.quantOK || t.size == 0 {
		return nil
	}
	if !t.blocksOK {
		t.packBlocks()
	}
	qz, err := store.QuantizeBacking(t.dim, t.slab)
	if err != nil {
		return err
	}
	t.setQuantRanges()
	t.qcodes = qz.Codes()
	t.quant = qz
	t.quantOK = true
	return nil
}

// AdoptQuantized installs a quantizer whose rows are indexed by ItemID (the
// store-ordered quantizer an archive persists), permuting its codes into slab
// order. Encoding is deterministic per point, so the adopted codes are
// byte-identical to what SetQuantizedScoring would retrain; archives restore
// through this to skip the training pass. Every indexed ItemID must be a
// valid row of qz.
func (t *Tree) AdoptQuantized(qz *store.Quantized) error {
	if qz == nil {
		return fmt.Errorf("rstar: adopt nil quantizer")
	}
	if qz.Dim() != t.dim {
		return fmt.Errorf("rstar: quantizer dim %d != tree dim %d", qz.Dim(), t.dim)
	}
	if t.size == 0 {
		return nil
	}
	if !t.blocksOK {
		t.packBlocks()
	}
	t.setQuantRanges()
	codes := make([]uint8, t.size*t.dim)
	for row, id := range t.qids {
		if int(id) < 0 || int(id) >= qz.Len() {
			t.invalidateQuantized()
			return fmt.Errorf("rstar: item %d outside quantizer rows [0, %d)", id, qz.Len())
		}
		copy(codes[row*t.dim:(row+1)*t.dim], qz.Row(int(id)))
	}
	t.qcodes = codes
	t.quant = qz
	t.quantOK = true
	return nil
}

// QuantizedScoring reports whether the SQ8 scan path is active.
func (t *Tree) QuantizedScoring() bool { return t.quantOK }

// invalidateQuantized drops the quantized-scan state. Node qlo/qhi values go
// stale rather than being rewalked; quantOK guards every use of them. The
// slab-ordered ID table is shared with the float32 scan path, so it survives
// while that path still holds it.
func (t *Tree) invalidateQuantized() {
	t.quantOK = false
	t.qcodes = nil
	t.quant = nil
	t.dropRangesIfUnused()
}

// dropRangesIfUnused releases the slab-ordered ID table once neither slab-
// sweep path (quantized or float32) needs it.
func (t *Tree) dropRangesIfUnused() {
	if !t.quantOK && !t.f32OK {
		t.qids = nil
	}
}

// quantScratch is the pooled working memory of one quantized search: the
// encoded query, the candidate selector, and the rerank buffers.
type quantScratch struct {
	qcodes []uint8
	sel    vec.QuantTopK
	ids    []int
	cands  []Neighbor
	dists  []int32
}

var quantScratchPool = sync.Pool{New: func() interface{} { return new(quantScratch) }}

func (sc *quantScratch) candBuf(n int) []Neighbor {
	if cap(sc.cands) < n {
		sc.cands = make([]Neighbor, n)
	}
	return sc.cands[:n]
}

func (sc *quantScratch) distBuf(n int) []int32 {
	if cap(sc.dists) < n {
		sc.dists = make([]int32, n)
	}
	return sc.dists[:n]
}

// KNNQuant returns the k nearest items to q using the two-phase quantized
// scan over the whole tree. Results are identical to KNN (see the exactness
// guarantee above); when quantized scoring is not active it simply delegates
// to the exact search.
func (t *Tree) KNNQuant(q vec.Vector, k int, acc disk.Accounter) []Neighbor {
	ns, _ := t.KNNQuantFromStatsCtx(context.Background(), t.root, q, k, 0, acc, nil)
	return ns
}

// KNNQuantFromStatsCtx runs the two-phase quantized k-NN restricted to the
// subtree rooted at n: an SQ8 sweep of the subtree's code rows selects
// rerankFactor*k candidates (rerankFactor <= 0 uses DefaultRerankFactor),
// the exact float kernels re-rank them, and the candidate set widens until
// the rerank guarantee certifies the result. Output is bit-identical to
// KNNFromStatsCtx. Leaf pages in the scanned range are reported to acc once;
// effort lands in st's CodesScanned/Reranked/RerankFallbacks counters, with
// per-phase wall time in ScanNS/RerankNS when st.Timed is set. Searches over
// trees without quantized scoring, unclean corpora, or NaN queries delegate
// to the exact path.
func (t *Tree) KNNQuantFromStatsCtx(ctx context.Context, n *Node, q vec.Vector, k, rerankFactor int, acc disk.Accounter, st *SearchStats) ([]Neighbor, error) {
	if k <= 0 || n == nil || n.Len() == 0 {
		return nil, ctx.Err()
	}
	if !t.quantOK || !t.quant.Clean() {
		return t.KNNFromStatsCtx(ctx, n, q, k, acc, st)
	}
	if rerankFactor <= 0 {
		rerankFactor = DefaultRerankFactor
	}
	if acc == nil {
		acc = disk.Nop{}
	}
	sc := quantScratchPool.Get().(*quantScratch)
	defer quantScratchPool.Put(sc)
	var qErr float64
	sc.qcodes, qErr = t.quant.EncodeQuery(q, sc.qcodes)
	if math.IsNaN(qErr) {
		if st != nil {
			st.RerankFallbacks++
		}
		return t.KNNFromStatsCtx(ctx, n, q, k, acc, st)
	}

	lo, hi := n.qlo, n.qhi
	rows := hi - lo
	if k > rows {
		k = rows
	}
	// The sweep reads every leaf's code rows (and the rerank its slab rows),
	// so each leaf page in the range is charged exactly once, retries
	// included — re-reads hit memory the first pass already paid for.
	var nodes uint64
	var chargeLeaves func(nd *Node)
	chargeLeaves = func(nd *Node) {
		if nd.leaf {
			acc.Access(nd.id)
			nodes++
			return
		}
		for _, c := range nd.children {
			chargeLeaves(c)
		}
	}
	chargeLeaves(n)

	timed := st != nil && st.Timed
	dim := t.dim
	codes := t.qcodes
	m := k * rerankFactor
	if m > rows || m < k { // m < k: multiplication overflow
		m = rows
	}
	var fellBack bool
	var codesScanned, reranked uint64
	var scanNS, rerankNS int64
	var results []Neighbor
	for {
		// Phase 1: quantized sweep of the subtree's code rows.
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		sel := &sc.sel
		sel.Reset(m)
		if vec.HasAcceleratedUint8Batch() {
			// Chunked batch sweep: score a block of rows with the SIMD batch
			// kernel, then filter against the selector threshold. Capped and
			// full distances admit the same rows (the capped contract), so the
			// retained set and final threshold are identical to the per-row
			// path below.
			for base := lo; base < hi; base += quantCtxInterval {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				end := base + quantCtxInterval
				if end > hi {
					end = hi
				}
				dists := sc.distBuf(end - base)
				vec.Uint8SquaredDistsTo(sc.qcodes, codes[base*dim:end*dim], dists)
				thr := sel.Threshold()
				for i, d := range dists {
					if d < thr {
						sel.Add(d, base+i)
						thr = sel.Threshold()
					}
				}
			}
		} else {
			for r := lo; r < hi; r++ {
				if (r-lo)%quantCtxInterval == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				row := codes[r*dim : r*dim+dim : r*dim+dim]
				d := vec.Uint8SquaredDistCapped(sc.qcodes, row, sel.Threshold())
				sel.Add(d, r)
			}
		}
		codesScanned += uint64(rows)
		threshold := sel.Threshold()
		if timed {
			scanNS += time.Since(t0).Nanoseconds()
			t0 = time.Now()
		}

		// Phase 2: exact rerank. SqL2 over a slab row computes the identical
		// value the exact search's batch kernel produces for that item, and
		// (Dist, ID) ordering matches stabilize, so the certified output is
		// bit-for-bit the exact search's.
		sc.ids = sel.AppendIDs(sc.ids[:0])
		cands := sc.candBuf(len(sc.ids))
		for i, r := range sc.ids {
			rowF := t.slab[r*dim : r*dim+dim : r*dim+dim]
			cands[i] = Neighbor{ID: t.qids[r], Point: rowF, Dist: math.Sqrt(vec.SqL2(q, rowF))}
		}
		reranked += uint64(len(cands))
		sort.Slice(cands, func(i, j int) bool { return neighborLess(cands[i], cands[j]) })
		if len(cands) > k {
			cands = cands[:k]
		}
		if timed {
			rerankNS += time.Since(t0).Nanoseconds()
		}

		if m >= rows {
			// Every row in range was reranked exactly; nothing was excluded.
			results = cands
			break
		}
		dk := cands[len(cands)-1].Dist
		lower := t.quant.DecodedDist(threshold) - qErr - t.quant.DBErr()
		if dk*(1+quantSafety) < lower*(1-quantSafety) {
			results = cands
			break
		}
		fellBack = true
		if m > rows/2 {
			m = rows
		} else {
			m *= 2
		}
	}
	out := make([]Neighbor, len(results))
	copy(out, results)
	if st != nil {
		st.NodesRead += nodes
		st.ItemsScored += reranked
		st.CodesScanned += codesScanned
		st.Reranked += reranked
		st.ScanNS += scanNS
		st.RerankNS += rerankNS
		if fellBack {
			st.RerankFallbacks++
		}
	}
	return out, nil
}
