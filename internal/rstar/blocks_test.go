package rstar

import (
	"context"
	"math/rand"
	"testing"

	"qdcbir/internal/disk"
	"qdcbir/internal/vec"
)

// knnRun captures everything observable about one search so the block-scored
// and scalar paths can be compared field by field.
type knnRun struct {
	neighbors []Neighbor
	stats     SearchStats
	reads     uint64
	accesses  uint64
}

func runKNN(t *testing.T, tr *Tree, q vec.Vector, k int, weights vec.Vector) knnRun {
	t.Helper()
	acc := &disk.Counter{}
	var st SearchStats
	var ns []Neighbor
	var err error
	if weights != nil {
		ns, err = tr.KNNWeightedFromStatsCtx(context.Background(), tr.Root(), q, weights, k, acc, &st)
	} else {
		ns, err = tr.KNNFromStatsCtx(context.Background(), tr.Root(), q, k, acc, &st)
	}
	if err != nil {
		t.Fatalf("knn: %v", err)
	}
	return knnRun{neighbors: ns, stats: st, reads: acc.Reads(), accesses: acc.Accesses()}
}

func sameRun(t *testing.T, label string, a, b knnRun) {
	t.Helper()
	if a.stats != b.stats {
		t.Errorf("%s: SearchStats diverge: block %+v scalar %+v", label, a.stats, b.stats)
	}
	if a.reads != b.reads || a.accesses != b.accesses {
		t.Errorf("%s: accounter traffic diverges: block reads=%d/acc=%d scalar reads=%d/acc=%d",
			label, a.reads, a.accesses, b.reads, b.accesses)
	}
	if len(a.neighbors) != len(b.neighbors) {
		t.Fatalf("%s: result sizes diverge: %d vs %d", label, len(a.neighbors), len(b.neighbors))
	}
	for i := range a.neighbors {
		if a.neighbors[i].ID != b.neighbors[i].ID || a.neighbors[i].Dist != b.neighbors[i].Dist {
			t.Errorf("%s: neighbor %d diverges: %+v vs %+v", label, i, a.neighbors[i], b.neighbors[i])
		}
	}
}

// TestBlockScalarAgreement verifies the PR 3 batch-kernel leaf path and the
// scalar fallback report identical results, identical SearchStats, and
// identical simulated page traffic — the invariant the observer's counters
// depend on.
func TestBlockScalarAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randPoints(rng, 400, 8, 10)
	tr := packedTree(t, pts)
	if !tr.BlocksPacked() {
		t.Fatal("bulk-loaded tree has no packed blocks")
	}
	weights := vec.Vector{2, 1, 1, 0.5, 1, 1, 3, 1}
	for qi := 0; qi < 10; qi++ {
		q := pts[rng.Intn(len(pts))]
		k := 1 + rng.Intn(30)

		block := runKNN(t, tr, q, k, nil)
		tr.SetBlockScoring(false)
		if tr.BlocksPacked() {
			t.Fatal("SetBlockScoring(false) left blocks packed")
		}
		scalar := runKNN(t, tr, q, k, nil)
		sameRun(t, "unweighted", block, scalar)

		scalarW := runKNN(t, tr, q, k, weights)
		tr.SetBlockScoring(true)
		if !tr.BlocksPacked() {
			t.Fatal("SetBlockScoring(true) did not repack blocks")
		}
		blockW := runKNN(t, tr, q, k, weights)
		sameRun(t, "weighted", blockW, scalarW)
	}
}

// packedTree bulk-loads a packed tree from raw points (test helper).
func packedTree(t *testing.T, pts []vec.Vector) *Tree {
	t.Helper()
	tr := BulkLoad(len(pts[0]), smallCfg, bulkItems(pts), 8)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	return tr
}

func TestSetBlockScoringIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 60, 4, 5)
	tr := packedTree(t, pts)
	tr.SetBlockScoring(true) // already packed: no-op
	if !tr.BlocksPacked() {
		t.Fatal("enable on packed tree dropped blocks")
	}
	tr.SetBlockScoring(false)
	tr.SetBlockScoring(false) // already scalar: no-op
	if tr.BlocksPacked() {
		t.Fatal("disable left blocks packed")
	}
	// Results stay correct across repack cycles.
	q := pts[0]
	before := tr.KNN(q, 5, nil)
	tr.SetBlockScoring(true)
	after := tr.KNN(q, 5, nil)
	if len(before) != len(after) {
		t.Fatalf("sizes diverge: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i].ID != after[i].ID || before[i].Dist != after[i].Dist {
			t.Errorf("neighbor %d diverges after repack: %+v vs %+v", i, before[i], after[i])
		}
	}
}
