package img

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccess(t *testing.T) {
	im := New(4, 3)
	if im.W != 4 || im.H != 3 || len(im.Pix) != 12 {
		t.Fatalf("bad image: %dx%d, %d pixels", im.W, im.H, len(im.Pix))
	}
	c := RGB{10, 20, 30}
	im.Set(3, 2, c)
	if im.At(3, 2) != c {
		t.Errorf("At = %v", im.At(3, 2))
	}
	if im.At(0, 0) != (RGB{}) {
		t.Errorf("zero pixel = %v", im.At(0, 0))
	}
}

func TestNewInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 5)
}

func TestIn(t *testing.T) {
	im := New(2, 2)
	cases := []struct {
		x, y int
		want bool
	}{
		{0, 0, true}, {1, 1, true}, {-1, 0, false}, {0, -1, false}, {2, 0, false}, {0, 2, false},
	}
	for _, c := range cases {
		if got := im.In(c.x, c.y); got != c.want {
			t.Errorf("In(%d,%d) = %v want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	im := New(2, 2)
	im.Fill(RGB{5, 5, 5})
	c := im.Clone()
	c.Set(0, 0, RGB{9, 9, 9})
	if im.At(0, 0) != (RGB{5, 5, 5}) {
		t.Error("Clone shares pixels")
	}
}

func TestCrop(t *testing.T) {
	im := New(6, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 6; x++ {
			im.Set(x, y, RGB{R: uint8(x), G: uint8(y)})
		}
	}
	c := im.Crop(1, 1, 4, 3)
	if c.W != 3 || c.H != 2 {
		t.Fatalf("crop size %dx%d", c.W, c.H)
	}
	if c.At(0, 0) != (RGB{R: 1, G: 1}) || c.At(2, 1) != (RGB{R: 3, G: 2}) {
		t.Errorf("crop contents wrong: %v %v", c.At(0, 0), c.At(2, 1))
	}
	// Crop is a copy.
	c.Set(0, 0, RGB{R: 99})
	if im.At(1, 1) == (RGB{R: 99}) {
		t.Error("crop aliases source")
	}
	// Out-of-bounds coordinates clamp.
	full := im.Crop(-10, -10, 100, 100)
	if full.W != 6 || full.H != 4 {
		t.Errorf("clamped crop %dx%d", full.W, full.H)
	}
}

func TestCropEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty crop did not panic")
		}
	}()
	New(4, 4).Crop(2, 2, 2, 4)
}

func TestToNRGBA(t *testing.T) {
	im := New(3, 2)
	im.Set(1, 0, RGB{R: 10, G: 20, B: 30})
	std := im.ToNRGBA()
	if std.Bounds().Dx() != 3 || std.Bounds().Dy() != 2 {
		t.Fatalf("bounds %v", std.Bounds())
	}
	r, g, b, a := std.At(1, 0).RGBA()
	if r>>8 != 10 || g>>8 != 20 || b>>8 != 30 || a>>8 != 255 {
		t.Errorf("pixel = %d,%d,%d,%d", r>>8, g>>8, b>>8, a>>8)
	}
	r0, g0, b0, a0 := std.At(0, 0).RGBA()
	if r0 != 0 || g0 != 0 || b0 != 0 || a0>>8 != 255 {
		t.Errorf("zero pixel = %d,%d,%d,%d", r0, g0, b0, a0>>8)
	}
}

func TestGray(t *testing.T) {
	im := New(1, 3)
	im.Set(0, 0, RGB{255, 255, 255})
	im.Set(0, 1, RGB{0, 0, 0})
	im.Set(0, 2, RGB{255, 0, 0})
	g := im.Gray()
	if math.Abs(g[0]-255) > 1e-9 {
		t.Errorf("white luma = %v", g[0])
	}
	if g[1] != 0 {
		t.Errorf("black luma = %v", g[1])
	}
	if math.Abs(g[2]-0.299*255) > 1e-9 {
		t.Errorf("red luma = %v", g[2])
	}
}

func TestToHSVKnownColors(t *testing.T) {
	cases := []struct {
		in      RGB
		h, s, v float64
	}{
		{RGB{255, 0, 0}, 0, 1, 1},
		{RGB{0, 255, 0}, 120, 1, 1},
		{RGB{0, 0, 255}, 240, 1, 1},
		{RGB{255, 255, 255}, 0, 0, 1},
		{RGB{0, 0, 0}, 0, 0, 0},
		{RGB{128, 128, 128}, 0, 0, 128.0 / 255},
	}
	for _, c := range cases {
		got := ToHSV(c.in)
		if math.Abs(got.H-c.h) > 1e-9 || math.Abs(got.S-c.s) > 1e-9 || math.Abs(got.V-c.v) > 1e-9 {
			t.Errorf("ToHSV(%v) = %+v, want {%v %v %v}", c.in, got, c.h, c.s, c.v)
		}
	}
}

func TestToHSVHueRange(t *testing.T) {
	f := func(r, g, b uint8) bool {
		h := ToHSV(RGB{r, g, b})
		return h.H >= 0 && h.H < 360 && h.S >= 0 && h.S <= 1 && h.V >= 0 && h.V <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelTransforms(t *testing.T) {
	im := New(1, 1)
	im.Set(0, 0, RGB{200, 100, 50})

	orig := Transform(im, ChannelOriginal)
	if orig.At(0, 0) != im.At(0, 0) {
		t.Error("original channel changed pixel")
	}
	orig.Set(0, 0, RGB{})
	if im.At(0, 0) == (RGB{}) {
		t.Error("original channel aliases source")
	}

	neg := Transform(im, ChannelNegative)
	if neg.At(0, 0) != (RGB{55, 155, 205}) {
		t.Errorf("negative = %v", neg.At(0, 0))
	}

	gray := Transform(im, ChannelGray)
	p := gray.At(0, 0)
	if p.R != p.G || p.G != p.B {
		t.Errorf("gray not achromatic: %v", p)
	}

	gn := Transform(im, ChannelGrayNegative)
	q := gn.At(0, 0)
	if q.R != 255-p.R {
		t.Errorf("gray-negative %v vs gray %v", q, p)
	}
}

func TestChannelNegativeIsInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	im := New(8, 8)
	for i := range im.Pix {
		im.Pix[i] = RGB{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
	}
	back := Transform(Transform(im, ChannelNegative), ChannelNegative)
	for i := range im.Pix {
		if back.Pix[i] != im.Pix[i] {
			t.Fatalf("negative twice != identity at %d: %v vs %v", i, back.Pix[i], im.Pix[i])
		}
	}
}

func TestChannelString(t *testing.T) {
	names := map[Channel]string{
		ChannelOriginal:     "original",
		ChannelNegative:     "color-negative",
		ChannelGray:         "black-white",
		ChannelGrayNegative: "black-white-negative",
	}
	for ch, want := range names {
		if got := ch.String(); got != want {
			t.Errorf("%d.String() = %q want %q", int(ch), got, want)
		}
	}
	if got := Channel(99).String(); got != "Channel(99)" {
		t.Errorf("unknown channel = %q", got)
	}
	if len(AllChannels) != 4 {
		t.Errorf("AllChannels has %d entries", len(AllChannels))
	}
}

func TestFillRectClipping(t *testing.T) {
	im := New(4, 4)
	c := RGB{1, 2, 3}
	im.FillRect(-5, -5, 100, 2, c) // overflows on three sides
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			want := y < 2
			if got := im.At(x, y) == c; got != want {
				t.Errorf("pixel (%d,%d) filled=%v want %v", x, y, got, want)
			}
		}
	}
}

func TestFillEllipseCoverage(t *testing.T) {
	im := New(20, 20)
	c := RGB{9, 9, 9}
	im.FillEllipse(10, 10, 5, 5, c)
	if im.At(10, 10) != c {
		t.Error("centre not filled")
	}
	if im.At(0, 0) == c {
		t.Error("far corner filled")
	}
	if im.At(14, 10) != c {
		t.Error("point on radius not filled")
	}
	// Degenerate radii are a no-op.
	im2 := New(4, 4)
	im2.FillEllipse(2, 2, 0, 3, c)
	for _, p := range im2.Pix {
		if p == c {
			t.Fatal("degenerate ellipse painted pixels")
		}
	}
}

func TestFillTriangle(t *testing.T) {
	im := New(10, 10)
	c := RGB{7, 7, 7}
	im.FillTriangle(0, 0, 9, 0, 0, 9, c)
	if im.At(1, 1) != c {
		t.Error("interior pixel not filled")
	}
	if im.At(9, 9) == c {
		t.Error("opposite corner filled")
	}
}

func TestDrawLine(t *testing.T) {
	im := New(5, 5)
	c := RGB{3, 3, 3}
	im.DrawLine(0, 0, 4, 4, c)
	for i := 0; i < 5; i++ {
		if im.At(i, i) != c {
			t.Errorf("diagonal pixel (%d,%d) missing", i, i)
		}
	}
	// Line partially outside is clipped, not a panic.
	im.DrawLine(-3, 2, 8, 2, c)
	if im.At(2, 2) != c {
		t.Error("clipped horizontal line missing")
	}
}

func TestStripesAndCheckerChangePixels(t *testing.T) {
	im := New(16, 16)
	im.Fill(RGB{100, 100, 100})
	im.Stripes(RGB{200, 0, 0}, 4, 0.5, 1.0)
	var changed int
	for _, p := range im.Pix {
		if p != (RGB{100, 100, 100}) {
			changed++
		}
	}
	if changed == 0 || changed == len(im.Pix) {
		t.Errorf("stripes changed %d of %d pixels; want strictly between", changed, len(im.Pix))
	}

	im2 := New(16, 16)
	im2.Fill(RGB{100, 100, 100})
	im2.Checker(RGB{0, 0, 200}, 4, 1.0)
	if im2.At(0, 0) != (RGB{0, 0, 200}) {
		t.Errorf("checker cell (0,0) = %v", im2.At(0, 0))
	}
	if im2.At(4, 0) != (RGB{100, 100, 100}) {
		t.Errorf("checker cell (4,0) = %v", im2.At(4, 0))
	}
	// Zero-strength overlays are no-ops on colour.
	im3 := New(8, 8)
	im3.Fill(RGB{50, 50, 50})
	im3.Stripes(RGB{255, 255, 255}, 3, 0, 0)
	for _, p := range im3.Pix {
		if p != (RGB{50, 50, 50}) {
			t.Fatal("zero-strength stripes mutated image")
		}
	}
}

func TestSpeckleStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	im := New(64, 64)
	im.Fill(RGB{128, 128, 128})
	im.Speckle(rng, 10)
	var sum, sumSq float64
	for _, p := range im.Pix {
		v := float64(p.R)
		sum += v
		sumSq += v * v
	}
	n := float64(len(im.Pix))
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-128) > 2 {
		t.Errorf("speckle mean drifted: %v", mean)
	}
	if std < 5 || std > 15 {
		t.Errorf("speckle std = %v, want near 10", std)
	}
	// Zero sigma is a no-op.
	im2 := New(4, 4)
	im2.Fill(RGB{7, 7, 7})
	im2.Speckle(rng, 0)
	for _, p := range im2.Pix {
		if p != (RGB{7, 7, 7}) {
			t.Fatal("zero-sigma speckle mutated image")
		}
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := RGB{0, 10, 20}, RGB{100, 110, 120}
	if Lerp(a, b, 0) != a {
		t.Error("Lerp t=0")
	}
	if Lerp(a, b, 1) != b {
		t.Error("Lerp t=1")
	}
	mid := Lerp(a, b, 0.5)
	if mid.R != 50 || mid.G != 60 || mid.B != 70 {
		t.Errorf("Lerp midpoint = %v", mid)
	}
}

func TestClamp8(t *testing.T) {
	if Clamp8(-3) != 0 || Clamp8(300) != 255 || Clamp8(127.6) != 128 {
		t.Errorf("Clamp8 wrong: %d %d %d", Clamp8(-3), Clamp8(300), Clamp8(127.6))
	}
}

func TestJitterStaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := RGB{250, 5, 128}
	for i := 0; i < 100; i++ {
		c := Jitter(rng, base, 20)
		// Clamp8 guarantees validity; check the perturbation is bounded.
		if d := int(c.B) - 128; d > 21 || d < -21 {
			t.Fatalf("jitter exceeded bound: %v", c)
		}
	}
}

func TestFillVGradient(t *testing.T) {
	im := New(3, 5)
	top, bottom := RGB{0, 0, 0}, RGB{200, 200, 200}
	im.FillVGradient(top, bottom)
	if im.At(0, 0) != top {
		t.Errorf("top row = %v", im.At(0, 0))
	}
	if im.At(0, 4) != bottom {
		t.Errorf("bottom row = %v", im.At(0, 4))
	}
	if im.At(0, 2).R <= im.At(0, 0).R || im.At(0, 2).R >= im.At(0, 4).R {
		t.Errorf("gradient not monotone: %v", im.At(0, 2))
	}
	// All pixels in a row are equal.
	if im.At(0, 2) != im.At(2, 2) {
		t.Error("row not constant")
	}
}
