package img

import (
	"math"
	"math/rand"
)

// This file contains the procedural drawing primitives the dataset generator
// uses to render subconcept appearances: background washes, simple filled
// shapes, stripe/checker textures, and pixel noise. The goal is not pretty
// pictures but controllable colour, texture, and edge statistics, so that the
// 37-d feature extractor separates different appearances into different
// feature-space clusters — the geometry the paper's experiments depend on.

// Clamp8 converts a float to a uint8, clamping to [0, 255].
func Clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Lerp linearly interpolates between a and b by t in [0, 1].
func Lerp(a, b RGB, t float64) RGB {
	return RGB{
		R: Clamp8(float64(a.R) + t*(float64(b.R)-float64(a.R))),
		G: Clamp8(float64(a.G) + t*(float64(b.G)-float64(a.G))),
		B: Clamp8(float64(a.B) + t*(float64(b.B)-float64(a.B))),
	}
}

// FillVGradient paints a vertical gradient from top colour to bottom colour.
func (im *Image) FillVGradient(top, bottom RGB) {
	for y := 0; y < im.H; y++ {
		t := 0.0
		if im.H > 1 {
			t = float64(y) / float64(im.H-1)
		}
		c := Lerp(top, bottom, t)
		for x := 0; x < im.W; x++ {
			im.Set(x, y, c)
		}
	}
}

// FillRect fills the axis-aligned rectangle [x0,x1) x [y0,y1), clipped to the
// image bounds.
func (im *Image) FillRect(x0, y0, x1, y1 int, c RGB) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > im.W {
		x1 = im.W
	}
	if y1 > im.H {
		y1 = im.H
	}
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			im.Set(x, y, c)
		}
	}
}

// FillEllipse fills the ellipse centred at (cx, cy) with radii (rx, ry),
// clipped to the image bounds.
func (im *Image) FillEllipse(cx, cy, rx, ry float64, c RGB) {
	if rx <= 0 || ry <= 0 {
		return
	}
	x0 := int(math.Floor(cx - rx))
	x1 := int(math.Ceil(cx + rx))
	y0 := int(math.Floor(cy - ry))
	y1 := int(math.Ceil(cy + ry))
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			if !im.In(x, y) {
				continue
			}
			dx := (float64(x) - cx) / rx
			dy := (float64(y) - cy) / ry
			if dx*dx+dy*dy <= 1 {
				im.Set(x, y, c)
			}
		}
	}
}

// FillTriangle fills the triangle with the given vertices using a scanline
// point-in-triangle test, clipped to the image bounds.
func (im *Image) FillTriangle(x1, y1, x2, y2, x3, y3 float64, c RGB) {
	minX := int(math.Floor(math.Min(x1, math.Min(x2, x3))))
	maxX := int(math.Ceil(math.Max(x1, math.Max(x2, x3))))
	minY := int(math.Floor(math.Min(y1, math.Min(y2, y3))))
	maxY := int(math.Ceil(math.Max(y1, math.Max(y2, y3))))
	sign := func(ax, ay, bx, by, px, py float64) float64 {
		return (px-bx)*(ay-by) - (ax-bx)*(py-by)
	}
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			if !im.In(x, y) {
				continue
			}
			px, py := float64(x)+0.5, float64(y)+0.5
			d1 := sign(x1, y1, x2, y2, px, py)
			d2 := sign(x2, y2, x3, y3, px, py)
			d3 := sign(x3, y3, x1, y1, px, py)
			neg := d1 < 0 || d2 < 0 || d3 < 0
			pos := d1 > 0 || d2 > 0 || d3 > 0
			if !(neg && pos) {
				im.Set(x, y, c)
			}
		}
	}
}

// DrawLine draws a 1-pixel line from (x0, y0) to (x1, y1) with Bresenham's
// algorithm, clipped to the image bounds.
func (im *Image) DrawLine(x0, y0, x1, y1 int, c RGB) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if im.In(x0, y0) {
			im.Set(x0, y0, c)
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Stripes overlays diagonal stripes of the given colour, period (pixels), and
// angle (radians). strength in [0, 1] blends the stripe colour over what is
// already there. Controls the texture-energy features.
func (im *Image) Stripes(c RGB, period float64, angle, strength float64) {
	if period <= 0 {
		return
	}
	cosA, sinA := math.Cos(angle), math.Sin(angle)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			u := float64(x)*cosA + float64(y)*sinA
			phase := math.Mod(u, period)
			if phase < 0 {
				phase += period
			}
			if phase < period/2 {
				im.Set(x, y, Lerp(im.At(x, y), c, strength))
			}
		}
	}
}

// Checker overlays a checkerboard of the given cell size, blending c over
// alternating cells with the given strength. Produces high-frequency texture
// plus dense edges.
func (im *Image) Checker(c RGB, cell int, strength float64) {
	if cell <= 0 {
		return
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			if (x/cell+y/cell)%2 == 0 {
				im.Set(x, y, Lerp(im.At(x, y), c, strength))
			}
		}
	}
}

// Speckle perturbs every pixel with zero-mean Gaussian noise of the given
// standard deviation (in 8-bit units). It models sensor/appearance jitter so
// two renders of the same subconcept are near but not identical in feature
// space.
func (im *Image) Speckle(rng *rand.Rand, sigma float64) {
	if sigma <= 0 {
		return
	}
	for i, p := range im.Pix {
		im.Pix[i] = RGB{
			R: Clamp8(float64(p.R) + rng.NormFloat64()*sigma),
			G: Clamp8(float64(p.G) + rng.NormFloat64()*sigma),
			B: Clamp8(float64(p.B) + rng.NormFloat64()*sigma),
		}
	}
}

// Jitter returns c with each channel perturbed by uniform noise in
// [-amount, +amount]. Used to vary palettes inside a subconcept.
func Jitter(rng *rand.Rand, c RGB, amount float64) RGB {
	j := func(v uint8) uint8 {
		return Clamp8(float64(v) + (rng.Float64()*2-1)*amount)
	}
	return RGB{R: j(c.R), G: j(c.G), B: j(c.B)}
}
