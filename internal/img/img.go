// Package img provides the raster-image substrate for the synthetic CBIR
// corpus: an 8-bit RGB image type, colour-space conversions, procedural
// drawing primitives used by the dataset generator, and the four colour
// channels (original, colour-negative, grey, grey-negative) required by the
// Multiple Viewpoints baseline.
//
// Images are deliberately tiny structs over a flat pixel slice so that a
// 15,000-image corpus (the paper's scale) fits comfortably in memory and
// feature extraction stays fast enough for benchmark sweeps.
package img

import (
	"fmt"
	"image"
	"image/color"
)

// RGB is an 8-bit-per-channel pixel.
type RGB struct{ R, G, B uint8 }

// Image is a W x H raster of RGB pixels stored row-major.
type Image struct {
	W, H int
	Pix  []RGB
}

// New allocates a black W x H image. It panics on non-positive dimensions.
func New(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]RGB, w*h)}
}

// At returns the pixel at (x, y). Out-of-bounds access panics via the slice.
func (im *Image) At(x, y int) RGB { return im.Pix[y*im.W+x] }

// Set writes the pixel at (x, y).
func (im *Image) Set(x, y int, c RGB) { im.Pix[y*im.W+x] = c }

// In reports whether (x, y) lies inside the image bounds.
func (im *Image) In(x, y int) bool { return x >= 0 && x < im.W && y >= 0 && y < im.H }

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	c := New(im.W, im.H)
	copy(c.Pix, im.Pix)
	return c
}

// Fill paints every pixel with c.
func (im *Image) Fill(c RGB) {
	for i := range im.Pix {
		im.Pix[i] = c
	}
}

// Crop returns a copy of the subregion [x0,x1) x [y0,y1), clamped to the
// image bounds. It panics if the clamped region is empty. The paper's §6
// contour extension uses this to restrict feature extraction to the object
// of interest.
func (im *Image) Crop(x0, y0, x1, y1 int) *Image {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > im.W {
		x1 = im.W
	}
	if y1 > im.H {
		y1 = im.H
	}
	if x1 <= x0 || y1 <= y0 {
		panic(fmt.Sprintf("img: empty crop [%d,%d)x[%d,%d)", x0, x1, y0, y1))
	}
	out := New(x1-x0, y1-y0)
	for y := y0; y < y1; y++ {
		copy(out.Pix[(y-y0)*out.W:(y-y0+1)*out.W], im.Pix[y*im.W+x0:y*im.W+x1])
	}
	return out
}

// Gray returns the per-pixel luma (Rec. 601) as float64 values in [0, 255],
// row-major. This is the input to the wavelet-texture and edge extractors.
func (im *Image) Gray() []float64 {
	g := make([]float64, len(im.Pix))
	for i, p := range im.Pix {
		g[i] = 0.299*float64(p.R) + 0.587*float64(p.G) + 0.114*float64(p.B)
	}
	return g
}

// ToNRGBA converts the image to a standard-library image for encoding (PNG
// serving in the web UI, §6's "image search engine for the Web").
func (im *Image) ToNRGBA() *image.NRGBA {
	out := image.NewNRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			p := im.At(x, y)
			out.SetNRGBA(x, y, color.NRGBA{R: p.R, G: p.G, B: p.B, A: 255})
		}
	}
	return out
}

// HSV holds a pixel in hue-saturation-value space with H in [0, 360),
// S and V in [0, 1].
type HSV struct{ H, S, V float64 }

// ToHSV converts an RGB pixel to HSV.
func ToHSV(c RGB) HSV {
	r := float64(c.R) / 255
	g := float64(c.G) / 255
	b := float64(c.B) / 255
	max := r
	if g > max {
		max = g
	}
	if b > max {
		max = b
	}
	min := r
	if g < min {
		min = g
	}
	if b < min {
		min = b
	}
	d := max - min
	var h float64
	switch {
	case d == 0:
		h = 0
	case max == r:
		h = 60 * ((g - b) / d)
	case max == g:
		h = 60 * ((b-r)/d + 2)
	default:
		h = 60 * ((r-g)/d + 4)
	}
	if h < 0 {
		h += 360
	}
	var s float64
	if max > 0 {
		s = d / max
	}
	return HSV{H: h, S: s, V: max}
}

// Channel identifies one of the Multiple Viewpoints query channels from the
// paper's experimental setup (§5.2: "the four color channels").
type Channel int

// The four MV channels.
const (
	ChannelOriginal Channel = iota
	ChannelNegative
	ChannelGray
	ChannelGrayNegative
)

// AllChannels lists the four MV channels in paper order.
var AllChannels = []Channel{ChannelOriginal, ChannelNegative, ChannelGray, ChannelGrayNegative}

// String names the channel for reports.
func (c Channel) String() string {
	switch c {
	case ChannelOriginal:
		return "original"
	case ChannelNegative:
		return "color-negative"
	case ChannelGray:
		return "black-white"
	case ChannelGrayNegative:
		return "black-white-negative"
	default:
		return fmt.Sprintf("Channel(%d)", int(c))
	}
}

// Transform returns the image viewed through the given channel. The original
// channel returns a clone so callers may mutate results freely.
func Transform(im *Image, ch Channel) *Image {
	out := New(im.W, im.H)
	for i, p := range im.Pix {
		switch ch {
		case ChannelOriginal:
			out.Pix[i] = p
		case ChannelNegative:
			out.Pix[i] = RGB{255 - p.R, 255 - p.G, 255 - p.B}
		case ChannelGray:
			y := luma8(p)
			out.Pix[i] = RGB{y, y, y}
		case ChannelGrayNegative:
			y := 255 - luma8(p)
			out.Pix[i] = RGB{y, y, y}
		default:
			panic(fmt.Sprintf("img: unknown channel %d", int(ch)))
		}
	}
	return out
}

func luma8(p RGB) uint8 {
	y := 0.299*float64(p.R) + 0.587*float64(p.G) + 0.114*float64(p.B)
	if y > 255 {
		y = 255
	}
	return uint8(y + 0.5)
}
