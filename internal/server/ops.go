package server

import (
	"net/http"
	"runtime/debug"

	"qdcbir/internal/obs"
)

// This file holds the operational endpoints: liveness (/healthz), build
// identification (/v1/buildinfo), and the sliding-window latency digests
// (/v1/latency) that answer "what is the p99 right now" where the cumulative
// histograms in /v1/stats answer "what has it been since boot".

// handleHealthz is the liveness probe: the process is up and the handler
// chain is serving. It deliberately touches no engine state, so it stays
// cheap and cannot fail while the server can still answer at all.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}

// BuildInfoResponse identifies the running binary and the corpus it serves,
// including archive provenance: which on-disk format version the corpus was
// loaded from and the scan precision it runs at ("float64", "float32", or
// "sq8"). The router's fleet verification reads these to refuse
// mixed-precision fleets, whose distances would not merge bit-identically.
type BuildInfoResponse struct {
	GoVersion      string `json:"go_version"`
	Revision       string `json:"revision,omitempty"`
	VCSTime        string `json:"vcs_time,omitempty"`
	VCSModified    bool   `json:"vcs_modified,omitempty"`
	Images         int    `json:"images"`
	TreeHeight     int    `json:"tree_height"`
	ArchiveVersion int    `json:"archive_version,omitempty"`
	Precision      string `json:"precision,omitempty"`
	Quantized      bool   `json:"quantized,omitempty"`
	ShardIndex     *int   `json:"shard_index,omitempty"`
	ShardCount     int    `json:"shard_count,omitempty"`

	// Dynamic-mode fields: the current epoch and segment shape of an
	// online-ingest corpus (absent on static servers).
	Dynamic     bool   `json:"dynamic,omitempty"`
	Epoch       uint64 `json:"epoch,omitempty"`
	Segments    int    `json:"segments,omitempty"`
	MemRows     int    `json:"mem_rows,omitempty"`
	Tombstones  int    `json:"tombstones,omitempty"`
	Seals       uint64 `json:"seals,omitempty"`
	Compactions uint64 `json:"compactions,omitempty"`
}

// SetArchiveInfo records the provenance of the loaded corpus for
// /v1/buildinfo (version 0 means "built in process, no archive").
func (s *Server) SetArchiveInfo(version int, precision string, quantized bool) {
	s.archiveVersion = version
	s.archivePrecision = precision
	s.archiveQuantized = quantized
}

// buildInfo assembles the response (separated from the handler so qdserve can
// log the same facts at startup).
func (s *Server) buildInfo() BuildInfoResponse {
	out := BuildInfoResponse{
		ArchiveVersion: s.archiveVersion,
		Precision:      s.archivePrecision,
		Quantized:      s.archiveQuantized,
	}
	if s.dyn != nil {
		st := s.dyn.Stats()
		out.Dynamic = true
		out.Images = st.Live
		out.Epoch = st.Epoch
		out.Segments = st.Segments
		out.MemRows = st.MemRows
		out.Tombstones = st.Tombstones
		out.Seals = st.Seals
		out.Compactions = st.Compactions
		return withDebugBuildInfo(out)
	}
	out.Images = s.engine.RFS().Len()
	out.TreeHeight = s.engine.RFS().Tree().Height()
	if s.shard != nil {
		m := s.shard.Meta()
		idx := m.ShardIndex
		out.ShardIndex = &idx
		out.ShardCount = m.ShardCount
		// A shard's local slice answers Images above; the corpus-wide count
		// lives in the shard meta. Report the corpus so fleets look uniform.
		out.Images = m.Images
	}
	return withDebugBuildInfo(out)
}

// withDebugBuildInfo stamps the binary's VCS identification onto the
// response.
func withDebugBuildInfo(out BuildInfoResponse) BuildInfoResponse {
	if bi, ok := debug.ReadBuildInfo(); ok {
		out.GoVersion = bi.GoVersion
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				out.Revision = kv.Value
			case "vcs.time":
				out.VCSTime = kv.Value
			case "vcs.modified":
				out.VCSModified = kv.Value == "true"
			}
		}
	}
	return out
}

// BuildInfo reports the served binary's build identification and corpus shape
// (exported for qdserve's startup log).
func (s *Server) BuildInfo() BuildInfoResponse { return s.buildInfo() }

// handleBuildInfo serves the binary/corpus identification.
func (s *Server) handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.buildInfo())
}

// LatencyResponse is the /v1/latency body: for every digest (engine phases
// and HTTP endpoints), quantile summaries over each lookback window. With
// ?detail=1 the full per-window bucket vectors ride along so a router can
// merge digests across replicas instead of averaging quantiles (which is
// statistically meaningless).
type LatencyResponse struct {
	Windows []string          `json:"windows"`
	Digests obs.LatencyReport `json:"digests"`
	Detail  obs.DigestDetail  `json:"detail,omitempty"`
}

// handleLatency serves the sliding-window latency digests.
func (s *Server) handleLatency(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	labels := make([]string, len(obs.DefaultWindows))
	for i, win := range obs.DefaultWindows {
		labels[i] = obs.WindowLabel(win)
	}
	resp := LatencyResponse{
		Windows: labels,
		Digests: s.obs.Windows().Report(nil),
	}
	if r.URL.Query().Get("detail") == "1" {
		resp.Detail = s.obs.Windows().ReportDetail(nil)
	}
	writeJSON(w, http.StatusOK, resp)
}

// SlowResponse is the /v1/slow body: the retained slow-query exemplars,
// slowest first.
type SlowResponse struct {
	Slowest []obs.SlowQuery `json:"slowest"`
}

// handleSlow serves the slow-query exemplar log.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	slowest := s.slow.Slowest()
	if slowest == nil {
		slowest = []obs.SlowQuery{}
	}
	writeJSON(w, http.StatusOK, SlowResponse{Slowest: slowest})
}
