package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
)

// Client implements the paper's client-side configuration: it downloads the
// representative payload once, runs the entire relevance-feedback loop
// locally (candidate display, marking, query decomposition descent), and
// contacts the server exactly once per query — to run the final localized
// k-NN subqueries (§4). This is the property the paper credits for the
// technique's scalability to "a very large user community".
type Client struct {
	base    string
	hc      *http.Client
	payload *Payload

	// navigation indexes derived from the payload
	parent map[*PayloadNode]*PayloadNode
	leafOf map[int]*PayloadNode
}

// Dial fetches the server's payload and prepares a client. httpClient may be
// nil (http.DefaultClient).
func Dial(baseURL string, httpClient *http.Client) (*Client, error) {
	return DialContext(context.Background(), baseURL, httpClient)
}

// DialContext is Dial with cancellation of the payload download.
func DialContext(ctx context.Context, baseURL string, httpClient *http.Client) (*Client, error) {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: baseURL, hc: httpClient}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/payload", nil)
	if err != nil {
		return nil, fmt.Errorf("server: fetch payload: %w", err)
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("server: fetch payload: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var p Payload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return nil, fmt.Errorf("server: decode payload: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c.payload = &p
	c.index()
	return c, nil
}

func (c *Client) index() {
	c.parent = make(map[*PayloadNode]*PayloadNode)
	c.leafOf = make(map[int]*PayloadNode)
	var walk func(n *PayloadNode)
	walk = func(n *PayloadNode) {
		if len(n.Children) == 0 {
			for _, id := range n.Reps {
				c.leafOf[id] = n
			}
			return
		}
		for _, ch := range n.Children {
			c.parent[ch] = n
			walk(ch)
		}
	}
	walk(c.payload.Root)
}

// Images returns the size of the served database.
func (c *Client) Images() int { return c.payload.Images }

// RepCount returns the number of representatives in the local payload.
func (c *Client) RepCount() int { return c.payload.RepCount() }

// Label returns a representative's display label.
func (c *Client) Label(id int) string { return c.payload.Labels[id] }

// childContaining returns the child of n whose subtree holds the
// representative, using the leaf index (every representative appears in its
// leaf's list, so walking up from the leaf finds the branch).
func (c *Client) childContaining(n *PayloadNode, id int) *PayloadNode {
	leaf, ok := c.leafOf[id]
	if !ok {
		return nil
	}
	for cur := leaf; cur != nil; cur = c.parent[cur] {
		if c.parent[cur] == n {
			return cur
		}
	}
	return nil
}

// ClientSession is a feedback session executed entirely on the client; it
// mirrors the core.Session protocol over the representative payload.
type ClientSession struct {
	c   *Client
	rng *rand.Rand

	frontier  []*PayloadNode
	assign    map[int]*PayloadNode
	relevant  []int
	relSet    map[int]bool
	displayed map[int]*PayloadNode
	cursors   map[*PayloadNode]*clientCursor
	display   int
	finalized bool
}

type clientCursor struct {
	order []int
	pos   int
}

// NewSession starts a local feedback session. displayCount is the images per
// display (21 in the prototype; 0 uses that default).
func (c *Client) NewSession(seed int64, displayCount int) *ClientSession {
	if displayCount <= 0 {
		displayCount = 21
	}
	return &ClientSession{
		c:         c,
		rng:       rand.New(rand.NewSource(seed)),
		frontier:  []*PayloadNode{c.payload.Root},
		assign:    make(map[int]*PayloadNode),
		relSet:    make(map[int]bool),
		displayed: make(map[int]*PayloadNode),
		cursors:   make(map[*PayloadNode]*clientCursor),
		display:   displayCount,
	}
}

// Candidates returns the next display of representatives — computed locally,
// no server round trip.
func (s *ClientSession) Candidates() []CandidateJSON {
	total := 0
	for _, n := range s.frontier {
		total += len(n.Reps)
	}
	if total == 0 {
		return nil
	}
	var out []CandidateJSON
	if total <= s.display {
		for _, n := range s.frontier {
			for _, id := range n.Reps {
				out = append(out, CandidateJSON{ID: id, Label: s.c.Label(id)})
				s.displayed[id] = n
			}
		}
		return out
	}
	remaining := s.display
	for i, n := range s.frontier {
		share := s.display * len(n.Reps) / total
		if share < 1 {
			share = 1
		}
		if i == len(s.frontier)-1 {
			share = remaining
		}
		if share > len(n.Reps) {
			share = len(n.Reps)
		}
		if share > remaining {
			share = remaining
		}
		for _, id := range s.take(n, share) {
			out = append(out, CandidateJSON{ID: id, Label: s.c.Label(id)})
			s.displayed[id] = n
		}
		remaining -= share
		if remaining <= 0 {
			break
		}
	}
	return out
}

// take pages through a node's representatives without repetition, like the
// server-side session's display cursor.
func (s *ClientSession) take(n *PayloadNode, count int) []int {
	cur, ok := s.cursors[n]
	if !ok {
		cur = &clientCursor{order: append([]int(nil), n.Reps...)}
		s.rng.Shuffle(len(cur.order), func(i, j int) { cur.order[i], cur.order[j] = cur.order[j], cur.order[i] })
		s.cursors[n] = cur
	}
	out := make([]int, 0, count)
	for len(out) < count {
		if cur.pos >= len(cur.order) {
			s.rng.Shuffle(len(cur.order), func(i, j int) { cur.order[i], cur.order[j] = cur.order[j], cur.order[i] })
			cur.pos = 0
		}
		out = append(out, cur.order[cur.pos])
		cur.pos++
		if len(out) >= len(cur.order) {
			break
		}
	}
	return out
}

// Feedback processes one round of marks locally: new marks join the query
// panel at the child of the displaying cluster; the whole panel then descends
// one level toward its leaves, mirroring core.Session.
func (s *ClientSession) Feedback(marked []int) error {
	if s.finalized {
		return fmt.Errorf("server: session finalized")
	}
	for _, id := range marked {
		node, ok := s.displayed[id]
		if !ok {
			return fmt.Errorf("server: image %d was not displayed", id)
		}
		if !s.relSet[id] {
			s.relSet[id] = true
			s.relevant = append(s.relevant, id)
		}
		child := s.childContainingOrSelf(node, id)
		if cur, ok := s.assign[id]; !ok || s.depth(child) > s.depth(cur) {
			s.assign[id] = child
		}
	}
	for _, id := range s.relevant {
		n := s.assign[id]
		if n == nil || len(n.Children) == 0 {
			continue
		}
		if child := s.c.childContaining(n, id); child != nil {
			s.assign[id] = child
		}
	}
	s.rebuildFrontier()
	return nil
}

func (s *ClientSession) childContainingOrSelf(n *PayloadNode, id int) *PayloadNode {
	if len(n.Children) == 0 {
		return n
	}
	if child := s.c.childContaining(n, id); child != nil {
		return child
	}
	return n
}

func (s *ClientSession) depth(n *PayloadNode) int {
	d := 0
	for cur := n; cur != nil; cur = s.c.parent[cur] {
		d++
	}
	return d
}

func (s *ClientSession) rebuildFrontier() {
	if len(s.assign) == 0 {
		s.frontier = []*PayloadNode{s.c.payload.Root}
		return
	}
	seen := make(map[*PayloadNode]bool)
	s.frontier = s.frontier[:0]
	for _, id := range s.relevant {
		if n := s.assign[id]; n != nil && !seen[n] {
			seen[n] = true
			s.frontier = append(s.frontier, n)
		}
	}
}

// Relevant returns the query panel.
func (s *ClientSession) Relevant() []int { return s.relevant }

// Subqueries returns the current decomposition width.
func (s *ClientSession) Subqueries() int { return len(s.frontier) }

// Finalize submits the final query images to the server — the session's only
// server round trip — and returns the merged localized k-NN results.
func (s *ClientSession) Finalize(k int) (*QueryResponse, error) {
	return s.FinalizeContext(context.Background(), k)
}

// FinalizeContext is Finalize with cancellation: the context covers the whole
// round trip, so a slow server-side query can be abandoned. The session still
// counts as finalized.
func (s *ClientSession) FinalizeContext(ctx context.Context, k int) (*QueryResponse, error) {
	if s.finalized {
		return nil, fmt.Errorf("server: session finalized")
	}
	s.finalized = true
	if len(s.relevant) == 0 {
		return nil, fmt.Errorf("server: no relevant feedback given")
	}
	body, err := json.Marshal(QueryRequest{Relevant: s.relevant, K: k})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.c.base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("server: query: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("server: query: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("server: decode result: %w", err)
	}
	return &out, nil
}

// decodeError converts a non-200 response into an error.
func decodeError(resp *http.Response) error {
	var e errorResponse
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
}
