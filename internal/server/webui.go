package server

import (
	"fmt"
	"image/png"
	"net/http"
	"strconv"
	"strings"

	"qdcbir/internal/img"
)

// This file realises the paper's last future-work item (§6: "Also conceivable
// is the development of an image search engine for the Web based upon the QD
// idea"): a browser front end over the JSON API. The server renders the
// corpus images as PNGs; the page drives a hosted feedback session — browse
// representative images, click the relevant ones, watch the query decompose,
// and finalize into grouped results.

// SetImages provides the rendered corpus rasters; without them the web UI
// falls back to label-only tiles. (Corpora built with KeepImages have them.)
func (s *Server) SetImages(images []*img.Image) { s.images = images }

// handleImage serves /v1/image/{id}.png.
func (s *Server) handleImage(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/image/")
	rest = strings.TrimSuffix(rest, ".png")
	id, err := strconv.Atoi(rest)
	if err != nil || id < 0 || id >= len(s.images) || s.images[id] == nil {
		writeError(w, http.StatusNotFound, "no image %q", rest)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	w.Header().Set("Cache-Control", "public, max-age=3600")
	if err := png.Encode(w, s.images[id].ToNRGBA()); err != nil {
		// Headers are gone; nothing more to do than log-by-status.
		return
	}
}

// handleUI serves the single-page front end.
func (s *Server) handleUI(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, uiPage)
}

// uiPage is the embedded front end: plain JS over the JSON API.
const uiPage = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>qdcbir — query decomposition image search</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 1.5rem; background: #fafafa; color: #222; }
  h1 { font-size: 1.2rem; }
  .bar { margin: .8rem 0; display: flex; gap: .6rem; align-items: center; flex-wrap: wrap; }
  button { padding: .45rem .9rem; border: 1px solid #888; border-radius: 6px; background: #fff; cursor: pointer; }
  button:hover { background: #eef; }
  #status { color: #555; font-size: .9rem; }
  .grid { display: flex; flex-wrap: wrap; gap: .5rem; }
  .tile { border: 3px solid transparent; border-radius: 8px; padding: 2px; text-align: center;
          cursor: pointer; background: #fff; box-shadow: 0 1px 3px rgba(0,0,0,.15); width: 104px; }
  .tile img { width: 96px; height: 96px; image-rendering: pixelated; border-radius: 4px; }
  .tile.marked { border-color: #2a7; }
  .tile .lbl { font-size: .65rem; color: #666; overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
  .group { margin: 1rem 0; padding: .6rem; background: #fff; border-radius: 8px; }
  .group h3 { margin: .2rem 0 .6rem; font-size: .95rem; color: #444; }
</style>
</head>
<body>
<h1>qdcbir — relevance feedback by query decomposition</h1>
<div class="bar">
  <button id="newBtn">New session</button>
  <button id="moreBtn" disabled>More candidates (Random)</button>
  <button id="fbBtn" disabled>Submit feedback</button>
  <button id="doneBtn" disabled>Finalize</button>
  <span id="status">no session</span>
</div>
<div id="cands" class="grid"></div>
<div id="results"></div>
<script>
let sid = null, marked = new Set(), shown = new Map();

async function api(path, opts) {
  const r = await fetch(path, opts);
  const body = await r.json();
  if (!r.ok) throw new Error(body.error || r.status);
  return body;
}
function tile(c, clickable) {
  const d = document.createElement('div');
  d.className = 'tile';
  d.innerHTML = '<img src="/v1/image/' + c.id + '.png" onerror="this.style.display=\'none\'">' +
                '<div class="lbl">' + (c.label || ('#' + c.id)) + '</div>';
  if (clickable) d.onclick = () => {
    if (marked.has(c.id)) { marked.delete(c.id); d.classList.remove('marked'); }
    else { marked.add(c.id); d.classList.add('marked'); }
  };
  return d;
}
async function newSession() {
  const s = await api('/v1/sessions', {method: 'POST', body: '{}'});
  sid = s.session_id; marked.clear(); shown.clear();
  document.getElementById('results').innerHTML = '';
  document.getElementById('cands').innerHTML = '';
  for (const b of ['moreBtn','fbBtn','doneBtn']) document.getElementById(b).disabled = false;
  setStatus('session ' + sid + ' — browse and click relevant images');
  await more();
}
async function more() {
  const c = await api('/v1/sessions/' + sid + '/candidates');
  const grid = document.getElementById('cands');
  for (const cand of c.candidates) {
    if (shown.has(cand.id)) continue;
    shown.set(cand.id, cand);
    grid.appendChild(tile(cand, true));
  }
}
async function feedback() {
  const rel = [...marked];
  const fb = await api('/v1/sessions/' + sid + '/feedback',
    {method: 'POST', body: JSON.stringify({relevant: rel})});
  setStatus('round committed: ' + fb.relevant + ' relevant, query decomposed into ' +
            fb.subqueries + ' subqueries');
  document.getElementById('cands').innerHTML = '';
  shown.clear();
  await more();
}
async function finalize() {
  const res = await api('/v1/sessions/' + sid + '/finalize',
    {method: 'POST', body: JSON.stringify({k: 24})});
  const out = document.getElementById('results');
  out.innerHTML = '<h2>Results — one group per discovered neighborhood</h2>';
  res.groups.forEach((g, i) => {
    const div = document.createElement('div');
    div.className = 'group';
    div.innerHTML = '<h3>group ' + (i+1) + ' — rank score ' + g.rank_score.toFixed(3) +
                    (g.expanded ? ' (search expanded)' : '') + '</h3>';
    const grid = document.createElement('div');
    grid.className = 'grid';
    for (const im of g.images) grid.appendChild(tile(im, false));
    div.appendChild(grid);
    out.appendChild(div);
  });
  setStatus('finalized: ' + res.groups.length + ' groups, ' +
            res.stats.final_reads + ' node reads for the localized k-NN');
  for (const b of ['moreBtn','fbBtn','doneBtn']) document.getElementById(b).disabled = true;
  sid = null;
}
function setStatus(t) { document.getElementById('status').textContent = t; }
function guard(f) { return () => f().catch(e => setStatus('error: ' + e.message)); }
document.getElementById('newBtn').onclick = guard(newSession);
document.getElementById('moreBtn').onclick = guard(more);
document.getElementById('fbBtn').onclick = guard(feedback);
document.getElementById('doneBtn').onclick = guard(finalize);
</script>
</body>
</html>
`
