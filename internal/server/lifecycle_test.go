package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"qdcbir/internal/core"
	"qdcbir/internal/obs"
)

// newObservedServer builds a server whose engine carries its own Observer, so
// engine-side counters (rounds, finalizes, page reads) flow into /v1/stats.
func newObservedServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	eng, corpus := testSystem(t)
	cfg := eng.Config()
	cfg.Observer = obs.New(nil)
	srv := New(core.NewEngine(eng.RFS(), cfg), corpus.SubconceptOf)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func createSession(t *testing.T, base string, seed int64) string {
	t.Helper()
	var sr SessionResponse
	resp := postJSON(t, base+"/v1/sessions", map[string]int64{"seed": seed}, &sr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create session: status %d", resp.StatusCode)
	}
	return sr.SessionID
}

func getCandidates(t *testing.T, base, id string) ([]int, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + id + "/candidates")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out struct {
		Candidates []CandidateJSON `json:"candidates"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	ids := make([]int, len(out.Candidates))
	for i, c := range out.Candidates {
		ids[i] = c.ID
	}
	return ids, resp.StatusCode
}

func getStats(t *testing.T, base string) StatsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats: status %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestEvictionUnderCapPressure verifies the cap holds, surplus sessions are
// evicted, evicted handles answer 404, and the eviction counter advances.
func TestEvictionUnderCapPressure(t *testing.T) {
	srv, ts := newObservedServer(t)
	srv.SetMaxSessions(3)
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, createSession(t, ts.URL, int64(i+1)))
	}
	if n := srv.SessionCount(); n != 3 {
		t.Fatalf("session count = %d, want cap 3", n)
	}
	// The two oldest (never touched since creation) were evicted.
	for _, id := range ids[:2] {
		if _, status := getCandidates(t, ts.URL, id); status != http.StatusNotFound {
			t.Errorf("evicted session %s answered %d, want 404", id, status)
		}
	}
	for _, id := range ids[2:] {
		if _, status := getCandidates(t, ts.URL, id); status != http.StatusOK {
			t.Errorf("live session %s answered %d, want 200", id, status)
		}
	}
	st := getStats(t, ts.URL)
	if st.SessionsEvicted != 2 {
		t.Errorf("evictions = %d, want 2", st.SessionsEvicted)
	}
	if st.Sessions != 3 {
		t.Errorf("live sessions = %d, want 3", st.Sessions)
	}
}

// TestEvictionPrefersIdleOverActive verifies the satellite fix: eviction is by
// last touch, not creation order. The oldest-created session stays alive when
// it is the most recently used.
func TestEvictionPrefersIdleOverActive(t *testing.T) {
	srv, ts := newObservedServer(t)
	srv.SetMaxSessions(2)
	a := createSession(t, ts.URL, 1)
	b := createSession(t, ts.URL, 2)
	// Touch a: it is now more recently used than the younger b.
	if _, status := getCandidates(t, ts.URL, a); status != http.StatusOK {
		t.Fatalf("touch a: status %d", status)
	}
	c := createSession(t, ts.URL, 3)
	if _, status := getCandidates(t, ts.URL, b); status != http.StatusNotFound {
		t.Fatalf("idle session b answered %d, want 404 (evicted)", status)
	}
	for name, id := range map[string]string{"a": a, "c": c} {
		if _, status := getCandidates(t, ts.URL, id); status != http.StatusOK {
			t.Fatalf("session %s answered %d, want 200", name, status)
		}
	}
}

// TestStatsAgreeWithRequests drives full sessions over HTTP and checks the
// /v1/stats counters match the work issued, and that the final page reads
// reported per response sum to the observer's disk accounting.
func TestStatsAgreeWithRequests(t *testing.T) {
	_, ts := newObservedServer(t)
	const nSessions, nRounds = 3, 2
	var wantFinalReads uint64
	for i := 0; i < nSessions; i++ {
		id := createSession(t, ts.URL, int64(100+i))
		for r := 0; r < nRounds; r++ {
			cands, status := getCandidates(t, ts.URL, id)
			if status != http.StatusOK || len(cands) == 0 {
				t.Fatalf("candidates: status %d, %d ids", status, len(cands))
			}
			n := 3
			if len(cands) < n {
				n = len(cands)
			}
			resp := postJSON(t, fmt.Sprintf("%s/v1/sessions/%s/feedback", ts.URL, id),
				FeedbackRequest{Relevant: cands[:n]}, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("feedback: status %d", resp.StatusCode)
			}
		}
		var qr QueryResponse
		resp := postJSON(t, fmt.Sprintf("%s/v1/sessions/%s/finalize", ts.URL, id),
			map[string]int{"k": 20}, &qr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("finalize: status %d", resp.StatusCode)
		}
		wantFinalReads += qr.Stats.FinalReads
	}

	st := getStats(t, ts.URL)
	if st.SessionsStarted != nSessions {
		t.Errorf("sessions started = %d, want %d", st.SessionsStarted, nSessions)
	}
	if st.FeedbackRounds != nSessions*nRounds {
		t.Errorf("feedback rounds = %d, want %d", st.FeedbackRounds, nSessions*nRounds)
	}
	if st.Finalizes != nSessions {
		t.Errorf("finalizes = %d, want %d", st.Finalizes, nSessions)
	}
	if st.Sessions != 0 {
		t.Errorf("live sessions after finalize = %d, want 0", st.Sessions)
	}
	// Acceptance check: observer page-read totals equal the disk accounting
	// the responses reported.
	if st.FinalReads != wantFinalReads {
		t.Errorf("observer final reads = %d, responses reported %d", st.FinalReads, wantFinalReads)
	}
	if st.FinalReads == 0 || st.FeedbackReads == 0 {
		t.Errorf("page-read counters empty: final=%d feedback=%d", st.FinalReads, st.FeedbackReads)
	}
	// Each session: 1 create + nRounds*(candidates+feedback) + 1 finalize,
	// plus this handler's own stats fetches.
	minReqs := uint64(nSessions * (2 + 2*nRounds))
	if st.HTTPRequests < minReqs {
		t.Errorf("http requests = %d, want >= %d", st.HTTPRequests, minReqs)
	}
	lat := st.Metrics.Histograms[obs.MetricFinalizeSeconds]
	if lat.Count != nSessions {
		t.Errorf("finalize latency histogram count = %d, want %d", lat.Count, nSessions)
	}
}

// TestMetricsEndpoint checks the Prometheus exposition is served with the
// right content type and contains the instrumented families.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newObservedServer(t)
	id := createSession(t, ts.URL, 42)
	getCandidates(t, ts.URL, id)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE " + obs.MetricSessionsStarted + " counter",
		"# TYPE " + obs.MetricSessionsHosted + " gauge",
		"# TYPE qd_http_requests_total counter",
		obs.MetricSessionsStarted + " 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTracesEndpoint checks finalized sessions surface as JSON traces.
func TestTracesEndpoint(t *testing.T) {
	_, ts := newObservedServer(t)
	id := createSession(t, ts.URL, 7)
	cands, _ := getCandidates(t, ts.URL, id)
	postJSON(t, fmt.Sprintf("%s/v1/sessions/%s/feedback", ts.URL, id),
		FeedbackRequest{Relevant: cands[:2]}, nil)
	var qr QueryResponse
	postJSON(t, fmt.Sprintf("%s/v1/sessions/%s/finalize", ts.URL, id),
		map[string]int{"k": 10}, &qr)

	resp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Traces []*obs.Trace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(out.Traces))
	}
	tr := out.Traces[0]
	if tr.Kind != "session" || len(tr.Rounds) != 1 || tr.Finalize == nil {
		t.Fatalf("trace shape wrong: %+v", tr)
	}
	if tr.Finalize.PageReads != qr.Stats.FinalReads {
		t.Errorf("trace reads %d != response reads %d", tr.Finalize.PageReads, qr.Stats.FinalReads)
	}
}
