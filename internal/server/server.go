// Package server implements the paper's client/server configuration (§4):
//
//	"our software can be configured such that the RFS structure and relevance
//	feedback mechanisms may run in the user computer. In this client-server
//	configuration, the user would first identify the final query images on
//	the client machine and only then submit them to the server to initiate
//	the localized k-NN computations and final image retrieval."
//
// The Server exposes the retrieval system over HTTP/JSON in both modes:
//
//   - Thin-client mode: the server hosts feedback sessions
//     (POST /v1/sessions, .../candidates, .../feedback, .../finalize).
//   - Client-side mode: GET /v1/payload ships the representative structure —
//     the only information relevance feedback needs, a small fraction of the
//     database — and the Client type in this package runs the whole feedback
//     loop locally, touching the server once per query (POST /v1/query).
//
// All structures are read-only after construction, so any number of sessions
// may run concurrently; per-session state is independently locked.
package server

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qdcbir/internal/core"
	"qdcbir/internal/img"
	"qdcbir/internal/obs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/seg"
	"qdcbir/internal/shard"
	"qdcbir/internal/vec"
)

// Labeler maps an image ID to a human-meaningful label (ground-truth
// subconcepts in the synthetic corpus; thumbnails in a real deployment).
type Labeler func(id int) string

// DefaultMaxSessions bounds concurrent hosted sessions; the oldest idle
// session is evicted when the cap is hit, so abandoned thin clients cannot
// exhaust server memory.
const DefaultMaxSessions = 1024

// Server serves one built retrieval system.
type Server struct {
	engine      *core.Engine
	label       Labeler
	maxSessions int

	// obs is never nil: the server adopts the engine's Observer when one is
	// configured (so engine and HTTP telemetry land in one registry) and
	// otherwise creates a standalone one, keeping /metrics and /v1/stats
	// functional — they then report HTTP/session counters only.
	obs      *obs.Observer
	httpReqs *obs.Counter
	httpErrs *obs.Counter

	// slow retains the slowest requests as exemplars (GET /v1/slow); the
	// request id joins an entry to its log lines and retained trace.
	slow *obs.SlowLog

	// log receives one structured line per request, keyed by request id (nil
	// disables request logging; telemetry counters still run).
	log *slog.Logger
	// reqSeq numbers requests that arrive without an X-Request-Id header.
	reqSeq atomic.Uint64

	mu       sync.Mutex
	sessions map[string]*hostedSession
	// lru orders hosted sessions by last touch (front = least recently used;
	// values are session ids). Every session operation moves its entry to the
	// back, so cap-pressure eviction removes the longest-idle session rather
	// than the oldest-created one.
	lru    *list.List
	nextID uint64

	payload    *Payload
	payloadErr error
	payloadGen sync.Once

	images []*img.Image // optional rasters for the web UI (see webui.go)

	// shard, when set, switches the server into shard-replica mode (see
	// SetShard in shard.go); hosted sessions then run over the full-corpus
	// topology and the scatter-gather endpoints come alive.
	shard        *shard.Replica
	displayCount int // shard/dynamic session display budget

	// dyn, when set, switches the server into dynamic mode (see NewDynamic in
	// dynamic.go): engine is nil, queries pin engine snapshots, and the
	// /v1/images write endpoints come alive.
	dyn DynamicStore

	// queryTimeout, when positive, bounds every request's context; clients may
	// tighten (never widen) it per request with the X-Qd-Deadline-Ms header.
	queryTimeout time.Duration

	// sched, when set, applies admission control to the search endpoints and
	// coalesces concurrent shard-search legs (see SetScheduler in sched.go).
	sched *scheduler

	// Archive provenance, surfaced in /v1/buildinfo so operators (and the
	// router's fleet verification) can see what is actually loaded.
	archiveVersion   int
	archivePrecision string
	archiveQuantized bool
}

// hostedSession is one thin-client feedback session. Exactly one of sess
// (single-node mode), ssess (shard-replica mode), and dsess (dynamic mode,
// pinning one engine snapshot for its lifetime) is non-nil.
type hostedSession struct {
	mu    sync.Mutex
	sess  *core.Session
	ssess *shard.Session
	dsess *seg.Session
	seed  int64 // display RNG seed, reported by /export for reproducibility

	el *list.Element // position in Server.lru; guarded by Server.mu
}

// New creates a server over the engine. label may be nil (empty labels).
func New(engine *core.Engine, label Labeler) *Server {
	if label == nil {
		label = func(int) string { return "" }
	}
	o := engine.Config().Observer
	if o == nil {
		o = obs.New(obs.NewRegistry())
	}
	return &Server{
		engine:      engine,
		label:       label,
		maxSessions: DefaultMaxSessions,
		obs:         o,
		httpReqs:    o.Registry().Counter("qd_http_requests_total", "HTTP requests served."),
		httpErrs:    o.Registry().Counter("qd_http_errors_total", "HTTP responses with status >= 400."),
		slow:        obs.NewSlowLog(0),
		sessions:    make(map[string]*hostedSession),
		lru:         list.New(),
	}
}

// Observer returns the server's telemetry sink (never nil).
func (s *Server) Observer() *obs.Observer { return s.obs }

// SetLogger installs a structured request logger. Every request then emits
// one line carrying the correlation id also returned in the X-Request-Id
// response header (and attached to any trace the request opens). A nil logger
// (the default) disables request logging.
func (s *Server) SetLogger(l *slog.Logger) { s.log = l }

// SetMaxSessions overrides the hosted-session cap (values < 1 keep the
// default). Call before serving traffic.
func (s *Server) SetMaxSessions(n int) {
	if n >= 1 {
		s.maxSessions = n
	}
}

// ---- JSON wire types ----

// InfoResponse describes the served database.
type InfoResponse struct {
	Images          int `json:"images"`
	TreeHeight      int `json:"tree_height"`
	Representatives int `json:"representatives"`
}

// CandidateJSON is one displayable representative.
type CandidateJSON struct {
	ID    int    `json:"id"`
	Label string `json:"label,omitempty"`
}

// SessionResponse returns a new session handle.
type SessionResponse struct {
	SessionID string `json:"session_id"`
}

// FeedbackRequest marks images relevant (or retracts them).
type FeedbackRequest struct {
	Relevant []int `json:"relevant"`
}

// FeedbackResponse reports the decomposition state.
type FeedbackResponse struct {
	Subqueries int `json:"subqueries"`
	Relevant   int `json:"relevant"`
}

// QueryRequest is the client-side mode's single server call: the final query
// images identified during local feedback.
type QueryRequest struct {
	Relevant []int     `json:"relevant"`
	K        int       `json:"k"`
	Weights  []float64 `json:"weights,omitempty"`
}

// ScoredJSON is one result image.
type ScoredJSON struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
	Label string  `json:"label,omitempty"`
}

// GroupJSON is one localized subquery's results.
type GroupJSON struct {
	QueryImages []int        `json:"query_images"`
	Images      []ScoredJSON `json:"images"`
	RankScore   float64      `json:"rank_score"`
	Expanded    bool         `json:"expanded"`
}

// QueryResponse is a finalized retrieval.
type QueryResponse struct {
	Groups []GroupJSON `json:"groups"`
	Stats  StatsJSON   `json:"stats"`
}

// StatsJSON reports simulated I/O cost.
type StatsJSON struct {
	FeedbackReads uint64 `json:"feedback_reads"`
	FinalReads    uint64 `json:"final_reads"`
	Expansions    int    `json:"expansions"`
}

// errorResponse is the uniform error body. Code, when present, is a stable
// machine-readable discriminator (see the ErrCode* constants) so callers —
// the router above all — can tell an overloaded-but-healthy replica from a
// broken request without parsing prose.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Stable error codes carried in errorResponse.Code.
const (
	// ErrCodeDeadline marks a server-side context-deadline expiry: the work
	// was sound but the time budget ran out. The response carries Retry-After,
	// and a router should treat the replica as overloaded, not crashed.
	ErrCodeDeadline = "deadline_exceeded"
	// ErrCodeCancelled marks a client disconnect or server drain.
	ErrCodeCancelled = "cancelled"
	// ErrCodeShardFinalize rejects local finalize of a shard-hosted session.
	ErrCodeShardFinalize = "shard_finalize"
)

// StatsResponse is the /v1/stats snapshot: the live session count, headline
// counters pulled out for convenience, and the full metrics snapshot
// (including latency histograms) for programmatic consumers.
type StatsResponse struct {
	Sessions        int          `json:"sessions"`
	SessionsStarted uint64       `json:"sessions_started"`
	SessionsEvicted uint64       `json:"sessions_evicted"`
	FeedbackRounds  uint64       `json:"feedback_rounds"`
	Finalizes       uint64       `json:"finalizes"`
	KNNQueries      uint64       `json:"knn_queries"`
	FeedbackReads   uint64       `json:"feedback_page_reads"`
	FinalReads      uint64       `json:"final_page_reads"`
	Expansions      uint64       `json:"boundary_expansions"`
	HTTPRequests    uint64       `json:"http_requests"`
	HTTPErrors      uint64       `json:"http_errors"`
	Metrics         obs.Snapshot `json:"metrics"`
}

// ---- handler ----

// Handler returns the HTTP handler serving the v1 API plus the observability
// endpoints (/metrics in Prometheus text format; /v1/stats, /v1/traces,
// /v1/latency, and /v1/buildinfo as JSON; /healthz for liveness probes).
// Every request passing through the handler is counted, tagged with a
// correlation id, timed into the per-endpoint latency digests, and labeled
// for CPU profiles.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/info", s.handleInfo)
	mux.HandleFunc("/v1/payload", s.handlePayload)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/sessions", s.handleSessions)
	mux.HandleFunc("/v1/sessions/", s.handleSessionOp)
	mux.HandleFunc("/v1/image/", s.handleImage)
	mux.HandleFunc("/v1/images", s.handleImages)
	mux.HandleFunc("/v1/images/", s.handleImageOp)
	mux.HandleFunc("/v1/compact", s.handleCompact)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/traces", s.handleTraces)
	mux.HandleFunc("/v1/latency", s.handleLatency)
	mux.HandleFunc("/v1/slow", s.handleSlow)
	mux.HandleFunc("/v1/buildinfo", s.handleBuildInfo)
	mux.HandleFunc("/v1/shard/meta", s.handleShardMeta)
	mux.HandleFunc("/v1/shard/topology", s.handleShardTopology)
	mux.HandleFunc("/v1/shard/search", s.handleShardSearch)
	mux.HandleFunc("/v1/shard/points", s.handleShardPoints)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/ui", s.handleUI)
	return s.instrument(mux)
}

// SetQueryTimeout bounds each request's context (<= 0 disables the bound).
// Clients can tighten it further per request via X-Qd-Deadline-Ms. When the
// budget expires mid-query the response is the structured 503 described at
// writeQueryError.
func (s *Server) SetQueryTimeout(d time.Duration) { s.queryTimeout = d }

// statusWriter captures the response status for the request counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// slowWorthy selects the endpoints the slow-query log tracks: the ones that
// do retrieval or write work. Monitoring endpoints are excluded — a scrape
// storm must not evict the exemplars operators came to see.
func slowWorthy(endpoint string) bool {
	switch endpoint {
	case "/healthz", "/metrics", "/ui",
		"/v1/slow", "/v1/stats", "/v1/latency", "/v1/traces",
		"/v1/buildinfo", "/v1/info", "/v1/shard/meta", "/v1/shard/topology",
		"/v1/fleet/latency", "/v1/fleet/stats":
		return false
	}
	return true
}

// endpointOf collapses a request path to its route template so per-endpoint
// telemetry (latency digests, pprof labels) does not fan out per session or
// image id.
func endpointOf(path string) string {
	switch {
	case strings.HasPrefix(path, "/v1/sessions/"):
		rest := strings.TrimPrefix(path, "/v1/sessions/")
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			return "/v1/sessions/{id}/" + rest[i+1:]
		}
		return "/v1/sessions/{id}"
	case strings.HasPrefix(path, "/v1/image/"):
		return "/v1/image/{id}"
	case strings.HasPrefix(path, "/v1/images/"):
		return "/v1/images/{id}"
	default:
		return path
	}
}

// instrument is the telemetry middleware: it counts every request and every
// error response, assigns (or propagates) the X-Request-Id correlation id,
// stamps it on the response and on any trace the request opens, times the
// request into the per-endpoint sliding-window digests, labels the handler
// goroutine for CPU profiles, and emits one structured log line.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.httpReqs.Inc()
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = "req-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
		}
		w.Header().Set("X-Request-Id", reqID)
		endpoint := endpointOf(r.URL.Path)
		ctx := obs.WithTraceLabel(r.Context(), reqID)
		// Per-request time budget: the configured cap, tightened (never
		// widened) by an X-Qd-Deadline-Ms header. The router propagates its
		// remaining deadline this way so a slow shard leg fails fast with the
		// structured 503 instead of holding the whole scatter hostage.
		budget := s.queryTimeout
		if raw := r.Header.Get("X-Qd-Deadline-Ms"); raw != "" {
			if ms, err := strconv.ParseInt(raw, 10, 64); err == nil && ms > 0 {
				if d := time.Duration(ms) * time.Millisecond; budget <= 0 || d < budget {
					budget = d
				}
			}
		}
		if budget > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, budget)
			defer cancel()
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		pprof.Do(ctx, pprof.Labels("endpoint", endpoint), func(ctx context.Context) {
			next.ServeHTTP(sw, r.WithContext(ctx))
		})
		elapsed := time.Since(start)
		s.obs.Windows().Observe("endpoint:"+endpoint, elapsed.Seconds())
		if sw.status >= 400 {
			s.httpErrs.Inc()
		}
		if slowWorthy(endpoint) {
			s.slow.Record(obs.SlowQuery{
				RequestID:  reqID,
				Endpoint:   endpoint,
				Status:     sw.status,
				Start:      start,
				DurationNS: elapsed.Nanoseconds(),
			})
		}
		if s.log != nil {
			s.log.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("request_id", reqID),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Duration("elapsed", elapsed),
			)
		}
	})
}

// handleMetrics serves the Prometheus text exposition of every registered
// metric.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.Registry().WritePrometheus(w)
}

// handleStats serves the JSON runtime-stats snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap := s.obs.Registry().Snapshot()
	writeJSON(w, http.StatusOK, StatsResponse{
		Sessions:        s.SessionCount(),
		SessionsStarted: snap.Counters[obs.MetricSessionsStarted],
		SessionsEvicted: snap.Counters[obs.MetricSessionsEvicted],
		FeedbackRounds:  snap.Counters[obs.MetricFeedbackRounds],
		Finalizes:       snap.Counters[obs.MetricFinalizes],
		KNNQueries:      snap.Counters[obs.MetricKNNs],
		FeedbackReads:   snap.Counters[obs.MetricFeedbackReads],
		FinalReads:      snap.Counters[obs.MetricFinalReads],
		Expansions:      snap.Counters[obs.MetricExpansions],
		HTTPRequests:    snap.Counters["qd_http_requests_total"],
		HTTPErrors:      snap.Counters["qd_http_errors_total"],
		Metrics:         snap,
	})
}

// DefaultTraceLimit is how many retained traces /v1/traces returns when the
// request does not set ?limit=N (limit=0 requests the whole ring).
const DefaultTraceLimit = 32

// handleTraces serves the retained per-query trace spans, newest first.
// Query parameters: ?limit=N caps the count (default DefaultTraceLimit,
// 0 = all), ?kind= filters by trace kind ("session" or "query"), and
// ?format=perfetto renders Chrome/Perfetto trace-event JSON instead of the
// native span form — load it at https://ui.perfetto.dev.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	limit := DefaultTraceLimit
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", raw)
			return
		}
		limit = n
	}
	kind := q.Get("kind")
	traces := s.obs.TracesFiltered(kind, limit)
	if traces == nil {
		traces = []*obs.Trace{}
	}
	switch format := q.Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, struct {
			Traces []*obs.Trace `json:"traces"`
		}{traces})
	case "perfetto":
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WritePerfetto(w, traces)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q", format)
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func writeErrorCode(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

// writeQueryError distinguishes the three ways a query fails:
//
//   - Deadline expiry (the server ran out of time budget mid-search): 503
//     with Retry-After and code "deadline_exceeded" — the server is
//     overloaded, not broken, and the same request may succeed shortly.
//   - Cancellation (the client went away or the server is draining): 503
//     with code "cancelled", no Retry-After.
//   - Admission-control shed (the wait queue is full): 503 with Retry-After
//     and code "overloaded" — nothing was searched; retry elsewhere or later.
//   - Anything else is a bad query: 400.
func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeErrorCode(w, http.StatusServiceUnavailable, ErrCodeOverloaded, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", "1")
		writeErrorCode(w, http.StatusServiceUnavailable, ErrCodeDeadline, "query deadline exceeded: %v", err)
	case errors.Is(err, context.Canceled):
		writeErrorCode(w, http.StatusServiceUnavailable, ErrCodeCancelled, "query cancelled: %v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.dyn != nil {
		writeJSON(w, http.StatusOK, InfoResponse{Images: s.dyn.Stats().Live})
		return
	}
	writeJSON(w, http.StatusOK, InfoResponse{
		Images:          s.engine.RFS().Len(),
		TreeHeight:      s.engine.RFS().Tree().Height(),
		Representatives: s.engine.RFS().RepCount(),
	})
}

func (s *Server) handlePayload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.dyn != nil {
		// The payload is a one-shot export of a frozen structure; a dynamic
		// corpus changes under it. Smart clients of a dynamic server use
		// hosted sessions instead.
		writeError(w, http.StatusNotImplemented, "payload not available for a dynamic corpus: use hosted sessions")
		return
	}
	s.payloadGen.Do(func() { s.payload, s.payloadErr = BuildPayload(s.engine, s.label) })
	if s.payloadErr != nil {
		writeError(w, http.StatusInternalServerError, "payload: %v", s.payloadErr)
		return
	}
	writeJSON(w, http.StatusOK, s.payload)
}

// handleQuery is the client-side mode's single server interaction.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	release, err := s.sched.admit(r.Context(), "/v1/query")
	if err != nil {
		writeQueryError(w, err)
		return
	}
	defer release()
	if s.dyn != nil {
		res, err := s.dynQuery(r.Context(), req)
		if err != nil {
			writeQueryError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	ids := make([]rstar.ItemID, len(req.Relevant))
	for i, id := range req.Relevant {
		ids[i] = rstar.ItemID(id)
	}
	var weights vec.Vector
	if req.Weights != nil {
		weights = vec.Vector(req.Weights)
	}
	// The request context cancels the localized subqueries when the client
	// disconnects or the server drains during graceful shutdown.
	res, stats, err := s.engine.QueryByExamplesCtx(r.Context(), ids, req.K, weights, nil)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.toQueryResponse(res, core.Stats{
		FinalReads: stats.FinalReads,
		Expansions: stats.Expansions,
	}))
}

func (s *Server) toQueryResponse(res *core.Result, stats core.Stats) QueryResponse {
	out := QueryResponse{Stats: StatsJSON{
		FeedbackReads: stats.FeedbackReads,
		FinalReads:    stats.FinalReads,
		Expansions:    stats.Expansions,
	}}
	for _, g := range res.Groups {
		gj := GroupJSON{RankScore: g.RankScore, Expanded: g.SearchNode != g.Node}
		for _, id := range g.QueryIDs {
			gj.QueryImages = append(gj.QueryImages, int(id))
		}
		for _, im := range g.Images {
			gj.Images = append(gj.Images, ScoredJSON{
				ID:    int(im.ID),
				Score: im.Score,
				Label: s.label(int(im.ID)),
			})
		}
		out.Groups = append(out.Groups, gj)
	}
	return out
}

// handleSessions creates thin-client sessions.
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req struct {
		Seed int64 `json:"seed"`
	}
	if r.ContentLength > 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
	}
	id, err := s.addSession(req.Seed, nil)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, SessionResponse{SessionID: id})
}

// addSession registers a hosted session — fresh when st is nil, restored
// from an exported state otherwise — and returns its handle. seed == 0 picks
// a server-derived default.
func (s *Server) addSession(seed int64, st *core.SessionState) (string, error) {
	s.mu.Lock()
	s.nextID++
	id := strconv.FormatUint(s.nextID, 10)
	if seed == 0 {
		seed = int64(s.nextID) * 7919
	}
	// Evict the longest-idle sessions past the cap so abandoned clients
	// cannot exhaust memory. Evicted dynamic sessions must drop their
	// snapshot pins, else abandoned clients would pin old epochs forever.
	var evicted []*hostedSession
	for len(s.sessions) >= s.maxSessions && s.lru.Len() > 0 {
		front := s.lru.Front()
		s.lru.Remove(front)
		eid := front.Value.(string)
		evicted = append(evicted, s.sessions[eid])
		delete(s.sessions, eid)
		s.obs.SessionEvicted()
	}
	s.mu.Unlock()
	for _, ev := range evicted {
		if ev != nil && ev.dsess != nil {
			ev.dsess.Release()
		}
	}

	hs := &hostedSession{seed: seed}
	rng := rand.New(rand.NewSource(seed))
	var err error
	if s.dyn != nil {
		if st != nil {
			// The snapshot pin itself is not serializable; the restore re-pins
			// this server's current snapshot and carries over the panel,
			// weights, and round count — all Finalize needs.
			hs.dsess, err = s.dyn.RestoreSession(&seg.SessionState{
				Relevant: st.Relevant,
				Weights:  st.Weights,
				Rounds:   st.Rounds,
			}, seed)
		} else {
			hs.dsess = s.dyn.NewSession(seed)
		}
	} else if s.shard != nil {
		dc := s.displayCount
		if dc <= 0 {
			dc = 20
		}
		if st != nil {
			hs.ssess, err = shard.RestoreSession(s.shard.Topo(), st, rng, dc)
		} else {
			hs.ssess = shard.NewSession(s.shard.Topo(), rng, dc)
		}
	} else {
		if st != nil {
			hs.sess, err = s.engine.RestoreSession(st, rng)
		} else {
			hs.sess = s.engine.NewSession(rng)
		}
		if hs.sess != nil {
			// Correlate the session's trace with its API handle so /v1/traces
			// output can be joined against client logs.
			hs.sess.Trace().SetLabel("session-" + id)
		}
	}
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	hs.el = s.lru.PushBack(id)
	s.sessions[id] = hs
	s.mu.Unlock()
	s.obs.SessionHosted()
	return id, nil
}

// SessionExport is the /v1/sessions/{id}/export body: the wire-serializable
// session state plus the seed that drove its displays. POSTing it to any
// replica's /v1/sessions/import resumes the session there.
type SessionExport struct {
	SessionID string             `json:"session_id,omitempty"`
	Seed      int64              `json:"seed"`
	State     *core.SessionState `json:"state"`
}

// handleSessionImport restores an exported session on this replica.
func (s *Server) handleSessionImport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req SessionExport
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	if req.State == nil {
		writeError(w, http.StatusBadRequest, "missing state")
		return
	}
	id, err := s.addSession(req.Seed, req.State)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, SessionResponse{SessionID: id})
}

// release drops a hosted session (client delete or finalize). A dynamic
// session's snapshot pin is released here, so compaction can reclaim the
// segments it was reading.
func (s *Server) release(id string) {
	s.mu.Lock()
	hs, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
		s.lru.Remove(hs.el)
	}
	s.mu.Unlock()
	if ok {
		if hs.dsess != nil {
			hs.dsess.Release()
		}
		s.obs.SessionReleased()
	}
}

// handleSessionOp dispatches /v1/sessions/{id}/{op}.
func (s *Server) handleSessionOp(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	if rest == "import" {
		s.handleSessionImport(w, r)
		return
	}
	parts := strings.SplitN(rest, "/", 2)
	if len(parts) == 0 || parts[0] == "" {
		writeError(w, http.StatusNotFound, "missing session id")
		return
	}
	id := parts[0]
	s.mu.Lock()
	hs := s.sessions[id]
	if hs != nil {
		// Touch: every operation marks the session most recently used, so
		// cap-pressure eviction targets the longest-idle session.
		s.lru.MoveToBack(hs.el)
	}
	s.mu.Unlock()
	if hs == nil {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	op := ""
	if len(parts) == 2 {
		op = parts[1]
	}

	switch {
	case op == "" && r.Method == http.MethodDelete:
		s.release(id)
		writeJSON(w, http.StatusOK, struct{}{})

	case op == "candidates" && r.Method == http.MethodGet:
		var out []CandidateJSON
		hs.mu.Lock()
		if hs.dsess != nil {
			cands := hs.dsess.Candidates(s.displayCount)
			out = make([]CandidateJSON, len(cands))
			for i, c := range cands {
				out[i] = CandidateJSON{ID: c.ID, Label: s.label(c.ID)}
			}
		} else if hs.ssess != nil {
			ids := hs.ssess.Candidates()
			out = make([]CandidateJSON, len(ids))
			for i, cid := range ids {
				out[i] = CandidateJSON{ID: cid, Label: s.label(cid)}
			}
		} else {
			cands := hs.sess.Candidates()
			out = make([]CandidateJSON, len(cands))
			for i, c := range cands {
				out[i] = CandidateJSON{ID: int(c.ID), Label: s.label(int(c.ID))}
			}
		}
		hs.mu.Unlock()
		writeJSON(w, http.StatusOK, struct {
			Candidates []CandidateJSON `json:"candidates"`
		}{out})

	case op == "feedback" && r.Method == http.MethodPost:
		var req FeedbackRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		var err error
		var nsub, nrel int
		hs.mu.Lock()
		if hs.dsess != nil {
			err = hs.dsess.Feedback(req.Relevant)
			nsub = hs.dsess.Subqueries()
			nrel = len(hs.dsess.Relevant())
		} else if hs.ssess != nil {
			err = hs.ssess.Feedback(req.Relevant)
			nsub = hs.ssess.Subqueries()
			nrel = len(hs.ssess.Relevant())
		} else {
			marks := make([]rstar.ItemID, len(req.Relevant))
			for i, m := range req.Relevant {
				marks[i] = rstar.ItemID(m)
			}
			err = hs.sess.Feedback(marks)
			nsub = len(hs.sess.Frontier())
			nrel = len(hs.sess.Relevant())
		}
		hs.mu.Unlock()
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, FeedbackResponse{Subqueries: nsub, Relevant: nrel})

	case op == "retract" && r.Method == http.MethodPost:
		var req FeedbackRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		var nrel int
		hs.mu.Lock()
		if hs.dsess != nil {
			hs.mu.Unlock()
			writeError(w, http.StatusNotImplemented, "dynamic sessions do not support retract")
			return
		}
		if hs.ssess != nil {
			hs.ssess.Retract(req.Relevant)
			nrel = len(hs.ssess.Relevant())
		} else {
			ids := make([]rstar.ItemID, len(req.Relevant))
			for i, m := range req.Relevant {
				ids[i] = rstar.ItemID(m)
			}
			hs.sess.Retract(ids)
			nrel = len(hs.sess.Relevant())
		}
		hs.mu.Unlock()
		writeJSON(w, http.StatusOK, FeedbackResponse{Relevant: nrel})

	case op == "export" && r.Method == http.MethodGet:
		hs.mu.Lock()
		var st *core.SessionState
		if hs.dsess != nil {
			// Dynamic sessions export the snapshot-independent slice of their
			// state; import re-pins the importing server's current snapshot.
			dst := hs.dsess.ExportState()
			st = &core.SessionState{
				Version:  core.SessionStateVersion,
				Relevant: dst.Relevant,
				Weights:  dst.Weights,
				Rounds:   dst.Rounds,
			}
		} else if hs.ssess != nil {
			st = hs.ssess.ExportState()
		} else {
			st = hs.sess.ExportState()
		}
		seed := hs.seed
		hs.mu.Unlock()
		writeJSON(w, http.StatusOK, SessionExport{SessionID: id, Seed: seed, State: st})

	case op == "finalize" && r.Method == http.MethodPost:
		var req struct {
			K int `json:"k"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		if hs.ssess != nil {
			// A shard replica holds only its slice of the corpus, so the final
			// k-NN round must scatter across the fleet — the router exports
			// this session's state and runs the distributed finalize itself.
			writeErrorCode(w, http.StatusConflict, ErrCodeShardFinalize,
				"shard-hosted sessions finalize via the router (export the state and scatter)")
			return
		}
		release, err := s.sched.admit(r.Context(), "/v1/sessions/{id}/finalize")
		if err != nil {
			writeQueryError(w, err)
			return
		}
		defer release()
		if hs.dsess != nil {
			hs.mu.Lock()
			res, err := hs.dsess.FinalizeCtx(r.Context(), req.K)
			hs.mu.Unlock()
			if err != nil {
				writeQueryError(w, err)
				return
			}
			s.release(id) // finalized sessions are done (this drops the pin)
			writeJSON(w, http.StatusOK, s.toDynQueryResponse(res))
			return
		}
		hs.mu.Lock()
		res, err := hs.sess.FinalizeCtx(r.Context(), req.K)
		stats := hs.sess.Stats()
		hs.mu.Unlock()
		if err != nil {
			writeQueryError(w, err)
			return
		}
		s.release(id) // finalized sessions are done
		writeJSON(w, http.StatusOK, s.toQueryResponse(res, stats))

	default:
		writeError(w, http.StatusNotFound, "unknown operation %q", op)
	}
}

// SessionCount reports the live thin-client sessions (for monitoring/tests).
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}
