// Package server implements the paper's client/server configuration (§4):
//
//	"our software can be configured such that the RFS structure and relevance
//	feedback mechanisms may run in the user computer. In this client-server
//	configuration, the user would first identify the final query images on
//	the client machine and only then submit them to the server to initiate
//	the localized k-NN computations and final image retrieval."
//
// The Server exposes the retrieval system over HTTP/JSON in both modes:
//
//   - Thin-client mode: the server hosts feedback sessions
//     (POST /v1/sessions, .../candidates, .../feedback, .../finalize).
//   - Client-side mode: GET /v1/payload ships the representative structure —
//     the only information relevance feedback needs, a small fraction of the
//     database — and the Client type in this package runs the whole feedback
//     loop locally, touching the server once per query (POST /v1/query).
//
// All structures are read-only after construction, so any number of sessions
// may run concurrently; per-session state is independently locked.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"qdcbir/internal/core"
	"qdcbir/internal/img"
	"qdcbir/internal/rstar"
	"qdcbir/internal/vec"
)

// Labeler maps an image ID to a human-meaningful label (ground-truth
// subconcepts in the synthetic corpus; thumbnails in a real deployment).
type Labeler func(id int) string

// DefaultMaxSessions bounds concurrent hosted sessions; the oldest idle
// session is evicted when the cap is hit, so abandoned thin clients cannot
// exhaust server memory.
const DefaultMaxSessions = 1024

// Server serves one built retrieval system.
type Server struct {
	engine      *core.Engine
	label       Labeler
	maxSessions int

	mu       sync.Mutex
	sessions map[string]*hostedSession
	order    []string // creation order for eviction
	nextID   uint64

	payload    *Payload
	payloadErr error
	payloadGen sync.Once

	images []*img.Image // optional rasters for the web UI (see webui.go)
}

// hostedSession is one thin-client feedback session.
type hostedSession struct {
	mu   sync.Mutex
	sess *core.Session
}

// New creates a server over the engine. label may be nil (empty labels).
func New(engine *core.Engine, label Labeler) *Server {
	if label == nil {
		label = func(int) string { return "" }
	}
	return &Server{
		engine:      engine,
		label:       label,
		maxSessions: DefaultMaxSessions,
		sessions:    make(map[string]*hostedSession),
	}
}

// SetMaxSessions overrides the hosted-session cap (values < 1 keep the
// default). Call before serving traffic.
func (s *Server) SetMaxSessions(n int) {
	if n >= 1 {
		s.maxSessions = n
	}
}

// ---- JSON wire types ----

// InfoResponse describes the served database.
type InfoResponse struct {
	Images          int `json:"images"`
	TreeHeight      int `json:"tree_height"`
	Representatives int `json:"representatives"`
}

// CandidateJSON is one displayable representative.
type CandidateJSON struct {
	ID    int    `json:"id"`
	Label string `json:"label,omitempty"`
}

// SessionResponse returns a new session handle.
type SessionResponse struct {
	SessionID string `json:"session_id"`
}

// FeedbackRequest marks images relevant (or retracts them).
type FeedbackRequest struct {
	Relevant []int `json:"relevant"`
}

// FeedbackResponse reports the decomposition state.
type FeedbackResponse struct {
	Subqueries int `json:"subqueries"`
	Relevant   int `json:"relevant"`
}

// QueryRequest is the client-side mode's single server call: the final query
// images identified during local feedback.
type QueryRequest struct {
	Relevant []int     `json:"relevant"`
	K        int       `json:"k"`
	Weights  []float64 `json:"weights,omitempty"`
}

// ScoredJSON is one result image.
type ScoredJSON struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
	Label string  `json:"label,omitempty"`
}

// GroupJSON is one localized subquery's results.
type GroupJSON struct {
	QueryImages []int        `json:"query_images"`
	Images      []ScoredJSON `json:"images"`
	RankScore   float64      `json:"rank_score"`
	Expanded    bool         `json:"expanded"`
}

// QueryResponse is a finalized retrieval.
type QueryResponse struct {
	Groups []GroupJSON `json:"groups"`
	Stats  StatsJSON   `json:"stats"`
}

// StatsJSON reports simulated I/O cost.
type StatsJSON struct {
	FeedbackReads uint64 `json:"feedback_reads"`
	FinalReads    uint64 `json:"final_reads"`
	Expansions    int    `json:"expansions"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// ---- handler ----

// Handler returns the HTTP handler serving the v1 API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/info", s.handleInfo)
	mux.HandleFunc("/v1/payload", s.handlePayload)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/sessions", s.handleSessions)
	mux.HandleFunc("/v1/sessions/", s.handleSessionOp)
	mux.HandleFunc("/v1/image/", s.handleImage)
	mux.HandleFunc("/ui", s.handleUI)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeQueryError distinguishes a cancelled/timed-out request (the client
// went away or the server is shutting down; the k-NN machinery surfaces the
// context error) from a bad query.
func writeQueryError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusServiceUnavailable, "query cancelled: %v", err)
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, InfoResponse{
		Images:          s.engine.RFS().Len(),
		TreeHeight:      s.engine.RFS().Tree().Height(),
		Representatives: s.engine.RFS().RepCount(),
	})
}

func (s *Server) handlePayload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.payloadGen.Do(func() { s.payload, s.payloadErr = BuildPayload(s.engine, s.label) })
	if s.payloadErr != nil {
		writeError(w, http.StatusInternalServerError, "payload: %v", s.payloadErr)
		return
	}
	writeJSON(w, http.StatusOK, s.payload)
}

// handleQuery is the client-side mode's single server interaction.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	ids := make([]rstar.ItemID, len(req.Relevant))
	for i, id := range req.Relevant {
		ids[i] = rstar.ItemID(id)
	}
	var weights vec.Vector
	if req.Weights != nil {
		weights = vec.Vector(req.Weights)
	}
	// The request context cancels the localized subqueries when the client
	// disconnects or the server drains during graceful shutdown.
	res, stats, err := s.engine.QueryByExamplesCtx(r.Context(), ids, req.K, weights, nil)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.toQueryResponse(res, core.Stats{
		FinalReads: stats.FinalReads,
		Expansions: stats.Expansions,
	}))
}

func (s *Server) toQueryResponse(res *core.Result, stats core.Stats) QueryResponse {
	out := QueryResponse{Stats: StatsJSON{
		FeedbackReads: stats.FeedbackReads,
		FinalReads:    stats.FinalReads,
		Expansions:    stats.Expansions,
	}}
	for _, g := range res.Groups {
		gj := GroupJSON{RankScore: g.RankScore, Expanded: g.SearchNode != g.Node}
		for _, id := range g.QueryIDs {
			gj.QueryImages = append(gj.QueryImages, int(id))
		}
		for _, im := range g.Images {
			gj.Images = append(gj.Images, ScoredJSON{
				ID:    int(im.ID),
				Score: im.Score,
				Label: s.label(int(im.ID)),
			})
		}
		out.Groups = append(out.Groups, gj)
	}
	return out
}

// handleSessions creates thin-client sessions.
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req struct {
		Seed int64 `json:"seed"`
	}
	if r.ContentLength > 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
	}
	s.mu.Lock()
	s.nextID++
	id := strconv.FormatUint(s.nextID, 10)
	seed := req.Seed
	if seed == 0 {
		seed = int64(s.nextID) * 7919
	}
	// Evict the oldest sessions past the cap so abandoned clients cannot
	// exhaust memory.
	for len(s.sessions) >= s.maxSessions && len(s.order) > 0 {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.sessions, victim)
	}
	s.sessions[id] = &hostedSession{sess: s.engine.NewSession(rand.New(rand.NewSource(seed)))}
	s.order = append(s.order, id)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, SessionResponse{SessionID: id})
}

// handleSessionOp dispatches /v1/sessions/{id}/{op}.
func (s *Server) handleSessionOp(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	parts := strings.SplitN(rest, "/", 2)
	if len(parts) == 0 || parts[0] == "" {
		writeError(w, http.StatusNotFound, "missing session id")
		return
	}
	id := parts[0]
	s.mu.Lock()
	hs := s.sessions[id]
	s.mu.Unlock()
	if hs == nil {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	op := ""
	if len(parts) == 2 {
		op = parts[1]
	}

	switch {
	case op == "" && r.Method == http.MethodDelete:
		s.mu.Lock()
		delete(s.sessions, id)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, struct{}{})

	case op == "candidates" && r.Method == http.MethodGet:
		hs.mu.Lock()
		cands := hs.sess.Candidates()
		hs.mu.Unlock()
		out := make([]CandidateJSON, len(cands))
		for i, c := range cands {
			out[i] = CandidateJSON{ID: int(c.ID), Label: s.label(int(c.ID))}
		}
		writeJSON(w, http.StatusOK, struct {
			Candidates []CandidateJSON `json:"candidates"`
		}{out})

	case op == "feedback" && r.Method == http.MethodPost:
		var req FeedbackRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		marks := make([]rstar.ItemID, len(req.Relevant))
		for i, m := range req.Relevant {
			marks[i] = rstar.ItemID(m)
		}
		hs.mu.Lock()
		err := hs.sess.Feedback(marks)
		nsub := len(hs.sess.Frontier())
		nrel := len(hs.sess.Relevant())
		hs.mu.Unlock()
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, FeedbackResponse{Subqueries: nsub, Relevant: nrel})

	case op == "retract" && r.Method == http.MethodPost:
		var req FeedbackRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		ids := make([]rstar.ItemID, len(req.Relevant))
		for i, m := range req.Relevant {
			ids[i] = rstar.ItemID(m)
		}
		hs.mu.Lock()
		hs.sess.Retract(ids)
		nrel := len(hs.sess.Relevant())
		hs.mu.Unlock()
		writeJSON(w, http.StatusOK, FeedbackResponse{Relevant: nrel})

	case op == "finalize" && r.Method == http.MethodPost:
		var req struct {
			K int `json:"k"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		hs.mu.Lock()
		res, err := hs.sess.FinalizeCtx(r.Context(), req.K)
		stats := hs.sess.Stats()
		hs.mu.Unlock()
		if err != nil {
			writeQueryError(w, err)
			return
		}
		s.mu.Lock()
		delete(s.sessions, id) // finalized sessions are done
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, s.toQueryResponse(res, stats))

	default:
		writeError(w, http.StatusNotFound, "unknown operation %q", op)
	}
}

// SessionCount reports the live thin-client sessions (for monitoring/tests).
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}
