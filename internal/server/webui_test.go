package server

import (
	"image/png"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"qdcbir/internal/dataset"
	"qdcbir/internal/img"
)

func newUITestServer(t *testing.T) (*httptest.Server, *dataset.Corpus) {
	t.Helper()
	eng, corpus := testSystem(t)
	srv := New(eng, corpus.SubconceptOf)
	// Render a handful of images on the fly (the shared fixture corpus is
	// built without KeepImages to stay small).
	images := make([]*img.Image, corpus.Len())
	for i := 0; i < 10; i++ {
		im := img.New(16, 16)
		im.Fill(img.RGB{R: uint8(i * 20), G: 100, B: 200})
		images[i] = im
	}
	srv.SetImages(images)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, corpus
}

func TestUIPageServes(t *testing.T) {
	ts, _ := newUITestServer(t)
	resp, err := http.Get(ts.URL + "/ui")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{"query decomposition", "/v1/sessions", "Finalize"} {
		if !strings.Contains(body, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

func TestImageEndpoint(t *testing.T) {
	ts, _ := newUITestServer(t)
	resp, err := http.Get(ts.URL + "/v1/image/3.png")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	im, err := png.Decode(resp.Body)
	if err != nil {
		t.Fatalf("invalid PNG: %v", err)
	}
	if im.Bounds().Dx() != 16 || im.Bounds().Dy() != 16 {
		t.Errorf("decoded size %v", im.Bounds())
	}
	r, g, b, _ := im.At(0, 0).RGBA()
	if r>>8 != 60 || g>>8 != 100 || b>>8 != 200 {
		t.Errorf("pixel (0,0) = %d,%d,%d", r>>8, g>>8, b>>8)
	}

	// Missing image and junk ids are 404s.
	for _, path := range []string{"/v1/image/11.png", "/v1/image/notanumber.png", "/v1/image/-1.png"} {
		r2, _ := http.Get(ts.URL + path)
		if r2.StatusCode != http.StatusNotFound {
			t.Errorf("%s = %d, want 404", path, r2.StatusCode)
		}
		r2.Body.Close()
	}
}

func TestImageEndpointWithoutImages(t *testing.T) {
	eng, corpus := testSystem(t)
	srv := New(eng, corpus.SubconceptOf) // no SetImages
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, _ := http.Get(ts.URL + "/v1/image/0.png")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d without images", resp.StatusCode)
	}
}
