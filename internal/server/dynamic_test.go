package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"qdcbir/internal/seg"
	"qdcbir/internal/vec"
)

// testDynStore is a minimal DynamicStore over the segmented engine — the
// same wrapping the root package's Dynamic type provides.
type testDynStore struct {
	db     *seg.DB
	mu     sync.RWMutex
	labels map[int]string
}

func (s *testDynStore) DB() *seg.DB { return s.db }

func (s *testDynStore) Insert(v vec.Vector, label string) (int, error) {
	id, err := s.db.Insert(v)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.labels[id] = label
	s.mu.Unlock()
	return id, nil
}

func (s *testDynStore) Delete(id int) error {
	if err := s.db.Delete(id); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.labels, id)
	s.mu.Unlock()
	return nil
}

func (s *testDynStore) LabelOf(id int) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.labels[id]
}

func (s *testDynStore) NewSession(seed int64) *seg.Session {
	return s.db.NewSession(rand.New(rand.NewSource(seed)))
}

func (s *testDynStore) RestoreSession(st *seg.SessionState, seed int64) (*seg.Session, error) {
	return s.db.RestoreSession(st, rand.New(rand.NewSource(seed)))
}

func (s *testDynStore) Compact(ctx context.Context) error { return s.db.Compact(ctx) }

func (s *testDynStore) Stats() seg.Stats { return s.db.Stats() }

func newTestDynServer(t *testing.T) (*testDynStore, *httptest.Server) {
	t.Helper()
	db, err := seg.New(seg.Config{
		Dim: 5, SealThreshold: 16, MaxSegments: 2, Seed: 3,
		NodeCapacity: 8, DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := &testDynStore{db: db, labels: make(map[int]string)}
	ts := httptest.NewServer(NewDynamic(ds, nil).Handler())
	t.Cleanup(func() { ts.Close(); db.Close() })
	return ds, ts
}

// postJSON posts body and returns (status, error code). On 200 the response
// decodes into out (when non-nil); otherwise the uniform error body's code
// is returned.
func dynPost(t *testing.T, url string, body, out interface{}) (int, string) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, ""
	}
	var e errorResponse
	_ = json.NewDecoder(resp.Body).Decode(&e)
	return resp.StatusCode, e.Code
}

func dynGet(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestDynamicIngestEndpoints(t *testing.T) {
	_, ts := newTestDynServer(t)
	rng := rand.New(rand.NewSource(8))

	// Insert enough rows to seal segments.
	var lastEpoch uint64
	for i := 0; i < 40; i++ {
		v := make([]float64, 5)
		for j := range v {
			v[j] = rng.Float64()
		}
		var ir InsertResponse
		if code, _ := dynPost(t, ts.URL+"/v1/images", InsertRequest{Vector: v, Label: fmt.Sprintf("img-%d", i)}, &ir); code != http.StatusOK {
			t.Fatalf("insert %d: status %d", i, code)
		}
		if ir.ID != i {
			t.Fatalf("insert %d got ID %d", i, ir.ID)
		}
		if ir.Epoch <= lastEpoch {
			t.Fatalf("insert %d: epoch %d did not advance past %d", i, ir.Epoch, lastEpoch)
		}
		lastEpoch = ir.Epoch
	}

	// GET reports the label; DELETE tombstones; GET then 404s.
	var img ImageResponse
	if code := dynGet(t, ts.URL+"/v1/images/7", &img); code != http.StatusOK {
		t.Fatalf("get image: status %d", code)
	}
	if img.Label != "img-7" {
		t.Fatalf("label %q", img.Label)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/images/7", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if code := dynGet(t, ts.URL+"/v1/images/7", nil); code != http.StatusNotFound {
		t.Fatalf("get deleted image: status %d", code)
	}

	// Info and buildinfo reflect the live segmented state.
	var info InfoResponse
	if code := dynGet(t, ts.URL+"/v1/info", &info); code != http.StatusOK || info.Images != 39 {
		t.Fatalf("info: code %d images %d", code, info.Images)
	}
	var bi BuildInfoResponse
	if code := dynGet(t, ts.URL+"/v1/buildinfo", &bi); code != http.StatusOK {
		t.Fatalf("buildinfo: %d", code)
	}
	if !bi.Dynamic || bi.Images != 39 || bi.Segments < 2 || bi.Epoch == 0 || bi.Tombstones != 1 {
		t.Fatalf("buildinfo: %+v", bi)
	}

	// Query by examples never returns the tombstoned image.
	var qr QueryResponse
	if code, _ := dynPost(t, ts.URL+"/v1/query", QueryRequest{Relevant: []int{2, 3, 11}, K: 10}, &qr); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	n := 0
	for _, g := range qr.Groups {
		for _, im := range g.Images {
			if im.ID == 7 {
				t.Fatal("query returned tombstoned image")
			}
			n++
		}
	}
	if n != 10 {
		t.Fatalf("query returned %d images", n)
	}

	// Compaction merges down to one segment without losing rows.
	var cr CompactResponse
	if code, _ := dynPost(t, ts.URL+"/v1/compact", struct{}{}, &cr); code != http.StatusOK {
		t.Fatalf("compact: status %d", code)
	}
	if cr.Segments != 1 || cr.Live != 39 || cr.Compactions == 0 {
		t.Fatalf("compact: %+v", cr)
	}
}

func TestDynamicHostedSessions(t *testing.T) {
	ds, ts := newTestDynServer(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		v := make(vec.Vector, 5)
		for j := range v {
			v[j] = rng.Float64()
		}
		if _, err := ds.Insert(v, fmt.Sprintf("img-%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	var sr SessionResponse
	if code, _ := dynPost(t, ts.URL+"/v1/sessions", map[string]int64{"seed": 11}, &sr); code != http.StatusOK {
		t.Fatalf("session create: %d", code)
	}
	base := ts.URL + "/v1/sessions/" + sr.SessionID

	var cands struct {
		Candidates []CandidateJSON `json:"candidates"`
	}
	if code := dynGet(t, base+"/candidates", &cands); code != http.StatusOK || len(cands.Candidates) == 0 {
		t.Fatalf("candidates: code %d count %d", code, len(cands.Candidates))
	}
	if cands.Candidates[0].Label == "" {
		t.Fatal("candidate label missing")
	}

	var fr FeedbackResponse
	marked := []int{cands.Candidates[0].ID, cands.Candidates[1].ID}
	if code, _ := dynPost(t, base+"/feedback", FeedbackRequest{Relevant: marked}, &fr); code != http.StatusOK {
		t.Fatalf("feedback: %d", code)
	}
	if fr.Relevant != 2 || fr.Subqueries == 0 {
		t.Fatalf("feedback: %+v", fr)
	}

	// Export carries the snapshot-independent state; import re-pins the
	// importing server's current snapshot.
	var ex SessionExport
	if code := dynGet(t, base+"/export", &ex); code != http.StatusOK || ex.State == nil {
		t.Fatalf("export: code %d, state %v", code, ex.State)
	}
	if len(ex.State.Relevant) != 2 || ex.State.Rounds != 1 {
		t.Fatalf("exported state: %+v", ex.State)
	}
	var sr2 SessionResponse
	if code, _ := dynPost(t, ts.URL+"/v1/sessions/import", ex, &sr2); code != http.StatusOK {
		t.Fatalf("import: %d", code)
	}
	// Retract remains unimplemented for dynamic sessions.
	if code, _ := dynPost(t, base+"/retract", FeedbackRequest{Relevant: marked[:1]}, nil); code != http.StatusNotImplemented {
		t.Fatalf("retract: %d", code)
	}

	var qr QueryResponse
	if code, _ := dynPost(t, base+"/finalize", map[string]int{"k": 12}, &qr); code != http.StatusOK {
		t.Fatalf("finalize: %d", code)
	}
	n := 0
	for _, g := range qr.Groups {
		n += len(g.Images)
	}
	if n != 12 {
		t.Fatalf("finalize returned %d images", n)
	}

	// The imported session finalizes identically: same panel, same snapshot
	// contents (nothing was written in between).
	var qr2 QueryResponse
	if code, _ := dynPost(t, ts.URL+"/v1/sessions/"+sr2.SessionID+"/finalize", map[string]int{"k": 12}, &qr2); code != http.StatusOK {
		t.Fatalf("imported finalize: %d", code)
	}
	if !reflect.DeepEqual(qr, qr2) {
		t.Fatalf("imported finalize diverges:\n  orig %+v\n  imported %+v", qr, qr2)
	}

	// Importing a panel containing a tombstoned image is rejected.
	if err := ds.Delete(marked[0]); err != nil {
		t.Fatal(err)
	}
	if code, _ := dynPost(t, ts.URL+"/v1/sessions/import", ex, nil); code != http.StatusBadRequest {
		t.Fatalf("import with tombstoned relevant: %d", code)
	}
	// Finalized sessions are released (and their snapshot pin dropped).
	if code := dynGet(t, base+"/candidates", nil); code != http.StatusNotFound {
		t.Fatalf("post-finalize candidates: %d", code)
	}
	// The payload endpoint is meaningless for a mutable corpus.
	if code := dynGet(t, ts.URL+"/v1/payload", nil); code != http.StatusNotImplemented {
		t.Fatalf("payload: %d", code)
	}
}

func TestStaticServerRejectsWrites(t *testing.T) {
	eng, corpus := testSystem(t)
	srv := New(eng, corpus.SubconceptOf)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, ec := dynPost(t, ts.URL+"/v1/images", InsertRequest{Vector: []float64{1}}, nil)
	if code != http.StatusConflict {
		t.Fatalf("static insert: status %d", code)
	}
	if ec != ErrCodeReadOnly {
		t.Fatalf("static insert code %q", ec)
	}
}
