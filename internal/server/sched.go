package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"qdcbir/internal/obs"
	"qdcbir/internal/shard"
	"qdcbir/internal/vec"
)

// This file implements the serving-side execution scheduler: admission
// control in front of every search endpoint, and a short coalescing window
// that groups concurrent shard-search legs aimed at the same topology node
// into one multi-query batch dispatch (shard.Replica.SearchNodeBatch), so
// co-resident leaf sweeps share one load of each slab chunk. Both halves are
// throughput/overload machinery only: an admitted request computes exactly
// what it would have computed alone, bit for bit.

// ErrOverloaded is returned by admission control when the endpoint's wait
// queue is full: the server is healthy but saturated, and the structured 503
// (code "overloaded", Retry-After set) tells callers — the router above all —
// to back off or try another replica rather than pile on.
var ErrOverloaded = errors.New("server overloaded: admission queue full")

// ErrCodeOverloaded marks an admission-control shed in errorResponse.Code.
const ErrCodeOverloaded = "overloaded"

// SchedConfig tunes the scheduler. The zero value disables it entirely
// (every request dispatches immediately, as before).
type SchedConfig struct {
	// MaxConcurrent caps searches executing at once. <= 0 disables admission
	// control (and with it queueing and shedding).
	MaxConcurrent int
	// QueueBound caps requests waiting for an execution slot; an arrival
	// beyond it is shed with ErrOverloaded. <= 0 means shed immediately when
	// all slots are busy.
	QueueBound int
	// Window is how long the first leg of a shard-search batch waits for
	// companions before dispatching. <= 0 disables coalescing.
	Window time.Duration
	// MaxBatch caps queries per coalesced dispatch (0 = 8).
	MaxBatch int
	// ShedP99, when positive, is the p99 latency target driving backpressure:
	// while an endpoint's one-minute p99 exceeds it, the effective queue
	// bound shrinks to a quarter (floor 1), shedding load early instead of
	// letting the queue amplify the overload.
	ShedP99 time.Duration
}

// scheduler is the runtime behind SchedConfig. All state is per-server.
type scheduler struct {
	cfg SchedConfig
	win *obs.WindowSet

	// Admission: a token semaphore for execution slots plus a counted wait
	// queue per endpoint. The queue is bounded by cfg.QueueBound (shrunk
	// under p99 backpressure); waiters park on the semaphore and leave early
	// when their deadline expires — a queued request that dies waiting never
	// dispatches a kernel.
	sem chan struct{}

	mu      sync.Mutex
	waiting map[string]int

	// Coalescing: one pending batch per (node, precision) key; the opening
	// leg arms a timer and dispatches the whole batch when it fires or when
	// the batch fills, whichever is first.
	cmu     sync.Mutex
	pending map[uint64]*legBatch

	queueDepth     *obs.Gauge
	inflight       *obs.Gauge
	shedTotal      *obs.Counter
	deadlineQueued *obs.Counter
	batchesTotal   *obs.Counter
	batchedQueries *obs.Counter
	coalesceWidth  *obs.Histogram
}

func newScheduler(cfg SchedConfig, o *obs.Observer) *scheduler {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	s := &scheduler{
		cfg:     cfg,
		win:     o.Windows(),
		waiting: make(map[string]int),
		pending: make(map[uint64]*legBatch),
	}
	if cfg.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	reg := o.Registry()
	s.queueDepth = reg.Gauge("qd_sched_queue_depth", "Requests waiting for an execution slot.")
	s.inflight = reg.Gauge("qd_sched_inflight", "Searches currently executing.")
	s.shedTotal = reg.Counter("qd_sched_shed_total", "Requests shed by admission control (503 overloaded).")
	s.deadlineQueued = reg.Counter("qd_sched_deadline_queued_total", "Requests whose deadline expired while queued (no kernel dispatched).")
	s.batchesTotal = reg.Counter("qd_sched_batches_total", "Coalesced multi-query batch dispatches.")
	s.batchedQueries = reg.Counter("qd_sched_batched_queries_total", "Queries answered through a coalesced batch of width >= 2.")
	s.coalesceWidth = reg.Histogram("qd_sched_coalesce_width", "Queries per coalesced shard-search dispatch.", obs.FanoutBuckets)
	return s
}

// effectiveBound is the wait-queue cap right now: the configured bound,
// shrunk to a quarter (floor 1) while the endpoint's one-minute p99 exceeds
// the ShedP99 target. The digest read is O(slots·buckets) and happens only
// when slots are contended, so the uncontended fast path never pays it.
func (s *scheduler) effectiveBound(endpoint string) int {
	bound := s.cfg.QueueBound
	if bound <= 0 {
		return 0
	}
	if s.cfg.ShedP99 <= 0 {
		return bound
	}
	p99 := s.win.Digest("endpoint:" + endpoint).Snapshot(time.Minute).Quantile(0.99)
	if p99 > s.cfg.ShedP99.Seconds() {
		bound /= 4
		if bound < 1 {
			bound = 1
		}
	}
	return bound
}

// admit blocks until the request may execute, returning the release func the
// caller must defer. A nil scheduler or unbounded config admits immediately.
// Errors: ErrOverloaded when the wait queue is full; the context error when
// the deadline expires (or the client leaves) while queued — in that case no
// search work has started.
func (s *scheduler) admit(ctx context.Context, endpoint string) (func(), error) {
	if s == nil || s.sem == nil {
		return func() {}, nil
	}
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return s.release, nil
	default:
	}
	// All slots busy: queue if there is room, shed otherwise.
	s.mu.Lock()
	if s.waiting[endpoint] >= s.effectiveBound(endpoint) {
		s.mu.Unlock()
		s.shedTotal.Inc()
		return nil, ErrOverloaded
	}
	s.waiting[endpoint]++
	s.mu.Unlock()
	s.queueDepth.Add(1)
	defer func() {
		s.mu.Lock()
		s.waiting[endpoint]--
		s.mu.Unlock()
		s.queueDepth.Add(-1)
	}()
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return s.release, nil
	case <-ctx.Done():
		s.deadlineQueued.Inc()
		return nil, ctx.Err()
	}
}

func (s *scheduler) release() {
	<-s.sem
	s.inflight.Add(-1)
}

// legBatch is one pending coalesced dispatch: concurrent shard-search legs
// for the same topology node, collected during the window.
type legBatch struct {
	node uint64
	qs   []vec.Vector
	ks   []int
	outs []*legResult
	full chan struct{} // closed when the batch reaches MaxBatch
	done chan struct{} // closed after dispatch fills every result
	err  error
	ns   [][]shard.Neighbor
}

// legResult is one leg's slot in its batch.
type legResult struct {
	batch *legBatch
	idx   int
}

// searchShard answers one shard-search leg, coalescing it with concurrent
// legs for the same node when a window is configured. Weighted searches have
// no multi-query kernel and always run alone. Per leg the answer is
// bit-identical to rep.SearchNode — batches delegate to SearchNodeBatch,
// whose per-query results are pinned to the single-query path.
func (s *scheduler) searchShard(ctx context.Context, rep *shard.Replica, nodeID uint64, q vec.Vector, weights []float64, k int) ([]shard.Neighbor, error) {
	if s == nil || s.cfg.Window <= 0 || weights != nil || k <= 0 {
		return rep.SearchNode(ctx, nodeID, q, weights, k)
	}
	s.cmu.Lock()
	if b := s.pending[nodeID]; b != nil && len(b.qs) < s.cfg.MaxBatch {
		idx := len(b.qs)
		b.qs = append(b.qs, q)
		b.ks = append(b.ks, k)
		res := &legResult{batch: b, idx: idx}
		b.outs = append(b.outs, res)
		if len(b.qs) == s.cfg.MaxBatch {
			delete(s.pending, nodeID)
			close(b.full)
		}
		s.cmu.Unlock()
		select {
		case <-b.done:
			if b.err != nil {
				return nil, b.err
			}
			return b.ns[idx], nil
		case <-ctx.Done():
			// The batch runs on the opener's context; this leg just stops
			// waiting for it.
			return nil, ctx.Err()
		}
	}
	b := &legBatch{
		node: nodeID,
		qs:   []vec.Vector{q},
		ks:   []int{k},
		full: make(chan struct{}),
		done: make(chan struct{}),
	}
	b.outs = append(b.outs, &legResult{batch: b, idx: 0})
	s.pending[nodeID] = b
	s.cmu.Unlock()

	timer := time.NewTimer(s.cfg.Window)
	select {
	case <-b.full:
		timer.Stop()
	case <-timer.C:
		s.cmu.Lock()
		if s.pending[nodeID] == b {
			delete(s.pending, nodeID)
		}
		s.cmu.Unlock()
	case <-ctx.Done():
		timer.Stop()
		s.cmu.Lock()
		if s.pending[nodeID] == b {
			delete(s.pending, nodeID)
		}
		s.cmu.Unlock()
		b.err = ctx.Err()
		close(b.done)
		return nil, b.err
	}

	s.coalesceWidth.Observe(float64(len(b.qs)))
	if len(b.qs) == 1 {
		// A lone leg takes the plain single-query path.
		ns, err := rep.SearchNode(ctx, nodeID, b.qs[0], nil, b.ks[0])
		b.ns, b.err = [][]shard.Neighbor{ns}, err
		close(b.done)
		return ns, err
	}
	s.batchesTotal.Inc()
	s.batchedQueries.Add(uint64(len(b.qs)))
	b.ns, b.err = rep.SearchNodeBatch(ctx, nodeID, b.qs, b.ks)
	close(b.done)
	if b.err != nil {
		return nil, b.err
	}
	return b.ns[0], nil
}

// SetScheduler installs admission control and leg coalescing per cfg. Call
// before serving traffic; the zero config leaves the server unscheduled.
func (s *Server) SetScheduler(cfg SchedConfig) {
	if cfg.MaxConcurrent <= 0 && cfg.Window <= 0 {
		s.sched = nil
		return
	}
	s.sched = newScheduler(cfg, s.obs)
}
