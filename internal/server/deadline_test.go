package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// expectDeadline503 posts a valid query and demands the structured overload
// response: 503, Retry-After, and the machine-readable error code.
func expectDeadline503(t *testing.T, url string, header http.Header) {
	t.Helper()
	data, err := json.Marshal(QueryRequest{Relevant: []int{1, 2, 3}, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/query", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d (%s), want 503", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want \"1\"", ra)
	}
	var body struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("non-JSON error body %q: %v", raw, err)
	}
	if body.Code != ErrCodeDeadline {
		t.Fatalf("error code %q (%s), want %q", body.Code, raw, ErrCodeDeadline)
	}
	if body.Error == "" {
		t.Fatal("empty error message")
	}
}

// TestQueryDeadlineStructuredError pins the overload contract: when the
// server-side time budget expires mid-query, clients get a retryable 503 with
// Retry-After and code "deadline_exceeded" — not a dropped connection or an
// opaque 500. The router leans on this shape to fail the scatter leg over to
// a sibling replica.
func TestQueryDeadlineStructuredError(t *testing.T) {
	srv, ts, _ := newTestServer(t)
	srv.SetQueryTimeout(time.Nanosecond)
	defer srv.SetQueryTimeout(0)
	expectDeadline503(t, ts.URL, nil)
}

// TestDeadlineHeaderTightensContext covers the propagated form: the router's
// X-Qd-Deadline-Ms header imposes a budget on a server with none of its own,
// tightens a looser configured budget, and can never widen a tighter one.
func TestDeadlineHeaderTightensContext(t *testing.T) {
	eng, corpus := testSystem(t)
	srv := New(eng, corpus.SubconceptOf)
	var deadline time.Time
	var has bool
	h := srv.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadline, has = r.Context().Deadline()
	}))
	probe := func(headerMS string) (time.Time, bool) {
		req := httptest.NewRequest(http.MethodGet, "/v1/info", nil)
		if headerMS != "" {
			req.Header.Set("X-Qd-Deadline-Ms", headerMS)
		}
		h.ServeHTTP(httptest.NewRecorder(), req)
		return deadline, has
	}

	if _, ok := probe(""); ok {
		t.Fatal("no budget configured yet the context has a deadline")
	}
	if dl, ok := probe("50"); !ok || time.Until(dl) > 50*time.Millisecond {
		t.Fatalf("header alone: deadline %v (has=%v), want within 50ms", dl, ok)
	}
	srv.SetQueryTimeout(10 * time.Millisecond)
	if dl, ok := probe("5000"); !ok || time.Until(dl) > 20*time.Millisecond {
		t.Fatalf("header must not widen the configured 10ms budget (deadline %v, has=%v)", dl, ok)
	}
	if dl, ok := probe("2"); !ok || time.Until(dl) > 5*time.Millisecond {
		t.Fatalf("header should tighten the configured budget (deadline %v, has=%v)", dl, ok)
	}
	if _, ok := probe("not-a-number"); !ok {
		t.Fatal("malformed header should fall back to the configured budget, not clear it")
	}
}
