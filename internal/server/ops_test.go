package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"qdcbir/internal/core"
	"qdcbir/internal/obs"
)

func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts, _ := newTestServer(t)
	var out struct {
		Status string `json:"status"`
	}
	resp := getJSON(t, ts.URL+"/healthz", &out)
	if resp.StatusCode != http.StatusOK || out.Status != "ok" {
		t.Fatalf("healthz: status %d body %+v", resp.StatusCode, out)
	}
}

func TestBuildInfoEndpoint(t *testing.T) {
	_, ts, corpus := newTestServer(t)
	var out BuildInfoResponse
	resp := getJSON(t, ts.URL+"/v1/buildinfo", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("buildinfo: status %d", resp.StatusCode)
	}
	if out.Images != corpus.Len() {
		t.Errorf("buildinfo images = %d, corpus = %d", out.Images, corpus.Len())
	}
	if out.TreeHeight < 1 {
		t.Errorf("buildinfo tree height = %d", out.TreeHeight)
	}
	// Under `go test` the build info may carry no VCS stamp, but the Go
	// version is always present.
	if !strings.HasPrefix(out.GoVersion, "go") {
		t.Errorf("buildinfo go version = %q", out.GoVersion)
	}
}

// TestLatencyEndpoint drives a query, then checks the phase digest and the
// endpoint digest both carry the sample in every default window.
func TestLatencyEndpoint(t *testing.T) {
	_, ts := newObservedServer(t)
	var qr QueryResponse
	resp := postJSON(t, ts.URL+"/v1/query", QueryRequest{Relevant: []int{0, 1, 2}, K: 10}, &qr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d", resp.StatusCode)
	}
	var out LatencyResponse
	if r := getJSON(t, ts.URL+"/v1/latency", &out); r.StatusCode != http.StatusOK {
		t.Fatalf("latency: status %d", r.StatusCode)
	}
	if len(out.Windows) != len(obs.DefaultWindows) {
		t.Fatalf("windows = %v", out.Windows)
	}
	fin, ok := out.Digests[obs.DigestFinalize]
	if !ok {
		t.Fatalf("no finalize digest; digests = %v", out.Digests)
	}
	for _, label := range out.Windows {
		if fin[label].Count == 0 {
			t.Errorf("finalize digest window %q empty", label)
		}
	}
	ep, ok := out.Digests["endpoint:/v1/query"]
	if !ok {
		t.Fatalf("no /v1/query endpoint digest; digests = %v", out.Digests)
	}
	if ep["15m"].Count != 1 {
		t.Errorf("endpoint digest count = %d, want 1", ep["15m"].Count)
	}
	if ep["15m"].P95 <= 0 {
		t.Errorf("endpoint digest p95 = %v", ep["15m"].P95)
	}
}

// finalizedSessionServer runs n full sessions plus one stateless query so the
// trace ring holds n "session" traces and one "query" trace.
func finalizedSessionServer(t *testing.T, n int) string {
	t.Helper()
	_, ts := newObservedServer(t)
	for i := 0; i < n; i++ {
		id := createSession(t, ts.URL, int64(7+i))
		cands, _ := getCandidates(t, ts.URL, id)
		postJSON(t, fmt.Sprintf("%s/v1/sessions/%s/feedback", ts.URL, id),
			FeedbackRequest{Relevant: cands[:2]}, nil)
		postJSON(t, fmt.Sprintf("%s/v1/sessions/%s/finalize", ts.URL, id),
			map[string]int{"k": 10}, nil)
	}
	postJSON(t, ts.URL+"/v1/query", QueryRequest{Relevant: []int{0, 1}, K: 5}, nil)
	return ts.URL
}

func TestTracesFilteringAndOrder(t *testing.T) {
	base := finalizedSessionServer(t, 3)
	var out struct {
		Traces []*obs.Trace `json:"traces"`
	}
	getJSON(t, base+"/v1/traces", &out)
	if len(out.Traces) != 4 {
		t.Fatalf("traces = %d, want 4", len(out.Traces))
	}
	// Newest first: the stateless query ran last.
	if out.Traces[0].Kind != "query" {
		t.Errorf("first trace kind = %q, want the newest (query)", out.Traces[0].Kind)
	}
	for i := 1; i < len(out.Traces); i++ {
		if out.Traces[i-1].ID < out.Traces[i].ID {
			t.Errorf("traces not newest-first at %d", i)
		}
	}
	// Sessions carry their API handle as the correlation label.
	var sessions struct {
		Traces []*obs.Trace `json:"traces"`
	}
	getJSON(t, base+"/v1/traces?kind=session", &sessions)
	if len(sessions.Traces) != 3 {
		t.Fatalf("kind=session traces = %d, want 3", len(sessions.Traces))
	}
	for _, tr := range sessions.Traces {
		if !strings.HasPrefix(tr.Label, "session-") {
			t.Errorf("session trace label = %q, want session-<id>", tr.Label)
		}
	}
	var limited struct {
		Traces []*obs.Trace `json:"traces"`
	}
	getJSON(t, base+"/v1/traces?limit=2", &limited)
	if len(limited.Traces) != 2 || limited.Traces[0].ID != out.Traces[0].ID {
		t.Errorf("limit=2 returned %d traces", len(limited.Traces))
	}
	if resp := getJSON(t, base+"/v1/traces?limit=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, base+"/v1/traces?format=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format: status %d", resp.StatusCode)
	}
}

func TestTracesPerfettoFormat(t *testing.T) {
	base := finalizedSessionServer(t, 1)
	resp, err := http.Get(base + "/v1/traces?format=perfetto")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var file obs.TraceEventFile
	if err := json.NewDecoder(resp.Body).Decode(&file); err != nil {
		t.Fatalf("perfetto body is not trace-event JSON: %v", err)
	}
	var names []string
	for _, e := range file.TraceEvents {
		if e.Ph == "X" {
			names = append(names, e.Name)
		}
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"session", "round 1", "finalize"} {
		if !strings.Contains(joined, want) {
			t.Errorf("perfetto events missing %q (have %v)", want, names)
		}
	}
}

// TestRequestIDCorrelation checks the middleware's three correlation
// surfaces: the response header, the structured log line, and the trace label
// of a query opened under the request.
func TestRequestIDCorrelation(t *testing.T) {
	eng, corpus := testSystem(t)
	cfg := eng.Config()
	cfg.Observer = obs.New(nil)
	srv := New(core.NewEngine(eng.RFS(), cfg), corpus.SubconceptOf)
	var logBuf bytes.Buffer
	srv.SetLogger(slog.New(slog.NewJSONHandler(&logBuf, nil)))
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(hts.Close)
	ts := hts.URL

	// A supplied X-Request-Id is propagated verbatim.
	req, _ := http.NewRequest(http.MethodGet, ts+"/v1/info", nil)
	req.Header.Set("X-Request-Id", "corr-xyz")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "corr-xyz" {
		t.Errorf("echoed request id = %q", got)
	}

	// An absent header is filled in, and the id lands on the query's trace.
	body, _ := json.Marshal(QueryRequest{Relevant: []int{0, 1}, K: 5})
	qresp, err := http.Post(ts+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, qresp.Body)
	qresp.Body.Close()
	reqID := qresp.Header.Get("X-Request-Id")
	if !strings.HasPrefix(reqID, "req-") {
		t.Fatalf("generated request id = %q", reqID)
	}
	traces := srv.Observer().TracesFiltered("query", 1)
	if len(traces) != 1 || traces[0].Label != reqID {
		t.Fatalf("query trace label = %+v, want %q", traces, reqID)
	}
	// Every request logged one line carrying its id.
	logs := logBuf.String()
	for _, want := range []string{`"request_id":"corr-xyz"`, `"request_id":"` + reqID + `"`, `"path":"/v1/query"`, `"status":200`} {
		if !strings.Contains(logs, want) {
			t.Errorf("log output missing %s in:\n%s", want, logs)
		}
	}
}

func TestEndpointOf(t *testing.T) {
	for path, want := range map[string]string{
		"/v1/info":                    "/v1/info",
		"/v1/sessions":                "/v1/sessions",
		"/v1/sessions/42":             "/v1/sessions/{id}",
		"/v1/sessions/42/feedback":    "/v1/sessions/{id}/feedback",
		"/v1/image/17":                "/v1/image/{id}",
		"/healthz":                    "/healthz",
		"/v1/traces":                  "/v1/traces",
		"/v1/sessions/9/finalize":     "/v1/sessions/{id}/finalize",
		"/v1/sessions/10/candidates":  "/v1/sessions/{id}/candidates",
		"/v1/image/0":                 "/v1/image/{id}",
		"/v1/sessions/":               "/v1/sessions/{id}",
		"/v1/sessions/77/candidates/": "/v1/sessions/{id}/candidates/",
	} {
		if got := endpointOf(path); got != want {
			t.Errorf("endpointOf(%q) = %q, want %q", path, got, want)
		}
	}
}
