package server

import (
	"encoding/json"
	"net/http"
	"time"

	"qdcbir/internal/obs"
	"qdcbir/internal/shard"
	"qdcbir/internal/vec"
)

// SetShard switches the server into shard-replica mode: it serves the usual
// session protocol (hosted sessions then run over the full-corpus topology,
// not the local subtree) plus the scatter-gather endpoints a router fans out
// to — /v1/shard/meta, /v1/shard/search, /v1/shard/points. Call before
// serving traffic.
func (s *Server) SetShard(r *shard.Replica) {
	s.shard = r
	if r != nil {
		if dc := r.Meta().DisplayCount; dc > 0 {
			s.displayCount = dc
		}
	}
}

// Shard returns the replica this server fronts, or nil in single-node mode.
func (s *Server) Shard() *shard.Replica { return s.shard }

// ShardMetaResponse describes the shard slice a replica serves.
type ShardMetaResponse struct {
	shard.Meta
}

// ShardSearchRequest is one scatter leg of a distributed finalize: the k
// nearest local images under a topology node.
type ShardSearchRequest struct {
	NodeID  uint64    `json:"node_id"`
	Query   []float64 `json:"query"`
	Weights []float64 `json:"weights,omitempty"`
	K       int       `json:"k"`
}

// NeighborJSON is one scored neighbor. Distances round-trip exactly:
// encoding/json emits float64 at shortest-exact precision.
type NeighborJSON struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

// ShardSearchResponse lists the local top-k ascending by (dist, id). When the
// router asked for tracing (X-Qd-Trace header), Trace carries the shard-side
// spans back for cross-process stitching.
type ShardSearchResponse struct {
	Neighbors []NeighborJSON   `json:"neighbors"`
	Trace     *obs.RemoteTrace `json:"trace,omitempty"`
}

// TraceData satisfies obs.RemoteTraced so the router's generic call path can
// lift the shard-side spans without knowing the response shape.
func (r *ShardSearchResponse) TraceData() *obs.RemoteTrace { return r.Trace }

// ShardPointsRequest asks the replica for the feature vectors of the listed
// images. IDs the replica does not own are silently omitted — the router
// queries every shard and unions the answers.
type ShardPointsRequest struct {
	IDs []int `json:"ids"`
}

// ShardPointJSON is one owned image: its exact float64 feature vector and
// the full-tree leaf that stores it (the §3.2 starting assignment for a
// stateless query).
type ShardPointJSON struct {
	ID    int       `json:"id"`
	Leaf  uint64    `json:"leaf"`
	Vec   []float64 `json:"vec"`
	Label string    `json:"label,omitempty"`
}

// ShardPointsResponse lists the owned subset of the requested IDs.
type ShardPointsResponse struct {
	Points []ShardPointJSON `json:"points"`
	Trace  *obs.RemoteTrace `json:"trace,omitempty"`
}

// TraceData satisfies obs.RemoteTraced.
func (r *ShardPointsResponse) TraceData() *obs.RemoteTrace { return r.Trace }

func (s *Server) requireShard(w http.ResponseWriter) bool {
	if s.shard == nil {
		writeErrorCode(w, http.StatusNotFound, "not_a_shard", "this server is not a shard replica")
		return false
	}
	return true
}

func (s *Server) handleShardMeta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if !s.requireShard(w) {
		return
	}
	writeJSON(w, http.StatusOK, ShardMetaResponse{Meta: s.shard.Meta()})
}

func (s *Server) handleShardTopology(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if !s.requireShard(w) {
		return
	}
	writeJSON(w, http.StatusOK, s.shard.Topo())
}

func (s *Server) handleShardSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.requireShard(w) {
		return
	}
	var req ShardSearchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	var weights []float64
	if req.Weights != nil {
		weights = req.Weights
	}
	release, err := s.sched.admit(r.Context(), "/v1/shard/search")
	if err != nil {
		writeQueryError(w, err)
		return
	}
	defer release()
	rec := shardRecorder(r)
	searchStart := time.Now()
	ns, err := s.sched.searchShard(r.Context(), s.shard, req.NodeID, vec.Vector(req.Query), weights, req.K)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	rec.Span("search", searchStart, map[string]any{
		"node": req.NodeID, "k": req.K, "neighbors": len(ns),
	})
	resp := ShardSearchResponse{Neighbors: make([]NeighborJSON, len(ns)), Trace: rec.Trace()}
	for i, n := range ns {
		resp.Neighbors[i] = NeighborJSON{ID: n.ID, Dist: n.Dist}
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardRecorder starts a shard-side span recorder when the caller asked for
// one via the X-Qd-Trace header; otherwise returns nil, on which every
// recorder method is a no-op and Trace() yields nil (no response field).
func shardRecorder(r *http.Request) *obs.RemoteRecorder {
	if r.Header.Get(obs.TraceHeader) == "" {
		return nil
	}
	return obs.NewRemoteRecorder()
}

func (s *Server) handleShardPoints(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.requireShard(w) {
		return
	}
	var req ShardPointsRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	rec := shardRecorder(r)
	lookupStart := time.Now()
	resp := ShardPointsResponse{Points: []ShardPointJSON{}}
	for _, id := range req.IDs {
		p, ok := s.shard.PointInfo(id)
		if !ok {
			continue
		}
		resp.Points = append(resp.Points, ShardPointJSON{ID: p.ID, Leaf: p.Leaf, Vec: p.Vec, Label: p.Label})
	}
	rec.Span("points", lookupStart, map[string]any{
		"requested": len(req.IDs), "owned": len(resp.Points),
	})
	resp.Trace = rec.Trace()
	writeJSON(w, http.StatusOK, resp)
}

// decodeJSON decodes the request body into v, writing the uniform 400
// response on failure (the returned error only signals the caller to stop).
func decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return err
	}
	return nil
}
