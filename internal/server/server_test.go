package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"qdcbir/internal/core"
	"qdcbir/internal/dataset"
	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
)

var (
	fixOnce   sync.Once
	fixEngine *core.Engine
	fixCorpus *dataset.Corpus
)

// testSystem builds one shared small system (image-mode corpus so labels are
// meaningful).
func testSystem(t *testing.T) (*core.Engine, *dataset.Corpus) {
	t.Helper()
	fixOnce.Do(func() {
		spec := dataset.SmallSpec(3, 12, 500)
		fixCorpus = dataset.Build(spec, dataset.Options{Seed: 4})
		structure := rfs.Build(fixCorpus.Vectors, rfs.BuildConfig{
			RepFraction: 0.2,
			Tree:        rstar.Config{MaxFill: 24},
			TargetFill:  20,
			Seed:        5,
		})
		fixEngine = core.NewEngine(structure, core.Config{})
	})
	if fixEngine == nil {
		t.Fatal("fixture build failed")
	}
	return fixEngine, fixCorpus
}

func newTestServer(t *testing.T) (*Server, *httptest.Server, *dataset.Corpus) {
	t.Helper()
	eng, corpus := testSystem(t)
	srv := New(eng, corpus.SubconceptOf)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, corpus
}

func postJSON(t *testing.T, url string, body interface{}, out interface{}) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestInfoEndpoint(t *testing.T) {
	_, ts, corpus := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Images != corpus.Len() {
		t.Errorf("images = %d want %d", info.Images, corpus.Len())
	}
	if info.TreeHeight < 2 || info.Representatives == 0 {
		t.Errorf("info = %+v", info)
	}
	// Wrong method rejected.
	if r, _ := http.Post(ts.URL+"/v1/info", "application/json", nil); r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/info = %d", r.StatusCode)
	}
}

func TestPayloadEndpointAndValidation(t *testing.T) {
	_, ts, corpus := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/payload")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p Payload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("payload invalid: %v", err)
	}
	if p.Images != corpus.Len() {
		t.Errorf("payload images = %d", p.Images)
	}
	// Payload is the paper's "small fraction": well under the corpus size.
	if reps := p.RepCount(); reps == 0 || reps > corpus.Len()/2 {
		t.Errorf("payload reps = %d of %d", reps, corpus.Len())
	}
	// Labels present for reps.
	if len(p.Labels) == 0 {
		t.Error("no labels in payload")
	}
}

func TestThinClientSessionFlow(t *testing.T) {
	_, ts, _ := newTestServer(t)

	var sess SessionResponse
	postJSON(t, ts.URL+"/v1/sessions", map[string]int64{"seed": 42}, &sess)
	if sess.SessionID == "" {
		t.Fatal("no session id")
	}
	base := ts.URL + "/v1/sessions/" + sess.SessionID

	// Find bird candidates across a few displays.
	targets := map[string]bool{}
	for _, q := range dataset.PaperQueries() {
		if q.Name == "Bird" {
			for _, tgt := range q.Targets {
				targets[tgt] = true
			}
		}
	}
	var marks []int
	for d := 0; d < 20 && len(marks) < 6; d++ {
		resp, err := http.Get(base + "/candidates")
		if err != nil {
			t.Fatal(err)
		}
		var cands struct {
			Candidates []CandidateJSON `json:"candidates"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&cands); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, c := range cands.Candidates {
			if targets[c.Label] && len(marks) < 6 {
				marks = append(marks, c.ID)
			}
		}
	}
	if len(marks) == 0 {
		t.Skip("no bird representatives surfaced in 20 displays")
	}
	var fb FeedbackResponse
	postJSON(t, base+"/feedback", FeedbackRequest{Relevant: marks}, &fb)
	if fb.Relevant == 0 || fb.Subqueries == 0 {
		t.Fatalf("feedback response %+v", fb)
	}

	var result QueryResponse
	postJSON(t, base+"/finalize", map[string]int{"k": 12}, &result)
	total := 0
	for _, g := range result.Groups {
		total += len(g.Images)
		for _, im := range g.Images {
			if im.Label == "" {
				t.Error("result image without label")
			}
		}
	}
	if total != 12 {
		t.Errorf("finalize returned %d images", total)
	}
	// Finalized session is gone.
	resp, _ := http.Get(base + "/candidates")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("finalized session still alive: %d", resp.StatusCode)
	}
}

func TestSessionErrorsAndDelete(t *testing.T) {
	srv, ts, _ := newTestServer(t)

	// Unknown session.
	resp, _ := http.Get(ts.URL + "/v1/sessions/99999/candidates")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session = %d", resp.StatusCode)
	}
	// Bad JSON.
	r2, _ := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte("{")))
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json = %d", r2.StatusCode)
	}
	// Feedback for undisplayed image.
	var sess SessionResponse
	postJSON(t, ts.URL+"/v1/sessions", nil, &sess)
	resp3 := postJSON(t, ts.URL+"/v1/sessions/"+sess.SessionID+"/feedback",
		FeedbackRequest{Relevant: []int{123456}}, nil)
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("undisplayed feedback = %d", resp3.StatusCode)
	}
	// Delete removes the session.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+sess.SessionID, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dr.StatusCode != http.StatusOK {
		t.Errorf("delete = %d", dr.StatusCode)
	}
	if srv.SessionCount() != 0 {
		t.Errorf("sessions remain: %d", srv.SessionCount())
	}
}

func TestStatelessQueryEndpoint(t *testing.T) {
	_, ts, corpus := newTestServer(t)
	// Example images: a few eagles and a few owls — scattered clusters.
	eagles := corpus.SubconceptIDs(dataset.Key("bird", "eagle"))
	owls := corpus.SubconceptIDs(dataset.Key("bird", "owl"))
	req := QueryRequest{Relevant: append(append([]int{}, eagles[:3]...), owls[:3]...), K: 16}
	var out QueryResponse
	postJSON(t, ts.URL+"/v1/query", req, &out)
	if len(out.Groups) < 2 {
		t.Fatalf("expected multiple groups, got %d", len(out.Groups))
	}
	var gotEagle, gotOwl bool
	total := 0
	for _, g := range out.Groups {
		for _, im := range g.Images {
			total++
			switch corpus.SubconceptOf(im.ID) {
			case dataset.Key("bird", "eagle"):
				gotEagle = true
			case dataset.Key("bird", "owl"):
				gotOwl = true
			}
		}
	}
	if total != 16 {
		t.Errorf("returned %d of 16", total)
	}
	if !gotEagle || !gotOwl {
		t.Error("stateless query missed a neighborhood")
	}
	// Errors: no examples, bad k, unknown image.
	if r := postJSON(t, ts.URL+"/v1/query", QueryRequest{K: 5}, nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("empty examples = %d", r.StatusCode)
	}
	if r := postJSON(t, ts.URL+"/v1/query", QueryRequest{Relevant: eagles[:1], K: 0}, nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("k=0 = %d", r.StatusCode)
	}
	if r := postJSON(t, ts.URL+"/v1/query", QueryRequest{Relevant: []int{1 << 30}, K: 5}, nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown image = %d", r.StatusCode)
	}
}

func TestClientSideSessionFlow(t *testing.T) {
	_, ts, corpus := newTestServer(t)
	client, err := Dial(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if client.Images() != corpus.Len() {
		t.Errorf("client images = %d", client.Images())
	}

	targets := map[string]bool{
		dataset.Key("car", "modern-sedan"): true,
		dataset.Key("car", "antique-car"):  true,
		dataset.Key("car", "steamed-car"):  true,
	}
	sess := client.NewSession(7, 21)
	for round := 0; round < 3; round++ {
		var marks []int
		seen := map[int]bool{}
		for d := 0; d < 15 && len(marks) < 6; d++ {
			for _, c := range sess.Candidates() {
				if !seen[c.ID] && targets[c.Label] && len(marks) < 6 {
					seen[c.ID] = true
					marks = append(marks, c.ID)
				}
			}
		}
		if err := sess.Feedback(marks); err != nil {
			t.Fatal(err)
		}
	}
	if sess.Subqueries() == 0 || len(sess.Relevant()) == 0 {
		t.Fatal("client session found nothing")
	}
	res, err := sess.Finalize(18)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	total := 0
	for _, g := range res.Groups {
		for _, im := range g.Images {
			total++
			if targets[corpus.SubconceptOf(im.ID)] {
				covered[corpus.SubconceptOf(im.ID)] = true
			}
		}
	}
	if total != 18 {
		t.Errorf("returned %d of 18", total)
	}
	if len(covered) < 2 {
		t.Errorf("client-side QD covered only %d car subconcepts", len(covered))
	}
	// Double finalize is an error; so is feedback after finalize.
	if _, err := sess.Finalize(5); err == nil {
		t.Error("second finalize accepted")
	}
	if err := sess.Feedback(nil); err == nil {
		t.Error("feedback after finalize accepted")
	}
}

func TestClientRejectsUndisplayedMark(t *testing.T) {
	_, ts, _ := newTestServer(t)
	client, err := Dial(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := client.NewSession(1, 21)
	sess.Candidates()
	if err := sess.Feedback([]int{987654}); err == nil {
		t.Error("undisplayed mark accepted")
	}
}

func TestConcurrentSessions(t *testing.T) {
	_, ts, corpus := newTestServer(t)
	subs := corpus.Subconcepts()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			target := subs[rng.Intn(len(subs))]

			var sess SessionResponse
			data, _ := json.Marshal(map[string]int64{"seed": int64(w + 1)})
			resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(data))
			if err != nil {
				errs <- err
				return
			}
			json.NewDecoder(resp.Body).Decode(&sess)
			resp.Body.Close()
			base := ts.URL + "/v1/sessions/" + sess.SessionID

			var marks []int
			for d := 0; d < 12 && len(marks) < 4; d++ {
				r, err := http.Get(base + "/candidates")
				if err != nil {
					errs <- err
					return
				}
				var cands struct {
					Candidates []CandidateJSON `json:"candidates"`
				}
				json.NewDecoder(r.Body).Decode(&cands)
				r.Body.Close()
				for _, c := range cands.Candidates {
					if c.Label == target && len(marks) < 4 {
						marks = append(marks, c.ID)
					}
				}
			}
			if len(marks) == 0 {
				return // unlucky target; not an error
			}
			fb, _ := json.Marshal(FeedbackRequest{Relevant: marks})
			r2, err := http.Post(base+"/feedback", "application/json", bytes.NewReader(fb))
			if err != nil {
				errs <- err
				return
			}
			r2.Body.Close()
			fin, _ := json.Marshal(map[string]int{"k": 10})
			r3, err := http.Post(base+"/finalize", "application/json", bytes.NewReader(fin))
			if err != nil {
				errs <- err
				return
			}
			if r3.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("worker %d finalize: %d", w, r3.StatusCode)
			}
			r3.Body.Close()
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSessionCapEviction(t *testing.T) {
	eng, corpus := testSystem(t)
	srv := New(eng, corpus.SubconceptOf)
	srv.SetMaxSessions(3)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 5; i++ {
		var sess SessionResponse
		postJSON(t, ts.URL+"/v1/sessions", map[string]int64{"seed": int64(i + 1)}, &sess)
		ids = append(ids, sess.SessionID)
	}
	if got := srv.SessionCount(); got > 3 {
		t.Fatalf("cap not enforced: %d sessions", got)
	}
	// The oldest sessions are gone; the newest survives.
	resp, _ := http.Get(ts.URL + "/v1/sessions/" + ids[0] + "/candidates")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted session still alive: %d", resp.StatusCode)
	}
	resp2, _ := http.Get(ts.URL + "/v1/sessions/" + ids[4] + "/candidates")
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("newest session dead: %d", resp2.StatusCode)
	}
	// SetMaxSessions ignores nonsense.
	srv.SetMaxSessions(0)
}

func TestBuildPayloadDirect(t *testing.T) {
	eng, corpus := testSystem(t)
	p, err := BuildPayload(eng, corpus.SubconceptOf)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.RepCount() != eng.RFS().RepCount() {
		t.Errorf("payload reps %d != structure reps %d", p.RepCount(), eng.RFS().RepCount())
	}
	// Corrupt payloads are rejected.
	bad := &Payload{Root: &PayloadNode{Reps: []int{1}, Children: []*PayloadNode{{Reps: []int{2}}}}}
	if err := bad.Validate(); err == nil {
		t.Error("orphan internal rep accepted")
	}
	if err := (&Payload{}).Validate(); err == nil {
		t.Error("empty payload accepted")
	}
}
