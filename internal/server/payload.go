package server

import (
	"fmt"

	"qdcbir/internal/core"
	"qdcbir/internal/rstar"
)

// Payload is the client download for client-side relevance feedback: the RFS
// hierarchy reduced to representative-image lists (plus display labels). This
// is all the information feedback processing needs — the paper designates
// ~5% of the database as representatives precisely so this payload stays
// small enough to ship to clients (§4).
type Payload struct {
	// Root is the hierarchy with per-node representative IDs.
	Root *PayloadNode `json:"root"`
	// Labels maps representative IDs to display labels (thumbnails in a real
	// deployment).
	Labels map[int]string `json:"labels,omitempty"`
	// Images is the total database size (for sanity checks and result k).
	Images int `json:"images"`
}

// PayloadNode mirrors one RFS node.
type PayloadNode struct {
	Reps     []int          `json:"reps"`
	Children []*PayloadNode `json:"children,omitempty"`
}

// BuildPayload extracts the representative structure from an engine.
func BuildPayload(engine *core.Engine, label Labeler) (*Payload, error) {
	s := engine.RFS()
	labels := make(map[int]string)
	var build func(n *rstar.Node) *PayloadNode
	build = func(n *rstar.Node) *PayloadNode {
		pn := &PayloadNode{}
		for _, id := range s.Reps(n, nil) {
			pn.Reps = append(pn.Reps, int(id))
			if label != nil {
				if l := label(int(id)); l != "" {
					labels[int(id)] = l
				}
			}
		}
		for _, c := range n.Children() {
			pn.Children = append(pn.Children, build(c))
		}
		return pn
	}
	root := build(s.Root())
	if root == nil || len(root.Reps) == 0 {
		return nil, fmt.Errorf("server: structure has no representatives")
	}
	return &Payload{Root: root, Labels: labels, Images: s.Len()}, nil
}

// Validate checks structural sanity: every node has representatives, and
// every internal node's representatives appear in some child's subtree (the
// property client-side descent depends on).
func (p *Payload) Validate() error {
	if p == nil || p.Root == nil {
		return fmt.Errorf("server: empty payload")
	}
	var walk func(n *PayloadNode) (map[int]bool, error)
	walk = func(n *PayloadNode) (map[int]bool, error) {
		if len(n.Reps) == 0 {
			return nil, fmt.Errorf("server: node with no representatives")
		}
		subtree := make(map[int]bool)
		if len(n.Children) == 0 {
			for _, id := range n.Reps {
				subtree[id] = true
			}
			return subtree, nil
		}
		for _, c := range n.Children {
			sub, err := walk(c)
			if err != nil {
				return nil, err
			}
			for id := range sub {
				subtree[id] = true
			}
		}
		for _, id := range n.Reps {
			if !subtree[id] {
				return nil, fmt.Errorf("server: rep %d not under any child", id)
			}
		}
		return subtree, nil
	}
	_, err := walk(p.Root)
	return err
}

// RepCount returns the number of distinct representatives in the payload.
func (p *Payload) RepCount() int {
	seen := make(map[int]bool)
	var walk func(n *PayloadNode)
	walk = func(n *PayloadNode) {
		for _, id := range n.Reps {
			seen[id] = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if p.Root != nil {
		walk(p.Root)
	}
	return len(seen)
}
