package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"qdcbir"
	"qdcbir/internal/obs"
	"qdcbir/internal/shard"
)

// newSchedServer builds a single-node server with the given scheduler config.
func newSchedServer(t *testing.T, cfg SchedConfig) (*Server, *httptest.Server) {
	t.Helper()
	eng, corpus := testSystem(t)
	srv := New(eng, corpus.SubconceptOf)
	srv.SetScheduler(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func counterValue(srv *Server, name string) uint64 {
	return srv.obs.Registry().Snapshot().Counters[name]
}

// TestSchedQueuedDeadline pins the admission-control deadline contract: a
// request whose time budget expires while it waits for an execution slot gets
// the structured 503 deadline_exceeded and never dispatches a search — the
// slot was occupied the whole time, so nothing else could have run it.
func TestSchedQueuedDeadline(t *testing.T) {
	srv, ts := newSchedServer(t, SchedConfig{MaxConcurrent: 1, QueueBound: 4})

	// Occupy the only execution slot so the request must queue.
	srv.sched.sem <- struct{}{}

	body, _ := json.Marshal(QueryRequest{Relevant: []int{1, 2, 3}, K: 10})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Qd-Deadline-Ms", "30")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("missing Retry-After on queued-deadline 503")
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != ErrCodeDeadline {
		t.Fatalf("code = %q, want %q", e.Code, ErrCodeDeadline)
	}
	if n := counterValue(srv, "qd_sched_deadline_queued_total"); n != 1 {
		t.Errorf("deadline_queued_total = %d, want 1", n)
	}
	if n := counterValue(srv, "qd_sched_shed_total"); n != 0 {
		t.Errorf("shed_total = %d, want 0 (queued, not shed)", n)
	}
	if d := srv.obs.Registry().Snapshot().Gauges["qd_sched_queue_depth"]; d != 0 {
		t.Errorf("queue depth = %d after request left", d)
	}

	// Free the slot: the same request now succeeds.
	<-srv.sched.sem
	resp2, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("after release: status = %d, want 200", resp2.StatusCode)
	}
}

// TestSchedShedOverloaded pins the load-shedding contract: with all slots
// busy and no queue room, the request is rejected immediately with the
// structured 503 overloaded and a Retry-After hint.
func TestSchedShedOverloaded(t *testing.T) {
	srv, ts := newSchedServer(t, SchedConfig{MaxConcurrent: 1, QueueBound: 0})
	srv.sched.sem <- struct{}{}

	body, _ := json.Marshal(QueryRequest{Relevant: []int{1, 2, 3}, K: 10})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != ErrCodeOverloaded {
		t.Fatalf("code = %q, want %q", e.Code, ErrCodeOverloaded)
	}
	if n := counterValue(srv, "qd_sched_shed_total"); n != 1 {
		t.Errorf("shed_total = %d, want 1", n)
	}

	<-srv.sched.sem
	resp2, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("after release: status = %d, want 200", resp2.StatusCode)
	}
}

// TestSchedBackpressureShrinksQueue pins the p99-driven backpressure: while
// the endpoint's one-minute p99 exceeds the target, the effective queue bound
// drops to a quarter (floor 1).
func TestSchedBackpressureShrinksQueue(t *testing.T) {
	o := obs.New(obs.NewRegistry())
	s := newScheduler(SchedConfig{MaxConcurrent: 1, QueueBound: 16, ShedP99: 100 * time.Millisecond}, o)
	if got := s.effectiveBound("/v1/query"); got != 16 {
		t.Fatalf("idle bound = %d, want 16", got)
	}
	for i := 0; i < 50; i++ {
		o.Windows().Observe("endpoint:/v1/query", 2.0) // 2s >> 100ms target
	}
	if got := s.effectiveBound("/v1/query"); got != 4 {
		t.Fatalf("overloaded bound = %d, want 4", got)
	}
	s2 := newScheduler(SchedConfig{MaxConcurrent: 1, QueueBound: 2, ShedP99: 100 * time.Millisecond}, o)
	if got := s2.effectiveBound("/v1/query"); got != 1 {
		t.Fatalf("overloaded bound floor = %d, want 1", got)
	}
}

// TestSchedCoalescedShardSearch drives four concurrent shard-search legs at
// the same topology node through a scheduler with a coalescing window and
// demands (a) every leg's answer is bit-identical to a direct single-query
// SearchNode, and (b) at least one multi-query batch dispatch happened.
func TestSchedCoalescedShardSearch(t *testing.T) {
	cfg := qdcbir.SmallConfig()
	cfg.VectorMode = true
	cfg.Images = 400
	cfg.Categories = 8
	sys, err := qdcbir.Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	archives, err := qdcbir.SliceShards(context.Background(), sys, 2)
	if err != nil {
		t.Fatalf("SliceShards: %v", err)
	}
	var buf bytes.Buffer
	if err := archives[0].Write(&buf); err != nil {
		t.Fatal(err)
	}
	rep, ssys, err := qdcbir.OpenShard(&buf)
	if err != nil {
		t.Fatalf("OpenShard: %v", err)
	}
	srv := New(ssys.Engine(), rep.Labeler())
	srv.SetShard(rep)
	srv.SetScheduler(SchedConfig{
		MaxConcurrent: 8,
		QueueBound:    16,
		Window:        2 * time.Second,
		MaxBatch:      4,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	root := rep.Topo().RootID()
	const m, k = 4, 10
	queries := make([][]float64, m)
	want := make([][]shard.Neighbor, m)
	for j := 0; j < m; j++ {
		queries[j] = sys.Corpus().Vectors[j*31+5]
		ns, err := rep.SearchNode(context.Background(), root, queries[j], nil, k)
		if err != nil {
			t.Fatal(err)
		}
		want[j] = ns
	}

	got := make([]ShardSearchResponse, m)
	errs := make([]error, m)
	var wg sync.WaitGroup
	for j := 0; j < m; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			body, _ := json.Marshal(ShardSearchRequest{NodeID: root, Query: queries[j], K: k})
			resp, err := http.Post(ts.URL+"/v1/shard/search", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[j] = err
				return
			}
			defer resp.Body.Close()
			errs[j] = json.NewDecoder(resp.Body).Decode(&got[j])
		}(j)
	}
	wg.Wait()
	for j := 0; j < m; j++ {
		if errs[j] != nil {
			t.Fatalf("leg %d: %v", j, errs[j])
		}
		if len(got[j].Neighbors) != len(want[j]) {
			t.Fatalf("leg %d: %d neighbors, want %d", j, len(got[j].Neighbors), len(want[j]))
		}
		for i, n := range want[j] {
			g := got[j].Neighbors[i]
			if g.ID != n.ID || g.Dist != n.Dist {
				t.Fatalf("leg %d rank %d: (%d, %v), want (%d, %v)", j, i, g.ID, g.Dist, n.ID, n.Dist)
			}
		}
	}
	if n := counterValue(srv, "qd_sched_batches_total"); n < 1 {
		t.Errorf("batches_total = %d, want >= 1", n)
	}
	if n := counterValue(srv, "qd_sched_batched_queries_total"); n < 2 {
		t.Errorf("batched_queries_total = %d, want >= 2", n)
	}
}
