package server

// Dynamic mode: the server fronts the segmented epoch/snapshot engine
// (internal/seg) instead of a read-only monolithic engine. The corpus then
// accepts online writes — POST /v1/images inserts, DELETE /v1/images/{id}
// tombstones — while every query and hosted session pins an immutable
// snapshot, so writes never stall reads and a session's world is frozen at
// the epoch it started. /v1/buildinfo reports the epoch and segment shape;
// POST /v1/compact forces a merge (background compaction runs regardless).
//
// In static mode the write endpoints answer 409 with code "read_only", so
// clients can discover the mode without a separate capability probe.

import (
	"container/list"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"qdcbir/internal/obs"
	"qdcbir/internal/seg"
	"qdcbir/internal/vec"
)

// DynamicStore is the write-capable corpus a dynamic server fronts. The
// root package's Dynamic type satisfies it.
type DynamicStore interface {
	DB() *seg.DB
	Insert(v vec.Vector, label string) (int, error)
	Delete(id int) error
	LabelOf(id int) string
	NewSession(seed int64) *seg.Session
	RestoreSession(st *seg.SessionState, seed int64) (*seg.Session, error)
	Compact(ctx context.Context) error
	Stats() seg.Stats
}

// ErrCodeReadOnly rejects write endpoints on a static (non-dynamic) server.
const ErrCodeReadOnly = "read_only"

// DefaultDynamicDisplay is the candidate-panel size for hosted dynamic
// sessions (the paper GUI's 21).
const DefaultDynamicDisplay = 21

// NewDynamic creates a server over a write-capable segmented corpus. o may
// be nil (a standalone observer is created); pass the same observer the
// store was built with so ingest and HTTP telemetry land in one registry.
func NewDynamic(ds DynamicStore, o *obs.Observer) *Server {
	if o == nil {
		o = obs.New(obs.NewRegistry())
	}
	return &Server{
		dyn:          ds,
		label:        ds.LabelOf,
		maxSessions:  DefaultMaxSessions,
		displayCount: DefaultDynamicDisplay,
		obs:          o,
		httpReqs:     o.Registry().Counter("qd_http_requests_total", "HTTP requests served."),
		httpErrs:     o.Registry().Counter("qd_http_errors_total", "HTTP responses with status >= 400."),
		slow:         obs.NewSlowLog(0),
		sessions:     make(map[string]*hostedSession),
		lru:          list.New(),
	}
}

// InsertRequest is the POST /v1/images body.
type InsertRequest struct {
	Vector []float64 `json:"vector"`
	Label  string    `json:"label,omitempty"`
}

// InsertResponse reports the new image's ID and the epoch its insert
// published — a snapshot acquired at or after this epoch sees the image.
type InsertResponse struct {
	ID    int    `json:"id"`
	Epoch uint64 `json:"epoch"`
}

// DeleteResponse reports the epoch a delete published.
type DeleteResponse struct {
	Epoch uint64 `json:"epoch"`
}

// ImageResponse is the GET /v1/images/{id} body.
type ImageResponse struct {
	ID    int    `json:"id"`
	Label string `json:"label,omitempty"`
}

// CompactResponse reports the post-compaction corpus shape.
type CompactResponse struct {
	Epoch       uint64 `json:"epoch"`
	Segments    int    `json:"segments"`
	Live        int    `json:"live"`
	Compactions uint64 `json:"compactions"`
}

// handleImages serves POST /v1/images (insert).
func (s *Server) handleImages(w http.ResponseWriter, r *http.Request) {
	if s.dyn == nil {
		writeErrorCode(w, http.StatusConflict, ErrCodeReadOnly, "corpus is read-only: serve a dynamic archive (or -dynamic) to ingest")
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req InsertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	id, err := s.dyn.Insert(vec.Vector(req.Vector), req.Label)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, InsertResponse{ID: id, Epoch: s.dyn.Stats().Epoch})
}

// handleImageOp serves GET and DELETE /v1/images/{id}.
func (s *Server) handleImageOp(w http.ResponseWriter, r *http.Request) {
	if s.dyn == nil {
		writeErrorCode(w, http.StatusConflict, ErrCodeReadOnly, "corpus is read-only: serve a dynamic archive (or -dynamic) to ingest")
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/images/")
	id, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad image id %q", raw)
		return
	}
	switch r.Method {
	case http.MethodGet:
		snap := s.dyn.DB().Acquire()
		_, ok := snap.VectorOf(id)
		snap.Release()
		if !ok {
			writeError(w, http.StatusNotFound, "unknown image %d", id)
			return
		}
		writeJSON(w, http.StatusOK, ImageResponse{ID: id, Label: s.dyn.LabelOf(id)})
	case http.MethodDelete:
		if err := s.dyn.Delete(id); err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, DeleteResponse{Epoch: s.dyn.Stats().Epoch})
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or DELETE only")
	}
}

// handleCompact serves POST /v1/compact: an inline merge of all sealed
// segments (no-op when a background compaction is already running).
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if s.dyn == nil {
		writeErrorCode(w, http.StatusConflict, ErrCodeReadOnly, "corpus is read-only")
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if err := s.dyn.Compact(r.Context()); err != nil {
		writeQueryError(w, err)
		return
	}
	st := s.dyn.Stats()
	writeJSON(w, http.StatusOK, CompactResponse{
		Epoch: st.Epoch, Segments: st.Segments, Live: st.Live, Compactions: st.Compactions,
	})
}

// dynQuery answers /v1/query in dynamic mode: pin a snapshot, run the
// query-side decomposition finalize, map to the wire shape. Segmented
// queries simulate no page I/O, so the stats block reports zeros.
func (s *Server) dynQuery(ctx context.Context, req QueryRequest) (QueryResponse, error) {
	snap := s.dyn.DB().Acquire()
	defer snap.Release()
	var weights vec.Vector
	if req.Weights != nil {
		weights = vec.Vector(req.Weights)
	}
	res, err := snap.QueryByExamplesCtx(ctx, req.Relevant, req.K, weights)
	if err != nil {
		return QueryResponse{}, err
	}
	return s.toDynQueryResponse(res), nil
}

func (s *Server) toDynQueryResponse(res *seg.Result) QueryResponse {
	var out QueryResponse
	for _, g := range res.Groups {
		gj := GroupJSON{RankScore: g.RankScore, QueryImages: g.QueryIDs}
		for _, im := range g.Images {
			gj.Images = append(gj.Images, ScoredJSON{ID: im.ID, Score: im.Score, Label: s.label(im.ID)})
		}
		out.Groups = append(out.Groups, gj)
	}
	return out
}
