// Package baseline implements the comparison retrieval techniques the paper
// surveys (§2) and evaluates against (§5): the Multiple Viewpoints system
// (French & Jin), Query Point Movement (MindReader-style), the MARS
// multipoint query, a Qcluster-style disjunctive query, and plain global
// k-NN. All baselines share one feedback protocol so the experiment harness
// can drive them interchangeably:
//
//	Search(k)            — retrieve the current top-k image IDs
//	Feedback(relevant)   — incorporate the user's relevant marks
//
// Every baseline follows the traditional model the paper critiques: each
// round runs retrieval against the whole database, in contrast to QD, whose
// feedback rounds touch only RFS representatives.
package baseline

import (
	"container/heap"
	"sort"

	"qdcbir/internal/vec"
)

// FeedbackRetriever is the round-based protocol shared by all baselines.
type FeedbackRetriever interface {
	// Name identifies the technique in reports.
	Name() string
	// Search returns the current top-k image IDs, most similar first.
	Search(k int) []int
	// Feedback incorporates relevant image IDs marked by the user among any
	// previously returned results.
	Feedback(relevant []int)
}

// scored pairs an image ID with its distance under the active query model.
type scored struct {
	id   int
	dist float64
}

// topK selects the k smallest-distance images over the corpus by evaluating
// dist for every ID in [0, n) — the "global computation over the entire
// database" cost profile the paper attributes to traditional relevance
// feedback. A max-heap of size k keeps selection O(n log k).
func topK(n, k int, dist func(id int) float64) []int {
	if k <= 0 || n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	h := make(maxHeap, 0, k)
	for id := 0; id < n; id++ {
		d := dist(id)
		if len(h) < k {
			heap.Push(&h, scored{id: id, dist: d})
			continue
		}
		if d < h[0].dist {
			h[0] = scored{id: id, dist: d}
			heap.Fix(&h, 0)
		}
	}
	out := make([]scored, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].dist != out[j].dist {
			return out[i].dist < out[j].dist
		}
		return out[i].id < out[j].id
	})
	ids := make([]int, len(out))
	for i, s := range out {
		ids[i] = s.id
	}
	return ids
}

type maxHeap []scored

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(scored)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// gatherPoints maps ids to their vectors.
func gatherPoints(points []vec.Vector, ids []int) []vec.Vector {
	out := make([]vec.Vector, 0, len(ids))
	for _, id := range ids {
		if id >= 0 && id < len(points) {
			out = append(out, points[id])
		}
	}
	return out
}
