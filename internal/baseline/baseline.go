// Package baseline implements the comparison retrieval techniques the paper
// surveys (§2) and evaluates against (§5): the Multiple Viewpoints system
// (French & Jin), Query Point Movement (MindReader-style), the MARS
// multipoint query, a Qcluster-style disjunctive query, and plain global
// k-NN. All baselines share one feedback protocol so the experiment harness
// can drive them interchangeably:
//
//	Search(k)            — retrieve the current top-k image IDs
//	Feedback(relevant)   — incorporate the user's relevant marks
//
// Every baseline follows the traditional model the paper critiques: each
// round runs retrieval against the whole database, in contrast to QD, whose
// feedback rounds touch only RFS representatives.
//
// The linear scans run over the corpus feature store's contiguous backing
// array (internal/store) with partial-distance early exit, preserving the
// exact candidate admission sequence of the earlier per-vector scans.
package baseline

import (
	"math"
	"sort"

	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// FeedbackRetriever is the round-based protocol shared by all baselines.
type FeedbackRetriever interface {
	// Name identifies the technique in reports.
	Name() string
	// Search returns the current top-k image IDs, most similar first.
	Search(k int) []int
	// Feedback incorporates relevant image IDs marked by the user among any
	// previously returned results.
	Feedback(relevant []int)
}

// topK selects the k smallest-distance images over the corpus by evaluating
// dist for every ID in [0, n) — the "global computation over the entire
// database" cost profile the paper attributes to traditional relevance
// feedback. vec.TopK keeps selection O(n log k) with the same bounded
// max-heap admission rule as before.
func topK(n, k int, dist func(id int) float64) []int {
	if k <= 0 || n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	sel := vec.NewTopK(k)
	for id := 0; id < n; id++ {
		sel.Add(dist(id), id)
	}
	return sel.AppendIDs(nil)
}

// scanTopK selects the k nearest store rows to q, weighted by w when w is
// non-nil. While the selector is filling it scores with the exact kernel;
// once full it switches to the partial-distance capped kernel with the
// selector's threshold as the limit, which preserves the exact admission
// decisions and admitted values of a full-distance scan (see
// vec.SquaredDistCapped) while skipping most of each rejected row.
func scanTopK(st *store.FeatureStore, k int, q, w vec.Vector) []int {
	n := st.Len()
	if k <= 0 || n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	sel := vec.NewTopK(k)
	id := 0
	for ; id < n && sel.Len() < k; id++ {
		if w == nil {
			sel.Add(vec.SqL2(st.At(id), q), id)
		} else {
			sel.Add(vec.WeightedSqL2(st.At(id), q, w), id)
		}
	}
	for ; id < n; id++ {
		if w == nil {
			sel.Add(vec.SquaredDistCapped(q, st.At(id), sel.Threshold()), id)
		} else {
			sel.Add(vec.WeightedSquaredDistCapped(q, st.At(id), w, sel.Threshold()), id)
		}
	}
	return sel.AppendIDs(nil)
}

// scanTopKQuant is the SQ8 two-phase variant of the unweighted scanTopK: a
// quantized sweep of the codes table retains rerankFactor*k candidate rows,
// the exact float kernel re-ranks them, and the rerank guarantee (see
// rstar.KNNQuantFromStatsCtx for the derivation) certifies the result equals
// scanTopK's before returning it. When the guarantee fails the candidate set
// widens, degenerating to an exact rerank of every row; unclean quantizers
// and NaN queries route straight to scanTopK. Ties in exact distance at the
// k boundary are the one caveat, as on the tree path: either equal-distance
// row is a correct answer, and the selectors may differ on which they keep.
func scanTopKQuant(st *store.FeatureStore, qz *store.Quantized, k int, q vec.Vector, rerankFactor int) []int {
	n := st.Len()
	if k <= 0 || n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if qz == nil || !qz.Clean() || qz.Len() != n {
		return scanTopK(st, k, q, nil)
	}
	qcodes, qErr := qz.EncodeQuery(q, nil)
	if math.IsNaN(qErr) {
		return scanTopK(st, k, q, nil)
	}
	const safety = 1e-9
	m := k * rerankFactor
	if rerankFactor <= 0 || m > n || m < k {
		m = n
	}
	sel := vec.NewQuantTopK(m)
	type cand struct {
		dist float64
		id   int
	}
	var cands []cand
	var dists []int32
	for {
		sel.Reset(m)
		if vec.HasAcceleratedUint8Batch() {
			// Chunked batch sweep (see the tree-path variant in rstar): full
			// and capped distances admit the same rows, so the retained set
			// matches the per-row loop below exactly.
			const chunk = 1024
			dim := qz.Dim()
			codes := qz.Codes()
			if cap(dists) < chunk {
				dists = make([]int32, chunk)
			}
			for base := 0; base < n; base += chunk {
				end := base + chunk
				if end > n {
					end = n
				}
				d := dists[:end-base]
				vec.Uint8SquaredDistsTo(qcodes, codes[base*dim:end*dim], d)
				thr := sel.Threshold()
				for i, dv := range d {
					if dv < thr {
						sel.Add(dv, base+i)
						thr = sel.Threshold()
					}
				}
			}
		} else {
			for id := 0; id < n; id++ {
				sel.Add(vec.Uint8SquaredDistCapped(qcodes, qz.Row(id), sel.Threshold()), id)
			}
		}
		threshold := sel.Threshold()
		ids := sel.AppendIDs(nil)
		cands = cands[:0]
		for _, id := range ids {
			cands = append(cands, cand{dist: math.Sqrt(vec.SqL2(q, st.At(id))), id: id})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].dist != cands[j].dist {
				return cands[i].dist < cands[j].dist
			}
			return cands[i].id < cands[j].id
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		if m >= n {
			break
		}
		dk := cands[len(cands)-1].dist
		lower := qz.DecodedDist(threshold) - qErr - qz.DBErr()
		if dk*(1+safety) < lower*(1-safety) {
			break
		}
		if m > n/2 {
			m = n
		} else {
			m *= 2
		}
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// gatherPoints maps ids to their store row views, dropping out-of-range ids.
func gatherPoints(st *store.FeatureStore, ids []int) []vec.Vector {
	out := make([]vec.Vector, 0, len(ids))
	for _, id := range ids {
		if id >= 0 && id < st.Len() {
			out = append(out, st.At(id))
		}
	}
	return out
}
