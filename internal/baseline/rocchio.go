package baseline

import (
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// Rocchio default mixing weights: the textbook α=1.0, β=0.75 (the γ term
// over non-relevant examples doesn't apply — the shared feedback protocol
// only reports relevant marks).
const (
	DefaultRocchioAlpha = 1.0
	DefaultRocchioBeta  = 0.75
)

// Rocchio implements the classic Rocchio query-point-movement update, the
// baseline modern embedding-based retrieval systems ship alongside learned
// relevance feedback: after each round the query moves to
//
//	q' = (α·q₀ + β·centroid(relevant)) / (α + β)
//
// Unlike QPM (MindReader-style), Rocchio keeps the original query point in
// every update — the query drifts toward the relevant centroid but stays
// anchored — and never re-weights the distance metric. The normalization by
// α+β makes q' a convex combination of q₀ and the centroid, so the moved
// query stays inside the feature range whatever the weights. Like every
// single-point technique, it reaches only one neighborhood per round — the
// confinement QD's decomposition removes.
type Rocchio struct {
	st          *store.FeatureStore
	q0          vec.Vector // the original query point, kept in every update
	query       vec.Vector
	alpha, beta float64
	relevant    []int
	relSet      map[int]bool
}

// NewRocchio builds the baseline with the textbook mixing weights.
func NewRocchio(st *store.FeatureStore, queryImage int) *Rocchio {
	return NewRocchioWeights(st, queryImage, DefaultRocchioAlpha, DefaultRocchioBeta)
}

// NewRocchioWeights builds the baseline with explicit α (original-query
// weight) and β (relevant-centroid weight). Non-positive weights take the
// defaults.
func NewRocchioWeights(st *store.FeatureStore, queryImage int, alpha, beta float64) *Rocchio {
	if alpha <= 0 {
		alpha = DefaultRocchioAlpha
	}
	if beta <= 0 {
		beta = DefaultRocchioBeta
	}
	q := st.At(queryImage).Clone()
	return &Rocchio{
		st:     st,
		q0:     q,
		query:  q.Clone(),
		alpha:  alpha,
		beta:   beta,
		relSet: make(map[int]bool),
	}
}

// Name implements FeedbackRetriever.
func (r *Rocchio) Name() string { return "Rocchio" }

// Query exposes the current (moved) query point for tests and reports; the
// caller must not modify it.
func (r *Rocchio) Query() vec.Vector { return r.query }

// Search returns the top-k nearest images to the current query point.
func (r *Rocchio) Search(k int) []int {
	return scanTopK(r.st, k, r.query, nil)
}

// Feedback applies the Rocchio update over all relevant marks seen so far.
func (r *Rocchio) Feedback(relevant []int) {
	for _, id := range relevant {
		if id >= 0 && id < r.st.Len() && !r.relSet[id] {
			r.relSet[id] = true
			r.relevant = append(r.relevant, id)
		}
	}
	pts := gatherPoints(r.st, r.relevant)
	if len(pts) == 0 {
		return
	}
	c := vec.Centroid(pts)
	inv := 1 / (r.alpha + r.beta)
	for i := range r.query {
		r.query[i] = (r.alpha*r.q0[i] + r.beta*c[i]) * inv
	}
}
