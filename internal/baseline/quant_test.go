package baseline

import (
	"math"
	"math/rand"
	"testing"

	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// TestScanTopKQuantMatchesExact: the two-phase store scan must return exactly
// the ids of the exact scan, across corpus shapes, ks, and query positions.
func TestScanTopKQuantMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	corpora := [][]vec.Vector{
		twoBlobs(rng, 40, 20, 6),
		twoBlobs(rng, 150, 50, 12),
	}
	for ci, pts := range corpora {
		st := store.FromVectors(pts)
		qz, err := store.Quantize(st)
		if err != nil {
			t.Fatalf("corpus %d: quantize: %v", ci, err)
		}
		for trial := 0; trial < 30; trial++ {
			var q vec.Vector
			if trial%2 == 0 {
				q = st.At(rng.Intn(st.Len()))
			} else {
				q = make(vec.Vector, st.Dim())
				for j := range q {
					q[j] = rng.Float64() * 120
				}
			}
			for _, k := range []int{1, 7, 25, st.Len() + 5} {
				exact := scanTopK(st, k, q, nil)
				quant := scanTopKQuant(st, qz, k, q, 0)
				if len(exact) != len(quant) {
					t.Fatalf("corpus %d trial %d k=%d: sizes %d vs %d", ci, trial, k, len(quant), len(exact))
				}
				for i := range exact {
					if exact[i] != quant[i] {
						t.Fatalf("corpus %d trial %d k=%d: pos %d id %d, exact %d",
							ci, trial, k, i, quant[i], exact[i])
					}
				}
			}
		}
	}
}

// TestScanTopKQuantFallbacks: unclean corpora, NaN queries, and nil or
// mismatched quantizers must all route to the exact scan.
func TestScanTopKQuantFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := twoBlobs(rng, 30, 10, 4)
	st := store.FromVectors(pts)
	q := st.At(3)

	exact := scanTopK(st, 9, q, nil)
	check := func(label string, got []int) {
		t.Helper()
		if len(got) != len(exact) {
			t.Fatalf("%s: sizes %d vs %d", label, len(got), len(exact))
		}
		for i := range exact {
			if got[i] != exact[i] {
				t.Fatalf("%s: pos %d id %d, exact %d", label, i, got[i], exact[i])
			}
		}
	}
	check("nil quantizer", scanTopKQuant(st, nil, 9, q, 0))
	short, _ := store.QuantizeBacking(st.Dim(), st.Backing()[:st.Dim()*5])
	check("stale quantizer", scanTopKQuant(st, short, 9, q, 0))

	dirty := append([]vec.Vector{}, pts...)
	dirty[7] = dirty[7].Clone()
	dirty[7][0] = math.Inf(1)
	dst := store.FromVectors(dirty)
	dqz, _ := store.Quantize(dst)
	if dqz.Clean() {
		t.Fatal("dirty corpus reported clean")
	}
	dexact := scanTopK(dst, 9, q, nil)
	dquant := scanTopKQuant(dst, dqz, 9, q, 0)
	for i := range dexact {
		if dexact[i] != dquant[i] {
			t.Fatalf("unclean corpus: pos %d diverges", i)
		}
	}
}

// TestPlainKNNQuantized: the retriever facade must produce identical searches
// with and without EnableQuantized, including the degenerate rerank factor 1
// (which forces guarantee-driven widening on clustered data).
func TestPlainKNNQuantized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := twoBlobs(rng, 60, 30, 8)
	st := store.FromVectors(pts)
	for _, rf := range []int{0, 1, 4} {
		exact := NewPlainKNN(st, 2)
		quant := NewPlainKNN(st, 2)
		if err := quant.EnableQuantized(nil, rf); err != nil {
			t.Fatalf("rf %d: enable: %v", rf, err)
		}
		for _, k := range []int{1, 10, 40} {
			a, b := exact.Search(k), quant.Search(k)
			if len(a) != len(b) {
				t.Fatalf("rf %d k=%d: sizes %d vs %d", rf, k, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("rf %d k=%d: pos %d id %d, exact %d", rf, k, i, b[i], a[i])
				}
			}
		}
	}
}
