package baseline

import (
	"math"
	"math/rand"
	"testing"

	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

func TestRocchioFindsOwnBlob(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := twoBlobs(rng, 40, 20, 12)
	r := NewRocchio(store.FromVectors(pts), 0)
	if r.Name() != "Rocchio" {
		t.Errorf("name = %q", r.Name())
	}
	got := r.Search(30)
	inBlob := 0
	for _, id := range got {
		if id < 40 {
			inBlob++
		}
	}
	if inBlob < 25 {
		t.Fatalf("only %d/30 results from the query's blob", inBlob)
	}
}

// TestRocchioUpdateFormula pins the update against a hand-computed
// q' = (α·q₀ + β·centroid) / (α+β).
func TestRocchioUpdateFormula(t *testing.T) {
	pts := []vec.Vector{{0, 0}, {2, 4}, {4, 0}, {100, 100}}
	r := NewRocchioWeights(store.FromVectors(pts), 0, 1.0, 0.5)
	r.Feedback([]int{1, 2}) // centroid (3, 2)
	want := vec.Vector{(1.0*0 + 0.5*3) / 1.5, (1.0*0 + 0.5*2) / 1.5}
	for i := range want {
		if math.Abs(r.Query()[i]-want[i]) > 1e-12 {
			t.Fatalf("query %v, want %v", r.Query(), want)
		}
	}
	// A second round recomputes from the full relevant set and the ORIGINAL
	// query, not the moved one: same marks => same point.
	prev := r.Query().Clone()
	r.Feedback([]int{1, 2})
	for i := range prev {
		if r.Query()[i] != prev[i] {
			t.Fatal("duplicate feedback moved the query")
		}
	}
}

// TestRocchioStaysAnchored: with feedback drawn from a far cluster the moved
// query must remain strictly between the original point and the relevant
// centroid — the anchoring that distinguishes Rocchio from QPM's pure
// centroid jump.
func TestRocchioStaysAnchored(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := twoBlobs(rng, 30, 0, 6)
	st := store.FromVectors(pts)
	r := NewRocchio(st, 0)
	q := NewQPM(st, 0)
	rel := []int{30, 31, 32, 33}
	r.Feedback(rel)
	q.Feedback(rel)
	c := vec.Centroid(gatherPoints(st, rel))
	q0 := st.At(0)
	dRocchio := vec.L2(r.Query(), c)
	dQPM := vec.L2(q.query, c)
	if dQPM >= dRocchio {
		t.Fatalf("QPM (%v from centroid) should sit closer than Rocchio (%v)", dQPM, dRocchio)
	}
	if vec.L2(r.Query(), q0) >= vec.L2(q0, c) {
		t.Fatal("Rocchio query moved past the centroid")
	}
	if dRocchio >= vec.L2(q0, c) {
		t.Fatal("Rocchio query did not move toward the centroid")
	}
}

// TestRocchioImportedDim: the baseline is dimension-agnostic — it must run
// unchanged over an embedding-scale corpus.
func TestRocchioImportedDim(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := twoBlobs(rng, 25, 10, 128)
	r := NewRocchio(store.FromVectors(pts), 3)
	first := r.Search(15)
	r.Feedback(first[:5])
	second := r.Search(15)
	if len(first) != 15 || len(second) != 15 {
		t.Fatalf("searches returned %d and %d results", len(first), len(second))
	}
}

func TestRocchioIgnoresOutOfRangeMarks(t *testing.T) {
	pts := []vec.Vector{{0, 0}, {1, 1}, {2, 2}}
	r := NewRocchio(store.FromVectors(pts), 0)
	r.Feedback([]int{-1, 99})
	for i, v := range r.Query() {
		if v != pts[0][i] {
			t.Fatal("invalid marks moved the query")
		}
	}
}
