package baseline

import (
	"qdcbir/internal/disk"
	"qdcbir/internal/rstar"
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// PlainKNN is the naive baseline: a fixed query point, no feedback learning.
// It is the k-NN model in its purest form — the technique whose single-
// neighborhood confinement motivates the whole paper (§1.1).
type PlainKNN struct {
	st     *store.FeatureStore
	query  vec.Vector
	quant  *store.Quantized // non-nil switches Search to the SQ8 two-phase scan
	rerank int
}

// NewPlainKNN builds the baseline over the corpus feature store with the
// given query image as the fixed query point.
func NewPlainKNN(st *store.FeatureStore, queryImage int) *PlainKNN {
	return &PlainKNN{st: st, query: st.At(queryImage).Clone()}
}

// EnableQuantized switches Search to the SQ8 two-phase scan: quantized sweep,
// exact rerank of rerankFactor*k candidates (<= 0 uses
// rstar.DefaultRerankFactor). A nil qz trains a quantizer over the store.
// Results remain those of the exact scan — see scanTopKQuant.
func (p *PlainKNN) EnableQuantized(qz *store.Quantized, rerankFactor int) error {
	if qz == nil {
		var err error
		if qz, err = store.Quantize(p.st); err != nil {
			return err
		}
	}
	if rerankFactor <= 0 {
		rerankFactor = rstar.DefaultRerankFactor
	}
	p.quant, p.rerank = qz, rerankFactor
	return nil
}

// Name implements FeedbackRetriever.
func (p *PlainKNN) Name() string { return "kNN" }

// Search returns the top-k nearest images to the fixed query point.
func (p *PlainKNN) Search(k int) []int {
	if p.quant != nil {
		return scanTopKQuant(p.st, p.quant, k, p.query, p.rerank)
	}
	return scanTopK(p.st, k, p.query, nil)
}

// Feedback is a no-op: plain k-NN does not learn.
func (p *PlainKNN) Feedback([]int) {}

// QPM implements Query Point Movement (§2, [7] MindReader): after each round
// the query point moves to the centroid of all relevant images and the
// distance metric is re-weighted per dimension by the inverse variance of the
// relevant set, tightening the query contour along dimensions the relevant
// images agree on.
type QPM struct {
	st       *store.FeatureStore
	query    vec.Vector
	weights  vec.Vector
	relevant []int
	relSet   map[int]bool
}

// NewQPM builds the baseline with the given initial query image.
func NewQPM(st *store.FeatureStore, queryImage int) *QPM {
	w := make(vec.Vector, st.Dim())
	for i := range w {
		w[i] = 1
	}
	return &QPM{
		st:      st,
		query:   st.At(queryImage).Clone(),
		weights: w,
		relSet:  make(map[int]bool),
	}
}

// Name implements FeedbackRetriever.
func (q *QPM) Name() string { return "QPM" }

// Search returns the top-k images under the current weighted query.
func (q *QPM) Search(k int) []int {
	return scanTopK(q.st, k, q.query, q.weights)
}

// Feedback moves the query point and re-weights the metric.
func (q *QPM) Feedback(relevant []int) {
	for _, id := range relevant {
		if id >= 0 && id < q.st.Len() && !q.relSet[id] {
			q.relSet[id] = true
			q.relevant = append(q.relevant, id)
		}
	}
	pts := gatherPoints(q.st, q.relevant)
	if len(pts) == 0 {
		return
	}
	q.query = vec.Centroid(pts)
	if len(pts) >= 2 {
		// MindReader weighting: emphasize low-variance dimensions. The eps
		// guard keeps agreed-constant dimensions finite.
		q.weights = vec.ComputeStats(pts).InverseVariance(1e-4)
		// Normalize so weight magnitudes stay comparable across rounds.
		var sum float64
		for _, w := range q.weights {
			sum += w
		}
		q.weights.ScaleInPlace(float64(len(q.weights)) / sum)
	}
}

// TreeKNN is a global k-NN retriever backed by the R*-tree with QPM-style
// feedback. The efficiency experiments use it to price "traditional relevance
// feedback processing based on a series of global k-NN computation" (§1.2)
// with honest index-assisted I/O counts rather than linear-scan costs.
type TreeKNN struct {
	tree    *rstar.Tree
	st      *store.FeatureStore
	query   vec.Vector
	weights vec.Vector
	rel     []int
	relSet  map[int]bool
	acc     disk.Accounter
}

// NewTreeKNN builds the retriever. acc may be nil to disable I/O accounting.
func NewTreeKNN(tree *rstar.Tree, st *store.FeatureStore, queryImage int, acc disk.Accounter) *TreeKNN {
	w := make(vec.Vector, st.Dim())
	for i := range w {
		w[i] = 1
	}
	return &TreeKNN{
		tree:    tree,
		st:      st,
		query:   st.At(queryImage).Clone(),
		weights: w,
		relSet:  make(map[int]bool),
		acc:     acc,
	}
}

// Name implements FeedbackRetriever.
func (t *TreeKNN) Name() string { return "TreeKNN" }

// Search runs a weighted global k-NN through the index.
func (t *TreeKNN) Search(k int) []int {
	ns := t.tree.KNNWeighted(t.query, t.weights, k, t.acc)
	out := make([]int, len(ns))
	for i, n := range ns {
		out[i] = int(n.ID)
	}
	return out
}

// Feedback applies the QPM update.
func (t *TreeKNN) Feedback(relevant []int) {
	for _, id := range relevant {
		if id >= 0 && id < t.st.Len() && !t.relSet[id] {
			t.relSet[id] = true
			t.rel = append(t.rel, id)
		}
	}
	pts := gatherPoints(t.st, t.rel)
	if len(pts) == 0 {
		return
	}
	t.query = vec.Centroid(pts)
	if len(pts) >= 2 {
		t.weights = vec.ComputeStats(pts).InverseVariance(1e-4)
		var sum float64
		for _, w := range t.weights {
			sum += w
		}
		t.weights.ScaleInPlace(float64(len(t.weights)) / sum)
	}
}
