package baseline

import (
	"math/rand"

	"qdcbir/internal/kmeans"
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// MPQ implements the MARS multipoint query (§2, [13]): the relevant images
// are clustered, each cluster is represented by the data point nearest its
// centroid, and the distance of a database image to the multipoint query is
// the weighted combination of its distances to the representatives, with
// weights proportional to cluster sizes. The effect is a single expanded
// query contour — which still confines results to one (possibly stretched)
// neighborhood, the limitation QD removes.
type MPQ struct {
	st       *store.FeatureStore
	maxReps  int
	rng      *rand.Rand
	relevant []int
	relSet   map[int]bool

	reps       []vec.Vector
	repWeights []float64
}

// NewMPQ builds the baseline. maxReps bounds the number of cluster
// representatives per round (5 in common MARS configurations).
func NewMPQ(st *store.FeatureStore, queryImage, maxReps int, rng *rand.Rand) *MPQ {
	if maxReps < 1 {
		maxReps = 5
	}
	return &MPQ{
		st:         st,
		maxReps:    maxReps,
		rng:        rng,
		relSet:     make(map[int]bool),
		reps:       []vec.Vector{st.At(queryImage).Clone()},
		repWeights: []float64{1},
	}
}

// Name implements FeedbackRetriever.
func (m *MPQ) Name() string { return "MPQ" }

// Search returns the top-k images under the weighted-combination distance.
func (m *MPQ) Search(k int) []int {
	return topK(m.st.Len(), k, func(id int) float64 {
		var d float64
		row := m.st.At(id)
		for i, rep := range m.reps {
			d += m.repWeights[i] * vec.L2(row, rep)
		}
		return d
	})
}

// Feedback re-clusters the cumulative relevant set into representatives.
func (m *MPQ) Feedback(relevant []int) {
	for _, id := range relevant {
		if id >= 0 && id < m.st.Len() && !m.relSet[id] {
			m.relSet[id] = true
			m.relevant = append(m.relevant, id)
		}
	}
	pts := gatherPoints(m.st, m.relevant)
	if len(pts) == 0 {
		return
	}
	k := m.maxReps
	if k > len(pts) {
		k = len(pts)
	}
	r := kmeans.Cluster(pts, k, kmeans.Config{MaxIter: 25}, m.rng)
	repIdx := kmeans.NearestToCentroids(pts, r)
	sizes := r.Sizes()
	m.reps = m.reps[:0]
	m.repWeights = m.repWeights[:0]
	var total float64
	for _, i := range repIdx {
		c := r.Assign[i]
		m.reps = append(m.reps, pts[i].Clone())
		m.repWeights = append(m.repWeights, float64(sizes[c]))
		total += float64(sizes[c])
	}
	for i := range m.repWeights {
		m.repWeights[i] /= total
	}
}

// Qcluster approximates the Qcluster technique (§2, [9]): relevant images are
// clustered as in MPQ, but the query is *disjunctive* — an image's distance
// is its distance to the nearest representative, so each representative keeps
// its own contour. Qcluster retrieves well when relevant clusters are
// adjacent, but (as the paper argues) the single ranked cut across contours
// still degrades when the clusters are far apart with many distractors
// in between.
type Qcluster struct {
	inner MPQ
}

// NewQcluster builds the baseline with the same parameters as NewMPQ.
func NewQcluster(st *store.FeatureStore, queryImage, maxReps int, rng *rand.Rand) *Qcluster {
	return &Qcluster{inner: *NewMPQ(st, queryImage, maxReps, rng)}
}

// Name implements FeedbackRetriever.
func (q *Qcluster) Name() string { return "Qcluster" }

// Search returns the top-k images under the min-over-representatives
// disjunctive distance.
func (q *Qcluster) Search(k int) []int {
	return topK(q.inner.st.Len(), k, func(id int) float64 {
		best := -1.0
		row := q.inner.st.At(id)
		for _, rep := range q.inner.reps {
			d := vec.SqL2(row, rep)
			if best < 0 || d < best {
				best = d
			}
		}
		return best
	})
}

// Feedback re-clusters the cumulative relevant set.
func (q *Qcluster) Feedback(relevant []int) { q.inner.Feedback(relevant) }
