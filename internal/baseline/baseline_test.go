package baseline

import (
	"math/rand"
	"sort"
	"testing"

	"qdcbir/internal/disk"
	"qdcbir/internal/feature"
	"qdcbir/internal/img"
	"qdcbir/internal/rstar"
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// twoBlobs builds a corpus of two distant blobs (ids [0,size) and
// [size,2*size)) plus scattered noise points.
func twoBlobs(rng *rand.Rand, size, noise, dim int) []vec.Vector {
	var pts []vec.Vector
	for b := 0; b < 2; b++ {
		center := make(vec.Vector, dim)
		for j := range center {
			center[j] = float64(b * 100)
		}
		for i := 0; i < size; i++ {
			p := center.Clone()
			for j := range p {
				p[j] += rng.NormFloat64()
			}
			pts = append(pts, p)
		}
	}
	for i := 0; i < noise; i++ {
		p := make(vec.Vector, dim)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		pts = append(pts, p)
	}
	return pts
}

func TestTopKBasics(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	dist := func(id int) float64 { return vals[id] }
	got := topK(5, 3, dist)
	want := []int{1, 3, 4}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("topK[%d] = %d want %d", i, got[i], want[i])
		}
	}
	if got := topK(5, 0, dist); got != nil {
		t.Error("k=0 not nil")
	}
	if got := topK(0, 3, dist); got != nil {
		t.Error("n=0 not nil")
	}
	if got := topK(5, 99, dist); len(got) != 5 {
		t.Errorf("k>n returned %d", len(got))
	}
	// Ties break by ID for determinism.
	tie := topK(4, 2, func(int) float64 { return 7 })
	if tie[0] != 0 || tie[1] != 1 {
		t.Errorf("tie order = %v", tie)
	}
}

func TestTopKMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(n)
		got := topK(n, k, func(id int) float64 { return vals[id] })
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if vals[idx[a]] != vals[idx[b]] {
				return vals[idx[a]] < vals[idx[b]]
			}
			return idx[a] < idx[b]
		})
		for i := 0; i < k; i++ {
			if got[i] != idx[i] {
				t.Fatalf("trial %d rank %d: %d want %d", trial, i, got[i], idx[i])
			}
		}
	}
}

func TestPlainKNNFindsOwnBlob(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := twoBlobs(rng, 50, 20, 4)
	p := NewPlainKNN(store.FromVectors(pts), 0)
	got := p.Search(20)
	for _, id := range got {
		if id >= 50 && id < 100 {
			t.Errorf("plain kNN crossed into the far blob: id %d", id)
		}
	}
	// Feedback is a no-op.
	before := p.Search(10)
	p.Feedback([]int{60, 61})
	after := p.Search(10)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("plain kNN changed after feedback")
		}
	}
	if p.Name() != "kNN" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestQPMMovesTowardRelevant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := twoBlobs(rng, 50, 0, 4)
	// Start in blob 0; all feedback says blob 1 is relevant.
	q := NewQPM(store.FromVectors(pts), 0)
	q.Feedback([]int{60, 61, 62, 63})
	got := q.Search(20)
	crossed := 0
	for _, id := range got {
		if id >= 50 {
			crossed++
		}
	}
	if crossed < 18 {
		t.Errorf("after feedback only %d of 20 results from the relevant blob", crossed)
	}
}

func TestQPMWeightsEmphasizeAgreedDims(t *testing.T) {
	// Relevant points agree on dim 0 (variance ~0) and disagree wildly on
	// dim 1; the learned metric must weight dim 0 higher.
	pts := []vec.Vector{
		{0, 0}, {0, 100}, {0.01, -100}, {0.02, 50},
		{5, 0}, {90, 90},
	}
	q := NewQPM(store.FromVectors(pts), 0)
	q.Feedback([]int{0, 1, 2, 3})
	if q.weights[0] <= q.weights[1] {
		t.Errorf("weights = %v; low-variance dim should dominate", q.weights)
	}
}

func TestQPMDuplicateFeedbackIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := twoBlobs(rng, 30, 0, 3)
	a := NewQPM(store.FromVectors(pts), 0)
	a.Feedback([]int{40, 41})
	a.Feedback([]int{40, 41}) // same marks again
	b := NewQPM(store.FromVectors(pts), 0)
	b.Feedback([]int{40, 41})
	ra, rb := a.Search(10), b.Search(10)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("duplicate feedback changed results")
		}
	}
	// Out-of-range ids are ignored, not a panic.
	a.Feedback([]int{-1, 99999})
}

func TestTreeKNNMatchesQPM(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := twoBlobs(rng, 60, 30, 4)
	items := make([]rstar.Item, len(pts))
	for i, p := range pts {
		items[i] = rstar.Item{ID: rstar.ItemID(i), Point: p}
	}
	tree := rstar.BulkLoad(4, rstar.Config{MaxFill: 16, MinFill: 6}, items, 14)

	var acc disk.Counter
	tk := NewTreeKNN(tree, store.FromVectors(pts), 0, &acc)
	qp := NewQPM(store.FromVectors(pts), 0)
	for round := 0; round < 3; round++ {
		a := tk.Search(15)
		b := qp.Search(15)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d rank %d: tree %d vs linear %d", round, i, a[i], b[i])
			}
		}
		fb := []int{a[0], a[1]}
		tk.Feedback(fb)
		qp.Feedback(fb)
	}
	if acc.Reads() == 0 {
		t.Error("tree retriever recorded no I/O")
	}
}

func TestMPQExpandsContour(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := twoBlobs(rng, 50, 0, 4)
	m := NewMPQ(store.FromVectors(pts), 0, 5, rand.New(rand.NewSource(7)))
	if m.Name() != "MPQ" {
		t.Errorf("name = %q", m.Name())
	}
	// Feedback from both blobs: representatives should span both.
	m.Feedback([]int{0, 1, 2, 60, 61, 62})
	if len(m.reps) < 2 {
		t.Fatalf("only %d representatives after bimodal feedback", len(m.reps))
	}
	var lo, hi bool
	for _, r := range m.reps {
		if r[0] < 50 {
			lo = true
		} else {
			hi = true
		}
	}
	if !lo || !hi {
		t.Error("representatives do not span both blobs")
	}
	// Weights normalized.
	var sum float64
	for _, w := range m.repWeights {
		sum += w
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("rep weights sum to %v", sum)
	}
}

// The paper's critique of MPQ: the weighted-SUM distance favours points
// BETWEEN two distant clusters over points inside them, so distant relevant
// clusters plus midpoint distractors defeat it, while the disjunctive
// Qcluster retrieves the clusters themselves.
func TestMPQvsQclusterOnDistantClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := twoBlobs(rng, 40, 0, 3)
	// Midpoint distractors, equidistant from both blobs.
	mid := make(vec.Vector, 3)
	for j := range mid {
		mid[j] = 50
	}
	for i := 0; i < 40; i++ {
		p := mid.Clone()
		for j := range p {
			p[j] += rng.NormFloat64()
		}
		pts = append(pts, p)
	}
	fb := []int{0, 1, 2, 45, 46, 47}

	mpq := NewMPQ(store.FromVectors(pts), 0, 5, rand.New(rand.NewSource(9)))
	mpq.Feedback(fb)
	qc := NewQcluster(store.FromVectors(pts), 0, 5, rand.New(rand.NewSource(9)))
	qc.Feedback(fb)

	inBlobs := func(ids []int) int {
		n := 0
		for _, id := range ids {
			if id < 80 {
				n++
			}
		}
		return n
	}
	mpqHits := inBlobs(mpq.Search(30))
	qcHits := inBlobs(qc.Search(30))
	if qcHits <= mpqHits {
		t.Errorf("Qcluster (%d hits) should beat MPQ (%d hits) on distant clusters with midpoint distractors", qcHits, mpqHits)
	}
	if qcHits < 28 {
		t.Errorf("Qcluster found only %d of 30 in-blob results", qcHits)
	}
}

func TestMVSubspacesBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := twoBlobs(rng, 40, 20, feature.Dim)
	m := NewMVSubspaces(store.FromVectors(pts), 0)
	if m.Name() != "MV" {
		t.Errorf("name = %q", m.Name())
	}
	vps := m.Viewpoints()
	if len(vps) != 4 {
		t.Fatalf("%d viewpoints, want 4", len(vps))
	}
	got := m.Search(20)
	if len(got) != 20 {
		t.Fatalf("Search returned %d", len(got))
	}
	seen := map[int]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatal("duplicate in MV results")
		}
		seen[id] = true
	}
	if got2 := m.Search(0); got2 != nil {
		t.Error("k=0 not nil")
	}
}

// TestMVSubspaceFallbackOnOddDim: a corpus whose dimension is not the 37-d
// feature layout — an imported embedding set, say 128-d — has no feature
// families, so MV must take the explicit single-viewpoint fallback and still
// behave as a full retriever (searching, deduplicating, learning from
// feedback).
func TestMVSubspaceFallbackOnOddDim(t *testing.T) {
	for _, dim := range []int{8, 128} {
		rng := rand.New(rand.NewSource(11))
		pts := twoBlobs(rng, 20, 0, dim)
		st := store.FromVectors(pts)
		m := NewMVSubspaces(st, 0)
		if m.HasSubspaces() {
			t.Fatalf("dim %d: subspace viewpoints built for a non-37-d corpus", dim)
		}
		if vps := m.Viewpoints(); len(vps) != 1 || vps[0] != "full" {
			t.Fatalf("dim %d: viewpoints %q, want [full]", dim, vps)
		}
		got := m.Search(10)
		if len(got) != 10 {
			t.Fatalf("dim %d: Search returned %d", dim, len(got))
		}
		// The single full-space viewpoint must rank exactly like a plain
		// full-space scan from the same query point.
		want := scanTopK(st, 10, st.At(0), nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dim %d: rank %d: got %d, want %d", dim, i, got[i], want[i])
			}
		}
		// Feedback still moves the surviving viewpoint.
		m.Feedback(got[:5])
		if after := m.Search(10); len(after) != 10 {
			t.Fatalf("dim %d: post-feedback Search returned %d", dim, len(after))
		}
	}
	// The 37-d layout keeps all four viewpoints.
	rng := rand.New(rand.NewSource(11))
	m := NewMVSubspaces(store.FromVectors(twoBlobs(rng, 10, 0, feature.Dim)), 0)
	if !m.HasSubspaces() {
		t.Fatal("37-d corpus lost its subspace viewpoints")
	}
}

func TestMVChannels(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := twoBlobs(rng, 30, 10, 6)
	channels := map[img.Channel]*store.FeatureStore{}
	for _, ch := range img.AllChannels {
		// Synthesize channel tables as perturbed copies.
		tbl := make([]vec.Vector, len(pts))
		for i, p := range pts {
			q := p.Clone()
			q.ScaleInPlace(1 + 0.1*float64(ch))
			tbl[i] = q
		}
		channels[ch] = store.FromVectors(tbl)
	}
	m, err := NewMVChannels(channels, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Search(15)
	if len(got) != 15 {
		t.Fatalf("Search returned %d", len(got))
	}
	m.Feedback([]int{40, 41})
	got2 := m.Search(15)
	cross := 0
	for _, id := range got2 {
		if id >= 30 && id < 60 {
			cross++
		}
	}
	if cross == 0 {
		t.Error("MV feedback did not move any viewpoint toward the relevant blob")
	}

	// Missing channel is an error.
	delete(channels, img.ChannelGray)
	if _, err := NewMVChannels(channels, 0); err == nil {
		t.Error("missing channel accepted")
	}
	// Bad query index is an error.
	channels[img.ChannelGray] = channels[img.ChannelOriginal]
	if _, err := NewMVChannels(channels, -1); err == nil {
		t.Error("negative query image accepted")
	}
}

func TestMVSingleViewpointConfinement(t *testing.T) {
	// The Table-1 phenomenon in miniature: with two relevant blobs far apart,
	// MV (whose every viewpoint is a single-neighborhood k-NN around one
	// query point) cannot cover both blobs evenly even after feedback,
	// because each viewpoint's centroid collapses between them.
	rng := rand.New(rand.NewSource(13))
	pts := twoBlobs(rng, 40, 40, feature.Dim)
	m := NewMVSubspaces(store.FromVectors(pts), 0)
	m.Feedback([]int{0, 1, 2, 45, 46, 47})
	got := m.Search(40)
	var blob0, blob1 int
	for _, id := range got {
		switch {
		case id < 40:
			blob0++
		case id < 80:
			blob1++
		}
	}
	// Confinement: MV must NOT cover both blobs well. Either a blob is
	// missed entirely, or overall precision is poor because each viewpoint's
	// collapsed centroid drags in midpoint noise. (QD's corresponding test in
	// internal/core retrieves both blobs at ≥90% precision on this geometry.)
	if blob0 >= 15 && blob1 >= 15 {
		t.Errorf("MV covered both distant blobs (%d+%d of 40) — single-neighborhood confinement not reproduced", blob0, blob1)
	}
}

func TestMVSearchKLargerThanCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	pts := twoBlobs(rng, 5, 0, 4) // corpus of 10
	m := NewMVSubspaces(store.FromVectors(pts), 0)
	got := m.Search(50)
	// The interleaving loop must terminate once every ranking is exhausted
	// and return each image exactly once.
	if len(got) != 10 {
		t.Fatalf("returned %d of 10", len(got))
	}
	seen := map[int]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatal("duplicate")
		}
		seen[id] = true
	}
}

func TestMPQSingleRelevantImage(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := twoBlobs(rng, 20, 0, 3)
	m := NewMPQ(store.FromVectors(pts), 0, 5, rand.New(rand.NewSource(22)))
	m.Feedback([]int{25}) // one relevant image: one representative
	if len(m.reps) != 1 {
		t.Fatalf("%d reps from one relevant image", len(m.reps))
	}
	got := m.Search(5)
	for _, id := range got {
		if id < 20 {
			t.Errorf("result %d from the wrong blob", id)
		}
	}
	// Feedback with only invalid ids leaves the query unchanged.
	before := m.Search(5)
	m.Feedback([]int{-5, 10000})
	after := m.Search(5)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("invalid feedback changed the query")
		}
	}
}

func TestAllRetrieversSatisfyInterface(t *testing.T) {
	var _ FeedbackRetriever = (*PlainKNN)(nil)
	var _ FeedbackRetriever = (*QPM)(nil)
	var _ FeedbackRetriever = (*TreeKNN)(nil)
	var _ FeedbackRetriever = (*MPQ)(nil)
	var _ FeedbackRetriever = (*Qcluster)(nil)
	var _ FeedbackRetriever = (*MV)(nil)
	var _ FeedbackRetriever = (*Rocchio)(nil)
}
