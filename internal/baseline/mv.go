package baseline

import (
	"fmt"

	"qdcbir/internal/feature"
	"qdcbir/internal/img"
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// Viewpoint is one of MV's query perspectives: a complete representation of
// the database (its own feature store and optional dimension weights) plus
// the viewpoint's current query point, which QPM-style feedback moves every
// round.
type Viewpoint struct {
	Name    string
	Weights vec.Vector // nil = unweighted Euclidean
	st      *store.FeatureStore
	query   vec.Vector
}

// MV implements the Multiple Viewpoints technique (§2, [5]) as the paper's
// experiments use it (§5.2): the query is evaluated under four colour
// channels — original, colour-negative, black-white, black-white negative —
// and "the images returned by the four color channels [are combined] to form
// the final result set". Each viewpoint refines its own query point from
// relevance feedback; the combination interleaves the per-viewpoint rankings
// so every channel contributes to the fixed-size result.
//
// MV can reach multiple *adjacent* clusters (images differing in one visual
// aspect), but every viewpoint still performs single-neighborhood k-NN, so
// semantically related clusters far apart in every representation stay out of
// reach — the behaviour Table 1 quantifies.
type MV struct {
	viewpoints []*Viewpoint
	relevant   []int
	relSet     map[int]bool
}

// NewMVChannels builds image-mode MV from per-channel corpus feature stores
// (dataset.Corpus.ChannelStores) and the initial query image. It returns an
// error if a channel store is missing or sized inconsistently.
func NewMVChannels(channels map[img.Channel]*store.FeatureStore, queryImage int) (*MV, error) {
	m := &MV{relSet: make(map[int]bool)}
	for _, ch := range img.AllChannels {
		st, ok := channels[ch]
		if !ok || st == nil {
			return nil, fmt.Errorf("baseline: missing channel %v", ch)
		}
		if queryImage < 0 || queryImage >= st.Len() {
			return nil, fmt.Errorf("baseline: query image %d outside corpus of %d", queryImage, st.Len())
		}
		m.viewpoints = append(m.viewpoints, &Viewpoint{
			Name:  ch.String(),
			st:    st,
			query: st.At(queryImage).Clone(),
		})
	}
	return m, nil
}

// NewMVSubspaces builds vector-mode MV: when no per-channel representations
// exist (synthetic vector corpora), the viewpoints are the three feature-
// family subspaces plus the full space, following the subset-of-features
// formulation of [5].
//
// The family masks describe the paper's 37-d feature layout. A corpus of any
// other dimension — a scalability sweep or an imported embedding set — has no
// feature families to project onto, so MV degenerates to its one meaningful
// viewpoint, the full space. (Keeping four unweighted copies would return the
// same interleaved ranking at four times the scan cost.) HasSubspaces reports
// which shape was built.
func NewMVSubspaces(st *store.FeatureStore, queryImage int) *MV {
	m := &MV{relSet: make(map[int]bool)}
	families := []struct {
		name string
		mask vec.Vector
	}{
		{"full", nil},
		{"color", feature.FamilyColor.Mask()},
		{"texture", feature.FamilyTexture.Mask()},
		{"edge", feature.FamilyEdge.Mask()},
	}
	if st.Dim() != feature.Dim {
		families = families[:1] // full space only; see doc comment
	}
	for _, f := range families {
		m.viewpoints = append(m.viewpoints, &Viewpoint{
			Name:    f.name,
			Weights: f.mask,
			st:      st,
			query:   st.At(queryImage).Clone(),
		})
	}
	return m
}

// HasSubspaces reports whether the retriever carries the feature-family
// subspace viewpoints (37-d corpora) or fell back to the single full-space
// viewpoint (any other dimension).
func (m *MV) HasSubspaces() bool { return len(m.viewpoints) > 1 }

// Name implements FeedbackRetriever.
func (m *MV) Name() string { return "MV" }

// Viewpoints exposes the viewpoint names for reports.
func (m *MV) Viewpoints() []string {
	out := make([]string, len(m.viewpoints))
	for i, v := range m.viewpoints {
		out[i] = v.Name
	}
	return out
}

// Search retrieves per-viewpoint rankings and interleaves them round-robin
// (dropping duplicates) until k images are collected.
func (m *MV) Search(k int) []int {
	if k <= 0 || len(m.viewpoints) == 0 {
		return nil
	}
	// Each viewpoint contributes its own top-k ranking; interleaving then
	// needs at most k from each. Each ranking is a capped linear scan over
	// the viewpoint's store.
	rankings := make([][]int, len(m.viewpoints))
	for i, v := range m.viewpoints {
		rankings[i] = scanTopK(v.st, k, v.query, v.Weights)
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for pos := 0; len(out) < k; pos++ {
		advanced := false
		for _, r := range rankings {
			if pos < len(r) {
				advanced = true
				if !seen[r[pos]] {
					seen[r[pos]] = true
					out = append(out, r[pos])
					if len(out) == k {
						break
					}
				}
			}
		}
		if !advanced {
			break // every ranking exhausted
		}
	}
	return out
}

// Feedback moves every viewpoint's query point to the centroid of the
// relevant images under that viewpoint's representation.
func (m *MV) Feedback(relevant []int) {
	for _, id := range relevant {
		if !m.relSet[id] {
			m.relSet[id] = true
			m.relevant = append(m.relevant, id)
		}
	}
	if len(m.relevant) == 0 {
		return
	}
	for _, v := range m.viewpoints {
		pts := gatherPoints(v.st, m.relevant)
		if len(pts) > 0 {
			v.query = vec.Centroid(pts)
		}
	}
}
