package obs

import (
	"testing"
	"time"
)

// TestNilObserverSafe exercises every hook on a nil observer and nil trace —
// the zero-cost-when-nil contract the engine relies on.
func TestNilObserverSafe(t *testing.T) {
	var o *Observer
	if o.Registry() != nil {
		t.Fatal("nil observer must have a nil registry")
	}
	tr := o.StartTrace("session")
	if tr != nil {
		t.Fatal("nil observer must produce a nil trace")
	}
	tr.AddDisplayed(21)
	o.SessionStarted()
	o.SessionHosted()
	o.SessionReleased()
	o.SessionEvicted()
	o.AddFeedbackReads(3)
	o.RoundDone(tr, RoundSpan{})
	o.FinalizeDone(tr, FinalizeSpan{})
	o.KNNDone(time.Millisecond, 5)
	if o.Traces() != nil {
		t.Fatal("nil observer must have no traces")
	}
}

func TestObserverMetricsAndTrace(t *testing.T) {
	o := New(nil)
	tr := o.StartTrace("session")
	o.SessionStarted()
	tr.AddDisplayed(21)
	tr.AddDisplayed(21)
	o.RoundDone(tr, RoundSpan{Round: 1, Marked: 3, PageReads: 4, DurationNS: 2e6})
	o.RoundDone(tr, RoundSpan{Round: 2, Marked: 2, PageReads: 1, DurationNS: 1e6})
	o.FinalizeDone(tr, FinalizeSpan{K: 20, Subqueries: 3, Expansions: 1, PageReads: 7, HeapPops: 40, DurationNS: 5e6})
	o.AddFeedbackReads(2)
	o.KNNDone(3*time.Millisecond, 11)

	snap := o.Registry().Snapshot()
	wantCounters := map[string]uint64{
		MetricSessionsStarted: 1,
		MetricFeedbackRounds:  2,
		MetricFinalizes:       1,
		MetricKNNs:            1,
		MetricFeedbackReads:   4 + 1 + 2,
		MetricFinalReads:      7,
		MetricKNNReads:        11,
		MetricExpansions:      1,
		MetricHeapPops:        40,
	}
	for name, want := range wantCounters {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Histograms[MetricRoundSeconds].Count; got != 2 {
		t.Errorf("round histogram count = %d, want 2", got)
	}
	if got := snap.Histograms[MetricSubqueryFanout].Count; got != 1 {
		t.Errorf("fanout histogram count = %d, want 1", got)
	}

	traces := o.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained traces = %d, want 1", len(traces))
	}
	got := traces[0]
	if got.Kind != "session" || len(got.Rounds) != 2 || got.Finalize == nil {
		t.Fatalf("trace shape wrong: %+v", got)
	}
	// The two Candidates displays between trace start and round 1 belong to
	// round 1; round 2 saw none.
	if got.Rounds[0].RepsDisplayed != 42 || got.Rounds[1].RepsDisplayed != 0 {
		t.Fatalf("reps displayed = %d, %d; want 42, 0", got.Rounds[0].RepsDisplayed, got.Rounds[1].RepsDisplayed)
	}
	if got.Finalize.Subqueries != 3 || got.DurationNS <= 0 {
		t.Fatalf("finalize span not recorded: %+v", got.Finalize)
	}
}

func TestTraceRingBounded(t *testing.T) {
	o := New(nil)
	o.traceCap = 4
	for i := 0; i < 10; i++ {
		tr := o.StartTrace("query")
		o.FinalizeDone(tr, FinalizeSpan{K: i})
	}
	traces := o.Traces()
	if len(traces) != 4 {
		t.Fatalf("ring length = %d, want 4", len(traces))
	}
	// Oldest first: the last four finalizes had K = 6..9.
	for i, tr := range traces {
		if tr.Finalize.K != 6+i {
			t.Fatalf("ring[%d].K = %d, want %d", i, tr.Finalize.K, 6+i)
		}
	}
}

// TestSessionGaugePairing drives the hosted-session transitions and checks
// the gauge nets out.
func TestSessionGaugePairing(t *testing.T) {
	o := New(nil)
	o.SessionHosted()
	o.SessionHosted()
	o.SessionHosted()
	o.SessionEvicted()
	o.SessionReleased()
	snap := o.Registry().Snapshot()
	if got := snap.Gauges[MetricSessionsHosted]; got != 1 {
		t.Fatalf("hosted gauge = %d, want 1", got)
	}
	if got := snap.Counters[MetricSessionsEvicted]; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
}
