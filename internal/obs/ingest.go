package obs

// Ingest/compaction metrics for the segmented epoch/snapshot engine
// (internal/seg). They live in the same Registry the server exports at
// /metrics, so a streaming deployment sees write rates, segment counts, and
// compaction cost next to the query-side telemetry.

// Windowed-digest names the segmented engine feeds: sliding-window latency
// histograms per write-path phase, surfaced via /v1/latency on dynamic
// servers (and mergeable fleet-wide like every other digest).
const (
	DigestSegInsert  = "seg:insert"
	DigestSegDelete  = "seg:delete"
	DigestSegSeal    = "seg:seal"
	DigestSegCompact = "seg:compact"
)

// SegMetrics is the metric set the segmented engine reports into. All
// methods on a nil *SegMetrics are no-ops, preserving the observability
// layer's zero-cost-when-absent contract.
type SegMetrics struct {
	Inserts     *Counter
	Deletes     *Counter
	Seals       *Counter
	SealNS      *Counter
	Compactions *Counter
	CompactNS   *Counter

	Epoch      *Gauge
	Segments   *Gauge
	MemRows    *Gauge
	Tombstones *Gauge
	Live       *Gauge
	Snapshots  *Gauge

	// windows receives per-operation latency samples (insert/delete/seal/
	// compact) as sliding-window digests; nil disables the digests while the
	// counters keep running.
	windows *WindowSet
}

// NewSegMetrics registers (or re-binds, names are idempotent per Registry)
// the segmented-engine metric set. ws, usually the owning Observer's
// WindowSet, receives the write-path latency digests (nil disables them).
func NewSegMetrics(reg *Registry, ws *WindowSet) *SegMetrics {
	return &SegMetrics{
		windows:     ws,
		Inserts:     reg.Counter("qd_seg_inserts_total", "Images inserted into the segmented engine."),
		Deletes:     reg.Counter("qd_seg_deletes_total", "Images tombstoned in the segmented engine."),
		Seals:       reg.Counter("qd_seg_seals_total", "Memtables sealed into immutable segments."),
		SealNS:      reg.Counter("qd_seg_seal_ns_total", "Cumulative wall time spent sealing memtables, in nanoseconds."),
		Compactions: reg.Counter("qd_seg_compactions_total", "Background segment compactions completed."),
		CompactNS:   reg.Counter("qd_seg_compact_ns_total", "Cumulative wall time spent compacting segments, in nanoseconds."),
		Epoch:       reg.Gauge("qd_seg_epoch", "Current snapshot epoch (increments on every published write)."),
		Segments:    reg.Gauge("qd_seg_segments", "Sealed segments in the current snapshot."),
		MemRows:     reg.Gauge("qd_seg_memtable_rows", "Rows in the mutable memtable (including tombstoned ones)."),
		Tombstones:  reg.Gauge("qd_seg_tombstones", "Tombstoned rows still physically present across segments and memtable."),
		Live:        reg.Gauge("qd_seg_live_images", "Live (non-tombstoned) images in the current snapshot."),
		Snapshots:   reg.Gauge("qd_seg_snapshots_pinned", "Snapshots currently pinned by queries or the engine."),
	}
}

// InsertDone records one insert and its wall time. Nil-safe.
func (m *SegMetrics) InsertDone(ns int64) {
	if m == nil {
		return
	}
	m.Inserts.Inc()
	m.windows.Observe(DigestSegInsert, float64(ns)/1e9)
}

// DeleteDone records one delete and its wall time. Nil-safe.
func (m *SegMetrics) DeleteDone(ns int64) {
	if m == nil {
		return
	}
	m.Deletes.Inc()
	m.windows.Observe(DigestSegDelete, float64(ns)/1e9)
}

// SealDone records one memtable seal and its wall time. Nil-safe.
func (m *SegMetrics) SealDone(ns int64) {
	if m == nil {
		return
	}
	m.Seals.Inc()
	m.SealNS.Add(uint64(ns))
	m.windows.Observe(DigestSegSeal, float64(ns)/1e9)
}

// CompactDone records one completed compaction and its wall time. Nil-safe.
func (m *SegMetrics) CompactDone(ns int64) {
	if m == nil {
		return
	}
	m.Compactions.Inc()
	m.CompactNS.Add(uint64(ns))
	m.windows.Observe(DigestSegCompact, float64(ns)/1e9)
}

// State publishes the current snapshot's shape. Nil-safe.
func (m *SegMetrics) State(epoch uint64, segments, memRows, tombstones, live int) {
	if m == nil {
		return
	}
	m.Epoch.Set(int64(epoch))
	m.Segments.Set(int64(segments))
	m.MemRows.Set(int64(memRows))
	m.Tombstones.Set(int64(tombstones))
	m.Live.Set(int64(live))
}

// SnapshotDelta tracks pinned-snapshot count changes. Nil-safe.
func (m *SegMetrics) SnapshotDelta(d int64) {
	if m == nil {
		return
	}
	m.Snapshots.Add(d)
}
