package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable wall clock for driving ring rotation in tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestWindow(slotDur time.Duration, slots int) (*WindowedHistogram, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	w := NewWindowedHistogram([]float64{0.01, 0.1, 1}, slotDur, slots)
	w.SetClock(clk.now)
	return w, clk
}

func TestWindowedHistogramMergesRecentSlots(t *testing.T) {
	w, clk := newTestWindow(time.Second, 16)
	w.Observe(0.005) // slot 0
	clk.advance(time.Second)
	w.Observe(0.05) // slot 1
	clk.advance(time.Second)
	w.Observe(0.5) // slot 2

	all := w.Snapshot(10 * time.Second)
	if all.Count != 3 {
		t.Fatalf("10s window count = %d, want 3", all.Count)
	}
	if got := all.Sum; got < 0.554 || got > 0.556 {
		t.Errorf("sum = %v", got)
	}
	// Cumulative bucket shape: 1 sample <= 0.01, 2 <= 0.1, 3 <= 1.
	wantCum := []uint64{1, 2, 3}
	for i, b := range all.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d cum = %d, want %d", i, b.Count, wantCum[i])
		}
	}

	// A 1-slot window sees only the newest sample.
	one := w.Snapshot(time.Second)
	if one.Count != 1 || one.Sum != 0.5 {
		t.Errorf("1s window = count %d sum %v, want the newest sample only", one.Count, one.Sum)
	}
	// A 2-slot window sees the two newest.
	two := w.Snapshot(2 * time.Second)
	if two.Count != 2 {
		t.Errorf("2s window count = %d, want 2", two.Count)
	}
}

func TestWindowedHistogramExpiry(t *testing.T) {
	w, clk := newTestWindow(time.Second, 4)
	w.Observe(0.05)
	if got := w.Snapshot(4 * time.Second).Count; got != 1 {
		t.Fatalf("fresh sample invisible: count = %d", got)
	}
	// Advance past the whole ring without observing: the sample expires both
	// by tick distance and by slot reuse.
	clk.advance(10 * time.Second)
	if got := w.Snapshot(4 * time.Second).Count; got != 0 {
		t.Errorf("expired sample still visible: count = %d", got)
	}
	w.Observe(0.5)
	if got := w.Snapshot(time.Second).Count; got != 1 {
		t.Errorf("post-gap sample invisible: count = %d", got)
	}
}

func TestWindowedHistogramSlotReuseClearsOldCounts(t *testing.T) {
	w, clk := newTestWindow(time.Second, 3)
	w.Observe(0.005)
	w.Observe(0.005)
	// Walk forward one slot at a time, observing each tick, until the ring
	// wraps over the original slot.
	for i := 0; i < 3; i++ {
		clk.advance(time.Second)
		w.Observe(0.5)
	}
	// Window covering the entire ring must not double-count the overwritten
	// slot's two initial samples.
	got := w.Snapshot(3 * time.Second)
	if got.Count != 3 {
		t.Errorf("post-wrap count = %d, want 3 (one per surviving slot)", got.Count)
	}
}

func TestWindowedHistogramQuantiles(t *testing.T) {
	w, _ := newTestWindow(time.Second, 8)
	for i := 0; i < 90; i++ {
		w.Observe(0.005) // <= 0.01
	}
	for i := 0; i < 10; i++ {
		w.Observe(0.5) // (0.1, 1]
	}
	hs := w.Snapshot(time.Second)
	if p50 := hs.Quantile(0.5); p50 <= 0 || p50 > 0.01 {
		t.Errorf("p50 = %v, want within first bucket", p50)
	}
	if p99 := hs.Quantile(0.99); p99 <= 0.1 || p99 > 1 {
		t.Errorf("p99 = %v, want within last bucket", p99)
	}
}

func TestWindowedHistogramConcurrent(t *testing.T) {
	w := NewWindowedHistogram(nil, time.Millisecond, 8)
	var wg sync.WaitGroup
	const goroutines, per = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.Observe(0.001)
				if i%100 == 0 {
					_ = w.Snapshot(time.Second)
				}
			}
		}()
	}
	wg.Wait()
	// Samples may have aged out of short windows, but the ring plus a long
	// window must retain everything observed within the last second of a
	// sub-second test run... which is all of it unless the test stalls; use
	// the full-ring window to be safe.
	got := w.Snapshot(8 * time.Millisecond)
	if got.Count > goroutines*per {
		t.Errorf("window over-counts: %d > %d", got.Count, goroutines*per)
	}
}

func TestWindowSetReportAndLabels(t *testing.T) {
	// Real clock: all samples land inside the 1m window during the test.
	ws := NewWindowSet(time.Second, 16)
	ws.Observe(DigestRound, 0.02)
	ws.Observe(DigestRound, 0.02)
	ws.Observe(DigestFinalize, 0.2)

	rep := ws.Report(nil)
	if len(rep) != 2 {
		t.Fatalf("report digests = %d, want 2", len(rep))
	}
	round, ok := rep[DigestRound]
	if !ok {
		t.Fatalf("report missing %q: %v", DigestRound, rep)
	}
	for _, label := range []string{"1m", "5m", "15m"} {
		if _, ok := round[label]; !ok {
			t.Errorf("round digest missing window %q", label)
		}
	}
	if round["15m"].Count == 0 {
		t.Error("round 15m window empty")
	}
	if rep[DigestFinalize]["15m"].P50 <= 0.1 {
		t.Errorf("finalize p50 = %v, want > 0.1", rep[DigestFinalize]["15m"].P50)
	}

	if got := WindowLabel(5 * time.Minute); got != "5m" {
		t.Errorf("WindowLabel(5m) = %q", got)
	}
	if got := WindowLabel(90 * time.Second); got != "1m30s" {
		t.Errorf("WindowLabel(90s) = %q", got)
	}
}

func TestWindowSetNilSafe(t *testing.T) {
	var ws *WindowSet
	ws.Observe("x", 1)
	if d := ws.Digest("x"); d != nil {
		t.Error("nil set returned a digest")
	}
	if rep := ws.Report(nil); len(rep) != 0 {
		t.Errorf("nil set report = %v", rep)
	}
	var o *Observer
	if o.Windows() != nil {
		t.Error("nil observer returned a window set")
	}
}
