package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// exportFixtureTrace builds a completed 3-round feedback-session trace
// through the Observer API, with realistic span offsets.
func exportFixtureTrace(t *testing.T) (*Observer, *Trace) {
	t.Helper()
	o := New(nil)
	tr := o.StartTrace("session")
	tr.SetLabel("req-42")
	off := int64(0)
	for r := 1; r <= 3; r++ {
		tr.AddDisplayed(21)
		o.RoundDone(tr, RoundSpan{
			Round: r, OffsetNS: off, DurationNS: 1e6,
			Marked: 2, Relevant: 2 * r, Subqueries: r, PageReads: 3,
		})
		off += 2e6
	}
	fin := FinalizeSpan{
		K: 20, OffsetNS: off, Subqueries: 2, PageReads: 9, HeapPops: 40,
		Subspans: []SubquerySpan{
			{Node: 7, OffsetNS: off + 1e5, DurationNS: 2e6, QueryImages: 3, Allocated: 12, HeapPops: 25, NodesRead: 4, PageAccesses: 4},
			{Node: 9, OffsetNS: off + 2e5, DurationNS: 3e6, QueryImages: 3, Allocated: 8, HeapPops: 15, NodesRead: 3, PageAccesses: 3},
		},
		MergeOffsetNS: off + 4e6,
		MergeNS:       5e5,
		DurationNS:    5e6,
	}
	o.FinalizeDone(tr, fin)
	traces := o.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces", len(traces))
	}
	// FinalizeDone stamped the real (sub-microsecond) wall time; stretch the
	// root to cover the synthetic child offsets, as a live engine's would.
	traces[0].DurationNS = off + 6e6
	return o, traces[0]
}

// eventFor finds the first "X" event whose name matches.
func eventFor(events []TraceEvent, name string) *TraceEvent {
	for i := range events {
		if events[i].Ph == "X" && events[i].Name == name {
			return &events[i]
		}
	}
	return nil
}

// contains reports whether outer's [ts, ts+dur] covers inner's.
func contains(outer, inner *TraceEvent) bool {
	return outer.TS <= inner.TS && inner.TS+inner.Dur <= outer.TS+outer.Dur
}

func TestPerfettoExportNesting(t *testing.T) {
	_, tr := exportFixtureTrace(t)
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, []*Trace{tr}); err != nil {
		t.Fatal(err)
	}
	// The export must parse as trace-event JSON.
	var file TraceEventFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	events := file.TraceEvents
	for _, e := range events {
		if e.Ph != "X" && e.Ph != "M" {
			t.Errorf("unexpected phase %q in %+v", e.Ph, e)
		}
		if e.Ph == "X" && e.Dur < 0 {
			t.Errorf("negative duration: %+v", e)
		}
	}

	session := eventFor(events, "session")
	if session == nil {
		t.Fatal("no session event")
	}
	// Rounds nest within the session.
	for _, name := range []string{"round 1", "round 2", "round 3"} {
		r := eventFor(events, name)
		if r == nil {
			t.Fatalf("missing %q event", name)
		}
		if !contains(session, r) {
			t.Errorf("%s [%v +%v] not within session [%v +%v]", name, r.TS, r.Dur, session.TS, session.Dur)
		}
	}
	// Finalize nests within the session; subqueries and merge within finalize.
	fin := eventFor(events, "finalize")
	if fin == nil {
		t.Fatal("no finalize event")
	}
	if !contains(session, fin) {
		t.Error("finalize not within session")
	}
	subs := 0
	for i := range events {
		e := &events[i]
		if e.Ph == "X" && e.Cat == "subquery" {
			subs++
			if !contains(fin, e) {
				t.Errorf("subquery %q not within finalize", e.Name)
			}
			if e.TID == mainTID {
				t.Errorf("parallel subquery %q on the main track", e.Name)
			}
		}
	}
	if subs != 2 {
		t.Errorf("subquery events = %d, want 2", subs)
	}
	merge := eventFor(events, "merge")
	if merge == nil || !contains(fin, merge) {
		t.Error("merge event missing or not within finalize")
	}
	// The correlation label survives into the track name and args.
	if session.Args["label"] != "req-42" {
		t.Errorf("session args label = %v", session.Args["label"])
	}
}

func TestPerfettoExportEmptyAndNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var file TraceEventFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	if file.TraceEvents == nil || len(file.TraceEvents) != 0 {
		t.Errorf("empty export events = %#v", file.TraceEvents)
	}
	// Nil traces inside the slice are skipped.
	if evs := PerfettoEvents([]*Trace{nil}); len(evs) != 0 {
		t.Errorf("nil trace produced events: %v", evs)
	}
	// A query-kind trace without rounds exports cleanly.
	o := New(nil)
	tr := o.StartTrace("query")
	o.FinalizeDone(tr, FinalizeSpan{K: 5, Subqueries: 1, DurationNS: 1e6, Subspans: []SubquerySpan{{Node: 1, DurationNS: 1e5}}})
	evs := PerfettoEvents(o.Traces())
	if eventFor(evs, "query") == nil {
		t.Error("query trace missing root event")
	}
}

func TestTracesFiltered(t *testing.T) {
	o := New(nil)
	for i := 0; i < 5; i++ {
		kind := "session"
		if i%2 == 1 {
			kind = "query"
		}
		tr := o.StartTrace(kind)
		o.FinalizeDone(tr, FinalizeSpan{K: 1, DurationNS: int64(i)})
	}
	all := o.TracesFiltered("", 0)
	if len(all) != 5 {
		t.Fatalf("unfiltered = %d traces", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID < all[i].ID {
			t.Fatalf("not newest-first: %d before %d", all[i-1].ID, all[i].ID)
		}
	}
	if got := o.TracesFiltered("", 2); len(got) != 2 || got[0].ID != all[0].ID {
		t.Errorf("limit=2 returned %d traces starting at %v", len(got), got[0].ID)
	}
	queries := o.TracesFiltered("query", 0)
	if len(queries) != 2 {
		t.Fatalf("kind=query returned %d", len(queries))
	}
	for _, tr := range queries {
		if tr.Kind != "query" {
			t.Errorf("kind filter leaked %q", tr.Kind)
		}
	}
	if got := o.TracesFiltered("session", 1); len(got) != 1 || got[0].Kind != "session" {
		t.Errorf("kind+limit = %+v", got)
	}
	var nilObs *Observer
	if nilObs.TracesFiltered("", 0) != nil {
		t.Error("nil observer returned traces")
	}
}
