package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// This file renders retained traces in the Chrome trace-event JSON format,
// which Perfetto (ui.perfetto.dev) and chrome://tracing open directly. Each
// trace becomes one process (pid = trace ID): the strictly nested spans —
// session, feedback rounds, finalize, merge — share the main track (tid 0),
// where complete ("X") events nest by time containment, while the finalize
// phase's localized subqueries each get their own thread track because they
// run in parallel and would otherwise partially overlap as siblings. The
// span offsets recorded by the engine (OffsetNS fields, relative to the
// trace start) become absolute microsecond timestamps.

// TraceEvent is one Chrome trace-event record. Only the fields the complete
// ("X") and metadata ("M") phases need are modeled.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds, "X" only
	PID  uint64         `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceEventFile is the JSON-object form of the trace-event format.
type TraceEventFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// mainTID is the per-trace track holding the strictly nested spans.
const mainTID = 0

// us converts nanoseconds to trace-event microseconds.
func us(ns int64) float64 { return float64(ns) / 1e3 }

// PerfettoEvents converts retained traces to trace-event records.
func PerfettoEvents(traces []*Trace) []TraceEvent {
	var events []TraceEvent
	for _, t := range traces {
		if t == nil {
			continue
		}
		base := t.Start.UnixNano()
		label := t.Kind + " #" + strconv.FormatUint(t.ID, 10)
		if t.Label != "" {
			label += " (" + t.Label + ")"
		}
		events = append(events, TraceEvent{
			Name: "process_name", Ph: "M", PID: t.ID, TID: mainTID,
			Args: map[string]any{"name": label},
		})
		events = append(events, TraceEvent{
			Name: t.Kind, Cat: "query", Ph: "X",
			TS: us(base), Dur: us(t.DurationNS), PID: t.ID, TID: mainTID,
			Args: map[string]any{"id": t.ID, "label": t.Label, "rounds": len(t.Rounds)},
		})
		for _, r := range t.Rounds {
			events = append(events, TraceEvent{
				Name: fmt.Sprintf("round %d", r.Round), Cat: "feedback", Ph: "X",
				TS: us(base + r.OffsetNS), Dur: us(r.DurationNS), PID: t.ID, TID: mainTID,
				Args: map[string]any{
					"marked": r.Marked, "relevant": r.Relevant,
					"subqueries": r.Subqueries, "reps_displayed": r.RepsDisplayed,
					"page_reads": r.PageReads,
				},
			})
		}
		if f := t.Finalize; f != nil {
			events = append(events, TraceEvent{
				Name: "finalize", Cat: "finalize", Ph: "X",
				TS: us(base + f.OffsetNS), Dur: us(f.DurationNS), PID: t.ID, TID: mainTID,
				Args: map[string]any{
					"k": f.K, "subqueries": f.Subqueries, "expansions": f.Expansions,
					"page_reads": f.PageReads, "heap_pops": f.HeapPops,
				},
			})
			for i, sq := range f.Subspans {
				tid := uint64(i + 1) // one track per parallel subquery
				events = append(events, TraceEvent{
					Name: "thread_name", Ph: "M", PID: t.ID, TID: tid,
					Args: map[string]any{"name": fmt.Sprintf("subquery %d", i+1)},
				})
				events = append(events, TraceEvent{
					Name: fmt.Sprintf("subquery node=%d", sq.Node), Cat: "subquery", Ph: "X",
					TS: us(base + sq.OffsetNS), Dur: us(sq.DurationNS), PID: t.ID, TID: tid,
					Args: map[string]any{
						"query_images": sq.QueryImages, "allocated": sq.Allocated,
						"expanded": sq.Expanded, "heap_pops": sq.HeapPops,
						"nodes_read": sq.NodesRead, "page_accesses": sq.PageAccesses,
						"quantized": sq.Quantized, "rerank_fallbacks": sq.RerankFallbacks,
					},
				})
				if sq.Quantized && sq.ScanNS > 0 {
					// Two-phase split as nested child events: the sweep runs
					// first, the rerank follows (retries fold into the phase
					// they belong to, so the children cover the real work
					// even if they undershoot the parent's wall time).
					events = append(events, TraceEvent{
						Name: "scan", Cat: "subquery", Ph: "X",
						TS: us(base + sq.OffsetNS), Dur: us(sq.ScanNS), PID: t.ID, TID: tid,
						Args: map[string]any{"phase": "quantized sweep"},
					})
					events = append(events, TraceEvent{
						Name: "rerank", Cat: "subquery", Ph: "X",
						TS: us(base + sq.OffsetNS + sq.ScanNS), Dur: us(sq.RerankNS), PID: t.ID, TID: tid,
						Args: map[string]any{"phase": "exact rerank"},
					})
				}
			}
			events = append(events, TraceEvent{
				Name: "merge", Cat: "finalize", Ph: "X",
				TS: us(base + f.MergeOffsetNS), Dur: us(f.MergeNS), PID: t.ID, TID: mainTID,
			})
		}
	}
	return events
}

// WritePerfetto writes the traces as a Chrome/Perfetto trace-event JSON
// object, loadable as-is by ui.perfetto.dev or chrome://tracing.
func WritePerfetto(w io.Writer, traces []*Trace) error {
	events := PerfettoEvents(traces)
	if events == nil {
		events = []TraceEvent{}
	}
	return json.NewEncoder(w).Encode(TraceEventFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// PerfettoStitchedEvents converts stitched cross-process traces to
// trace-event records. Each trace is one process (pid = trace ID) whose
// threads are the participating processes: tid 0 is the router's track, tid
// s+1 is shard s's. Span offsets are already on one clock (the router's), so
// nesting within a track is plain time containment, as in the single-node
// export.
func PerfettoStitchedEvents(traces []*Stitched) []TraceEvent {
	var events []TraceEvent
	for _, t := range traces {
		if t == nil {
			continue
		}
		base := t.Start.UnixNano()
		label := "routed " + t.Kind + " (" + t.RequestID + ")"
		events = append(events, TraceEvent{
			Name: "process_name", Ph: "M", PID: t.ID, TID: mainTID,
			Args: map[string]any{"name": label},
		})
		rootArgs := map[string]any{"request_id": t.RequestID, "shards": t.Shards}
		if t.Error != "" {
			rootArgs["error"] = t.Error
		}
		events = append(events, TraceEvent{
			Name: "routed " + t.Kind, Cat: "router", Ph: "X",
			TS: us(base), Dur: us(t.DurationNS), PID: t.ID, TID: mainTID,
			Args: rootArgs,
		})
		named := map[int]bool{0: true}
		events = append(events, TraceEvent{
			Name: "thread_name", Ph: "M", PID: t.ID, TID: mainTID,
			Args: map[string]any{"name": trackName(0)},
		})
		for _, sp := range t.Spans {
			tid := uint64(sp.Track)
			if !named[sp.Track] {
				named[sp.Track] = true
				events = append(events, TraceEvent{
					Name: "thread_name", Ph: "M", PID: t.ID, TID: tid,
					Args: map[string]any{"name": trackName(sp.Track)},
				})
			}
			cat := "router"
			if sp.Track > 0 {
				cat = "shard"
			}
			events = append(events, TraceEvent{
				Name: sp.Name, Cat: cat, Ph: "X",
				TS: us(base + sp.OffsetNS), Dur: us(sp.DurationNS), PID: t.ID, TID: tid,
				Args: sp.Args,
			})
		}
	}
	return events
}

// WritePerfettoStitched writes stitched traces in the Chrome/Perfetto
// trace-event JSON form.
func WritePerfettoStitched(w io.Writer, traces []*Stitched) error {
	events := PerfettoStitchedEvents(traces)
	if events == nil {
		events = []TraceEvent{}
	}
	return json.NewEncoder(w).Encode(TraceEventFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
