package obs

import (
	"context"
	"time"
)

// Trace is the span record of one query's lifetime: every feedback round's
// descent plus the finalize phase. Traces are produced by the engine (one per
// session or QueryByExamples call), completed at finalize, and retained in
// the Observer's ring for JSON export (GET /v1/traces).
//
// A Trace is written by the single goroutine driving its session and becomes
// immutable once the Observer records it; marshaling retained traces is
// therefore safe. All methods are safe on a nil receiver so uninstrumented
// sessions can carry a nil trace.
type Trace struct {
	ID    uint64    `json:"id"`
	Kind  string    `json:"kind"` // "session" (feedback loop) or "query" (QueryByExamples)
	Start time.Time `json:"start"`
	// DurationNS is the wall time from StartTrace to the end of finalize.
	DurationNS int64         `json:"duration_ns"`
	Rounds     []RoundSpan   `json:"rounds,omitempty"`
	Finalize   *FinalizeSpan `json:"finalize,omitempty"`
	// Label is an optional correlation key (the server's request or session
	// id) linking this trace to log lines and response headers.
	Label string `json:"label,omitempty"`

	// displayed accumulates representatives shown since the last feedback
	// round; RoundDone folds it into the round's span.
	displayed int
}

// SetLabel attaches a correlation key to the trace; nil-safe.
func (t *Trace) SetLabel(label string) {
	if t != nil {
		t.Label = label
	}
}

// SinceStart returns the nanoseconds elapsed since the trace opened — the
// offset a span starting now should record. Returns 0 on a nil trace, so
// uninstrumented paths can compute offsets unconditionally cheaply guarded by
// the observer nil-check.
func (t *Trace) SinceStart() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.Start).Nanoseconds()
}

// traceLabelKey carries a correlation label through a context.
type traceLabelKey struct{}

// WithTraceLabel returns a context carrying a correlation label (the server's
// request id). The engine copies it onto any trace it opens under that
// context, linking the trace to the request's log lines and response headers.
func WithTraceLabel(ctx context.Context, label string) context.Context {
	return context.WithValue(ctx, traceLabelKey{}, label)
}

// TraceLabelFromContext extracts the correlation label, or "" when absent.
func TraceLabelFromContext(ctx context.Context) string {
	label, _ := ctx.Value(traceLabelKey{}).(string)
	return label
}

// AddDisplayed notes n representatives shown to the user (one Candidates
// display); the next feedback round's span absorbs the total.
func (t *Trace) AddDisplayed(n int) {
	if t != nil {
		t.displayed += n
	}
}

// RoundSpan records one relevance-feedback round: the user cost (how many
// representatives they had to look at), the marks, and the descent's tree
// I/O — the per-round quantities the paper's §5.2.2 cost model bounds.
type RoundSpan struct {
	Round         int    `json:"round"`          // 1-based
	OffsetNS      int64  `json:"offset_ns"`      // span start relative to the trace start
	Marked        int    `json:"marked"`         // images marked this round
	Relevant      int    `json:"relevant"`       // panel size after the round
	Subqueries    int    `json:"subqueries"`     // frontier width after the round
	RepsDisplayed int    `json:"reps_displayed"` // representatives shown since the previous round
	NodesVisited  uint64 `json:"nodes_visited"`  // RFS node accesses (hits + misses) since the previous round
	PageReads     uint64 `json:"page_reads"`     // simulated disk reads since the previous round
	DurationNS    int64  `json:"duration_ns"`    // Feedback call wall time
}

// SubquerySpan records one localized k-NN subquery of the finalize phase.
type SubquerySpan struct {
	Node         uint64 `json:"node"`          // page ID of the anchor subcluster
	OffsetNS     int64  `json:"offset_ns"`     // span start relative to the trace start
	QueryImages  int    `json:"query_images"`  // relevant images forming the local multipoint query
	Allocated    int    `json:"allocated"`     // result slots allocated (§3.4 proportional share)
	Expanded     bool   `json:"expanded"`      // §3.3 boundary expansion widened the search
	HeapPops     uint64 `json:"heap_pops"`     // best-first queue pops
	NodesRead    uint64 `json:"nodes_read"`    // tree nodes expanded
	PageAccesses uint64 `json:"page_accesses"` // page-access trace length (replayed into the session cache)
	// Quantized marks a subquery answered by the SQ8 two-phase scan; ScanNS
	// and RerankNS split its wall time into the quantized sweep and the
	// exact rerank, and RerankFallbacks counts guarantee failures that
	// widened the candidate set.
	Quantized       bool   `json:"quantized,omitempty"`
	ScanNS          int64  `json:"scan_ns,omitempty"`
	RerankNS        int64  `json:"rerank_ns,omitempty"`
	RerankFallbacks uint64 `json:"rerank_fallbacks,omitempty"`
	DurationNS      int64  `json:"duration_ns"`
}

// FinalizeSpan records the final localized k-NN phase: fan-out, per-subquery
// effort, and the serial merge.
type FinalizeSpan struct {
	K          int    `json:"k"`
	OffsetNS   int64  `json:"offset_ns"`  // span start relative to the trace start
	Subqueries int    `json:"subqueries"` // fan-out (number of localized subqueries)
	Expansions int    `json:"expansions"` // §3.3 boundary expansions
	PageReads  uint64 `json:"page_reads"` // simulated disk reads of the whole phase (incl. top-up)
	HeapPops   uint64 `json:"heap_pops"`  // queue pops across all subqueries (incl. top-up)
	// RerankFallbacks totals the quantized-scan guarantee failures across
	// all subqueries and the top-up pass (zero on exact-path engines).
	RerankFallbacks uint64         `json:"rerank_fallbacks,omitempty"`
	Subspans        []SubquerySpan `json:"subqueries_detail,omitempty"`
	// MergeOffsetNS is the serial merge + top-up start relative to the trace
	// start; MergeNS is its wall time.
	MergeOffsetNS int64 `json:"merge_offset_ns"`
	MergeNS       int64 `json:"merge_ns"`
	DurationNS    int64 `json:"duration_ns"`
}
