package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestRemoteRecorderNilSafe(t *testing.T) {
	var rec *RemoteRecorder
	rec.Span("x", time.Now(), nil) // must not panic
	if rec.Trace() != nil {
		t.Fatal("nil recorder must yield nil trace")
	}
}

func TestRemoteRecorderOffsets(t *testing.T) {
	rec := NewRemoteRecorder()
	start := time.Now()
	rec.Span("work", start, map[string]any{"k": 5})
	tr := rec.Trace()
	if tr == nil || len(tr.Spans) != 1 {
		t.Fatalf("trace: %+v", tr)
	}
	sp := tr.Spans[0]
	if sp.Name != "work" || sp.OffsetNS < 0 || sp.DurationNS < 0 {
		t.Fatalf("span: %+v", sp)
	}
	if tr.DurationNS < sp.OffsetNS+sp.DurationNS {
		t.Fatalf("trace duration %d shorter than its span end %d", tr.DurationNS, sp.OffsetNS+sp.DurationNS)
	}
}

func TestStitchNilSafe(t *testing.T) {
	var st *Stitch
	st.Span("a", 0, 1, nil)
	st.RPC(0, "b", 0, 1, &RemoteTrace{DurationNS: 1})
	if st.RequestID() != "" || st.Since() != 0 {
		t.Fatal("nil stitch accessors must zero")
	}
	if st.ShardBreakdown() != nil || st.Finish(nil) != nil {
		t.Fatal("nil stitch must finish to nil")
	}
}

// TestStitchRPCRebase checks the clock-skew-free re-basing: shard child spans
// land centered inside the RPC window, and spans that would overrun it clamp
// — nesting holds by construction.
func TestStitchRPCRebase(t *testing.T) {
	st := NewStitch(1, "req-1", "knn", 4)
	const (
		rpcOff = int64(1_000_000)  // RPC starts 1ms into the trace
		rpcDur = int64(10_000_000) // and lasts 10ms
	)
	remote := &RemoteTrace{
		DurationNS: 6_000_000, // shard-side handling: 6ms → 4ms slack, 2ms each side
		Spans: []RemoteSpan{
			{Name: "search", OffsetNS: 0, DurationNS: 2_000_000},
			{Name: "overrun", OffsetNS: 10_000_000, DurationNS: 10_000_000},
		},
	}
	st.RPC(2, "POST /v1/shard/search", rpcOff, rpcDur, remote)
	done := st.Finish(nil)
	if len(done.Spans) != 3 {
		t.Fatalf("want RPC + 2 children, got %d spans", len(done.Spans))
	}
	rpc := done.Spans[0]
	if rpc.Track != 3 {
		t.Fatalf("shard 2 must draw on track 3, got %d", rpc.Track)
	}
	if rpc.Args["shard"] != 2 {
		t.Fatalf("rpc args: %+v", rpc.Args)
	}
	child := done.Spans[1]
	if child.Name != "search" || child.Track != 3 {
		t.Fatalf("child: %+v", child)
	}
	// slack/2 = 2ms centering: child offset = 1ms + 2ms + 0.
	if child.OffsetNS != rpcOff+2_000_000 {
		t.Fatalf("child offset %d, want %d", child.OffsetNS, rpcOff+2_000_000)
	}
	end := rpcOff + rpcDur
	over := done.Spans[2]
	if over.OffsetNS > end || over.OffsetNS+over.DurationNS > end {
		t.Fatalf("overrunning child escaped the RPC window: %+v (end %d)", over, end)
	}
	for _, sp := range done.Spans {
		if sp.OffsetNS < rpcOff {
			t.Fatalf("span %q precedes its RPC window: %+v", sp.Name, sp)
		}
	}
}

func TestStitchShardBreakdown(t *testing.T) {
	st := NewStitch(9, "req-9", "query", 2)
	st.Span("fan-out", 0, 9_000_000, nil)
	st.RPC(0, "POST /v1/shard/search", 0, 4_000_000, nil)
	st.RPC(0, "POST /v1/shard/points", 4_000_000, 2_000_000, nil)
	st.RPC(1, "POST /v1/shard/search", 0, 8_000_000, &RemoteTrace{
		DurationNS: 7_000_000,
		Spans:      []RemoteSpan{{Name: "search", OffsetNS: 0, DurationNS: 7_000_000}},
	})
	legs := st.ShardBreakdown()
	if len(legs) != 2 {
		t.Fatalf("legs: %+v", legs)
	}
	byShard := map[int]ShardLeg{}
	for _, l := range legs {
		byShard[l.Shard] = l
	}
	if l := byShard[0]; l.Calls != 2 || l.TotalNS != 6_000_000 || l.SlowestNS != 4_000_000 {
		t.Fatalf("shard 0 leg: %+v", l)
	}
	// Shard 1's reported child span must not double-count into the RPC total.
	if l := byShard[1]; l.Calls != 1 || l.TotalNS != 8_000_000 {
		t.Fatalf("shard 1 leg: %+v", l)
	}
}

func TestStitchFinishError(t *testing.T) {
	st := NewStitch(3, "req-3", "query", 1)
	done := st.Finish(errTest)
	if done.Error != "boom" || done.RequestID != "req-3" || done.Shards != 1 {
		t.Fatalf("stitched: %+v", done)
	}
	if done.DurationNS < 0 {
		t.Fatalf("negative duration: %d", done.DurationNS)
	}
}

var errTest = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestStitchRingEvictionAndOrder(t *testing.T) {
	r := NewStitchRing(2)
	r.Add(nil) // ignored
	for i := uint64(1); i <= 3; i++ {
		r.Add(&Stitched{ID: i})
	}
	got := r.Snapshot(0)
	if len(got) != 2 || got[0].ID != 3 || got[1].ID != 2 {
		t.Fatalf("ring snapshot: %+v", got)
	}
	if lim := r.Snapshot(1); len(lim) != 1 || lim[0].ID != 3 {
		t.Fatalf("limited snapshot: %+v", lim)
	}
	var nilRing *StitchRing
	nilRing.Add(&Stitched{})
	if nilRing.Snapshot(0) != nil {
		t.Fatal("nil ring must be inert")
	}
}

// stitchedFixture is a deterministic 2-shard trace for the export golden
// checks: a root, router-side fan-out and merge, one RPC per shard with one
// child each.
func stitchedFixture() *Stitched {
	return &Stitched{
		ID:         42,
		RequestID:  "rt-7",
		Kind:       "knn",
		Start:      time.Unix(1000, 0),
		DurationNS: 20_000_000,
		Shards:     2,
		Spans: []StitchSpan{
			{Name: "fan-out", Track: 0, OffsetNS: 1_000_000, DurationNS: 15_000_000},
			{Name: "POST /v1/shard/search", Track: 1, OffsetNS: 2_000_000, DurationNS: 10_000_000, Args: map[string]any{"shard": 0}},
			{Name: "search", Track: 1, OffsetNS: 3_000_000, DurationNS: 8_000_000},
			{Name: "POST /v1/shard/search", Track: 2, OffsetNS: 2_000_000, DurationNS: 13_000_000, Args: map[string]any{"shard": 1}},
			{Name: "search", Track: 2, OffsetNS: 4_000_000, DurationNS: 9_000_000},
			{Name: "merge", Track: 0, OffsetNS: 16_000_000, DurationNS: 1_000_000},
		},
	}
}

// TestPerfettoStitchedExport checks the trace-event output end to end:
// process/thread metadata, per-shard track naming, span nesting by time
// containment, and monotone timestamps relative to the trace base.
func TestPerfettoStitchedExport(t *testing.T) {
	events := PerfettoStitchedEvents([]*Stitched{stitchedFixture()})
	base := float64(time.Unix(1000, 0).UnixNano()) / 1e3

	threadNames := map[uint64]string{}
	var spans []TraceEvent
	var root *TraceEvent
	for i := range events {
		ev := events[i]
		if ev.PID != 42 {
			t.Fatalf("event on wrong pid: %+v", ev)
		}
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				threadNames[ev.TID] = ev.Args["name"].(string)
			}
		case "X":
			if ev.Name == "routed knn" {
				root = &events[i]
			}
			spans = append(spans, ev)
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if root == nil {
		t.Fatal("no root span")
	}
	if root.Args["request_id"] != "rt-7" {
		t.Fatalf("root args: %+v", root.Args)
	}
	if threadNames[0] != "router" || threadNames[1] != "shard 0" || threadNames[2] != "shard 1" {
		t.Fatalf("track names: %+v", threadNames)
	}
	rootEnd := root.TS + root.Dur
	for _, sp := range spans {
		if sp.TS < base {
			t.Fatalf("span %q precedes trace base: ts %v < %v", sp.Name, sp.TS, base)
		}
		if sp.TS < root.TS || sp.TS+sp.Dur > rootEnd {
			t.Fatalf("span %q escapes the root: %+v", sp.Name, sp)
		}
	}
	// Shard child spans nest inside their RPC span on the same track.
	byTrack := map[uint64][]TraceEvent{}
	for _, sp := range spans {
		byTrack[sp.TID] = append(byTrack[sp.TID], sp)
	}
	for _, tid := range []uint64{1, 2} {
		tr := byTrack[tid]
		if len(tr) != 2 {
			t.Fatalf("track %d: want RPC + child, got %d spans", tid, len(tr))
		}
		rpc, child := tr[0], tr[1]
		if child.TS < rpc.TS || child.TS+child.Dur > rpc.TS+rpc.Dur {
			t.Fatalf("track %d child %q escapes its RPC: rpc=%+v child=%+v", tid, child.Name, rpc, child)
		}
	}
}

// TestWritePerfettoStitchedDegenerate: empty and nil inputs must still emit a
// loadable trace-event file, and nil traces inside the slice are skipped.
func TestWritePerfettoStitchedDegenerate(t *testing.T) {
	for _, traces := range [][]*Stitched{nil, {}, {nil}} {
		var buf bytes.Buffer
		if err := WritePerfettoStitched(&buf, traces); err != nil {
			t.Fatalf("write: %v", err)
		}
		var f TraceEventFile
		if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
			t.Fatalf("output not valid JSON: %v", err)
		}
		if f.TraceEvents == nil {
			t.Fatal("traceEvents must be [], not null")
		}
		if len(f.TraceEvents) != 0 {
			t.Fatalf("degenerate input produced events: %+v", f.TraceEvents)
		}
	}
}

func TestSlowLogOrderingAndCap(t *testing.T) {
	l := NewSlowLog(3)
	for _, d := range []int64{50, 10, 90, 30, 70} {
		l.Record(SlowQuery{RequestID: "r", DurationNS: d})
	}
	got := l.Slowest()
	if len(got) != 3 {
		t.Fatalf("cap not enforced: %d entries", len(got))
	}
	if got[0].DurationNS != 90 || got[1].DurationNS != 70 || got[2].DurationNS != 50 {
		t.Fatalf("not slowest-first: %+v", got)
	}
	var nilLog *SlowLog
	nilLog.Record(SlowQuery{})
	if nilLog.Slowest() != nil {
		t.Fatal("nil log must be inert")
	}
}
