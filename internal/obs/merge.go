package obs

import (
	"fmt"
	"time"
)

// This file makes the latency instruments wire-mergeable, which is what turns
// per-node digests into fleet-level ones: a router scrapes every replica's
// windowed HistogramSnapshots (already JSON-shaped for /v1/latency) and folds
// them with Merge, and because the merge is an exact bucket-wise sum the
// fleet quantiles are precisely what a single process observing the union of
// all samples would have reported. Merge is associative and commutative with
// the empty snapshot as identity, so scrape order, replica count, and
// partial-fleet retries cannot change the answer.

// sameBounds reports whether two snapshots use identical bucket geometry.
func sameBounds(a, b HistogramSnapshot) bool {
	if len(a.Buckets) != len(b.Buckets) {
		return false
	}
	for i := range a.Buckets {
		if a.Buckets[i].UpperBound != b.Buckets[i].UpperBound {
			return false
		}
	}
	return true
}

// Merge combines two histogram snapshots observed over disjoint sample
// streams. Cumulative bucket counts, total count, and sum add bucket-wise,
// so the result is bit-identical to a single histogram that observed both
// streams. A snapshot with no buckets (the zero value) is the identity.
// Merging snapshots with different bucket bounds fails: their mass cannot be
// re-binned without inventing samples.
func (h HistogramSnapshot) Merge(o HistogramSnapshot) (HistogramSnapshot, error) {
	if len(h.Buckets) == 0 {
		return o.clone(), nil
	}
	if len(o.Buckets) == 0 {
		return h.clone(), nil
	}
	if !sameBounds(h, o) {
		return HistogramSnapshot{}, fmt.Errorf("obs: cannot merge histograms with different bucket bounds (%d vs %d buckets)", len(h.Buckets), len(o.Buckets))
	}
	out := HistogramSnapshot{
		Count:   h.Count + o.Count,
		Sum:     h.Sum + o.Sum,
		Buckets: make([]Bucket, len(h.Buckets)),
	}
	for i := range h.Buckets {
		out.Buckets[i] = Bucket{
			UpperBound: h.Buckets[i].UpperBound,
			Count:      h.Buckets[i].Count + o.Buckets[i].Count,
		}
	}
	return out, nil
}

// clone deep-copies a snapshot so merges never alias a caller's buckets.
func (h HistogramSnapshot) clone() HistogramSnapshot {
	out := h
	out.Buckets = make([]Bucket, len(h.Buckets))
	copy(out.Buckets, h.Buckets)
	return out
}

// MergeSnapshots folds any number of snapshots left to right (associativity
// makes the order irrelevant). The zero-value snapshot is returned for an
// empty input.
func MergeSnapshots(snaps ...HistogramSnapshot) (HistogramSnapshot, error) {
	var acc HistogramSnapshot
	var err error
	for _, s := range snaps {
		acc, err = acc.Merge(s)
		if err != nil {
			return HistogramSnapshot{}, err
		}
	}
	return acc, nil
}

// DigestDetail is the wire form of a WindowSet: digest name -> window label
// ("1m", "5m", "15m") -> full histogram snapshot. Unlike LatencyReport it
// keeps the buckets, so a scraper can Merge matching digests across processes
// and compute fleet quantiles with the exact per-node geometry.
type DigestDetail map[string]map[string]HistogramSnapshot

// ReportDetail snapshots every digest over the given windows (nil selects
// DefaultWindows), keeping the full bucket vectors for wire merging.
func (ws *WindowSet) ReportDetail(windows []time.Duration) DigestDetail {
	if ws == nil {
		return DigestDetail{}
	}
	if len(windows) == 0 {
		windows = DefaultWindows
	}
	ws.mu.Lock()
	names := make([]string, len(ws.order))
	copy(names, ws.order)
	digests := make([]*WindowedHistogram, len(names))
	for i, n := range names {
		digests[i] = ws.byName[n]
	}
	ws.mu.Unlock()
	out := make(DigestDetail, len(names))
	for i, name := range names {
		per := make(map[string]HistogramSnapshot, len(windows))
		for _, win := range windows {
			per[WindowLabel(win)] = digests[i].Snapshot(win)
		}
		out[name] = per
	}
	return out
}

// MergeDetails folds many per-process digest details into one: digests sharing
// a name merge window-by-window. Digests that exist on only some processes
// pass through unchanged — a quiet replica must not erase a busy one's mass.
func MergeDetails(details ...DigestDetail) (DigestDetail, error) {
	out := DigestDetail{}
	for _, d := range details {
		for name, wins := range d {
			acc, ok := out[name]
			if !ok {
				acc = make(map[string]HistogramSnapshot, len(wins))
				out[name] = acc
			}
			for label, hs := range wins {
				merged, err := acc[label].Merge(hs)
				if err != nil {
					return nil, fmt.Errorf("obs: digest %q window %q: %w", name, label, err)
				}
				acc[label] = merged
			}
		}
	}
	return out, nil
}

// StatsReport reduces a merged digest detail to the headline-quantile report
// shape /v1/latency uses, so fleet and single-node summaries read alike.
func (d DigestDetail) StatsReport() LatencyReport {
	out := make(LatencyReport, len(d))
	for name, wins := range d {
		per := make(map[string]LatencyStats, len(wins))
		for label, hs := range wins {
			per[label] = statsFor(hs)
		}
		out[name] = per
	}
	return out
}
