package obs

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// This file implements the continuous-profiling digests: sliding-window
// latency histograms that answer "what is the p99 over the last minute",
// which the registry's cumulative histograms cannot (their counts never
// reset, so a morning latency spike dominates the quantiles all day).
//
// A WindowedHistogram is a ring of fixed-bucket sub-histograms. Each slot
// covers one coarse monotonic tick (SlotDuration of wall time); Observe folds
// the sample into the slot for the current tick, rotating the ring forward —
// and clearing slots whose ticks have passed — when the clock has moved on.
// A windowed read merges the slots young enough to fall inside the requested
// window into one HistogramSnapshot, so quantile estimation reuses the exact
// interpolation the cumulative histograms use. Rotation is O(slots skipped)
// and reads are O(slots·buckets); both are far off the hot path (one Observe
// per feedback round / finalize / HTTP request, one read per /v1/latency
// poll or log summary).

// Default windowed-digest geometry: 61 slots of 15s cover the longest
// supported window (15 minutes) plus the currently filling slot.
const (
	// DefaultSlotDuration is one ring slot's share of wall time.
	DefaultSlotDuration = 15 * time.Second
	// DefaultSlots is the ring length: 15 minutes of history plus the slot
	// currently being filled.
	DefaultSlots = 15*60/15 + 1
)

// DefaultWindows are the lookback horizons /v1/latency and the qdserve log
// summaries report, shortest first.
var DefaultWindows = []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute}

// windowSlot is one tick's sub-histogram. Counts are per-bucket (not
// cumulative); merging converts to the cumulative Snapshot form.
type windowSlot struct {
	tick   int64 // monotonic tick this slot holds samples for; -1 = empty
	counts []uint64
	sum    float64
	count  uint64
}

// WindowedHistogram is a sliding-window histogram: a ring of per-tick
// sub-histograms merged at read time. All methods are safe for concurrent
// use; a single mutex suffices because every caller is already off the
// engine's hot path (a nil Observer never reaches a digest).
type WindowedHistogram struct {
	mu       sync.Mutex
	bounds   []float64 // ascending upper bounds; implicit +Inf bucket follows
	slotDur  time.Duration
	slots    []windowSlot
	head     int  // ring position of headTick
	hasTick  bool // false until the first Observe
	headTick int64

	now func() time.Time // injectable for tests
}

// NewWindowedHistogram returns a sliding-window histogram with the given
// bucket bounds (nil selects DefBuckets) and ring geometry (non-positive
// values select the defaults).
func NewWindowedHistogram(bounds []float64, slotDur time.Duration, slots int) *WindowedHistogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	if !sort.Float64sAreSorted(b) {
		panic("obs: windowed histogram bounds must be sorted ascending")
	}
	if slotDur <= 0 {
		slotDur = DefaultSlotDuration
	}
	if slots <= 1 {
		slots = DefaultSlots
	}
	w := &WindowedHistogram{
		bounds:  b,
		slotDur: slotDur,
		slots:   make([]windowSlot, slots),
		now:     time.Now,
	}
	for i := range w.slots {
		w.slots[i].tick = -1
		w.slots[i].counts = make([]uint64, len(b)+1)
	}
	return w
}

// SetClock replaces the wall clock driving ring rotation (tests and
// benchmarks only; production digests run on time.Now).
func (w *WindowedHistogram) SetClock(now func() time.Time) {
	w.mu.Lock()
	w.now = now
	w.mu.Unlock()
}

// tickAt converts a wall time to a coarse monotonic tick.
func (w *WindowedHistogram) tickAt(t time.Time) int64 {
	return t.UnixNano() / int64(w.slotDur)
}

// rotate advances the ring to the given tick, clearing every slot whose tick
// has passed out from under it. Caller holds w.mu.
func (w *WindowedHistogram) rotate(tick int64) {
	if !w.hasTick {
		w.hasTick = true
		w.headTick = tick
		w.slots[w.head].reset(tick)
		return
	}
	if tick <= w.headTick {
		return // same slot, or a clock step backwards: keep filling head
	}
	steps := tick - w.headTick
	if steps > int64(len(w.slots)) {
		steps = int64(len(w.slots)) // everything expired; clear one full lap
	}
	for i := int64(0); i < steps; i++ {
		w.head = (w.head + 1) % len(w.slots)
		w.slots[w.head].reset(w.headTick + i + 1)
	}
	w.headTick = tick
	// After a long gap the head slot's recorded tick lags the clamped walk;
	// pin it to the current tick so fresh samples age correctly.
	w.slots[w.head].tick = tick
}

// reset clears a slot for reuse under a new tick.
func (s *windowSlot) reset(tick int64) {
	s.tick = tick
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.sum = 0
	s.count = 0
}

// Observe records one sample into the current tick's slot.
func (w *WindowedHistogram) Observe(v float64) {
	w.mu.Lock()
	w.rotate(w.tickAt(w.now()))
	s := &w.slots[w.head]
	i := 0
	for i < len(w.bounds) && v > w.bounds[i] {
		i++
	}
	s.counts[i]++
	s.count++
	s.sum += v
	w.mu.Unlock()
}

// Snapshot merges every slot younger than the window into one cumulative
// HistogramSnapshot (the same shape /v1/stats exposes, so Quantile applies).
// A window shorter than one slot still covers the currently filling slot.
func (w *WindowedHistogram) Snapshot(window time.Duration) HistogramSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	hs := HistogramSnapshot{Buckets: make([]Bucket, len(w.bounds))}
	for i, bound := range w.bounds {
		hs.Buckets[i].UpperBound = bound
	}
	if !w.hasTick {
		return hs
	}
	nowTick := w.tickAt(w.now())
	span := int64(window / w.slotDur)
	if span < 1 {
		span = 1
	}
	oldest := nowTick - span + 1
	for si := range w.slots {
		s := &w.slots[si]
		if s.tick < oldest || s.tick > nowTick || s.count == 0 {
			continue
		}
		for bi := range w.bounds {
			hs.Buckets[bi].Count += s.counts[bi]
		}
		hs.Sum += s.sum
		hs.Count += s.count
	}
	// Convert per-bucket counts to the cumulative Prometheus form.
	cum := uint64(0)
	for bi := range hs.Buckets {
		cum += hs.Buckets[bi].Count
		hs.Buckets[bi].Count = cum
	}
	return hs
}

// LatencyStats summarizes one digest over one window.
type LatencyStats struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum_seconds"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// statsFor reduces a merged snapshot to the headline quantiles.
func statsFor(hs HistogramSnapshot) LatencyStats {
	return LatencyStats{
		Count: hs.Count,
		Sum:   hs.Sum,
		P50:   hs.Quantile(0.50),
		P95:   hs.Quantile(0.95),
		P99:   hs.Quantile(0.99),
	}
}

// WindowSet is a named collection of windowed digests: one per engine phase
// ("phase:round", "phase:finalize", "phase:knn") plus one per HTTP endpoint
// ("endpoint:/v1/query", ...), created on first use.
type WindowSet struct {
	mu      sync.Mutex
	byName  map[string]*WindowedHistogram
	order   []string
	slotDur time.Duration
	slots   int
}

// NewWindowSet returns an empty digest collection with the given ring
// geometry for each digest it creates (non-positive values select defaults).
func NewWindowSet(slotDur time.Duration, slots int) *WindowSet {
	return &WindowSet{byName: make(map[string]*WindowedHistogram), slotDur: slotDur, slots: slots}
}

// Digest returns (creating if needed) the named digest. Nil-safe: a nil set
// returns nil, and Observe on the result is then a no-op via the nil check in
// WindowSet.Observe — callers on instrumented paths always hold a real set.
func (ws *WindowSet) Digest(name string) *WindowedHistogram {
	if ws == nil {
		return nil
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	w, ok := ws.byName[name]
	if !ok {
		w = NewWindowedHistogram(DefBuckets, ws.slotDur, ws.slots)
		ws.byName[name] = w
		ws.order = append(ws.order, name)
	}
	return w
}

// Observe records one sample (in seconds) into the named digest.
func (ws *WindowSet) Observe(name string, seconds float64) {
	if ws == nil {
		return
	}
	ws.Digest(name).Observe(seconds)
}

// setClock pins every current digest's clock (tests only).
func (ws *WindowSet) setClock(now func() time.Time) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for _, w := range ws.byName {
		w.SetClock(now)
	}
}

// LatencyReport is the /v1/latency body: digest name -> window label ("1m",
// "5m", "15m") -> quantile summary.
type LatencyReport map[string]map[string]LatencyStats

// WindowLabel renders a lookback horizon the way LatencyReport keys it
// ("1m", "5m", "15m", "90s").
func WindowLabel(d time.Duration) string {
	if d >= time.Minute && d%time.Minute == 0 {
		return strconv.FormatInt(int64(d/time.Minute), 10) + "m"
	}
	return d.String()
}

// Report summarizes every digest over the given windows (nil selects
// DefaultWindows). Digests appear in creation order under their names.
func (ws *WindowSet) Report(windows []time.Duration) LatencyReport {
	if ws == nil {
		return LatencyReport{}
	}
	if len(windows) == 0 {
		windows = DefaultWindows
	}
	ws.mu.Lock()
	names := make([]string, len(ws.order))
	copy(names, ws.order)
	digests := make([]*WindowedHistogram, len(names))
	for i, n := range names {
		digests[i] = ws.byName[n]
	}
	ws.mu.Unlock()
	out := make(LatencyReport, len(names))
	for i, name := range names {
		per := make(map[string]LatencyStats, len(windows))
		for _, win := range windows {
			per[WindowLabel(win)] = statsFor(digests[i].Snapshot(win))
		}
		out[name] = per
	}
	return out
}
