package obs

import (
	"sort"
	"sync"
	"time"
)

// The slow-query log keeps the N slowest requests seen by a process as
// exemplars: when a fleet p99 moves, the operator's first question is "show
// me one", and an aggregate histogram cannot answer it. Each entry carries
// the correlation id (joinable against logs and the trace rings), the
// endpoint, and — on the router — the per-shard time breakdown and the
// stitched-trace reference.

// DefaultSlowLogCap bounds the slow-query ring.
const DefaultSlowLogCap = 32

// ShardLeg is one shard's share of a routed request: how many backend calls
// it served and how much wall time they took.
type ShardLeg struct {
	Shard     int   `json:"shard"`
	Calls     int   `json:"calls"`
	SlowestNS int64 `json:"slowest_ns"`
	TotalNS   int64 `json:"total_ns"`
}

// SlowQuery is one retained exemplar.
type SlowQuery struct {
	RequestID  string    `json:"request_id"`
	Endpoint   string    `json:"endpoint"`
	Status     int       `json:"status"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"duration_ns"`
	// TraceID references a retained trace — a stitched trace on the router,
	// an engine trace on a replica — when one was kept (0 = none).
	TraceID uint64 `json:"trace_id,omitempty"`
	// Shards is the router's per-shard breakdown (absent on replicas).
	Shards []ShardLeg `json:"shards,omitempty"`
}

// SlowLog retains the cap slowest queries, sorted slowest first. All methods
// are safe for concurrent use and on a nil receiver.
type SlowLog struct {
	mu      sync.Mutex
	entries []SlowQuery // sorted descending by DurationNS
	cap     int
}

// NewSlowLog returns a log retaining up to cap entries (cap <= 0 selects
// DefaultSlowLogCap).
func NewSlowLog(cap int) *SlowLog {
	if cap <= 0 {
		cap = DefaultSlowLogCap
	}
	return &SlowLog{cap: cap}
}

// Record offers one finished query to the log; it is kept only while it ranks
// among the cap slowest. Nil-safe.
func (l *SlowLog) Record(q SlowQuery) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) >= l.cap {
		if q.DurationNS <= l.entries[len(l.entries)-1].DurationNS {
			return // faster than every retained entry
		}
		l.entries = l.entries[:len(l.entries)-1]
	}
	at := sort.Search(len(l.entries), func(i int) bool {
		return l.entries[i].DurationNS < q.DurationNS
	})
	l.entries = append(l.entries, SlowQuery{})
	copy(l.entries[at+1:], l.entries[at:])
	l.entries[at] = q
}

// Slowest returns the retained entries, slowest first (a copy).
func (l *SlowLog) Slowest() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, len(l.entries))
	copy(out, l.entries)
	return out
}
