// Package obs is the observability subsystem: a lock-free metrics registry
// (atomic counters, gauges, and fixed-bucket histograms with a Prometheus
// text-exposition encoder and a JSON snapshot), per-query trace spans that
// record each feedback round's tree descent and the finalize phase's subquery
// fan-out, and an Observer that wires the two together behind nil-safe hooks.
//
// The design goal is that uninstrumented paths pay exactly one nil-check: all
// Observer and Trace methods are safe on nil receivers and the engine guards
// its time.Now calls on the observer being present, so a system built without
// an observer runs the same instructions it ran before this package existed.
// Instrument methods (Counter.Add, Histogram.Observe) are allocation-free and
// use only atomic operations, so any number of goroutines may share them.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready to use;
// all methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram in the Prometheus style: cumulative
// bucket counts at encode time, a running sum, and a total count. Observe is
// allocation-free: a linear scan over the (small, fixed) bound slice plus
// three atomic operations.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// newHistogram validates and copies the bounds.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	if !sort.Float64sAreSorted(b) {
		panic("obs: histogram bounds must be sorted ascending")
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// DefBuckets spans 25µs to 10s — wide enough for both the representative-only
// feedback rounds and full localized k-NN finalizes on large corpora.
var DefBuckets = []float64{
	0.000025, 0.0001, 0.00025, 0.001, 0.0025, 0.01, 0.025, 0.1, 0.25, 1, 2.5, 10,
}

// FanoutBuckets suits small discrete counts such as the subquery fan-out of a
// finalized query.
var FanoutBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered instrument.
type metric struct {
	name string
	help string
	kind metricKind

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// Registry holds named metrics and renders them. Registration takes a lock;
// the instruments themselves are lock-free. Registering an existing name
// returns the existing instrument, so independent components may share a
// metric by name; re-registering a name as a different kind panics.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// validName enforces the Prometheus metric-name charset.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register adds or retrieves a metric, panicking on kind mismatch.
func (r *Registry) register(name, help string, kind metricKind) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m
}

// Counter registers (or retrieves) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter).counter
}

// Gauge registers (or retrieves) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge).gauge
}

// Histogram registers (or retrieves) a histogram with the given upper bounds
// (nil selects DefBuckets). Bounds are fixed at registration; retrieving an
// existing histogram ignores the bounds argument.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kindHistogram {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
		return m.histogram
	}
	m := &metric{name: name, help: help, kind: kindHistogram, histogram: newHistogram(bounds)}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m.histogram
}

// snapshotMetrics copies the registered-metric list for lock-free iteration.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.snapshotMetrics() {
		var err error
		switch m.kind {
		case kindCounter:
			err = writeSimple(w, m, "counter", strconv.FormatUint(m.counter.Value(), 10))
		case kindGauge:
			err = writeSimple(w, m, "gauge", strconv.FormatInt(m.gauge.Value(), 10))
		case kindHistogram:
			err = writeHistogram(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeSimple(w io.Writer, m *metric, typ, value string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		m.name, m.help, m.name, typ, m.name, value)
	return err
}

func writeHistogram(w io.Writer, m *metric) error {
	h := m.histogram
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", m.name, m.help, m.name); err != nil {
		return err
	}
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		m.name, cum, m.name, formatFloat(h.Sum()), m.name, h.Count())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Bucket is one cumulative histogram bucket in a Snapshot. The implicit +Inf
// bucket is not listed; HistogramSnapshot.Count covers it (and keeps the
// snapshot JSON-encodable, since JSON has no +Inf).
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"` // cumulative, as in the Prometheus format
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Quantile estimates the q-quantile by linear interpolation within the
// bucket containing it, mirroring Prometheus's histogram_quantile. q is
// clamped to [0, 1]; q=0 yields the lower edge of the first bucket holding
// mass and q=1 the upper edge of the last. Samples in the +Inf overflow
// bucket (beyond the last finite bound) clamp to that bound, since no finite
// interpolation point exists past it. Returns 0 when the histogram is empty.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	lower := 0.0
	prev := uint64(0)
	for _, b := range h.Buckets {
		// Empty buckets cannot contain the quantile: skip them so a rank on
		// their boundary lands in the nearest bucket that holds mass instead
		// of snapping to an arbitrary empty bound (the q=0 edge case).
		if inBucket := float64(b.Count - prev); inBucket > 0 && float64(b.Count) >= rank {
			r := rank - float64(prev)
			if r < 0 {
				r = 0 // rank fell in a preceding empty bucket: clamp to this one's lower edge
			}
			return lower + (b.UpperBound-lower)*r/inBucket
		}
		lower = b.UpperBound
		prev = b.Count
	}
	// All remaining mass sits in the +Inf overflow bucket.
	return h.Buckets[len(h.Buckets)-1].UpperBound
}

// Snapshot is a point-in-time copy of every metric in a registry, shaped for
// JSON (the /v1/stats body and qdbench's -stats output).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, m := range r.snapshotMetrics() {
		switch m.kind {
		case kindCounter:
			s.Counters[m.name] = m.counter.Value()
		case kindGauge:
			s.Gauges[m.name] = m.gauge.Value()
		case kindHistogram:
			h := m.histogram
			hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
			cum := uint64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				hs.Buckets = append(hs.Buckets, Bucket{UpperBound: bound, Count: cum})
			}
			s.Histograms[m.name] = hs
		}
	}
	return s
}
