package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	g := r.Gauge("g", "help")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-106) > 1e-9 {
		t.Fatalf("sum = %v, want 106", got)
	}
	snap := r.Snapshot().Histograms["h_seconds"]
	wantCum := []uint64{2, 3, 4} // le=1: {0.5, 1.0}; le=2: +1.5; le=4: +3; +Inf: +100
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram([]float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); math.Abs(got-2000) > 1e-6 {
		t.Fatalf("sum = %v, want 2000", got)
	}
}

func TestRegistryIdempotentAndMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "help")
	b := r.Counter("same_total", "help")
	if a != b {
		t.Fatal("re-registering a counter must return the same instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as a different kind must panic")
		}
	}()
	r.Gauge("same_total", "help")
}

func TestInvalidMetricName(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9starts_with_digit", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q must panic", bad)
				}
			}()
			r.Counter(bad, "help")
		}()
	}
}

func TestPrometheusEncoding(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "Requests.").Add(7)
	r.Gauge("live", "Live things.").Set(-3)
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP reqs_total Requests.",
		"# TYPE reqs_total counter",
		"reqs_total 7",
		"# TYPE live gauge",
		"live -3",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help").Inc()
	r.Histogram("b_seconds", "help", nil).Observe(0.01)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a_total"] != 1 {
		t.Fatalf("roundtrip counter = %d, want 1", back.Counters["a_total"])
	}
	if back.Histograms["b_seconds"].Count != 1 {
		t.Fatal("roundtrip histogram lost its count")
	}
}

func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "help", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all samples in the (1, 2] bucket
	}
	snap := r.Snapshot().Histograms["q_seconds"]
	if q := snap.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("median %v outside its bucket (1, 2]", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

// snapFor builds a cumulative snapshot directly from per-bucket masses.
func snapFor(bounds []float64, perBucket []uint64, overflow uint64) HistogramSnapshot {
	hs := HistogramSnapshot{}
	cum := uint64(0)
	for i, b := range bounds {
		cum += perBucket[i]
		hs.Buckets = append(hs.Buckets, Bucket{UpperBound: b, Count: cum})
	}
	hs.Count = cum + overflow
	return hs
}

func TestQuantileEdgeCases(t *testing.T) {
	bounds := []float64{1, 2, 4}

	t.Run("empty", func(t *testing.T) {
		empty := snapFor(bounds, []uint64{0, 0, 0}, 0)
		for _, q := range []float64{0, 0.5, 1} {
			if got := empty.Quantile(q); got != 0 {
				t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
			}
		}
	})

	t.Run("single bucket mass", func(t *testing.T) {
		// All mass in the middle bucket (1, 2].
		hs := snapFor(bounds, []uint64{0, 8, 0}, 0)
		if got := hs.Quantile(0); got != 1 {
			t.Errorf("q=0 = %v, want lower edge 1 (not an empty bucket's bound)", got)
		}
		if got := hs.Quantile(1); got != 2 {
			t.Errorf("q=1 = %v, want upper edge 2", got)
		}
		if got := hs.Quantile(0.5); got != 1.5 {
			t.Errorf("median = %v, want midpoint 1.5", got)
		}
	})

	t.Run("q0 and q1 clamp to mass", func(t *testing.T) {
		hs := snapFor(bounds, []uint64{4, 0, 4}, 0)
		if got := hs.Quantile(0); got != 0 {
			t.Errorf("q=0 = %v, want 0 (first bucket's lower edge)", got)
		}
		if got := hs.Quantile(1); got != 4 {
			t.Errorf("q=1 = %v, want 4 (last occupied bucket's bound)", got)
		}
		// The empty middle bucket must never be an answer: the median of 8
		// samples sits at rank 4 = the first bucket's full mass.
		if got := hs.Quantile(0.5); got != 1 {
			t.Errorf("median across empty bucket = %v, want 1", got)
		}
		// Out-of-range q clamps instead of extrapolating.
		if got := hs.Quantile(-3); got != 0 {
			t.Errorf("q=-3 = %v, want 0", got)
		}
		if got := hs.Quantile(7); got != 4 {
			t.Errorf("q=7 = %v, want 4", got)
		}
	})

	t.Run("overflow bucket clamps to last finite bound", func(t *testing.T) {
		// 2 finite samples, 6 in the +Inf overflow bucket: any quantile past
		// the finite mass clamps to the last finite bound (no interpolation
		// point exists beyond it).
		hs := snapFor(bounds, []uint64{2, 0, 0}, 6)
		if got := hs.Quantile(0.99); got != 4 {
			t.Errorf("p99 with overflow mass = %v, want last finite bound 4", got)
		}
		if got := hs.Quantile(0.1); got != 0.4 {
			t.Errorf("p10 = %v, want 0.4 (within the finite mass)", got)
		}
		// Everything in overflow: still the last finite bound, not 0 or +Inf.
		all := snapFor(bounds, []uint64{0, 0, 0}, 5)
		if got := all.Quantile(0.5); got != 4 {
			t.Errorf("median of overflow-only mass = %v, want 4", got)
		}
	})

	t.Run("interpolation within a bucket", func(t *testing.T) {
		hs := snapFor(bounds, []uint64{0, 10, 0}, 0)
		// Rank 2.5 of 10 in bucket (1, 2]: 1 + 1*2.5/10.
		if got := hs.Quantile(0.25); got != 1.25 {
			t.Errorf("q=0.25 = %v, want 1.25", got)
		}
	})
}
