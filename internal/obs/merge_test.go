package obs

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// quantize snaps a sample onto a 2^-20 grid so float64 summation is exact
// regardless of addition order: the merge-equals-single-stream properties can
// then demand bit equality on Sum, not just on counts.
func quantize(v float64) float64 {
	const grid = 1 << 20
	return float64(int64(v*grid)) / grid
}

// TestMergeEqualsSingleStream is the core fleet-aggregation property: sharding
// a sample stream across N histograms and merging their snapshots yields
// exactly the snapshot a single histogram observing the whole stream reports —
// count, sum, and every cumulative bucket.
func TestMergeEqualsSingleStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nShards = 4
	now := time.Now()
	clock := func() time.Time { return now }
	shards := make([]*WindowedHistogram, nShards)
	for i := range shards {
		shards[i] = NewWindowedHistogram(nil, time.Second, 90)
		shards[i].SetClock(clock)
	}
	single := NewWindowedHistogram(nil, time.Second, 90)
	single.SetClock(clock)

	for i := 0; i < 5000; i++ {
		// Log-uniform over ~25µs..2.5s, spanning every default bucket.
		v := quantize(0.000025 * float64(int64(1)<<uint(rng.Intn(17))) * (1 + rng.Float64()))
		shards[rng.Intn(nShards)].Observe(v)
		single.Observe(v)
	}

	snaps := make([]HistogramSnapshot, nShards)
	for i, sh := range shards {
		snaps[i] = sh.Snapshot(time.Minute)
	}
	merged, err := MergeSnapshots(snaps...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	want := single.Snapshot(time.Minute)
	if merged.Count != want.Count {
		t.Fatalf("count: merged %d, single-stream %d", merged.Count, want.Count)
	}
	if merged.Sum != want.Sum {
		t.Fatalf("sum: merged %v, single-stream %v", merged.Sum, want.Sum)
	}
	if len(merged.Buckets) != len(want.Buckets) {
		t.Fatalf("bucket count: merged %d, single-stream %d", len(merged.Buckets), len(want.Buckets))
	}
	for i := range want.Buckets {
		if merged.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: merged %+v, single-stream %+v", i, merged.Buckets[i], want.Buckets[i])
		}
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := merged.Quantile(q), want.Quantile(q); got != want {
			t.Fatalf("q%.2f: merged %v, single-stream %v", q, got, want)
		}
	}
}

// TestMergeAlgebra checks the scrape-robustness properties: associativity,
// commutativity, and the zero-value identity. These are what make the fleet
// view independent of scrape order and partial-fleet retries.
func TestMergeAlgebra(t *testing.T) {
	mk := func(seed int64, n int) HistogramSnapshot {
		rng := rand.New(rand.NewSource(seed))
		h := NewWindowedHistogram(nil, time.Second, 90)
		for i := 0; i < n; i++ {
			h.Observe(quantize(rng.Float64()))
		}
		return h.Snapshot(time.Minute)
	}
	a, b, c := mk(1, 100), mk(2, 250), mk(3, 17)

	eq := func(x, y HistogramSnapshot) bool {
		if x.Count != y.Count || x.Sum != y.Sum || len(x.Buckets) != len(y.Buckets) {
			return false
		}
		for i := range x.Buckets {
			if x.Buckets[i] != y.Buckets[i] {
				return false
			}
		}
		return true
	}

	ab, _ := a.Merge(b)
	abc1, _ := ab.Merge(c)
	bc, _ := b.Merge(c)
	abc2, _ := a.Merge(bc)
	if !eq(abc1, abc2) {
		t.Fatal("merge is not associative")
	}
	ba, _ := b.Merge(a)
	if !eq(ab, ba) {
		t.Fatal("merge is not commutative")
	}
	var zero HistogramSnapshot
	za, err := zero.Merge(a)
	if err != nil || !eq(za, a) {
		t.Fatalf("zero is not a left identity: %v", err)
	}
	az, err := a.Merge(zero)
	if err != nil || !eq(az, a) {
		t.Fatalf("zero is not a right identity: %v", err)
	}
	if s, err := MergeSnapshots(); err != nil || s.Count != 0 {
		t.Fatalf("empty fold: %+v, %v", s, err)
	}
}

func TestMergeBoundMismatch(t *testing.T) {
	a := NewWindowedHistogram([]float64{0.1, 1}, time.Second, 90)
	b := NewWindowedHistogram([]float64{0.2, 2}, time.Second, 90)
	a.Observe(0.05)
	b.Observe(0.05)
	if _, err := a.Snapshot(time.Minute).Merge(b.Snapshot(time.Minute)); err == nil {
		t.Fatal("merging different bucket geometries must fail")
	}
	c := NewWindowedHistogram([]float64{0.1}, time.Second, 90)
	c.Observe(0.05)
	if _, err := a.Snapshot(time.Minute).Merge(c.Snapshot(time.Minute)); err == nil {
		t.Fatal("merging different bucket counts must fail")
	}
}

// TestMergeQuantilesUnderSkew puts almost all mass on one shard and the tail
// on another — the shape that breaks quantile *averaging* — and checks the
// merged quantile stays within the bucket bracketing the true empirical
// quantile (the best any bucketed histogram can promise), and is identical to
// the single-stream answer.
func TestMergeQuantilesUnderSkew(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	fast := NewWindowedHistogram(nil, time.Second, 90)
	slow := NewWindowedHistogram(nil, time.Second, 90)
	single := NewWindowedHistogram(nil, time.Second, 90)
	for _, h := range []*WindowedHistogram{fast, slow, single} {
		h.SetClock(clock)
	}

	var samples []float64
	for i := 0; i < 980; i++ {
		v := quantize(0.0008 + 0.0000001*float64(i)) // ~0.8ms cluster
		fast.Observe(v)
		single.Observe(v)
		samples = append(samples, v)
	}
	for i := 0; i < 20; i++ {
		v := quantize(1.8 + 0.01*float64(i)) // ~1.8s tail, all on one shard
		slow.Observe(v)
		single.Observe(v)
		samples = append(samples, v)
	}
	sort.Float64s(samples)

	merged, err := fast.Snapshot(time.Minute).Merge(slow.Snapshot(time.Minute))
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	want := single.Snapshot(time.Minute)
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		got := merged.Quantile(q)
		if direct := want.Quantile(q); got != direct {
			t.Fatalf("q%v: merged %v != single-stream %v", q, got, direct)
		}
		// Bucket-resolution error bound around the true empirical quantile.
		trueQ := samples[int(q*float64(len(samples)-1))]
		lo, hi := 0.0, DefBuckets[len(DefBuckets)-1]
		for _, bound := range DefBuckets {
			if bound < trueQ {
				lo = bound
			}
			if bound >= trueQ {
				hi = bound
				break
			}
		}
		if got < lo || got > hi {
			t.Fatalf("q%v: merged %v outside bucket [%v, %v] containing true quantile %v", q, got, lo, hi, trueQ)
		}
	}
	// The p99 must sit in the tail the slow shard contributed, not in the fast
	// cluster — the failure mode quantile averaging would produce.
	if merged.Quantile(0.99) < 1.0 {
		t.Fatalf("p99 %v lost the slow shard's tail", merged.Quantile(0.99))
	}
}

// TestMergeDetails exercises the wire-level WindowSet path the router uses:
// per-replica ReportDetail → MergeDetails → StatsReport, with a digest that
// exists on only one replica passing through unchanged.
func TestMergeDetails(t *testing.T) {
	a := NewWindowSet(time.Second, 90)
	b := NewWindowSet(time.Second, 90)
	both := NewWindowSet(time.Second, 90)
	// Binary-exact sample values: merged Sum must equal the single-stream Sum
	// bit for bit, so the samples must add exactly in any order.
	for i := 0; i < 40; i++ {
		a.Observe("endpoint:/v1/query", 0.015625)
		both.Observe("endpoint:/v1/query", 0.015625)
	}
	for i := 0; i < 10; i++ {
		b.Observe("endpoint:/v1/query", 0.25)
		both.Observe("endpoint:/v1/query", 0.25)
	}
	b.Observe("seg:insert", 0.0009765625)
	both.Observe("seg:insert", 0.0009765625)

	merged, err := MergeDetails(a.ReportDetail(nil), b.ReportDetail(nil))
	if err != nil {
		t.Fatalf("merge details: %v", err)
	}
	wantDetail := both.ReportDetail(nil)
	for name, wins := range wantDetail {
		for label, want := range wins {
			got := merged[name][label]
			if got.Count != want.Count || got.Sum != want.Sum {
				t.Fatalf("%s %s: got count=%d sum=%v, want count=%d sum=%v",
					name, label, got.Count, got.Sum, want.Count, want.Sum)
			}
		}
	}
	rep := merged.StatsReport()
	direct := both.Report(nil)
	for name, wins := range direct {
		for label, want := range wins {
			got := rep[name][label]
			if got != want {
				t.Fatalf("%s %s: fleet stats %+v != direct observation %+v", name, label, got, want)
			}
		}
	}
	if rep["seg:insert"]["1m"].Count != 1 {
		t.Fatalf("single-replica digest lost in merge: %+v", rep["seg:insert"]["1m"])
	}
}
