package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Metric names the Observer registers. Components that surface snapshots
// (internal/server's /v1/stats, cmd/qdbench's -stats) look totals up by these
// names.
const (
	MetricSessionsStarted = "qd_sessions_started_total"
	MetricSessionsHosted  = "qd_sessions_hosted"
	MetricSessionsEvicted = "qd_sessions_evicted_total"
	MetricFeedbackRounds  = "qd_feedback_rounds_total"
	MetricFinalizes       = "qd_finalize_total"
	MetricKNNs            = "qd_knn_total"
	MetricFeedbackReads   = "qd_feedback_page_reads_total"
	MetricFinalReads      = "qd_final_page_reads_total"
	MetricKNNReads        = "qd_knn_page_reads_total"
	MetricExpansions      = "qd_boundary_expansions_total"
	MetricHeapPops        = "qd_heap_pops_total"
	MetricRoundSeconds    = "qd_round_seconds"
	MetricFinalizeSeconds = "qd_finalize_seconds"
	MetricKNNSeconds      = "qd_knn_seconds"
	MetricSubqueryFanout  = "qd_subquery_fanout"
	// MetricRerankFallbacks counts quantized searches whose candidate set
	// failed the exact-rerank guarantee and had to widen (the result is
	// still exact; the counter prices the retries).
	MetricRerankFallbacks = "qd_knn_rerank_fallbacks_total"
)

// DefaultTraceCap bounds the completed-trace ring.
const DefaultTraceCap = 64

// Windowed-digest names the Observer feeds: per-phase sliding-window latency
// histograms behind /v1/latency and the qdserve log summaries.
const (
	DigestRound    = "phase:round"
	DigestFinalize = "phase:finalize"
	DigestKNN      = "phase:knn"
	// Per-phase splits of the SQ8 two-phase k-NN: time in quantized sweeps
	// versus exact reranks (only fed by quantized engines).
	DigestKNNScan   = "phase:knn_scan"
	DigestKNNRerank = "phase:knn_rerank"
)

// Observer receives engine telemetry: it folds span records into the metrics
// registry and retains recently completed traces. One Observer may serve any
// number of engines, sessions, and servers concurrently.
//
// Every method is safe on a nil *Observer, so instrumented code paths carry
// an optional observer at the cost of one nil-check; a nil observer performs
// no time reads, no atomics, and no allocation.
type Observer struct {
	reg *Registry

	sessionsStarted *Counter
	sessionsHosted  *Gauge
	sessionsEvicted *Counter
	feedbackRounds  *Counter
	finalizes       *Counter
	knns            *Counter
	feedbackReads   *Counter
	finalReads      *Counter
	knnReads        *Counter
	expansions      *Counter
	heapPops        *Counter
	roundSeconds    *Histogram
	finalizeSeconds *Histogram
	knnSeconds      *Histogram
	subqueryFanout  *Histogram
	rerankFallbacks *Counter

	// windows holds the sliding-window latency digests (per engine phase
	// here; the HTTP server adds per-endpoint digests to the same set).
	windows *WindowSet

	nextID   atomic.Uint64
	traceMu  sync.Mutex
	traces   []*Trace // completed traces, oldest first
	traceCap int
}

// New returns an Observer registering the standard engine metrics in reg
// (a nil reg gets a fresh registry).
func New(reg *Registry) *Observer {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Observer{
		reg:             reg,
		sessionsStarted: reg.Counter(MetricSessionsStarted, "Relevance-feedback sessions started."),
		sessionsHosted:  reg.Gauge(MetricSessionsHosted, "Hosted thin-client sessions currently live."),
		sessionsEvicted: reg.Counter(MetricSessionsEvicted, "Hosted sessions evicted by the session cap."),
		feedbackRounds:  reg.Counter(MetricFeedbackRounds, "Relevance-feedback rounds processed."),
		finalizes:       reg.Counter(MetricFinalizes, "Finalized queries (localized k-NN phases run)."),
		knns:            reg.Counter(MetricKNNs, "Plain global k-NN searches."),
		feedbackReads:   reg.Counter(MetricFeedbackReads, "Simulated page reads during feedback processing."),
		finalReads:      reg.Counter(MetricFinalReads, "Simulated page reads during localized k-NN finalize phases."),
		knnReads:        reg.Counter(MetricKNNReads, "Simulated page reads during plain global k-NN searches."),
		expansions:      reg.Counter(MetricExpansions, "Boundary-ratio search expansions (paper sec. 3.3)."),
		heapPops:        reg.Counter(MetricHeapPops, "Best-first search queue pops during finalize phases."),
		roundSeconds:    reg.Histogram(MetricRoundSeconds, "Feedback-round latency in seconds.", DefBuckets),
		finalizeSeconds: reg.Histogram(MetricFinalizeSeconds, "Finalize-phase latency in seconds.", DefBuckets),
		knnSeconds:      reg.Histogram(MetricKNNSeconds, "Global k-NN latency in seconds.", DefBuckets),
		subqueryFanout:  reg.Histogram(MetricSubqueryFanout, "Localized subqueries per finalized query.", FanoutBuckets),
		rerankFallbacks: reg.Counter(MetricRerankFallbacks, "Quantized k-NN candidate sets that failed the rerank guarantee and widened."),
		windows:         NewWindowSet(0, 0),
		traceCap:        DefaultTraceCap,
	}
}

// Windows returns the observer's sliding-window latency digests (nil for a
// nil observer; every WindowSet method tolerates nil).
func (o *Observer) Windows() *WindowSet {
	if o == nil {
		return nil
	}
	return o.windows
}

// Registry returns the observer's metrics registry (nil for a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// StartTrace opens a trace span for one query. Returns nil on a nil
// observer, which every Trace method tolerates.
func (o *Observer) StartTrace(kind string) *Trace {
	if o == nil {
		return nil
	}
	return &Trace{ID: o.nextID.Add(1), Kind: kind, Start: time.Now()}
}

// SessionStarted counts an engine session creation.
func (o *Observer) SessionStarted() {
	if o == nil {
		return
	}
	o.sessionsStarted.Inc()
}

// SessionHosted counts a hosted (server-side) session coming live.
func (o *Observer) SessionHosted() {
	if o == nil {
		return
	}
	o.sessionsHosted.Add(1)
}

// SessionReleased counts a hosted session ending normally (finalized or
// deleted by its client).
func (o *Observer) SessionReleased() {
	if o == nil {
		return
	}
	o.sessionsHosted.Add(-1)
}

// SessionEvicted counts a hosted session evicted by the session cap.
func (o *Observer) SessionEvicted() {
	if o == nil {
		return
	}
	o.sessionsEvicted.Inc()
	o.sessionsHosted.Add(-1)
}

// AddFeedbackReads folds page reads into the feedback I/O total outside a
// round span (browsing after the last round, flushed at finalize).
func (o *Observer) AddFeedbackReads(n uint64) {
	if o == nil {
		return
	}
	o.feedbackReads.Add(n)
}

// RoundDone records one completed feedback round: the span joins the trace
// (absorbing the representatives displayed since the last round) and the
// round metrics update.
func (o *Observer) RoundDone(t *Trace, span RoundSpan) {
	if o == nil {
		return
	}
	if t != nil {
		span.RepsDisplayed = t.displayed
		t.displayed = 0
		t.Rounds = append(t.Rounds, span)
	}
	o.feedbackRounds.Inc()
	o.feedbackReads.Add(span.PageReads)
	sec := float64(span.DurationNS) / 1e9
	o.roundSeconds.Observe(sec)
	o.windows.Observe(DigestRound, sec)
}

// FinalizeDone records a completed finalize phase and retires the trace into
// the ring.
func (o *Observer) FinalizeDone(t *Trace, span FinalizeSpan) {
	if o == nil {
		return
	}
	o.finalizes.Inc()
	o.finalReads.Add(span.PageReads)
	o.expansions.Add(uint64(span.Expansions))
	o.heapPops.Add(span.HeapPops)
	o.rerankFallbacks.Add(span.RerankFallbacks)
	sec := float64(span.DurationNS) / 1e9
	o.finalizeSeconds.Observe(sec)
	o.windows.Observe(DigestFinalize, sec)
	o.subqueryFanout.Observe(float64(span.Subqueries))
	for _, sq := range span.Subspans {
		if sq.ScanNS > 0 {
			o.windows.Observe(DigestKNNScan, float64(sq.ScanNS)/1e9)
		}
		if sq.RerankNS > 0 {
			o.windows.Observe(DigestKNNRerank, float64(sq.RerankNS)/1e9)
		}
	}
	if t != nil {
		t.Finalize = &span
		t.DurationNS = time.Since(t.Start).Nanoseconds()
		o.retain(t)
	}
}

// KNNDone records one plain global k-NN search.
func (o *Observer) KNNDone(d time.Duration, pageReads uint64) {
	if o == nil {
		return
	}
	o.knns.Inc()
	o.knnReads.Add(pageReads)
	o.knnSeconds.Observe(d.Seconds())
	o.windows.Observe(DigestKNN, d.Seconds())
}

// KNNPhases records the per-phase split of one quantized global k-NN search
// (the standalone System.KNN path; finalize subqueries report theirs through
// FinalizeDone's subspans): sweep and rerank wall time feed the phase
// digests, and fallbacks the guarantee-failure counter.
func (o *Observer) KNNPhases(scanNS, rerankNS int64, fallbacks uint64) {
	if o == nil {
		return
	}
	o.rerankFallbacks.Add(fallbacks)
	if scanNS > 0 {
		o.windows.Observe(DigestKNNScan, float64(scanNS)/1e9)
	}
	if rerankNS > 0 {
		o.windows.Observe(DigestKNNRerank, float64(rerankNS)/1e9)
	}
}

// retain pushes a completed trace into the bounded ring.
func (o *Observer) retain(t *Trace) {
	o.traceMu.Lock()
	defer o.traceMu.Unlock()
	if len(o.traces) >= o.traceCap {
		copy(o.traces, o.traces[1:])
		o.traces[len(o.traces)-1] = t
		return
	}
	o.traces = append(o.traces, t)
}

// Traces returns the retained completed traces, oldest first (a copy; the
// traces themselves are immutable). Nil observers return nil.
func (o *Observer) Traces() []*Trace {
	if o == nil {
		return nil
	}
	o.traceMu.Lock()
	defer o.traceMu.Unlock()
	out := make([]*Trace, len(o.traces))
	copy(out, o.traces)
	return out
}

// TracesFiltered returns up to limit retained traces, newest first,
// optionally restricted to one kind ("session" or "query"; empty keeps all).
// limit <= 0 returns every match. Nil observers return nil.
func (o *Observer) TracesFiltered(kind string, limit int) []*Trace {
	if o == nil {
		return nil
	}
	o.traceMu.Lock()
	defer o.traceMu.Unlock()
	var out []*Trace
	for i := len(o.traces) - 1; i >= 0; i-- {
		t := o.traces[i]
		if kind != "" && t.Kind != kind {
			continue
		}
		out = append(out, t)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}
