package obs

import (
	"strconv"
	"sync"
	"time"
)

// Cross-process trace stitching. A routed query fans out over many shard
// replicas, and each process only sees its own slice of the latency: the
// router sees RPC wall time, a shard sees its local search. Stitching joins
// them under one request id without any clock synchronization:
//
//   - The router stamps every backend request with the X-Qd-Trace header.
//   - A shard that sees the header times its handling and returns the spans
//     in the response body (RemoteTrace), with offsets relative to its own
//     handling start — shard clocks never leave the shard.
//   - The router knows each RPC's window on its own monotonic clock, so it
//     re-bases the shard's spans into that window. Causality guarantees the
//     handling lies inside the RPC (request sent before handling starts,
//     response read after it ends); the re-based spans clamp to the window so
//     a skewed duration report can never break nesting.
//
// The result is one Stitched trace per routed query: router-side spans
// (fan-out, per-shard RPCs, merge, finalize-scatter) on track 0 and each
// shard's child spans on that shard's own track, exported in the same
// Chrome/Perfetto trace-event form as the single-node traces.

// TraceHeader is the HTTP header carrying the cross-process trace id (the
// request id) from the router to shard replicas. Its presence is the opt-in:
// untraced requests pay nothing on the shard side.
const TraceHeader = "X-Qd-Trace"

// RemoteSpan is one span a shard reports back to its caller. OffsetNS is
// relative to the shard's request-handling start, never to its wall clock,
// so the caller can re-base it without clock agreement.
type RemoteSpan struct {
	Name       string         `json:"name"`
	OffsetNS   int64          `json:"offset_ns"`
	DurationNS int64          `json:"duration_ns"`
	Args       map[string]any `json:"args,omitempty"`
}

// RemoteTrace is the span bundle a traced shard response carries.
type RemoteTrace struct {
	DurationNS int64        `json:"duration_ns"`
	Spans      []RemoteSpan `json:"spans,omitempty"`
}

// RemoteTraced is implemented by response types that may carry a RemoteTrace;
// the router's transport peels the trace off any response that has one.
type RemoteTraced interface {
	TraceData() *RemoteTrace
}

// RemoteRecorder accumulates shard-side spans for one traced request. The
// zero value is ready; a nil recorder ignores every call, so handlers record
// unconditionally and only allocate when the trace header was present.
type RemoteRecorder struct {
	start time.Time
	spans []RemoteSpan
}

// NewRemoteRecorder opens a recorder anchored at now.
func NewRemoteRecorder() *RemoteRecorder {
	return &RemoteRecorder{start: time.Now()}
}

// Span records one completed span that started at offset start (a time taken
// after NewRemoteRecorder). Nil-safe.
func (r *RemoteRecorder) Span(name string, start time.Time, args map[string]any) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, RemoteSpan{
		Name:       name,
		OffsetNS:   start.Sub(r.start).Nanoseconds(),
		DurationNS: time.Since(start).Nanoseconds(),
		Args:       args,
	})
}

// Trace closes the recorder into the wire form (nil for a nil recorder).
func (r *RemoteRecorder) Trace() *RemoteTrace {
	if r == nil {
		return nil
	}
	return &RemoteTrace{
		DurationNS: time.Since(r.start).Nanoseconds(),
		Spans:      r.spans,
	}
}

// StitchSpan is one span of a stitched cross-process trace. Track 0 is the
// router; shard s draws on track s+1. Spans on one track nest by time
// containment, exactly like the single-process trace export.
type StitchSpan struct {
	Name       string         `json:"name"`
	Track      int            `json:"track"`
	OffsetNS   int64          `json:"offset_ns"`
	DurationNS int64          `json:"duration_ns"`
	Args       map[string]any `json:"args,omitempty"`
}

// Stitched is one completed cross-process trace: every router-side span and
// every shard-side child span of one routed request, under one request id.
// Immutable once built (the Stitch that produced it has been finished).
type Stitched struct {
	ID         uint64       `json:"id"`
	RequestID  string       `json:"request_id"`
	Kind       string       `json:"kind"` // "query", "knn", "finalize"
	Start      time.Time    `json:"start"`
	DurationNS int64        `json:"duration_ns"`
	Shards     int          `json:"shards"`
	Error      string       `json:"error,omitempty"` // partial traces: why the request failed
	Spans      []StitchSpan `json:"spans"`
}

// Stitch accumulates one in-flight cross-process trace. Scatter legs run
// concurrently, so every method locks; all methods are safe on a nil *Stitch
// (untraced requests carry nil and pay one pointer check).
type Stitch struct {
	mu sync.Mutex
	t  Stitched
}

// NewStitch opens a cross-process trace for one routed request.
func NewStitch(id uint64, requestID, kind string, shards int) *Stitch {
	return &Stitch{t: Stitched{
		ID:        id,
		RequestID: requestID,
		Kind:      kind,
		Start:     time.Now(),
		Shards:    shards,
	}}
}

// RequestID returns the trace's correlation id ("" on nil).
func (s *Stitch) RequestID() string {
	if s == nil {
		return ""
	}
	return s.t.RequestID
}

// Since returns nanoseconds since the trace opened (0 on nil) — the offset a
// span starting now records. Monotonic: time.Since uses the monotonic clock.
func (s *Stitch) Since() int64 {
	if s == nil {
		return 0
	}
	return time.Since(s.t.Start).Nanoseconds()
}

// Span records one completed router-side span on track 0. Nil-safe.
func (s *Stitch) Span(name string, offsetNS, durationNS int64, args map[string]any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.t.Spans = append(s.t.Spans, StitchSpan{
		Name: name, Track: 0, OffsetNS: offsetNS, DurationNS: durationNS, Args: args,
	})
	s.mu.Unlock()
}

// RPC records one backend call to a shard on that shard's track, then
// re-bases the shard's reported child spans into the RPC window. A child that
// would overrun the window (clock rate skew, response-write time) clamps to
// it, so nesting and timestamp monotonicity hold by construction. Nil-safe.
func (s *Stitch) RPC(shard int, name string, offsetNS, durationNS int64, remote *RemoteTrace) {
	if s == nil {
		return
	}
	track := shard + 1
	s.mu.Lock()
	defer s.mu.Unlock()
	s.t.Spans = append(s.t.Spans, StitchSpan{
		Name: name, Track: track, OffsetNS: offsetNS, DurationNS: durationNS,
		Args: map[string]any{"shard": shard},
	})
	if remote == nil {
		return
	}
	// The shard's handling window sits inside the RPC window; without clock
	// agreement the best alignment centers the unaccounted time (network +
	// serialization) evenly around it.
	slack := durationNS - remote.DurationNS
	if slack < 0 {
		slack = 0
	}
	base := offsetNS + slack/2
	end := offsetNS + durationNS
	for _, rs := range remote.Spans {
		off := base + rs.OffsetNS
		dur := rs.DurationNS
		if off < offsetNS {
			off = offsetNS
		}
		if off > end {
			off = end
		}
		if off+dur > end {
			dur = end - off
		}
		if dur < 0 {
			dur = 0
		}
		s.t.Spans = append(s.t.Spans, StitchSpan{
			Name: rs.Name, Track: track, OffsetNS: off, DurationNS: dur, Args: rs.Args,
		})
	}
}

// ShardBreakdown sums the recorded per-shard RPC time — the slow-query log's
// per-shard attribution. Returns one entry per shard that saw traffic.
func (s *Stitch) ShardBreakdown() []ShardLeg {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	byShard := map[int]*ShardLeg{}
	var order []int
	for _, sp := range s.t.Spans {
		if sp.Track == 0 {
			continue
		}
		if _, isRPC := sp.Args["shard"]; !isRPC {
			continue // shard-reported child span, already inside an RPC window
		}
		sh := sp.Track - 1
		leg, ok := byShard[sh]
		if !ok {
			leg = &ShardLeg{Shard: sh}
			byShard[sh] = leg
			order = append(order, sh)
		}
		leg.Calls++
		leg.TotalNS += sp.DurationNS
		if sp.DurationNS > leg.SlowestNS {
			leg.SlowestNS = sp.DurationNS
		}
	}
	out := make([]ShardLeg, 0, len(order))
	for _, sh := range order {
		out = append(out, *byShard[sh])
	}
	return out
}

// Finish closes the trace — total duration, optional failure note — and
// returns the immutable Stitched record (nil on a nil Stitch).
func (s *Stitch) Finish(err error) *Stitched {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.t.DurationNS = time.Since(s.t.Start).Nanoseconds()
	if err != nil {
		s.t.Error = err.Error()
	}
	out := s.t
	return &out
}

// StitchRing retains completed stitched traces, oldest first, bounded.
type StitchRing struct {
	mu     sync.Mutex
	traces []*Stitched
	cap    int
}

// NewStitchRing returns a ring retaining up to cap traces (cap <= 0 selects
// DefaultTraceCap).
func NewStitchRing(cap int) *StitchRing {
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	return &StitchRing{cap: cap}
}

// Add retains one completed trace, evicting the oldest past the cap.
// Nil-safe on both receiver and argument.
func (r *StitchRing) Add(t *Stitched) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.traces) >= r.cap {
		copy(r.traces, r.traces[1:])
		r.traces[len(r.traces)-1] = t
		return
	}
	r.traces = append(r.traces, t)
}

// Snapshot returns up to limit retained traces, newest first (limit <= 0
// returns all).
func (r *StitchRing) Snapshot(limit int) []*Stitched {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Stitched
	for i := len(r.traces) - 1; i >= 0; i-- {
		out = append(out, r.traces[i])
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// trackName labels a stitched trace's Perfetto threads.
func trackName(track int) string {
	if track == 0 {
		return "router"
	}
	return "shard " + strconv.Itoa(track-1)
}
