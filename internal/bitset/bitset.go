// Package bitset provides a minimal dense bitset for tombstone bookkeeping:
// the rfs dynamic-maintenance delete set and the segmented engine's
// per-segment tombstone views. A nil *Set reads as empty, so read-mostly
// structures can share one nil pointer until the first delete, and Clone is
// cheap enough for the copy-on-write discipline the snapshot layer uses
// (clone, flip one bit, publish the clone; the original is never mutated
// again).
package bitset

// Set is a growable bitset over non-negative integers.
type Set struct {
	words []uint64
	count int
}

// New returns an empty set pre-sized for indices [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+63)/64)}
}

// Set marks index i and reports whether it was newly set. The set grows as
// needed; i must be non-negative.
func (s *Set) Set(i int) bool {
	w, b := i/64, uint(i%64)
	for w >= len(s.words) {
		s.words = append(s.words, 0)
	}
	if s.words[w]&(1<<b) != 0 {
		return false
	}
	s.words[w] |= 1 << b
	s.count++
	return true
}

// Get reports whether index i is set. A nil receiver and out-of-range
// indices read as unset.
func (s *Set) Get(i int) bool {
	if s == nil || i < 0 {
		return false
	}
	w := i / 64
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<(uint(i%64))) != 0
}

// Count returns the number of set indices. Nil-safe.
func (s *Set) Count() int {
	if s == nil {
		return 0
	}
	return s.count
}

// Clone returns an independent copy. Cloning nil returns an empty set, so
// copy-on-write callers never mutate a shared nil.
func (s *Set) Clone() *Set {
	if s == nil {
		return &Set{}
	}
	return &Set{words: append([]uint64(nil), s.words...), count: s.count}
}

// AppendIndices appends the set indices to dst in ascending order. Nil-safe.
func (s *Set) AppendIndices(dst []int) []int {
	if s == nil {
		return dst
	}
	for w, word := range s.words {
		for b := 0; word != 0; b++ {
			if word&1 != 0 {
				dst = append(dst, w*64+b)
			}
			word >>= 1
		}
	}
	return dst
}
