package bitset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestBasics(t *testing.T) {
	s := New(10)
	if s.Get(3) || s.Count() != 0 {
		t.Fatal("fresh set not empty")
	}
	if !s.Set(3) {
		t.Fatal("first Set(3) not new")
	}
	if s.Set(3) {
		t.Fatal("second Set(3) claims new")
	}
	if !s.Get(3) || s.Count() != 1 {
		t.Fatal("bit 3 not set")
	}
	// Growth past the pre-sized range.
	if !s.Set(1000) || !s.Get(1000) {
		t.Fatal("growth failed")
	}
	if s.Get(999) || s.Get(1001) {
		t.Fatal("neighbouring bits leaked")
	}
	if got := s.AppendIndices(nil); !reflect.DeepEqual(got, []int{3, 1000}) {
		t.Fatalf("AppendIndices = %v", got)
	}
}

func TestNilSafety(t *testing.T) {
	var s *Set
	if s.Get(0) || s.Count() != 0 {
		t.Fatal("nil set not empty")
	}
	if got := s.AppendIndices([]int{7}); !reflect.DeepEqual(got, []int{7}) {
		t.Fatalf("nil AppendIndices = %v", got)
	}
	c := s.Clone()
	if !c.Set(5) || !c.Get(5) {
		t.Fatal("clone of nil not writable")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := New(0)
	s.Set(1)
	c := s.Clone()
	c.Set(2)
	if s.Get(2) {
		t.Fatal("clone mutation visible in original")
	}
	if !c.Get(1) || c.Count() != 2 || s.Count() != 1 {
		t.Fatal("clone state wrong")
	}
}

func TestAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(0)
	ref := map[int]bool{}
	for i := 0; i < 2000; i++ {
		idx := rng.Intn(500)
		wantNew := !ref[idx]
		ref[idx] = true
		if got := s.Set(idx); got != wantNew {
			t.Fatalf("Set(%d) new=%v want %v", idx, got, wantNew)
		}
	}
	if s.Count() != len(ref) {
		t.Fatalf("Count=%d want %d", s.Count(), len(ref))
	}
	want := make([]int, 0, len(ref))
	for idx := range ref {
		want = append(want, idx)
	}
	sort.Ints(want)
	if got := s.AppendIndices(nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("AppendIndices mismatch")
	}
	for i := 0; i < 600; i++ {
		if s.Get(i) != ref[i] {
			t.Fatalf("Get(%d) = %v", i, s.Get(i))
		}
	}
}
