package source

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Formats the file importers understand.
const (
	FormatJSONL = "jsonl" // one JSON array (or {"label","vector"} object) per line
	FormatCSV   = "csv"   // numeric fields, optional leading label field
	FormatFVecs = "fvecs" // repeated records: int32 dim (LE) + dim float32s (LE)
)

// maxFVecsDim bounds the per-record dimension an .fvecs header may declare,
// so a corrupt or adversarial header cannot demand a giant allocation.
const maxFVecsDim = 1 << 16

// FileSource reads an embedding file in one of the supported formats.
type FileSource struct {
	path   string
	format string
}

// File builds a source for an embedding file. An empty format is inferred
// from the extension (.jsonl/.json, .csv, .fvecs); anything else is rejected
// here rather than at read time.
func File(path, format string) (*FileSource, error) {
	if format == "" {
		switch strings.ToLower(filepath.Ext(path)) {
		case ".jsonl", ".json":
			format = FormatJSONL
		case ".csv":
			format = FormatCSV
		case ".fvecs":
			format = FormatFVecs
		default:
			return nil, fmt.Errorf("source: cannot infer format from %q; pass one of jsonl, csv, fvecs", path)
		}
	}
	switch format {
	case FormatJSONL, FormatCSV, FormatFVecs:
	default:
		return nil, fmt.Errorf("source: unknown format %q (want jsonl, csv, or fvecs)", format)
	}
	return &FileSource{path: path, format: format}, nil
}

// Format returns the (possibly inferred) file format.
func (f *FileSource) Format() string { return f.format }

// Vectors reads and validates the whole file.
func (f *FileSource) Vectors() (*Batch, error) {
	file, err := os.Open(f.path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return Read(file, f.format)
}

// Read parses one embedding stream in the named format.
func Read(r io.Reader, format string) (*Batch, error) {
	switch format {
	case FormatJSONL:
		return ReadJSONL(r)
	case FormatCSV:
		return ReadCSV(r)
	case FormatFVecs:
		return ReadFVecs(r)
	default:
		return nil, fmt.Errorf("source: unknown format %q (want jsonl, csv, or fvecs)", format)
	}
}

// checkComponent rejects the non-finite values the distance kernels (and the
// SQ8 quantizer) cannot score. row and col are 1-based.
func checkComponent(row, col int, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("source: row %d, column %d: non-finite value %v", row, col, v)
	}
	return nil
}

// jsonlRow is the object form of a JSON-lines record.
type jsonlRow struct {
	Label  string    `json:"label"`
	Vector []float64 `json:"vector"`
}

// ReadJSONL parses JSON lines: each non-blank line is either a bare JSON
// array of numbers or an object {"label": "...", "vector": [...]}. Blank
// lines are skipped but still counted, so error rows match file lines
// (1-based).
func ReadJSONL(r io.Reader) (*Batch, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	b := &Batch{}
	labeled := false
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		var (
			v     []float64
			label string
		)
		if text[0] == '{' {
			var row jsonlRow
			if err := json.Unmarshal(text, &row); err != nil {
				return nil, fmt.Errorf("source: row %d: %w", line, err)
			}
			v, label = row.Vector, row.Label
			labeled = labeled || label != ""
		} else {
			if err := json.Unmarshal(text, &v); err != nil {
				return nil, fmt.Errorf("source: row %d: %w", line, err)
			}
		}
		if err := appendRow(b, line, v, label); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("source: row %d: %w", line+1, err)
	}
	return finishRows(b, labeled)
}

// ReadCSV parses comma-separated rows of numeric fields. A non-numeric first
// field is taken as the row's label; every remaining field must parse as a
// float. Rows are numbered by record (1-based); columns count vector
// components, so a leading label field is not a column.
func ReadCSV(r io.Reader) (*Batch, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // dimension agreement is checked with row context
	cr.TrimLeadingSpace = true
	b := &Batch{}
	labeled := false
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		row++
		if err != nil {
			return nil, fmt.Errorf("source: row %d: %w", row, err)
		}
		fields := rec
		var label string
		if len(fields) > 0 {
			if _, numErr := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64); numErr != nil {
				label = strings.TrimSpace(fields[0])
				labeled = labeled || label != ""
				fields = fields[1:]
			}
		}
		v := make([]float64, 0, len(fields))
		for i, f := range fields {
			f = strings.TrimSpace(f)
			if f == "" {
				if len(fields) == 1 {
					break // a lone empty field is an empty row, reported below
				}
				return nil, fmt.Errorf("source: row %d, column %d: empty field", row, i+1)
			}
			x, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("source: row %d, column %d: %w", row, i+1, err)
			}
			v = append(v, x)
		}
		if err := appendRow(b, row, v, label); err != nil {
			return nil, err
		}
	}
	return finishRows(b, labeled)
}

// ReadFVecs parses the raw little-endian .fvecs format: repeated records of
// an int32 dimension followed by that many float32 components. The first
// record fixes the dimension; later records must agree. The batch keeps the
// native float32 backing, so importing into a float32 system narrows
// nothing.
func ReadFVecs(r io.Reader) (*Batch, error) {
	br := bufio.NewReader(r)
	b := &Batch{}
	var head [4]byte
	for row := 1; ; row++ {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("source: row %d: truncated record header: %w", row, err)
		}
		dim := int(int32(binary.LittleEndian.Uint32(head[:])))
		switch {
		case dim == 0:
			return nil, fmt.Errorf("source: row %d: empty row", row)
		case dim < 0 || dim > maxFVecsDim:
			return nil, fmt.Errorf("source: row %d: implausible dimension %d (max %d)", row, dim, maxFVecsDim)
		case b.Dim == 0:
			b.Dim = dim
		case dim != b.Dim:
			return nil, fmt.Errorf("source: row %d: dimension %d, want %d", row, dim, b.Dim)
		}
		buf := make([]byte, 4*dim)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("source: row %d: truncated record: %w", row, err)
		}
		for i := 0; i < dim; i++ {
			v := math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
			if err := checkComponent(row, i+1, float64(v)); err != nil {
				return nil, err
			}
			b.Data32 = append(b.Data32, v)
		}
	}
	if b.Dim == 0 {
		return nil, fmt.Errorf("source: no vectors in input")
	}
	return b, nil
}

// appendRow validates one parsed float64 row against the batch and appends
// it. row is 1-based.
func appendRow(b *Batch, row int, v []float64, label string) error {
	if len(v) == 0 {
		return fmt.Errorf("source: row %d: empty row", row)
	}
	if b.Dim == 0 {
		b.Dim = len(v)
	} else if len(v) != b.Dim {
		return fmt.Errorf("source: row %d: dimension %d, want %d", row, len(v), b.Dim)
	}
	for i, x := range v {
		if err := checkComponent(row, i+1, x); err != nil {
			return err
		}
	}
	b.Data = append(b.Data, v...)
	b.Labels = append(b.Labels, label)
	return nil
}

// finishRows finalizes a float64 batch: label slices are dropped when no row
// carried one, and an empty input is rejected.
func finishRows(b *Batch, labeled bool) (*Batch, error) {
	if b.Dim == 0 {
		return nil, fmt.Errorf("source: no vectors in input")
	}
	if !labeled {
		b.Labels = nil
	}
	return b, nil
}
