// Package source defines the vector-ingestion seam of the engine: a
// VectorSource yields a row-major batch of equal-dimension vectors, and
// everything above it (store, RFS structure, query engine) is agnostic to
// where those vectors came from. The built-in synthetic extractor pipeline is
// one implementation (FromCorpus); external embedding files — JSON lines,
// CSV, and raw little-endian .fvecs — are another (File and the Read*
// functions in import.go).
//
// Importers validate while reading: non-finite components, dimension
// mismatches, and empty rows are rejected with errors naming the offending
// row and column (both 1-based), mirroring the unclean-corpus routing the
// SQ8 quantizer applies to generated features.
package source

import (
	"fmt"
	"math"

	"qdcbir/internal/dataset"
)

// Batch is a dense row-major vector set: N rows of Dim components in exactly
// one of the two backings. Data32 is the native backing of float32 sources
// (.fvecs); Data is the backing of everything else. Labels, when present,
// carries one ground-truth label per row ("category" or
// "category/subconcept").
type Batch struct {
	Dim    int
	Data   []float64 // row-major; nil when Data32 is set
	Data32 []float32 // row-major native float32 rows; nil when Data is set
	Labels []string  // optional; len 0 or Len()
}

// Len returns the number of rows.
func (b *Batch) Len() int {
	if b.Dim <= 0 {
		return 0
	}
	if b.Data32 != nil {
		return len(b.Data32) / b.Dim
	}
	return len(b.Data) / b.Dim
}

// Validate checks a batch assembled outside the importers against the same
// contract the importers enforce row by row: a positive dimension, exactly
// one backing whose length is a whole number of rows, finite components, and
// a label count of zero or Len().
func (b *Batch) Validate() error {
	if b.Dim <= 0 {
		return fmt.Errorf("source: invalid dimension %d", b.Dim)
	}
	if (b.Data == nil) == (b.Data32 == nil) {
		return fmt.Errorf("source: batch needs exactly one backing (float64 set: %t, float32 set: %t)",
			b.Data != nil, b.Data32 != nil)
	}
	var n int
	if b.Data32 != nil {
		if len(b.Data32)%b.Dim != 0 {
			return fmt.Errorf("source: float32 backing length %d not a multiple of dimension %d", len(b.Data32), b.Dim)
		}
		n = len(b.Data32) / b.Dim
		for i, v := range b.Data32 {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return fmt.Errorf("source: row %d, column %d: non-finite value %v", i/b.Dim+1, i%b.Dim+1, v)
			}
		}
	} else {
		if len(b.Data)%b.Dim != 0 {
			return fmt.Errorf("source: backing length %d not a multiple of dimension %d", len(b.Data), b.Dim)
		}
		n = len(b.Data) / b.Dim
		for i, v := range b.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("source: row %d, column %d: non-finite value %v", i/b.Dim+1, i%b.Dim+1, v)
			}
		}
	}
	if len(b.Labels) != 0 && len(b.Labels) != n {
		return fmt.Errorf("source: %d labels for %d rows", len(b.Labels), n)
	}
	return nil
}

// Infos derives per-row ground truth from the batch labels. A label of the
// form "category/subconcept" is used as-is; a bare "category" label maps to
// the subconcept "category/all"; an unlabeled batch puts every row in one
// synthetic subconcept, which keeps the corpus valid (sessions and searches
// work) while making ground-truth metrics vacuous.
func (b *Batch) Infos() []dataset.Info {
	n := b.Len()
	infos := make([]dataset.Info, n)
	for i := range infos {
		cat, sub := "imported", dataset.Key("imported", "all")
		if len(b.Labels) == n && b.Labels[i] != "" {
			cat, sub = splitLabel(b.Labels[i])
		}
		infos[i] = dataset.Info{ID: i, Category: cat, Subconcept: sub}
	}
	return infos
}

// splitLabel maps a row label onto the corpus's (category, subconcept key)
// pair.
func splitLabel(label string) (category, subconcept string) {
	for i := 0; i < len(label); i++ {
		if label[i] == '/' {
			return label[:i], label
		}
	}
	return label, dataset.Key(label, "all")
}

// VectorSource yields a complete vector set. Implementations load eagerly —
// the corpus, the store, and the RFS structure are all built over the full
// set anyway — and must return only batches that pass (*Batch).Validate.
type VectorSource interface {
	// Format identifies the source kind ("jsonl", "csv", "fvecs", "corpus").
	Format() string
	// Vectors loads the whole set as one batch.
	Vectors() (*Batch, error)
}

// corpusSource adapts an already-built corpus — in particular the synthetic
// extractor pipeline of internal/dataset — to the VectorSource interface.
type corpusSource struct{ c *dataset.Corpus }

// FromCorpus wraps a built corpus as a VectorSource: the batch aliases the
// corpus store's backing (callers must not mutate it) and carries the
// ground-truth subconcept keys as labels, so a system built from this source
// answers queries over exactly the generated geometry.
func FromCorpus(c *dataset.Corpus) VectorSource { return corpusSource{c} }

func (corpusSource) Format() string { return "corpus" }

func (s corpusSource) Vectors() (*Batch, error) {
	st := s.c.Store()
	b := &Batch{Dim: st.Dim(), Data: st.Backing()}
	if n := s.c.Len(); n > 0 {
		b.Labels = make([]string, n)
		for i := range b.Labels {
			b.Labels[i] = s.c.SubconceptOf(i)
		}
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}
