package source

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"qdcbir/internal/dataset"
)

// fvecsBytes encodes rows in the .fvecs wire format.
func fvecsBytes(rows [][]float32) []byte {
	var out []byte
	for _, r := range rows {
		var head [4]byte
		binary.LittleEndian.PutUint32(head[:], uint32(int32(len(r))))
		out = append(out, head[:]...)
		for _, v := range r {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			out = append(out, b[:]...)
		}
	}
	return out
}

func TestReadJSONL(t *testing.T) {
	in := `[1, 2, 3]

{"label": "cats/tabby", "vector": [4, 5, 6]}
[7,8,9]
`
	b, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if b.Dim != 3 || b.Len() != 3 {
		t.Fatalf("got dim %d, %d rows", b.Dim, b.Len())
	}
	want := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	for i, v := range want {
		if b.Data[i] != v {
			t.Fatalf("component %d: got %v, want %v", i, b.Data[i], v)
		}
	}
	if len(b.Labels) != 3 || b.Labels[1] != "cats/tabby" || b.Labels[0] != "" {
		t.Fatalf("labels: %q", b.Labels)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSV(t *testing.T) {
	// Rows 1-2 carry labels (non-numeric first field); row 3 is label-free.
	in := "dogs,1.5,2.5\ndogs/husky, 3.5 ,4.5\n0.5,0.25\n"
	b, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if b.Dim != 2 || b.Len() != 3 {
		t.Fatalf("got dim %d, %d rows", b.Dim, b.Len())
	}
	if b.Labels[0] != "dogs" || b.Labels[1] != "dogs/husky" || b.Labels[2] != "" {
		t.Fatalf("labels: %q", b.Labels)
	}
	if b.Data[2] != 3.5 || b.Data[5] != 0.25 {
		t.Fatalf("data: %v", b.Data)
	}
}

func TestReadFVecs(t *testing.T) {
	rows := [][]float32{{1, 2, 3, 4}, {5, 6, 7, 8}}
	b, err := ReadFVecs(strings.NewReader(string(fvecsBytes(rows))))
	if err != nil {
		t.Fatal(err)
	}
	if b.Dim != 4 || b.Len() != 2 || b.Data != nil {
		t.Fatalf("got dim %d, %d rows, float64 backing: %v", b.Dim, b.Len(), b.Data)
	}
	for i, v := range []float32{1, 2, 3, 4, 5, 6, 7, 8} {
		if b.Data32[i] != v {
			t.Fatalf("component %d: got %v, want %v", i, b.Data32[i], v)
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestImportErrorsNameRowAndColumn: every rejection class must point at the
// offending row (and column, where one exists).
func TestImportErrorsNameRowAndColumn(t *testing.T) {
	cases := []struct {
		name   string
		format string
		in     string
		want   []string // substrings the error must contain
	}{
		{"jsonl NaN", FormatJSONL, "[1, 2]\n[3, 1e999]\n", []string{"row 2"}},
		{"jsonl dim mismatch", FormatJSONL, "[1, 2]\n[3]\n", []string{"row 2", "dimension 1, want 2"}},
		{"jsonl empty row", FormatJSONL, "[1, 2]\n[]\n", []string{"row 2", "empty row"}},
		{"jsonl garbage", FormatJSONL, "[1, 2]\nnot json\n", []string{"row 2"}},
		{"jsonl blank lines counted", FormatJSONL, "[1, 2]\n\n\n[3]\n", []string{"row 4"}},
		{"jsonl empty input", FormatJSONL, "", []string{"no vectors"}},
		{"csv NaN", FormatCSV, "1,2\n3,NaN\n", []string{"row 2, column 2", "non-finite"}},
		{"csv +Inf", FormatCSV, "1,2\n+Inf,4\n", []string{"row 2, column 1", "non-finite"}},
		{"csv not a number", FormatCSV, "1,2\n3,x\n", []string{"row 2, column 2"}},
		{"csv dim mismatch", FormatCSV, "1,2\n3,4,5\n", []string{"row 2", "dimension 3, want 2"}},
		{"csv empty field", FormatCSV, "1,2\n3,,5\n", []string{"row 2, column 2", "empty field"}},
		{"csv empty input", FormatCSV, "", []string{"no vectors"}},
		{"fvecs empty row", FormatFVecs, string(fvecsBytes([][]float32{{1, 2}, {}})), []string{"row 2", "empty row"}},
		{"fvecs dim mismatch", FormatFVecs, string(fvecsBytes([][]float32{{1, 2}, {3}})), []string{"row 2", "dimension 1, want 2"}},
		{"fvecs NaN", FormatFVecs, string(fvecsBytes([][]float32{{1, 2}, {3, float32(math.NaN())}})), []string{"row 2, column 2", "non-finite"}},
		{"fvecs truncated", FormatFVecs, string(fvecsBytes([][]float32{{1, 2}})[:10]), []string{"row 1", "truncated"}},
		{"fvecs huge dim", FormatFVecs, "\xff\xff\xff\x7f", []string{"row 1", "implausible"}},
		{"fvecs empty input", FormatFVecs, "", []string{"no vectors"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.in), tc.format)
			if err == nil {
				t.Fatalf("no error for %q", tc.in)
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Fatalf("error %q does not mention %q", err, w)
				}
			}
		})
	}
}

func TestBatchValidate(t *testing.T) {
	ok := &Batch{Dim: 2, Data: []float64{1, 2, 3, 4}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    Batch
	}{
		{"zero dim", Batch{Dim: 0, Data: []float64{1}}},
		{"both backings", Batch{Dim: 1, Data: []float64{1}, Data32: []float32{1}}},
		{"no backing", Batch{Dim: 1}},
		{"ragged", Batch{Dim: 2, Data: []float64{1, 2, 3}}},
		{"ragged f32", Batch{Dim: 2, Data32: []float32{1, 2, 3}}},
		{"NaN", Batch{Dim: 1, Data: []float64{math.NaN()}}},
		{"Inf f32", Batch{Dim: 1, Data32: []float32{float32(math.Inf(-1))}}},
		{"label count", Batch{Dim: 1, Data: []float64{1, 2}, Labels: []string{"a"}}},
	}
	for _, tc := range cases {
		if err := tc.b.Validate(); err == nil {
			t.Fatalf("%s: validated", tc.name)
		}
	}
}

func TestBatchInfos(t *testing.T) {
	b := &Batch{Dim: 1, Data: []float64{1, 2, 3}, Labels: []string{"cats/tabby", "dogs", ""}}
	infos := b.Infos()
	want := []dataset.Info{
		{ID: 0, Category: "cats", Subconcept: "cats/tabby"},
		{ID: 1, Category: "dogs", Subconcept: "dogs/all"},
		{ID: 2, Category: "imported", Subconcept: "imported/all"},
	}
	for i := range want {
		if infos[i] != want[i] {
			t.Fatalf("info %d: got %+v, want %+v", i, infos[i], want[i])
		}
	}
	unlabeled := &Batch{Dim: 1, Data: []float64{1, 2}}
	for _, info := range unlabeled.Infos() {
		if info.Subconcept != "imported/all" {
			t.Fatalf("unlabeled info: %+v", info)
		}
	}
}

func TestFileFormatInference(t *testing.T) {
	for _, tc := range []struct{ path, explicit, want string }{
		{"a.jsonl", "", FormatJSONL},
		{"a.json", "", FormatJSONL},
		{"a.csv", "", FormatCSV},
		{"a.fvecs", "", FormatFVecs},
		{"a.bin", "fvecs", FormatFVecs},
	} {
		f, err := File(tc.path, tc.explicit)
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if f.Format() != tc.want {
			t.Fatalf("%s: inferred %q, want %q", tc.path, f.Format(), tc.want)
		}
	}
	if _, err := File("a.bin", ""); err == nil {
		t.Fatal("inferred a format for .bin")
	}
	if _, err := File("a.csv", "parquet"); err == nil {
		t.Fatal("accepted unknown format")
	}
}

func TestFromCorpus(t *testing.T) {
	spec := dataset.SmallSpec(1, 4, 120)
	c := dataset.BuildVectors(spec, 9, 0.02, 2)
	b, err := FromCorpus(c).Vectors()
	if err != nil {
		t.Fatal(err)
	}
	if b.Dim != 9 || b.Len() != c.Len() {
		t.Fatalf("got dim %d, %d rows; corpus has %d", b.Dim, b.Len(), c.Len())
	}
	for i := 0; i < c.Len(); i++ {
		if b.Labels[i] != c.SubconceptOf(i) {
			t.Fatalf("row %d label %q, corpus %q", i, b.Labels[i], c.SubconceptOf(i))
		}
		for j := 0; j < b.Dim; j++ {
			if b.Data[i*b.Dim+j] != c.Vectors[i][j] {
				t.Fatalf("row %d component %d differs", i, j)
			}
		}
	}
}
