package source

import (
	"math"
	"strings"
	"testing"
)

// checkFuzzBatch asserts the invariant every parser must uphold: a batch
// that comes back without an error passes full validation — consistent
// dimensions, finite components, coherent labels.
func checkFuzzBatch(t *testing.T, b *Batch, err error) {
	t.Helper()
	if err != nil {
		return
	}
	if b == nil {
		t.Fatal("nil batch with nil error")
	}
	if verr := b.Validate(); verr != nil {
		t.Fatalf("accepted batch fails validation: %v", verr)
	}
	if b.Len() == 0 {
		t.Fatal("accepted an empty batch")
	}
}

func FuzzReadJSONL(f *testing.F) {
	f.Add("[1, 2, 3]\n")
	f.Add("{\"label\": \"a/b\", \"vector\": [0.5, -0.5]}\n[1,2]\n")
	f.Add("[1e999]\n")
	f.Add("[]")
	f.Add("{\"vector\": null}")
	f.Fuzz(func(t *testing.T, in string) {
		b, err := ReadJSONL(strings.NewReader(in))
		checkFuzzBatch(t, b, err)
	})
}

func FuzzReadCSV(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("label,1.5\nNaN,2\n")
	f.Add("a,\"b\n")
	f.Add(",,,\n")
	f.Add("inf,-inf\n")
	f.Fuzz(func(t *testing.T, in string) {
		b, err := ReadCSV(strings.NewReader(in))
		checkFuzzBatch(t, b, err)
	})
}

func FuzzReadFVecs(f *testing.F) {
	f.Add(fvecsBytes([][]float32{{1, 2}, {3, 4}}))
	f.Add(fvecsBytes([][]float32{{float32(math.Inf(1))}}))
	f.Add([]byte("\xff\xff\xff\xff"))
	f.Add([]byte("\x02\x00\x00\x00\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		b, err := ReadFVecs(strings.NewReader(string(in)))
		checkFuzzBatch(t, b, err)
	})
}
