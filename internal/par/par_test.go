package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestNNormalizes(t *testing.T) {
	if N(0) != runtime.GOMAXPROCS(0) || N(-3) != runtime.GOMAXPROCS(0) {
		t.Errorf("N(<=0) = %d, want GOMAXPROCS", N(0))
	}
	if N(7) != 7 {
		t.Errorf("N(7) = %d", N(7))
	}
}

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, p := range []int{1, 2, 8, 100} {
		const n = 257
		var hits [n]atomic.Int32
		if err := Do(context.Background(), n, p, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("p=%d: index %d ran %d times", p, i, got)
			}
		}
	}
}

func TestDoEmpty(t *testing.T) {
	if err := Do(context.Background(), 0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDoReportsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, p := range []int{1, 4} {
		err := Do(context.Background(), 100, p, func(i int) error {
			switch i {
			case 90:
				return errB
			case 10:
				return errA
			}
			return nil
		})
		if err != errA {
			t.Errorf("p=%d: err = %v, want %v", p, err, errA)
		}
	}
}

func TestDoCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := Do(ctx, 10000, 2, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10000 {
		t.Errorf("cancellation did not stop the pool (%d ran)", n)
	}
}

func TestDoPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	if err := Do(ctx, 50, 1, func(int) error { ran.Add(1); return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d items ran under a cancelled context", ran.Load())
	}
}
