// Package par provides the bounded fork-join primitive used by every
// parallel phase of the system: corpus feature extraction, STR bulk-load
// tiling, representative selection, and the final localized k-NN subqueries.
//
// All helpers are deterministic by construction — work is identified by
// index, results are written to index-addressed slots by the callers, and
// errors are reported by the lowest failing index — so a caller that is
// correct at Parallelism 1 produces byte-identical output at any worker
// count. Cancellation is cooperative: once the context is done, no new work
// items start and the context error is returned (a lower-indexed work error
// still wins, keeping the reported error independent of scheduling).
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// N normalizes a parallelism knob: values <= 0 mean "one worker per
// available CPU" (runtime.GOMAXPROCS(0)).
func N(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// Do runs fn(0) … fn(n-1) on up to p workers (p <= 0 uses N(0)) and waits
// for completion. If any invocation returns an error, the error of the
// lowest index is returned; if the context is cancelled first, remaining
// items are skipped and ctx.Err() is returned. fn must confine its writes to
// per-index data; Do provides the happens-before edge between all work and
// its return.
func Do(ctx context.Context, n, p int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	p = N(p)
	if p > n {
		p = n
	}
	if p == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		mu     sync.Mutex
		errIdx = -1
		errVal error
		wg     sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, errVal = i, err
		}
		mu.Unlock()
	}
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if errIdx >= 0 {
		return errVal
	}
	return ctx.Err()
}
