package metrics

import (
	"math"
	"testing"
)

func rel(ids ...int) map[int]bool {
	m := make(map[int]bool)
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func TestPrecision(t *testing.T) {
	cases := []struct {
		name      string
		retrieved []int
		relevant  map[int]bool
		want      float64
	}{
		{"all relevant", []int{1, 2, 3}, rel(1, 2, 3), 1},
		{"half", []int{1, 2, 3, 4}, rel(1, 2), 0.5},
		{"none", []int{5, 6}, rel(1, 2), 0},
		{"empty retrieval", nil, rel(1), 0},
		{"duplicates counted once", []int{1, 1, 2}, rel(1), 1.0 / 3.0},
	}
	for _, c := range cases {
		if got := Precision(c.retrieved, c.relevant); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Precision = %v want %v", c.name, got, c.want)
		}
	}
}

func TestRecall(t *testing.T) {
	if got := Recall([]int{1, 2}, rel(1, 2, 3, 4)); got != 0.5 {
		t.Errorf("Recall = %v", got)
	}
	if got := Recall([]int{1}, nil); got != 0 {
		t.Errorf("Recall empty relevant = %v", got)
	}
}

// The paper's identity: when |retrieved| == |relevant|, precision == recall.
func TestPrecisionEqualsRecallAtGroundTruthSize(t *testing.T) {
	relevant := rel(1, 2, 3, 4, 5)
	retrieved := []int{1, 2, 9, 8, 5} // same size as relevant
	p := Precision(retrieved, relevant)
	r := Recall(retrieved, relevant)
	if p != r {
		t.Errorf("precision %v != recall %v at equal sizes", p, r)
	}
}

func subMap(m map[int]string) func(int) string {
	return func(id int) string { return m[id] }
}

func TestGTIR(t *testing.T) {
	sub := subMap(map[int]string{1: "eagle", 2: "owl", 3: "sparrow", 4: "car", 5: "eagle"})
	targets := []string{"eagle", "owl", "sparrow"}
	cases := []struct {
		name      string
		retrieved []int
		want      float64
	}{
		{"all covered", []int{1, 2, 3}, 1},
		{"one of three", []int{1, 5, 4}, 1.0 / 3.0},
		{"none", []int{4}, 0},
		{"empty", nil, 0},
		{"duplicate subconcept counts once", []int{1, 5}, 1.0 / 3.0},
	}
	for _, c := range cases {
		if got := GTIR(c.retrieved, targets, sub); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: GTIR = %v want %v", c.name, got, c.want)
		}
	}
	if got := GTIR([]int{1}, nil, sub); got != 0 {
		t.Errorf("GTIR with no targets = %v", got)
	}
}

func TestCoveredSubconcepts(t *testing.T) {
	sub := subMap(map[int]string{1: "eagle", 2: "owl", 3: "other"})
	got := CoveredSubconcepts([]int{3, 2, 1, 1}, []string{"eagle", "sparrow", "owl"}, sub)
	// Order follows the target list, not retrieval order.
	if len(got) != 2 || got[0] != "eagle" || got[1] != "owl" {
		t.Errorf("CoveredSubconcepts = %v", got)
	}
}

func TestAveragePrecision(t *testing.T) {
	relevant := rel(1, 2)
	// Relevant at ranks 1 and 3: AP = (1/1 + 2/3)/2.
	got := AveragePrecision([]int{1, 9, 2, 8}, relevant)
	want := (1.0 + 2.0/3.0) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("AP = %v want %v", got, want)
	}
	if AveragePrecision([]int{1}, nil) != 0 {
		t.Error("AP with empty relevant should be 0")
	}
	// Perfect ranking has AP 1.
	if got := AveragePrecision([]int{1, 2}, relevant); got != 1 {
		t.Errorf("perfect AP = %v", got)
	}
	// Missing relevant images lower AP below 1.
	if got := AveragePrecision([]int{1}, relevant); got != 0.5 {
		t.Errorf("partial AP = %v", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}
