// Package metrics computes the retrieval-quality measures reported in the
// paper's evaluation (§5.2.1): precision, recall, and the Ground Truth
// Inclusion Ratio (GTIR) — the fraction of a query's target subconcepts that
// appear at least once among the retrieved images.
package metrics

// Precision returns |retrieved ∩ relevant| / |retrieved|, or 0 for an empty
// retrieval. IDs are opaque integers (rstar.ItemID values in practice).
func Precision(retrieved []int, relevant map[int]bool) float64 {
	if len(retrieved) == 0 {
		return 0
	}
	return float64(hitCount(retrieved, relevant)) / float64(len(retrieved))
}

// Recall returns |retrieved ∩ relevant| / |relevant|, or 0 when the relevant
// set is empty. The paper retrieves exactly |ground truth| images, making
// precision and recall numerically equal (§5.2.1); tests assert that identity.
func Recall(retrieved []int, relevant map[int]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	return float64(hitCount(retrieved, relevant)) / float64(len(relevant))
}

func hitCount(retrieved []int, relevant map[int]bool) int {
	seen := make(map[int]bool, len(retrieved))
	hits := 0
	for _, id := range retrieved {
		if seen[id] {
			continue // count each image once even if listed twice
		}
		seen[id] = true
		if relevant[id] {
			hits++
		}
	}
	return hits
}

// GTIR returns the ground-truth inclusion ratio: the number of distinct
// target subconcepts represented in the retrieval divided by the total number
// of target subconcepts. subconceptOf maps an image ID to its subconcept
// label ("" or a non-target label contributes nothing).
func GTIR(retrieved []int, targets []string, subconceptOf func(int) string) float64 {
	if len(targets) == 0 {
		return 0
	}
	targetSet := make(map[string]bool, len(targets))
	for _, s := range targets {
		targetSet[s] = true
	}
	covered := make(map[string]bool)
	for _, id := range retrieved {
		if s := subconceptOf(id); targetSet[s] {
			covered[s] = true
		}
	}
	return float64(len(covered)) / float64(len(targets))
}

// CoveredSubconcepts returns the distinct target subconcepts present in the
// retrieval, in target order. Qualitative reports (Figs 4-9) print these.
func CoveredSubconcepts(retrieved []int, targets []string, subconceptOf func(int) string) []string {
	targetSet := make(map[string]bool, len(targets))
	for _, s := range targets {
		targetSet[s] = true
	}
	covered := make(map[string]bool)
	for _, id := range retrieved {
		if s := subconceptOf(id); targetSet[s] {
			covered[s] = true
		}
	}
	var out []string
	for _, s := range targets {
		if covered[s] {
			out = append(out, s)
		}
	}
	return out
}

// AveragePrecision returns the mean of precision-at-i over the ranks i where
// a relevant image appears — the standard AP measure, useful for finer-grained
// comparisons than the paper's single precision number.
func AveragePrecision(ranked []int, relevant map[int]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	var hits int
	var sum float64
	seen := make(map[int]bool, len(ranked))
	for i, id := range ranked {
		if seen[id] {
			continue
		}
		seen[id] = true
		if relevant[id] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(len(relevant))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
