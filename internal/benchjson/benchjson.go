// Package benchjson defines the benchmark-result JSON schema shared by the
// BENCH_*.json documents in the repository root, `qdbench -json` output, and
// `qdbench -compare` regression checking. One schema serves two shapes:
// single-run files carry a Result per benchmark; before/after documents
// (hand-curated across a refactor) carry Before and After. Compare accepts
// either shape on either side.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
)

// Metrics are one benchmark's headline numbers, matching
// testing.BenchmarkResult.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Benchmark is one named entry. Single-run files set Result; curated
// before/after documents set Before and After (and usually Speedup).
type Benchmark struct {
	Name    string   `json:"name"`
	Result  *Metrics `json:"result,omitempty"`
	Before  *Metrics `json:"before,omitempty"`
	After   *Metrics `json:"after,omitempty"`
	Speedup float64  `json:"speedup,omitempty"`
	Note    string   `json:"note,omitempty"`
}

// Current returns the entry's authoritative numbers: Result when present,
// otherwise After (a curated document's current state). Nil when the entry
// carries neither.
func (b *Benchmark) Current() *Metrics {
	if b.Result != nil {
		return b.Result
	}
	return b.After
}

// File is one benchmark document.
type File struct {
	Description string      `json:"description,omitempty"`
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	CPU         string      `json:"cpu,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

// NewFile returns an empty document stamped with the host's identity.
func NewFile(description string) *File {
	return &File{
		Description: description,
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPU:         cpuModel(),
	}
}

// cpuModel best-effort reads the CPU model name (Linux /proc/cpuinfo; empty
// elsewhere — the field is informational).
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "model name") {
			if _, value, ok := strings.Cut(line, ":"); ok {
				return strings.TrimSpace(value)
			}
		}
	}
	return ""
}

// Load reads and validates a benchmark document.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	for i := range f.Benchmarks {
		b := &f.Benchmarks[i]
		if b.Name == "" {
			return nil, fmt.Errorf("benchjson: %s: benchmark %d has no name", path, i)
		}
		if b.Current() == nil {
			return nil, fmt.Errorf("benchjson: %s: %s carries neither result nor after", path, b.Name)
		}
	}
	return &f, nil
}

// Write encodes the document as indented JSON.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// WriteFile writes the document to path.
func (f *File) WriteFile(path string) error {
	var sb strings.Builder
	if err := f.Write(&sb); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// Comparison is one benchmark's baseline-vs-current verdict.
type Comparison struct {
	Name      string
	Baseline  float64 // baseline ns/op
	Current   float64 // current ns/op
	Ratio     float64 // current / baseline (> 1 is slower)
	Regressed bool
}

// Report is the outcome of comparing a current run against a baseline.
type Report struct {
	Comparisons []Comparison
	// Missing lists baseline benchmarks absent from the current run — a
	// silently dropped benchmark must not pass as "no regression".
	Missing []string
}

// Regressions returns the entries whose slowdown exceeded the threshold.
func (r *Report) Regressions() []Comparison {
	var out []Comparison
	for _, c := range r.Comparisons {
		if c.Regressed {
			out = append(out, c)
		}
	}
	return out
}

// OK reports whether the comparison passed: no regression and no benchmark
// missing.
func (r *Report) OK() bool { return len(r.Regressions()) == 0 && len(r.Missing) == 0 }

// Compare checks current against baseline: every baseline benchmark must be
// present in current with ns/op at most threshold times the baseline's
// (threshold 1.15 = 15% slower tolerated). Benchmarks only in current are
// ignored — adding benchmarks is not a regression.
func Compare(baseline, current *File, threshold float64) *Report {
	rep := &Report{}
	byName := make(map[string]*Metrics, len(current.Benchmarks))
	for i := range current.Benchmarks {
		byName[current.Benchmarks[i].Name] = current.Benchmarks[i].Current()
	}
	for i := range baseline.Benchmarks {
		b := &baseline.Benchmarks[i]
		base := b.Current()
		cur, ok := byName[b.Name]
		if !ok || cur == nil {
			rep.Missing = append(rep.Missing, b.Name)
			continue
		}
		c := Comparison{Name: b.Name, Baseline: base.NsPerOp, Current: cur.NsPerOp}
		if base.NsPerOp > 0 {
			c.Ratio = cur.NsPerOp / base.NsPerOp
			c.Regressed = c.Ratio > threshold
		}
		rep.Comparisons = append(rep.Comparisons, c)
	}
	sort.Strings(rep.Missing)
	return rep
}

// WriteText renders the report as an aligned human-readable table.
func (r *Report) WriteText(w io.Writer, threshold float64) {
	fmt.Fprintf(w, "%-50s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio")
	for _, c := range r.Comparisons {
		verdict := ""
		if c.Regressed {
			verdict = "  REGRESSION"
		}
		fmt.Fprintf(w, "%-50s %14.0f %14.0f %7.2fx%s\n", c.Name, c.Baseline, c.Current, c.Ratio, verdict)
	}
	for _, name := range r.Missing {
		fmt.Fprintf(w, "%-50s MISSING from current run\n", name)
	}
	if r.OK() {
		fmt.Fprintf(w, "PASS: no benchmark slower than %.2fx baseline\n", threshold)
	} else {
		fmt.Fprintf(w, "FAIL: %d regression(s), %d missing (threshold %.2fx)\n",
			len(r.Regressions()), len(r.Missing), threshold)
	}
}
