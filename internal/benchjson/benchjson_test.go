package benchjson

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleFile(ns float64) *File {
	f := NewFile("test run")
	f.Benchmarks = []Benchmark{
		{Name: "BenchmarkA", Result: &Metrics{NsPerOp: ns, BytesPerOp: 64, AllocsPerOp: 2}},
		{Name: "BenchmarkB", Result: &Metrics{NsPerOp: 500, BytesPerOp: 0, AllocsPerOp: 0}},
	}
	return f
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	orig := sampleFile(1000)
	if err := orig.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Description != orig.Description || got.GOOS != orig.GOOS || len(got.Benchmarks) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if *got.Benchmarks[0].Result != *orig.Benchmarks[0].Result {
		t.Errorf("metrics round trip: %+v vs %+v", got.Benchmarks[0].Result, orig.Benchmarks[0].Result)
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"syntax.json":  `{"benchmarks": [`,
		"noname.json":  `{"benchmarks": [{"result": {"ns_per_op": 1}}]}`,
		"nonums.json":  `{"benchmarks": [{"name": "X"}]}`,
		"missing.json": "", // never written: Load must surface the open error
	} {
		path := filepath.Join(dir, name)
		if body != "" {
			if err := writeString(path, body); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := Load(path); err == nil {
			t.Errorf("%s: Load accepted malformed input", name)
		}
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := sampleFile(1000)
	// 10% slower on A: inside a 1.15 threshold, outside 1.05.
	cur := sampleFile(1100)
	if rep := Compare(base, cur, 1.15); !rep.OK() {
		t.Errorf("10%% slowdown flagged at 1.15x: %+v", rep.Regressions())
	}
	rep := Compare(base, cur, 1.05)
	if rep.OK() || len(rep.Regressions()) != 1 || rep.Regressions()[0].Name != "BenchmarkA" {
		t.Errorf("10%% slowdown not flagged at 1.05x: %+v", rep)
	}
	// The curated before/after shape compares by After.
	curated := NewFile("curated")
	curated.Benchmarks = []Benchmark{
		{Name: "BenchmarkA", Before: &Metrics{NsPerOp: 5000}, After: &Metrics{NsPerOp: 1000}},
		{Name: "BenchmarkB", Before: &Metrics{NsPerOp: 800}, After: &Metrics{NsPerOp: 500}},
	}
	if rep := Compare(curated, cur, 1.15); !rep.OK() {
		t.Errorf("curated baseline comparison failed: %+v", rep)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := sampleFile(1000)
	cur := sampleFile(1000)
	cur.Benchmarks = cur.Benchmarks[:1] // drop BenchmarkB
	rep := Compare(base, cur, 1.5)
	if rep.OK() || len(rep.Missing) != 1 || rep.Missing[0] != "BenchmarkB" {
		t.Fatalf("dropped benchmark not reported: %+v", rep)
	}
	var sb strings.Builder
	rep.WriteText(&sb, 1.5)
	if !strings.Contains(sb.String(), "MISSING") || !strings.Contains(sb.String(), "FAIL") {
		t.Errorf("report text: %s", sb.String())
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := sampleFile(0)
	cur := sampleFile(99999)
	// A zero baseline cannot form a ratio; the entry is compared but never
	// flagged (and never divides by zero).
	rep := Compare(base, cur, 1.15)
	for _, c := range rep.Comparisons {
		if c.Name == "BenchmarkA" && (c.Regressed || c.Ratio != 0) {
			t.Errorf("zero baseline mishandled: %+v", c)
		}
	}
}

func writeString(path, body string) error {
	return os.WriteFile(path, []byte(body), 0o644)
}
