package vec

import (
	"fmt"
	"math"
)

// Stats holds per-dimension summary statistics over a set of vectors. It is
// the basis for corpus normalization and for variance-weighted distances used
// by the Query Point Movement baseline.
type Stats struct {
	N        int    // number of vectors observed
	Mean     Vector // per-dimension mean
	Variance Vector // per-dimension population variance
	Min      Vector // per-dimension minimum
	Max      Vector // per-dimension maximum
}

// ComputeStats scans vs once (Welford's algorithm) and returns their
// per-dimension statistics. It panics on an empty input.
func ComputeStats(vs []Vector) *Stats {
	if len(vs) == 0 {
		panic("vec: ComputeStats of empty set")
	}
	dim := len(vs[0])
	s := &Stats{
		N:        len(vs),
		Mean:     make(Vector, dim),
		Variance: make(Vector, dim),
		Min:      vs[0].Clone(),
		Max:      vs[0].Clone(),
	}
	m2 := make(Vector, dim)
	for n, v := range vs {
		mustSameDim(s.Mean, v)
		for i, x := range v {
			delta := x - s.Mean[i]
			s.Mean[i] += delta / float64(n+1)
			m2[i] += delta * (x - s.Mean[i])
			if x < s.Min[i] {
				s.Min[i] = x
			}
			if x > s.Max[i] {
				s.Max[i] = x
			}
		}
	}
	for i := range m2 {
		s.Variance[i] = m2[i] / float64(len(vs))
	}
	return s
}

// StdDev returns the per-dimension population standard deviation.
func (s *Stats) StdDev() Vector {
	sd := make(Vector, len(s.Variance))
	for i, v := range s.Variance {
		sd[i] = math.Sqrt(v)
	}
	return sd
}

// InverseVariance returns per-dimension weights 1/(variance_i + eps). The eps
// guard keeps constant dimensions from producing infinite weights; MindReader-
// style feedback uses these as the diagonal of its distance metric.
func (s *Stats) InverseVariance(eps float64) Vector {
	w := make(Vector, len(s.Variance))
	for i, v := range s.Variance {
		w[i] = 1 / (v + eps)
	}
	return w
}

// Normalizer rescales vectors into a canonical range so that no feature
// family (colour vs texture vs edge) dominates Euclidean distances merely by
// having larger raw magnitudes.
type Normalizer interface {
	// Apply returns the normalized copy of v.
	Apply(v Vector) Vector
	// Dim returns the dimensionality the normalizer was fitted on.
	Dim() int
}

// MinMaxNormalizer maps each dimension affinely onto [0, 1] using the fitted
// min and max. Dimensions that were constant in the fitting corpus map to 0.
type MinMaxNormalizer struct {
	Min, Max Vector
}

// FitMinMax fits a MinMaxNormalizer on vs.
func FitMinMax(vs []Vector) *MinMaxNormalizer {
	st := ComputeStats(vs)
	return &MinMaxNormalizer{Min: st.Min, Max: st.Max}
}

// Dim returns the fitted dimensionality.
func (n *MinMaxNormalizer) Dim() int { return len(n.Min) }

// Apply maps v into the unit hypercube.
func (n *MinMaxNormalizer) Apply(v Vector) Vector {
	mustSameDim(v, n.Min)
	out := make(Vector, len(v))
	for i, x := range v {
		r := n.Max[i] - n.Min[i]
		if r == 0 {
			out[i] = 0
			continue
		}
		out[i] = (x - n.Min[i]) / r
	}
	return out
}

// ZScoreNormalizer standardizes each dimension to zero mean and unit variance
// over the fitting corpus. Constant dimensions map to 0.
type ZScoreNormalizer struct {
	Mean, Std Vector
}

// FitZScore fits a ZScoreNormalizer on vs.
func FitZScore(vs []Vector) *ZScoreNormalizer {
	st := ComputeStats(vs)
	return &ZScoreNormalizer{Mean: st.Mean, Std: st.StdDev()}
}

// Dim returns the fitted dimensionality.
func (n *ZScoreNormalizer) Dim() int { return len(n.Mean) }

// Apply standardizes v.
func (n *ZScoreNormalizer) Apply(v Vector) Vector {
	mustSameDim(v, n.Mean)
	out := make(Vector, len(v))
	for i, x := range v {
		if n.Std[i] == 0 {
			out[i] = 0
			continue
		}
		out[i] = (x - n.Mean[i]) / n.Std[i]
	}
	return out
}

// ApplyAll normalizes every vector in vs with n and returns the new slice.
func ApplyAll(n Normalizer, vs []Vector) []Vector {
	out := make([]Vector, len(vs))
	for i, v := range vs {
		out[i] = n.Apply(v)
	}
	return out
}

// Matrix is a small dense row-major matrix used by the PCA substrate.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("vec: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a Vector sharing the matrix backing array.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// MulVec returns m · v.
func (m *Matrix) MulVec(v Vector) Vector {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("vec: MulVec dimension mismatch %d vs %d", len(v), m.Cols))
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), v)
	}
	return out
}

// Transpose returns a new transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}
