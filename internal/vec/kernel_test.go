package vec

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// randomVector draws components from a mix of regimes: ordinary values,
// tiny/huge magnitudes, and (when special is true) NaN and ±Inf, so the
// bit-identity property is exercised where floating point is least forgiving.
func randomVector(rng *rand.Rand, dim int, special bool) Vector {
	v := make(Vector, dim)
	for i := range v {
		switch rng.Intn(10) {
		case 0:
			v[i] = 0
		case 1:
			v[i] = rng.NormFloat64() * 1e154 // squares overflow to +Inf
		case 2:
			v[i] = rng.NormFloat64() * 1e-154
		case 3:
			if special {
				switch rng.Intn(3) {
				case 0:
					v[i] = math.NaN()
				case 1:
					v[i] = math.Inf(1)
				default:
					v[i] = math.Inf(-1)
				}
			} else {
				v[i] = rng.NormFloat64()
			}
		default:
			v[i] = rng.NormFloat64()
		}
	}
	return v
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestSquaredDistsToMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for dim := 1; dim <= 64; dim++ {
		for trial := 0; trial < 20; trial++ {
			special := trial%4 == 3
			q := randomVector(rng, dim, special)
			n := rng.Intn(9)
			block := make([]float64, 0, n*dim)
			rows := make([]Vector, n)
			for r := 0; r < n; r++ {
				rows[r] = randomVector(rng, dim, special)
				block = append(block, rows[r]...)
			}
			out := make([]float64, n)
			SquaredDistsTo(q, block, out)
			for r := 0; r < n; r++ {
				if want := SqL2(q, rows[r]); !sameBits(out[r], want) {
					t.Fatalf("dim %d row %d: batch %x scalar %x",
						dim, r, math.Float64bits(out[r]), math.Float64bits(want))
				}
			}
		}
	}
}

func TestWeightedSquaredDistsToMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for dim := 1; dim <= 64; dim++ {
		for trial := 0; trial < 20; trial++ {
			special := trial%4 == 3
			q := randomVector(rng, dim, special)
			w := make(Vector, dim)
			for i := range w {
				w[i] = math.Abs(rng.NormFloat64())
			}
			n := 1 + rng.Intn(8)
			block := make([]float64, 0, n*dim)
			rows := make([]Vector, n)
			for r := 0; r < n; r++ {
				rows[r] = randomVector(rng, dim, special)
				block = append(block, rows[r]...)
			}
			out := make([]float64, n)
			WeightedSquaredDistsTo(q, w, block, out)
			for r := 0; r < n; r++ {
				if want := WeightedSqL2(q, rows[r], w); !sameBits(out[r], want) {
					t.Fatalf("dim %d row %d: batch %x scalar %x",
						dim, r, math.Float64bits(out[r]), math.Float64bits(want))
				}
			}
		}
	}
}

// checkCapped asserts the SquaredDistCapped contract against the scalar
// reference for one (q, v, limit) triple: below-limit equivalence, and
// bit-identity whenever the capped result is below the limit.
func checkCapped(t *testing.T, q, v Vector, limit float64) {
	t.Helper()
	exact := SqL2(q, v)
	got := SquaredDistCapped(q, v, limit)
	if (got < limit) != (exact < limit) {
		t.Fatalf("capped decision diverged: got %v exact %v limit %v", got, exact, limit)
	}
	if got < limit && !sameBits(got, exact) {
		t.Fatalf("admitted capped value not exact: got %x exact %x limit %v",
			math.Float64bits(got), math.Float64bits(exact), limit)
	}
}

func checkWeightedCapped(t *testing.T, q, v, w Vector, limit float64) {
	t.Helper()
	exact := WeightedSqL2(q, v, w)
	got := WeightedSquaredDistCapped(q, v, w, limit)
	if (got < limit) != (exact < limit) {
		t.Fatalf("weighted capped decision diverged: got %v exact %v limit %v", got, exact, limit)
	}
	if got < limit && !sameBits(got, exact) {
		t.Fatalf("admitted weighted capped value not exact: got %x exact %x limit %v",
			math.Float64bits(got), math.Float64bits(exact), limit)
	}
}

func TestSquaredDistCappedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for dim := 1; dim <= 64; dim++ {
		for trial := 0; trial < 30; trial++ {
			special := trial%4 == 3
			q := randomVector(rng, dim, special)
			v := randomVector(rng, dim, special)
			exact := SqL2(q, v)
			limits := []float64{
				0, exact, // the boundary itself: exact < exact must be false both ways
				math.Nextafter(exact, math.Inf(1)), // just above: admits exactly
				exact / 2, exact * 2,
				rng.Float64() * float64(dim) * 4,
				math.Inf(1), math.Inf(-1), math.NaN(),
			}
			for _, limit := range limits {
				checkCapped(t, q, v, limit)
			}
		}
	}
}

func TestWeightedSquaredDistCappedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for dim := 1; dim <= 64; dim++ {
		for trial := 0; trial < 30; trial++ {
			special := trial%4 == 3
			q := randomVector(rng, dim, special)
			v := randomVector(rng, dim, special)
			w := make(Vector, dim)
			for i := range w {
				w[i] = math.Abs(rng.NormFloat64())
				if rng.Intn(8) == 0 {
					w[i] = 0
				}
			}
			exact := WeightedSqL2(q, v, w)
			limits := []float64{
				0, exact,
				math.Nextafter(exact, math.Inf(1)),
				exact / 2, exact * 2,
				math.Inf(1), math.NaN(),
			}
			for _, limit := range limits {
				checkWeightedCapped(t, q, v, w, limit)
			}
		}
	}
}

// refHeap is the container/heap max-heap selector the baselines used before
// TopK; TopK must reproduce its retained set exactly, ties included.
type refEntry struct {
	dist float64
	id   int
}
type refHeap []refEntry

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEntry)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func refTopK(k int, dists []float64) []int {
	if k <= 0 {
		return nil
	}
	h := make(refHeap, 0, k)
	for id, d := range dists {
		if len(h) < k {
			heap.Push(&h, refEntry{dist: d, id: id})
			continue
		}
		if d < h[0].dist {
			h[0] = refEntry{dist: d, id: id}
			heap.Fix(&h, 0)
		}
	}
	out := make([]refEntry, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].dist != out[j].dist {
			return out[i].dist < out[j].dist
		}
		return out[i].id < out[j].id
	})
	ids := make([]int, len(out))
	for i, e := range out {
		ids[i] = e.id
	}
	return ids
}

func TestTopKMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(200)
		k := rng.Intn(30)
		dists := make([]float64, n)
		hasNaN := false
		for i := range dists {
			// Few distinct values force heavy ties: the regime where heap
			// tie behaviour could diverge.
			dists[i] = float64(rng.Intn(5))
			if rng.Intn(20) == 0 {
				dists[i] = math.NaN()
				hasNaN = true
			}
		}
		want := refTopK(k, dists)
		sel := NewTopK(k)
		for id, d := range dists {
			sel.Add(d, id)
		}
		got := sel.AppendIDs(nil)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d want %d", trial, len(got), len(want))
		}
		if hasNaN {
			// NaN distances admit no total order, so the reference's
			// sort.Slice permutation is algorithm-defined; only the retained
			// set is contractual there.
			gs, ws := append([]int{}, got...), append([]int{}, want...)
			sort.Ints(gs)
			sort.Ints(ws)
			got, want = gs, ws
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d k=%d): pos %d got %d want %d\ngot  %v\nwant %v",
					trial, n, k, i, got[i], want[i], got, want)
			}
		}
	}
}

func TestTopKThresholdAdmission(t *testing.T) {
	sel := NewTopK(2)
	if thr := sel.Threshold(); !math.IsInf(thr, 1) {
		t.Fatalf("empty threshold %v", thr)
	}
	sel.Add(4, 0)
	sel.Add(1, 1)
	if thr := sel.Threshold(); thr != 4 {
		t.Fatalf("threshold %v want 4", thr)
	}
	sel.Add(4, 2) // not strictly below: rejected, like the heap's d < h[0]
	sel.Add(3, 3)
	if thr := sel.Threshold(); thr != 3 {
		t.Fatalf("threshold %v want 3", thr)
	}
	got := sel.AppendIDs(nil)
	want := []int{1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

// bytesToVector reinterprets fuzz bytes as float64 components, keeping
// whatever NaN/Inf/denormal patterns the fuzzer discovers.
func bytesToVector(b []byte, dim int) Vector {
	v := make(Vector, dim)
	for i := 0; i < dim; i++ {
		var bits uint64
		for j := 0; j < 8; j++ {
			idx := (i*8 + j) % len(b)
			bits = bits<<8 | uint64(b[idx])
		}
		v[i] = math.Float64frombits(bits)
	}
	return v
}

func FuzzSquaredDistCapped(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(4), math.Pi)
	f.Add([]byte{0xff, 0xf8, 0, 0, 0, 0, 0, 1}, uint8(1), 0.0) // NaN component
	f.Add([]byte{0x7f, 0xf0, 0, 0, 0, 0, 0, 0}, uint8(7), 1.0) // +Inf component
	f.Fuzz(func(t *testing.T, raw []byte, dim uint8, limit float64) {
		d := int(dim%64) + 1
		if len(raw) == 0 {
			raw = []byte{0}
		}
		q := bytesToVector(raw, d)
		v := bytesToVector(append([]byte{0xa5}, raw...), d)
		checkCapped(t, q, v, limit)
		checkCapped(t, q, v, SqL2(q, v))
		w := make(Vector, d)
		for i := range w {
			w[i] = math.Abs(q[i])
			if math.IsNaN(w[i]) {
				w[i] = 1
			}
		}
		checkWeightedCapped(t, q, v, w, limit)
	})
}

func FuzzSquaredDistsTo(f *testing.F) {
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}, uint8(3), uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, dim, rows uint8) {
		d := int(dim%32) + 1
		n := int(rows % 8)
		if len(raw) == 0 {
			raw = []byte{0}
		}
		q := bytesToVector(raw, d)
		block := make([]float64, n*d)
		for i := range block {
			var bits uint64
			for j := 0; j < 8; j++ {
				bits = bits<<8 | uint64(raw[(i*8+j+3)%len(raw)])
			}
			block[i] = math.Float64frombits(bits)
		}
		out := make([]float64, n)
		SquaredDistsTo(q, block, out)
		for r := 0; r < n; r++ {
			row := Vector(block[r*d : (r+1)*d])
			if want := SqL2(q, row); !sameBits(out[r], want) {
				t.Fatalf("row %d: %x vs %x", r, math.Float64bits(out[r]), math.Float64bits(want))
			}
		}
	})
}

func TestTopKReset(t *testing.T) {
	sel := NewTopK(3)
	for i := 0; i < 10; i++ {
		sel.Add(float64(10-i), i)
	}
	first := sel.AppendIDs(nil)
	sel.Reset(2)
	sel.Add(5, 7)
	sel.Add(1, 2)
	second := sel.AppendIDs(nil)
	if len(first) != 3 || len(second) != 2 || second[0] != 2 || second[1] != 7 {
		t.Fatalf("reset misbehaved: %v then %v", first, second)
	}
}
