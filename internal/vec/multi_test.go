package vec

import (
	"math"
	"math/rand"
	"testing"
)

// The multi-query kernels' whole contract is bit-identity: for every scan
// mode, every M, and every implementation (portable and accelerated), the
// query-major output block must equal M independent single-query kernel
// calls exactly — float comparisons below are == on the bits, never a
// tolerance.

var multiMs = []int{1, 2, 3, 4, 5, 7, 8, 16}

func randFloats64(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 3
	}
	return out
}

// TestSquaredDistsToMultiMatchesSingle pins the f64 multi kernel to M
// independent SquaredDistsTo sweeps, bit for bit.
func TestSquaredDistsToMultiMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dim := range []int{0, 1, 3, 7, 8, 9, 16, 37, 64} {
		for _, rows := range []int{0, 1, 5, 33} {
			for _, m := range multiMs {
				qs := randFloats64(rng, m*dim)
				block := randFloats64(rng, rows*dim)
				got := make([]float64, m*rows)
				SquaredDistsToMulti(qs, m, block, got)
				want := make([]float64, rows)
				for j := 0; j < m; j++ {
					SquaredDistsTo(qs[j*dim:(j+1)*dim], block, want)
					for r := 0; r < rows; r++ {
						if g := got[j*rows+r]; g != want[r] {
							t.Fatalf("dim %d rows %d m %d query %d row %d: multi %v, single %v",
								dim, rows, m, j, r, g, want[r])
						}
					}
				}
			}
		}
	}
}

// TestSquaredDistsToMulti32MatchesSingle pins the f32 multi kernel — whatever
// implementation is installed — to M independent SquaredDistsTo32 sweeps.
func TestSquaredDistsToMulti32MatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, dim := range []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 37, 64} {
		for _, rows := range []int{0, 1, 5, 33} {
			for _, m := range multiMs {
				qs := randFloats32(rng, m*dim)
				block := randFloats32(rng, rows*dim)
				got := make([]float32, m*rows)
				SquaredDistsToMulti32(qs, m, block, got)
				want := make([]float32, rows)
				for j := 0; j < m; j++ {
					SquaredDistsTo32(qs[j*dim:(j+1)*dim], block, want)
					for r := 0; r < rows; r++ {
						if g := got[j*rows+r]; math.Float32bits(g) != math.Float32bits(want[r]) {
							t.Fatalf("dim %d rows %d m %d query %d row %d: multi %v (%#x), single %v (%#x)",
								dim, rows, m, j, r, g, math.Float32bits(g), want[r], math.Float32bits(want[r]))
						}
					}
				}
			}
		}
	}
}

// TestUint8SquaredDistsToMultiMatchesSingle pins the SQ8 multi kernel to M
// independent Uint8SquaredDistsTo sweeps (exact integers).
func TestUint8SquaredDistsToMultiMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, dim := range []int{0, 1, 3, 8, 15, 16, 17, 31, 32, 37, 64} {
		for _, rows := range []int{0, 1, 5, 33} {
			for _, m := range multiMs {
				qs := randCodes(rng, m*dim)
				block := randCodes(rng, rows*dim)
				got := make([]int32, m*rows)
				Uint8SquaredDistsToMulti(qs, m, block, got)
				want := make([]int32, rows)
				for j := 0; j < m; j++ {
					Uint8SquaredDistsTo(qs[j*dim:(j+1)*dim], block, want)
					for r := 0; r < rows; r++ {
						if g := got[j*rows+r]; g != want[r] {
							t.Fatalf("dim %d rows %d m %d query %d row %d: multi %d, single %d",
								dim, rows, m, j, r, g, want[r])
						}
					}
				}
			}
		}
	}
}

// TestMultiGenericMatchesInstalled cross-checks the portable multi kernels
// against the installed (possibly accelerated) dispatch: on an AVX2 host this
// is the portable==asm equivalence pin for the multi kernels; on other hosts
// it degenerates to self-consistency and the accelerated half is vacuous.
func TestMultiGenericMatchesInstalled(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, dim := range []int{8, 9, 16, 23, 37, 64} {
		for _, m := range multiMs {
			rows := 29
			q32 := randFloats32(rng, m*dim)
			b32 := randFloats32(rng, rows*dim)
			got32 := make([]float32, m*rows)
			want32 := make([]float32, m*rows)
			SquaredDistsToMulti32(q32, m, b32, got32)
			float32SquaredDistsToMultiGeneric(q32, m, dim, rows, b32, want32)
			for i := range got32 {
				if math.Float32bits(got32[i]) != math.Float32bits(want32[i]) {
					t.Fatalf("f32 dim %d m %d out[%d]: installed %v, generic %v",
						dim, m, i, got32[i], want32[i])
				}
			}

			q8 := randCodes(rng, m*dim)
			b8 := randCodes(rng, rows*dim)
			got8 := make([]int32, m*rows)
			want8 := make([]int32, m*rows)
			Uint8SquaredDistsToMulti(q8, m, b8, got8)
			uint8SquaredDistsToMultiGeneric(q8, m, dim, rows, b8, want8)
			for i := range got8 {
				if got8[i] != want8[i] {
					t.Fatalf("sq8 dim %d m %d out[%d]: installed %d, generic %d",
						dim, m, i, got8[i], want8[i])
				}
			}
		}
	}
}

// TestMultiTopKMatchesSingle runs per-query TopK selection over multi-kernel
// output and over single-query output: identical distances must select
// identical candidate sets in identical order.
func TestMultiTopKMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dim, rows, m, k = 37, 64, 8, 10
	qs := randFloats64(rng, m*dim)
	block := randFloats64(rng, rows*dim)
	multi := make([]float64, m*rows)
	SquaredDistsToMulti(qs, m, block, multi)
	single := make([]float64, rows)
	for j := 0; j < m; j++ {
		SquaredDistsTo(qs[j*dim:(j+1)*dim], block, single)
		a, b := NewTopK(k), NewTopK(k)
		for r := 0; r < rows; r++ {
			a.Add(multi[j*rows+r], r)
			b.Add(single[r], r)
		}
		ids1 := a.AppendIDs(nil)
		ids2 := b.AppendIDs(nil)
		for i := range ids1 {
			if ids1[i] != ids2[i] {
				t.Fatalf("query %d rank %d: multi-fed TopK %d, single-fed %d", j, i, ids1[i], ids2[i])
			}
		}
	}
}

// TestMultiDimsValidation pins the panic behaviour for malformed layouts.
func TestMultiDimsValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("ragged qs", func() {
		SquaredDistsToMulti(make([]float64, 7), 2, nil, make([]float64, 2))
	})
	mustPanic("ragged out", func() {
		SquaredDistsToMulti(make([]float64, 8), 2, make([]float64, 12), make([]float64, 5))
	})
	mustPanic("block mismatch", func() {
		SquaredDistsToMulti32(make([]float32, 8), 2, make([]float32, 13), make([]float32, 6))
	})
	mustPanic("negative m", func() {
		Uint8SquaredDistsToMulti(nil, -1, nil, nil)
	})
	// m == 0 with empty qs/out is a no-op, not a panic.
	SquaredDistsToMulti(nil, 0, nil, nil)
}
