package vec

import (
	"fmt"
	"math"
)

// This file holds the batch distance kernels behind the flat feature store
// (internal/store) and the R*-tree leaf blocks. Every kernel accumulates in
// exactly the order of the scalar reference (SqL2 / WeightedSqL2): term i is
// added before term i+1, one row at a time. Speed comes from contiguous
// memory, fewer slice-header dereferences, and early exit — never from
// reassociating the sum — so results are bit-identical to the scalar loops
// and the system's byte-level determinism guarantees survive the batch paths.

// SquaredDistsTo computes out[r] = SqL2(q, row_r) for every dimension-strided
// row of block, where block holds len(out) rows of len(q) contiguous
// components. It panics if len(block) != len(out)*len(q).
func SquaredDistsTo(q Vector, block []float64, out []float64) {
	dim := len(q)
	if len(block) != len(out)*dim {
		panic(fmt.Sprintf("vec: block %d != %d rows x %d dims", len(block), len(out), dim))
	}
	if dim == 0 {
		for r := range out {
			out[r] = 0
		}
		return
	}
	for r := range out {
		row := block[r*dim : r*dim+dim : r*dim+dim]
		var s float64
		for i, ri := range row {
			d := q[i] - ri
			s += d * d
		}
		out[r] = s
	}
}

// WeightedSquaredDistsTo computes out[r] = WeightedSqL2(q, row_r, weights)
// for every dimension-strided row of block. It panics on size mismatches.
func WeightedSquaredDistsTo(q, weights Vector, block []float64, out []float64) {
	mustSameDim(q, weights)
	dim := len(q)
	if len(block) != len(out)*dim {
		panic(fmt.Sprintf("vec: block %d != %d rows x %d dims", len(block), len(out), dim))
	}
	if dim == 0 {
		for r := range out {
			out[r] = 0
		}
		return
	}
	for r := range out {
		row := block[r*dim : r*dim+dim : r*dim+dim]
		var s float64
		for i, ri := range row {
			d := q[i] - ri
			s += weights[i] * d * d
		}
		out[r] = s
	}
}

// SquaredDistCapped returns SqL2(q, v) computed with partial-distance early
// exit: the scan stops as soon as the running sum reaches limit and returns
// the partial sum. Because every term is non-negative the partial sums are
// monotone, so for any limit the returned value r satisfies
//
//	r < limit  ⟺  SqL2(q, v) < limit
//
// and whenever r < limit it is bit-identical to SqL2(q, v) (no early exit
// can have fired). NaN components never trigger the exit (NaN >= limit is
// false), so NaN-poisoned rows run to completion and return exactly what
// SqL2 returns. Callers must therefore use the result only for strict
// below-limit decisions, or for the exact distance when it is below limit.
func SquaredDistCapped(q, v Vector, limit float64) float64 {
	mustSameDim(q, v)
	var s float64
	for i, qi := range q {
		d := qi - v[i]
		s += d * d
		if s >= limit {
			return s
		}
	}
	return s
}

// WeightedSquaredDistCapped is SquaredDistCapped under a diagonal-weighted
// metric: it returns WeightedSqL2(q, v, weights) with early exit against
// limit. The below-limit equivalence holds for non-negative weights.
func WeightedSquaredDistCapped(q, v, weights Vector, limit float64) float64 {
	mustSameDim(q, v)
	mustSameDim(q, weights)
	var s float64
	for i, qi := range q {
		d := qi - v[i]
		s += weights[i] * d * d
		if s >= limit {
			return s
		}
	}
	return s
}

// topEntry is one candidate in a TopK selection.
type topEntry struct {
	dist float64
	id   int
}

// TopK selects the k smallest (dist, id) pairs from a stream of candidates
// using a bounded max-heap, without allocating per candidate. It replicates
// the exact algorithm of container/heap over a max-ordered heap keyed on
// dist alone (strict replacement when dist < current threshold), so a TopK
// fed the same candidate sequence as the previous container/heap-based
// selectors retains exactly the same set — including which of several
// equal-distance boundary candidates survive.
type TopK struct {
	k int
	h []topEntry
}

// NewTopK returns a selector for the k smallest candidates. k <= 0 selects
// nothing.
func NewTopK(k int) *TopK {
	if k < 0 {
		k = 0
	}
	return &TopK{k: k, h: make([]topEntry, 0, k)}
}

// Reset empties the selector for reuse, keeping its buffer.
func (t *TopK) Reset(k int) {
	if k < 0 {
		k = 0
	}
	t.k = k
	t.h = t.h[:0]
}

// Len returns the number of candidates currently retained.
func (t *TopK) Len() int { return len(t.h) }

// Threshold returns the current admission bound: +Inf until k candidates are
// retained, then the largest retained distance. A candidate is admitted iff
// its distance is strictly below Threshold, which makes Threshold the exact
// limit to pass to SquaredDistCapped when scanning.
func (t *TopK) Threshold() float64 {
	if len(t.h) < t.k {
		return math.Inf(1)
	}
	if t.k == 0 {
		return math.Inf(-1)
	}
	return t.h[0].dist
}

// Add offers one candidate. Distances compared against the threshold may be
// capped partials (see SquaredDistCapped): a rejected candidate's value is
// never stored, and an admitted one was below the limit and therefore exact.
func (t *TopK) Add(dist float64, id int) {
	if t.k == 0 {
		return
	}
	if len(t.h) < t.k {
		t.h = append(t.h, topEntry{dist: dist, id: id})
		t.up(len(t.h) - 1)
		return
	}
	if dist < t.h[0].dist {
		t.h[0] = topEntry{dist: dist, id: id}
		t.fixRoot()
	}
}

// up is container/heap's sift-up with Less(i,j) = h[i].dist > h[j].dist.
func (t *TopK) up(j int) {
	h := t.h
	for {
		i := (j - 1) / 2
		if i == j || !(h[j].dist > h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

// fixRoot is container/heap's Fix(0): sift down, or sift up if nothing moved
// (up from the root is a no-op, so only down matters in practice).
func (t *TopK) fixRoot() {
	h := t.h
	n := len(h)
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].dist > h[j1].dist {
			j = j2
		}
		if !(h[j].dist > h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// AppendIDs appends the retained candidate IDs to dst in ascending
// (dist, id) order and returns the extended slice. The selector is left in
// an unspecified order; Reset before reuse.
func (t *TopK) AppendIDs(dst []int) []int {
	sortEntries(t.h)
	for _, e := range t.h {
		dst = append(dst, e.id)
	}
	return dst
}

// sortEntries orders entries ascending by (dist, id) — the same total order
// every selector in this repository presents results in. IDs are unique, so
// the order is total and any comparison sort yields the same permutation;
// insertion sort keeps the kernel allocation-free.
func sortEntries(es []topEntry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && (es[j].dist < es[j-1].dist ||
			(es[j].dist == es[j-1].dist && es[j].id < es[j-1].id)); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}
