//go:build amd64 && gc && !purego && !noasm

#include "textflag.h"

// func hasAVX2() bool
//
// Standard AVX2 detection: CPUID leaf 1 must report OSXSAVE and AVX, XGETBV
// must show the OS saves XMM+YMM state, and CPUID leaf 7 must report AVX2.
TEXT ·hasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<27 | 1<<28), CX // OSXSAVE | AVX
	CMPL CX, $(1<<27 | 1<<28)
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX               // XCR0: XMM and YMM state enabled
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	BTL  $5, BX               // AVX2
	JCC  no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func uint8SqDistsAVX2(q *uint8, dim int, block *uint8, out *int32, rows int)
//
// out[r] = Σ_i (q[i]−block[r*dim+i])², all int32. Per 16-code chunk: widen
// uint8→int16 (VPMOVZXBW), subtract (fits int16: |d| ≤ 255), square and
// pair-sum into int32 lanes (VPMADDWD: ≤ 2·255² per lane, no overflow),
// accumulate. The ≤15-code row tail runs scalar below the horizontal sum.
// Loads never cross a row boundary, so nothing is read past the block.
TEXT ·uint8SqDistsAVX2(SB), NOSPLIT, $0-40
	MOVQ q+0(FP), SI
	MOVQ dim+8(FP), DX
	MOVQ block+16(FP), DI
	MOVQ out+24(FP), R8
	MOVQ rows+32(FP), R9

	MOVQ DX, R10
	ANDQ $-16, R10            // R10 = dim &^ 15: the SIMD-covered prefix

rowloop:
	TESTQ R9, R9
	JLE   done
	VPXOR Y0, Y0, Y0          // int32x8 accumulator
	XORQ  R11, R11            // i = 0
	CMPQ  R10, $0
	JE    hsum

simd:
	VPMOVZXBW (SI)(R11*1), Y1 // 16 query codes → int16 lanes
	VPMOVZXBW (DI)(R11*1), Y2 // 16 row codes → int16 lanes
	VPSUBW    Y2, Y1, Y1
	VPMADDWD  Y1, Y1, Y1      // pairwise d·d sums → int32 lanes
	VPADDD    Y1, Y0, Y0
	ADDQ      $16, R11
	CMPQ      R11, R10
	JL        simd

hsum:
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x4E, X0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0xB1, X0, X1
	VPADDD       X1, X0, X0
	VMOVD        X0, R12      // R12 = Σ over the SIMD prefix

scalar:
	CMPQ    R11, DX
	JGE     store
	MOVBLZX (SI)(R11*1), AX
	MOVBLZX (DI)(R11*1), BX
	SUBL    BX, AX
	IMULL   AX, AX
	ADDL    AX, R12
	INCQ    R11
	JMP     scalar

store:
	MOVL R12, (R8)
	ADDQ $4, R8
	ADDQ DX, DI               // next row
	DECQ R9
	JMP  rowloop

done:
	VZEROUPPER
	RET

// func uint8SqDistsMulti4AVX2(qs *uint8, dim int, block *uint8, out *int32, ostride int, rows int)
//
// Scores FOUR query code rows (packed contiguously in qs) against every row
// of block, widening each 16-code row chunk ONCE and reusing it for all four
// queries: out[j*ostride+r] = Σ_i (q_j[i]−row_r[i])². Same arithmetic as
// uint8SqDistsAVX2 per query (VPSUBW/VPMADDWD/VPADDD, scalar row tail) — all
// exact int32, so results are identical to four single-query calls. Tail
// terms accumulate into lane 0 of each query's xmm sum (VMOVD + VPADDD) to
// keep the general-purpose registers free for the four query cursors.
TEXT ·uint8SqDistsMulti4AVX2(SB), NOSPLIT, $0-48
	MOVQ qs+0(FP), SI
	MOVQ dim+8(FP), DX
	MOVQ block+16(FP), DI
	MOVQ out+24(FP), R8
	MOVQ rows+40(FP), R9

	LEAQ (SI)(DX*1), R12      // q1
	LEAQ (R12)(DX*1), R13     // q2
	LEAQ (R13)(DX*1), R14     // q3
	MOVQ DX, R10
	ANDQ $-16, R10            // R10 = dim &^ 15: the SIMD-covered prefix

mrowloop:
	TESTQ R9, R9
	JLE   mdone
	VPXOR Y0, Y0, Y0          // q0 int32 accumulator
	VPXOR Y1, Y1, Y1          // q1
	VPXOR Y2, Y2, Y2          // q2
	VPXOR Y3, Y3, Y3          // q3
	XORQ  R11, R11            // i = 0
	CMPQ  R10, $0
	JE    mhsum

msimd:
	VPMOVZXBW (DI)(R11*1), Y4 // 16 row codes → int16 lanes, once for all queries
	VPMOVZXBW (SI)(R11*1), Y5
	VPSUBW    Y4, Y5, Y5      // d = q0 - row
	VPMADDWD  Y5, Y5, Y5
	VPADDD    Y5, Y0, Y0
	VPMOVZXBW (R12)(R11*1), Y5
	VPSUBW    Y4, Y5, Y5
	VPMADDWD  Y5, Y5, Y5
	VPADDD    Y5, Y1, Y1
	VPMOVZXBW (R13)(R11*1), Y5
	VPSUBW    Y4, Y5, Y5
	VPMADDWD  Y5, Y5, Y5
	VPADDD    Y5, Y2, Y2
	VPMOVZXBW (R14)(R11*1), Y5
	VPSUBW    Y4, Y5, Y5
	VPMADDWD  Y5, Y5, Y5
	VPADDD    Y5, Y3, Y3
	ADDQ      $16, R11
	CMPQ      R11, R10
	JL        msimd

mhsum:
	VEXTRACTI128 $1, Y0, X5
	VPADDD       X5, X0, X0
	VPSHUFD      $0x4E, X0, X5
	VPADDD       X5, X0, X0
	VPSHUFD      $0xB1, X0, X5
	VPADDD       X5, X0, X0   // X0 lane0 = q0 prefix sum
	VEXTRACTI128 $1, Y1, X5
	VPADDD       X5, X1, X1
	VPSHUFD      $0x4E, X1, X5
	VPADDD       X5, X1, X1
	VPSHUFD      $0xB1, X1, X5
	VPADDD       X5, X1, X1
	VEXTRACTI128 $1, Y2, X5
	VPADDD       X5, X2, X2
	VPSHUFD      $0x4E, X2, X5
	VPADDD       X5, X2, X2
	VPSHUFD      $0xB1, X2, X5
	VPADDD       X5, X2, X2
	VEXTRACTI128 $1, Y3, X5
	VPADDD       X5, X3, X3
	VPSHUFD      $0x4E, X3, X5
	VPADDD       X5, X3, X3
	VPSHUFD      $0xB1, X3, X5
	VPADDD       X5, X3, X3

	CMPQ R11, DX
	JGE  mstore
	MOVQ R11, CX              // ≤15-code tails, one query at a time

mtail0:
	CMPQ    CX, DX
	JGE     mtail1i
	MOVBLZX (SI)(CX*1), AX
	MOVBLZX (DI)(CX*1), BX
	SUBL    BX, AX
	IMULL   AX, AX
	VMOVD   AX, X5
	VPADDD  X5, X0, X0
	INCQ    CX
	JMP     mtail0

mtail1i:
	MOVQ R11, CX

mtail1:
	CMPQ    CX, DX
	JGE     mtail2i
	MOVBLZX (R12)(CX*1), AX
	MOVBLZX (DI)(CX*1), BX
	SUBL    BX, AX
	IMULL   AX, AX
	VMOVD   AX, X5
	VPADDD  X5, X1, X1
	INCQ    CX
	JMP     mtail1

mtail2i:
	MOVQ R11, CX

mtail2:
	CMPQ    CX, DX
	JGE     mtail3i
	MOVBLZX (R13)(CX*1), AX
	MOVBLZX (DI)(CX*1), BX
	SUBL    BX, AX
	IMULL   AX, AX
	VMOVD   AX, X5
	VPADDD  X5, X2, X2
	INCQ    CX
	JMP     mtail2

mtail3i:
	MOVQ R11, CX

mtail3:
	CMPQ    CX, DX
	JGE     mstore
	MOVBLZX (R14)(CX*1), AX
	MOVBLZX (DI)(CX*1), BX
	SUBL    BX, AX
	IMULL   AX, AX
	VMOVD   AX, X5
	VPADDD  X5, X3, X3
	INCQ    CX
	JMP     mtail3

mstore:
	MOVQ  ostride+32(FP), AX
	SHLQ  $2, AX              // AX = ostride in bytes
	VMOVD X0, (R8)
	VMOVD X1, (R8)(AX*1)
	VMOVD X2, (R8)(AX*2)
	LEAQ  (R8)(AX*2), BX      // 3*stride is not an x86 scale; hop via 2*stride
	VMOVD X3, (BX)(AX*1)
	ADDQ  $4, R8
	ADDQ  DX, DI              // next row
	DECQ  R9
	JMP   mrowloop

mdone:
	VZEROUPPER
	RET
