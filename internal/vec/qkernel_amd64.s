//go:build amd64 && gc && !purego && !noasm

#include "textflag.h"

// func hasAVX2() bool
//
// Standard AVX2 detection: CPUID leaf 1 must report OSXSAVE and AVX, XGETBV
// must show the OS saves XMM+YMM state, and CPUID leaf 7 must report AVX2.
TEXT ·hasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<27 | 1<<28), CX // OSXSAVE | AVX
	CMPL CX, $(1<<27 | 1<<28)
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX               // XCR0: XMM and YMM state enabled
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	BTL  $5, BX               // AVX2
	JCC  no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func uint8SqDistsAVX2(q *uint8, dim int, block *uint8, out *int32, rows int)
//
// out[r] = Σ_i (q[i]−block[r*dim+i])², all int32. Per 16-code chunk: widen
// uint8→int16 (VPMOVZXBW), subtract (fits int16: |d| ≤ 255), square and
// pair-sum into int32 lanes (VPMADDWD: ≤ 2·255² per lane, no overflow),
// accumulate. The ≤15-code row tail runs scalar below the horizontal sum.
// Loads never cross a row boundary, so nothing is read past the block.
TEXT ·uint8SqDistsAVX2(SB), NOSPLIT, $0-40
	MOVQ q+0(FP), SI
	MOVQ dim+8(FP), DX
	MOVQ block+16(FP), DI
	MOVQ out+24(FP), R8
	MOVQ rows+32(FP), R9

	MOVQ DX, R10
	ANDQ $-16, R10            // R10 = dim &^ 15: the SIMD-covered prefix

rowloop:
	TESTQ R9, R9
	JLE   done
	VPXOR Y0, Y0, Y0          // int32x8 accumulator
	XORQ  R11, R11            // i = 0
	CMPQ  R10, $0
	JE    hsum

simd:
	VPMOVZXBW (SI)(R11*1), Y1 // 16 query codes → int16 lanes
	VPMOVZXBW (DI)(R11*1), Y2 // 16 row codes → int16 lanes
	VPSUBW    Y2, Y1, Y1
	VPMADDWD  Y1, Y1, Y1      // pairwise d·d sums → int32 lanes
	VPADDD    Y1, Y0, Y0
	ADDQ      $16, R11
	CMPQ      R11, R10
	JL        simd

hsum:
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x4E, X0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0xB1, X0, X1
	VPADDD       X1, X0, X0
	VMOVD        X0, R12      // R12 = Σ over the SIMD prefix

scalar:
	CMPQ    R11, DX
	JGE     store
	MOVBLZX (SI)(R11*1), AX
	MOVBLZX (DI)(R11*1), BX
	SUBL    BX, AX
	IMULL   AX, AX
	ADDL    AX, R12
	INCQ    R11
	JMP     scalar

store:
	MOVL R12, (R8)
	ADDQ $4, R8
	ADDQ DX, DI               // next row
	DECQ R9
	JMP  rowloop

done:
	VZEROUPPER
	RET
