package vec

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randFloats32(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

// referenceSqDist32 recomputes the canonical float32 accumulation order
// (8-lane prefix, fixed reduction, left-to-right tail) with an independent
// implementation: lane sums built by index arithmetic rather than unrolling.
func referenceSqDist32(q, v []float32) float32 {
	var lanes [8]float32
	pre := len(q) &^ 7
	for i := 0; i < pre; i++ {
		d := q[i] - v[i]
		lanes[i%8] += float32(d * d)
	}
	s04 := lanes[0] + lanes[4]
	s15 := lanes[1] + lanes[5]
	s26 := lanes[2] + lanes[6]
	s37 := lanes[3] + lanes[7]
	s := (s04 + s26) + (s15 + s37)
	for i := pre; i < len(q); i++ {
		d := q[i] - v[i]
		s += float32(d * d)
	}
	return s
}

// TestFloat32KernelsAgree: the batch kernel (accelerated when the CPU has
// one), the portable generic, SqL232, and the independent reference must all
// be bit-identical across dims exercising the SIMD body and the tails.
func TestFloat32KernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{0, 1, 2, 3, 4, 7, 8, 9, 15, 16, 17, 37, 64, 100, 512} {
		q := randFloats32(rng, dim)
		rows := 17
		block := randFloats32(rng, rows*dim)
		out := make([]float32, rows)
		gen := make([]float32, rows)
		SquaredDistsTo32(q, block, out)
		float32SquaredDistsToGeneric(q, block, gen)
		for r := 0; r < rows; r++ {
			row := block[r*dim : (r+1)*dim]
			want := referenceSqDist32(q, row)
			if out[r] != want {
				t.Fatalf("dim %d row %d: batch %g (bits %#x), reference %g (bits %#x)",
					dim, r, out[r], math.Float32bits(out[r]), want, math.Float32bits(want))
			}
			if gen[r] != want {
				t.Fatalf("dim %d row %d: generic %g != reference %g", dim, r, gen[r], want)
			}
			if got := SqL232(q, row); got != want {
				t.Fatalf("dim %d row %d: SqL232 %g != reference %g", dim, r, got, want)
			}
		}
	}
}

// TestFloat32BatchVsGenericLarge drives the accelerated kernel (when present)
// against the portable loop over a large random corpus — the bit-exactness
// claim the float32 mode's cross-platform determinism rests on.
func TestFloat32BatchVsGenericLarge(t *testing.T) {
	if !HasAcceleratedFloat32Batch() {
		t.Skip("no accelerated float32 kernel on this platform/build")
	}
	rng := rand.New(rand.NewSource(7))
	for _, dim := range []int{8, 23, 37, 96, 128, 384, 512} {
		rows := 257
		q := randFloats32(rng, dim)
		block := randFloats32(rng, rows*dim)
		acc := make([]float32, rows)
		gen := make([]float32, rows)
		float32BatchKernel(&q[0], dim, &block[0], &acc[0], rows)
		float32SquaredDistsToGeneric(q, block, gen)
		for r := range acc {
			if math.Float32bits(acc[r]) != math.Float32bits(gen[r]) {
				t.Fatalf("dim %d row %d: accelerated %#x != generic %#x",
					dim, r, math.Float32bits(acc[r]), math.Float32bits(gen[r]))
			}
		}
	}
}

// TestSquaredDistCapped32Contract: for any limit, (result < limit) must agree
// with (full < limit), and a below-limit result must be bit-identical to
// SqL232.
func TestSquaredDistCapped32Contract(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		dim := rng.Intn(40)
		q, v := randFloats32(rng, dim), randFloats32(rng, dim)
		full := SqL232(q, v)
		var limit float32
		switch trial % 4 {
		case 0:
			limit = full // boundary: equal is not below
		case 1:
			limit = math.Nextafter32(full, float32(math.Inf(1)))
		case 2:
			limit = full / 2
		default:
			limit = float32(rng.Float64()) * 200
		}
		r := SquaredDistCapped32(q, v, limit)
		if (r < limit) != (full < limit) {
			t.Fatalf("dim %d limit %g: capped %g, full %g — below-limit verdicts disagree",
				dim, limit, r, full)
		}
		if r < limit && math.Float32bits(r) != math.Float32bits(full) {
			t.Fatalf("dim %d limit %g: admitted value %g != full %g", dim, limit, r, full)
		}
	}
}

// TestTopK32MatchesSort: the selector must retain exactly the k smallest
// (dist, id) pairs and report them in ascending order.
func TestTopK32MatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200)
		k := rng.Intn(20)
		dists := make([]float32, n)
		for i := range dists {
			dists[i] = float32(rng.Intn(32)) // collisions on purpose
		}
		sel := NewTopK32(k)
		for id, d := range dists {
			if d < sel.Threshold() {
				sel.Add(d, id)
			}
		}
		got := sel.AppendEntries(nil)

		type pair struct {
			d  float32
			id int
		}
		all := make([]pair, n)
		for i, d := range dists {
			all[i] = pair{d, i}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].d != all[j].d {
				return all[i].d < all[j].d
			}
			return all[i].id < all[j].id
		})
		want := k
		if want > n {
			want = n
		}
		if len(got) != want {
			t.Fatalf("trial %d: selected %d, want %d", trial, len(got), want)
		}
		gotSet := make(map[int]float32, len(got))
		for i, e := range got {
			gotSet[e.ID] = e.Dist
			if i > 0 && (got[i-1].Dist > e.Dist ||
				(got[i-1].Dist == e.Dist && got[i-1].ID > e.ID)) {
				t.Fatalf("trial %d: output not ascending at %d", trial, i)
			}
		}
		// The retained multiset of distances must match the true k smallest;
		// equal-distance boundary candidates may differ in identity (strict-<
		// admission keeps the earliest), so compare distances, not ids.
		for i := 0; i < want; i++ {
			if got[i].Dist != all[i].d {
				t.Fatalf("trial %d: rank %d dist %g, want %g", trial, i, got[i].Dist, all[i].d)
			}
		}
	}
}

// TestNarrowWidenRoundTrip: widening is exact, and narrowing a widened
// float32 backing restores it bit-for-bit — the property that lets an
// f32-primary store keep a float64 shadow without losing its identity.
func TestNarrowWidenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := randFloats32(rng, 999)
	wide := Widen64(src, nil)
	back := Narrow32(wide, nil)
	for i := range src {
		if math.Float32bits(src[i]) != math.Float32bits(back[i]) {
			t.Fatalf("index %d: %#x -> %v -> %#x", i, math.Float32bits(src[i]), wide[i], math.Float32bits(back[i]))
		}
	}
}

// FuzzSquaredDistCapped32 fuzzes the capped contract against arbitrary
// component bit patterns (including NaN/Inf).
func FuzzSquaredDistCapped32(f *testing.F) {
	f.Add(uint32(0x3f800000), uint32(0x40000000), uint32(0x41200000), uint8(9))
	f.Add(uint32(0x7fc00000), uint32(0), uint32(0x7f800000), uint8(17)) // NaN, +Inf
	f.Fuzz(func(t *testing.T, qa, va, lim uint32, dim uint8) {
		n := int(dim % 33)
		q := make([]float32, n)
		v := make([]float32, n)
		for i := 0; i < n; i++ {
			q[i] = math.Float32frombits(qa + uint32(i)*0x9e3779b9)
			v[i] = math.Float32frombits(va + uint32(i)*0x85ebca6b)
		}
		limit := math.Float32frombits(lim)
		full := SqL232(q, v)
		r := SquaredDistCapped32(q, v, limit)
		if (r < limit) != (full < limit) {
			t.Fatalf("verdicts disagree: capped %g full %g limit %g", r, full, limit)
		}
		if r < limit && math.Float32bits(r) != math.Float32bits(full) {
			t.Fatalf("admitted %g != full %g", r, full)
		}
	})
}
